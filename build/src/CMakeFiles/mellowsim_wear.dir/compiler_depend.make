# Empty compiler generated dependencies file for mellowsim_wear.
# This may be replaced when dependencies are built.
