
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wear/endurance_model.cc" "src/CMakeFiles/mellowsim_wear.dir/wear/endurance_model.cc.o" "gcc" "src/CMakeFiles/mellowsim_wear.dir/wear/endurance_model.cc.o.d"
  "/root/repo/src/wear/security_refresh.cc" "src/CMakeFiles/mellowsim_wear.dir/wear/security_refresh.cc.o" "gcc" "src/CMakeFiles/mellowsim_wear.dir/wear/security_refresh.cc.o.d"
  "/root/repo/src/wear/start_gap.cc" "src/CMakeFiles/mellowsim_wear.dir/wear/start_gap.cc.o" "gcc" "src/CMakeFiles/mellowsim_wear.dir/wear/start_gap.cc.o.d"
  "/root/repo/src/wear/wear_tracker.cc" "src/CMakeFiles/mellowsim_wear.dir/wear/wear_tracker.cc.o" "gcc" "src/CMakeFiles/mellowsim_wear.dir/wear/wear_tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mellowsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
