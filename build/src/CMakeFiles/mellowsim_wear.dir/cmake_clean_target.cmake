file(REMOVE_RECURSE
  "libmellowsim_wear.a"
)
