file(REMOVE_RECURSE
  "CMakeFiles/mellowsim_wear.dir/wear/endurance_model.cc.o"
  "CMakeFiles/mellowsim_wear.dir/wear/endurance_model.cc.o.d"
  "CMakeFiles/mellowsim_wear.dir/wear/security_refresh.cc.o"
  "CMakeFiles/mellowsim_wear.dir/wear/security_refresh.cc.o.d"
  "CMakeFiles/mellowsim_wear.dir/wear/start_gap.cc.o"
  "CMakeFiles/mellowsim_wear.dir/wear/start_gap.cc.o.d"
  "CMakeFiles/mellowsim_wear.dir/wear/wear_tracker.cc.o"
  "CMakeFiles/mellowsim_wear.dir/wear/wear_tracker.cc.o.d"
  "libmellowsim_wear.a"
  "libmellowsim_wear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mellowsim_wear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
