file(REMOVE_RECURSE
  "CMakeFiles/mellowsim_system.dir/system/report.cc.o"
  "CMakeFiles/mellowsim_system.dir/system/report.cc.o.d"
  "CMakeFiles/mellowsim_system.dir/system/runner.cc.o"
  "CMakeFiles/mellowsim_system.dir/system/runner.cc.o.d"
  "CMakeFiles/mellowsim_system.dir/system/system.cc.o"
  "CMakeFiles/mellowsim_system.dir/system/system.cc.o.d"
  "libmellowsim_system.a"
  "libmellowsim_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mellowsim_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
