file(REMOVE_RECURSE
  "libmellowsim_system.a"
)
