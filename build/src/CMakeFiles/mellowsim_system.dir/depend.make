# Empty dependencies file for mellowsim_system.
# This may be replaced when dependencies are built.
