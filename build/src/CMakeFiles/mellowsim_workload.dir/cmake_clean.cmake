file(REMOVE_RECURSE
  "CMakeFiles/mellowsim_workload.dir/workload/generators.cc.o"
  "CMakeFiles/mellowsim_workload.dir/workload/generators.cc.o.d"
  "CMakeFiles/mellowsim_workload.dir/workload/patterns.cc.o"
  "CMakeFiles/mellowsim_workload.dir/workload/patterns.cc.o.d"
  "CMakeFiles/mellowsim_workload.dir/workload/spec_workloads.cc.o"
  "CMakeFiles/mellowsim_workload.dir/workload/spec_workloads.cc.o.d"
  "CMakeFiles/mellowsim_workload.dir/workload/trace_workload.cc.o"
  "CMakeFiles/mellowsim_workload.dir/workload/trace_workload.cc.o.d"
  "CMakeFiles/mellowsim_workload.dir/workload/workload.cc.o"
  "CMakeFiles/mellowsim_workload.dir/workload/workload.cc.o.d"
  "libmellowsim_workload.a"
  "libmellowsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mellowsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
