file(REMOVE_RECURSE
  "libmellowsim_workload.a"
)
