# Empty dependencies file for mellowsim_workload.
# This may be replaced when dependencies are built.
