# Empty compiler generated dependencies file for mellowsim_cache.
# This may be replaced when dependencies are built.
