file(REMOVE_RECURSE
  "CMakeFiles/mellowsim_cache.dir/cache/cache.cc.o"
  "CMakeFiles/mellowsim_cache.dir/cache/cache.cc.o.d"
  "CMakeFiles/mellowsim_cache.dir/cache/eager_profiler.cc.o"
  "CMakeFiles/mellowsim_cache.dir/cache/eager_profiler.cc.o.d"
  "CMakeFiles/mellowsim_cache.dir/cache/hierarchy.cc.o"
  "CMakeFiles/mellowsim_cache.dir/cache/hierarchy.cc.o.d"
  "CMakeFiles/mellowsim_cache.dir/cache/llc.cc.o"
  "CMakeFiles/mellowsim_cache.dir/cache/llc.cc.o.d"
  "libmellowsim_cache.a"
  "libmellowsim_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mellowsim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
