file(REMOVE_RECURSE
  "libmellowsim_cache.a"
)
