# Empty compiler generated dependencies file for mellowsim_energy.
# This may be replaced when dependencies are built.
