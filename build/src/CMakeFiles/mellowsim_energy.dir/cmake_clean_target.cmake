file(REMOVE_RECURSE
  "libmellowsim_energy.a"
)
