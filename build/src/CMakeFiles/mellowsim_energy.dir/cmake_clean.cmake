file(REMOVE_RECURSE
  "CMakeFiles/mellowsim_energy.dir/energy/energy_model.cc.o"
  "CMakeFiles/mellowsim_energy.dir/energy/energy_model.cc.o.d"
  "libmellowsim_energy.a"
  "libmellowsim_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mellowsim_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
