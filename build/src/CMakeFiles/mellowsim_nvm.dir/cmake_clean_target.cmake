file(REMOVE_RECURSE
  "libmellowsim_nvm.a"
)
