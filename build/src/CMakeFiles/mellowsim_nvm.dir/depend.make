# Empty dependencies file for mellowsim_nvm.
# This may be replaced when dependencies are built.
