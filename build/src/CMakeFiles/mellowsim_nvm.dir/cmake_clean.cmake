file(REMOVE_RECURSE
  "CMakeFiles/mellowsim_nvm.dir/nvm/address_map.cc.o"
  "CMakeFiles/mellowsim_nvm.dir/nvm/address_map.cc.o.d"
  "CMakeFiles/mellowsim_nvm.dir/nvm/bank.cc.o"
  "CMakeFiles/mellowsim_nvm.dir/nvm/bank.cc.o.d"
  "CMakeFiles/mellowsim_nvm.dir/nvm/controller.cc.o"
  "CMakeFiles/mellowsim_nvm.dir/nvm/controller.cc.o.d"
  "CMakeFiles/mellowsim_nvm.dir/nvm/memory_system.cc.o"
  "CMakeFiles/mellowsim_nvm.dir/nvm/memory_system.cc.o.d"
  "CMakeFiles/mellowsim_nvm.dir/nvm/queues.cc.o"
  "CMakeFiles/mellowsim_nvm.dir/nvm/queues.cc.o.d"
  "libmellowsim_nvm.a"
  "libmellowsim_nvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mellowsim_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
