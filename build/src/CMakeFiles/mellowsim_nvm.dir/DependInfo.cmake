
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvm/address_map.cc" "src/CMakeFiles/mellowsim_nvm.dir/nvm/address_map.cc.o" "gcc" "src/CMakeFiles/mellowsim_nvm.dir/nvm/address_map.cc.o.d"
  "/root/repo/src/nvm/bank.cc" "src/CMakeFiles/mellowsim_nvm.dir/nvm/bank.cc.o" "gcc" "src/CMakeFiles/mellowsim_nvm.dir/nvm/bank.cc.o.d"
  "/root/repo/src/nvm/controller.cc" "src/CMakeFiles/mellowsim_nvm.dir/nvm/controller.cc.o" "gcc" "src/CMakeFiles/mellowsim_nvm.dir/nvm/controller.cc.o.d"
  "/root/repo/src/nvm/memory_system.cc" "src/CMakeFiles/mellowsim_nvm.dir/nvm/memory_system.cc.o" "gcc" "src/CMakeFiles/mellowsim_nvm.dir/nvm/memory_system.cc.o.d"
  "/root/repo/src/nvm/queues.cc" "src/CMakeFiles/mellowsim_nvm.dir/nvm/queues.cc.o" "gcc" "src/CMakeFiles/mellowsim_nvm.dir/nvm/queues.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mellowsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mellowsim_wear.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mellowsim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mellowsim_mellow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
