file(REMOVE_RECURSE
  "libmellowsim_cpu.a"
)
