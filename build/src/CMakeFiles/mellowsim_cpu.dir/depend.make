# Empty dependencies file for mellowsim_cpu.
# This may be replaced when dependencies are built.
