file(REMOVE_RECURSE
  "CMakeFiles/mellowsim_cpu.dir/cpu/core.cc.o"
  "CMakeFiles/mellowsim_cpu.dir/cpu/core.cc.o.d"
  "libmellowsim_cpu.a"
  "libmellowsim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mellowsim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
