# Empty dependencies file for mellowsim_sim.
# This may be replaced when dependencies are built.
