file(REMOVE_RECURSE
  "CMakeFiles/mellowsim_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/mellowsim_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/mellowsim_sim.dir/sim/logging.cc.o"
  "CMakeFiles/mellowsim_sim.dir/sim/logging.cc.o.d"
  "CMakeFiles/mellowsim_sim.dir/sim/rng.cc.o"
  "CMakeFiles/mellowsim_sim.dir/sim/rng.cc.o.d"
  "CMakeFiles/mellowsim_sim.dir/sim/stats.cc.o"
  "CMakeFiles/mellowsim_sim.dir/sim/stats.cc.o.d"
  "libmellowsim_sim.a"
  "libmellowsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mellowsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
