file(REMOVE_RECURSE
  "libmellowsim_sim.a"
)
