# Empty compiler generated dependencies file for mellowsim_mellow.
# This may be replaced when dependencies are built.
