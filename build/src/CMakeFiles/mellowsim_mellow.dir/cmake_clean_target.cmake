file(REMOVE_RECURSE
  "libmellowsim_mellow.a"
)
