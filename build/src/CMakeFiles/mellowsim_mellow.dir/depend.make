# Empty dependencies file for mellowsim_mellow.
# This may be replaced when dependencies are built.
