file(REMOVE_RECURSE
  "CMakeFiles/mellowsim_mellow.dir/mellow/decision.cc.o"
  "CMakeFiles/mellowsim_mellow.dir/mellow/decision.cc.o.d"
  "CMakeFiles/mellowsim_mellow.dir/mellow/policy.cc.o"
  "CMakeFiles/mellowsim_mellow.dir/mellow/policy.cc.o.d"
  "CMakeFiles/mellowsim_mellow.dir/mellow/wear_quota.cc.o"
  "CMakeFiles/mellowsim_mellow.dir/mellow/wear_quota.cc.o.d"
  "libmellowsim_mellow.a"
  "libmellowsim_mellow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mellowsim_mellow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
