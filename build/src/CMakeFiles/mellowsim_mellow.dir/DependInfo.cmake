
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mellow/decision.cc" "src/CMakeFiles/mellowsim_mellow.dir/mellow/decision.cc.o" "gcc" "src/CMakeFiles/mellowsim_mellow.dir/mellow/decision.cc.o.d"
  "/root/repo/src/mellow/policy.cc" "src/CMakeFiles/mellowsim_mellow.dir/mellow/policy.cc.o" "gcc" "src/CMakeFiles/mellowsim_mellow.dir/mellow/policy.cc.o.d"
  "/root/repo/src/mellow/wear_quota.cc" "src/CMakeFiles/mellowsim_mellow.dir/mellow/wear_quota.cc.o" "gcc" "src/CMakeFiles/mellowsim_mellow.dir/mellow/wear_quota.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mellowsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mellowsim_wear.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
