file(REMOVE_RECURSE
  "../examples/trace_replay"
  "../examples/trace_replay.pdb"
  "CMakeFiles/trace_replay.dir/trace_replay.cpp.o"
  "CMakeFiles/trace_replay.dir/trace_replay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
