file(REMOVE_RECURSE
  "../examples/policy_explorer"
  "../examples/policy_explorer.pdb"
  "CMakeFiles/policy_explorer.dir/policy_explorer.cpp.o"
  "CMakeFiles/policy_explorer.dir/policy_explorer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
