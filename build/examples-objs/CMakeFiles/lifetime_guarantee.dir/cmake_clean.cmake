file(REMOVE_RECURSE
  "../examples/lifetime_guarantee"
  "../examples/lifetime_guarantee.pdb"
  "CMakeFiles/lifetime_guarantee.dir/lifetime_guarantee.cpp.o"
  "CMakeFiles/lifetime_guarantee.dir/lifetime_guarantee.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifetime_guarantee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
