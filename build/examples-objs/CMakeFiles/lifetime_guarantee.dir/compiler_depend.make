# Empty compiler generated dependencies file for lifetime_guarantee.
# This may be replaced when dependencies are built.
