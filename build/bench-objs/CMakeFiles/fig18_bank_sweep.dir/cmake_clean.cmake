file(REMOVE_RECURSE
  "../bench/fig18_bank_sweep"
  "../bench/fig18_bank_sweep.pdb"
  "CMakeFiles/fig18_bank_sweep.dir/fig18_bank_sweep.cc.o"
  "CMakeFiles/fig18_bank_sweep.dir/fig18_bank_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_bank_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
