file(REMOVE_RECURSE
  "../bench/abl_dead_block"
  "../bench/abl_dead_block.pdb"
  "CMakeFiles/abl_dead_block.dir/abl_dead_block.cc.o"
  "CMakeFiles/abl_dead_block.dir/abl_dead_block.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dead_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
