# Empty compiler generated dependencies file for abl_dead_block.
# This may be replaced when dependencies are built.
