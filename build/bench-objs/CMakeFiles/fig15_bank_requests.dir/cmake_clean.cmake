file(REMOVE_RECURSE
  "../bench/fig15_bank_requests"
  "../bench/fig15_bank_requests.pdb"
  "CMakeFiles/fig15_bank_requests.dir/fig15_bank_requests.cc.o"
  "CMakeFiles/fig15_bank_requests.dir/fig15_bank_requests.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_bank_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
