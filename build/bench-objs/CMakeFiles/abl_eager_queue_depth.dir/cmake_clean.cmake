file(REMOVE_RECURSE
  "../bench/abl_eager_queue_depth"
  "../bench/abl_eager_queue_depth.pdb"
  "CMakeFiles/abl_eager_queue_depth.dir/abl_eager_queue_depth.cc.o"
  "CMakeFiles/abl_eager_queue_depth.dir/abl_eager_queue_depth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_eager_queue_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
