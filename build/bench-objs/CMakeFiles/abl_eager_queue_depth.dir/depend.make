# Empty dependencies file for abl_eager_queue_depth.
# This may be replaced when dependencies are built.
