file(REMOVE_RECURSE
  "../bench/abl_threshold_ratio"
  "../bench/abl_threshold_ratio.pdb"
  "CMakeFiles/abl_threshold_ratio.dir/abl_threshold_ratio.cc.o"
  "CMakeFiles/abl_threshold_ratio.dir/abl_threshold_ratio.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_threshold_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
