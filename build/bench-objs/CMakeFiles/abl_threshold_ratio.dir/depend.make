# Empty dependencies file for abl_threshold_ratio.
# This may be replaced when dependencies are built.
