file(REMOVE_RECURSE
  "../bench/abl_multi_latency"
  "../bench/abl_multi_latency.pdb"
  "CMakeFiles/abl_multi_latency.dir/abl_multi_latency.cc.o"
  "CMakeFiles/abl_multi_latency.dir/abl_multi_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_multi_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
