# Empty dependencies file for abl_multi_latency.
# This may be replaced when dependencies are built.
