file(REMOVE_RECURSE
  "../bench/fig16_energy"
  "../bench/fig16_energy.pdb"
  "CMakeFiles/fig16_energy.dir/fig16_energy.cc.o"
  "CMakeFiles/fig16_energy.dir/fig16_energy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
