file(REMOVE_RECURSE
  "../bench/abl_sample_period"
  "../bench/abl_sample_period.pdb"
  "CMakeFiles/abl_sample_period.dir/abl_sample_period.cc.o"
  "CMakeFiles/abl_sample_period.dir/abl_sample_period.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sample_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
