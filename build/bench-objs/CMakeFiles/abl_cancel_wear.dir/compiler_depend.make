# Empty compiler generated dependencies file for abl_cancel_wear.
# This may be replaced when dependencies are built.
