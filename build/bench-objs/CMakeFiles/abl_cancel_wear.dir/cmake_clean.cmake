file(REMOVE_RECURSE
  "../bench/abl_cancel_wear"
  "../bench/abl_cancel_wear.pdb"
  "CMakeFiles/abl_cancel_wear.dir/abl_cancel_wear.cc.o"
  "CMakeFiles/abl_cancel_wear.dir/abl_cancel_wear.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cancel_wear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
