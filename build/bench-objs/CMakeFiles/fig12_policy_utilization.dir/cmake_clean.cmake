file(REMOVE_RECURSE
  "../bench/fig12_policy_utilization"
  "../bench/fig12_policy_utilization.pdb"
  "CMakeFiles/fig12_policy_utilization.dir/fig12_policy_utilization.cc.o"
  "CMakeFiles/fig12_policy_utilization.dir/fig12_policy_utilization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_policy_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
