file(REMOVE_RECURSE
  "../bench/abl_write_pausing"
  "../bench/abl_write_pausing.pdb"
  "CMakeFiles/abl_write_pausing.dir/abl_write_pausing.cc.o"
  "CMakeFiles/abl_write_pausing.dir/abl_write_pausing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_write_pausing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
