# Empty dependencies file for abl_write_pausing.
# This may be replaced when dependencies are built.
