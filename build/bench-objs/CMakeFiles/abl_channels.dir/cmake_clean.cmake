file(REMOVE_RECURSE
  "../bench/abl_channels"
  "../bench/abl_channels.pdb"
  "CMakeFiles/abl_channels.dir/abl_channels.cc.o"
  "CMakeFiles/abl_channels.dir/abl_channels.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
