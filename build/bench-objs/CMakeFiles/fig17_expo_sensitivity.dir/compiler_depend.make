# Empty compiler generated dependencies file for fig17_expo_sensitivity.
# This may be replaced when dependencies are built.
