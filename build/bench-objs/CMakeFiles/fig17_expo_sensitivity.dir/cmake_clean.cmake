file(REMOVE_RECURSE
  "../bench/fig17_expo_sensitivity"
  "../bench/fig17_expo_sensitivity.pdb"
  "CMakeFiles/fig17_expo_sensitivity.dir/fig17_expo_sensitivity.cc.o"
  "CMakeFiles/fig17_expo_sensitivity.dir/fig17_expo_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_expo_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
