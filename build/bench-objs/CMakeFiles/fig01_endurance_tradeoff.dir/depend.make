# Empty dependencies file for fig01_endurance_tradeoff.
# This may be replaced when dependencies are built.
