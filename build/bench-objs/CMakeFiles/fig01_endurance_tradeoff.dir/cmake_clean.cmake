file(REMOVE_RECURSE
  "../bench/fig01_endurance_tradeoff"
  "../bench/fig01_endurance_tradeoff.pdb"
  "CMakeFiles/fig01_endurance_tradeoff.dir/fig01_endurance_tradeoff.cc.o"
  "CMakeFiles/fig01_endurance_tradeoff.dir/fig01_endurance_tradeoff.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_endurance_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
