# Empty dependencies file for fig02_static_latency.
# This may be replaced when dependencies are built.
