file(REMOVE_RECURSE
  "../bench/fig02_static_latency"
  "../bench/fig02_static_latency.pdb"
  "CMakeFiles/fig02_static_latency.dir/fig02_static_latency.cc.o"
  "CMakeFiles/fig02_static_latency.dir/fig02_static_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_static_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
