# Empty dependencies file for tab06_energy_model.
# This may be replaced when dependencies are built.
