file(REMOVE_RECURSE
  "../bench/tab06_energy_model"
  "../bench/tab06_energy_model.pdb"
  "CMakeFiles/tab06_energy_model.dir/tab06_energy_model.cc.o"
  "CMakeFiles/tab06_energy_model.dir/tab06_energy_model.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab06_energy_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
