file(REMOVE_RECURSE
  "../bench/fig19_vs_static"
  "../bench/fig19_vs_static.pdb"
  "CMakeFiles/fig19_vs_static.dir/fig19_vs_static.cc.o"
  "CMakeFiles/fig19_vs_static.dir/fig19_vs_static.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_vs_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
