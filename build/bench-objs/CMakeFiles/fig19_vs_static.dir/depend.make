# Empty dependencies file for fig19_vs_static.
# This may be replaced when dependencies are built.
