file(REMOVE_RECURSE
  "../bench/fig03_bank_utilization"
  "../bench/fig03_bank_utilization.pdb"
  "CMakeFiles/fig03_bank_utilization.dir/fig03_bank_utilization.cc.o"
  "CMakeFiles/fig03_bank_utilization.dir/fig03_bank_utilization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_bank_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
