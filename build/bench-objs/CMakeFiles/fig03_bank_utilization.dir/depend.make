# Empty dependencies file for fig03_bank_utilization.
# This may be replaced when dependencies are built.
