# Empty dependencies file for fig10_policy_ipc.
# This may be replaced when dependencies are built.
