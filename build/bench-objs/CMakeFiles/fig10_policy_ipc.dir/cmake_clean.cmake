file(REMOVE_RECURSE
  "../bench/fig10_policy_ipc"
  "../bench/fig10_policy_ipc.pdb"
  "CMakeFiles/fig10_policy_ipc.dir/fig10_policy_ipc.cc.o"
  "CMakeFiles/fig10_policy_ipc.dir/fig10_policy_ipc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_policy_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
