file(REMOVE_RECURSE
  "../bench/fig07_lru_profile"
  "../bench/fig07_lru_profile.pdb"
  "CMakeFiles/fig07_lru_profile.dir/fig07_lru_profile.cc.o"
  "CMakeFiles/fig07_lru_profile.dir/fig07_lru_profile.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_lru_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
