# Empty dependencies file for fig07_lru_profile.
# This may be replaced when dependencies are built.
