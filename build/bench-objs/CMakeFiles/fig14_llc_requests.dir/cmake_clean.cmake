file(REMOVE_RECURSE
  "../bench/fig14_llc_requests"
  "../bench/fig14_llc_requests.pdb"
  "CMakeFiles/fig14_llc_requests.dir/fig14_llc_requests.cc.o"
  "CMakeFiles/fig14_llc_requests.dir/fig14_llc_requests.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_llc_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
