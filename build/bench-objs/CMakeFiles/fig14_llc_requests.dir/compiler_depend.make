# Empty compiler generated dependencies file for fig14_llc_requests.
# This may be replaced when dependencies are built.
