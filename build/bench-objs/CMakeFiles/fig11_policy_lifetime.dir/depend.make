# Empty dependencies file for fig11_policy_lifetime.
# This may be replaced when dependencies are built.
