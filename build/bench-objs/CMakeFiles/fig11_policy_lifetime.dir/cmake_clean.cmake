file(REMOVE_RECURSE
  "../bench/fig11_policy_lifetime"
  "../bench/fig11_policy_lifetime.pdb"
  "CMakeFiles/fig11_policy_lifetime.dir/fig11_policy_lifetime.cc.o"
  "CMakeFiles/fig11_policy_lifetime.dir/fig11_policy_lifetime.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_policy_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
