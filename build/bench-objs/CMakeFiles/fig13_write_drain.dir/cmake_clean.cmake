file(REMOVE_RECURSE
  "../bench/fig13_write_drain"
  "../bench/fig13_write_drain.pdb"
  "CMakeFiles/fig13_write_drain.dir/fig13_write_drain.cc.o"
  "CMakeFiles/fig13_write_drain.dir/fig13_write_drain.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_write_drain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
