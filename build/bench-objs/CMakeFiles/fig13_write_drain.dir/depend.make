# Empty dependencies file for fig13_write_drain.
# This may be replaced when dependencies are built.
