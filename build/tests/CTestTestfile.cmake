# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_event_queue[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_logging[1]_include.cmake")
include("/root/repo/build/tests/test_endurance_model[1]_include.cmake")
include("/root/repo/build/tests/test_start_gap[1]_include.cmake")
include("/root/repo/build/tests/test_security_refresh[1]_include.cmake")
include("/root/repo/build/tests/test_wear_tracker[1]_include.cmake")
include("/root/repo/build/tests/test_energy_model[1]_include.cmake")
include("/root/repo/build/tests/test_policy[1]_include.cmake")
include("/root/repo/build/tests/test_decision[1]_include.cmake")
include("/root/repo/build/tests/test_wear_quota[1]_include.cmake")
include("/root/repo/build/tests/test_address_map[1]_include.cmake")
include("/root/repo/build/tests/test_queues[1]_include.cmake")
include("/root/repo/build/tests/test_bank[1]_include.cmake")
include("/root/repo/build/tests/test_controller[1]_include.cmake")
include("/root/repo/build/tests/test_memory_system[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_eager_profiler[1]_include.cmake")
include("/root/repo/build/tests/test_llc[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_patterns[1]_include.cmake")
include("/root/repo/build/tests/test_trace_workload[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
