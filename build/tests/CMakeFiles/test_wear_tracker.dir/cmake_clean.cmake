file(REMOVE_RECURSE
  "CMakeFiles/test_wear_tracker.dir/test_wear_tracker.cc.o"
  "CMakeFiles/test_wear_tracker.dir/test_wear_tracker.cc.o.d"
  "test_wear_tracker"
  "test_wear_tracker.pdb"
  "test_wear_tracker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wear_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
