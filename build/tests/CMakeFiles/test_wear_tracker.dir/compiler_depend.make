# Empty compiler generated dependencies file for test_wear_tracker.
# This may be replaced when dependencies are built.
