file(REMOVE_RECURSE
  "CMakeFiles/test_security_refresh.dir/test_security_refresh.cc.o"
  "CMakeFiles/test_security_refresh.dir/test_security_refresh.cc.o.d"
  "test_security_refresh"
  "test_security_refresh.pdb"
  "test_security_refresh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_security_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
