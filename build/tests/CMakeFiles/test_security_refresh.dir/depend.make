# Empty dependencies file for test_security_refresh.
# This may be replaced when dependencies are built.
