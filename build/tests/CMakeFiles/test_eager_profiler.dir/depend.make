# Empty dependencies file for test_eager_profiler.
# This may be replaced when dependencies are built.
