file(REMOVE_RECURSE
  "CMakeFiles/test_eager_profiler.dir/test_eager_profiler.cc.o"
  "CMakeFiles/test_eager_profiler.dir/test_eager_profiler.cc.o.d"
  "test_eager_profiler"
  "test_eager_profiler.pdb"
  "test_eager_profiler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eager_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
