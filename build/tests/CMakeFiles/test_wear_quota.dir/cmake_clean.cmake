file(REMOVE_RECURSE
  "CMakeFiles/test_wear_quota.dir/test_wear_quota.cc.o"
  "CMakeFiles/test_wear_quota.dir/test_wear_quota.cc.o.d"
  "test_wear_quota"
  "test_wear_quota.pdb"
  "test_wear_quota[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wear_quota.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
