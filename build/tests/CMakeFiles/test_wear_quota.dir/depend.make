# Empty dependencies file for test_wear_quota.
# This may be replaced when dependencies are built.
