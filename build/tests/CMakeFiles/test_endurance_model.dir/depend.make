# Empty dependencies file for test_endurance_model.
# This may be replaced when dependencies are built.
