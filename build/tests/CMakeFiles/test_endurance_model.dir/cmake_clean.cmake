file(REMOVE_RECURSE
  "CMakeFiles/test_endurance_model.dir/test_endurance_model.cc.o"
  "CMakeFiles/test_endurance_model.dir/test_endurance_model.cc.o.d"
  "test_endurance_model"
  "test_endurance_model.pdb"
  "test_endurance_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_endurance_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
