/**
 * @file
 * Determinism audit harness.
 *
 * Runs the same (workload, policy, seed) configuration several times
 * in fresh System instances and byte-compares an exhaustive stats
 * dump across the runs. Any divergence — container iteration order
 * leaking into results, uninitialized memory, hidden global state —
 * shows up as a first-differing-line diff and a non-zero exit code.
 *
 * This is the gate any future parallelism work must keep green: the
 * simulator's contract is that identical inputs produce bit-identical
 * outputs.
 *
 * Usage:
 *   determinism_check [workload] [policy] [instructions] [warmup]
 *                     [seed] [runs] [faults(0|1)] [leveler]
 *   determinism_check --threads N [instructions] [warmup]
 *
 * The optional [leveler] argument (start-gap, security-refresh,
 * soft-wear, wolfram, none) selects the wear-leveling backend and
 * shrinks the memory to 64 MB so the table-based backends stay cheap;
 * the --threads sweep grid includes SoftWear and WoLFRaM entries of
 * its own.
 *
 * The --threads mode is the parallel-readiness gate: it first runs
 * the conservative-lookahead shard gate (a four-shard ShardGroup ring
 * whose threaded epoch run must be byte-identical to the serial
 * oracle — the DESIGN.md §13 protocol promise), then builds a
 * (workload x policy x seed) sweep grid — fault injection layered on
 * alternate entries so the fault RNG is contended too — runs it once
 * serially as the reference, then again across N worker threads via
 * runConfigs(configs, N), and byte-compares every report fingerprint.
 * Any cross-thread state leak (a shared RNG, an unsynchronized global
 * tally, allocator-order dependence) shows up as a diff between the
 * serial and threaded sweeps.
 *
 * With MELLOWSIM_FP_DUMP=<path> the reference fingerprint is also
 * written to <path>, so two *builds* (e.g. before and after a kernel
 * rework) can be byte-compared, not just two runs of one build.
 *
 * Defaults exercise a representative configuration: the stream
 * workload under BE-Mellow+SC+WQ (eager queue, cancellation and Wear
 * Quota all active). With faults=1 an aggressive fault-injection
 * configuration is layered on top (tiny endurance, heavy variation,
 * transient verify failures) so the fault RNG draws, retries,
 * repairs, retirements and remap traffic are all covered by the
 * byte-identical same-seed audit.
 */

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "mellow/policy.hh"
#include "wear/wear_leveler.hh"
#include "sim/logging.hh"
#include "sim/shard.hh"
#include "system/report.hh"
#include "system/runner.hh"
#include "system/system.hh"

namespace
{

using namespace mellowsim;

/** Append one "name value" line; doubles use full precision. */
void
line(std::ostringstream &out, const char *name, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out << name << ' ' << buf << '\n';
}

void
line(std::ostringstream &out, const char *name, std::uint64_t v)
{
    out << name << ' ' << v << '\n';
}

/**
 * Textual fingerprint of everything in a SimReport. This is the part
 * of the audit the --threads sweep can apply too, where only the
 * reports survive the worker threads (each System is torn down inside
 * runConfigs()).
 */
std::string
reportFingerprint(const SimReport &r)
{
    std::ostringstream out;
    out << "workload " << r.workload << '\n';
    out << "policy " << r.policy << '\n';
    out << "status " << reportStatusName(r.status) << '\n';
    line(out, "capacityFloorReached",
         static_cast<std::uint64_t>(r.capacityFloorReached));
    line(out, "instructions", r.instructions);
    line(out, "simTicks", static_cast<std::uint64_t>(r.simTicks));
    line(out, "ipc", r.ipc);
    line(out, "lifetimeYears", r.lifetimeYears);
    line(out, "avgBankUtilization", r.avgBankUtilization);
    line(out, "drainTimeFraction", r.drainTimeFraction);
    line(out, "mpki", r.mpki);
    line(out, "llcDemandReads", r.llcDemandReads);
    line(out, "llcDemandWrites", r.llcDemandWrites);
    line(out, "llcMisses", r.llcMisses);
    line(out, "writebacksToMem", r.writebacksToMem);
    line(out, "eagerSent", r.eagerSent);
    line(out, "eagerWasted", r.eagerWasted);
    line(out, "memReads", r.memReads);
    line(out, "forwardedReads", r.forwardedReads);
    line(out, "issuedNormalWrites", r.issuedNormalWrites);
    line(out, "issuedSlowWrites", r.issuedSlowWrites);
    line(out, "issuedEagerNormal", r.issuedEagerNormal);
    line(out, "issuedEagerSlow", r.issuedEagerSlow);
    line(out, "cancelledWrites", r.cancelledWrites);
    line(out, "pausedWrites", r.pausedWrites);
    line(out, "drainEntries", r.drainEntries);
    line(out, "avgReadLatencyNs", r.avgReadLatencyNs);
    line(out, "readEnergyPj", r.readEnergyPj.value());
    line(out, "writeEnergyPj", r.writeEnergyPj.value());
    line(out, "totalEnergyPj", r.totalEnergyPj.value());
    line(out, "quotaPeriods", r.quotaPeriods);
    line(out, "quotaSlowOnlyPeriods", r.quotaSlowOnlyPeriods);
    line(out, "writeRetries", r.writeRetries);
    line(out, "transientWriteFailures", r.transientWriteFailures);
    line(out, "permanentFaults", r.permanentFaults);
    line(out, "faultRepairsUsed", r.faultRepairsUsed);
    line(out, "retiredLines", r.retiredLines);
    line(out, "deadLines", r.deadLines);
    line(out, "firstFaultTick",
         static_cast<std::uint64_t>(r.firstFaultTick));
    line(out, "firstUncorrectableTick",
         static_cast<std::uint64_t>(r.firstUncorrectableTick));
    line(out, "effectiveCapacityFraction", r.effectiveCapacityFraction);
    return out.str();
}

/**
 * Exhaustive textual fingerprint of one run: the full SimReport plus
 * per-bank wear, busy-time and quota state dug out of the live
 * system. Everything that could diverge between runs is in here.
 */
std::string
fingerprint(System &sys, const SimReport &r)
{
    std::ostringstream out;
    out << reportFingerprint(r);

    MemorySystem &mem = sys.memory();
    for (unsigned c = 0; c < mem.numChannels(); ++c) {
        const MemoryController &ctrl = mem.channel(ChannelId(c));
        const WearTracker &wear = ctrl.wearTracker();
        for (unsigned b = 0; b < ctrl.numBanks(); ++b) {
            const BankWearStats &w = wear.bankStats(BankId(b));
            out << "ch" << c << ".bank" << b << ' ';
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.17g", w.wearUnits);
            out << buf << ' ' << w.normalWrites << ' ' << w.slowWrites
                << ' ' << w.cancelledWrites << ' '
                << w.maintenanceWrites << ' '
                << ctrl.bank(BankId(b)).busyTracker().busyTicks() << '\n';
            if (const WearLeveler *lev = ctrl.issueLeveler(BankId(b))) {
                // Fold a prefix of the live permutation into the dump
                // so PAD/permutation state must replay exactly too.
                std::uint64_t h = 0;
                std::uint64_t n = std::min<std::uint64_t>(
                    lev->numBlocks(), 4096);
                for (std::uint64_t i = 0; i < n; ++i)
                    h = h * 1099511628211ull + lev->remap(i);
                out << "ch" << c << ".lev" << b << ' ' << lev->name()
                    << ' ' << h << '\n';
            }
        }
        if (const WearQuota *q = ctrl.wearQuota()) {
            for (unsigned b = 0; b < ctrl.numBanks(); ++b) {
                out << "ch" << c << ".quota" << b << ' ';
                char buf[64];
                std::snprintf(buf, sizeof(buf), "%.17g",
                              q->bankWear(BankId(b)));
                out << buf << ' ' << q->slowOnlyPeriods(BankId(b)) << '\n';
            }
        }
        if (const FaultModel *fm = ctrl.faultModel()) {
            for (unsigned b = 0; b < ctrl.numBanks(); ++b) {
                out << "ch" << c << ".fault" << b << ' '
                    << fm->sparesUsed(BankId(b)) << ' '
                    << fm->retriesForBank(BankId(b))
                    << '\n';
            }
            // The capacity trace is appended in event order, so its
            // exact sequence must replay too.
            for (const CapacitySample &cs : fm->capacityTrace()) {
                out << "ch" << c << ".trace "
                    << static_cast<std::uint64_t>(cs.tick) << ' '
                    << cs.retiredLines << ' ' << cs.deadLines << '\n';
            }
        }
    }
    return out.str();
}

/** Report the first line where two fingerprints diverge. */
void
reportFirstDiff(const std::string &a, const std::string &b)
{
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    unsigned lineno = 0;
    for (;;) {
        bool ga = static_cast<bool>(std::getline(sa, la));
        bool gb = static_cast<bool>(std::getline(sb, lb));
        ++lineno;
        if (!ga && !gb)
            return;
        if (la != lb || ga != gb) {
            std::fprintf(stderr,
                         "first divergence at line %u:\n  run 1: %s\n"
                         "  run N: %s\n",
                         lineno, ga ? la.c_str() : "<end of dump>",
                         gb ? lb.c_str() : "<end of dump>");
            return;
        }
    }
}

/**
 * Aggressive fault-injection layer: near-instant endurance
 * exhaustion, a heavy weak-line tail, frequent verify failures, and
 * repair / spare pools small enough to exhaust, so every fault path
 * fires within a short run.
 */
void
layerFaults(SystemConfig &cfg)
{
    FaultConfig &f = cfg.memory.fault;
    f.enabled = true;
    f.enduranceScale = 5e-7;
    f.enduranceSigma = 1.0;
    f.transientFailProb = 0.02;
    f.maxRetries = 3;
    f.repairEntriesPerLine = 1;
    f.spareLinesPerBank = 8;
}

/**
 * Select a wear-leveling backend and shrink the memory to 64 MB: the
 * table-based zoo backends (SoftWear pages, WoLFRaM's explicit PAD)
 * cost per-line state, so the audit runs them on a small geometry —
 * which also makes the fault layer's retirements dense enough to
 * exercise the unified remap path.
 */
void
layerLeveler(SystemConfig &cfg, WearLevelerKind kind)
{
    cfg.memory.wearLeveler = kind;
    cfg.memory.geometry.capacityBytes = 64ull << 20;
    // Tiny caches, so dirty lines actually reach memory inside the
    // audit's short run: with the stock 2 MB LLC a 200k-instruction
    // run evicts nothing and the leveler would never see a write,
    // let alone swap, migrate or retire anything.
    cfg.hierarchy.l1.sizeBytes = 4 * 1024;
    cfg.hierarchy.l2.sizeBytes = 8 * 1024;
    cfg.hierarchy.llc.cache.sizeBytes = 16 * 1024;
    // Hair-trigger SoftWear knobs and near-zero endurance, so page
    // migrations, delegate retirements and spare exhaustion all fire
    // (and must replay) inside the 200k-instruction audit.
    cfg.memory.softWearSamplePeriod = 2;
    cfg.memory.softWearRelocThreshold = 4;
    cfg.memory.gapWritePeriod = 8;
    cfg.memory.fault.enduranceScale = 1e-9;
}

/**
 * Conservative-lookahead shard gate: a four-shard ShardGroup ring,
 * pre-seeded with deterministic hop-count messages that each delivery
 * forwards onward, fingerprinted after a serial-oracle run (jobs 1)
 * and after a threaded run (one worker per shard, sync::Barrier
 * between epochs). The epoch protocol's promise (shard.hh) is that
 * the two are byte-identical.
 */
std::string
shardGroupFingerprint(std::uint64_t seed, unsigned jobs)
{
    constexpr Tick kLookahead = 16;
    constexpr unsigned kShards = 4;

    ShardGroup group{Lookahead(kLookahead)};
    std::vector<ChannelShard *> shards;
    for (unsigned i = 0; i < kShards; ++i)
        shards.push_back(&group.addShard());
    for (unsigned i = 0; i < kShards; ++i)
        group.connect(*shards[i], *shards[(i + 1) % kShards]);

    for (ChannelShard *shard : shards) {
        shard->setHandler(
            [](ChannelShard &self, Tick, ShardPayload payload) {
                if (payload > 0)
                    self.send(0, payload - 1);
            });
        // Pre-seed at curTick 0 with a splitmix-style per-shard
        // stream; extras ascend so each sender stays monotonic and
        // stay below the lookahead so pre-seeds precede every
        // handler-minted reply.
        std::uint64_t state = seed * 0x9E3779B97F4A7C15ull +
                              shard->id() + 1;
        for (Tick extra = 0; extra < kLookahead; ++extra) {
            state ^= state >> 27;
            state *= 0x94D049BB133111EBull;
            shard->sendDelayed(0, state % 12 + 1, extra);
        }
    }

    group.run(2000, jobs);

    std::ostringstream out;
    ShardStats merged = group.mergedStats();
    line(out, "shard.checksum", group.mergedChecksum());
    line(out, "shard.sent", merged.messagesSent.value());
    line(out, "shard.received", merged.messagesReceived.value());
    line(out, "shard.deliveries", merged.deliveries.value());
    line(out, "shard.tickSum", merged.deliveryTick.sum());
    line(out, "shard.tickCount", merged.deliveryTick.count());
    for (const ChannelShard *shard : shards) {
        out << "shard" << shard->id() << ".checksum "
            << shard->checksum() << '\n';
    }
    return out.str();
}

int
runShardGate(unsigned jobs)
{
    bool ok = true;
    for (std::uint64_t seed : {1ull, 7ull, 0xC0FFEEull}) {
        std::string oracle = shardGroupFingerprint(seed, 1);
        std::string threaded = shardGroupFingerprint(seed, jobs);
        if (oracle != threaded) {
            ok = false;
            std::fprintf(stderr,
                         "FAIL: ShardGroup seed %" PRIu64
                         " diverged between the serial oracle and the "
                         "threaded epoch run (%u jobs)\n",
                         seed, jobs);
            reportFirstDiff(oracle, threaded);
        }
    }
    if (ok)
        std::printf("OK: 4-shard lookahead ring byte-identical "
                    "between serial oracle and threaded epochs "
                    "(%u jobs)\n", jobs);
    return ok ? 0 : 1;
}

/**
 * Parallel-readiness gate (--threads N): run a sweep grid serially,
 * then across N contended worker threads, and require byte-identical
 * report fingerprints slot by slot.
 */
int
runThreadsMode(unsigned jobs, std::uint64_t instructions,
               std::uint64_t warmup)
{
    // Sequential, random and pointer-chasing traffic across plain and
    // fully-featured policies; fault injection on alternate entries so
    // the per-system fault RNGs run under contention too.
    const char *workloads[] = {"stream", "gups", "mcf"};
    const char *policyNames[] = {"Norm", "BE-Mellow+SC+WQ"};

    std::vector<SystemConfig> configs;
    for (const char *w : workloads) {
        for (const char *p : policyNames) {
            SystemConfig cfg;
            cfg.workloadName = w;
            cfg.policy = policies::fromName(p);
            cfg.instructions = instructions;
            cfg.warmupInstructions = warmup;
            cfg.seed = configs.size() + 1;
            if (configs.size() % 2 == 1)
                layerFaults(cfg);
            configs.push_back(std::move(cfg));
        }
    }
    // The zoo backends under fault injection: their permutation /
    // PAD state, migration traffic and delegate retirements must stay
    // byte-identical under worker-thread contention too.
    for (WearLevelerKind kind :
         {WearLevelerKind::SoftWear, WearLevelerKind::WoLFRaM}) {
        SystemConfig cfg;
        cfg.workloadName = "stream";
        cfg.policy = policies::fromName("BE-Mellow+SC+WQ");
        cfg.instructions = instructions;
        cfg.warmupInstructions = warmup;
        cfg.seed = configs.size() + 1;
        layerFaults(cfg);
        layerLeveler(cfg, kind);
        configs.push_back(std::move(cfg));
    }

    // The sharded-kernel seam first: cheap, and a protocol break here
    // explains any sweep divergence below.
    if (runShardGate(jobs) != 0)
        return 1;

    std::vector<SimReport> serial = runConfigs(configs, 1);
    std::vector<SimReport> threaded = runConfigs(configs, jobs);

    bool ok = true;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        std::string a = reportFingerprint(serial[i]);
        std::string b = reportFingerprint(threaded[i]);
        if (a != b) {
            ok = false;
            std::fprintf(stderr,
                         "FAIL: grid entry %zu (%s / %s) diverged "
                         "between the serial reference and the "
                         "%u-thread sweep\n",
                         i, serial[i].workload.c_str(),
                         serial[i].policy.c_str(), jobs);
            reportFirstDiff(a, b);
        }
    }
    if (!ok)
        return 1;
    std::printf("OK: %zu-config sweep grid (%" PRIu64
                " instrs each) byte-identical between serial and "
                "%u-thread runs\n",
                configs.size(), instructions, jobs);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mellowsim;

    if (argc > 1 && std::string(argv[1]) == "--threads") {
        if (argc < 3) {
            std::fprintf(stderr,
                         "usage: %s --threads N [instructions] "
                         "[warmup]\n", argv[0]);
            return 2;
        }
        unsigned jobs = static_cast<unsigned>(
            std::strtoul(argv[2], nullptr, 10));
        // Long enough per config that the worker threads genuinely
        // overlap (contended allocator, shared stdio, ...) instead of
        // finishing one after another.
        std::uint64_t instructions =
            argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1'000'000;
        std::uint64_t warmup =
            argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 50'000;
        if (jobs == 0 || instructions == 0) {
            std::fprintf(stderr,
                         "usage: %s --threads N>=1 [instructions>0] "
                         "[warmup]\n", argv[0]);
            return 2;
        }
        Logger::setQuiet(true);
        return runThreadsMode(jobs, instructions, warmup);
    }

    std::string workload = argc > 1 ? argv[1] : "stream";
    std::string policy = argc > 2 ? argv[2] : "BE-Mellow+SC+WQ";
    std::uint64_t instructions =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 300'000;
    std::uint64_t warmup =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 50'000;
    std::uint64_t seed =
        argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;
    unsigned runs = argc > 6
                        ? static_cast<unsigned>(
                              std::strtoul(argv[6], nullptr, 10))
                        : 2;
    bool faults =
        argc > 7 && std::strtoul(argv[7], nullptr, 10) != 0;
    bool has_leveler = false;
    WearLevelerKind leveler = WearLevelerKind::StartGap;
    if (argc > 8) {
        has_leveler = wearLevelerKindFromName(argv[8], &leveler);
        if (!has_leveler) {
            std::fprintf(stderr, "unknown leveler '%s'\n", argv[8]);
            return 2;
        }
    }
    if (instructions == 0 || runs < 2) {
        std::fprintf(stderr,
                     "usage: %s [workload] [policy] [instructions] "
                     "[warmup] [seed] [runs>=2] [faults(0|1)] "
                     "[leveler]\n",
                     argv[0]);
        return 2;
    }

    Logger::setQuiet(true);

    std::string reference;
    for (unsigned i = 0; i < runs; ++i) {
        SystemConfig cfg;
        cfg.workloadName = workload;
        cfg.policy = policies::fromName(policy);
        cfg.instructions = instructions;
        cfg.warmupInstructions = warmup;
        cfg.seed = seed;
        if (faults)
            layerFaults(cfg);
        if (has_leveler)
            layerLeveler(cfg, leveler);

        System sys(cfg);
        SimReport r = sys.run();
        std::string dump = fingerprint(sys, r);

        if (i == 0) {
            reference = std::move(dump);
            if (const char *path = std::getenv("MELLOWSIM_FP_DUMP")) {
                if (std::FILE *f = std::fopen(path, "w")) {
                    std::fwrite(reference.data(), 1, reference.size(),
                                f);
                    std::fclose(f);
                } else {
                    std::fprintf(stderr,
                                 "warning: cannot write fingerprint "
                                 "to %s\n", path);
                }
            }
        } else if (dump != reference) {
            std::fprintf(stderr,
                         "FAIL: run %u of %s/%s (seed %" PRIu64
                         ") diverged from run 1\n",
                         i + 1, workload.c_str(), policy.c_str(),
                         seed);
            reportFirstDiff(reference, dump);
            return 1;
        }
    }

    std::printf("OK: %u runs of %s/%s (%" PRIu64
                " instrs, seed %" PRIu64
                ") produced byte-identical stats (%zu-byte dump)\n",
                runs, workload.c_str(), policy.c_str(), instructions,
                seed, reference.size());
    return 0;
}
