/**
 * @file
 * Determinism audit harness.
 *
 * Runs the same (workload, policy, seed) configuration several times
 * in fresh System instances and byte-compares an exhaustive stats
 * dump across the runs. Any divergence — container iteration order
 * leaking into results, uninitialized memory, hidden global state —
 * shows up as a first-differing-line diff and a non-zero exit code.
 *
 * This is the gate any future parallelism work must keep green: the
 * simulator's contract is that identical inputs produce bit-identical
 * outputs.
 *
 * Usage:
 *   determinism_check [workload] [policy] [instructions] [warmup]
 *                     [seed] [runs] [faults(0|1)]
 *
 * With MELLOWSIM_FP_DUMP=<path> the reference fingerprint is also
 * written to <path>, so two *builds* (e.g. before and after a kernel
 * rework) can be byte-compared, not just two runs of one build.
 *
 * Defaults exercise a representative configuration: the stream
 * workload under BE-Mellow+SC+WQ (eager queue, cancellation and Wear
 * Quota all active). With faults=1 an aggressive fault-injection
 * configuration is layered on top (tiny endurance, heavy variation,
 * transient verify failures) so the fault RNG draws, retries,
 * repairs, retirements and remap traffic are all covered by the
 * byte-identical same-seed audit.
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "mellow/policy.hh"
#include "sim/logging.hh"
#include "system/report.hh"
#include "system/system.hh"

namespace
{

using namespace mellowsim;

/** Append one "name value" line; doubles use full precision. */
void
line(std::ostringstream &out, const char *name, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out << name << ' ' << buf << '\n';
}

void
line(std::ostringstream &out, const char *name, std::uint64_t v)
{
    out << name << ' ' << v << '\n';
}

/**
 * Exhaustive textual fingerprint of one run: the full SimReport plus
 * per-bank wear, busy-time and quota state dug out of the live
 * system. Everything that could diverge between runs is in here.
 */
std::string
fingerprint(System &sys, const SimReport &r)
{
    std::ostringstream out;
    out << "workload " << r.workload << '\n';
    out << "policy " << r.policy << '\n';
    line(out, "instructions", r.instructions);
    line(out, "simTicks", static_cast<std::uint64_t>(r.simTicks));
    line(out, "ipc", r.ipc);
    line(out, "lifetimeYears", r.lifetimeYears);
    line(out, "avgBankUtilization", r.avgBankUtilization);
    line(out, "drainTimeFraction", r.drainTimeFraction);
    line(out, "mpki", r.mpki);
    line(out, "llcDemandReads", r.llcDemandReads);
    line(out, "llcDemandWrites", r.llcDemandWrites);
    line(out, "llcMisses", r.llcMisses);
    line(out, "writebacksToMem", r.writebacksToMem);
    line(out, "eagerSent", r.eagerSent);
    line(out, "eagerWasted", r.eagerWasted);
    line(out, "memReads", r.memReads);
    line(out, "forwardedReads", r.forwardedReads);
    line(out, "issuedNormalWrites", r.issuedNormalWrites);
    line(out, "issuedSlowWrites", r.issuedSlowWrites);
    line(out, "issuedEagerNormal", r.issuedEagerNormal);
    line(out, "issuedEagerSlow", r.issuedEagerSlow);
    line(out, "cancelledWrites", r.cancelledWrites);
    line(out, "pausedWrites", r.pausedWrites);
    line(out, "drainEntries", r.drainEntries);
    line(out, "avgReadLatencyNs", r.avgReadLatencyNs);
    line(out, "readEnergyPj", r.readEnergyPj.value());
    line(out, "writeEnergyPj", r.writeEnergyPj.value());
    line(out, "totalEnergyPj", r.totalEnergyPj.value());
    line(out, "quotaPeriods", r.quotaPeriods);
    line(out, "quotaSlowOnlyPeriods", r.quotaSlowOnlyPeriods);
    line(out, "writeRetries", r.writeRetries);
    line(out, "transientWriteFailures", r.transientWriteFailures);
    line(out, "permanentFaults", r.permanentFaults);
    line(out, "faultRepairsUsed", r.faultRepairsUsed);
    line(out, "retiredLines", r.retiredLines);
    line(out, "deadLines", r.deadLines);
    line(out, "firstFaultTick",
         static_cast<std::uint64_t>(r.firstFaultTick));
    line(out, "firstUncorrectableTick",
         static_cast<std::uint64_t>(r.firstUncorrectableTick));
    line(out, "effectiveCapacityFraction", r.effectiveCapacityFraction);

    MemorySystem &mem = sys.memory();
    for (unsigned c = 0; c < mem.numChannels(); ++c) {
        const MemoryController &ctrl = mem.channel(ChannelId(c));
        const WearTracker &wear = ctrl.wearTracker();
        for (unsigned b = 0; b < ctrl.numBanks(); ++b) {
            const BankWearStats &w = wear.bankStats(BankId(b));
            out << "ch" << c << ".bank" << b << ' ';
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.17g", w.wearUnits);
            out << buf << ' ' << w.normalWrites << ' ' << w.slowWrites
                << ' ' << w.cancelledWrites << ' '
                << ctrl.bank(BankId(b)).busyTracker().busyTicks() << '\n';
        }
        if (const WearQuota *q = ctrl.wearQuota()) {
            for (unsigned b = 0; b < ctrl.numBanks(); ++b) {
                out << "ch" << c << ".quota" << b << ' ';
                char buf[64];
                std::snprintf(buf, sizeof(buf), "%.17g",
                              q->bankWear(BankId(b)));
                out << buf << ' ' << q->slowOnlyPeriods(BankId(b)) << '\n';
            }
        }
        if (const FaultModel *fm = ctrl.faultModel()) {
            for (unsigned b = 0; b < ctrl.numBanks(); ++b) {
                out << "ch" << c << ".fault" << b << ' '
                    << fm->sparesUsed(BankId(b)) << ' '
                    << fm->retriesForBank(BankId(b))
                    << '\n';
            }
            // The capacity trace is appended in event order, so its
            // exact sequence must replay too.
            for (const CapacitySample &cs : fm->capacityTrace()) {
                out << "ch" << c << ".trace "
                    << static_cast<std::uint64_t>(cs.tick) << ' '
                    << cs.retiredLines << ' ' << cs.deadLines << '\n';
            }
        }
    }
    return out.str();
}

/** Report the first line where two fingerprints diverge. */
void
reportFirstDiff(const std::string &a, const std::string &b)
{
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    unsigned lineno = 0;
    for (;;) {
        bool ga = static_cast<bool>(std::getline(sa, la));
        bool gb = static_cast<bool>(std::getline(sb, lb));
        ++lineno;
        if (!ga && !gb)
            return;
        if (la != lb || ga != gb) {
            std::fprintf(stderr,
                         "first divergence at line %u:\n  run 1: %s\n"
                         "  run N: %s\n",
                         lineno, ga ? la.c_str() : "<end of dump>",
                         gb ? lb.c_str() : "<end of dump>");
            return;
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mellowsim;

    std::string workload = argc > 1 ? argv[1] : "stream";
    std::string policy = argc > 2 ? argv[2] : "BE-Mellow+SC+WQ";
    std::uint64_t instructions =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 300'000;
    std::uint64_t warmup =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 50'000;
    std::uint64_t seed =
        argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;
    unsigned runs = argc > 6
                        ? static_cast<unsigned>(
                              std::strtoul(argv[6], nullptr, 10))
                        : 2;
    bool faults =
        argc > 7 && std::strtoul(argv[7], nullptr, 10) != 0;
    if (instructions == 0 || runs < 2) {
        std::fprintf(stderr,
                     "usage: %s [workload] [policy] [instructions] "
                     "[warmup] [seed] [runs>=2] [faults(0|1)]\n",
                     argv[0]);
        return 2;
    }

    Logger::setQuiet(true);

    std::string reference;
    for (unsigned i = 0; i < runs; ++i) {
        SystemConfig cfg;
        cfg.workloadName = workload;
        cfg.policy = policies::fromName(policy);
        cfg.instructions = instructions;
        cfg.warmupInstructions = warmup;
        cfg.seed = seed;
        if (faults) {
            // Aggressive settings so every fault path fires within a
            // short run: near-instant endurance exhaustion, a heavy
            // weak-line tail, frequent verify failures, and repair /
            // spare pools small enough to exhaust.
            FaultConfig &f = cfg.memory.fault;
            f.enabled = true;
            f.enduranceScale = 5e-7;
            f.enduranceSigma = 1.0;
            f.transientFailProb = 0.02;
            f.maxRetries = 3;
            f.repairEntriesPerLine = 1;
            f.spareLinesPerBank = 8;
        }

        System sys(cfg);
        SimReport r = sys.run();
        std::string dump = fingerprint(sys, r);

        if (i == 0) {
            reference = std::move(dump);
            if (const char *path = std::getenv("MELLOWSIM_FP_DUMP")) {
                if (std::FILE *f = std::fopen(path, "w")) {
                    std::fwrite(reference.data(), 1, reference.size(),
                                f);
                    std::fclose(f);
                } else {
                    std::fprintf(stderr,
                                 "warning: cannot write fingerprint "
                                 "to %s\n", path);
                }
            }
        } else if (dump != reference) {
            std::fprintf(stderr,
                         "FAIL: run %u of %s/%s (seed %" PRIu64
                         ") diverged from run 1\n",
                         i + 1, workload.c_str(), policy.c_str(),
                         seed);
            reportFirstDiff(reference, dump);
            return 1;
        }
    }

    std::printf("OK: %u runs of %s/%s (%" PRIu64
                " instrs, seed %" PRIu64
                ") produced byte-identical stats (%zu-byte dump)\n",
                runs, workload.c_str(), policy.c_str(), instructions,
                seed, reference.size());
    return 0;
}
