/**
 * @file
 * Determinism audit harness.
 *
 * Runs the same (workload, policy, seed) configuration several times
 * in fresh System instances and byte-compares an exhaustive stats
 * dump across the runs. Any divergence — container iteration order
 * leaking into results, uninitialized memory, hidden global state —
 * shows up as a first-differing-line diff and a non-zero exit code.
 *
 * This is the gate any future parallelism work must keep green: the
 * simulator's contract is that identical inputs produce bit-identical
 * outputs.
 *
 * Usage:
 *   determinism_check [workload] [policy] [instructions] [warmup]
 *                     [seed] [runs] [faults(0|1)] [leveler]
 *   determinism_check --threads N [instructions] [warmup]
 *
 * The optional [leveler] argument (start-gap, security-refresh,
 * soft-wear, wolfram, none) selects the wear-leveling backend and
 * shrinks the memory to 64 MB so the table-based backends stay cheap;
 * the --threads sweep grid includes SoftWear and WoLFRaM entries of
 * its own.
 *
 * The --threads mode is the parallel-readiness gate: it first runs
 * the sharded-System gate — ONE 16-channel simulation partitioned
 * across ChannelShard tasks (system/sharded.hh), run with the serial
 * oracle (shards=1) and with threaded epochs, normal and
 * fault-injected, whose report fingerprints must be byte-identical
 * (the DESIGN.md §15 determinism contract; the toy ShardPort ring
 * that used to gate here lives on as tests/test_shard_port.cc's unit
 * test of the seam itself) — then builds a (workload x policy x seed)
 * sweep grid — fault injection layered on alternate entries so the
 * fault RNG is contended too — runs it once serially as the
 * reference, then again across N worker threads via
 * runConfigs(configs, N), and byte-compares every report fingerprint.
 * Any cross-thread state leak (a shared RNG, an unsynchronized global
 * tally, allocator-order dependence) shows up as a diff between the
 * serial and threaded sweeps.
 *
 * With MELLOWSIM_FP_DUMP=<path> the reference fingerprint is also
 * written to <path>, so two *builds* (e.g. before and after a kernel
 * rework) can be byte-compared, not just two runs of one build.
 *
 * Defaults exercise a representative configuration: the stream
 * workload under BE-Mellow+SC+WQ (eager queue, cancellation and Wear
 * Quota all active). With faults=1 an aggressive fault-injection
 * configuration is layered on top (tiny endurance, heavy variation,
 * transient verify failures) so the fault RNG draws, retries,
 * repairs, retirements and remap traffic are all covered by the
 * byte-identical same-seed audit.
 */

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "mellow/policy.hh"
#include "wear/wear_leveler.hh"
#include "sim/logging.hh"
#include "system/report.hh"
#include "system/runner.hh"
#include "system/system.hh"

namespace
{

using namespace mellowsim;

/**
 * Exhaustive textual fingerprint of one run: the full SimReport plus
 * per-bank wear, busy-time and quota state dug out of the live
 * system. Everything that could diverge between runs is in here.
 */
std::string
fingerprint(System &sys, const SimReport &r)
{
    std::ostringstream out;
    out << reportFingerprint(r);

    MemorySystem &mem = sys.memory();
    for (unsigned c = 0; c < mem.numChannels(); ++c) {
        const MemoryController &ctrl = mem.channel(ChannelId(c));
        const WearTracker &wear = ctrl.wearTracker();
        for (unsigned b = 0; b < ctrl.numBanks(); ++b) {
            const BankWearStats &w = wear.bankStats(BankId(b));
            out << "ch" << c << ".bank" << b << ' ';
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.17g", w.wearUnits);
            out << buf << ' ' << w.normalWrites << ' ' << w.slowWrites
                << ' ' << w.cancelledWrites << ' '
                << w.maintenanceWrites << ' '
                << ctrl.bank(BankId(b)).busyTracker().busyTicks() << '\n';
            if (const WearLeveler *lev = ctrl.issueLeveler(BankId(b))) {
                // Fold a prefix of the live permutation into the dump
                // so PAD/permutation state must replay exactly too.
                std::uint64_t h = 0;
                std::uint64_t n = std::min<std::uint64_t>(
                    lev->numBlocks(), 4096);
                for (std::uint64_t i = 0; i < n; ++i)
                    h = h * 1099511628211ull + lev->remap(i);
                out << "ch" << c << ".lev" << b << ' ' << lev->name()
                    << ' ' << h << '\n';
            }
        }
        if (const WearQuota *q = ctrl.wearQuota()) {
            for (unsigned b = 0; b < ctrl.numBanks(); ++b) {
                out << "ch" << c << ".quota" << b << ' ';
                char buf[64];
                std::snprintf(buf, sizeof(buf), "%.17g",
                              q->bankWear(BankId(b)));
                out << buf << ' ' << q->slowOnlyPeriods(BankId(b)) << '\n';
            }
        }
        if (const FaultModel *fm = ctrl.faultModel()) {
            for (unsigned b = 0; b < ctrl.numBanks(); ++b) {
                out << "ch" << c << ".fault" << b << ' '
                    << fm->sparesUsed(BankId(b)) << ' '
                    << fm->retriesForBank(BankId(b))
                    << '\n';
            }
            // The capacity trace is appended in event order, so its
            // exact sequence must replay too.
            for (const CapacitySample &cs : fm->capacityTrace()) {
                out << "ch" << c << ".trace "
                    << static_cast<std::uint64_t>(cs.tick) << ' '
                    << cs.retiredLines << ' ' << cs.deadLines << '\n';
            }
        }
    }
    return out.str();
}

/** Report the first line where two fingerprints diverge. */
void
reportFirstDiff(const std::string &a, const std::string &b)
{
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    unsigned lineno = 0;
    for (;;) {
        bool ga = static_cast<bool>(std::getline(sa, la));
        bool gb = static_cast<bool>(std::getline(sb, lb));
        ++lineno;
        if (!ga && !gb)
            return;
        if (la != lb || ga != gb) {
            std::fprintf(stderr,
                         "first divergence at line %u:\n  run 1: %s\n"
                         "  run N: %s\n",
                         lineno, ga ? la.c_str() : "<end of dump>",
                         gb ? lb.c_str() : "<end of dump>");
            return;
        }
    }
}

/**
 * Aggressive fault-injection layer: near-instant endurance
 * exhaustion, a heavy weak-line tail, frequent verify failures, and
 * repair / spare pools small enough to exhaust, so every fault path
 * fires within a short run.
 */
void
layerFaults(SystemConfig &cfg)
{
    FaultConfig &f = cfg.memory.fault;
    f.enabled = true;
    f.enduranceScale = 5e-7;
    f.enduranceSigma = 1.0;
    f.transientFailProb = 0.02;
    f.maxRetries = 3;
    f.repairEntriesPerLine = 1;
    f.spareLinesPerBank = 8;
}

/**
 * Select a wear-leveling backend and shrink the memory to 64 MB: the
 * table-based zoo backends (SoftWear pages, WoLFRaM's explicit PAD)
 * cost per-line state, so the audit runs them on a small geometry —
 * which also makes the fault layer's retirements dense enough to
 * exercise the unified remap path.
 */
void
layerLeveler(SystemConfig &cfg, WearLevelerKind kind)
{
    cfg.memory.wearLeveler = kind;
    cfg.memory.geometry.capacityBytes = 64ull << 20;
    // Tiny caches, so dirty lines actually reach memory inside the
    // audit's short run: with the stock 2 MB LLC a 200k-instruction
    // run evicts nothing and the leveler would never see a write,
    // let alone swap, migrate or retire anything.
    cfg.hierarchy.l1.sizeBytes = 4 * 1024;
    cfg.hierarchy.l2.sizeBytes = 8 * 1024;
    cfg.hierarchy.llc.cache.sizeBytes = 16 * 1024;
    // Hair-trigger SoftWear knobs and near-zero endurance, so page
    // migrations, delegate retirements and spare exhaustion all fire
    // (and must replay) inside the 200k-instruction audit.
    cfg.memory.softWearSamplePeriod = 2;
    cfg.memory.softWearRelocThreshold = 4;
    cfg.memory.gapWritePeriod = 8;
    cfg.memory.fault.enduranceScale = 1e-9;
}

/**
 * A 16-channel configuration for the sharded-System gate, scaled down
 * so the audit stays cheap: 1 GB total capacity (64 MB per channel)
 * and small caches so write-backs genuinely reach all 16 channels
 * inside a short run.
 */
SystemConfig
shardedGateConfig(std::uint64_t seed, bool faults,
                  std::uint64_t instructions, std::uint64_t warmup)
{
    SystemConfig cfg;
    cfg.workloadName = "gups"; // random traffic hits every channel
    cfg.policy = policies::fromName("BE-Mellow+SC+WQ");
    cfg.instructions = instructions;
    cfg.warmupInstructions = warmup;
    cfg.seed = seed;
    cfg.numChannels = 16;
    cfg.memory.geometry.capacityBytes = 1ull << 30;
    cfg.hierarchy.l1.sizeBytes = 4 * 1024;
    cfg.hierarchy.l2.sizeBytes = 8 * 1024;
    cfg.hierarchy.llc.cache.sizeBytes = 16 * 1024;
    if (faults)
        layerFaults(cfg);
    return cfg;
}

/**
 * Sharded-System gate: run the real model — front-end plus 16
 * ChannelShard tasks — under the serial oracle (shards=1) and under
 * threaded epochs, normal and fault-injected, and require
 * byte-identical report fingerprints (the DESIGN.md §15 contract any
 * parallel work must keep).
 */
int
runShardedGate(unsigned jobs, std::uint64_t instructions,
               std::uint64_t warmup)
{
    // With one worker requested the "threaded" run would be the
    // oracle again; always exercise the threaded epoch driver.
    unsigned threaded_jobs = jobs < 2 ? 2 : jobs;
    bool ok = true;
    for (bool faults : {false, true}) {
        SystemConfig cfg = shardedGateConfig(faults ? 7 : 1, faults,
                                             instructions, warmup);
        cfg.shards = 1;
        std::string oracle = reportFingerprint(runSystem(cfg));
        cfg.shards = threaded_jobs;
        std::string threaded = reportFingerprint(runSystem(cfg));
        if (oracle != threaded) {
            ok = false;
            std::fprintf(stderr,
                         "FAIL: sharded 16-channel system (faults=%d) "
                         "diverged between the serial oracle and "
                         "threaded epochs (%u jobs)\n",
                         faults ? 1 : 0, threaded_jobs);
            reportFirstDiff(oracle, threaded);
        }
    }
    if (ok)
        std::printf("OK: sharded 16-channel system byte-identical "
                    "between serial oracle and threaded epochs "
                    "(%u jobs, normal + faults)\n", threaded_jobs);
    return ok ? 0 : 1;
}

/**
 * Parallel-readiness gate (--threads N): run a sweep grid serially,
 * then across N contended worker threads, and require byte-identical
 * report fingerprints slot by slot.
 */
int
runThreadsMode(unsigned jobs, std::uint64_t instructions,
               std::uint64_t warmup)
{
    // Sequential, random and pointer-chasing traffic across plain and
    // fully-featured policies; fault injection on alternate entries so
    // the per-system fault RNGs run under contention too.
    const char *workloads[] = {"stream", "gups", "mcf"};
    const char *policyNames[] = {"Norm", "BE-Mellow+SC+WQ"};

    std::vector<SystemConfig> configs;
    for (const char *w : workloads) {
        for (const char *p : policyNames) {
            SystemConfig cfg;
            cfg.workloadName = w;
            cfg.policy = policies::fromName(p);
            cfg.instructions = instructions;
            cfg.warmupInstructions = warmup;
            cfg.seed = configs.size() + 1;
            if (configs.size() % 2 == 1)
                layerFaults(cfg);
            configs.push_back(std::move(cfg));
        }
    }
    // The zoo backends under fault injection: their permutation /
    // PAD state, migration traffic and delegate retirements must stay
    // byte-identical under worker-thread contention too.
    for (WearLevelerKind kind :
         {WearLevelerKind::SoftWear, WearLevelerKind::WoLFRaM}) {
        SystemConfig cfg;
        cfg.workloadName = "stream";
        cfg.policy = policies::fromName("BE-Mellow+SC+WQ");
        cfg.instructions = instructions;
        cfg.warmupInstructions = warmup;
        cfg.seed = configs.size() + 1;
        layerFaults(cfg);
        layerLeveler(cfg, kind);
        configs.push_back(std::move(cfg));
    }

    // The sharded System first: a divergence here points at the epoch
    // protocol or the cross-shard seam, which would also explain any
    // sweep divergence below. Scaled to a fraction of the sweep's
    // instruction budget — one sharded run covers 16 channels.
    if (runShardedGate(jobs, std::max<std::uint64_t>(
                                 instructions / 4, 50'000),
                       warmup) != 0)
        return 1;

    std::vector<SimReport> serial = runConfigs(configs, 1);
    std::vector<SimReport> threaded = runConfigs(configs, jobs);

    bool ok = true;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        std::string a = reportFingerprint(serial[i]);
        std::string b = reportFingerprint(threaded[i]);
        if (a != b) {
            ok = false;
            std::fprintf(stderr,
                         "FAIL: grid entry %zu (%s / %s) diverged "
                         "between the serial reference and the "
                         "%u-thread sweep\n",
                         i, serial[i].workload.c_str(),
                         serial[i].policy.c_str(), jobs);
            reportFirstDiff(a, b);
        }
    }
    if (!ok)
        return 1;
    std::printf("OK: %zu-config sweep grid (%" PRIu64
                " instrs each) byte-identical between serial and "
                "%u-thread runs\n",
                configs.size(), instructions, jobs);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace mellowsim;

    if (argc > 1 && std::string(argv[1]) == "--threads") {
        if (argc < 3) {
            std::fprintf(stderr,
                         "usage: %s --threads N [instructions] "
                         "[warmup]\n", argv[0]);
            return 2;
        }
        unsigned jobs = static_cast<unsigned>(
            std::strtoul(argv[2], nullptr, 10));
        // Long enough per config that the worker threads genuinely
        // overlap (contended allocator, shared stdio, ...) instead of
        // finishing one after another.
        std::uint64_t instructions =
            argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1'000'000;
        std::uint64_t warmup =
            argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 50'000;
        if (jobs == 0 || instructions == 0) {
            std::fprintf(stderr,
                         "usage: %s --threads N>=1 [instructions>0] "
                         "[warmup]\n", argv[0]);
            return 2;
        }
        Logger::setQuiet(true);
        return runThreadsMode(jobs, instructions, warmup);
    }

    std::string workload = argc > 1 ? argv[1] : "stream";
    std::string policy = argc > 2 ? argv[2] : "BE-Mellow+SC+WQ";
    std::uint64_t instructions =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 300'000;
    std::uint64_t warmup =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 50'000;
    std::uint64_t seed =
        argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;
    unsigned runs = argc > 6
                        ? static_cast<unsigned>(
                              std::strtoul(argv[6], nullptr, 10))
                        : 2;
    bool faults =
        argc > 7 && std::strtoul(argv[7], nullptr, 10) != 0;
    bool has_leveler = false;
    WearLevelerKind leveler = WearLevelerKind::StartGap;
    if (argc > 8) {
        has_leveler = wearLevelerKindFromName(argv[8], &leveler);
        if (!has_leveler) {
            std::fprintf(stderr, "unknown leveler '%s'\n", argv[8]);
            return 2;
        }
    }
    if (instructions == 0 || runs < 2) {
        std::fprintf(stderr,
                     "usage: %s [workload] [policy] [instructions] "
                     "[warmup] [seed] [runs>=2] [faults(0|1)] "
                     "[leveler]\n",
                     argv[0]);
        return 2;
    }

    Logger::setQuiet(true);

    std::string reference;
    for (unsigned i = 0; i < runs; ++i) {
        SystemConfig cfg;
        cfg.workloadName = workload;
        cfg.policy = policies::fromName(policy);
        cfg.instructions = instructions;
        cfg.warmupInstructions = warmup;
        cfg.seed = seed;
        if (faults)
            layerFaults(cfg);
        if (has_leveler)
            layerLeveler(cfg, leveler);

        System sys(cfg);
        SimReport r = sys.run();
        std::string dump = fingerprint(sys, r);

        if (i == 0) {
            reference = std::move(dump);
            if (const char *path = std::getenv("MELLOWSIM_FP_DUMP")) {
                if (std::FILE *f = std::fopen(path, "w")) {
                    std::fwrite(reference.data(), 1, reference.size(),
                                f);
                    std::fclose(f);
                } else {
                    std::fprintf(stderr,
                                 "warning: cannot write fingerprint "
                                 "to %s\n", path);
                }
            }
        } else if (dump != reference) {
            std::fprintf(stderr,
                         "FAIL: run %u of %s/%s (seed %" PRIu64
                         ") diverged from run 1\n",
                         i + 1, workload.c_str(), policy.c_str(),
                         seed);
            reportFirstDiff(reference, dump);
            return 1;
        }
    }

    std::printf("OK: %u runs of %s/%s (%" PRIu64
                " instrs, seed %" PRIu64
                ") produced byte-identical stats (%zu-byte dump)\n",
                runs, workload.c_str(), policy.c_str(), instructions,
                seed, reference.size());
    return 0;
}
