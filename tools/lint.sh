#!/usr/bin/env bash
# clang-tidy runner for mellowsim.
#
# Usage:
#   tools/lint.sh [--build-dir DIR] [--changed] [files...]
#
#   --build-dir DIR  Build tree holding compile_commands.json
#                    (default: build; configured automatically if
#                    missing).
#   --changed        Lint only files changed relative to HEAD.
#   files...         Explicit source files to lint. Default: every
#                    first-party .cc file under src/, tools/, tests/.
#
# Exits 0 with a notice when clang-tidy is not installed, so the
# tier-1 pipeline stays green on toolchains that only ship gcc.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

build_dir="build"
changed_only=0
declare -a files=()

while [[ $# -gt 0 ]]; do
    case "$1" in
        --build-dir) build_dir="$2"; shift 2 ;;
        --changed)   changed_only=1; shift ;;
        -h|--help)   sed -n '2,16p' "$0"; exit 0 ;;
        *)           files+=("$1"); shift ;;
    esac
done

# The project-specific lint needs nothing but python3, so it runs
# first and unconditionally: clang-tidy being absent must not hide
# strong-type / determinism regressions.
if command -v python3 >/dev/null 2>&1; then
    echo "lint.sh: running tools/mellow_lint.py"
    python3 tools/mellow_lint.py

    # Device-config constraint verifier over the shipped zoo: schema,
    # dimensional analysis, timing inequalities, geometry arithmetic,
    # energy sanity. A datasheet typo fails lint, not a simulation.
    echo "lint.sh: running tools/analyze/configcheck.py"
    python3 tools/analyze/configcheck.py

    # Semantic analyzer. --backend auto prefers libclang when the pip
    # package is installed (CI) and warns + falls back to the textual
    # backend otherwise, so the four semantic rules still gate locally.
    echo "lint.sh: running tools/analyze/mellow_analyze.py"
    python3 tools/analyze/mellow_analyze.py --backend auto \
        -p "${build_dir}" src
else
    echo "lint.sh: python3 not found on PATH; skipping mellow_lint" \
         "and mellow-analyze."
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "lint.sh: clang-tidy not found on PATH; skipping clang-tidy" \
         "(install clang-tidy to enable)."
    exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
    echo "lint.sh: ${build_dir}/compile_commands.json missing;" \
         "configuring ${build_dir}..."
    cmake -B "${build_dir}" -S . >/dev/null
fi

if [[ ${#files[@]} -eq 0 ]]; then
    if [[ ${changed_only} -eq 1 ]]; then
        mapfile -t files < <(git diff --name-only HEAD -- \
            'src/*.cc' 'tools/*.cc' 'tests/*.cc')
    else
        mapfile -t files < <(git ls-files \
            'src/*.cc' 'tools/*.cc' 'tests/*.cc')
    fi
fi

if [[ ${#files[@]} -eq 0 ]]; then
    echo "lint.sh: nothing to lint."
    exit 0
fi

echo "lint.sh: linting ${#files[@]} file(s) with $(clang-tidy --version | head -1)"
status=0
for f in "${files[@]}"; do
    clang-tidy -p "${build_dir}" --quiet "${f}" || status=1
done

if [[ ${status} -ne 0 ]]; then
    echo "lint.sh: clang-tidy reported findings." >&2
fi
exit "${status}"
