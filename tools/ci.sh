#!/usr/bin/env bash
# Full CI pipeline for mellowsim, runnable locally or from the GitHub
# Actions workflow (.github/workflows/ci.yml):
#
#   1. configure + build the asan-ubsan preset (ASan + UBSan,
#      MELLOWSIM_CHECKS=ON so runtime invariant audits are live)
#   2. run the whole test suite under that instrumented build
#   3. run the determinism audit on a representative configuration
#   4. run the lint passes: mellow_lint.py, mellow-configcheck over
#      the shipped device configs, and mellow-analyze (always; the
#      analyzer falls back to its textual backend when libclang is
#      absent) and clang-tidy (skipped gracefully when not installed)
#
# Any step failing fails the pipeline.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="${CI_JOBS:-$(nproc 2>/dev/null || echo 2)}"

echo "==> [1/4] configure + build (preset: asan-ubsan, -j${jobs})"
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "${jobs}"

echo "==> [2/4] ctest (asan-ubsan preset)"
ctest --preset asan-ubsan -j "${jobs}"

echo "==> [3/4] determinism audit"
./build-asan/tools/determinism_check stream BE-Mellow+SC+WQ \
    300000 50000 1 2
./build-asan/tools/determinism_check lbm BE-Mellow+SC \
    300000 50000 7 2
# Same audit with fault injection layered on: the per-line endurance
# draws, write-verify retries, repairs, retirements and remapping must
# all replay byte-identically too (trailing 1 = faults on).
./build-asan/tools/determinism_check stream BE-Mellow+SC+WQ \
    200000 50000 1 2 1
# The wear-leveler zoo backends under faults: SoftWear's sampled
# counters and page migrations, and WoLFRaM's PAD swaps plus
# delegate-routed retirements, must replay byte-identically as well.
./build-asan/tools/determinism_check stream BE-Mellow+SC+WQ \
    200000 50000 1 2 1 soft-wear
./build-asan/tools/determinism_check stream BE-Mellow+SC+WQ \
    200000 50000 1 2 1 wolfram
# Parallel-readiness gate: the sweep grid (which includes SoftWear and
# WoLFRaM entries) byte-identical between a serial run and contended
# worker threads.
./build-asan/tools/determinism_check --threads 2
./build-asan/tools/determinism_check --threads 8

echo "==> [4/4] lint (mellow_lint + configcheck + mellow-analyze + clang-tidy)"
tools/lint.sh --build-dir build-asan

echo "CI pipeline passed."
