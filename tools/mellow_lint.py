#!/usr/bin/env python3
"""mellowsim-specific lint pass.

Checks project conventions that clang-tidy cannot express:

  raw-addr-param      Public headers of converted modules must not
                      declare function parameters as raw integers with
                      address-space names (addr, line, bank, channel,
                      ...) — use the strong types from
                      src/sim/strong_types.hh. Raw uint64_t parameters
                      named like times (now, tick, when) must use the
                      Tick alias.

  banned-nondeterminism
                      std::rand / srand / std::random_device /
                      time(...) / wall-clock clocks are forbidden in
                      simulator and tool sources; all randomness goes
                      through sim/rng.hh and all time through the
                      event queue, or replays diverge.

  unordered-iteration Range-for over a std::unordered_{map,set}
                      declared in the same file: iteration order is
                      unspecified, so any stats, report or schedule
                      derived from it is nondeterministic. Iterate a
                      sorted copy or an index instead.

  schedule-literal    schedule(<integer literal>) schedules at an
                      absolute tick; events must be scheduled relative
                      to the current time (schedule(now + delay)).

  missing-nodiscard   Const accessors in converted public headers must
                      be [[nodiscard]]: silently dropping a queried
                      stat or address is always a bug.

  timing-literal      A numeric literal scaled by one of the tick
                      constants from sim/types.hh (150 * kNanosecond,
                      Tick(22.5 * kNanosecond), ...) hard-codes a
                      datasheet timing. Device timings belong in
                      configs/*.config, bound through src/config/'s
                      unit-carrying accessors; compiled-in defaults
                      live only in src/nvm/timing.hh and the other
                      sanctioned homes, or carry an explicit allow()
                      annotation naming why the value is not a device
                      parameter.

  raw-sync-primitive  Raw standard-library synchronization primitives
                      (std::mutex, std::thread, std::lock_guard, ...)
                      outside src/sim/sync.hh. The sync.hh wrappers
                      carry the Clang thread-safety capability
                      annotations and are the vocabulary the
                      confinement analysis trusts; a raw primitive is
                      invisible to both. (std::atomic is fine — it is
                      part of the sanctioned vocabulary.)

Suppress a finding with the shared annotation syntax (parsed by
tools/analyze/suppress.py, the same module mellow-analyze uses): a
trailing annotation suppresses its own line, a standalone annotation
comment suppresses the whole next statement, and allow-file() the
whole file:

    // mlint: allow(<rule-id>): <reason>

Usage:
    tools/mellow_lint.py [files...]

With no arguments, lints every tracked .hh/.cc file under src/ and
tools/. Exits 1 if any finding is reported, 0 otherwise.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "tools" / "analyze"))
from suppress import parse_suppressions  # noqa: E402

# Modules fully converted to the strong address-space / unit types.
# Headers here are held to the strict parameter and [[nodiscard]]
# rules; new modules join the list as they are converted.
CONVERTED_MODULES = (
    "src/cache/",
    "src/nvm/",
    "src/wear/",
    "src/mellow/",
    "src/fault/",
    "src/check/",
    "src/sim/",
    "src/energy/",
)

# --- raw-addr-param --------------------------------------------------

RAW_INT_TYPES = r"(?:std::uint64_t|std::uint32_t|uint64_t|uint32_t|Addr|unsigned long|unsigned int|unsigned|int|size_t|std::size_t)"
ADDR_NAMES = r"(?:addr|address|line|bank|channel|block|blockAddr|lineAddr|bankId|channelId|deviceLine|physicalLine|logicalLine)"
TIME_NAMES = r"(?:now|tick|when|deadline)"

RAW_ADDR_PARAM_RE = re.compile(
    rf"[(,]\s*(?:const\s+)?{RAW_INT_TYPES}\s+{ADDR_NAMES}\s*[,)=]"
)
RAW_TIME_PARAM_RE = re.compile(
    rf"[(,]\s*(?:const\s+)?(?:std::uint64_t|uint64_t)\s+{TIME_NAMES}\s*[,)=]"
)

# --- banned-nondeterminism -------------------------------------------

NONDET_PATTERNS = (
    (re.compile(r"\bstd::rand\b|(?<![\w.])\brand\s*\(\s*\)"), "std::rand"),
    (re.compile(r"(?<![\w.])\bsrand\s*\("), "srand"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w.:])\btime\s*\(\s*(?:NULL|nullptr|0|&)"), "time()"),
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday"),
)

# --- unordered-iteration ---------------------------------------------

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+(\w+)\s*[;{=(]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;:)]*:\s*(?:this->)?(\w+)\s*\)")

# --- schedule-literal ------------------------------------------------

SCHEDULE_LITERAL_RE = re.compile(r"\bschedule\s*\(\s*\d")

# --- timing-literal --------------------------------------------------

# <literal> * kXxxsecond in either order, or Tick(<literal>).
TIMING_LITERAL_RE = re.compile(
    r"\b\d[\d']*(?:\.\d+)?[uUlL]*\s*\*\s*"
    r"k(?:(?:Pico|Nano|Micro|Milli)second|Second)\b"
    r"|\bk(?:(?:Pico|Nano|Micro|Milli)second|Second)\s*\*\s*\d"
    r"|\bTick\s*\(\s*\d"
)

# The sanctioned homes of hard-coded timings: the config binding layer
# (whose job is turning datasheet numbers into Ticks), the compiled-in
# NvmTimingParams defaults that configs/reram_paper.config mirrors,
# and the files defining the tick constants / named conversions
# themselves.
TIMING_LITERAL_HOMES = (
    "src/config/",
    "src/nvm/timing.hh",
    "src/sim/types.hh",
    "src/sim/strong_types.hh",
)

# --- raw-sync-primitive ----------------------------------------------

RAW_SYNC_RE = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|timed_mutex|shared_mutex|"
    r"thread|jthread|lock_guard|unique_lock|scoped_lock|shared_lock|"
    r"condition_variable(?:_any)?|"
    r"counting_semaphore|binary_semaphore|latch|barrier)\b"
)

# The one sanctioned home of the raw primitives (see its header
# comment); everything else goes through its wrappers.
SYNC_WRAPPER_FILE = "src/sim/sync.hh"

# Lint fixtures mirror the real tree under this prefix; stripping it
# makes the src/-scoped rules apply to them (tests/lint_fixtures/
# registers a WILL_FAIL ctest per fixture plus a clean control).
LINT_FIXTURE_PREFIX = "tests/lint_fixtures/"

# --- missing-nodiscard -----------------------------------------------

CONST_ACCESSOR_RE = re.compile(
    r"^\s*(?:virtual\s+)?(?!void\b)(?!.*\boperator\b)"
    r"[A-Za-z_][\w:]*(?:\s*<[^;(]*>)?(?:\s+const)?[\s&*]+"
    r"[a-zA-Z_]\w*\s*\([^;{}]*\)\s*const\b"
)


def relative_path(path: Path) -> str:
    """Repo-relative when possible (out-of-tree files keep their path)."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


class Linter:
    def __init__(self) -> None:
        self.findings: list[str] = []

    def report(self, path: Path, lineno: int, rule: str, msg: str) -> None:
        self.findings.append(
            f"{relative_path(path)}:{lineno}: [{rule}] {msg}")

    def lint_file(self, path: Path) -> None:
        rel = relative_path(path)
        # Fixture trees self-test the src/-scoped rules.
        rel = rel.split(LINT_FIXTURE_PREFIX, 1)[-1]
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as err:
            self.report(path, 0, "io", f"unreadable: {err}")
            return
        lines = text.splitlines()

        in_converted_header = rel.endswith(".hh") and rel.startswith(
            CONVERTED_MODULES
        )

        unordered_names = {
            m.group(1) for m in UNORDERED_DECL_RE.finditer(text)
        }

        suppressions = parse_suppressions(lines)

        in_block_comment = False
        for idx, line in enumerate(lines):
            lineno = idx + 1
            code = line
            # Strip comments for rule matching (the allow annotation is
            # read from the raw line).
            if in_block_comment:
                end = code.find("*/")
                if end < 0:
                    continue
                code = code[end + 2 :]
                in_block_comment = False
            start = code.find("/*")
            if start >= 0 and "*/" not in code[start:]:
                code = code[:start]
                in_block_comment = True
            code = re.sub(r"/\*.*?\*/", "", code)
            code = code.split("//", 1)[0]
            if not code.strip():
                continue

            def allowed(rule: str) -> bool:
                return suppressions.allows(rule, lineno)

            if in_converted_header and not allowed("raw-addr-param"):
                if RAW_ADDR_PARAM_RE.search(code):
                    self.report(
                        path, lineno, "raw-addr-param",
                        "raw integer parameter with an address-space "
                        "name; use the strong types from "
                        "sim/strong_types.hh",
                    )
                elif RAW_TIME_PARAM_RE.search(code):
                    self.report(
                        path, lineno, "raw-addr-param",
                        "raw uint64_t parameter with a time name; "
                        "use the Tick alias",
                    )

            if not allowed("banned-nondeterminism"):
                for pattern, what in NONDET_PATTERNS:
                    if pattern.search(code):
                        self.report(
                            path, lineno, "banned-nondeterminism",
                            f"{what} is nondeterministic; use "
                            "sim/rng.hh / the event queue clock",
                        )

            if unordered_names and not allowed("unordered-iteration"):
                m = RANGE_FOR_RE.search(code)
                if m and m.group(1) in unordered_names:
                    self.report(
                        path, lineno, "unordered-iteration",
                        f"range-for over unordered container "
                        f"'{m.group(1)}': iteration order is "
                        "unspecified; iterate a sorted copy or annotate "
                        "why order cannot leak",
                    )

            if (
                rel != SYNC_WRAPPER_FILE
                and rel.startswith("src/")
                and not allowed("raw-sync-primitive")
            ):
                m = RAW_SYNC_RE.search(code)
                if m:
                    self.report(
                        path, lineno, "raw-sync-primitive",
                        f"{m.group(0)} outside sim/sync.hh; use the "
                        "capability-annotated wrappers (sync::Mutex, "
                        "sync::LockGuard, sync::ThreadGroup, "
                        "sync::Barrier)",
                    )

            if (
                rel.startswith("src/")
                and not rel.startswith(TIMING_LITERAL_HOMES)
                and not allowed("timing-literal")
            ):
                if TIMING_LITERAL_RE.search(code):
                    self.report(
                        path, lineno, "timing-literal",
                        "hard-coded timing literal; device timings "
                        "come from configs/*.config via src/config/, "
                        "compiled-in defaults live in "
                        "src/nvm/timing.hh",
                    )

            if not allowed("schedule-literal"):
                if SCHEDULE_LITERAL_RE.search(code):
                    self.report(
                        path, lineno, "schedule-literal",
                        "schedule() with an absolute literal tick; "
                        "schedule relative to the current time",
                    )

            if in_converted_header and not allowed("missing-nodiscard"):
                if (
                    CONST_ACCESSOR_RE.search(code)
                    and "[[nodiscard]]" not in code
                    and (idx == 0 or "[[nodiscard]]" not in lines[idx - 1])
                    and "static_assert" not in code
                    and not code.lstrip().startswith("return")
                ):
                    self.report(
                        path, lineno, "missing-nodiscard",
                        "const accessor without [[nodiscard]]",
                    )


def default_files() -> list[Path]:
    out = subprocess.run(
        ["git", "ls-files", "src/*.hh", "src/*.cc", "tools/*.cc"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    )
    return [REPO_ROOT / p for p in out.stdout.split()]


def main(argv: list[str]) -> int:
    files = [Path(a).resolve() for a in argv] if argv else default_files()
    linter = Linter()
    for path in files:
        if path.suffix in (".hh", ".cc"):
            linter.lint_file(path)
    for finding in linter.findings:
        print(finding)
    if linter.findings:
        print(
            f"mellow_lint: {len(linter.findings)} finding(s) in "
            f"{len(files)} file(s).",
            file=sys.stderr,
        )
        return 1
    print(f"mellow_lint: {len(files)} file(s) clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
