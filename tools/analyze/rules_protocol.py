"""The parallel-protocol rule family (lock-order, atomic-order,
handler-blocking, port-protocol), driven by tools/analyze/protocol.toml.

These rules verify the properties conservative-lookahead PDES needs
from the sharded kernel (DESIGN.md §13): a cycle-free whole-program
lock graph, raw atomics confined to the sync.hh wrappers, handlers
that never block, and cross-shard sends that carry a properly minted
SendTime. Like the confinement family, every fact is computed
lexically over the shared IR file map (plus the frontend-built call
graph), so both frontends agree by construction.
"""

from __future__ import annotations

import re
from collections import defaultdict

from frontend_textual import strip_comments_and_strings
from model import (
    RULE_ATOMIC_ORDER,
    RULE_HANDLER_BLOCKING,
    RULE_LOCK_ORDER,
    RULE_PORT_PROTOCOL,
    Finding,
    Project,
)
from rules import _blocks_in, _module_of

# --- Shared lexical helpers -----------------------------------------

#: `LockGuard guard(<mutex expr>);` acquisition sites (optionally
#: namespace-qualified, as in `sync::LockGuard`).
_GUARD_RE = re.compile(
    r"\b(?:sync\s*::\s*)?LockGuard\s+\w+\s*\(\s*([^()]+?)\s*\)")

#: Bare `<expr>.lock()` acquisition (the rare non-RAII site).
_BARE_LOCK_RE = re.compile(r"([A-Za-z_]\w*)\s*\.\s*lock\s*\(\s*\)")

_REQUIRES_RE = re.compile(r"\bMELLOW_REQUIRES\s*\(([^()]*)\)")


def _normalize_lock(expr: str, enclosing: str) -> str:
    """Canonical identity of a lock expression: strip dereferences and
    `this->`, and qualify bare member-looking names with the enclosing
    class so `_mutex` in two classes stays two locks."""
    expr = expr.strip()
    expr = re.sub(r"^\s*(?:this\s*->\s*|[*&]\s*)+", "", expr)
    expr = re.sub(r"\s+", "", expr)
    if "::" in expr or "." in expr or "->" in expr:
        return expr
    if "::" in enclosing:
        cls = enclosing.rsplit("::", 1)[0]
        return f"{cls}::{expr}"
    return expr


def _function_acquisitions(func, clean):
    """(lock_id, line, col, scope_end) for every LockGuard declared in
    @p func's body, scope_end being the close line of the innermost
    block containing the declaration (the RAII release point)."""
    blocks = _blocks_in(clean, func.start, func.end)
    sites = []
    for ln in range(func.start, func.end + 1):
        text = clean[ln - 1]
        for m in _GUARD_RE.finditer(text):
            lock = _normalize_lock(m.group(1), func.name)
            enclosing = [c for o, c, _h in blocks if o <= ln <= c]
            scope_end = min(enclosing) if enclosing else func.end
            sites.append((lock, ln, m.start(), scope_end))
    return sites


def _function_requires(func, clean) -> list[str]:
    """Locks a MELLOW_REQUIRES annotation on @p func's signature says
    are held at entry (signature lines scanned like request-lifetime:
    a few lines above the body open)."""
    held = []
    for ln in range(max(1, func.start - 4), func.start + 1):
        for m in _REQUIRES_RE.finditer(clean[ln - 1]):
            for arg in m.group(1).split(","):
                if arg.strip():
                    held.append(_normalize_lock(arg, func.name))
    return held


def _cleaned(project: Project) -> dict[str, list[str]]:
    return {p: strip_comments_and_strings(ls)
            for p, ls in project.files.items()}


# --- Rule 8: static deadlock-freedom (lock-order) -------------------


def check_lock_order(project: Project, protocol: dict,
                     src_root: str = "src") -> list[Finding]:
    """Build the whole-program lock-acquisition graph — edge A -> B
    when B is acquired (directly, or transitively through a call)
    while A is held via a LockGuard scope or a MELLOW_REQUIRES
    annotation — and report every cycle as a static deadlock."""
    cleaned = _cleaned(project)

    funcs = [f for f in project.functions
             if _module_of(f.file, src_root) is not None
             and f.file in cleaned]

    # Per-function facts.
    acq: dict[int, list] = {}
    req: dict[int, list[str]] = {}
    bare: dict[int, list] = {}
    for f in funcs:
        clean = cleaned[f.file]
        acq[id(f)] = _function_acquisitions(f, clean)
        req[id(f)] = _function_requires(f, clean)
        bare[id(f)] = [
            (_normalize_lock(m.group(1), f.name), ln)
            for ln in range(f.start, f.end + 1)
            for m in _BARE_LOCK_RE.finditer(clean[ln - 1])]

    # Transitive "locks acquired inside" per function, via a fixpoint
    # over the simple-name call graph (same resolution as the
    # determinism rule: conservative, both frontends agree).
    by_simple: dict[str, list] = defaultdict(list)
    for f in funcs:
        by_simple[f.name.split("::")[-1]].append(f)
    trans: dict[int, set[str]] = {
        id(f): {a[0] for a in acq[id(f)]} | {b[0] for b in bare[id(f)]}
        for f in funcs}
    changed = True
    while changed:
        changed = False
        for f in funcs:
            mine = trans[id(f)]
            before = len(mine)
            for callee, _ln in f.calls:
                for target in by_simple.get(callee, []):
                    mine |= trans[id(target)]
            if len(mine) != before:
                changed = True

    # Edges with a deterministic representative site each.
    edges: dict[tuple[str, str], tuple[str, int]] = {}

    def add_edge(a: str, b: str, site: tuple[str, int]) -> None:
        if a == b:
            # Self-edge: re-acquiring a held (non-recursive) mutex.
            edges.setdefault((a, b), site)
            return
        edges.setdefault((a, b), site)

    for f in funcs:
        sites = sorted(acq[id(f)], key=lambda s: (s[1], s[2]))

        def held_at(ln: int, col: int) -> list[str]:
            held = list(req[id(f)])
            for lock, l0, c0, scope_end in sites:
                if (l0, c0) < (ln, col) and ln <= scope_end:
                    held.append(lock)
            return held

        for lock, ln, col, _scope in sites:
            for a in held_at(ln, col):
                add_edge(a, lock, (f.file, ln))
        for lock, ln in bare[id(f)]:
            for a in held_at(ln, 10 ** 9):
                add_edge(a, lock, (f.file, ln))
        for callee, ln in f.calls:
            inner: set[str] = set()
            for target in by_simple.get(callee, []):
                inner |= trans[id(target)]
            if not inner:
                continue
            for a in held_at(ln, 10 ** 9):
                for b in sorted(inner):
                    add_edge(a, b, (f.file, ln))

    # Cycle detection: iterative Tarjan SCC; every SCC with more than
    # one lock (or a self-edge) is a static deadlock.
    graph: dict[str, list[str]] = defaultdict(list)
    for a, b in edges:
        graph[a].append(b)
    for succs in graph.values():
        succs.sort()

    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(graph.get(root, [])))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph.get(succ, []))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                sccs.append(comp)

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)

    findings = []
    for comp in sccs:
        comp = sorted(comp)
        cyclic = len(comp) > 1 or (comp[0], comp[0]) in edges
        if not cyclic:
            continue
        comp_set = set(comp)
        cycle_edges = [(a, b) for (a, b) in edges
                       if a in comp_set and b in comp_set]
        site = min(edges[e] for e in cycle_edges)
        findings.append(Finding(
            RULE_LOCK_ORDER, site[0], site[1],
            "static deadlock: lock-acquisition cycle between "
            + " <-> ".join(comp)
            + "; impose a global lock order or collapse the locks "
              "(protocol.toml [lock_order])"))
    return findings


# --- Rule 9: atomics discipline (atomic-order) ----------------------

_RAW_ATOMIC_RE = re.compile(r"\bstd\s*::\s*(?:atomic\b|atomic_\w+|"
                            r"memory_order\w*)")
_RELAXED_DECL_RE = re.compile(
    r"\b(?:sync\s*::\s*)?RelaxedCounter\s+([A-Za-z_]\w*)")


def check_atomic_order(project: Project, protocol: dict,
                       src_root: str = "src") -> list[Finding]:
    """Raw std::atomic / std::memory_order_* spellings are legal only
    inside the sanctioned wrapper files (src/sim/sync.hh), and a
    RelaxedCounter may feed statistics but never control flow — its
    relaxed reads carry no happens-before edge, so branching on one
    turns a benign stale read into nondeterministic behavior."""
    cfg = protocol.get("atomic_order", {})
    allowed = tuple(cfg.get("allowed_files", ["src/sim/sync.hh"]))
    cleaned = _cleaned(project)

    findings = []

    # Raw atomic spellings outside the wrapper home.
    for path, clean in cleaned.items():
        if _module_of(path, src_root) is None:
            continue
        if allowed and path.endswith(allowed):
            continue
        for i, line in enumerate(clean):
            m = _RAW_ATOMIC_RE.search(line)
            if m:
                findings.append(Finding(
                    RULE_ATOMIC_ORDER, path, i + 1,
                    f"raw `{m.group(0)}` outside the sync.hh wrappers; "
                    f"use or extend the capability-annotated "
                    f"primitives in src/sim/sync.hh "
                    f"(protocol.toml [atomic_order])"))

    # RelaxedCounter reads in control flow.
    counters: set[str] = set()
    for path, clean in cleaned.items():
        for line in clean:
            for m in _RELAXED_DECL_RE.finditer(line):
                counters.add(m.group(1))
    if counters:
        cond_res = {
            name: re.compile(
                r"\b(?:if|while|for|switch)\s*\([^;{}]*\b"
                + re.escape(name) + r"\s*\.\s*value\s*\(")
            for name in counters}
        for path, clean in cleaned.items():
            if _module_of(path, src_root) is None:
                continue
            for i, line in enumerate(clean):
                for name, cond_re in cond_res.items():
                    if cond_re.search(line):
                        findings.append(Finding(
                            RULE_ATOMIC_ORDER, path, i + 1,
                            f"RelaxedCounter `{name}` feeds control "
                            f"flow; relaxed loads order nothing, so "
                            f"branch state may diverge between runs — "
                            f"counters are for stats only "
                            f"(protocol.toml [atomic_order])"))
    return findings


# --- Rule 10: non-blocking handlers (handler-blocking) --------------


def check_handler_blocking(project: Project, protocol: dict,
                           src_root: str = "src") -> list[Finding]:
    """No mutex acquisition or blocking rendezvous may be reachable
    from an EventQueue::schedule handler root: a handler that blocks
    mid-epoch stalls its whole shard (or deadlocks the epoch barrier),
    and lock-based handler ordering is exactly the nondeterminism the
    kernel's (when, seq) total order exists to rule out."""
    cfg = protocol.get("handler_blocking", {})
    allowed_files = tuple(cfg.get("allowed_files", []))
    blocking_names = set(cfg.get("blocking_calls", []))
    cleaned = _cleaned(project)

    def file_allowed(path: str) -> bool:
        return path.endswith(allowed_files) if allowed_files else False

    by_simple: dict[str, list] = defaultdict(list)
    for func in project.functions:
        by_simple[func.name.split("::")[-1]].append(func)

    # Worklist from the schedule roots (same machinery as the
    # determinism rule).
    reachable = []
    seen: set[int] = set()
    work = [f for f in project.functions if f.is_schedule_root]
    while work:
        func = work.pop()
        if id(func) in seen:
            continue
        seen.add(id(func))
        if file_allowed(func.file):
            continue
        reachable.append(func)
        for callee, _line in func.calls:
            for target in by_simple.get(callee, []):
                if id(target) not in seen:
                    work.append(target)

    findings = []
    emitted: set[tuple[str, int]] = set()
    for func in reachable:
        clean = cleaned.get(func.file)
        if clean is None:
            continue
        label = ("an EventQueue::schedule callback"
                 if func.is_schedule_root else f"{func.name}()")
        sites = []
        for ln in range(func.start, min(func.end, len(clean)) + 1):
            text = clean[ln - 1]
            if _GUARD_RE.search(text):
                sites.append((ln, "LockGuard acquisition"))
            elif _BARE_LOCK_RE.search(text):
                sites.append((ln, "mutex .lock()"))
        for callee, ln in func.calls:
            if callee in blocking_names:
                sites.append((ln, f"blocking call `{callee}()`"))
        for ln, what in sites:
            key = (func.file, ln)
            if key in emitted:
                continue
            emitted.add(key)
            findings.append(Finding(
                RULE_HANDLER_BLOCKING, func.file, ln,
                f"{what} in {label}, which is reachable from an event "
                f"handler; handlers must never block — move the "
                f"rendezvous to the epoch boundary "
                f"(protocol.toml [handler_blocking])"))
    return findings


# --- Rule 11: lookahead-sound sends (port-protocol) -----------------

_SENDTIME_CONSTRUCT_RE = re.compile(r"\bSendTime\s*[({]")
_SENDTIME_CAST_RE = re.compile(
    r"\b(?:static_cast|reinterpret_cast|const_cast|std::bit_cast)\s*"
    r"<\s*SendTime\b")
_SEND_CALL_RE = re.compile(r"[.>]\s*(?:trySend|send)\s*\(")
_TICK_DECL_RE = re.compile(r"\bTick\s+([A-Za-z_]\w*)")
_SENDTIME_DECL_RE = re.compile(r"\bSendTime\s+([A-Za-z_]\w*)")
_LOOKAHEAD_DECL_RE = re.compile(r"\bLookahead\s+([A-Za-z_]\w*)")


def _first_argument(clean: list[str], line_idx: int, open_col: int) -> str:
    """Text of the first argument of the call whose '(' is at
    (line_idx, open_col), scanning at most a few lines."""
    depth = 0
    buf = []
    for i in range(line_idx, min(len(clean), line_idx + 4)):
        text = clean[i]
        start = open_col if i == line_idx else 0
        for ch in text[start:]:
            if ch == "(":
                depth += 1
                if depth == 1:
                    continue
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return "".join(buf)
            elif ch == "," and depth == 1:
                return "".join(buf)
            if depth >= 1:
                buf.append(ch)
    return "".join(buf)


def check_port_protocol(project: Project, protocol: dict,
                        src_root: str = "src") -> list[Finding]:
    """Cross-shard sends must carry a SendTime minted by
    `now + Lookahead`. The type system enforces this at compile time;
    this rule cross-checks every call site so a cast (or a fixture
    that never compiles) cannot talk around it, and confines explicit
    SendTime construction to the declared mint files."""
    cfg = protocol.get("port_protocol", {})
    mint_files = tuple(cfg.get("mint_files", ["src/sim/strong_types.hh"]))
    cleaned = _cleaned(project)

    # Project-wide declaration maps, with the frontend's ambiguity
    # philosophy: a name classifies only when every declaration in the
    # tree agrees on its type.
    decls: dict[str, set[str]] = defaultdict(set)
    for path, clean in cleaned.items():
        for line in clean:
            for m in _TICK_DECL_RE.finditer(line):
                decls[m.group(1)].add("Tick")
            for m in _SENDTIME_DECL_RE.finditer(line):
                decls[m.group(1)].add("SendTime")
            for m in _LOOKAHEAD_DECL_RE.finditer(line):
                decls[m.group(1)].add("Lookahead")

    def sole_type(name: str) -> str | None:
        types = decls.get(name, set())
        return next(iter(types)) if len(types) == 1 else None

    findings = []
    for path, clean in cleaned.items():
        if _module_of(path, src_root) is None:
            continue
        minted_here = path.endswith(mint_files)
        for i, line in enumerate(clean):
            # (a) Explicit construction / casts outside the mint.
            if not minted_here:
                m = (_SENDTIME_CAST_RE.search(line)
                     or _SENDTIME_CONSTRUCT_RE.search(line))
                # `SendTime <name>` declarations are fine; only
                # construction `SendTime(expr)` / `SendTime{expr}` and
                # casts mint a value.
                if m:
                    findings.append(Finding(
                        RULE_PORT_PROTOCOL, path, i + 1,
                        "explicit SendTime construction outside the "
                        "mint (src/sim/strong_types.hh); the only "
                        "legal mint is `now + Lookahead` "
                        "(protocol.toml [port_protocol])"))
                    continue
            # (b) Send call sites: the time argument must trace back
            # to a SendTime.
            for m in _SEND_CALL_RE.finditer(line):
                arg = _first_argument(clean, i, line.find("(", m.start()))
                arg = arg.strip()
                if not arg:
                    continue
                idents = re.findall(r"[A-Za-z_]\w*", arg)
                kinds = {sole_type(n) for n in idents}
                if "SendTime" in kinds or "Lookahead" in kinds:
                    continue  # properly minted (or delayed further)
                bad = None
                if re.fullmatch(r"[0-9][0-9'xXa-fA-F]*(?:[uU]?[lL]*)?",
                                arg):
                    bad = f"numeric literal `{arg}`"
                elif (re.fullmatch(r"[A-Za-z_]\w*", arg)
                      and sole_type(arg) == "Tick"):
                    bad = f"raw Tick `{arg}`"
                elif re.fullmatch(r"(?:\w+\s*\.\s*)?curTick\s*\(\s*\)",
                                  arg):
                    bad = f"raw `{arg}`"
                if bad is None:
                    continue
                findings.append(Finding(
                    RULE_PORT_PROTOCOL, path, i + 1,
                    f"{bad} passed as a ShardPort send time; sends "
                    f"take a SendTime minted via `now + Lookahead` so "
                    f"every message respects the shard's lookahead "
                    f"(protocol.toml [port_protocol])"))
    return findings
