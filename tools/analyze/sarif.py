"""Minimal SARIF 2.1.0 emitter shared by mellow-analyze and
mellow-configcheck.

``to_sarif`` defaults to the mellow-analyze driver identity so existing
callers are unchanged; configcheck passes its own tool name, rule list
and descriptions.
"""

from __future__ import annotations

import json

from model import ALL_RULES, Finding

_RULE_DESCRIPTIONS = {
    "value-escape":
        "`.value()` on a strong type outside the whitelisted "
        "conversion sites escapes the typed address/unit domain.",
    "layering":
        "Include or symbol reference crossing module layers outside "
        "the manifest in tools/analyze/layers.toml.",
    "nondet-handler":
        "Nondeterministic API (wall clock, raw RNG, unordered "
        "iteration, I/O) reachable from an EventQueue::schedule "
        "callback.",
    "request-lifetime":
        "A request object is read after ownership was handed to a "
        "queue.",
    "confinement-global":
        "Mutable static-storage state that is not std::atomic, a "
        "sync.hh type, thread_local or const races under the parallel "
        "sweep and the sharded per-channel runtime "
        "(tools/analyze/confinement.toml [global]).",
    "confinement-shard":
        "A declared mutator of shard-owned state is called from a "
        "module outside the declared owners "
        "(tools/analyze/confinement.toml [[shard_owned]]).",
    "confinement-port":
        "A shard's internal types are referenced from a consumer "
        "module; cross-shard communication must go through the "
        "declared message-port seam headers "
        "(tools/analyze/confinement.toml [[port]]).",
    "lock-order":
        "A cycle in the whole-program lock-acquisition graph built "
        "from LockGuard scopes and MELLOW_REQUIRES annotations: a "
        "static deadlock (tools/analyze/protocol.toml [lock_order]).",
    "atomic-order":
        "A raw std::atomic / std::memory_order spelling outside the "
        "sync.hh wrapper home, or a RelaxedCounter read feeding "
        "control flow instead of statistics "
        "(tools/analyze/protocol.toml [atomic_order]).",
    "handler-blocking":
        "A mutex acquisition or blocking rendezvous reachable from an "
        "EventQueue::schedule handler; a blocking handler stalls its "
        "shard mid-epoch or deadlocks the epoch barrier "
        "(tools/analyze/protocol.toml [handler_blocking]).",
    "port-protocol":
        "A ShardPort send whose time argument is not a SendTime "
        "minted via `now + Lookahead`, or an explicit SendTime "
        "construction outside the mint "
        "(tools/analyze/protocol.toml [port_protocol]).",
}


def to_sarif(findings: list[Finding], tool_version: str = "1.0.0",
             tool_name: str = "mellow-analyze",
             information_uri: str = "tools/analyze/mellow_analyze.py",
             rule_ids: tuple[str, ...] | None = None,
             rule_descriptions: dict[str, str] | None = None) -> str:
    if rule_ids is None:
        rule_ids = ALL_RULES
    if rule_descriptions is None:
        rule_descriptions = _RULE_DESCRIPTIONS
    rules = [
        {
            "id": rule,
            "shortDescription": {"text": rule_descriptions.get(rule, rule)},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in rule_ids
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.file,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": f.line},
                    }
                }
            ],
        }
        for f in findings
    ]
    doc = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": information_uri,
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2)
