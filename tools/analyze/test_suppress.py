#!/usr/bin/env python3
"""Unit tests for the shared suppression parser (suppress.py).

Covers the placement edge cases the docstring promises — a trailing
annotation on the last line of a file, a standalone annotation whose
statement spans several lines, annotations inside a multi-line
statement — plus the interaction between `// mlint: allow-file(...)`
and the analyzer's `--disable` flag, driven through the real
mellow_analyze.main() on a throwaway tree.

Run directly (`python3 tools/analyze/test_suppress.py`) or via the
`analyze.suppress_unit` ctest entry.
"""

from __future__ import annotations

import contextlib
import io
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import mellow_analyze  # noqa: E402
from suppress import parse_suppressions  # noqa: E402

RULE = "confinement-global"


class TrailingAnnotationTest(unittest.TestCase):
    def test_trailing_on_last_line_of_file(self):
        # Nothing follows the annotated line; it must still suppress
        # its own line (historic bug class: lookahead past EOF).
        sup = parse_suppressions(
            ["int g_x = 0; // mlint: allow(%s): tally" % RULE])
        self.assertTrue(sup.allows(RULE, 1))

    def test_trailing_applies_to_its_line_only(self):
        sup = parse_suppressions([
            "int g_a = 0;",
            "int g_b = 0; // mlint: allow(%s): reason" % RULE,
            "int g_c = 0;",
        ])
        self.assertFalse(sup.allows(RULE, 1))
        self.assertTrue(sup.allows(RULE, 2))
        self.assertFalse(sup.allows(RULE, 3))

    def test_trailing_inside_multiline_statement(self):
        # An annotation on one continuation line of a statement covers
        # that line, not the whole statement.
        sup = parse_suppressions([
            "panic_if(cond,",
            "         line.value()); // mlint: allow(value-escape): fmt",
        ])
        self.assertFalse(sup.allows("value-escape", 1))
        self.assertTrue(sup.allows("value-escape", 2))

    def test_multiple_rules_one_annotation(self):
        sup = parse_suppressions(
            ["x(); // mlint: allow(value-escape, layering): both"])
        self.assertTrue(sup.allows("value-escape", 1))
        self.assertTrue(sup.allows("layering", 1))
        self.assertFalse(sup.allows(RULE, 1))


class StandaloneAnnotationTest(unittest.TestCase):
    def test_covers_whole_multiline_statement(self):
        sup = parse_suppressions([
            "// mlint: allow(value-escape): message formatting",
            "panic_if(cond,",
            '         "line %llu bad",',
            "         line.value());",
            "other(line.value());",
        ])
        for line in (2, 3, 4):
            self.assertTrue(sup.allows("value-escape", line), line)
        self.assertFalse(sup.allows("value-escape", 5))

    def test_prose_continuation_lines_between(self):
        # Plain comment lines between the annotation and the statement
        # are its prose continuation; they must not cancel it.
        sup = parse_suppressions([
            "// mlint: allow(value-escape): the conversion here is",
            "// intentional and audited.",
            "sink(line.value());",
        ])
        self.assertTrue(sup.allows("value-escape", 3))

    def test_annotation_on_last_line_never_flushes(self):
        # A standalone annotation with no following code line must not
        # crash and must not suppress anything.
        sup = parse_suppressions([
            "int g_x = 0;",
            "// mlint: allow(%s): dangling" % RULE,
        ])
        self.assertFalse(sup.allows(RULE, 1))
        self.assertFalse(sup.allows(RULE, 2))

    def test_unterminated_statement_is_capped(self):
        # A runaway unclosed paren must not suppress the rest of the
        # file; coverage stops at the _MAX_STATEMENT_LINES guard.
        lines = ["// mlint: allow(value-escape): runaway",
                 "f(a.value(),"]
        lines += ["  b.value()," for _ in range(40)]
        lines += ["  c.value());"]
        sup = parse_suppressions(lines)
        self.assertTrue(sup.allows("value-escape", 2))
        self.assertFalse(sup.allows("value-escape", len(lines)))


class AllowFileTest(unittest.TestCase):
    def test_allow_file_suppresses_everywhere(self):
        # Placement is irrelevant: even on the last line it covers the
        # whole file, including earlier lines.
        sup = parse_suppressions([
            "int g_x = 0;",
            "// mlint: allow-file(%s): generated tallies" % RULE,
        ])
        self.assertTrue(sup.allows(RULE, 1))
        self.assertTrue(sup.allows(RULE, 2))
        self.assertFalse(sup.allows("layering", 1))


class DisableInteractionTest(unittest.TestCase):
    """allow-file vs --disable through the real analyzer CLI."""

    BAD = (
        "#include <cstdint>\n"
        "namespace\n"
        "{\n"
        "std::uint64_t g_unguarded = 0;\n"
        "} // namespace\n"
        "std::uint64_t\n"
        "bump()\n"
        "{\n"
        "    return ++g_unguarded;\n"
        "}\n"
    )

    def _analyze(self, source: str, *extra_args: str) -> int:
        with tempfile.TemporaryDirectory() as tmp:
            os.makedirs(os.path.join(tmp, "src", "sim"))
            with open(os.path.join(tmp, "src", "sim", "bad.cc"),
                      "w") as fh:
                fh.write(source)
            argv = ["--backend", "textual", "--root", tmp, "src",
                    *extra_args]
            with contextlib.redirect_stdout(io.StringIO()), \
                    contextlib.redirect_stderr(io.StringIO()):
                return mellow_analyze.main(argv)

    def test_finding_fails_without_either(self):
        self.assertEqual(self._analyze(self.BAD), 1)

    def test_allow_file_alone_passes(self):
        annotated = ("// mlint: allow-file(%s): test tally\n" % RULE
                     + self.BAD)
        self.assertEqual(self._analyze(annotated), 0)

    def test_disable_alone_passes(self):
        self.assertEqual(self._analyze(self.BAD, "--disable", RULE), 0)

    def test_disable_of_unrelated_rule_keeps_finding(self):
        self.assertEqual(
            self._analyze(self.BAD, "--disable", "layering"), 1)

    def test_allow_file_does_not_mask_other_rules(self):
        # The annotation names confinement-global only; a layering-
        # style annotation must not hide it.
        annotated = "// mlint: allow-file(layering): wrong rule\n" \
            + self.BAD
        self.assertEqual(self._analyze(annotated), 1)

    def test_allow_file_and_disable_together(self):
        annotated = ("// mlint: allow-file(%s): test tally\n" % RULE
                     + self.BAD)
        self.assertEqual(
            self._analyze(annotated, "--disable", RULE), 0)


if __name__ == "__main__":
    unittest.main()
