#!/usr/bin/env python3
"""mellow-configcheck — constraint-based static verifier for device
configs (configs/<name>.config).

The C++ binding (src/config/device_config.cc) enforces only what it
cannot survive without; this tool carries the full datasheet theory
declared in tools/analyze/configcheck.toml:

  parse-error        a line the KEY-value grammar rejects (the C++
                     parser would fatal() on it)
  unknown-key        a key the schema does not declare (a typo the
                     binding would silently ignore)
  missing-key        a key the binding requires is absent
  range              a value outside its schema range, or a word
                     outside its enum
  unit-mismatch      a value written with a unit suffix (the format is
                     unit-implicit; the schema declares the unit), or
                     a constraint expression mixing dimensions
  timing-inequality  the interface/timing inequality system (burst
                     arithmetic, tFAW window, pulse orderings)
  geometry-arithmetic capacity products, divisibility, power-of-two
                     address-map requirements
  energy-model       sanity versus the paper's Table VI linear model
  controller-sanity  queue-provisioning cross-field checks
  pulse-monotonicity slowing the pulse must strictly lengthen the
                     pulse (no Tick saturation) and strictly gain
                     endurance under Equation 2

Every constraint expression is dimensional: schema keys carry units
(ns, MHz, pJ, bits, B, writes) that propagate through the expression
AST, so a constraint comparing nanoseconds to picojoules is itself a
finding rather than a silent coincidence.

Suppressions reuse the repo-wide syntax on config comment lines::

    LevelingEfficiency 1.5  ; mlint: allow(range): sensitivity sweep

Exit codes: 0 clean, 1 findings (or self-test failure), 2 environment
error (bad manifest, no inputs).
"""

from __future__ import annotations

import argparse
import ast
import math
import os
import re
import sys
import tomllib
from dataclasses import dataclass

from model import Finding
from suppress import parse_suppressions

REPO_ROOT = os.path.realpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
ANALYZE_DIR = os.path.dirname(os.path.abspath(__file__))

RULE_PARSE = "parse-error"
RULE_UNKNOWN = "unknown-key"
RULE_MISSING = "missing-key"
RULE_RANGE = "range"
RULE_UNIT = "unit-mismatch"
RULE_TIMING = "timing-inequality"
RULE_GEOMETRY = "geometry-arithmetic"
RULE_ENERGY = "energy-model"
RULE_CONTROLLER = "controller-sanity"
RULE_PULSE = "pulse-monotonicity"
RULE_LOOKAHEAD = "lookahead"

ALL_RULES = (
    RULE_PARSE,
    RULE_UNKNOWN,
    RULE_MISSING,
    RULE_RANGE,
    RULE_UNIT,
    RULE_TIMING,
    RULE_GEOMETRY,
    RULE_ENERGY,
    RULE_CONTROLLER,
    RULE_PULSE,
    RULE_LOOKAHEAD,
)

RULE_DESCRIPTIONS = {
    RULE_PARSE:
        "A config line the KEY-value grammar rejects; the C++ parser "
        "(src/config/config_file.cc) would fatal() on it.",
    RULE_UNKNOWN:
        "A key tools/analyze/configcheck.toml does not declare — "
        "usually a typo the binding would silently ignore.",
    RULE_MISSING:
        "A key the C++ binding requires (non-Or accessor in "
        "src/config/device_config.cc) is absent.",
    RULE_RANGE:
        "A value outside the schema's [min, max] range, or a word "
        "outside its enum.",
    RULE_UNIT:
        "A value written with a unit suffix in the unit-implicit "
        "format, or a constraint expression mixing dimensions.",
    RULE_TIMING:
        "The interface/timing inequality system: burst arithmetic, "
        "the tFAW window, activation/column/write-pulse orderings.",
    RULE_GEOMETRY:
        "Capacity products, divisibility and power-of-two "
        "requirements of the shift/mask address map.",
    RULE_ENERGY:
        "Energy sanity versus the paper's Table VI linear model.",
    RULE_CONTROLLER:
        "Queue-provisioning cross-field sanity (drain hysteresis, "
        "eager sizing, cancellation bounds).",
    RULE_PULSE:
        "Equation 2 monotonicity: slowing the pulse must strictly "
        "lengthen it (no Tick saturation) and strictly gain "
        "endurance (ExpoFactor > 0).",
    RULE_LOOKAHEAD:
        "Sharded-runtime soundness: the conservative lookahead the "
        "epoch driver derives from this device, min(tBurst, "
        "tRCD + tCAS), must span at least one controller clock "
        "(tCK) — see system/sharded.hh channelLookahead().",
}

EXPECT_RE = re.compile(r"configcheck-expect:\s*([a-z-]+|none)")
_NUMBER_RE = re.compile(r"^[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?$")
_SUFFIXED_RE = re.compile(
    r"^(?P<num>[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?)"
    r"(?P<suffix>[a-zA-Z]+)$")

_MAX_INCLUDE_DEPTH = 16
_TICK_MAX = 2**63 - 1

#: PulseFactor ladder the monotonicity rule probes (policy.hh's
#: slow-write factors live inside this envelope).
_PULSE_LADDER = (1.0, 1.5, 2.0, 3.0, 4.0, 8.0)


@dataclass
class Entry:
    key: str
    value: str
    file: str
    line: int


# ---------------------------------------------------------------------
# Config parsing (mirrors src/config/config_file.cc)

def _strip_comment(line: str) -> str:
    for marker in (";", "//"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    if line.lstrip().startswith("#"):
        return ""
    return line


def _rel(path: str) -> str:
    path = os.path.realpath(path)
    if path.startswith(REPO_ROOT + os.sep):
        return os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
    return path.replace(os.sep, "/")


def parse_config(path: str, findings: list[Finding],
                 depth: int = 0) -> dict[str, Entry]:
    """First-seen-ordered {key: Entry}; overrides update value and
    provenance in place, exactly like ConfigFile::parseLines."""
    entries: dict[str, Entry] = {}
    rel = _rel(path)
    try:
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError as exc:
        findings.append(Finding(RULE_PARSE, rel, 1,
                                f"cannot read config: {exc}"))
        return entries

    for lineno, raw in enumerate(lines, start=1):
        code = _strip_comment(raw).strip()
        if not code:
            continue
        parts = code.split(None, 1)
        if len(parts) != 2:
            findings.append(Finding(
                RULE_PARSE, rel, lineno,
                f"expected 'KEY value', got '{code}'"))
            continue
        key, value = parts[0], parts[1].strip()
        if key == "INCLUDE":
            if depth + 1 > _MAX_INCLUDE_DEPTH:
                findings.append(Finding(
                    RULE_PARSE, rel, lineno,
                    "INCLUDE depth exceeds "
                    f"{_MAX_INCLUDE_DEPTH} (cycle?)"))
                continue
            inc = value
            if not os.path.isabs(inc):
                inc = os.path.join(os.path.dirname(path), inc)
            for sub in parse_config(inc, findings, depth + 1).values():
                entries[sub.key] = sub
            continue
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", key):
            findings.append(Finding(
                RULE_PARSE, rel, lineno, f"malformed key '{key}'"))
            continue
        if key in entries:
            old = entries[key]
            old.value, old.file, old.line = value, rel, lineno
        else:
            entries[key] = Entry(key, value, rel, lineno)
    return entries


# ---------------------------------------------------------------------
# Units: {symbol: exponent} dicts; None marks a literal, which is
# dimensionless but unifies with anything (so `tFAW >= 4 * tCK` and
# `BitsPerWrite == 512` both type-check while `tWP >= BaseEndurance`
# does not).

POLY = None

_BASE_UNITS = {
    "ns": {"ns": 1},
    "MHz": {"MHz": 1},
    "pJ": {"pJ": 1},
    "bits": {"bits": 1},
    "B": {"B": 1},
    "writes": {"writes": 1},
    "count": {},
    "ratio": {},
}


def _unit_name(unit) -> str:
    if unit is POLY or not unit:
        return "dimensionless"
    return "*".join(f"{k}^{v}" if v != 1 else k
                    for k, v in sorted(unit.items()))


def _unit_mul(a, b, sign: int):
    if a is POLY and b is POLY:
        return POLY
    a = {} if a is POLY else a
    b = {} if b is POLY else b
    out = dict(a)
    for k, v in b.items():
        out[k] = out.get(k, 0) + sign * v
        if out[k] == 0:
            del out[k]
    return out


def _unit_join(a, b, context: str):
    """Unit of a +/-/comparison of @p a and @p b; raises on mismatch."""
    if a is POLY:
        return b
    if b is POLY:
        return a
    if a != b:
        raise UnitError(
            f"{context}: {_unit_name(a)} vs {_unit_name(b)}")
    return a


class UnitError(Exception):
    pass


class EvalError(Exception):
    pass


class _Evaluator(ast.NodeVisitor):
    """Evaluates a constraint expression over (value, unit) pairs."""

    def __init__(self, env: dict[str, tuple[float, object]]):
        self.env = env

    def run(self, tree: ast.AST) -> tuple[object, object]:
        return self.visit(tree)

    def visit_Expression(self, node):
        return self.visit(node.body)

    def visit_Constant(self, node):
        if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)):
            raise EvalError(f"unsupported literal {node.value!r}")
        return float(node.value), POLY

    def visit_Name(self, node):
        if node.id not in self.env:
            raise EvalError(f"unknown identifier '{node.id}'")
        return self.env[node.id]

    def visit_UnaryOp(self, node):
        value, unit = self.visit(node.operand)
        if isinstance(node.op, ast.USub):
            return -value, unit
        if isinstance(node.op, ast.UAdd):
            return value, unit
        raise EvalError("unsupported unary operator")

    def visit_BinOp(self, node):
        lv, lu = self.visit(node.left)
        rv, ru = self.visit(node.right)
        if isinstance(node.op, ast.Add):
            return lv + rv, _unit_join(lu, ru, "addition")
        if isinstance(node.op, ast.Sub):
            return lv - rv, _unit_join(lu, ru, "subtraction")
        if isinstance(node.op, ast.Mult):
            return lv * rv, _unit_mul(lu, ru, +1)
        if isinstance(node.op, ast.Div):
            if rv == 0:
                raise EvalError("division by zero")
            return lv / rv, _unit_mul(lu, ru, -1)
        if isinstance(node.op, ast.Mod):
            if rv == 0:
                raise EvalError("modulo by zero")
            _unit_join(lu, ru, "modulo")
            return math.fmod(lv, rv), lu
        if isinstance(node.op, ast.Pow):
            if ru is not POLY and ru:
                raise UnitError("exponent must be dimensionless")
            if lu is not POLY and lu:
                raise UnitError("power of a dimensioned quantity")
            return lv ** rv, POLY
        raise EvalError("unsupported binary operator")

    def visit_Compare(self, node):
        left = self.visit(node.left)
        result = True
        for op, comparator in zip(node.ops, node.comparators):
            right = self.visit(comparator)
            _unit_join(left[1], right[1], "comparison")
            lv, rv = left[0], right[0]
            if isinstance(op, ast.Lt):
                ok = lv < rv
            elif isinstance(op, ast.LtE):
                ok = lv <= rv
            elif isinstance(op, ast.Gt):
                ok = lv > rv
            elif isinstance(op, ast.GtE):
                ok = lv >= rv
            elif isinstance(op, ast.Eq):
                ok = lv == rv
            elif isinstance(op, ast.NotEq):
                ok = lv != rv
            else:
                raise EvalError("unsupported comparison")
            result = result and ok
            left = right
        return result, POLY

    def visit_BoolOp(self, node):
        values = [self.visit(v)[0] for v in node.values]
        if isinstance(node.op, ast.And):
            return all(values), POLY
        return any(values), POLY

    def visit_Call(self, node):
        if not isinstance(node.func, ast.Name) or node.keywords:
            raise EvalError("unsupported call form")
        name = node.func.id
        args = [self.visit(a) for a in node.args]
        if name == "approx":
            if len(args) not in (2, 3):
                raise EvalError("approx(a, b[, rel])")
            _unit_join(args[0][1], args[1][1], "approx")
            rel = args[2][0] if len(args) == 3 else 1e-9
            a, b = args[0][0], args[1][0]
            return math.isclose(a, b, rel_tol=rel, abs_tol=rel), POLY
        if name == "pow2":
            if len(args) != 1:
                raise EvalError("pow2(x)")
            v = args[0][0]
            return (v > 0 and float(v).is_integer()
                    and (int(v) & (int(v) - 1)) == 0), POLY
        if name == "round":
            if len(args) != 1:
                raise EvalError("round(x)")
            return float(round(args[0][0])), args[0][1]
        if name == "abs":
            if len(args) != 1:
                raise EvalError("abs(x)")
            return abs(args[0][0]), args[0][1]
        if name in ("min", "max"):
            if len(args) < 2:
                raise EvalError(f"{name}() needs two arguments")
            unit = args[0][1]
            for a in args[1:]:
                unit = _unit_join(unit, a[1], name)
            fn = min if name == "min" else max
            return fn(a[0] for a in args), unit
        raise EvalError(f"unknown function '{name}'")

    def generic_visit(self, node):
        raise EvalError(
            f"unsupported syntax: {type(node).__name__}")


def _expr_names(tree: ast.AST) -> list[str]:
    """Variable references in source order (constraint anchoring);
    function names in call position are not variables."""
    called = {id(n.func) for n in ast.walk(tree)
              if isinstance(n, ast.Call)}
    names = [n for n in ast.walk(tree)
             if isinstance(n, ast.Name) and id(n) not in called]
    names.sort(key=lambda n: (n.lineno, n.col_offset))
    return [n.id for n in names]


# ---------------------------------------------------------------------
# Checking

def _check_schema(entries: dict[str, Entry], schema: dict, rel: str,
                  findings: list[Finding]) -> dict[str, tuple]:
    """Schema pass: unknown/missing/range/unit diagnostics. Returns
    the typed environment {key: (value, unit)} for constraints, with
    schema defaults substituted for absent optional keys."""
    env: dict[str, tuple] = {}
    words: dict[str, str] = {}

    for entry in entries.values():
        if entry.key not in schema:
            findings.append(Finding(
                RULE_UNKNOWN, entry.file, entry.line,
                f"unknown key '{entry.key}' (not declared in "
                "configcheck.toml; the binding would ignore it)"))

    for key, spec in schema.items():
        unit = spec["unit"]
        entry = entries.get(key)
        if entry is None:
            if spec.get("required", False):
                findings.append(Finding(
                    RULE_MISSING, rel, 1,
                    f"required key '{key}' is missing "
                    f"(unit {unit})"))
            elif "default_key" in spec:
                ref = env.get(spec["default_key"])
                if ref is not None:
                    env[key] = ref
            elif "default" in spec:
                if unit == "word":
                    words[key] = spec["default"]
                elif unit == "flag":
                    env[key] = (1.0 if spec["default"] else 0.0, {})
                else:
                    env[key] = (float(spec["default"]),
                                _BASE_UNITS[unit])
            continue

        value = entry.value
        if unit == "word":
            allowed = spec.get("enum", [])
            if allowed and value not in allowed:
                findings.append(Finding(
                    RULE_RANGE, entry.file, entry.line,
                    f"{key}: '{value}' not in "
                    f"{{{', '.join(allowed)}}}"))
                value = spec.get("default", allowed[0] if allowed
                                 else value)
            words[key] = value
            continue
        if unit == "flag":
            if value not in ("true", "false", "1", "0", "on", "off"):
                findings.append(Finding(
                    RULE_PARSE, entry.file, entry.line,
                    f"{key}: '{value}' is not a boolean "
                    "(true/false/1/0/on/off)"))
                continue
            env[key] = (1.0 if value in ("true", "1", "on") else 0.0,
                        {})
            continue

        m = _SUFFIXED_RE.match(value)
        if m:
            findings.append(Finding(
                RULE_UNIT, entry.file, entry.line,
                f"{key}: value '{value}' carries a unit suffix "
                f"'{m.group('suffix')}'; the format is unit-implicit "
                f"and {key} is declared in {unit}"))
            value = m.group("num")
        elif not _NUMBER_RE.match(value):
            findings.append(Finding(
                RULE_PARSE, entry.file, entry.line,
                f"{key}: '{value}' is not a number "
                f"(declared unit {unit})"))
            continue
        number = float(value)
        lo, hi = spec.get("min"), spec.get("max")
        if ((lo is not None and number < lo)
                or (hi is not None and number > hi)):
            findings.append(Finding(
                RULE_RANGE, entry.file, entry.line,
                f"{key}: {value} outside [{lo}, {hi}] {unit}"))
        env[key] = (number, _BASE_UNITS[unit])

    env["__words__"] = words  # smuggled to the caller, popped there
    return env


def _derive(env: dict, words: dict[str, str], cell_table: dict,
            rel: str, findings: list[Finding]) -> None:
    """The derived quantities constraints may reference."""
    if "CLK" in env and env["CLK"][0] > 0:
        env["tCK"] = (1000.0 / env["CLK"][0], _BASE_UNITS["ns"])
    if "BitsPerWrite" in env and "BusWidth" in env \
            and env["BusWidth"][0] > 0:
        env["lineBeats"] = (
            env["BitsPerWrite"][0] / env["BusWidth"][0], {})
    cell = words.get("Cell", "CellC")
    if "CellEnergyPj" in env:
        per_bit = env["CellEnergyPj"][0]
    else:
        per_bit = cell_table.get(cell)
    if per_bit is not None:
        env["cellBitPj"] = (per_bit, {"pJ": 1, "bits": -1})
    if "BufferReadPj" in env and "RowBufferBytes" in env \
            and env["RowBufferBytes"][0] > 0:
        env["bufferReadPjPerByte"] = (
            env["BufferReadPj"][0] / env["RowBufferBytes"][0],
            {"pJ": 1, "B": -1})


def _check_constraints(env: dict, entries: dict[str, Entry],
                       constraints: list[dict], rel: str,
                       findings: list[Finding]) -> None:
    for spec in constraints:
        try:
            tree = ast.parse(spec["expr"], mode="eval")
        except SyntaxError as exc:
            print(f"mellow-configcheck: bad constraint expression "
                  f"'{spec['id']}': {exc}", file=sys.stderr)
            sys.exit(2)
        names = _expr_names(tree)
        # Anchor the finding at the first referenced key present in
        # the config; fall back to the file head.
        anchor = next((entries[n] for n in names if n in entries),
                      None)
        file = anchor.file if anchor else rel
        line = anchor.line if anchor else 1
        if any(n not in env for n in names):
            # A prerequisite key already produced its own diagnostic
            # (missing/parse/range); don't cascade.
            continue
        try:
            ok, _unit = _Evaluator(env).run(tree)
        except UnitError as exc:
            findings.append(Finding(
                RULE_UNIT, file, line,
                f"constraint '{spec['id']}' mixes dimensions: {exc}"))
            continue
        except EvalError as exc:
            print(f"mellow-configcheck: constraint '{spec['id']}': "
                  f"{exc}", file=sys.stderr)
            sys.exit(2)
        if not ok:
            values = ", ".join(
                f"{n}={env[n][0]:g}" for n in dict.fromkeys(names)
                if n in env)
            findings.append(Finding(
                spec["rule"], file, line,
                f"[{spec['id']}] {spec['message']} "
                f"(with {values})"))


def _slow_write_pulse_ps(twp_ns: float, factor: float) -> int:
    """Mirror of NvmTimingParams::slowWritePulse, in picoseconds."""
    scaled = twp_ns * 1000.0 * factor
    if scaled >= float(_TICK_MAX):
        return _TICK_MAX
    return round(scaled)


def _check_pulse_monotonicity(env: dict, entries: dict[str, Entry],
                              rel: str,
                              findings: list[Finding]) -> None:
    if "tWP" not in env or "ExpoFactor" not in env:
        return
    twp, expo = env["tWP"][0], env["ExpoFactor"][0]
    anchor = entries.get("tWP")
    file = anchor.file if anchor else rel
    line = anchor.line if anchor else 1

    pulses = [_slow_write_pulse_ps(twp, f) for f in _PULSE_LADDER]
    if any(b <= a for a, b in zip(pulses, pulses[1:])):
        findings.append(Finding(
            RULE_PULSE, file, line,
            f"tWP {twp:g} ns saturates the Tick pulse computation "
            f"inside the PulseFactor ladder {_PULSE_LADDER}: slower "
            "factors stop lengthening the pulse"))

    gains = [f ** expo for f in _PULSE_LADDER]
    if any(b <= a for a, b in zip(gains, gains[1:])):
        anchor = entries.get("ExpoFactor") or anchor
        findings.append(Finding(
            RULE_PULSE,
            anchor.file if anchor else rel,
            anchor.line if anchor else 1,
            f"ExpoFactor {expo:g} makes Equation 2 endurance "
            "non-increasing in the pulse width: slow writes would "
            "buy no lifetime"))


# ---------------------------------------------------------------------
# Suppressions: translate config comments (';', leading '#') to the
# C++ '//' form, then reuse the repo-wide parser. Each code line is
# ';'-terminated so a standalone annotation binds to exactly the next
# key line.

def _cxxish(lines: list[str]) -> list[str]:
    out = []
    for raw in lines:
        line = raw
        if line.lstrip().startswith("#"):
            line = line.replace("#", "//", 1)
        semi = line.find(";")
        slashes = line.find("//")
        if semi >= 0 and (slashes < 0 or semi < slashes):
            line = line[:semi] + "//" + line[semi + 1:]
        idx = line.find("//")
        code = line if idx < 0 else line[:idx]
        comment = "" if idx < 0 else line[idx:]
        if code.strip():
            code = code.rstrip() + " ;"
        out.append(code + (" " + comment if comment else ""))
    return out


def _drop_suppressed(findings: list[Finding]) -> list[Finding]:
    sup_cache: dict[str, object] = {}
    kept = []
    for f in findings:
        if f.file not in sup_cache:
            path = os.path.join(REPO_ROOT, f.file)
            try:
                with open(path, encoding="utf-8") as fh:
                    lines = fh.read().splitlines()
                sup_cache[f.file] = parse_suppressions(_cxxish(lines))
            except OSError:
                sup_cache[f.file] = None
        sup = sup_cache[f.file]
        if sup is not None and sup.allows(f.rule, f.line):
            continue
        kept.append(f)
    return kept


# ---------------------------------------------------------------------
# Driver

def check_config(path: str, manifest: dict,
                 enabled: list[str]) -> list[Finding]:
    rel = _rel(path)
    findings: list[Finding] = []
    entries = parse_config(path, findings)
    env = _check_schema(entries, manifest.get("schema", {}), rel,
                        findings)
    words = env.pop("__words__")
    _derive(env, words, manifest.get("cell_energy_pj", {}), rel,
            findings)
    _check_constraints(env, entries, manifest.get("constraint", []),
                       rel, findings)
    _check_pulse_monotonicity(env, entries, rel, findings)

    findings = [f for f in findings if f.rule in enabled]
    findings = _drop_suppressed(findings)
    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.message))
    # De-duplicate (an included file checked via two parents).
    seen, unique = set(), []
    for f in findings:
        key = (f.file, f.line, f.rule, f.message)
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


def _self_test(fixture_dir: str, manifest: dict, enabled: list[str],
               only_rules: set[str]) -> int:
    failures = []
    checked = 0
    paths = []
    for dirpath, _dirs, names in os.walk(fixture_dir):
        for name in sorted(names):
            if name.endswith(".config"):
                paths.append(os.path.join(dirpath, name))
    for path in sorted(paths):
        with open(path, encoding="utf-8") as fh:
            first = fh.readline()
        m = EXPECT_RE.search(first)
        if not m:
            continue
        expect = m.group(1)
        if expect != "none" and expect not in ALL_RULES:
            failures.append(
                f"{path}: unknown configcheck-expect rule '{expect}'")
            continue
        if only_rules and expect != "none" \
                and expect not in only_rules:
            continue  # per-rule run: fixture out of scope
        checked += 1
        got = check_config(path, manifest, enabled)
        name = os.path.basename(path)
        if expect == "none":
            if got:
                listing = "; ".join(f"{g.line}:[{g.rule}]" for g in got)
                failures.append(
                    f"{name}: expected no findings, got {listing}")
        else:
            if not any(g.rule == expect for g in got):
                failures.append(
                    f"{name}: expected a [{expect}] finding, got "
                    + ("; ".join(f"{g.line}:[{g.rule}]" for g in got)
                       if got else "none"))
            stray = [g for g in got if g.rule != expect]
            if stray:
                failures.append(
                    f"{name}: unexpected findings: " + "; ".join(
                        f"{g.line}:[{g.rule}]" for g in stray))

    if not checked:
        print(f"mellow-configcheck: self-test found no fixtures under "
              f"{fixture_dir}", file=sys.stderr)
        return 2
    for failure in failures:
        print(f"self-test FAIL: {failure}")
    print(f"mellow-configcheck self-test: "
          f"{checked - len(failures)}/{checked} fixtures ok "
          f"(rules: {', '.join(enabled)})")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mellow-configcheck",
        description="constraint-based verifier for device configs")
    parser.add_argument("configs", nargs="*",
                        help="config files to check "
                             "(default: configs/*.config)")
    parser.add_argument("--manifest",
                        default=os.path.join(ANALYZE_DIR,
                                             "configcheck.toml"))
    parser.add_argument("--sarif", metavar="OUT",
                        help="also write SARIF 2.1.0 to OUT")
    parser.add_argument("--only-rule", action="append", default=[],
                        metavar="RULE", choices=ALL_RULES,
                        help="run only this rule (repeatable)")
    parser.add_argument("--disable", action="append", default=[],
                        metavar="RULE", choices=ALL_RULES,
                        help="disable this rule (repeatable)")
    parser.add_argument("--self-test", metavar="DIR",
                        help="check the `; configcheck-expect:` "
                             "directives of every fixture in DIR")
    args = parser.parse_args(argv)

    try:
        with open(args.manifest, "rb") as fh:
            manifest = tomllib.load(fh)
    except (OSError, tomllib.TOMLDecodeError) as exc:
        print(f"mellow-configcheck: cannot load manifest "
              f"{args.manifest}: {exc}", file=sys.stderr)
        return 2

    enabled = [r for r in ALL_RULES
               if (not args.only_rule or r in args.only_rule)
               and r not in args.disable]

    if args.self_test:
        return _self_test(os.path.realpath(args.self_test), manifest,
                          enabled, set(args.only_rule))

    configs = args.configs
    if not configs:
        default_dir = os.path.join(REPO_ROOT, "configs")
        configs = sorted(
            os.path.join(default_dir, n)
            for n in os.listdir(default_dir) if n.endswith(".config"))
    if not configs:
        print("mellow-configcheck: no input configs", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for path in configs:
        findings.extend(check_config(path, manifest, enabled))

    if args.sarif:
        from sarif import to_sarif
        with open(args.sarif, "w", encoding="utf-8") as fh:
            fh.write(to_sarif(
                findings, tool_name="mellow-configcheck",
                information_uri="tools/analyze/configcheck.py",
                rule_ids=ALL_RULES,
                rule_descriptions=RULE_DESCRIPTIONS))

    for f in findings:
        print(f"{f.file}:{f.line}: [{f.rule}] {f.message}")
    print(f"mellow-configcheck: {len(findings)} finding(s) across "
          f"{len(configs)} config(s), rules: {', '.join(enabled)}",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
