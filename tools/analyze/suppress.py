"""Shared parsing of `// mlint: allow(<rule>): <reason>` annotations.

Both the regex lint (tools/mellow_lint.py) and the semantic analyzer
(tools/analyze/mellow_analyze.py) honour the same suppression syntax
with the same placement semantics:

 - A trailing annotation on a code line suppresses the named rules on
   that line only::

       do_thing(x.value()); // mlint: allow(value-escape): reason

 - A standalone annotation comment suppresses the named rules for the
   whole *next statement* — every line from the first following code
   line through the line on which that statement ends (the first line
   that, outside parentheses, ends with ';', '{' or '}').  Explanatory
   comment lines may continue the annotation in between::

       // mlint: allow(value-escape): panic-message formatting
       // spanning several lines.
       panic_if(cond,
                "line %llu bad", line.value());

 - `// mlint: allow-file(<rule>)` anywhere in a file suppresses the
   named rules for the entire file.

Historically mellow_lint honoured "same line or the line above", which
silently failed on multi-line statements and leaked a trailing
annotation onto the following line for some rules; this module is the
single, consistent implementation both tools now use.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

ALLOW_RE = re.compile(
    r"//\s*mlint:\s*allow(?P<filewide>-file)?"
    r"\((?P<rules>[a-z-]+(?:\s*,\s*[a-z-]+)*)\)"
)

# How many lines a standalone annotation may extend over while looking
# for the end of the next statement (guards against unclosed parens).
_MAX_STATEMENT_LINES = 24


def _code_part(line: str) -> str:
    """The line with any trailing // comment removed (no string-literal
    awareness needed: annotated source in this repo never embeds // in
    string literals on annotated lines)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def _is_comment_only(line: str) -> bool:
    stripped = line.strip()
    return stripped.startswith("//") or stripped == ""


@dataclass
class Suppressions:
    """Per-file suppression state; line numbers are 1-based."""

    file_rules: set[str] = field(default_factory=set)
    line_rules: dict[int, set[str]] = field(default_factory=dict)

    def allows(self, rule: str, line: int) -> bool:
        if rule in self.file_rules:
            return True
        return rule in self.line_rules.get(line, set())


def parse_suppressions(lines: list[str]) -> Suppressions:
    """Parse all annotations in @p lines (list of raw source lines)."""
    sup = Suppressions()
    pending: set[str] = set()

    i = 0
    n = len(lines)
    while i < n:
        line = lines[i]
        match = ALLOW_RE.search(line)
        if match and match.group("filewide"):
            sup.file_rules.update(
                r.strip() for r in match.group("rules").split(","))
            i += 1
            continue

        if _is_comment_only(line):
            if match:
                pending.update(
                    r.strip() for r in match.group("rules").split(","))
            # Plain comment lines neither extend nor cancel a pending
            # annotation (they are its prose continuation).
            i += 1
            continue

        # A code line. Trailing annotation applies to this line only.
        rules_here: set[str] = set(pending)
        if match:
            rules_here.update(
                r.strip() for r in match.group("rules").split(","))
        if rules_here:
            sup.line_rules.setdefault(i + 1, set()).update(rules_here)

        if pending:
            # Extend the pending annotation through the statement.
            depth = 0
            j = i
            while j < n and j - i < _MAX_STATEMENT_LINES:
                code = _code_part(lines[j])
                depth += code.count("(") - code.count(")")
                depth += code.count("[") - code.count("]")
                sup.line_rules.setdefault(j + 1, set()).update(pending)
                stripped = code.rstrip()
                if depth <= 0 and stripped.endswith((";", "{", "}")):
                    break
                j += 1
            pending = set()
            i = j + 1
            continue

        i += 1

    return sup
