"""The four mellow-analyze rule families, computed over the Project IR.

Every rule returns a list of model.Finding; suppression filtering and
output formatting happen in mellow_analyze.py. Rules consume only the
IR (plus the raw file lines for the lexical rules), so they behave the
same under both frontends.
"""

from __future__ import annotations

import re
from collections import defaultdict

from frontend_textual import strip_comments_and_strings
from model import (
    RULE_CONFINEMENT_GLOBAL,
    RULE_CONFINEMENT_PORT,
    RULE_CONFINEMENT_SHARD,
    RULE_LAYERING,
    RULE_NONDET_HANDLER,
    RULE_REQUEST_LIFETIME,
    RULE_VALUE_ESCAPE,
    Finding,
    Project,
)


def _norm_func(name: str) -> str:
    """Normalize a qualified function name for whitelist matching:
    strip namespaces and template arguments, keep `Class::method`."""
    name = re.sub(r"<[^<>]*>", "", name)
    parts = [p for p in name.split("::") if p]
    if len(parts) >= 2:
        return "::".join(parts[-2:])
    return parts[-1] if parts else name


# --- Rule 1: strong-type escape analysis ----------------------------


def check_value_escape(project: Project, whitelists: dict) -> list[Finding]:
    wl = whitelists.get("value_escape", {})
    wl_funcs = {f for f in wl.get("functions", [])}
    wl_files = tuple(wl.get("files", []))

    findings = []
    for call in project.value_calls:
        if call.file.endswith(wl_files) and wl_files:
            continue
        enclosing = _norm_func(call.enclosing) if call.enclosing else ""
        if enclosing and (enclosing in wl_funcs
                          or enclosing.split("::")[-1] in wl_funcs):
            continue
        where = f" in {enclosing}()" if enclosing else ""
        findings.append(Finding(
            RULE_VALUE_ESCAPE, call.file, call.line,
            f".value() on {call.recv_type}{where} escapes the typed "
            f"domain outside the whitelisted conversion sites "
            f"(tools/analyze/whitelists.toml)"))
    return findings


# --- Rule 2: module layering ----------------------------------------


def _module_of(path: str, src_root: str) -> str | None:
    """Module name of a path under @p src_root (e.g. 'nvm'), else None."""
    prefix = src_root.rstrip("/") + "/"
    if not path.startswith(prefix):
        return None
    rest = path[len(prefix):]
    return rest.split("/")[0] if "/" in rest else None


def _collect_symbols(project: Project, src_root: str) -> dict:
    """Top-level type/alias names per module from header files.
    Returns name -> (module, header-path-as-included)."""
    defs: dict[str, set[tuple[str, str]]] = defaultdict(set)
    # The optional MELLOW_* group skips capability-annotation macros
    # (src/sim/sync.hh): `class MELLOW_CAPABILITY("mutex") Mutex`.
    type_re = re.compile(
        r"^(?:class|struct|enum\s+class|enum)\s+"
        r"(?:MELLOW_\w+\s*(?:\([^)]*\)\s*)?)?([A-Z]\w*)")
    alias_re = re.compile(r"^using\s+([A-Z]\w*)\s*=")
    for path, lines in project.files.items():
        if not path.endswith(".hh"):
            continue
        module = _module_of(path, src_root)
        if module is None:
            continue
        header = path[len(src_root.rstrip("/")) + 1:]
        clean = strip_comments_and_strings(lines)
        for i, line in enumerate(clean):
            m = type_re.match(line)
            if m:
                # Skip forward declarations (`class X;` with no body).
                rest = line[m.end():]
                if ";" in rest and "{" not in rest:
                    continue
                defs[m.group(1)].add((module, header))
                continue
            m = alias_re.match(line)
            if m:
                defs[m.group(1)].add((module, header))
    # Names defined in more than one module are ambiguous — drop them.
    return {name: next(iter(homes))
            for name, homes in defs.items()
            if len({mod for mod, _ in homes}) == 1}


def check_layering(project: Project, layers: dict,
                   src_root: str = "src") -> list[Finding]:
    modules = layers.get("modules", {})
    findings = []

    def allowed(from_mod: str, to_mod: str, header: str) -> bool:
        if from_mod == to_mod:
            return True
        spec = modules.get(from_mod)
        if spec is None:
            return True  # unmanifested module: no layering contract yet
        if to_mod in spec.get("deps", []):
            return True
        restricted = spec.get("restricted", {})
        return header in restricted.get(to_mod, [])

    # Include-graph edges.
    for path, incs in project.includes.items():
        from_mod = _module_of(path, src_root)
        if from_mod is None:
            continue
        for line, target in incs:
            to_mod = target.split("/")[0] if "/" in target else from_mod
            if not allowed(from_mod, to_mod, target):
                findings.append(Finding(
                    RULE_LAYERING, path, line,
                    f'module "{from_mod}" may not include "{target}" '
                    f'(layer manifest tools/analyze/layers.toml allows '
                    f'{from_mod} -> {sorted(modules[from_mod].get("deps", []))}'
                    f'{" plus restricted headers" if modules[from_mod].get("restricted") else ""})'))

    # Cross-module symbol references (catches reaching into a foreign
    # module through a transitive include without naming it).
    symbols = _collect_symbols(project, src_root)
    word_res = {name: re.compile(r"\b" + re.escape(name) + r"\b")
                for name in symbols}
    for path, lines in project.files.items():
        from_mod = _module_of(path, src_root)
        if from_mod is None or from_mod not in modules:
            continue
        clean = strip_comments_and_strings(lines)
        reported: set[str] = set()
        for i, line in enumerate(clean):
            for name, (home_mod, header) in symbols.items():
                if home_mod == from_mod or name in reported:
                    continue
                if not word_res[name].search(line):
                    continue
                if allowed(from_mod, home_mod, header):
                    reported.add(name)
                    continue
                reported.add(name)
                findings.append(Finding(
                    RULE_LAYERING, path, i + 1,
                    f'module "{from_mod}" references {name} (defined in '
                    f'{header}, module "{home_mod}") outside its '
                    f'manifested dependencies'))
    return findings


# --- Rule 3: event-handler determinism ------------------------------


def check_nondet_handler(project: Project, whitelists: dict) -> list[Finding]:
    allowed_files = tuple(
        whitelists.get("nondet_handler", {}).get("allowed_files", []))

    def file_allowed(path: str) -> bool:
        return path.endswith(allowed_files) if allowed_files else False

    by_simple_name: dict[str, list] = defaultdict(list)
    for func in project.functions:
        by_simple_name[func.name.split("::")[-1]].append(func)

    roots = [f for f in project.functions if f.is_schedule_root]
    reachable = []
    seen: set[int] = set()
    work = list(roots)
    while work:
        func = work.pop()
        if id(func) in seen:
            continue
        seen.add(id(func))
        if file_allowed(func.file):
            continue
        reachable.append(func)
        for callee, _line in func.calls:
            for target in by_simple_name.get(callee, []):
                if id(target) not in seen:
                    work.append(target)

    findings = []
    emitted: set[tuple[str, int, str]] = set()
    for func in reachable:
        label = ("an EventQueue::schedule callback"
                 if func.is_schedule_root else f"{func.name}()")
        for ident, line, what in func.banned:
            key = (func.file, line, ident)
            if key in emitted:
                continue
            emitted.add(key)
            findings.append(Finding(
                RULE_NONDET_HANDLER, func.file, line,
                f"{what} `{ident}` in {label}, which is reachable from "
                f"an event handler; handlers must stay deterministic "
                f"(use sim/rng, sim/logging, or move this off the "
                f"event path)"))
        for line, container in func.unordered_iters:
            key = (func.file, line, container)
            if key in emitted:
                continue
            emitted.add(key)
            findings.append(Finding(
                RULE_NONDET_HANDLER, func.file, line,
                f"iteration over unordered container `{container}` in "
                f"{label}, which is reachable from an event handler; "
                f"iteration order is not deterministic"))
    return findings


# --- Rule 4: request lifetime ---------------------------------------

_DECL_REQ_TMPL = r"\b(?:TYPES)\s+(\w+)\s*[;,)=(]"
_PTR_ALIAS_TMPL = r"(?:\b(?:TYPES)\s*\*|auto\s*\*)\s*(\w+)\s*=\s*&\s*(\w+)"
_REF_ALIAS_TMPL = r"(?:\b(?:TYPES)|auto)\s*&\s*(\w+)\s*=\s*(\w+)\s*;"


def _blocks_in(clean: list[str], start: int, end: int):
    """Brace blocks ((open_line, close_line, header), 1-based) inside
    [start, end] (1-based line range)."""
    blocks = []
    stack: list[tuple[int, str]] = []
    prev_text = ""
    for ln in range(start, end + 1):
        text = clean[ln - 1]
        for col, ch in enumerate(text):
            if ch == "{":
                header = text[:col].strip() or prev_text.strip()
                stack.append((ln, header))
            elif ch == "}" and stack:
                open_ln, header = stack.pop()
                blocks.append((open_ln, ln, header))
        if text.strip():
            prev_text = text
    return blocks


def check_request_lifetime(project: Project, whitelists: dict) -> list[Finding]:
    cfg = whitelists.get("request_lifetime", {})
    types = cfg.get("request_types", ["MemRequest"])
    methods = cfg.get(
        "queue_methods",
        ["push", "pushFront", "push_front", "push_back", "emplace",
         "emplace_back"])
    types_alt = "|".join(re.escape(t) for t in types)
    decl_re = re.compile(_DECL_REQ_TMPL.replace("TYPES", types_alt))
    ptr_re = re.compile(_PTR_ALIAS_TMPL.replace("TYPES", types_alt))
    ref_re = re.compile(_REF_ALIAS_TMPL.replace("TYPES", types_alt))
    # Only std::move(var) counts as a hand-off: pushing a copy leaves
    # the original perfectly readable.
    enqueue_re = re.compile(
        r"\.\s*(?:" + "|".join(re.escape(m) for m in methods) + r")"
        r"\s*\(\s*std::move\s*\(\s*(\w+)\s*\)")

    findings = []
    cleaned = {p: strip_comments_and_strings(ls)
               for p, ls in project.files.items()}

    for func in project.functions:
        if func.is_schedule_root:
            continue
        clean = cleaned.get(func.file)
        if clean is None:
            continue
        # Request variables: body declarations plus by-value parameters
        # on the few signature lines preceding the body.
        sig_start = max(1, func.start - 4)
        tracked: set[str] = set()
        aliases: dict[str, str] = {}  # alias -> request var
        for ln in range(sig_start, func.end + 1):
            for m in decl_re.finditer(clean[ln - 1]):
                tracked.add(m.group(1))
        if not tracked:
            continue
        for ln in range(func.start, func.end + 1):
            for m in ptr_re.finditer(clean[ln - 1]):
                if m.group(2) in tracked:
                    aliases[m.group(1)] = m.group(2)
            for m in ref_re.finditer(clean[ln - 1]):
                if m.group(2) in tracked:
                    aliases[m.group(1)] = m.group(2)

        blocks = _blocks_in(clean, func.start, func.end)

        def excluded_ranges(enq_line: int) -> list[tuple[int, int]]:
            """Ranges unreachable after the enqueue: else-branches of
            every if-block enclosing the enqueue (transitively through
            else-if chains)."""
            ranges = []
            for open_ln, close_ln, header in blocks:
                if not (open_ln <= enq_line <= close_ln):
                    continue
                if not re.search(r"\bif\b", header):
                    continue
                cur_close = close_ln
                while True:
                    sibling = next(
                        ((o, c, h) for o, c, h in blocks
                         if o == cur_close and re.search(r"\belse\b", h)),
                        None)
                    if sibling is None:
                        break
                    ranges.append((sibling[0], sibling[1]))
                    if re.search(r"\bif\b", sibling[2]):
                        cur_close = sibling[1]
                    else:
                        break
            return ranges

        for ln in range(func.start, func.end + 1):
            text = clean[ln - 1]
            for m in enqueue_re.finditer(text):
                var = m.group(1)
                if var not in tracked:
                    continue
                dead = {var} | {a for a, v in aliases.items() if v == var}
                excl = excluded_ranges(ln)
                use_res = [re.compile(r"\b" + re.escape(d) + r"\b")
                           for d in dead]
                for ln2 in range(ln + 1, func.end + 1):
                    if any(lo <= ln2 <= hi for lo, hi in excl):
                        continue
                    t2 = clean[ln2 - 1]
                    if re.match(r"\s*" + re.escape(var) + r"\s*=[^=]", t2):
                        break  # reassigned; tracking ends
                    for use_re in use_res:
                        um = use_re.search(t2)
                        if um:
                            findings.append(Finding(
                                RULE_REQUEST_LIFETIME, func.file, ln2,
                                f"`{um.group(0)}` is read after the "
                                f"request was handed to a queue at "
                                f"{func.file}:{ln} (moved-from/retained "
                                f"access in {func.name}())"))
                            break
                    else:
                        continue
                    break
    return findings


# --- Rules 5-7: shard confinement -----------------------------------
#
# The confinement family enforces the concurrency model in DESIGN.md
# §11 from the declarations in tools/analyze/confinement.toml. All
# three rules are computed lexically over the shared IR file map, so
# both frontends agree by construction.

#: Keywords that can never start a variable definition at namespace
#: scope (filters function bodies, type definitions, using aliases...).
_NS_NONVAR_KEYWORDS = frozenset(
    """using typedef return extern friend template namespace class
    struct enum union public private protected case goto else if for
    while switch do try catch static_assert operator void""".split())

#: A namespace-scope variable definition: `Type name;`,
#: `Type name = init;` or `Type name{init};` on one line. The type may
#: be qualified/templated; the name may be a qualified out-of-class
#: static-member definition (`Type Class::member = init;`).
_NS_VAR_RE = re.compile(
    r"^([A-Za-z_][\w:]*(?:\s*<[^;={}]*>)?(?:\s*[*&])*)\s+"
    r"[A-Za-z_][\w:]*\s*(?:\{[^{}]*\}|\[[^\]]*\]|=[^=;][^;]*)?\s*;")

_STATIC_DECL_RE = re.compile(r"^\s*(?:inline\s+)?static\s+")

#: Declarations carrying one of these are synchronization-aware and
#: exempt from confinement-global (plus whatever confinement.toml's
#: [global].synchronized_types adds).
_EXEMPT_RE = re.compile(r"\bconst\b|\bconstexpr\b|\bthread_local\b")
_BUILTIN_SYNC_MARKERS = ("std::atomic", "std::once_flag")


def _scope_kinds(clean: list[str]):
    """Yield (line_index, at_namespace_scope) for every line, tracking
    a brace stack whose openers are classified as namespace, type, or
    other (function bodies, initializers) scopes. A line starting
    inside an unclosed parenthesis group (the continuation of a
    multi-line declaration) is never at namespace scope."""
    stack: list[str] = []
    paren_depth = 0
    prev_nonblank = ""
    type_open_re = re.compile(
        r"^\s*(?:template\s*<[^<>]*>\s*)?"
        r"(?:class|struct|enum|union)\b")
    for i, line in enumerate(clean):
        yield i, paren_depth == 0 and all(
            kind == "ns" for kind in stack)
        col = 0
        for ch in line:
            if ch == "{":
                header = line[:col].strip() or prev_nonblank
                if re.search(r"\bnamespace\b", header):
                    stack.append("ns")
                elif type_open_re.match(header):
                    stack.append("type")
                else:
                    stack.append("other")
            elif ch == "}" and stack:
                stack.pop()
            elif ch == "(":
                paren_depth += 1
            elif ch == ")" and paren_depth:
                paren_depth -= 1
            col += 1
        if line.strip():
            prev_nonblank = line.strip()


def check_confinement_global(project: Project, confinement: dict,
                             src_root: str = "src") -> list[Finding]:
    """Mutable static-storage state must be synchronized (atomic, a
    sync.hh type, or a manifest-listed type), thread-local, or const:
    anything else is invisible shared state that a parallel sweep or
    the sharded per-channel runtime (system/sharded.cc) would race
    on."""
    sync_markers = _BUILTIN_SYNC_MARKERS + tuple(
        confinement.get("global", {}).get("synchronized_types", []))

    def exempt(line: str) -> bool:
        return bool(_EXEMPT_RE.search(line)) or any(
            marker in line for marker in sync_markers)

    def is_variable(line: str) -> bool:
        # A '(' before the first initializer/terminator means a
        # function declaration or definition, not a variable.
        head = re.split(r"[={;]", line, maxsplit=1)[0]
        return "(" not in head and "[[" not in head

    findings = []
    for path, lines in project.files.items():
        if _module_of(path, src_root) is None:
            continue
        clean = strip_comments_and_strings(lines)
        for i, at_ns in _scope_kinds(clean):
            line = clean[i]
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            if _STATIC_DECL_RE.match(line):
                # static anywhere: class member, function-local, or
                # file scope — all outlive the run and are shared.
                if exempt(line) or not is_variable(stripped):
                    continue
                findings.append(Finding(
                    RULE_CONFINEMENT_GLOBAL, path, i + 1,
                    "mutable static state is shared across threads; "
                    "make it std::atomic, a sync.hh type, thread_local "
                    "or const (confinement.toml [global])"))
                continue
            if not at_ns:
                continue
            body = re.sub(r"^inline\s+", "", stripped)
            m = _NS_VAR_RE.match(body)
            if not m:
                continue
            first_word = re.split(r"[^\w]", body, maxsplit=1)[0]
            if first_word in _NS_NONVAR_KEYWORDS:
                continue
            if exempt(line) or not is_variable(body):
                continue
            findings.append(Finding(
                RULE_CONFINEMENT_GLOBAL, path, i + 1,
                "mutable namespace-scope state is shared across "
                "threads; make it std::atomic, a sync.hh type, "
                "thread_local or const (confinement.toml [global])"))
    return findings


def check_confinement_shard(project: Project, confinement: dict,
                            src_root: str = "src") -> list[Finding]:
    """Calls to declared mutators of shard-owned state from modules
    outside the declared owners. Mutator names in the manifest must be
    project-unique; the ChannelShard runtime (system/sharded.cc) is
    written against exactly this ownership map."""
    mutators: dict[str, tuple[str, tuple[str, ...]]] = {}
    for entry in confinement.get("shard_owned", []):
        owners = tuple(entry.get("owners", []))
        for name in entry.get("mutators", []):
            mutators[name] = (entry.get("type", "?"), owners)

    findings = []
    seen: set[tuple[str, int, str]] = set()
    for func in project.functions:
        module = _module_of(func.file, src_root)
        if module is None:
            continue
        for callee, line in func.calls:
            hit = mutators.get(callee)
            if hit is None:
                continue
            type_name, owners = hit
            if module in owners:
                continue
            key = (func.file, line, callee)
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                RULE_CONFINEMENT_SHARD, func.file, line,
                f"{type_name}::{callee}() mutates shard-owned state "
                f"from module \"{module}\"; only "
                f"{sorted(owners)} may write it "
                f"(confinement.toml [[shard_owned]])"))
    return findings


def check_confinement_port(project: Project, confinement: dict,
                           src_root: str = "src") -> list[Finding]:
    """References to a shard's internal types from consumer modules:
    cross-shard communication must go through the declared seam
    headers' port vocabulary, even when the layer manifest permits the
    include."""
    findings = []
    for port in confinement.get("port", []):
        internal = set(port.get("internal_modules", []))
        trusted = set(port.get("trusted_modules", []))
        seams = port.get("seam_headers", [])
        word_res = {t: re.compile(r"\b" + re.escape(t) + r"\b")
                    for t in port.get("internal_types", [])}
        for path, lines in project.files.items():
            module = _module_of(path, src_root)
            if module is None or module in internal or module in trusted:
                continue
            clean = strip_comments_and_strings(lines)
            reported: set[str] = set()
            for i, line in enumerate(clean):
                for name, word_re in word_res.items():
                    if name in reported or not word_re.search(line):
                        continue
                    reported.add(name)
                    findings.append(Finding(
                        RULE_CONFINEMENT_PORT, path, i + 1,
                        f"module \"{module}\" touches {name}, internal "
                        f"to the \"{port.get('name', '?')}\" shard; "
                        f"communicate through the declared seam "
                        f"({', '.join(seams)}) "
                        f"(confinement.toml [[port]])"))
    return findings


# The parallel-protocol family lives in rules_protocol.py; imported
# here (after the helpers it reuses are defined) so RULE_CHECKERS
# stays the single dispatch table.
from rules_protocol import (  # noqa: E402
    check_atomic_order,
    check_handler_blocking,
    check_lock_order,
    check_port_protocol,
)
from model import (  # noqa: E402
    RULE_ATOMIC_ORDER,
    RULE_HANDLER_BLOCKING,
    RULE_LOCK_ORDER,
    RULE_PORT_PROTOCOL,
)

RULE_CHECKERS = {
    RULE_VALUE_ESCAPE:
        lambda project, layers, wl, conf, proto:
            check_value_escape(project, wl),
    RULE_LAYERING:
        lambda project, layers, wl, conf, proto:
            check_layering(project, layers),
    RULE_NONDET_HANDLER:
        lambda project, layers, wl, conf, proto:
            check_nondet_handler(project, wl),
    RULE_REQUEST_LIFETIME:
        lambda project, layers, wl, conf, proto:
            check_request_lifetime(project, wl),
    RULE_CONFINEMENT_GLOBAL:
        lambda project, layers, wl, conf, proto:
            check_confinement_global(project, conf),
    RULE_CONFINEMENT_SHARD:
        lambda project, layers, wl, conf, proto:
            check_confinement_shard(project, conf),
    RULE_CONFINEMENT_PORT:
        lambda project, layers, wl, conf, proto:
            check_confinement_port(project, conf),
    RULE_LOCK_ORDER:
        lambda project, layers, wl, conf, proto:
            check_lock_order(project, proto),
    RULE_ATOMIC_ORDER:
        lambda project, layers, wl, conf, proto:
            check_atomic_order(project, proto),
    RULE_HANDLER_BLOCKING:
        lambda project, layers, wl, conf, proto:
            check_handler_blocking(project, proto),
    RULE_PORT_PROTOCOL:
        lambda project, layers, wl, conf, proto:
            check_port_protocol(project, proto),
}
