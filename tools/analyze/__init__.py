"""mellow-analyze: semantic static analysis for mellowsim.

See mellow_analyze.py for the command-line entry point and DESIGN.md
("Static analysis architecture") for how this layer relates to the
compiler / clang-tidy layer and the regex lint (tools/mellow_lint.py).
"""
