"""Backend-neutral intermediate representation for mellow-analyze.

Both frontends (frontend_clang.py, frontend_textual.py) lower the
source tree into a Project; the rules (rules.py) only ever consume this
IR, so every rule behaves identically under either backend up to the
precision of the facts a backend can extract.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The strong types whose ``.value()`` is an escape from the typed
#: domain (see src/sim/strong_types.hh).
STRONG_TYPES = (
    "LogicalAddr",
    "LineIndex",
    "DeviceAddr",
    "LeveledAddr",
    "BankId",
    "ChannelId",
    "Picojoules",
    "PulseFactor",
)

#: Underlying template/class names the clang backend sees after alias
#: resolution, mapped back to "a strong type".
STRONG_CLASS_NAMES = ("StrongOrdinal", "Quantity", "PulseFactor")

#: Rule identifiers (shared with the suppression annotations).
RULE_VALUE_ESCAPE = "value-escape"
RULE_LAYERING = "layering"
RULE_NONDET_HANDLER = "nondet-handler"
RULE_REQUEST_LIFETIME = "request-lifetime"
#: Shard-confinement family (tools/analyze/confinement.toml).
RULE_CONFINEMENT_GLOBAL = "confinement-global"
RULE_CONFINEMENT_SHARD = "confinement-shard"
RULE_CONFINEMENT_PORT = "confinement-port"
#: Parallel-protocol family (tools/analyze/protocol.toml).
RULE_LOCK_ORDER = "lock-order"
RULE_ATOMIC_ORDER = "atomic-order"
RULE_HANDLER_BLOCKING = "handler-blocking"
RULE_PORT_PROTOCOL = "port-protocol"

ALL_RULES = (
    RULE_VALUE_ESCAPE,
    RULE_LAYERING,
    RULE_NONDET_HANDLER,
    RULE_REQUEST_LIFETIME,
    RULE_CONFINEMENT_GLOBAL,
    RULE_CONFINEMENT_SHARD,
    RULE_CONFINEMENT_PORT,
    RULE_LOCK_ORDER,
    RULE_ATOMIC_ORDER,
    RULE_HANDLER_BLOCKING,
    RULE_PORT_PROTOCOL,
)


@dataclass(frozen=True)
class Finding:
    rule: str
    file: str  # repo-relative path
    line: int  # 1-based
    message: str


@dataclass(frozen=True)
class ValueCall:
    """One ``<recv>.value()`` call on a strong type."""

    file: str
    line: int
    recv_type: str  # one of STRONG_TYPES (or a class name for clang)
    enclosing: str  # qualified enclosing function ("" if unknown)


@dataclass
class FunctionDef:
    """A function definition with the facts the determinism rule needs."""

    name: str  # qualified: "Class::method" or "freeFunction"
    file: str
    start: int  # 1-based body start line
    end: int  # 1-based body end line
    calls: list[tuple[str, int]] = field(default_factory=list)
    #: (identifier, line, what) for banned-API uses in the body.
    banned: list[tuple[str, int, str]] = field(default_factory=list)
    #: (line, container) for range-for over unordered containers.
    unordered_iters: list[tuple[int, str]] = field(default_factory=list)
    #: True for synthetic lambda functions rooted at EventQueue::schedule.
    is_schedule_root: bool = False


@dataclass
class Project:
    """Everything the rules consume."""

    #: path -> raw source lines.
    files: dict[str, list[str]] = field(default_factory=dict)
    #: path -> list of (line, included-path-as-written).
    includes: dict[str, list[tuple[int, str]]] = field(default_factory=dict)
    value_calls: list[ValueCall] = field(default_factory=list)
    functions: list[FunctionDef] = field(default_factory=list)
    #: type/alias name -> (module, defining header) for layering's
    #: cross-module symbol-reference check; ambiguous names excluded.
    symbols: dict[str, tuple[str, str]] = field(default_factory=dict)
