"""Pure-Python textual frontend for mellow-analyze.

This backend extracts the Project IR (model.py) with lexical analysis
only, so the analyzer runs — and the ctest fixtures gate — on machines
without libclang. It leans on the repository's enforced code style
(gem5-style definitions: return type on its own line, the qualified
name at column 0, braces at column 0) and resolves ``.value()``
receivers through a project-wide declaration map: a receiver is only
treated as a strong type when every declaration of that name found in
the tree agrees. Receivers it cannot resolve are skipped; the clang
backend (CI) resolves those semantically.
"""

from __future__ import annotations

import re

from model import (
    STRONG_TYPES,
    FunctionDef,
    Project,
    ValueCall,
)

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')

_STRONG_ALT = "|".join(STRONG_TYPES)

#: `Type name` declarations (parameters, locals, members) of a strong
#: type. Accepts an optional const and reference.
DECL_RE = re.compile(
    r"\b(?:const\s+)?(" + _STRONG_ALT + r")\s*&?\s+([A-Za-z_]\w*)\s*[;,)=({]"
)

#: Functions returning a strong type, declared either on one line
#: (`[[nodiscard]] ChannelId channelOf(...)`) or gem5-style with the
#: return type alone on the previous line.
RET_ONE_LINE_RE = re.compile(
    r"\b(" + _STRONG_ALT + r")\s+(?:[A-Za-z_]\w*::)?([A-Za-z_]\w*)\s*\("
)
RET_TYPE_LINE_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:friend\s+)?(?:constexpr\s+)?"
    r"(?:static\s+)?(" + _STRONG_ALT + r")\s*$"
)
DEF_NAME_RE = re.compile(r"^\s*(?:[A-Za-z_]\w*::)?([A-Za-z_]\w*)\s*\(")

#: `<var>.value()` and `<call>(...)..value()` receivers.
VALUE_ON_CALL_RE = re.compile(r"([A-Za-z_]\w*)\s*\([^()]*\)\s*\.\s*value\s*\(\s*\)")
VALUE_ON_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*\.\s*value\s*\(\s*\)")

#: The optional MELLOW_* group skips capability-annotation macros
#: (src/sim/sync.hh): `class MELLOW_CAPABILITY("mutex") Mutex`.
CLASS_RE = re.compile(
    r"^\s*(?:class|struct)\s+"
    r"(?:MELLOW_\w+\s*(?:\([^)]*\)\s*)?)?([A-Za-z_]\w*)")

CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
CALL_KEYWORDS = frozenset(
    """if for while switch return sizeof alignof decltype noexcept
    static_cast dynamic_cast reinterpret_cast const_cast static_assert
    catch new delete defined assert""".split()
)

#: Banned-API patterns for the determinism rule: (regex, label).
BANNED_PATTERNS = [
    (re.compile(r"\bstd::chrono::(?:system_clock|steady_clock|"
                r"high_resolution_clock)\b"), "wall clock"),
    (re.compile(r"\b(?:gettimeofday|clock_gettime)\s*\("), "wall clock"),
    (re.compile(r"(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0|&)"), "wall clock"),
    (re.compile(r"(?<![\w:.>])s?rand\s*\("), "raw RNG"),
    (re.compile(r"\bstd::random_device\b"), "raw RNG"),
    (re.compile(r"\bstd::mt19937(?:_64)?\b"), "raw RNG"),
    (re.compile(r"\bstd::(?:cout|cerr|clog)\b"), "console I/O"),
    (re.compile(r"(?<![\w:.>])(?:printf|fprintf|puts|fputs)\s*\("), "console I/O"),
    (re.compile(r"(?<![\w:.>])(?:fopen|fwrite|fread)\s*\("), "file I/O"),
    (re.compile(r"\bstd::[io]f?stream\b"), "file I/O"),
    (re.compile(r"\bstd::fstream\b"), "file I/O"),
    (re.compile(r"\bgetenv\s*\("), "environment read"),
]

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s+([A-Za-z_]\w*)"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*?:\s*([A-Za-z_][\w.\->]*)\s*\)")

SCHEDULE_RE = re.compile(r"\b(?:schedule|scheduleIn)\s*\(")


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Blank out comments, string and char literals, preserving line
    structure and column positions (replaced with spaces)."""
    out: list[str] = []
    in_block = False
    for line in lines:
        buf = []
        i, n = 0, len(line)
        while i < n:
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if in_block:
                if ch == "*" and nxt == "/":
                    in_block = False
                    buf.append("  ")
                    i += 2
                else:
                    buf.append(" ")
                    i += 1
            elif ch == "/" and nxt == "/":
                buf.append(" " * (n - i))
                break
            elif ch == "/" and nxt == "*":
                in_block = True
                buf.append("  ")
                i += 2
            elif ch in "\"'":
                quote = ch
                buf.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        buf.append("  ")
                        i += 2
                        continue
                    if line[i] == quote:
                        buf.append(quote)
                        i += 1
                        break
                    buf.append(" ")
                    i += 1
            else:
                buf.append(ch)
                i += 1
        out.append("".join(buf))
    return out


def _matching_brace(clean: list[str], line_idx: int, col: int) -> int:
    """0-based line index of the '}' matching the '{' at (line_idx, col)."""
    depth = 0
    for i in range(line_idx, len(clean)):
        start = col if i == line_idx else 0
        for ch in clean[i][start:]:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth == 0:
                    return i
        col = 0
    return len(clean) - 1


def _find_body_open(clean: list[str], start: int, limit: int = 20):
    """First '{' from line @p start that is not preceded by a ';' ending
    the statement. Returns (line_idx, col) or None."""
    for i in range(start, min(len(clean), start + limit)):
        line = clean[i]
        brace = line.find("{")
        semi = line.find(";")
        if brace >= 0 and (semi < 0 or brace < semi):
            return i, brace
        if semi >= 0:
            return None
    return None


def extract_functions(path: str, clean: list[str]) -> list[FunctionDef]:
    """Function definitions with body line ranges.

    Handles the repository style: out-of-line definitions with the
    (possibly qualified) name at column 0, and in-class inline
    definitions tracked through a class-name stack.
    """
    funcs: list[FunctionDef] = []
    # (class_name, close_line) for in-class method qualification.
    class_stack: list[tuple[str, int]] = []
    consumed_until = -1  # skip lines inside an already-extracted body

    i = 0
    n = len(clean)
    while i < n:
        while class_stack and i > class_stack[-1][1]:
            class_stack.pop()

        line = clean[i]

        cls = CLASS_RE.match(line)
        if cls and ";" not in line:
            open_pos = _find_body_open(clean, i)
            if open_pos is not None:
                close = _matching_brace(clean, open_pos[0], open_pos[1])
                class_stack.append((cls.group(1), close))
                i = open_pos[0] + 1
                continue

        if i <= consumed_until:
            i += 1
            continue

        m = DEF_NAME_RE.match(line)
        is_col0 = bool(m) and not line[:1].isspace()
        in_class = bool(class_stack)
        if m and (is_col0 or in_class):
            name = m.group(1)
            if name in CALL_KEYWORDS or re.match(
                    r"^\s*(?:if|for|while|switch|return)\b", line):
                i += 1
                continue
            open_pos = _find_body_open(clean, i)
            if open_pos is None:
                i += 1
                continue
            close = _matching_brace(clean, open_pos[0], open_pos[1])
            qual = re.match(r"^\s*([A-Za-z_]\w*)::", line)
            if qual:
                qname = f"{qual.group(1)}::{name}"
            elif in_class:
                qname = f"{class_stack[-1][0]}::{name}"
            else:
                qname = name
            funcs.append(FunctionDef(
                name=qname, file=path,
                start=open_pos[0] + 1, end=close + 1))
            consumed_until = close
            i += 1
            continue

        i += 1

    return funcs


def _populate_function_facts(func: FunctionDef, clean: list[str],
                             unordered_names: set[str]) -> None:
    for li in range(func.start - 1, func.end):
        text = clean[li]
        for call in CALL_RE.finditer(text):
            callee = call.group(1)
            if callee not in CALL_KEYWORDS:
                func.calls.append((callee, li + 1))
        for pattern, label in BANNED_PATTERNS:
            for hit in pattern.finditer(text):
                func.banned.append((hit.group(0).strip(), li + 1, label))
        for rf in RANGE_FOR_RE.finditer(text):
            container = rf.group(1).split(".")[-1].split(">")[-1]
            if container in unordered_names:
                func.unordered_iters.append((li + 1, container))


def _extract_schedule_lambdas(path: str, clean: list[str],
                              unordered_names: set[str]
                              ) -> list[FunctionDef]:
    """Synthetic root functions for lambdas passed to
    EventQueue::schedule / scheduleIn."""
    roots: list[FunctionDef] = []
    for i, line in enumerate(clean):
        if not SCHEDULE_RE.search(line):
            continue
        # Find the lambda's '[' then its body '{' within a few lines.
        for j in range(i, min(len(clean), i + 4)):
            col = clean[j].find("[", clean[j].find("(") + 1 if j == i else 0)
            if col < 0:
                continue
            open_pos = _find_body_open(clean, j)
            if open_pos is None:
                break
            close = _matching_brace(clean, open_pos[0], open_pos[1])
            root = FunctionDef(
                name=f"<lambda@{path}:{i + 1}>", file=path,
                start=open_pos[0] + 1, end=close + 1,
                is_schedule_root=True)
            _populate_function_facts(root, clean, unordered_names)
            roots.append(root)
            break
    return roots


def build_project(files: dict[str, list[str]]) -> Project:
    """Lower the given {path: lines} tree into the Project IR."""
    project = Project(files=files)
    cleaned = {p: strip_comments_and_strings(ls) for p, ls in files.items()}

    # --- Project-wide maps -------------------------------------------
    decl_types: dict[str, set[str]] = {}
    ret_types: dict[str, set[str]] = {}
    unordered_names: set[str] = set()
    for path, clean in cleaned.items():
        for li, line in enumerate(clean):
            for m in DECL_RE.finditer(line):
                decl_types.setdefault(m.group(2), set()).add(m.group(1))
            for m in RET_ONE_LINE_RE.finditer(line):
                ret_types.setdefault(m.group(2), set()).add(m.group(1))
            if RET_TYPE_LINE_RE.match(line) and li + 1 < len(clean):
                nm = DEF_NAME_RE.match(clean[li + 1])
                if nm:
                    ty = RET_TYPE_LINE_RE.match(line).group(1)
                    ret_types.setdefault(nm.group(1), set()).add(ty)
            for m in UNORDERED_DECL_RE.finditer(line):
                unordered_names.add(m.group(1))

    # --- Per-file facts ----------------------------------------------
    for path, lines in files.items():
        clean = cleaned[path]

        project.includes[path] = [
            (li + 1, m.group(1))
            for li, line in enumerate(lines)
            if (m := INCLUDE_RE.match(line))
        ]

        funcs = extract_functions(path, clean)
        for func in funcs:
            _populate_function_facts(func, clean, unordered_names)
        funcs.extend(_extract_schedule_lambdas(path, clean, unordered_names))
        project.functions.extend(funcs)

        def enclosing(line_no: int) -> str:
            best = ""
            best_span = None
            for f in funcs:
                if f.start <= line_no <= f.end and not f.is_schedule_root:
                    span = f.end - f.start
                    if best_span is None or span < best_span:
                        best, best_span = f.name, span
            return best

        for li, line in enumerate(clean):
            spans = []
            for m in VALUE_ON_CALL_RE.finditer(line):
                spans.append(m.span())
                types = ret_types.get(m.group(1), set())
                if len(types) == 1:
                    project.value_calls.append(ValueCall(
                        file=path, line=li + 1,
                        recv_type=next(iter(types)),
                        enclosing=enclosing(li + 1)))
            for m in VALUE_ON_NAME_RE.finditer(line):
                if any(s <= m.start() < e for s, e in spans):
                    continue  # already handled as a call receiver
                types = decl_types.get(m.group(1), set())
                if len(types) == 1:
                    project.value_calls.append(ValueCall(
                        file=path, line=li + 1,
                        recv_type=next(iter(types)),
                        enclosing=enclosing(li + 1)))

    return project
