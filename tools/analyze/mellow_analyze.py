#!/usr/bin/env python3
"""mellow-analyze — semantic static analysis for mellowsim.

Eleven rule families the regex lint (tools/mellow_lint.py) cannot
express:

  value-escape      .value() on a strong type outside whitelisted
                    conversion sites (tools/analyze/whitelists.toml)
  layering          include-graph / cross-module symbol references
                    outside the layer manifest (tools/analyze/layers.toml)
  nondet-handler    wall clocks, raw RNG, unordered iteration or I/O
                    reachable from an EventQueue::schedule callback
  request-lifetime  a MemRequest read after std::move() into a queue

plus the shard-confinement family driven by
tools/analyze/confinement.toml (the concurrency model of DESIGN.md
§11, which the sharded per-channel runtime of system/sharded.cc is
written against — DESIGN.md §15):

  confinement-global  mutable static/namespace-scope state that is not
                      atomic, a sync.hh type, thread_local or const
  confinement-shard   a declared mutator of shard-owned state called
                      from a module outside the declared owners
  confinement-port    a shard's internal types referenced from a
                      consumer module instead of going through the
                      declared message-port seam headers

and the parallel-protocol family driven by
tools/analyze/protocol.toml (the sharded-kernel communication
contract of DESIGN.md §13):

  lock-order        a cycle in the whole-program lock-acquisition
                    graph built from LockGuard / MELLOW_REQUIRES
                    sites (a static deadlock)
  atomic-order      raw std::atomic / std::memory_order spellings
                    outside src/sim/sync.hh, or a RelaxedCounter
                    read feeding control flow instead of stats
  handler-blocking  a mutex acquisition or blocking rendezvous
                    reachable from an EventQueue::schedule handler
  port-protocol     a ShardPort send whose time argument is not a
                    SendTime minted via `now + Lookahead`, or a
                    SendTime constructed outside the mint

Findings honour the shared `// mlint: allow(<rule>): <reason>`
suppression syntax (tools/analyze/suppress.py).

Backends: `--backend clang` uses libclang over the exported
compile_commands.json (CI); `--backend textual` is a pure-Python
fallback needing nothing beyond the standard library; `auto` (default)
tries clang and falls back with a warning.

Exit codes: 0 clean, 1 findings (or self-test failure), 2 environment
error (requested backend unavailable, bad manifest, ...).
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tomllib

from model import ALL_RULES, Finding
from rules import RULE_CHECKERS
from suppress import parse_suppressions

REPO_ROOT = os.path.realpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
ANALYZE_DIR = os.path.dirname(os.path.abspath(__file__))

EXPECT_RE = re.compile(r"//\s*analyze-expect:\s*([a-z-]+|none)")


def _collect_files(root: str, paths: list[str]) -> dict[str, list[str]]:
    """{root-relative path: lines} for every .cc/.hh under @p paths
    (default: src/)."""
    files: dict[str, list[str]] = {}
    targets = paths or ["src"]
    for target in targets:
        full = os.path.join(root, target)
        if os.path.isfile(full):
            candidates = [full]
        else:
            candidates = []
            for dirpath, _dirs, names in os.walk(full):
                for name in sorted(names):
                    if name.endswith((".cc", ".hh")):
                        candidates.append(os.path.join(dirpath, name))
        for cand in sorted(candidates):
            rel = os.path.relpath(cand, root).replace(os.sep, "/")
            with open(cand, encoding="utf-8") as fh:
                files[rel] = fh.read().splitlines()
    return files


def _load_toml(path: str, what: str) -> dict:
    try:
        with open(path, "rb") as fh:
            return tomllib.load(fh)
    except (OSError, tomllib.TOMLDecodeError) as exc:
        print(f"mellow-analyze: cannot load {what} manifest {path}: {exc}",
              file=sys.stderr)
        sys.exit(2)


def _build_project(backend: str, files: dict[str, list[str]],
                   build_dir: str | None, root: str):
    """Returns (project, backend_used)."""
    if backend in ("auto", "clang"):
        try:
            import frontend_clang
            return (frontend_clang.build_project(files, build_dir, root),
                    "clang")
        except ImportError as exc:
            if backend == "clang":
                print(f"mellow-analyze: clang backend unavailable: {exc}\n"
                      f"  (pip package `libclang`, see "
                      f"tools/analyze/requirements.txt)", file=sys.stderr)
                sys.exit(2)
            print("mellow-analyze: warning: libclang not available; "
                  "falling back to the textual backend "
                  f"({exc})", file=sys.stderr)
    import frontend_textual
    return frontend_textual.build_project(files), "textual"


def _run_rules(project, layers: dict, whitelists: dict,
               confinement: dict, protocol: dict,
               enabled: list[str]) -> list[Finding]:
    findings: list[Finding] = []
    for rule in enabled:
        findings.extend(
            RULE_CHECKERS[rule](project, layers, whitelists, confinement,
                                protocol))

    # Drop suppressed findings.
    sup_cache = {}
    kept = []
    for f in findings:
        lines = project.files.get(f.file)
        if lines is not None:
            if f.file not in sup_cache:
                sup_cache[f.file] = parse_suppressions(lines)
            if sup_cache[f.file].allows(f.rule, f.line):
                continue
        kept.append(f)
    kept.sort(key=lambda f: (f.file, f.line, f.rule, f.message))
    # De-duplicate identical findings (both frontends may attribute one
    # site to several overlapping facts).
    seen = set()
    unique = []
    for f in kept:
        key = (f.file, f.line, f.rule, f.message)
        if key not in seen:
            seen.add(key)
            unique.append(f)
    return unique


def _self_test(fixture_root: str, files: dict[str, list[str]],
               findings: list[Finding], enabled: list[str],
               only_rules: set[str]) -> int:
    """Check `// analyze-expect:` directives; returns the exit code."""
    by_file: dict[str, list[Finding]] = {}
    for f in findings:
        by_file.setdefault(f.file, []).append(f)

    failures = []
    checked = 0
    for path, lines in sorted(files.items()):
        if not path.endswith(".cc"):
            continue
        m = EXPECT_RE.search(lines[0]) if lines else None
        if not m:
            continue
        expect = m.group(1)
        if expect != "none" and expect not in ALL_RULES:
            failures.append(f"{path}: unknown analyze-expect rule "
                            f"'{expect}'")
            continue
        if only_rules and expect != "none" and expect not in only_rules:
            continue  # per-rule run: fixture out of scope
        checked += 1
        got = by_file.get(path, [])
        if expect == "none":
            if got:
                listing = "; ".join(
                    f"{g.line}:[{g.rule}]" for g in got)
                failures.append(
                    f"{path}: expected no findings, got {listing}")
        else:
            if not any(g.rule == expect for g in got):
                failures.append(
                    f"{path}: expected a [{expect}] finding, got "
                    + ("; ".join(f"{g.line}:[{g.rule}]" for g in got)
                       if got else "none"))
            stray = [g for g in got if g.rule != expect]
            if stray:
                failures.append(
                    f"{path}: unexpected findings: " + "; ".join(
                        f"{g.line}:[{g.rule}]" for g in stray))

    if not checked:
        print(f"mellow-analyze: self-test found no fixtures under "
              f"{fixture_root}", file=sys.stderr)
        return 2
    for failure in failures:
        print(f"self-test FAIL: {failure}")
    print(f"mellow-analyze self-test: {checked - len(set(f.split(':')[0] for f in failures))}"
          f"/{checked} fixtures ok "
          f"(rules: {', '.join(enabled) if enabled else 'none'})")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mellow-analyze",
        description="semantic static analysis for mellowsim")
    parser.add_argument("paths", nargs="*",
                        help="files/directories to analyze "
                             "(default: src/)")
    parser.add_argument("--backend", choices=("auto", "clang", "textual"),
                        default="auto")
    parser.add_argument("-p", "--build-dir", default=None,
                        help="build dir with compile_commands.json "
                             "(clang backend)")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="tree root paths are relative to")
    parser.add_argument("--layers",
                        default=os.path.join(ANALYZE_DIR, "layers.toml"))
    parser.add_argument("--whitelists",
                        default=os.path.join(ANALYZE_DIR, "whitelists.toml"))
    parser.add_argument("--confinement", default=None,
                        help="confinement manifest (default: a "
                             "confinement.toml in the analyzed tree "
                             "root if present, else "
                             "tools/analyze/confinement.toml)")
    parser.add_argument("--protocol", default=None,
                        help="parallel-protocol manifest (default: a "
                             "protocol.toml in the analyzed tree root "
                             "if present, else "
                             "tools/analyze/protocol.toml)")
    parser.add_argument("--sarif", metavar="OUT",
                        help="also write SARIF 2.1.0 to OUT")
    parser.add_argument("--only-rule", action="append", default=[],
                        metavar="RULE", choices=ALL_RULES,
                        help="run only this rule (repeatable)")
    parser.add_argument("--disable", action="append", default=[],
                        metavar="RULE", choices=ALL_RULES,
                        help="disable this rule (repeatable)")
    parser.add_argument("--self-test", metavar="DIR",
                        help="run over the fixture tree DIR and check "
                             "its // analyze-expect: directives")
    args = parser.parse_args(argv)

    enabled = [r for r in ALL_RULES
               if (not args.only_rule or r in args.only_rule)
               and r not in args.disable]

    root = os.path.realpath(args.self_test if args.self_test else args.root)
    files = _collect_files(root, [] if args.self_test else args.paths)
    if not files:
        print("mellow-analyze: no input files", file=sys.stderr)
        return 2

    layers = _load_toml(args.layers, "layer")
    whitelists = _load_toml(args.whitelists, "whitelist")
    # A tree-local confinement.toml (e.g. in the fixture tree) wins
    # over the repo manifest so fixture trees stay self-describing.
    confinement_path = args.confinement
    if confinement_path is None:
        tree_local = os.path.join(root, "confinement.toml")
        confinement_path = (tree_local if os.path.exists(tree_local)
                            else os.path.join(ANALYZE_DIR,
                                              "confinement.toml"))
    confinement = _load_toml(confinement_path, "confinement")
    # Same tree-local override for the parallel-protocol manifest.
    protocol_path = args.protocol
    if protocol_path is None:
        tree_local = os.path.join(root, "protocol.toml")
        protocol_path = (tree_local if os.path.exists(tree_local)
                         else os.path.join(ANALYZE_DIR, "protocol.toml"))
    protocol = _load_toml(protocol_path, "protocol")

    # Self-test always runs the textual backend: the fixtures gate the
    # shared rule logic and must work without libclang.
    backend = "textual" if args.self_test else args.backend
    project, backend_used = _build_project(
        backend, files, args.build_dir, root)

    findings = _run_rules(project, layers, whitelists, confinement,
                          protocol, enabled)

    if args.sarif:
        from sarif import to_sarif
        with open(args.sarif, "w", encoding="utf-8") as fh:
            fh.write(to_sarif(findings))

    if args.self_test:
        return _self_test(root, files, findings, enabled,
                          set(args.only_rule))

    for f in findings:
        print(f"{f.file}:{f.line}: [{f.rule}] {f.message}")
    summary = (f"mellow-analyze ({backend_used} backend): "
               f"{len(findings)} finding(s) across {len(files)} files, "
               f"rules: {', '.join(enabled)}")
    print(summary, file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
