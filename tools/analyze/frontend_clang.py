"""libclang frontend for mellow-analyze.

Lowers the tree into the same Project IR as frontend_textual.py, but
with semantic facts from clang.cindex driven by the exported
compile_commands.json: `.value()` receivers are resolved through the
real type system (aliases like BankId unwrap to StrongOrdinal<...>),
the call graph uses referenced declarations instead of simple-name
matching, and lambdas are found as AST nodes under schedule calls.

Import of this module raises ImportError when the clang bindings (pip
package `libclang`, pinned in tools/analyze/requirements.txt) are not
available; mellow_analyze.py catches that and falls back to the
textual backend with a warning.
"""

from __future__ import annotations

import os

from clang import cindex  # noqa: F401  (ImportError => no clang backend)
from clang.cindex import CursorKind, TranslationUnit

from frontend_textual import (
    BANNED_PATTERNS,
    INCLUDE_RE,
    RANGE_FOR_RE,
    UNORDERED_DECL_RE,
    strip_comments_and_strings,
)
from model import STRONG_CLASS_NAMES, FunctionDef, Project, ValueCall

_FUNC_KINDS = (
    CursorKind.FUNCTION_DECL,
    CursorKind.CXX_METHOD,
    CursorKind.CONSTRUCTOR,
    CursorKind.DESTRUCTOR,
    CursorKind.FUNCTION_TEMPLATE,
)

_SCHEDULE_NAMES = ("schedule", "scheduleIn")


def _qualified_name(cursor) -> str:
    parts = []
    c = cursor
    while c is not None and c.kind != CursorKind.TRANSLATION_UNIT:
        if c.spelling:
            parts.append(c.spelling)
        c = c.semantic_parent
    return "::".join(reversed(parts))


def _strong_type_name(type_obj) -> str | None:
    """Pretty strong-type name for @p type_obj, or None if it is not
    one of the strong classes (after alias/canonical resolution)."""
    for t in (type_obj, type_obj.get_canonical()):
        spelling = t.spelling
        for cls in STRONG_CLASS_NAMES:
            if cls in spelling:
                # Prefer the alias spelling (BankId) over the
                # canonical template spelling when available.
                alias = type_obj.spelling.split("::")[-1]
                return alias if "<" not in alias else cls
    return None


def _rel(path: str, root: str) -> str:
    try:
        return os.path.relpath(path, root)
    except ValueError:
        return path


class _TUWalker:
    def __init__(self, project: Project, root: str,
                 unordered_names: set[str]):
        self.project = project
        self.root = root
        self.unordered = unordered_names
        self.seen_funcs: set[tuple[str, int, str]] = set()
        self.seen_values: set[tuple[str, int]] = set()

    def walk(self, tu: TranslationUnit, main_file: str) -> None:
        self._visit(tu.cursor, None, main_file)

    # -- helpers ------------------------------------------------------

    def _in_tree(self, cursor) -> str | None:
        loc = cursor.location
        if loc.file is None:
            return None
        path = _rel(os.path.realpath(loc.file.name),
                    self.root)
        if path.startswith(".."):
            return None
        return path

    def _lex_facts(self, func: FunctionDef) -> None:
        """Banned APIs / unordered iteration scanned lexically over the
        body range (robust against macro-heavy bodies)."""
        lines = self.project.files.get(func.file)
        if not lines:
            return
        clean = strip_comments_and_strings(lines)
        for li in range(func.start - 1, min(func.end, len(clean))):
            text = clean[li]
            for pattern, label in BANNED_PATTERNS:
                for hit in pattern.finditer(text):
                    func.banned.append((hit.group(0).strip(), li + 1, label))
            for rf in RANGE_FOR_RE.finditer(text):
                container = rf.group(1).split(".")[-1].split(">")[-1]
                if container in self.unordered:
                    func.unordered_iters.append((li + 1, container))

    # -- traversal ----------------------------------------------------

    def _visit(self, cursor, current_func, main_file: str) -> None:
        for child in cursor.get_children():
            try:
                self._visit_one(child, current_func, main_file)
            except Exception:  # defensive: skip cursors clang chokes on
                self._visit(child, current_func, main_file)

    def _visit_one(self, cursor, current_func, main_file: str) -> None:
        path = self._in_tree(cursor)
        kind = cursor.kind

        if kind in _FUNC_KINDS and cursor.is_definition() and path:
            extent = cursor.extent
            name = _qualified_name(cursor)
            key = (path, extent.start.line, name)
            if key in self.seen_funcs:
                return
            self.seen_funcs.add(key)
            func = FunctionDef(
                name=name, file=path,
                start=extent.start.line, end=extent.end.line)
            self.project.functions.append(func)
            self._lex_facts(func)
            self._visit(cursor, func, main_file)
            return

        if kind == CursorKind.CALL_EXPR and path:
            spelling = cursor.spelling
            if spelling == "value":
                ref = cursor.referenced
                parent = ref.semantic_parent if ref is not None else None
                if parent is not None and any(
                        parent.spelling.startswith(c)
                        for c in STRONG_CLASS_NAMES):
                    args = list(cursor.get_children())
                    recv = None
                    if args:
                        recv = _strong_type_name(
                            args[0].type) or parent.spelling
                    vkey = (path, cursor.location.line)
                    if vkey not in self.seen_values:
                        self.seen_values.add(vkey)
                        self.project.value_calls.append(ValueCall(
                            file=path, line=cursor.location.line,
                            recv_type=recv or parent.spelling,
                            enclosing=(current_func.name
                                       if current_func else "")))
            if current_func is not None and spelling:
                current_func.calls.append(
                    (spelling, cursor.location.line))
            if spelling in _SCHEDULE_NAMES:
                self._roots_under(cursor, path)

        self._visit(cursor, current_func, main_file)

    def _roots_under(self, call_cursor, path: str) -> None:
        """Register every lambda argument of a schedule call as a
        synthetic handler root."""
        def lambdas(c):
            for child in c.get_children():
                if child.kind == CursorKind.LAMBDA_EXPR:
                    yield child
                else:
                    yield from lambdas(child)

        for lam in lambdas(call_cursor):
            extent = lam.extent
            key = (path, extent.start.line, "<lambda>")
            if key in self.seen_funcs:
                continue
            self.seen_funcs.add(key)
            root = FunctionDef(
                name=f"<lambda@{path}:{extent.start.line}>", file=path,
                start=extent.start.line, end=extent.end.line,
                is_schedule_root=True)
            self.project.functions.append(root)
            self._lex_facts(root)
            self._visit(lam, root, path)


def build_project(files: dict[str, list[str]], build_dir: str,
                  repo_root: str) -> Project:
    """Lower @p files using libclang + compile_commands.json from
    @p build_dir. Headers are analyzed through the TUs that include
    them; includes come from the same lexical scan as the textual
    backend (the rule needs as-written spellings, not resolved paths).
    """
    project = Project(files=files)

    unordered_names: set[str] = set()
    for path, lines in files.items():
        clean = strip_comments_and_strings(lines)
        for line in clean:
            for m in UNORDERED_DECL_RE.finditer(line):
                unordered_names.add(m.group(1))
        project.includes[path] = [
            (li + 1, m.group(1))
            for li, line in enumerate(lines)
            if (m := INCLUDE_RE.match(line))
        ]

    index = cindex.Index.create()
    walker = _TUWalker(project, repo_root, unordered_names)
    wanted_cc = {os.path.realpath(os.path.join(repo_root, p))
                 for p in files if p.endswith(".cc")}

    comp_db = None
    if build_dir and os.path.exists(
            os.path.join(build_dir, "compile_commands.json")):
        comp_db = cindex.CompilationDatabase.fromDirectory(build_dir)
    if comp_db is None:
        # No compilation database: parse with default flags (enough
        # for the fixture trees and for a quick local run).
        default_args = ["-xc++", "-std=c++20",
                        "-I", os.path.join(repo_root, "src")]
        for src in sorted(wanted_cc):
            tu = index.parse(src, args=default_args)
            walker.walk(tu, src)
        return project

    for cmd in comp_db.getAllCompileCommands():
        src = os.path.realpath(
            os.path.join(cmd.directory, cmd.filename))
        if src not in wanted_cc:
            continue
        args = [a for a in cmd.arguments][1:]  # drop compiler path
        # Drop -o/-c and the source operand; keep -I/-D/-std etc.
        clang_args = []
        skip = False
        for a in args:
            if skip:
                skip = False
                continue
            if a in ("-o", "-c"):
                skip = a == "-o"
                continue
            if os.path.realpath(os.path.join(cmd.directory, a)) == src:
                continue
            clang_args.append(a)
        tu = index.parse(src, args=clang_args)
        walker.walk(tu, src)

    return project
