#!/usr/bin/env python3
"""Run the perf harness and emit BENCH_perf.json.

Builds the release-lto preset (Release + IPO, allocation counter on,
runtime checks off), runs bench/micro_kernel for the kernel-level
metrics, then times a reduced fig11_policy_lifetime slice as the
system-level figure.

BENCH_perf.json is a trajectory, not a snapshot (schema_version 2):
each invocation APPENDS a run keyed by git SHA and date to the `runs`
list, so regressions show up as a bend in the curve rather than a
flaky gate. Re-running on the same commit replaces that commit's
entry instead of duplicating it, and a legacy single-run file
(schema_version 1) is migrated in place as the trajectory's first
point.

Usage:
  tools/perf_report.py [--output BENCH_perf.json] [--skip-build]
                       [--events N] [--instrs N] [--fig11-instrs N]

Scaling knobs mirror the benchmarks' own environment variables; the
defaults keep a full run under ~2 minutes on one core.
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BUILD_DIR = os.path.join(REPO_ROOT, "build-lto")


def run(cmd, **kwargs):
    print("+ " + " ".join(cmd), flush=True)
    return subprocess.run(cmd, check=True, **kwargs)


def build(jobs):
    if not os.path.exists(os.path.join(BUILD_DIR, "CMakeCache.txt")):
        run(["cmake", "--preset", "release-lto"], cwd=REPO_ROOT)
    run(["cmake", "--build", BUILD_DIR, "-j", str(jobs)], cwd=REPO_ROOT)


def parse_metrics(text):
    """Parse `perf.<group>.<name> <value>` lines into a nested dict."""
    out = {}
    for line in text.splitlines():
        line = line.strip()
        if not line.startswith("perf."):
            continue
        key, _, value = line.partition(" ")
        parts = key.split(".")[1:]
        node = out
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        try:
            node[parts[-1]] = float(value)
        except ValueError:
            node[parts[-1]] = value
    return out


def run_micro_kernel(events, instrs):
    env = dict(os.environ)
    env["MELLOWSIM_PERF_EVENTS"] = str(events)
    env["MELLOWSIM_INSTRS"] = str(instrs)
    proc = run([os.path.join(BUILD_DIR, "bench", "micro_kernel")],
               env=env, capture_output=True, text=True)
    sys.stdout.write(proc.stdout)
    return parse_metrics(proc.stdout)


def run_fig11_slice(instrs):
    env = dict(os.environ)
    env["MELLOWSIM_INSTRS"] = str(instrs)
    env["MELLOWSIM_WARMUP"] = str(max(instrs // 4, 1))
    env["MELLOWSIM_JOBS"] = "1"
    binary = os.path.join(BUILD_DIR, "bench", "fig11_policy_lifetime")
    t0 = time.monotonic()
    proc = run([binary], env=env, capture_output=True, text=True)
    host_sec = time.monotonic() - t0
    lines = proc.stdout.count("\n")
    return {"instrs": instrs, "host_sec": round(host_sec, 3),
            "output_lines": lines}


def git_head_sha():
    """Current commit SHA, or None outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True)
        return proc.stdout.strip() or None
    except (OSError, subprocess.CalledProcessError):
        return None


def load_trajectory(path):
    """Existing trajectory at `path`, migrating a v1 snapshot.

    Returns the list of runs (oldest first). A schema_version 1 file
    was a single run with no provenance; it becomes the first
    trajectory point with null sha/date rather than being thrown away.
    An unreadable or foreign file starts a fresh trajectory.
    """
    try:
        with open(path) as f:
            old = json.load(f)
    except (OSError, ValueError):
        return []
    if not isinstance(old, dict) or old.get("bench") != "perf":
        return []
    if old.get("schema_version") == 2:
        runs = old.get("runs", [])
        return runs if isinstance(runs, list) else []
    # v1: one anonymous run.
    return [{
        "git_sha": None,
        "date": None,
        "host": old.get("host"),
        "config": old.get("config"),
        "metrics": old.get("metrics"),
    }]


def append_run(runs, run):
    """Append `run`, replacing any prior entry for the same commit.

    Anonymous runs (git_sha null — a v1 migration point or a run
    outside a git checkout) get the same replace-not-duplicate
    treatment: they are indistinguishable by commit, so at most one
    survives and the newest wins. Otherwise every re-run outside git
    would stack an identical-looking point onto the trajectory, and a
    legacy file that was migrated more than once would carry several
    null-sha ghosts.
    """
    sha = run.get("git_sha")
    runs = [r for r in runs if r.get("git_sha") != sha]
    runs.append(run)
    return runs


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output",
                        default=os.path.join(REPO_ROOT, "BENCH_perf.json"))
    parser.add_argument("--skip-build", action="store_true",
                        help="use the existing build-lto binaries")
    parser.add_argument("--events", type=int, default=2_000_000,
                        help="micro_kernel event count")
    parser.add_argument("--instrs", type=int, default=1_000_000,
                        help="micro_kernel system-slice instructions")
    parser.add_argument("--fig11-instrs", type=int, default=2_000_000,
                        help="fig11 slice instructions per run")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 1)
    args = parser.parse_args()

    if not args.skip_build:
        build(args.jobs)

    metrics = run_micro_kernel(args.events, args.instrs)
    metrics["fig11_slice"] = run_fig11_slice(args.fig11_instrs)

    run_entry = {
        "git_sha": git_head_sha(),
        "date": time.strftime("%Y-%m-%d", time.gmtime()),
        "host": {
            "machine": platform.machine(),
            "system": platform.system(),
            "cpus": os.cpu_count(),
        },
        "config": {
            "preset": "release-lto",
            "events": args.events,
            "instrs": args.instrs,
            "fig11_instrs": args.fig11_instrs,
        },
        "metrics": metrics,
    }

    runs = append_run(load_trajectory(args.output), run_entry)
    report = {
        "bench": "perf",
        "schema_version": 2,
        "runs": runs,
    }
    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.output} ({len(runs)} run(s) in trajectory)")


if __name__ == "__main__":
    main()
