/**
 * @file
 * End-to-end fault-injection tests: the acceptance scenario for the
 * fault-tolerance subsystem.
 *
 * A write-heavy workload thrashing a small memory with near-zero line
 * endurance drives the full escalation chain — repairs, retirements
 * through the indirection table, and eventually uncorrectable errors —
 * and the measured time-to-first-uncorrectable-error must order
 * policies the same way the paper's analytic lifetime does: slow
 * writes (Equation 2, expoFactor 2) buy measurably later failure.
 */

#include <gtest/gtest.h>

#include <vector>

#include "check/checkers.hh"
#include "check/invariant.hh"
#include "fault/fault_model.hh"
#include "system/report.hh"
#include "system/system.hh"
#include "workload/generators.hh"

using namespace mellowsim;
using namespace mellowsim::policies;

namespace
{

/**
 * Write-heavy thrashing workload: a 3 MB random footprint against the
 * 2 MB LLC produces a steady stream of dirty evictions that revisits
 * the same blocks over and over.
 */
WorkloadParams
stressParams()
{
    WorkloadParams p;
    p.name = "fault-stress";
    p.footprintBytes = 3ull * 1024 * 1024;
    p.hotBytes = 256 * 1024;
    p.coldFraction = 1.0;
    p.pattern = AccessPattern::Random;
    p.writeFraction = 0.6;
    p.meanGap = 10.0;
    return p;
}

/**
 * Small memory with a vanishing per-line endurance so faults occur
 * within a few million instructions. The variation sigma stays at its
 * default; expoFactor stays at the paper's 2.0, so a slowFactor-3
 * write inflicts 9x less wear.
 */
SystemConfig
faultConfig(const WritePolicyConfig &policy)
{
    SystemConfig cfg;
    cfg.policy = policy;
    cfg.instructions = 3'000'000;
    cfg.warmupInstructions = 500'000;
    cfg.memory.geometry.capacityBytes = 64ull * 1024 * 1024;
    cfg.memory.fault.enabled = true;
    // Median line dies on its first normal-speed write (wear 2e-7).
    cfg.memory.fault.enduranceScale = 2e-7;
    cfg.memory.fault.repairEntriesPerLine = 1;
    cfg.memory.fault.spareLinesPerBank = 4;
    return cfg;
}

SimReport
runFaultSystem(const WritePolicyConfig &policy)
{
    SystemConfig cfg = faultConfig(policy);
    System sys(cfg, makeSynthetic(stressParams(), cfg.seed));
    return sys.run();
}

} // namespace

TEST(FaultSystem, SlowWritesDelayFirstUncorrectableError)
{
    SimReport norm_r = runFaultSystem(norm());
    SimReport slow_r = runFaultSystem(slow());

    // The all-fast baseline burns through repairs and spares.
    EXPECT_GT(norm_r.permanentFaults, 0u);
    EXPECT_GT(norm_r.retiredLines, 0u);
    EXPECT_GT(norm_r.deadLines, 0u);
    ASSERT_GT(norm_r.firstUncorrectableTick, 0u);
    EXPECT_GE(norm_r.firstUncorrectableTick, norm_r.firstFaultTick);
    EXPECT_LT(norm_r.effectiveCapacityFraction, 1.0);

    // Slow writes wear 9x less per write: the first uncorrectable
    // error comes later, or never within this window.
    if (slow_r.firstUncorrectableTick != 0) {
        EXPECT_GT(slow_r.firstUncorrectableTick,
                  norm_r.firstUncorrectableTick);
    } else {
        EXPECT_LE(slow_r.deadLines, 0u);
    }
    // The analytic first-fault metric orders the same way.
    if (slow_r.firstFaultTick != 0)
        EXPECT_GT(slow_r.firstFaultTick, norm_r.firstFaultTick);
}

TEST(FaultSystem, MellowPolicyAlsoDelaysFirstUncorrectableError)
{
    SimReport norm_r = runFaultSystem(norm());
    SimReport mellow_r = runFaultSystem(beMellow().withSC());

    ASSERT_GT(norm_r.firstUncorrectableTick, 0u);
    if (mellow_r.firstUncorrectableTick != 0) {
        EXPECT_GT(mellow_r.firstUncorrectableTick,
                  norm_r.firstUncorrectableTick);
    }
}

TEST(FaultSystem, RetiredLinesAreTransparentlyRemapped)
{
    SystemConfig cfg = faultConfig(norm());
    System sys(cfg, makeSynthetic(stressParams(), cfg.seed));
    SimReport r = sys.run();
    ASSERT_GT(r.retiredLines, 0u);

    const FaultModel *fm = sys.controller().faultModel();
    ASSERT_NE(fm, nullptr);
    // Not a single write reached a retired line: all traffic to them
    // was redirected through the indirection table at issue time.
    EXPECT_EQ(fm->writesToRetiredLines(), 0u);
    EXPECT_TRUE(fm->remapTableValid());
    EXPECT_EQ(fm->remapEntries(), fm->stats().retiredLines);

    // Demand writes were all completed despite the failures: graceful
    // degradation, no lost requests.
    EXPECT_GT(r.writebacksToMem, 0u);
}

TEST(FaultSystem, InvariantCheckersPassOnFaultRun)
{
    // The checkers are plain functions of captured snapshots, so this
    // holds in every build mode (MELLOWSIM_CHECKS only gates the
    // periodic in-simulation wiring).
    SystemConfig cfg = faultConfig(norm());
    cfg.memory.fault.transientFailProb = 0.05;
    System sys(cfg, makeSynthetic(stressParams(), cfg.seed));
    SimReport r = sys.run();

    EXPECT_GT(r.writeRetries, 0u);
    EXPECT_GT(r.transientWriteFailures, 0u);

    const MemoryController &ctrl = sys.controller();
    std::vector<Violation> out;

    ViolationSink fault_sink("fault", 0, out);
    FaultChecker::evaluate(FaultChecker::capture(ctrl), fault_sink);

    ViolationSink req_sink("request-conservation", 0, out);
    RequestConservationChecker::evaluate(
        RequestConservationChecker::capture(ctrl), req_sink);

    ViolationSink wear_sink("wear-conservation", 0, out);
    WearConservationChecker::evaluate(
        WearConservationChecker::capture(ctrl), wear_sink);

    ViolationSink energy_sink("energy-cross-check", 0, out);
    EnergyCrossChecker::evaluate(EnergyCrossChecker::capture(ctrl),
                                 energy_sink);

    for (const Violation &v : out)
        ADD_FAILURE() << v.checker << ": " << v.message;
}

TEST(FaultSystem, FaultOutcomesAreDeterministic)
{
    SimReport a = runFaultSystem(norm());
    SimReport b = runFaultSystem(norm());
    EXPECT_EQ(a.firstFaultTick, b.firstFaultTick);
    EXPECT_EQ(a.firstUncorrectableTick, b.firstUncorrectableTick);
    EXPECT_EQ(a.permanentFaults, b.permanentFaults);
    EXPECT_EQ(a.faultRepairsUsed, b.faultRepairsUsed);
    EXPECT_EQ(a.retiredLines, b.retiredLines);
    EXPECT_EQ(a.deadLines, b.deadLines);
    EXPECT_EQ(a.writeRetries, b.writeRetries);
    EXPECT_DOUBLE_EQ(a.effectiveCapacityFraction,
                     b.effectiveCapacityFraction);
}

TEST(FaultSystem, FaultLayerOffChangesNothing)
{
    SystemConfig cfg = faultConfig(norm());
    cfg.memory.fault.enabled = false;
    System sys(cfg, makeSynthetic(stressParams(), cfg.seed));
    SimReport r = sys.run();
    EXPECT_EQ(sys.controller().faultModel(), nullptr);
    EXPECT_EQ(r.permanentFaults, 0u);
    EXPECT_EQ(r.writeRetries, 0u);
    EXPECT_EQ(r.firstUncorrectableTick, 0u);
    EXPECT_DOUBLE_EQ(r.effectiveCapacityFraction, 1.0);
}
