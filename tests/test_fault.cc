/** @file Unit tests of the fault-injection model (src/fault/). */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fault/fault_model.hh"
#include "sim/logging.hh"

using namespace mellowsim;

namespace
{

/** Tiny geometry with sigma 0 so fault-path tests are exact. */
FaultConfig
smallConfig()
{
    FaultConfig f;
    f.enabled = true;
    f.numBanks = 2;
    f.blocksPerBank = 16;
    f.spareLinesPerBank = 2;
    f.repairEntriesPerLine = 1;
    f.enduranceSigma = 0.0;
    f.enduranceScale = 1.0;
    f.transientFailProb = 0.0;
    return f;
}

} // namespace

TEST(FaultModel, ValidatesConfig)
{
    FaultConfig f = smallConfig();
    f.enduranceScale = 0.0;
    EXPECT_THROW(FaultModel{f}, FatalError);

    f = smallConfig();
    f.enduranceSigma = -0.5;
    EXPECT_THROW(FaultModel{f}, FatalError);

    f = smallConfig();
    f.transientFailProb = 1.0;
    EXPECT_THROW(FaultModel{f}, FatalError);

    f = smallConfig();
    f.retrySlowFactor = 0.5;
    EXPECT_THROW(FaultModel{f}, FatalError);
}

TEST(FaultModel, SigmaZeroGivesExactScale)
{
    FaultConfig f = smallConfig();
    f.enduranceScale = 0.125;
    FaultModel fm(f);
    for (std::uint64_t line = 0; line < f.blocksPerBank; ++line)
        EXPECT_DOUBLE_EQ(fm.lineEndurance(BankId(0), DeviceAddr(line)), 0.125);
}

TEST(FaultModel, EnduranceDrawsAreDeterministic)
{
    FaultConfig f = smallConfig();
    f.enduranceSigma = 0.5;
    FaultModel a(f), b(f);
    for (std::uint64_t line = 0; line < f.blocksPerBank; ++line) {
        EXPECT_DOUBLE_EQ(a.lineEndurance(BankId(0), DeviceAddr(line)),
                         b.lineEndurance(BankId(0), DeviceAddr(line)));
        EXPECT_DOUBLE_EQ(a.lineEndurance(BankId(1), DeviceAddr(line)),
                         b.lineEndurance(BankId(1), DeviceAddr(line)));
    }

    f.seed ^= 0x1234;
    FaultModel c(f);
    bool any_different = false;
    for (std::uint64_t line = 0; line < f.blocksPerBank; ++line) {
        if (a.lineEndurance(BankId(0), DeviceAddr(line)) != c.lineEndurance(BankId(0), DeviceAddr(line)))
            any_different = true;
    }
    EXPECT_TRUE(any_different);
}

TEST(FaultModel, LognormalMedianMatchesScale)
{
    FaultConfig f;
    f.numBanks = 1;
    f.blocksPerBank = 8192;
    f.enduranceSigma = 1.0;
    f.enduranceScale = 2.0;
    FaultModel fm(f);

    std::vector<double> draws;
    for (std::uint64_t line = 0; line < 4001; ++line) {
        double e = fm.lineEndurance(BankId(0), DeviceAddr(line));
        EXPECT_GT(e, 0.0);
        draws.push_back(e);
    }
    std::sort(draws.begin(), draws.end());
    double median = draws[draws.size() / 2];
    // Lognormal median equals the scale; 4001 samples pin it well.
    EXPECT_GT(median, 0.7 * f.enduranceScale);
    EXPECT_LT(median, 1.4 * f.enduranceScale);
    // The spread is real: a sigma=1 tail spans far beyond the median.
    EXPECT_LT(draws.front(), 0.2 * f.enduranceScale);
    EXPECT_GT(draws.back(), 5.0 * f.enduranceScale);
}

TEST(FaultModel, RemapIsIdentityForHealthyLines)
{
    FaultModel fm(smallConfig());
    for (std::uint64_t line = 0; line < 16; ++line) {
        EXPECT_EQ(fm.remap(BankId(0), LeveledAddr(line)).value(), line);
        EXPECT_FALSE(fm.lineRetired(BankId(0), DeviceAddr(line)));
    }
    EXPECT_EQ(fm.remapEntries(), 0u);
    EXPECT_TRUE(fm.remapTableValid());
}

TEST(FaultModel, RepairThenRetireOnWearExhaustion)
{
    FaultModel fm(smallConfig());
    // Endurance 1.0, +1.0 per ECP repair, 0.6 wear per write.
    EXPECT_EQ(fm.verifyWrite(BankId(0), DeviceAddr(3), 0.6, PulseFactor(1.0), 0, 1000),
              WriteVerdict::Ok);
    // Second write crosses 1.0: consumes the single repair entry.
    EXPECT_EQ(fm.verifyWrite(BankId(0), DeviceAddr(3), 0.6, PulseFactor(1.0), 0, 2000),
              WriteVerdict::Ok);
    EXPECT_EQ(fm.stats().permanentFaults, 1u);
    EXPECT_EQ(fm.stats().repairsUsed, 1u);
    EXPECT_EQ(fm.stats().firstFaultTick, 2000u);
    EXPECT_EQ(fm.maxRepairsOnLine(), 1u);

    // Third write is fine (budget now 2.0), fourth exceeds it and the
    // repair budget is gone: the line retires onto spare 16.
    EXPECT_EQ(fm.verifyWrite(BankId(0), DeviceAddr(3), 0.6, PulseFactor(1.0), 0, 3000),
              WriteVerdict::Ok);
    EXPECT_EQ(fm.verifyWrite(BankId(0), DeviceAddr(3), 0.6, PulseFactor(1.0), 0, 4000),
              WriteVerdict::Retired);
    EXPECT_TRUE(fm.lineRetired(BankId(0), DeviceAddr(3)));
    EXPECT_EQ(fm.remap(BankId(0), LeveledAddr(3)).value(), 16u);
    EXPECT_EQ(fm.sparesUsed(BankId(0)), 1u);
    EXPECT_EQ(fm.sparesUsed(BankId(1)), 0u);
    EXPECT_EQ(fm.stats().retiredLines, 1u);
    EXPECT_EQ(fm.remapEntries(), 1u);
    EXPECT_TRUE(fm.remapTableValid());
    ASSERT_EQ(fm.capacityTrace().size(), 1u);
    EXPECT_EQ(fm.capacityTrace()[0].tick, 4000u);
    EXPECT_EQ(fm.capacityTrace()[0].retiredLines, 1u);

    // A write issued to the retired line is a controller bug.
    EXPECT_EQ(fm.writesToRetiredLines(), 0u);
    fm.noteWriteIssued(BankId(0), DeviceAddr(3));
    EXPECT_EQ(fm.writesToRetiredLines(), 1u);
}

TEST(FaultModel, RetirementChainsFollowToFreshSpare)
{
    FaultModel fm(smallConfig());
    // Wear out line 3 (4 writes: Ok, repair, Ok, retire -> spare 16),
    // then wear out the spare the same way (-> spare 17).
    for (int i = 0; i < 4; ++i)
        fm.verifyWrite(BankId(0), DeviceAddr(3), 0.6, PulseFactor(1.0), 0, 1000 + i);
    EXPECT_EQ(fm.remap(BankId(0), LeveledAddr(3)).value(), 16u);
    for (int i = 0; i < 4; ++i)
        fm.verifyWrite(BankId(0), DeviceAddr(16), 0.6, PulseFactor(1.0), 0, 2000 + i);
    EXPECT_EQ(fm.remap(BankId(0), LeveledAddr(3)).value(), 17u);
    EXPECT_EQ(fm.remap(BankId(0), LeveledAddr(16)).value(), 17u);
    EXPECT_EQ(fm.stats().retiredLines, 2u);
    EXPECT_EQ(fm.remapEntries(), 2u);
    EXPECT_TRUE(fm.remapTableValid());
    EXPECT_EQ(fm.maxSparesUsed(), 2u);
}

TEST(FaultModel, SpareExhaustionGoesUncorrectable)
{
    FaultModel fm(smallConfig());
    for (int i = 0; i < 4; ++i)
        fm.verifyWrite(BankId(0), DeviceAddr(3), 0.6, PulseFactor(1.0), 0, 1000 + i);
    for (int i = 0; i < 4; ++i)
        fm.verifyWrite(BankId(0), DeviceAddr(16), 0.6, PulseFactor(1.0), 0, 2000 + i);
    // Both spares of bank 0 are consumed; line 17's second fault has
    // nowhere to go.
    for (int i = 0; i < 3; ++i)
        fm.verifyWrite(BankId(0), DeviceAddr(17), 0.6, PulseFactor(1.0), 0, 3000 + i);
    EXPECT_EQ(fm.verifyWrite(BankId(0), DeviceAddr(17), 0.6, PulseFactor(1.0), 0, 4000),
              WriteVerdict::Uncorrectable);
    EXPECT_EQ(fm.stats().deadLines, 1u);
    EXPECT_EQ(fm.stats().firstUncorrectableTick, 4000u);
    EXPECT_EQ(fm.stats().permanentFaults,
              fm.stats().repairsUsed + fm.stats().retiredLines +
                  fm.stats().deadLines);

    // The dead line soldiers on in degraded mode, never escalating
    // again; the data loss was recorded once.
    EXPECT_EQ(fm.verifyWrite(BankId(0), DeviceAddr(17), 0.6, PulseFactor(1.0), 0, 5000),
              WriteVerdict::Ok);
    EXPECT_EQ(fm.stats().writesToDeadLines, 1u);
    EXPECT_EQ(fm.stats().deadLines, 1u);

    // One dead line out of 2 banks x 16 data lines.
    EXPECT_DOUBLE_EQ(fm.effectiveCapacityFraction(), 1.0 - 1.0 / 32.0);
    ASSERT_EQ(fm.capacityTrace().size(), 3u);
    EXPECT_EQ(fm.capacityTrace().back().deadLines, 1u);
    // Bank 1 is untouched.
    EXPECT_EQ(fm.sparesUsed(BankId(1)), 0u);
}

TEST(FaultModel, TransientFailuresRequestBoundedRetries)
{
    FaultConfig f = smallConfig();
    f.transientFailProb = 0.9;
    f.maxRetries = 2;
    f.enduranceScale = 1e9; // never wears out
    FaultModel fm(f);

    // Drive writes the way the controller does: resolve the line
    // through the indirection table at issue, and reissue with
    // retries+1 on a Retry verdict.
    unsigned retries_seen = 0;
    for (int w = 0; w < 50; ++w) {
        unsigned retries = 0;
        for (;;) {
            DeviceAddr line = fm.remap(BankId(0), LeveledAddr(5));
            WriteVerdict v =
                fm.verifyWrite(BankId(0), DeviceAddr(line), 1e-12, PulseFactor(1.0), retries, 100 + w);
            if (v != WriteVerdict::Retry)
                break;
            ++retries_seen;
            ASSERT_LT(retries, f.maxRetries)
                << "Retry verdict beyond maxRetries";
            ++retries;
        }
    }
    EXPECT_GT(fm.stats().transientFailures, 0u);
    EXPECT_GT(retries_seen, 0u);
    EXPECT_EQ(fm.stats().retriesRequested, retries_seen);
    EXPECT_EQ(fm.retriesForBank(BankId(0)), retries_seen);
    EXPECT_EQ(fm.retriesForBank(BankId(1)), 0u);
    // With p=0.9 and only 2 retries, some requests must have failed
    // all attempts and escalated to the permanent-fault path.
    EXPECT_GT(fm.stats().permanentFaults, 0u);
}

TEST(FaultModel, SlowerPulsesFailVerificationLess)
{
    FaultConfig f;
    f.numBanks = 2;
    f.blocksPerBank = 1024;
    f.transientFailProb = 0.5;
    f.enduranceSigma = 0.0;
    f.enduranceScale = 1e9;
    f.maxRetries = 3;
    FaultModel fm(f);

    // One write per line; each line is an independent hash draw.
    std::uint64_t fast_fails = 0, slow_fails = 0;
    for (std::uint64_t line = 0; line < 1000; ++line) {
        std::uint64_t before = fm.stats().transientFailures;
        fm.verifyWrite(BankId(0), DeviceAddr(line), 1e-12, PulseFactor(1.0), 0, 1);
        fast_fails += fm.stats().transientFailures - before;

        before = fm.stats().transientFailures;
        fm.verifyWrite(BankId(1), DeviceAddr(line), 1e-12, PulseFactor(10.0), 0, 1);
        slow_fails += fm.stats().transientFailures - before;
    }
    // Effective probability divides by the pulse factor: ~500 vs ~50.
    EXPECT_GT(fast_fails, 350u);
    EXPECT_LT(slow_fails, 150u);
    EXPECT_GT(fast_fails, 2 * slow_fails);
}
