/** @file Tests for per-bank wear accounting and lifetime math. */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/logging.hh"
#include "wear/endurance_model.hh"
#include "wear/wear_tracker.hh"

using namespace mellowsim;

namespace
{

WearTrackerConfig
smallConfig(bool detailed = false)
{
    WearTrackerConfig c;
    c.numBanks = 2;
    c.blocksPerBank = 64;
    c.gapWritePeriod = 4;
    c.levelingEfficiency = 0.9;
    c.detailedBlocks = detailed;
    return c;
}

constexpr Tick kNorm = 150 * kNanosecond;
constexpr Tick kSlow = 450 * kNanosecond;

} // namespace

TEST(WearTracker, NormalWriteAddsOneEnduranceUnit)
{
    EnduranceModel model;
    WearTracker t(smallConfig(), model);
    t.recordWrite(BankId(0), DeviceAddr(3), kNorm, false);
    EXPECT_DOUBLE_EQ(t.bankStats(BankId(0)).wearUnits, 1.0 / 5.0e6);
    EXPECT_EQ(t.bankStats(BankId(0)).normalWrites, 1u);
    EXPECT_EQ(t.bankStats(BankId(0)).slowWrites, 0u);
}

TEST(WearTracker, SlowWriteWearsNineTimesLess)
{
    // Expo 2.0, 3x latency -> 9x endurance -> 1/9 the wear.
    EnduranceModel model;
    WearTracker t(smallConfig(), model);
    t.recordWrite(BankId(0), DeviceAddr(0), kNorm, false);
    t.recordWrite(BankId(1), DeviceAddr(0), kSlow, true);
    EXPECT_NEAR(t.bankStats(BankId(0)).wearUnits /
                    t.bankStats(BankId(1)).wearUnits,
                9.0, 1e-9);
    EXPECT_EQ(t.bankStats(BankId(1)).slowWrites, 1u);
}

TEST(WearTracker, CancelledWriteWearsProportionally)
{
    EnduranceModel model;
    WearTracker t(smallConfig(), model);
    // Half the pulse elapsed, full cancel fraction.
    t.recordCancelledWrite(BankId(0), DeviceAddr(0), kNorm, kNorm / 2,
                           false, 1.0);
    EXPECT_NEAR(t.bankStats(BankId(0)).wearUnits, 0.5 / 5.0e6, 1e-15);
    EXPECT_EQ(t.bankStats(BankId(0)).cancelledWrites, 1u);

    // Scaled by the cancel-wear fraction.
    t.recordCancelledWrite(BankId(1), DeviceAddr(0), kNorm, kNorm / 2,
                           false, 0.5);
    EXPECT_NEAR(t.bankStats(BankId(1)).wearUnits, 0.25 / 5.0e6, 1e-15);
}

TEST(WearTracker, CancelledLongerThanPulsePanics)
{
    EnduranceModel model;
    WearTracker t(smallConfig(), model);
    EXPECT_THROW(
        t.recordCancelledWrite(BankId(0), DeviceAddr(0), kNorm, kNorm + 1,
                               false, 1.0),
        PanicError);
}

TEST(WearTracker, LifetimeInfiniteWithoutWrites)
{
    EnduranceModel model;
    WearTracker t(smallConfig(), model);
    EXPECT_TRUE(std::isinf(t.lifetimeSeconds(kSecond)));
}

TEST(WearTracker, LifetimeAtZeroSimTimeIsInfiniteNotNaN)
{
    // Regression: asking for a lifetime before the clock has advanced
    // (e.g. a report generated at tick 0) used to divide by zero.
    // With wear but no time — or neither — the answer is +inf, never
    // NaN, so min-over-banks and downstream report math stay sane.
    EnduranceModel model;
    WearTracker t(smallConfig(), model);
    t.recordWrite(BankId(0), DeviceAddr(0), kNorm, false);
    EXPECT_TRUE(std::isinf(t.lifetimeSeconds(0)));
    EXPECT_TRUE(std::isinf(t.bankLifetimeSeconds(BankId(0), 0)));
    EXPECT_FALSE(std::isnan(t.lifetimeYears(0)));
    EXPECT_TRUE(std::isinf(t.lifetimeYears(0)));

    // Zero wear with zero time (0/0) must also be +inf, not NaN.
    WearTracker untouched(smallConfig(), model);
    EXPECT_TRUE(std::isinf(untouched.lifetimeSeconds(0)));
    EXPECT_FALSE(std::isnan(untouched.lifetimeYears(0)));
}

TEST(WearTracker, LifetimeMatchesClosedForm)
{
    EnduranceModel model;
    WearTracker t(smallConfig(), model);
    // 1000 normal writes to bank 0 during 1 ms of simulation.
    for (int i = 0; i < 1000; ++i)
        t.recordWrite(BankId(0), DeviceAddr(static_cast<std::uint64_t>(i % 64)),
                      kNorm, false);
    Tick sim = kMillisecond;
    // lifetime = simTime * blocks * eta / wearUnits
    double expect =
        1e-3 * 64.0 * 0.9 / (1000.0 / 5.0e6);
    EXPECT_NEAR(t.bankLifetimeSeconds(BankId(0), sim), expect,
                expect * 1e-12);
    // System lifetime is the minimum over banks; bank 1 is unwritten.
    EXPECT_DOUBLE_EQ(t.lifetimeSeconds(sim),
                     t.bankLifetimeSeconds(BankId(0), sim));
}

TEST(WearTracker, LifetimeYearsConversion)
{
    EnduranceModel model;
    WearTracker t(smallConfig(), model);
    t.recordWrite(BankId(0), DeviceAddr(0), kNorm, false);
    EXPECT_NEAR(t.lifetimeYears(kSecond) * kSecondsPerYear,
                t.lifetimeSeconds(kSecond), 1e-6);
}

TEST(WearTracker, SlowerWritesExtendLifetime)
{
    EnduranceModel model;
    WearTracker norm(smallConfig(), model);
    WearTracker slow(smallConfig(), model);
    for (int i = 0; i < 500; ++i) {
        norm.recordWrite(BankId(0), DeviceAddr(0), kNorm, false);
        slow.recordWrite(BankId(0), DeviceAddr(0), kSlow, true);
    }
    EXPECT_NEAR(slow.lifetimeSeconds(kSecond) /
                    norm.lifetimeSeconds(kSecond),
                9.0, 1e-9);
}

TEST(WearTracker, DetailedModeTracksBlocksThroughStartGap)
{
    EnduranceModel model;
    WearTracker t(smallConfig(true), model);
    // Hammer one logical block; Start-Gap must spread the wear.
    for (int i = 0; i < 64 * 65 * 4; ++i)
        t.recordWrite(BankId(0), DeviceAddr(7), kNorm, false);
    double max_wear = t.maxBlockWear(BankId(0));
    double mean_wear = t.meanBlockWear(BankId(0));
    EXPECT_GT(mean_wear, 0.0);
    // With gap period 4, the single hot block rotates across all
    // physical blocks: max/mean must be far below the no-leveling
    // ratio (which would be ~numPhysicalBlocks = 65).
    EXPECT_LT(max_wear / mean_wear, 10.0);
    EXPECT_GT(t.bankStats(BankId(0)).gapMoveWrites, 0u);
}

TEST(WearTracker, DetailedModeCountsGapCopyWear)
{
    EnduranceModel model;
    WearTracker t(smallConfig(true), model);
    double unit = model.wearPerWriteFactor(PulseFactor(1.0));
    // 4 writes trigger exactly one gap move (period 4).
    for (int i = 0; i < 4; ++i)
        t.recordWrite(BankId(0), DeviceAddr(0), kNorm, false);
    EXPECT_EQ(t.bankStats(BankId(0)).gapMoveWrites, 1u);
    EXPECT_NEAR(t.bankStats(BankId(0)).wearUnits, 5.0 * unit, 1e-18);
}

TEST(WearTracker, DetailedAccessorsRequireDetailedMode)
{
    EnduranceModel model;
    WearTracker t(smallConfig(false), model);
    EXPECT_THROW(t.maxBlockWear(BankId(0)), PanicError);
    EXPECT_THROW(t.meanBlockWear(BankId(0)), PanicError);
    EXPECT_THROW(t.leveler(BankId(0)), PanicError);
}

TEST(WearTracker, BankIndexValidation)
{
    EnduranceModel model;
    WearTracker t(smallConfig(), model);
    EXPECT_THROW(t.recordWrite(BankId(2), DeviceAddr(0), kNorm, false),
                 PanicError);
    EXPECT_THROW(t.bankStats(BankId(9)), PanicError);
}

TEST(WearTracker, RejectsBadConfig)
{
    EnduranceModel model;
    WearTrackerConfig c = smallConfig();
    c.numBanks = 0;
    EXPECT_THROW(WearTracker(c, model), FatalError);
    c = smallConfig();
    c.levelingEfficiency = 0.0;
    EXPECT_THROW(WearTracker(c, model), FatalError);
    c = smallConfig();
    c.levelingEfficiency = 1.5;
    EXPECT_THROW(WearTracker(c, model), FatalError);
}

TEST(WearTracker, TotalAndMaxAggregates)
{
    EnduranceModel model;
    WearTracker t(smallConfig(), model);
    t.recordWrite(BankId(0), DeviceAddr(0), kNorm, false);
    t.recordWrite(BankId(1), DeviceAddr(0), kNorm, false);
    t.recordWrite(BankId(1), DeviceAddr(1), kNorm, false);
    EXPECT_NEAR(t.totalWearUnits(), 3.0 / 5.0e6, 1e-15);
    EXPECT_NEAR(t.maxBankWearUnits(), 2.0 / 5.0e6, 1e-15);
}
