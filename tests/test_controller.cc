/** @file Integration tests for the memory controller. */

#include <gtest/gtest.h>

#include <vector>

#include "mellow/policy.hh"
#include "nvm/controller.hh"
#include "sim/event_queue.hh"

using namespace mellowsim;
using namespace mellowsim::policies;

namespace
{

/**
 * Small geometry: 4 banks, 2 ranks, 1 MB, 1 KB row buffers,
 * block-granularity interleave so bankAddr() below can place
 * requests on exact banks.
 */
MemControllerConfig
smallConfig(const WritePolicyConfig &policy)
{
    MemControllerConfig c;
    c.geometry.numBanks = 4;
    c.geometry.numRanks = 2;
    c.geometry.capacityBytes = 1ull << 20;
    c.geometry.interleaveBytes = kBlockSize;
    c.geometry.pageScramble = false;
    c.policy = policy;
    return c;
}

/** Address in a given bank/in-bank block (block interleave). */
LogicalAddr
bankAddr(unsigned bank, std::uint64_t blockInBank, unsigned numBanks = 4)
{
    return LogicalAddr((blockInBank * numBanks + bank) * kBlockSize);
}

constexpr Tick kReadMiss = Tick(142.5 * kNanosecond); // tRCD+tCAS+burst
constexpr Tick kReadHit = Tick(22.5 * kNanosecond);   // tCAS+burst

struct Fixture
{
    EventQueue eq;
    MemoryController ctrl;
    explicit Fixture(const WritePolicyConfig &policy)
        : ctrl(eq, smallConfig(policy))
    {
    }
    void runFor(Tick t) { eq.run(eq.curTick() + t); }
};

} // namespace

TEST(Controller, ReadMissLatency)
{
    Fixture f{norm()};
    Tick done = 0;
    f.ctrl.read(bankAddr(0, 0), [&] { done = f.eq.curTick(); });
    f.runFor(kMicrosecond);
    EXPECT_EQ(done, kReadMiss);
    EXPECT_EQ(f.ctrl.stats().issuedReads.value(), 1u);
    EXPECT_EQ(f.ctrl.stats().rowMissReads.value(), 1u);
}

TEST(Controller, RowBufferHitIsFaster)
{
    Fixture f{norm()};
    std::vector<Tick> done;
    // Two blocks in the same 1 KB row-buffer segment of bank 0.
    f.ctrl.read(bankAddr(0, 0), [&] { done.push_back(f.eq.curTick()); });
    f.runFor(kMicrosecond);
    f.ctrl.read(bankAddr(0, 1), [&] { done.push_back(f.eq.curTick()); });
    f.runFor(kMicrosecond);
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[1] - done[0] - (kMicrosecond - kReadMiss), kReadHit);
    EXPECT_EQ(f.ctrl.stats().rowHitReads.value(), 1u);
}

TEST(Controller, DifferentRowSegmentMisses)
{
    Fixture f{norm()};
    f.ctrl.read(bankAddr(0, 0), [] {});
    f.runFor(kMicrosecond);
    // Block 16 of bank 0 is in the next 1 KB segment.
    f.ctrl.read(bankAddr(0, 16), [] {});
    f.runFor(kMicrosecond);
    EXPECT_EQ(f.ctrl.stats().rowMissReads.value(), 2u);
    EXPECT_EQ(f.ctrl.stats().rowHitReads.value(), 0u);
}

TEST(Controller, BanksOperateInParallel)
{
    Fixture f{norm()};
    std::vector<Tick> done;
    for (unsigned b = 0; b < 4; ++b) {
        f.ctrl.read(bankAddr(b, 0),
                    [&] { done.push_back(f.eq.curTick()); });
    }
    f.runFor(kMicrosecond);
    ASSERT_EQ(done.size(), 4u);
    // Bank accesses overlap; only the bus serialises the four bursts.
    EXPECT_EQ(done[0], kReadMiss);
    EXPECT_LT(done[3], 2 * kReadMiss);
    EXPECT_EQ(done[3] - done[0], 3 * Tick(20 * kNanosecond));
}

TEST(Controller, WriteIssuesWhenNoReads)
{
    Fixture f{norm()};
    f.ctrl.writeback(bankAddr(1, 5));
    f.runFor(kMicrosecond);
    EXPECT_EQ(f.ctrl.stats().issuedNormalWrites.value(), 1u);
    EXPECT_EQ(f.ctrl.stats().issuedSlowWrites.value(), 0u);
    const BankWearStats &w = f.ctrl.wearTracker().bankStats(BankId(1));
    EXPECT_EQ(w.normalWrites, 1u);
    EXPECT_EQ(w.slowWrites, 0u);
}

TEST(Controller, SlowPolicyIssuesSlowWrites)
{
    Fixture f{slow()};
    f.ctrl.writeback(bankAddr(1, 5));
    f.runFor(kMicrosecond);
    EXPECT_EQ(f.ctrl.stats().issuedSlowWrites.value(), 1u);
    EXPECT_EQ(f.ctrl.wearTracker().bankStats(BankId(1)).slowWrites, 1u);
}

TEST(Controller, BankAwareSingleWriteGoesSlow)
{
    Fixture f{bMellow()};
    f.ctrl.writeback(bankAddr(2, 3));
    f.runFor(kMicrosecond);
    EXPECT_EQ(f.ctrl.stats().issuedSlowWrites.value(), 1u);
}

TEST(Controller, BankAwareMultipleWritesGoNormal)
{
    Fixture f{bMellow()};
    // Three writes arrive together for the same bank: the first two
    // issue while a peer is still queued -> normal; the last one is
    // alone -> slow (exactly the Figure 4/5 behaviour).
    f.ctrl.writeback(bankAddr(2, 3));
    f.ctrl.writeback(bankAddr(2, 4));
    f.ctrl.writeback(bankAddr(2, 5));
    f.runFor(10 * kMicrosecond);
    EXPECT_EQ(f.ctrl.stats().issuedNormalWrites.value(), 2u);
    EXPECT_EQ(f.ctrl.stats().issuedSlowWrites.value(), 1u);
}

TEST(Controller, ReadsBlockWritesToSameBank)
{
    Fixture f{norm()};
    // Saturate bank 0 with a chain of reads; a write to bank 0 must
    // wait, while a write to bank 1 proceeds.
    for (int i = 0; i < 6; ++i)
        f.ctrl.read(bankAddr(0, static_cast<std::uint64_t>(i) * 16),
                    [] {});
    f.ctrl.writeback(bankAddr(0, 99));
    f.ctrl.writeback(bankAddr(1, 99));
    // After two read slots, reads for bank 0 still queue, yet the
    // bank-1 write has already issued (and by 4 read times, retired).
    f.runFor(2 * kReadMiss);
    EXPECT_EQ(f.ctrl.stats().issuedNormalWrites.value(), 1u);
    f.runFor(2 * kReadMiss);
    const BankWearStats &b1 = f.ctrl.wearTracker().bankStats(BankId(1));
    EXPECT_EQ(b1.normalWrites, 1u);
    // Eventually the bank-0 write drains too.
    f.runFor(2 * kMicrosecond);
    EXPECT_EQ(f.ctrl.stats().issuedNormalWrites.value(), 2u);
}

TEST(Controller, ReadForwardedFromPendingWrite)
{
    Fixture f{norm()};
    // Park a write behind read traffic so it stays queued.
    f.ctrl.read(bankAddr(0, 0), [] {});
    f.ctrl.writeback(bankAddr(0, 42));
    Tick done = 0;
    f.ctrl.read(bankAddr(0, 42), [&] { done = f.eq.curTick(); });
    f.runFor(kMicrosecond);
    EXPECT_EQ(f.ctrl.stats().forwardedReads.value(), 1u);
    EXPECT_EQ(done, Tick(22.5 * kNanosecond));
    // The forwarded read is a demand read but never issues to a bank.
    EXPECT_EQ(f.ctrl.stats().demandReads.value(), 2u);
    EXPECT_EQ(f.ctrl.stats().issuedReads.value(), 2u - 1u);
}

TEST(Controller, WriteDrainEntersAndExits)
{
    MemControllerConfig cfg = smallConfig(norm());
    cfg.writeQueueSize = 8;
    cfg.drainLowThreshold = 4;
    EventQueue eq;
    MemoryController ctrl(eq, cfg);
    // All writes target one bank so the drain takes real time.
    for (std::uint64_t i = 0; i < 8; ++i)
        ctrl.writeback(bankAddr(0, i * 16));
    EXPECT_TRUE(ctrl.draining());
    EXPECT_EQ(ctrl.stats().drainEntries.value(), 1u);
    eq.run(eq.curTick() + 10 * kMicrosecond);
    ctrl.finalize();
    EXPECT_FALSE(ctrl.draining());
    EXPECT_GT(ctrl.drainTimeFraction(), 0.0);
    EXPECT_LT(ctrl.drainTimeFraction(), 1.0);
}

TEST(Controller, DrainPrioritizesWritesOverReads)
{
    MemControllerConfig cfg = smallConfig(norm());
    cfg.writeQueueSize = 4;
    cfg.drainLowThreshold = 1;
    EventQueue eq;
    MemoryController ctrl(eq, cfg);
    // Fill the write queue for bank 0, then present a read.
    for (std::uint64_t i = 0; i < 4; ++i)
        ctrl.writeback(bankAddr(0, i));
    ASSERT_TRUE(ctrl.draining());
    Tick read_done = 0;
    ctrl.read(bankAddr(0, 99), [&] { read_done = eq.curTick(); });
    eq.run(eq.curTick() + 10 * kMicrosecond);
    // Three writes (170 ns each) must retire before the read gets the
    // bank (drain exits at occupancy 1, then the read outranks the
    // last write).
    EXPECT_GT(read_done, 3 * Tick(170 * kNanosecond));
}

TEST(Controller, CancellationAbortsSlowWriteForRead)
{
    Fixture f{slow().withSC()};
    f.ctrl.writeback(bankAddr(0, 7));
    // Let the write start its (450 ns) pulse.
    f.runFor(100 * kNanosecond);
    Tick read_done = 0;
    f.ctrl.read(bankAddr(0, 500),
                [&] { read_done = f.eq.curTick(); });
    f.runFor(10 * kMicrosecond);
    EXPECT_EQ(f.ctrl.stats().cancelledWrites.value(), 1u);
    // The read proceeded at cancellation, not after the 470 ns write.
    EXPECT_LT(read_done, 100 * kNanosecond + kReadMiss + kReadHit);
    // The write retried: two slow issues for one writeback.
    EXPECT_EQ(f.ctrl.stats().issuedSlowWrites.value(), 2u);
    // Cancelled attempt wears partially.
    const BankWearStats &w = f.ctrl.wearTracker().bankStats(BankId(0));
    EXPECT_EQ(w.cancelledWrites, 1u);
    EXPECT_EQ(w.slowWrites, 1u);
}

TEST(Controller, NonCancellableWriteMakesReadWait)
{
    Fixture f{slow()}; // no +SC
    f.ctrl.writeback(bankAddr(0, 7));
    f.runFor(100 * kNanosecond);
    Tick read_done = 0;
    f.ctrl.read(bankAddr(0, 500), [&] { read_done = f.eq.curTick(); });
    f.runFor(10 * kMicrosecond);
    EXPECT_EQ(f.ctrl.stats().cancelledWrites.value(), 0u);
    // Write busy until 20 ns (burst) + 450 ns pulse = 470 ns.
    EXPECT_GE(read_done, Tick(470 * kNanosecond) + kReadMiss);
}

TEST(Controller, EagerQueueCapacityEnforced)
{
    Fixture f{beMellow().withSC()};
    // Saturate every bank with reads so eager writes cannot issue.
    for (unsigned b = 0; b < 4; ++b) {
        for (int i = 0; i < 4; ++i) {
            f.ctrl.read(bankAddr(b, static_cast<std::uint64_t>(i) * 32),
                        [] {});
        }
    }
    unsigned accepted = 0;
    for (std::uint64_t i = 0; i < 20; ++i) {
        if (f.ctrl.eagerWrite(bankAddr(0, 200 + i)))
            ++accepted;
    }
    EXPECT_EQ(accepted, 16u);
    EXPECT_FALSE(f.ctrl.eagerQueueHasSpace());
    EXPECT_EQ(f.ctrl.stats().rejectedEager.value(), 4u);
}

TEST(Controller, EagerWritesIssueSlowOnIdleBanks)
{
    Fixture f{beMellow().withSC()};
    ASSERT_TRUE(f.ctrl.eagerWrite(bankAddr(3, 9)));
    f.runFor(kMicrosecond);
    EXPECT_EQ(f.ctrl.stats().issuedEagerSlow.value(), 1u);
    EXPECT_EQ(f.ctrl.wearTracker().bankStats(BankId(3)).slowWrites, 1u);
}

TEST(Controller, ENormIssuesEagerWritesAtNormalSpeed)
{
    Fixture f{eNorm().withNC()};
    ASSERT_TRUE(f.ctrl.eagerWrite(bankAddr(3, 9)));
    f.runFor(kMicrosecond);
    EXPECT_EQ(f.ctrl.stats().issuedEagerNormal.value(), 1u);
    EXPECT_EQ(f.ctrl.stats().issuedEagerSlow.value(), 0u);
}

TEST(Controller, DemandWriteSuppressesEagerForSameBank)
{
    Fixture f{beMellow().withSC()};
    f.ctrl.eagerWrite(bankAddr(2, 9));
    f.ctrl.writeback(bankAddr(2, 10));
    f.runFor(kMicrosecond);
    // Demand write went first (as a slow bank-aware write); the eager
    // write followed once the bank had no demand traffic.
    EXPECT_EQ(f.ctrl.stats().issuedSlowWrites.value(), 1u);
    EXPECT_EQ(f.ctrl.stats().issuedEagerSlow.value(), 1u);
}

TEST(Controller, WearQuotaForcesSlowWritesUnderLoad)
{
    MemControllerConfig cfg = smallConfig(norm().withWQ());
    // Tiny capacity -> tiny per-period wear budget; 500 us periods.
    cfg.geometry.capacityBytes = 4 * 1024 * kBlockSize; // 1024 blk/bank
    EventQueue eq;
    MemoryController ctrl(eq, cfg);
    // Write steadily for many periods.
    for (int period = 0; period < 8; ++period) {
        for (std::uint64_t i = 0; i < 200; ++i)
            ctrl.writeback(bankAddr(static_cast<unsigned>(i % 4),
                                    i / 4));
        eq.run(eq.curTick() + 500 * kMicrosecond);
    }
    eq.run(eq.curTick() + 4 * kMillisecond);
    ASSERT_NE(ctrl.wearQuota(), nullptr);
    EXPECT_GT(ctrl.stats().issuedSlowWrites.value(), 0u);
    EXPECT_GT(ctrl.wearQuota()->slowOnlyPeriods(BankId(0)), 0u);
}

TEST(Controller, NoQuotaObjectWithoutWQ)
{
    Fixture f{norm()};
    EXPECT_EQ(f.ctrl.wearQuota(), nullptr);
}

TEST(Controller, BankUtilizationTracksBusyTime)
{
    Fixture f{norm()};
    f.ctrl.writeback(bankAddr(0, 1));
    f.runFor(kMicrosecond);
    f.ctrl.finalize();
    // Bank 0 busy for burst+pulse = 170 ns out of 1000 ns.
    EXPECT_NEAR(f.ctrl.bankUtilization(BankId(0)), 0.17, 0.01);
    EXPECT_NEAR(f.ctrl.avgBankUtilization(), 0.17 / 4, 0.005);
}

TEST(Controller, TfawLimitsActivateBursts)
{
    Fixture f{norm()};
    std::vector<Tick> done;
    // Five row-miss reads to five different banks... only 2 ranks x
    // 2 banks, so use bank 0/1 (rank 0) with distinct segments:
    // 5 activates on rank 0 -> the 5th waits for tFAW (50 ns).
    for (int i = 0; i < 5; ++i) {
        unsigned bank = static_cast<unsigned>(i % 2);
        std::uint64_t seg = static_cast<std::uint64_t>(i) * 64;
        f.ctrl.read(bankAddr(bank, seg),
                    [&] { done.push_back(f.eq.curTick()); });
    }
    f.runFor(10 * kMicrosecond);
    ASSERT_EQ(done.size(), 5u);
    // First four activates start immediately (banks ping-pong as they
    // free); the fifth cannot start before tick 50 ns.
    EXPECT_GE(done[4], Tick(50 * kNanosecond) + kReadMiss);
}

TEST(Controller, RejectsBadConfig)
{
    EventQueue eq;
    MemControllerConfig cfg = smallConfig(norm());
    cfg.drainLowThreshold = cfg.writeQueueSize;
    EXPECT_THROW(MemoryController(eq, cfg), FatalError);

    cfg = smallConfig(norm());
    cfg.policy.slowFactor = 0.5;
    EXPECT_THROW(MemoryController(eq, cfg), FatalError);
}

TEST(Controller, AdaptiveLatencyPicksFactorByQuietTime)
{
    EnduranceModel model;
    Fixture f{bMellow().withSC().withML()};

    // Bank 3 never read: the full 3x factor applies.
    f.ctrl.writeback(bankAddr(3, 7));
    f.runFor(kMicrosecond);
    EXPECT_NEAR(f.ctrl.wearTracker().bankStats(BankId(3)).wearUnits,
                model.wearPerWriteFactor(PulseFactor(3.0)), 1e-12);

    // Bank 2 read 350 ns before the write: 3x (450 ns) does not fit
    // the quiet time, 2x (300 ns) does.
    f.ctrl.read(bankAddr(2, 0), [] {});
    f.runFor(Tick(350 * kNanosecond));
    f.ctrl.writeback(bankAddr(2, 9));
    f.runFor(2 * kMicrosecond);
    EXPECT_NEAR(f.ctrl.wearTracker().bankStats(BankId(2)).wearUnits,
                model.wearPerWriteFactor(PulseFactor(2.0)), 1e-12);
    EXPECT_EQ(f.ctrl.stats().issuedSlowWrites.value(), 2u);
}

TEST(Controller, AdaptiveLatencyKeepsQuotaWritesAtFullSlow)
{
    // Quota-forced slow writes must not be shortened by +ML.
    EnduranceModel model;
    MemControllerConfig cfg =
        smallConfig(norm().withWQ().withML({1.5, 3.0}));
    cfg.geometry.capacityBytes = 4 * 1024 * kBlockSize;
    EventQueue eq;
    MemoryController ctrl(eq, cfg);
    // Cold-start slow-only is active before the first boundary.
    ctrl.writeback(LogicalAddr((5 * 4 + 1) * kBlockSize)); // bank 1
    eq.run(eq.curTick() + 2 * kMicrosecond);
    EXPECT_NEAR(ctrl.wearTracker().bankStats(BankId(1)).wearUnits,
                model.wearPerWriteFactor(PulseFactor(3.0)), 1e-12);
}

TEST(Controller, WritePausingServicesReadThenResumes)
{
    Fixture f{slow().withWP()};
    f.ctrl.writeback(bankAddr(0, 7));
    f.runFor(100 * kNanosecond); // pulse under way
    Tick read_done = 0;
    f.ctrl.read(bankAddr(0, 500), [&] { read_done = f.eq.curTick(); });
    f.runFor(10 * kMicrosecond);
    EXPECT_EQ(f.ctrl.stats().pausedWrites.value(), 1u);
    EXPECT_EQ(f.ctrl.stats().resumedWrites.value(), 1u);
    EXPECT_EQ(f.ctrl.stats().cancelledWrites.value(), 0u);
    // The read proceeded promptly (pause at 100 ns + read 142.5 ns).
    EXPECT_EQ(read_done, 100 * kNanosecond + kReadMiss);
    // One slow attempt only, one completed slow write's wear.
    EXPECT_EQ(f.ctrl.stats().issuedSlowWrites.value(), 1u);
    EnduranceModel model;
    EXPECT_NEAR(f.ctrl.wearTracker().bankStats(BankId(0)).wearUnits,
                model.wearPerWriteFactor(PulseFactor(3.0)), 1e-12);
}

TEST(Controller, PausingBeatsCancellationOnWear)
{
    // Same scenario under +SC loses pulse time to the retry.
    Fixture fp{slow().withWP()};
    Fixture fc{slow().withSC()};
    for (Fixture *f : {&fp, &fc}) {
        f->ctrl.writeback(bankAddr(0, 7));
        f->runFor(100 * kNanosecond);
        f->ctrl.read(bankAddr(0, 500), [] {});
        f->runFor(10 * kMicrosecond);
    }
    EXPECT_LT(fp.ctrl.wearTracker().bankStats(BankId(0)).wearUnits,
              fc.ctrl.wearTracker().bankStats(BankId(0)).wearUnits);
}

TEST(Controller, PausedWriteBlocksNewWritesUntilResumed)
{
    Fixture f{slow().withWP()};
    f.ctrl.writeback(bankAddr(0, 7));
    f.runFor(100 * kNanosecond);
    f.ctrl.read(bankAddr(0, 500), [] {}); // pauses the write
    f.ctrl.writeback(bankAddr(0, 8));     // must wait for the resume
    f.runFor(10 * kMicrosecond);
    // Both writes completed, in order, with two slow issues total.
    EXPECT_EQ(f.ctrl.stats().issuedSlowWrites.value(), 2u);
    EXPECT_EQ(f.ctrl.wearTracker().bankStats(BankId(0)).slowWrites, 2u);
    EXPECT_EQ(f.ctrl.stats().resumedWrites.value(), 1u);
}
