/** @file Tests for Start-Gap wear leveling. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/logging.hh"
#include "wear/start_gap.hh"

using namespace mellowsim;

namespace
{

/** Assert the logical->physical map is injective and skips the gap. */
void
expectBijective(const StartGap &sg)
{
    std::set<std::uint64_t> used;
    for (std::uint64_t la = 0; la < sg.numBlocks(); ++la) {
        std::uint64_t pa = sg.remap(la);
        ASSERT_LT(pa, sg.numPhysicalBlocks());
        ASSERT_NE(pa, sg.gap()) << "logical " << la << " maps to gap";
        ASSERT_TRUE(used.insert(pa).second)
            << "collision at physical " << pa;
    }
}

} // namespace

TEST(StartGap, InitialMappingIsIdentity)
{
    StartGap sg(16);
    for (std::uint64_t la = 0; la < 16; ++la)
        EXPECT_EQ(sg.remap(la), la);
    EXPECT_EQ(sg.gap(), 16u);
    EXPECT_EQ(sg.start(), 0u);
}

TEST(StartGap, RemapRejectsOutOfRange)
{
    StartGap sg(8);
    EXPECT_THROW(sg.remap(8), PanicError);
}

TEST(StartGap, GapMovesEveryPeriodWrites)
{
    StartGap sg(16, 4);
    std::uint64_t copied = 0;
    EXPECT_FALSE(sg.noteWrite(&copied));
    EXPECT_FALSE(sg.noteWrite(&copied));
    EXPECT_FALSE(sg.noteWrite(&copied));
    EXPECT_TRUE(sg.noteWrite(&copied));
    EXPECT_EQ(sg.gap(), 15u);
    EXPECT_EQ(copied, 16u); // block copied into the old gap slot
    EXPECT_EQ(sg.gapMoves(), 1u);
}

TEST(StartGap, MappingStaysBijectiveThroughManyMoves)
{
    StartGap sg(8, 1); // move the gap on every write
    for (int i = 0; i < 100; ++i) {
        expectBijective(sg);
        sg.noteWrite();
    }
}

TEST(StartGap, StartAdvancesAfterFullGapRotation)
{
    StartGap sg(4, 1);
    // Gap positions: 4 -> 3 -> 2 -> 1 -> 0, then wrap to 4, start=1.
    for (int i = 0; i < 4; ++i)
        sg.noteWrite();
    EXPECT_EQ(sg.gap(), 0u);
    EXPECT_EQ(sg.start(), 0u);
    std::uint64_t copied = 1234;
    sg.noteWrite(&copied);
    EXPECT_EQ(sg.gap(), 4u);
    EXPECT_EQ(sg.start(), 1u);
    EXPECT_EQ(copied, 0u); // wrap copy lands in physical 0
    expectBijective(sg);
}

TEST(StartGap, StartWrapsAroundModuloN)
{
    StartGap sg(3, 1);
    // (N+1) moves advance start by one; 3 full cycles wrap start.
    for (int i = 0; i < 3 * 4; ++i)
        sg.noteWrite();
    EXPECT_EQ(sg.start(), 0u);
    expectBijective(sg);
}

/**
 * Property: over a long write stream, every logical block visits many
 * distinct physical blocks — the rotation that levels wear.
 */
TEST(StartGap, LogicalBlocksRotateOverPhysicalBlocks)
{
    StartGap sg(32, 1);
    std::set<std::uint64_t> homes;
    for (int i = 0; i < 33 * 32; ++i) {
        homes.insert(sg.remap(5));
        sg.noteWrite();
    }
    // After N+1 moves per start increment and N start values, logical
    // block 5 must have lived in every physical slot.
    EXPECT_EQ(homes.size(), sg.numPhysicalBlocks());
}

TEST(StartGap, SingleBlockDegenerateCase)
{
    StartGap sg(1, 1);
    for (int i = 0; i < 10; ++i) {
        EXPECT_LT(sg.remap(0), 2u);
        EXPECT_NE(sg.remap(0), sg.gap());
        sg.noteWrite();
    }
}

TEST(StartGap, RejectsZeroBlocksOrPeriod)
{
    EXPECT_THROW(StartGap(0, 1), FatalError);
    EXPECT_THROW(StartGap(4, 0), FatalError);
}

/** Parameterised bijectivity fuzz over sizes and periods. */
class StartGapSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(StartGapSweep, AlwaysBijective)
{
    auto [blocks, period] = GetParam();
    StartGap sg(static_cast<std::uint64_t>(blocks),
                static_cast<std::uint64_t>(period));
    for (int i = 0; i < 500; ++i) {
        sg.noteWrite();
        if (i % 17 == 0)
            expectBijective(sg);
    }
    expectBijective(sg);
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, StartGapSweep,
    ::testing::Combine(::testing::Values(2, 3, 7, 16, 64),
                       ::testing::Values(1, 3, 100)));
