/** @file Tests for the multi-channel memory system. */

#include <gtest/gtest.h>

#include <set>

#include "mellow/policy.hh"
#include "nvm/memory_system.hh"
#include "sim/event_queue.hh"
#include "system/runner.hh"
#include "system/system.hh"

using namespace mellowsim;
using namespace mellowsim::policies;

namespace
{

MemorySystemConfig
config(unsigned channels, const WritePolicyConfig &policy = norm())
{
    MemorySystemConfig c;
    c.numChannels = channels;
    c.channel.geometry.numBanks = 4;
    c.channel.geometry.numRanks = 2;
    c.channel.geometry.capacityBytes = 4ull << 20;
    c.channel.geometry.pageScramble = false;
    c.channel.policy = policy;
    return c;
}

} // namespace

TEST(MemorySystem, SingleChannelPassesThrough)
{
    EventQueue eq;
    MemorySystem mem(eq, config(1));
    EXPECT_EQ(mem.numChannels(), 1u);
    Tick done = 0;
    mem.read(LogicalAddr(0x0), [&] { done = eq.curTick(); });
    eq.run(eq.curTick() + kMicrosecond);
    EXPECT_EQ(done, Tick(142.5 * kNanosecond));
    EXPECT_EQ(mem.channel(ChannelId(0)).stats().issuedReads.value(), 1u);
}

TEST(MemorySystem, ChunksInterleaveAcrossChannels)
{
    EventQueue eq;
    MemorySystem mem(eq, config(2));
    const std::uint64_t chunk = 16 * 1024; // interleave granularity
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(mem.channelOf(LogicalAddr(static_cast<Addr>(i) * chunk))
                      .value(),
                  i % 2);
    // Blocks within a chunk stay on one channel.
    EXPECT_EQ(mem.channelOf(LogicalAddr(64)), mem.channelOf(LogicalAddr(0)));
}

TEST(MemorySystem, LocalAddressesAreDense)
{
    EventQueue eq;
    MemorySystem mem(eq, config(2));
    const std::uint64_t chunk = 16 * 1024;
    // Channel 0 sees chunks 0, 2, 4... at local chunks 0, 1, 2...
    EXPECT_EQ(mem.localAddr(LogicalAddr(0 * chunk)).value(), 0u * chunk);
    EXPECT_EQ(mem.localAddr(LogicalAddr(2 * chunk)).value(), 1u * chunk);
    EXPECT_EQ(mem.localAddr(LogicalAddr(4 * chunk + 128)).value(), 2u * chunk + 128);
    // Channel 1 likewise.
    EXPECT_EQ(mem.localAddr(LogicalAddr(1 * chunk)).value(), 0u * chunk);
    EXPECT_EQ(mem.localAddr(LogicalAddr(3 * chunk + 64)).value(), 1u * chunk + 64);
}

TEST(MemorySystem, RoutesRequestsToTheRightChannel)
{
    EventQueue eq;
    MemorySystem mem(eq, config(2));
    const std::uint64_t chunk = 16 * 1024;
    mem.writeback(LogicalAddr(0 * chunk));
    mem.writeback(LogicalAddr(1 * chunk));
    mem.writeback(LogicalAddr(2 * chunk));
    eq.run(eq.curTick() + 10 * kMicrosecond);
    EXPECT_EQ(mem.channel(ChannelId(0)).stats().issuedNormalWrites.value(), 2u);
    EXPECT_EQ(mem.channel(ChannelId(1)).stats().issuedNormalWrites.value(), 1u);
}

TEST(MemorySystem, EagerQueuesArePerChannel)
{
    EventQueue eq;
    MemorySystemConfig cfg = config(2, beMellow().withSC());
    EventQueue eq2;
    MemorySystem mem(eq2, cfg);
    const std::uint64_t chunk = 16 * 1024;
    // Fill channel 0's eager queue (16 entries); channel 1 stays open.
    unsigned accepted0 = 0;
    for (std::uint64_t i = 0; i < 20; ++i) {
        accepted0 += mem.eagerWrite(LogicalAddr(2 * i * chunk)); // even chunks: ch 0
    }
    EXPECT_EQ(accepted0, 16u);
    EXPECT_TRUE(mem.eagerQueueHasSpace()); // channel 1 has room
    EXPECT_TRUE(mem.eagerWrite(LogicalAddr(1 * chunk)));
    (void)eq;
}

TEST(MemorySystem, AggregatesLifetimeAsMinimumOverChannels)
{
    EventQueue eq;
    MemorySystem mem(eq, config(2));
    // Wear only channel 0: its (finite) lifetime is the system's.
    mem.writeback(LogicalAddr(0));
    eq.run(eq.curTick() + 10 * kMicrosecond);
    mem.finalize();
    double sys_years = mem.lifetimeYears(10 * kMicrosecond);
    double ch0_years =
        mem.channel(ChannelId(0)).wearTracker().lifetimeYears(10 * kMicrosecond);
    EXPECT_DOUBLE_EQ(sys_years, ch0_years);
}

TEST(MemorySystem, RejectsBadConfig)
{
    EventQueue eq;
    MemorySystemConfig c = config(0);
    EXPECT_THROW(MemorySystem(eq, c), FatalError);
    c = config(3); // 4 MB does not divide by 3
    EXPECT_THROW(MemorySystem(eq, c), FatalError);
    EXPECT_THROW(MemorySystem(eq, config(2)).channel(ChannelId(2)),
                 PanicError);
}

TEST(MemorySystem, FullSystemRunsWithMultipleChannels)
{
    SystemConfig cfg;
    cfg.workloadName = "stream";
    cfg.policy = beMellow().withSC();
    cfg.instructions = 500'000;
    cfg.warmupInstructions = 200'000;
    cfg.numChannels = 2;
    SimReport r = runSystem(cfg);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.memReads, 0u);
    EXPECT_GT(r.lifetimeYears, 0.0);
}

TEST(MemorySystem, MoreChannelsNeverSlower)
{
    auto run_with = [](unsigned channels) {
        SystemConfig cfg;
        cfg.workloadName = "milc";
        cfg.policy = norm();
        cfg.instructions = 800'000;
        cfg.warmupInstructions = 200'000;
        cfg.numChannels = channels;
        return runSystem(cfg);
    };
    SimReport one = run_with(1);
    SimReport four = run_with(4);
    // Four channels quadruple bus bandwidth and bank count; a
    // bandwidth-hungry random workload must not lose performance.
    EXPECT_GE(four.ipc, one.ipc * 0.98);
}
