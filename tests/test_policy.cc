/** @file Tests for the Table III policy matrix and name parsing. */

#include <gtest/gtest.h>

#include "mellow/policy.hh"
#include "sim/logging.hh"

using namespace mellowsim;
using namespace mellowsim::policies;

TEST(Policy, NormDefaults)
{
    WritePolicyConfig p = norm();
    EXPECT_EQ(p.name, "Norm");
    EXPECT_FALSE(p.globalSlow);
    EXPECT_FALSE(p.bankAware);
    EXPECT_FALSE(p.eager);
    EXPECT_FALSE(p.cancelNormal);
    EXPECT_FALSE(p.cancelSlow);
    EXPECT_FALSE(p.wearQuota);
    EXPECT_DOUBLE_EQ(p.slowFactor, 3.0);
    EXPECT_FALSE(p.anyMellow());
}

TEST(Policy, SlowIsGloballySlow)
{
    WritePolicyConfig p = slow();
    EXPECT_TRUE(p.globalSlow);
    EXPECT_FALSE(p.eager);
    EXPECT_FALSE(p.anyMellow());
}

TEST(Policy, BMellowIsBankAwareOnly)
{
    WritePolicyConfig p = bMellow();
    EXPECT_TRUE(p.bankAware);
    EXPECT_FALSE(p.eager);
    EXPECT_TRUE(p.anyMellow());
}

TEST(Policy, BeMellowAddsSlowEagerWrites)
{
    WritePolicyConfig p = beMellow();
    EXPECT_TRUE(p.bankAware);
    EXPECT_TRUE(p.eager);
    EXPECT_TRUE(p.eagerSlow);
    EXPECT_TRUE(p.anyMellow());
}

TEST(Policy, ENormUsesNormalSpeedEagerWrites)
{
    WritePolicyConfig p = eNorm();
    EXPECT_TRUE(p.eager);
    EXPECT_FALSE(p.eagerSlow);
    EXPECT_FALSE(p.globalSlow);
    EXPECT_FALSE(p.bankAware);
}

TEST(Policy, ESlowIsSlowWithEagerWrites)
{
    WritePolicyConfig p = eSlow();
    EXPECT_TRUE(p.eager);
    EXPECT_TRUE(p.eagerSlow);
    EXPECT_TRUE(p.globalSlow);
}

TEST(Policy, ModifiersComposeAndRename)
{
    WritePolicyConfig p = beMellow().withSC().withWQ();
    EXPECT_EQ(p.name, "BE-Mellow+SC+WQ");
    EXPECT_TRUE(p.cancelSlow);
    EXPECT_FALSE(p.cancelNormal);
    EXPECT_TRUE(p.wearQuota);

    WritePolicyConfig q = eNorm().withNC();
    EXPECT_EQ(q.name, "E-Norm+NC");
    EXPECT_TRUE(q.cancelNormal);
}

TEST(Policy, WithSlowFactor)
{
    WritePolicyConfig p = slow().withSlowFactor(1.5);
    EXPECT_DOUBLE_EQ(p.slowFactor, 1.5);
    EXPECT_THROW(slow().withSlowFactor(0.5), FatalError);
}

TEST(Policy, FromNameRoundTripsAllPaperPolicies)
{
    for (const WritePolicyConfig &p : paperPolicySet()) {
        WritePolicyConfig q = fromName(p.name);
        EXPECT_EQ(q.name, p.name);
        EXPECT_EQ(q.globalSlow, p.globalSlow);
        EXPECT_EQ(q.bankAware, p.bankAware);
        EXPECT_EQ(q.eager, p.eager);
        EXPECT_EQ(q.eagerSlow, p.eagerSlow);
        EXPECT_EQ(q.cancelNormal, p.cancelNormal);
        EXPECT_EQ(q.cancelSlow, p.cancelSlow);
        EXPECT_EQ(q.wearQuota, p.wearQuota);
    }
}

TEST(Policy, FromNameRejectsUnknown)
{
    EXPECT_THROW(fromName("FastWrites"), FatalError);
    EXPECT_THROW(fromName("Norm+XX"), FatalError);
    EXPECT_THROW(fromName(""), FatalError);
}

TEST(Policy, PaperPolicySetOrderMatchesFigures)
{
    auto set = paperPolicySet();
    ASSERT_EQ(set.size(), 9u);
    EXPECT_EQ(set[0].name, "Norm");
    EXPECT_EQ(set[1].name, "E-Norm+NC");
    EXPECT_EQ(set[2].name, "Slow");
    EXPECT_EQ(set[3].name, "E-Slow+SC");
    EXPECT_EQ(set[4].name, "B-Mellow+SC");
    EXPECT_EQ(set[5].name, "BE-Mellow+SC");
    EXPECT_EQ(set[6].name, "Norm+WQ");
    EXPECT_EQ(set[7].name, "B-Mellow+SC+WQ");
    EXPECT_EQ(set[8].name, "BE-Mellow+SC+WQ");
}

TEST(Policy, MultiLatencyModifier)
{
    WritePolicyConfig p = beMellow().withSC().withML();
    EXPECT_EQ(p.name, "BE-Mellow+SC+ML");
    ASSERT_EQ(p.adaptiveSlowFactors.size(), 3u);
    EXPECT_DOUBLE_EQ(p.adaptiveSlowFactors[0], 1.5);
    EXPECT_DOUBLE_EQ(p.adaptiveSlowFactors[2], 3.0);

    WritePolicyConfig q = fromName("BE-Mellow+SC+ML");
    EXPECT_EQ(q.adaptiveSlowFactors.size(), 3u);

    // Custom ladders are sorted and validated.
    WritePolicyConfig r = bMellow().withML({3.0, 1.5});
    EXPECT_DOUBLE_EQ(r.adaptiveSlowFactors.front(), 1.5);
    EXPECT_THROW(bMellow().withML({}), FatalError);
    EXPECT_THROW(bMellow().withML({0.5}), FatalError);
}
