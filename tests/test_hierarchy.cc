/** @file Integration tests for the three-level cache hierarchy. */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "mellow/policy.hh"
#include "nvm/controller.hh"
#include "sim/event_queue.hh"

using namespace mellowsim;
using namespace mellowsim::policies;

namespace
{

MemControllerConfig
memConfig()
{
    MemControllerConfig c;
    c.geometry.numBanks = 4;
    c.geometry.numRanks = 2;
    c.geometry.capacityBytes = 1ull << 22;
    c.policy = norm();
    return c;
}

HierarchyConfig
smallHierarchy()
{
    HierarchyConfig c;
    c.l1 = {"L1D", 2 * 1024, 2, 1 * kNanosecond}; // 16 sets x 2
    c.l2 = {"L2", 8 * 1024, 4, 6 * kNanosecond};  // 32 sets x 4
    c.llc.cache = {"LLC", 32 * 1024, 8, Tick(17.5 * kNanosecond)};
    c.llcMshrs = 4;
    return c;
}

struct Fixture
{
    EventQueue eq;
    MemoryController ctrl;
    Hierarchy hier;
    Fixture()
        : ctrl(eq, memConfig()), hier(eq, smallHierarchy(), ctrl, 3)
    {
    }
    void run(Tick t = 10 * kMicrosecond) { eq.run(eq.curTick() + t); }
};

} // namespace

TEST(Hierarchy, ColdLoadMissesToMemoryThenHitsInL1)
{
    Fixture f;
    bool filled = false;
    AccessTicket t = f.hier.access(LogicalAddr(0x40), false, [&] { filled = true; });
    EXPECT_EQ(t.outcome, AccessOutcome::Miss);
    EXPECT_EQ(f.hier.stats().llcMisses.value(), 1u);
    f.run();
    EXPECT_TRUE(filled);

    AccessTicket t2 = f.hier.access(LogicalAddr(0x40), false, nullptr);
    EXPECT_EQ(t2.outcome, AccessOutcome::Hit);
    EXPECT_EQ(t2.latency, 1 * kNanosecond);
    EXPECT_EQ(f.hier.stats().l1Hits.value(), 1u);
}

TEST(Hierarchy, L2HitLatencyIsCumulative)
{
    Fixture f;
    f.hier.access(LogicalAddr(0x40), false, nullptr);
    f.run();
    // Evict 0x40 from the tiny L1 (16 sets): two more lines in the
    // same L1 set (stride = 16 blocks).
    f.hier.access(LogicalAddr(0x40 + 16 * kBlockSize), false, nullptr);
    f.run();
    f.hier.access(LogicalAddr(0x40 + 32 * kBlockSize), false, nullptr);
    f.run();
    AccessTicket t = f.hier.access(LogicalAddr(0x40), false, nullptr);
    EXPECT_EQ(t.outcome, AccessOutcome::Hit);
    EXPECT_EQ(t.latency, 7 * kNanosecond); // L1 + L2
    EXPECT_EQ(f.hier.stats().l2Hits.value(), 1u);
}

TEST(Hierarchy, StoreMissFetchesLineThenDirtiesL1)
{
    Fixture f;
    bool done = false;
    AccessTicket t = f.hier.access(LogicalAddr(0x80), true, [&] { done = true; });
    EXPECT_EQ(t.outcome, AccessOutcome::Miss);
    f.run();
    EXPECT_TRUE(done);
    // The store-miss generated a memory *read* (fill), no write yet.
    EXPECT_EQ(f.ctrl.stats().demandReads.value(), 1u);
    EXPECT_EQ(f.ctrl.stats().acceptedWritebacks.value(), 0u);
}

TEST(Hierarchy, DirtyLineWritesBackOnLlcEviction)
{
    Fixture f;
    // Dirty one line, then stream enough lines through the same LLC
    // set to evict it everywhere.
    f.hier.access(LogicalAddr(0x40), true, nullptr);
    f.run();
    // LLC: 64 sets x 8 ways; same-set stride is 64 blocks.
    for (int i = 1; i <= 12; ++i) {
        f.hier.access(LogicalAddr(0x40 +
                                  static_cast<Addr>(i) * 64 * kBlockSize),
                      false, nullptr);
        f.run();
    }
    EXPECT_GE(f.ctrl.stats().acceptedWritebacks.value(), 1u);
}

TEST(Hierarchy, MshrMergesSameBlockMisses)
{
    Fixture f;
    int completions = 0;
    auto cb = [&] { ++completions; };
    f.hier.access(LogicalAddr(0x100), false, cb);
    f.hier.access(LogicalAddr(0x100), true, cb);
    f.hier.access(LogicalAddr(0x11F), false, cb); // same block, odd offset
    EXPECT_EQ(f.hier.stats().llcMisses.value(), 1u);
    EXPECT_EQ(f.hier.stats().mshrMerges.value(), 2u);
    EXPECT_EQ(f.hier.outstandingMisses(), 1u);
    f.run();
    EXPECT_EQ(completions, 3);
    // One memory read served all three.
    EXPECT_EQ(f.ctrl.stats().demandReads.value(), 1u);
}

TEST(Hierarchy, MshrLimitBlocksAndRetries)
{
    Fixture f;
    int completions = 0;
    auto cb = [&] { ++completions; };
    for (int i = 0; i < 4; ++i) {
        AccessTicket t = f.hier.access(
            LogicalAddr(static_cast<Addr>(i) * 4096 + 0x40), false, cb);
        EXPECT_EQ(t.outcome, AccessOutcome::Miss);
    }
    AccessTicket blocked =
        f.hier.access(LogicalAddr(5 * 4096 + 0x40), false, cb);
    EXPECT_EQ(blocked.outcome, AccessOutcome::Blocked);
    EXPECT_EQ(f.hier.stats().blocked.value(), 1u);

    bool retried = false;
    f.hier.setRetryCallback([&] { retried = true; });
    f.run();
    EXPECT_TRUE(retried);
    EXPECT_EQ(completions, 4);
}

TEST(Hierarchy, MergedStoreDirtiesTheFill)
{
    Fixture f;
    f.hier.access(LogicalAddr(0x200), false, nullptr);
    f.hier.access(LogicalAddr(0x200), true, nullptr); // merged store
    f.run();
    // The L1 line must be dirty: evicting it must produce an L2 write.
    // Touch two more same-L1-set lines to evict 0x200 from L1.
    f.hier.access(LogicalAddr(0x200 + 16 * kBlockSize), false, nullptr);
    f.run();
    f.hier.access(LogicalAddr(0x200 + 32 * kBlockSize), false, nullptr);
    f.run();
    // ...then push it out of L2 (32 sets x 4 ways; stride 32 blocks)
    // and out of the LLC. Simplest check: the dirty bit still lives
    // somewhere below L1 — count dirty lines across arrays via LLC
    // eviction pressure later. Here we just assert no write back has
    // been *lost* (nothing reached memory yet).
    EXPECT_EQ(f.ctrl.stats().acceptedWritebacks.value(), 0u);
}

TEST(Hierarchy, PrimeInstallsInAllLevels)
{
    Fixture f;
    f.hier.prime(LogicalAddr(0x40), false);
    AccessTicket t = f.hier.access(LogicalAddr(0x40), false, nullptr);
    EXPECT_EQ(t.outcome, AccessOutcome::Hit);
    EXPECT_EQ(t.latency, 1 * kNanosecond);
    // Prime produced no stats and no memory traffic.
    EXPECT_EQ(f.hier.stats().llcMisses.value(), 0u);
    EXPECT_EQ(f.ctrl.stats().demandReads.value(), 0u);
}

TEST(Hierarchy, ReadLatencyIncludesLookupPath)
{
    Fixture f;
    Tick start = f.eq.curTick();
    Tick done_at = 0;
    f.hier.access(LogicalAddr(0x40), false, [&] { done_at = f.eq.curTick(); });
    f.run();
    // Lookup path 1+6+17.5 = 24.5 ns, memory read 142.5 ns.
    EXPECT_EQ(done_at - start, Tick(24.5 * kNanosecond) +
                                   Tick(142.5 * kNanosecond));
}

TEST(Hierarchy, LlcMissRateMatchesStreamingPattern)
{
    Fixture f;
    // Stream 1000 distinct blocks: every access must miss the LLC.
    for (int i = 0; i < 1000; ++i) {
        f.hier.access(LogicalAddr(static_cast<Addr>(i + 100) * kBlockSize),
                      false,
                      nullptr);
        f.run(kMicrosecond);
    }
    EXPECT_EQ(f.hier.stats().llcMisses.value(), 1000u);
    EXPECT_EQ(f.hier.stats().l1Hits.value(), 0u);
}
