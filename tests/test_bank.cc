/** @file Tests for bank and rank (tFAW) device state. */

#include <gtest/gtest.h>

#include "nvm/bank.hh"
#include "sim/logging.hh"

using namespace mellowsim;

namespace
{

MemRequest
req(Addr addr)
{
    MemRequest r;
    r.addr = LogicalAddr(addr);
    r.loc.bank = BankId(0);
    r.loc.rowTag = addr >> 10;
    return r;
}

} // namespace

TEST(Bank, StartsIdleWithNoOpenRow)
{
    Bank b;
    EXPECT_TRUE(b.idleAt(0));
    EXPECT_EQ(b.openRowTag(), kNoOpenRow);
    EXPECT_FALSE(b.writing(0));
}

TEST(Bank, ReadOccupiesAndOpensRow)
{
    Bank b;
    b.startRead(100, 50, 7);
    EXPECT_FALSE(b.idleAt(120));
    EXPECT_TRUE(b.idleAt(150));
    EXPECT_EQ(b.busyUntil(), 150u);
    EXPECT_EQ(b.openRowTag(), 7u);
    EXPECT_EQ(b.busyTracker().busyTicks(), 50u);
}

TEST(Bank, ReadOnBusyBankPanics)
{
    Bank b;
    b.startRead(0, 100, 1);
    EXPECT_THROW(b.startRead(50, 10, 2), PanicError);
}

TEST(Bank, WriteOccupiesThroughPulse)
{
    Bank b;
    b.startWrite(0, 20, 150, req(0x40), false, false);
    EXPECT_TRUE(b.writing(100));
    EXPECT_FALSE(b.idleAt(169));
    EXPECT_TRUE(b.idleAt(170));
    EXPECT_FALSE(b.cancellableWrite(100));
    MemRequest done = b.finishWrite();
    EXPECT_EQ(done.addr.value(), 0x40u);
    EXPECT_FALSE(b.writing(100));
}

TEST(Bank, WriteInvalidatesMatchingOpenRow)
{
    Bank b;
    b.startRead(0, 10, 3);
    MemRequest r = req(3 << 10); // rowTag 3
    b.startWrite(10, 12, 150, std::move(r), false, false);
    EXPECT_EQ(b.openRowTag(), kNoOpenRow);
}

TEST(Bank, WriteKeepsUnrelatedOpenRow)
{
    Bank b;
    b.startRead(0, 10, 3);
    MemRequest r = req(9 << 10); // rowTag 9
    b.startWrite(10, 12, 150, std::move(r), false, false);
    EXPECT_EQ(b.openRowTag(), 3u);
}

TEST(Bank, CancellableWriteCanBeCancelled)
{
    Bank b;
    b.startWrite(0, 20, 150, req(0x80), true, true);
    EXPECT_TRUE(b.cancellableWrite(50));
    Tick elapsed = 0;
    MemRequest r = b.cancelWrite(100, &elapsed);
    EXPECT_EQ(r.addr.value(), 0x80u);
    EXPECT_EQ(elapsed, 80u); // pulse started at 20
    EXPECT_TRUE(b.idleAt(100));
    EXPECT_FALSE(b.writing(100));
    // Busy accounting gives back the unused reservation.
    EXPECT_EQ(b.busyTracker().busyTicks(), 100u);
}

TEST(Bank, CancelBeforePulseStartsReportsZeroElapsed)
{
    Bank b;
    b.startWrite(0, 50, 150, req(0x80), true, true);
    Tick elapsed = 99;
    b.cancelWrite(30, &elapsed);
    EXPECT_EQ(elapsed, 0u);
}

TEST(Bank, CancelNonCancellablePanics)
{
    Bank b;
    b.startWrite(0, 10, 150, req(0x0), false, false);
    Tick elapsed = 0;
    EXPECT_THROW(b.cancelWrite(50, &elapsed), PanicError);
}

TEST(Bank, CancelAfterCompletionPanics)
{
    Bank b;
    b.startWrite(0, 10, 100, req(0x0), true, true);
    Tick elapsed = 0;
    EXPECT_THROW(b.cancelWrite(200, &elapsed), PanicError);
}

TEST(Bank, FinishWithoutWritePanics)
{
    Bank b;
    EXPECT_THROW(b.finishWrite(), PanicError);
}

TEST(Bank, SlowFlagAndPulseRecorded)
{
    Bank b;
    b.startWrite(0, 5, 450, req(0x0), true, true);
    EXPECT_TRUE(b.writeSlow());
    EXPECT_EQ(b.writePulse(), 450u);
}

TEST(Rank, FourActivatesFreeThenWindowLimits)
{
    Rank r;
    Tick tfaw = 50;
    // First four activates unconstrained.
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(r.nextActivateAllowed(10 * i, tfaw),
                  static_cast<Tick>(10 * i));
        r.recordActivate(10 * i);
    }
    // Fifth must wait for the first + tFAW = 50.
    EXPECT_EQ(r.nextActivateAllowed(35, tfaw), 50u);
    r.recordActivate(50);
    // Sixth gated by the second (10 + 50 = 60).
    EXPECT_EQ(r.nextActivateAllowed(55, tfaw), 60u);
}

TEST(Rank, WindowSlidesWithTime)
{
    Rank r;
    Tick tfaw = 50;
    for (int i = 0; i < 4; ++i)
        r.recordActivate(0);
    // Far in the future the window no longer binds.
    EXPECT_EQ(r.nextActivateAllowed(1000, tfaw), 1000u);
}

TEST(Bank, PauseAndResumePreservesPulse)
{
    Bank b;
    b.startWrite(0, 20, 450, req(0x40), true, false, /*pausable=*/true);
    EXPECT_TRUE(b.pausableWrite(100));
    b.pauseWrite(100);
    EXPECT_TRUE(b.hasPausedWrite());
    EXPECT_TRUE(b.idleAt(100));
    EXPECT_FALSE(b.writing(100));
    // 80 ns of pulse elapsed; 370 remain.
    Tick done = b.resumeWrite(300);
    EXPECT_EQ(done, 300u + 370u);
    EXPECT_FALSE(b.hasPausedWrite());
    EXPECT_TRUE(b.writing(400));
    MemRequest r = b.finishWrite();
    EXPECT_EQ(r.addr.value(), 0x40u);
    // Busy time: 100 (before pause) + 370 (after resume).
    EXPECT_EQ(b.busyTracker().busyTicks(), 470u);
}

TEST(Bank, PauseBeforePulseStartKeepsWholePulse)
{
    Bank b;
    b.startWrite(0, 50, 150, req(0x40), false, false, true);
    b.pauseWrite(30); // still in the data-burst phase
    Tick done = b.resumeWrite(100);
    EXPECT_EQ(done, 250u);
}

TEST(Bank, PauseRepeatedly)
{
    Bank b;
    b.startWrite(0, 0, 400, req(0x0), true, false, true);
    b.pauseWrite(100); // 300 left
    b.resumeWrite(200);
    b.pauseWrite(300); // 200 left
    Tick done = b.resumeWrite(1000);
    EXPECT_EQ(done, 1200u);
}

TEST(Bank, NonPausableWriteCannotPause)
{
    Bank b;
    b.startWrite(0, 0, 150, req(0x0), false, true, false);
    EXPECT_FALSE(b.pausableWrite(50));
    EXPECT_THROW(b.pauseWrite(50), PanicError);
}

TEST(Bank, StartWriteOverPausedWritePanics)
{
    Bank b;
    b.startWrite(0, 0, 150, req(0x0), false, false, true);
    b.pauseWrite(50);
    EXPECT_THROW(b.startWrite(60, 60, 150, req(0x40), false, false),
                 PanicError);
}

TEST(Bank, ResumeWithoutPausePanics)
{
    Bank b;
    EXPECT_THROW(b.resumeWrite(10), PanicError);
}
