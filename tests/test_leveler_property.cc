/**
 * @file
 * Property test composing the two wear levelers.
 *
 * Section VII of the paper evaluates Start-Gap and Security Refresh
 * as alternative leveling layers. Stacking them — Security Refresh's
 * XOR remap feeding Start-Gap's rotation — must still be a valid
 * address map: at every point of a long random write stream the
 * composed logical-to-physical function has to stay injective, and
 * each leveler's own range contract has to hold. A single missed
 * corner (a gap move racing a refresh step, a key rotation mid-round)
 * would alias two logical blocks onto one physical line and silently
 * corrupt wear accounting, so this sweeps thousands of interleaved
 * steps rather than hand-picked states.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "wear/security_refresh.hh"
#include "wear/start_gap.hh"

using namespace mellowsim;

namespace
{

constexpr std::uint64_t kBlocks = 64; // power of two for SecurityRefresh

/**
 * Assert the composed map logical -> SR -> SG is injective and lands
 * inside Start-Gap's physical range [0, N].
 */
void
expectComposedBijection(const SecurityRefresh &sr, const StartGap &sg,
                        std::uint64_t step)
{
    std::vector<bool> hit(sg.numPhysicalBlocks(), false);
    for (std::uint64_t logical = 0; logical < kBlocks; ++logical) {
        std::uint64_t mid = sr.remap(logical);
        ASSERT_LT(mid, kBlocks)
            << "SecurityRefresh left its range at step " << step;
        std::uint64_t phys = sg.remap(mid);
        ASSERT_LT(phys, sg.numPhysicalBlocks())
            << "StartGap left its range at step " << step;
        ASSERT_FALSE(hit[phys])
            << "two logical blocks collided on physical " << phys
            << " at step " << step;
        hit[phys] = true;
    }
}

} // namespace

TEST(LevelerProperty, ComposedRemapStaysInjectiveUnderRandomStream)
{
    // Short periods so both levelers churn constantly: the gap moves
    // every 3 writes and the refresh pointer every 2, guaranteeing
    // many interleavings (including several full key rotations).
    SecurityRefresh sr(kBlocks, /*refreshInterval=*/2, /*seed=*/0xFEED);
    StartGap sg(kBlocks, /*gapWritePeriod=*/3);
    Rng rng(0xC0FFEE);

    expectComposedBijection(sr, sg, 0);
    for (std::uint64_t step = 1; step <= 4000; ++step) {
        std::uint64_t logical = rng.nextBounded(kBlocks);
        // Drive both layers the way a controller would: the demand
        // write lands at sr.remap(logical) inside Start-Gap's domain,
        // and each layer sees one noteWrite per demand write.
        std::uint64_t mid = sr.remap(logical);
        (void)sg.remap(mid);
        std::uint64_t extra[2] = {0, 0};
        sr.noteWrite(extra);
        sg.noteWrite(extra);
        expectComposedBijection(sr, sg, step);
    }
    // Sanity: the stream was long enough to rotate keys and wrap gaps.
    EXPECT_GT(sr.rounds(), 0u);
    EXPECT_GT(sg.gapMoves(), kBlocks);
}

TEST(LevelerProperty, ComposedRemapCoversEveryDataBlockOverTime)
{
    // Rotation property: over a long uniform stream every logical
    // block should visit many distinct physical slots — that is the
    // whole point of stacking randomization on top of rotation.
    SecurityRefresh sr(kBlocks, 2, 0xFEED);
    StartGap sg(kBlocks, 3);
    Rng rng(0xF00D);

    std::vector<std::vector<bool>> visited(
        kBlocks, std::vector<bool>(kBlocks + 1, false));
    for (std::uint64_t step = 0; step < 20000; ++step) {
        for (std::uint64_t logical = 0; logical < kBlocks; ++logical)
            visited[logical][sg.remap(sr.remap(logical))] = true;
        std::uint64_t extra[2] = {0, 0};
        sr.noteWrite(extra);
        sg.noteWrite(extra);
        (void)rng.next();
    }
    for (std::uint64_t logical = 0; logical < kBlocks; ++logical) {
        std::uint64_t slots = 0;
        for (bool v : visited[logical])
            slots += v ? 1 : 0;
        // Far more than half the physical slots seen by every block.
        EXPECT_GT(slots, kBlocks / 2)
            << "logical block " << logical << " barely moved";
    }
}
