/** @file State-by-state tests of the Figure 9 decision logic. */

#include <gtest/gtest.h>

#include "mellow/decision.hh"

using namespace mellowsim;
using namespace mellowsim::policies;

namespace
{

BankQueueView
view(unsigned reads, unsigned writes, unsigned eager,
     bool drain = false, bool quota = false)
{
    BankQueueView v;
    v.readsForBank = reads;
    v.writesForBank = writes;
    v.eagerForBank = eager;
    v.drainMode = drain;
    v.quotaExceeded = quota;
    return v;
}

} // namespace

// --- Reads always win over writes outside a drain ------------------

TEST(Decision, ReadsBlockDemandWrites)
{
    for (const auto &p : paperPolicySet()) {
        EXPECT_EQ(decideWrite(p, view(1, 3, 0)), WriteDecision::None)
            << p.name;
    }
}

TEST(Decision, ReadsBlockEagerWrites)
{
    for (const auto &p : paperPolicySet()) {
        EXPECT_EQ(decideWrite(p, view(2, 0, 1)), WriteDecision::None)
            << p.name;
    }
}

// --- Figure 9 branches under BE-Mellow ------------------------------

TEST(Decision, SingleWriteIssuesSlow)
{
    EXPECT_EQ(decideWrite(beMellow(), view(0, 1, 0)),
              WriteDecision::SlowWrite);
    EXPECT_EQ(decideWrite(bMellow(), view(0, 1, 0)),
              WriteDecision::SlowWrite);
}

TEST(Decision, MultipleWritesIssueNormalWithoutQuota)
{
    EXPECT_EQ(decideWrite(beMellow(), view(0, 2, 0)),
              WriteDecision::NormalWrite);
    EXPECT_EQ(decideWrite(beMellow(), view(0, 7, 3)),
              WriteDecision::NormalWrite);
}

TEST(Decision, MultipleWritesIssueSlowWhenQuotaExceeded)
{
    auto p = beMellow().withSC().withWQ();
    EXPECT_EQ(decideWrite(p, view(0, 2, 0, false, true)),
              WriteDecision::SlowWrite);
    EXPECT_EQ(decideWrite(p, view(0, 2, 0, false, false)),
              WriteDecision::NormalWrite);
}

TEST(Decision, EmptyWriteQueueDrainsEagerSlow)
{
    EXPECT_EQ(decideWrite(beMellow(), view(0, 0, 1)),
              WriteDecision::EagerSlow);
}

TEST(Decision, NothingPendingIssuesNothing)
{
    for (const auto &p : paperPolicySet()) {
        EXPECT_EQ(decideWrite(p, view(0, 0, 0)), WriteDecision::None)
            << p.name;
    }
}

// --- Per-policy speed selection --------------------------------------

TEST(Decision, NormAlwaysNormalSpeed)
{
    EXPECT_EQ(decideWrite(norm(), view(0, 1, 0)),
              WriteDecision::NormalWrite);
    EXPECT_EQ(decideWrite(norm(), view(0, 5, 0)),
              WriteDecision::NormalWrite);
}

TEST(Decision, SlowAlwaysSlowSpeed)
{
    EXPECT_EQ(decideWrite(slow(), view(0, 1, 0)),
              WriteDecision::SlowWrite);
    EXPECT_EQ(decideWrite(slow(), view(0, 5, 0)),
              WriteDecision::SlowWrite);
}

TEST(Decision, ENormIssuesEagerAtNormalSpeed)
{
    EXPECT_EQ(decideWrite(eNorm(), view(0, 0, 2)),
              WriteDecision::EagerNormal);
    // Demand writes stay normal too.
    EXPECT_EQ(decideWrite(eNorm(), view(0, 1, 0)),
              WriteDecision::NormalWrite);
}

TEST(Decision, ESlowIssuesEverythingSlow)
{
    EXPECT_EQ(decideWrite(eSlow(), view(0, 1, 0)),
              WriteDecision::SlowWrite);
    EXPECT_EQ(decideWrite(eSlow(), view(0, 0, 1)),
              WriteDecision::EagerSlow);
}

TEST(Decision, NormWithQuotaForcesSlowOnlyWhenExceeded)
{
    auto p = norm().withWQ();
    EXPECT_EQ(decideWrite(p, view(0, 1, 0, false, true)),
              WriteDecision::SlowWrite);
    EXPECT_EQ(decideWrite(p, view(0, 1, 0, false, false)),
              WriteDecision::NormalWrite);
}

TEST(Decision, NonEagerPoliciesIgnoreEagerQueue)
{
    EXPECT_EQ(decideWrite(norm(), view(0, 0, 3)), WriteDecision::None);
    EXPECT_EQ(decideWrite(bMellow(), view(0, 0, 3)),
              WriteDecision::None);
}

// --- Drain-mode behaviour --------------------------------------------

TEST(Decision, DrainIssuesWritesDespiteReads)
{
    EXPECT_EQ(decideWrite(norm(), view(4, 3, 0, true)),
              WriteDecision::NormalWrite);
    EXPECT_EQ(decideWrite(slow(), view(4, 3, 0, true)),
              WriteDecision::SlowWrite);
}

TEST(Decision, DrainWithReadsNeverBankAwareSlow)
{
    // Bank-aware slowness requires the write to be the *only* request
    // for the bank; a read present during a drain disqualifies it.
    EXPECT_EQ(decideWrite(beMellow(), view(1, 1, 0, true)),
              WriteDecision::NormalWrite);
    // With no reads, a single write still goes slow during drains.
    EXPECT_EQ(decideWrite(beMellow(), view(0, 1, 0, true)),
              WriteDecision::SlowWrite);
}

TEST(Decision, EagerQueueNeverParticipatesInDrains)
{
    // Even in drain mode, eager writes stay blocked behind reads.
    EXPECT_EQ(decideWrite(beMellow(), view(1, 0, 4, true)),
              WriteDecision::None);
}

// --- Cancellation eligibility ---------------------------------------

TEST(Decision, CancellableFollowsSpeedFlags)
{
    auto sc = beMellow().withSC();
    EXPECT_TRUE(cancellable(sc, WriteDecision::SlowWrite));
    EXPECT_TRUE(cancellable(sc, WriteDecision::EagerSlow));
    EXPECT_FALSE(cancellable(sc, WriteDecision::NormalWrite));

    auto nc = eNorm().withNC();
    EXPECT_TRUE(cancellable(nc, WriteDecision::NormalWrite));
    EXPECT_TRUE(cancellable(nc, WriteDecision::EagerNormal));
    EXPECT_FALSE(cancellable(nc, WriteDecision::SlowWrite));

    EXPECT_FALSE(cancellable(norm(), WriteDecision::NormalWrite));
    EXPECT_FALSE(cancellable(sc, WriteDecision::None));
}

TEST(Decision, IsSlowDecision)
{
    EXPECT_TRUE(isSlowDecision(WriteDecision::SlowWrite));
    EXPECT_TRUE(isSlowDecision(WriteDecision::EagerSlow));
    EXPECT_FALSE(isSlowDecision(WriteDecision::NormalWrite));
    EXPECT_FALSE(isSlowDecision(WriteDecision::EagerNormal));
    EXPECT_FALSE(isSlowDecision(WriteDecision::None));
}

// --- Exhaustive sweep: the decision is total and consistent ---------

class DecisionSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool,
                                                 bool>>
{
};

TEST_P(DecisionSweep, TotalAndConsistent)
{
    auto [reads, writes, eager, drain, quota] = GetParam();
    BankQueueView v = view(static_cast<unsigned>(reads),
                           static_cast<unsigned>(writes),
                           static_cast<unsigned>(eager), drain, quota);
    for (const auto &p : paperPolicySet()) {
        WriteDecision d = decideWrite(p, v);
        // Never issue from an empty queue.
        if (d == WriteDecision::NormalWrite ||
            d == WriteDecision::SlowWrite) {
            EXPECT_GT(v.writesForBank, 0u) << p.name;
        }
        if (d == WriteDecision::EagerSlow ||
            d == WriteDecision::EagerNormal) {
            EXPECT_GT(v.eagerForBank, 0u) << p.name;
            EXPECT_EQ(v.writesForBank, 0u) << p.name;
            EXPECT_TRUE(p.eager) << p.name;
        }
        // Globally slow policies never issue a normal write.
        if (p.globalSlow) {
            EXPECT_NE(d, WriteDecision::NormalWrite) << p.name;
        }
        // Quota-exceeded banks never issue a normal demand write.
        if (p.wearQuota && quota) {
            EXPECT_NE(d, WriteDecision::NormalWrite) << p.name;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllStates, DecisionSweep,
    ::testing::Combine(::testing::Values(0, 1, 3),
                       ::testing::Values(0, 1, 2, 5),
                       ::testing::Values(0, 1, 4),
                       ::testing::Bool(), ::testing::Bool()));
