/** @file Tests reproducing Tables V and VI exactly. */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"
#include "sim/logging.hh"

using namespace mellowsim;

TEST(EnergyModel, TableVCellEnergies)
{
    EXPECT_DOUBLE_EQ(cellEnergyPj(CellType::CellA).value(), 0.1);
    EXPECT_DOUBLE_EQ(cellEnergyPj(CellType::CellB).value(), 0.2);
    EXPECT_DOUBLE_EQ(cellEnergyPj(CellType::CellC).value(), 0.4);
    EXPECT_DOUBLE_EQ(cellEnergyPj(CellType::CellD).value(), 0.8);
    EXPECT_DOUBLE_EQ(cellEnergyPj(CellType::CellE).value(), 1.6);
}

TEST(EnergyModel, CellNames)
{
    EXPECT_EQ(cellTypeName(CellType::CellA), "CellA");
    EXPECT_EQ(cellTypeName(CellType::CellE), "CellE");
}

/** Table VI: normal write energy per cell type, to 0.1 pJ. */
TEST(EnergyModel, TableVINormalWriteEnergies)
{
    const double expect[] = {248.8, 300.0, 402.4, 607.2, 1016.8};
    for (std::size_t i = 0; i < kAllCellTypes.size(); ++i) {
        EnergyParams p;
        p.cell = kAllCellTypes[i];
        EnergyModel m(p);
        EXPECT_NEAR(m.writeEnergyPj(false).value(), expect[i], 0.05)
            << cellTypeName(kAllCellTypes[i]);
    }
}

/** Table VI: slow write energy per cell type. */
TEST(EnergyModel, TableVISlowWriteEnergies)
{
    const double expect[] = {314.5, 432.3, 667.8, 1138.8, 2080.9};
    for (std::size_t i = 0; i < kAllCellTypes.size(); ++i) {
        EnergyParams p;
        p.cell = kAllCellTypes[i];
        EnergyModel m(p);
        EXPECT_NEAR(m.writeEnergyPj(true).value(), expect[i], 0.35)
            << cellTypeName(kAllCellTypes[i]);
    }
}

/** Table VI: slow/normal ratio column (1.26 ... 2.05). */
TEST(EnergyModel, TableVISlowNormalRatios)
{
    const double expect[] = {1.26, 1.44, 1.66, 1.88, 2.05};
    for (std::size_t i = 0; i < kAllCellTypes.size(); ++i) {
        EnergyParams p;
        p.cell = kAllCellTypes[i];
        EnergyModel m(p);
        EXPECT_NEAR(m.slowNormalWriteRatio(), expect[i], 0.005)
            << cellTypeName(kAllCellTypes[i]);
    }
}

TEST(EnergyModel, ReadEnergies)
{
    EnergyModel m;
    EXPECT_DOUBLE_EQ(m.readEnergyPj(false).value(), 1503.0); // buffer read
    EXPECT_DOUBLE_EQ(m.readEnergyPj(true).value(), 100.0);   // row-buffer hit
}

TEST(EnergyModel, AccumulatesReads)
{
    EnergyModel m;
    m.recordRead(true);
    m.recordRead(false);
    m.recordRead(false);
    EXPECT_DOUBLE_EQ(m.stats().readPj.value(), 100.0 + 2 * 1503.0);
    EXPECT_EQ(m.stats().rowHitReads, 1u);
    EXPECT_EQ(m.stats().bufferReads, 2u);
}

TEST(EnergyModel, AccumulatesWrites)
{
    EnergyModel m; // CellC
    m.recordWrite(false);
    m.recordWrite(true);
    EXPECT_NEAR(m.stats().writePj.value(), 402.4 + 667.8, 0.5);
    EXPECT_EQ(m.stats().normalWrites, 1u);
    EXPECT_EQ(m.stats().slowWrites, 1u);
    EXPECT_NEAR(m.stats().totalPj().value(), m.stats().writePj.value(),
                1e-9);
}

TEST(EnergyModel, CancelledWriteChargesProgress)
{
    EnergyModel m;
    m.recordCancelledWrite(false, 0.5);
    EXPECT_NEAR(m.stats().writePj.value(), 402.4 * 0.5, 0.3);
    EXPECT_EQ(m.stats().cancelledWrites, 1u);
    EXPECT_THROW(m.recordCancelledWrite(false, 1.5), PanicError);
    EXPECT_THROW(m.recordCancelledWrite(false, -0.1), PanicError);
}

TEST(EnergyModel, SlowEnergyScalesWithCellShareOnly)
{
    // The peripheral component is constant, so the slow/normal ratio
    // must shrink as the cell energy shrinks (Section VI-F).
    EnergyParams small;
    small.cell = CellType::CellA;
    EnergyParams big;
    big.cell = CellType::CellE;
    EXPECT_LT(EnergyModel(small).slowNormalWriteRatio(),
              EnergyModel(big).slowNormalWriteRatio());
}

TEST(EnergyModel, RejectsBadParameters)
{
    EnergyParams p;
    p.peripheralWritePj = Picojoules(-1.0);
    EXPECT_THROW(EnergyModel{p}, FatalError);
    p = EnergyParams{};
    p.bitsPerWrite = 0;
    EXPECT_THROW(EnergyModel{p}, FatalError);
    p = EnergyParams{};
    p.slowCellEnergyFactor = 0.0;
    EXPECT_THROW(EnergyModel{p}, FatalError);
}
