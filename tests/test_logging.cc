/** @file Unit tests for the logging/error helpers. */

#include <gtest/gtest.h>

#include <string>

#include "sim/logging.hh"

using namespace mellowsim;

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("boom %d", 42), PanicError);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config %s", "x"), FatalError);
}

TEST(Logging, PanicMessageContainsTextAndLocation)
{
    try {
        panic("custom message %d", 7);
        FAIL() << "panic did not throw";
    } catch (const PanicError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("custom message 7"), std::string::npos);
        EXPECT_NE(what.find("test_logging.cc"), std::string::npos);
    }
}

TEST(Logging, PanicIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(panic_if(false, "no"));
    EXPECT_THROW(panic_if(true, "yes"), PanicError);
}

TEST(Logging, FatalIfOnlyFiresWhenTrue)
{
    EXPECT_NO_THROW(fatal_if(false, "no"));
    EXPECT_THROW(fatal_if(true, "yes"), FatalError);
}

TEST(Logging, FormatHandlesLongStrings)
{
    std::string big(10000, 'x');
    std::string out = logFormat("%s", big.c_str());
    EXPECT_EQ(out.size(), big.size());
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    Logger::setQuiet(true);
    EXPECT_NO_THROW(warn("just a warning %d", 1));
    EXPECT_NO_THROW(inform("just info"));
    Logger::setQuiet(false);
}

TEST(Logging, QuietFlagRoundTrips)
{
    Logger::setQuiet(true);
    EXPECT_TRUE(Logger::quiet());
    Logger::setQuiet(false);
    EXPECT_FALSE(Logger::quiet());
}
