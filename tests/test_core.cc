/** @file Tests for the trace-driven core model. */

#include <gtest/gtest.h>

#include <deque>

#include "cpu/core.hh"
#include "nvm/controller.hh"
#include "mellow/policy.hh"
#include "sim/logging.hh"

using namespace mellowsim;

namespace
{

/** Scripted workload: replays a fixed list of ops, then idles. */
class ScriptWorkload : public Workload
{
  public:
    explicit ScriptWorkload(std::deque<Op> ops) : _ops(std::move(ops))
    {
        _info.name = "script";
    }

    Op
    next() override
    {
        if (_ops.empty()) {
            Op idle;
            idle.gap = 1000;
            idle.addr = (_fill++ % 4096) * kBlockSize;
            return idle;
        }
        Op op = _ops.front();
        _ops.pop_front();
        return op;
    }

    const WorkloadInfo &info() const override { return _info; }

  private:
    std::deque<Op> _ops;
    WorkloadInfo _info;
    std::uint64_t _fill = 0;
};

Op
op(std::uint32_t gap, bool write, Addr addr, bool dep = false)
{
    Op o;
    o.gap = gap;
    o.isWrite = write;
    o.addr = addr;
    o.dependsOnPrev = dep;
    return o;
}

MemControllerConfig
memConfig()
{
    MemControllerConfig c;
    c.geometry.numBanks = 4;
    c.geometry.numRanks = 2;
    c.geometry.capacityBytes = 1ull << 22;
    c.policy = policies::norm();
    return c;
}

struct Fixture
{
    EventQueue eq;
    MemoryController ctrl;
    Hierarchy hier;
    ScriptWorkload wl;
    TraceCore core;

    Fixture(std::deque<Op> ops, CoreConfig cc = CoreConfig{})
        : ctrl(eq, memConfig()), hier(eq, HierarchyConfig{}, ctrl, 3),
          wl(std::move(ops)), core(eq, cc, wl, hier)
    {
    }

    void
    runToDone(std::uint64_t instrs)
    {
        core.start(instrs);
        while (!core.done() && eq.step()) {
        }
        ASSERT_TRUE(core.done());
    }
};

} // namespace

TEST(Core, PureComputeRunsAtIssueWidth)
{
    // One giant gap, no memory pressure: IPC == issue width.
    std::deque<Op> ops;
    for (int i = 0; i < 100; ++i)
        ops.push_back(op(799, false, 0x40)); // L1-resident block
    Fixture f(std::move(ops));
    f.hier.prime(LogicalAddr(0x40), false); // avoid the single cold miss
    f.runToDone(80'000);
    EXPECT_NEAR(f.core.ipc(), 8.0, 0.1);
}

TEST(Core, IpcRequiresFinishedRun)
{
    std::deque<Op> ops;
    Fixture f(std::move(ops));
    EXPECT_THROW(f.core.ipc(), PanicError);
}

TEST(Core, MemoryMissesReduceIpc)
{
    // Dependent cold misses with small gaps: IPC craters.
    std::deque<Op> ops;
    for (int i = 0; i < 200; ++i)
        ops.push_back(
            op(7, false, static_cast<Addr>(i + 64) * kBlockSize, true));
    Fixture f(std::move(ops));
    f.runToDone(1'500);
    // Each miss costs ~167 ns (~334 cycles) for 8 instructions.
    EXPECT_LT(f.core.ipc(), 0.2);
}

TEST(Core, IndependentMissesOverlap)
{
    // Same misses, but independent: MLP hides most of the latency.
    std::deque<Op> dep, indep;
    for (int i = 0; i < 200; ++i) {
        Addr a = static_cast<Addr>(i + 64) * kBlockSize;
        dep.push_back(op(7, false, a, true));
        indep.push_back(op(7, false, a, false));
    }
    Fixture fd(std::move(dep));
    fd.runToDone(1'500);
    Fixture fi(std::move(indep));
    fi.runToDone(1'500);
    EXPECT_GT(fi.core.ipc(), 2.5 * fd.core.ipc());
}

TEST(Core, StoresDoNotBlockRetirement)
{
    // A burst of store misses: the store buffer absorbs them (up to
    // the MSHR limit), so IPC stays far higher than the dependent-
    // load equivalent (~0.03 in MemoryMissesReduceIpc).
    std::deque<Op> ops;
    for (int i = 0; i < 64; ++i)
        ops.push_back(
            op(7, true, static_cast<Addr>(i + 64) * kBlockSize));
    Fixture f(std::move(ops));
    f.runToDone(512);
    EXPECT_GT(f.core.ipc(), 0.15);
    EXPECT_EQ(f.core.stats().stores, 64u);
}

TEST(Core, RobLimitStallsDistantLoads)
{
    CoreConfig small;
    small.robSize = 16;
    // A cold load followed by a long compute gap larger than the ROB:
    // the gap instructions cannot retire past the pending load.
    std::deque<Op> ops;
    ops.push_back(op(0, false, 64 * kBlockSize));
    ops.push_back(op(100, false, 0x40)); // 100 >> robSize
    Fixture f(std::move(ops), small);
    f.runToDone(102);
    EXPECT_GT(f.core.stats().robStalls, 0u);
    // Finish tick must cover the full miss latency (~167 ns).
    EXPECT_GT(f.core.finishTick(), Tick(160 * kNanosecond));
}

TEST(Core, MshrLimitCapsOutstandingMisses)
{
    CoreConfig cc;
    cc.maxOutstanding = 2;
    std::deque<Op> ops;
    for (int i = 0; i < 32; ++i)
        ops.push_back(
            op(0, false, static_cast<Addr>(i + 64) * kBlockSize));
    Fixture f(std::move(ops), cc);
    f.runToDone(30);
    EXPECT_GT(f.core.stats().mshrStalls, 0u);
}

TEST(Core, CountsLoadsAndStores)
{
    std::deque<Op> ops;
    ops.push_back(op(0, false, 0x40));
    ops.push_back(op(0, true, 0x40));
    ops.push_back(op(0, false, 0x80));
    Fixture f(std::move(ops));
    f.runToDone(3);
    EXPECT_EQ(f.core.stats().loads, 2u);
    EXPECT_EQ(f.core.stats().stores, 1u);
    EXPECT_EQ(f.core.stats().memOps, 3u);
    EXPECT_GE(f.core.stats().instructions, 3u);
}

TEST(Core, StartTwicePanics)
{
    Fixture f({});
    f.core.start(10);
    EXPECT_THROW(f.core.start(10), PanicError);
}

TEST(Core, ZeroInstructionLimitIsFatal)
{
    Fixture f({});
    EXPECT_THROW(f.core.start(0), FatalError);
}

TEST(Core, RejectsBadConfig)
{
    CoreConfig cc;
    cc.issueWidth = 0;
    EXPECT_THROW(Fixture({}, cc), FatalError);
    cc = CoreConfig{};
    cc.robSize = 0;
    EXPECT_THROW(Fixture({}, cc), FatalError);
    cc = CoreConfig{};
    cc.maxOutstanding = 0;
    EXPECT_THROW(Fixture({}, cc), FatalError);
}

TEST(Core, DependentRmwStoreDoesNotStallDispatch)
{
    // A load miss followed by a dependent store to the same block:
    // the store waits in the store buffer (its dirtying merges into
    // the load's MSHR), so dispatch finishes long before the miss
    // returns and only one memory read is generated.
    std::deque<Op> ops;
    ops.push_back(op(0, false, 64 * kBlockSize));
    ops.push_back(op(0, true, 64 * kBlockSize, true));
    Fixture f(std::move(ops));
    f.runToDone(2);
    EXPECT_LT(f.core.finishTick(), Tick(160 * kNanosecond));
    EXPECT_EQ(f.hier.stats().llcMisses.value(), 1u);
    EXPECT_EQ(f.hier.stats().mshrMerges.value(), 1u);
    EXPECT_EQ(f.core.stats().depStalls, 0u);
}

TEST(Core, DependentLoadStillStallsDispatch)
{
    // The chasing-load case keeps its dispatch stall.
    std::deque<Op> ops;
    ops.push_back(op(0, false, 64 * kBlockSize));
    ops.push_back(op(0, false, 128 * kBlockSize, true));
    Fixture f(std::move(ops));
    f.runToDone(2);
    EXPECT_GT(f.core.stats().depStalls, 0u);
    EXPECT_GE(f.core.finishTick(), Tick(160 * kNanosecond));
}
