/** @file Unit and statistical tests for the xorshift128+ RNG. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/rng.hh"

using namespace mellowsim;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, ZeroSeedWorks)
{
    Rng r(0);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 100; ++i)
        seen.insert(r.next());
    EXPECT_GT(seen.size(), 95u);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(r.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedOneAlwaysZero)
{
    Rng r(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.nextBounded(1), 0u);
}

TEST(Rng, BoundedIsRoughlyUniform)
{
    Rng r(123);
    constexpr int kBuckets = 16;
    constexpr int kDraws = 160000;
    int counts[kBuckets] = {};
    for (int i = 0; i < kDraws; ++i)
        ++counts[r.nextBounded(kBuckets)];
    // Each bucket should be within 5% of the expected count.
    for (int c : counts) {
        EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.05);
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(9);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        double v = r.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, BoolRespectsProbability)
{
    Rng r(11);
    int trues = 0;
    for (int i = 0; i < 100000; ++i)
        trues += r.nextBool(0.3);
    EXPECT_NEAR(trues / 100000.0, 0.3, 0.01);
}

TEST(Rng, BoolEdgeProbabilities)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.nextBool(0.0));
        EXPECT_TRUE(r.nextBool(1.0));
        EXPECT_FALSE(r.nextBool(-0.5));
        EXPECT_TRUE(r.nextBool(1.5));
    }
}

TEST(Rng, GeometricMeanMatches)
{
    Rng r(17);
    for (double mean : {0.5, 5.0, 80.0}) {
        double sum = 0.0;
        constexpr int kDraws = 200000;
        for (int i = 0; i < kDraws; ++i)
            sum += static_cast<double>(r.nextGeometric(mean));
        EXPECT_NEAR(sum / kDraws, mean, mean * 0.05 + 0.05);
    }
}

TEST(Rng, GeometricZeroMeanIsZero)
{
    Rng r(19);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.nextGeometric(0.0), 0u);
}
