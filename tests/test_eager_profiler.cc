/** @file Tests for the useless-LRU-position profiler (Figure 7). */

#include <gtest/gtest.h>

#include "cache/eager_profiler.hh"
#include "sim/logging.hh"

using namespace mellowsim;

namespace
{

EagerProfilerConfig
config(unsigned assoc = 8, double ratio = 1.0 / 32.0)
{
    EagerProfilerConfig c;
    c.assoc = assoc;
    c.thresholdRatio = ratio;
    return c;
}

} // namespace

TEST(EagerProfiler, NothingUselessBeforeFirstPeriod)
{
    EagerProfiler p(config());
    EXPECT_EQ(p.uselessFrom(), 8u);
    for (unsigned pos = 0; pos < 8; ++pos)
        EXPECT_FALSE(p.isUseless(pos));
}

TEST(EagerProfiler, FigureSevenScenario)
{
    // Figure 7: positions 3..7 accumulate < 1/32 of requests.
    EagerProfiler p(config(8));
    for (int i = 0; i < 700; ++i)
        p.notifyHit(0);
    for (int i = 0; i < 200; ++i)
        p.notifyHit(1);
    for (int i = 0; i < 70; ++i)
        p.notifyHit(2);
    // Tail positions: 20 hits total out of ~1000 -> but we need the
    // suffix to be < 1/32 (31.25): give 3..7 a total of 25 hits.
    for (int i = 0; i < 10; ++i)
        p.notifyHit(3);
    for (int i = 0; i < 6; ++i)
        p.notifyHit(4);
    for (int i = 0; i < 5; ++i)
        p.notifyHit(5);
    for (int i = 0; i < 3; ++i)
        p.notifyHit(6);
    for (int i = 0; i < 1; ++i)
        p.notifyHit(7);
    for (int i = 0; i < 5; ++i)
        p.notifyMiss();

    p.onSamplePeriod();
    EXPECT_EQ(p.uselessFrom(), 3u);
    EXPECT_FALSE(p.isUseless(2));
    EXPECT_TRUE(p.isUseless(3));
    EXPECT_TRUE(p.isUseless(7));
}

TEST(EagerProfiler, AllHitsAtMruMarksEverythingElseUseless)
{
    EagerProfiler p(config(8));
    for (int i = 0; i < 1000; ++i)
        p.notifyHit(0);
    p.onSamplePeriod();
    // Suffix 1..7 has zero hits < threshold; position 0 carries all.
    EXPECT_EQ(p.uselessFrom(), 1u);
}

TEST(EagerProfiler, UniformHitsMarksNothingUseless)
{
    EagerProfiler p(config(8, 1.0 / 32.0));
    for (unsigned pos = 0; pos < 8; ++pos) {
        for (int i = 0; i < 100; ++i)
            p.notifyHit(pos);
    }
    p.onSamplePeriod();
    // Every position carries 12.5% >> 1/32: only the empty suffix is
    // below threshold.
    EXPECT_EQ(p.uselessFrom(), 8u);
}

TEST(EagerProfiler, AllMissesKeepsEverythingUseless)
{
    EagerProfiler p(config(8));
    for (int i = 0; i < 1000; ++i)
        p.notifyMiss();
    p.onSamplePeriod();
    // No hits anywhere: the whole stack is useless (streaming).
    EXPECT_EQ(p.uselessFrom(), 0u);
}

TEST(EagerProfiler, IdlePeriodKeepsPreviousVerdict)
{
    EagerProfiler p(config(8));
    for (int i = 0; i < 1000; ++i)
        p.notifyMiss();
    p.onSamplePeriod();
    EXPECT_EQ(p.uselessFrom(), 0u);
    p.onSamplePeriod(); // no traffic at all
    EXPECT_EQ(p.uselessFrom(), 0u);
    EXPECT_EQ(p.periods(), 2u);
}

TEST(EagerProfiler, CountersResetEachPeriod)
{
    EagerProfiler p(config(4));
    p.notifyHit(0);
    p.notifyMiss();
    EXPECT_EQ(p.hitCounters()[0], 1u);
    EXPECT_EQ(p.missCounter(), 1u);
    p.onSamplePeriod();
    EXPECT_EQ(p.hitCounters()[0], 0u);
    EXPECT_EQ(p.missCounter(), 0u);
}

TEST(EagerProfiler, VerdictAdaptsAcrossPeriods)
{
    EagerProfiler p(config(4, 0.25));
    // Period 1: only MRU hits -> positions 1+ useless.
    for (int i = 0; i < 100; ++i)
        p.notifyHit(0);
    p.onSamplePeriod();
    EXPECT_EQ(p.uselessFrom(), 1u);
    // Period 2: heavy LRU reuse -> nothing useless.
    for (int i = 0; i < 100; ++i)
        p.notifyHit(3);
    p.onSamplePeriod();
    EXPECT_EQ(p.uselessFrom(), 4u);
}

TEST(EagerProfiler, ThresholdBoundaryIsStrict)
{
    // Suffix exactly equal to the threshold is NOT useless.
    EagerProfiler p(config(2, 0.25));
    for (int i = 0; i < 75; ++i)
        p.notifyHit(0);
    for (int i = 0; i < 25; ++i)
        p.notifyHit(1); // exactly 25% at the tail
    p.onSamplePeriod();
    EXPECT_EQ(p.uselessFrom(), 2u);
}

TEST(EagerProfiler, OutOfRangePositionPanics)
{
    EagerProfiler p(config(4));
    EXPECT_THROW(p.notifyHit(4), PanicError);
}

TEST(EagerProfiler, RejectsBadConfig)
{
    EagerProfilerConfig c = config();
    c.assoc = 0;
    EXPECT_THROW(EagerProfiler{c}, FatalError);
    c = config();
    c.thresholdRatio = 0.0;
    EXPECT_THROW(EagerProfiler{c}, FatalError);
    c = config();
    c.thresholdRatio = 1.5;
    EXPECT_THROW(EagerProfiler{c}, FatalError);
    c = config();
    c.samplePeriod = 0;
    EXPECT_THROW(EagerProfiler{c}, FatalError);
}

/** Property: uselessFrom is monotone in the threshold ratio. */
TEST(EagerProfiler, MonotoneInThreshold)
{
    unsigned prev = 0;
    bool first = true;
    for (double ratio : {1.0 / 128, 1.0 / 32, 1.0 / 8, 1.0 / 2}) {
        EagerProfiler p(config(8, ratio));
        // Geometric hit distribution over positions.
        int hits = 1 << 10;
        for (unsigned pos = 0; pos < 8; ++pos) {
            for (int i = 0; i < hits; ++i)
                p.notifyHit(pos);
            hits /= 2;
        }
        p.onSamplePeriod();
        if (!first) {
            EXPECT_LE(p.uselessFrom(), prev);
        }
        prev = p.uselessFrom();
        first = false;
    }
}
