/** @file Tests for Security-Refresh-style wear leveling. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sim/logging.hh"
#include "wear/security_refresh.hh"
#include "wear/wear_leveler.hh"
#include "wear/wear_tracker.hh"

using namespace mellowsim;

namespace
{

/** Assert the logical->physical map is a bijection. */
void
expectBijective(const SecurityRefresh &sr)
{
    std::set<std::uint64_t> used;
    for (std::uint64_t la = 0; la < sr.numBlocks(); ++la) {
        std::uint64_t pa = sr.remap(la);
        ASSERT_LT(pa, sr.numPhysicalBlocks());
        ASSERT_TRUE(used.insert(pa).second)
            << "collision at physical " << pa;
    }
    ASSERT_EQ(used.size(), sr.numBlocks());
}

} // namespace

TEST(SecurityRefresh, InitialMappingIsKeyedBijection)
{
    SecurityRefresh sr(64, 8, 1);
    expectBijective(sr);
    // XOR remapping with a non-zero key moves most blocks.
    int moved = 0;
    for (std::uint64_t la = 0; la < 64; ++la)
        moved += sr.remap(la) != la;
    EXPECT_GT(moved, 32);
}

TEST(SecurityRefresh, StaysBijectiveThroughRefreshSweep)
{
    SecurityRefresh sr(32, 1, 7); // refresh step on every write
    for (int i = 0; i < 32 * 4 + 5; ++i) {
        expectBijective(sr);
        std::uint64_t extra[2];
        sr.noteWrite(extra);
    }
}

TEST(SecurityRefresh, KeysRotateAfterFullRound)
{
    SecurityRefresh sr(16, 1, 7);
    std::uint64_t first_next = sr.nextKey();
    EXPECT_EQ(sr.rounds(), 0u);
    for (int i = 0; i < 16; ++i)
        sr.noteWrite();
    EXPECT_EQ(sr.rounds(), 1u);
    EXPECT_EQ(sr.currentKey(), first_next);
    EXPECT_NE(sr.nextKey(), sr.currentKey());
    expectBijective(sr);
}

TEST(SecurityRefresh, RefreshIntervalThrottlesSteps)
{
    SecurityRefresh sr(16, 4, 7);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(sr.noteWrite(), 0u);
    // 4th write advances the pointer (a swap may or may not occur
    // depending on the pair ordering, but the pointer moves).
    sr.noteWrite();
    EXPECT_EQ(sr.refreshPointer(), 1u);
}

TEST(SecurityRefresh, SwapsReportTwoExtraWrites)
{
    SecurityRefresh sr(64, 1, 7);
    std::uint64_t swaps = 0, steps = 0;
    std::uint64_t extra[2];
    for (int i = 0; i < 64; ++i) {
        unsigned n = sr.noteWrite(extra);
        EXPECT_TRUE(n == 0 || n == 2);
        if (n == 2) {
            ++swaps;
            EXPECT_LT(extra[0], 64u);
            EXPECT_LT(extra[1], 64u);
            EXPECT_NE(extra[0], extra[1]);
        }
        ++steps;
    }
    // Exactly one member of each pair triggers the swap: half the
    // pointer positions.
    EXPECT_EQ(swaps, 32u);
    EXPECT_EQ(steps, 64u);
}

TEST(SecurityRefresh, MappingChangesOnlyForRefreshedPairs)
{
    SecurityRefresh sr(64, 1, 9);
    std::map<std::uint64_t, std::uint64_t> before;
    for (std::uint64_t la = 0; la < 64; ++la)
        before[la] = sr.remap(la);
    std::uint64_t d = sr.currentKey() ^ sr.nextKey();

    // One refresh step: pair {0, d} is re-keyed, the rest untouched.
    sr.noteWrite();
    for (std::uint64_t la = 0; la < 64; ++la) {
        if (la == 0 || la == d) {
            EXPECT_NE(sr.remap(la), before[la]) << la;
        } else {
            EXPECT_EQ(sr.remap(la), before[la]) << la;
        }
    }
    expectBijective(sr);
}

TEST(SecurityRefresh, HotBlockVisitsManySlotsOverRounds)
{
    SecurityRefresh sr(32, 1, 11);
    std::set<std::uint64_t> homes;
    for (int i = 0; i < 32 * 20; ++i) {
        homes.insert(sr.remap(5));
        sr.noteWrite();
    }
    // 20 key rotations: the hot block should have seen many homes.
    EXPECT_GE(homes.size(), 10u);
}

TEST(SecurityRefresh, RejectsBadGeometry)
{
    EXPECT_THROW(SecurityRefresh(0, 1), FatalError);
    EXPECT_THROW(SecurityRefresh(1, 1), FatalError);
    EXPECT_THROW(SecurityRefresh(48, 1), FatalError); // not a power of 2
    EXPECT_THROW(SecurityRefresh(16, 0), FatalError);
}

TEST(SecurityRefresh, RemapRejectsOutOfRange)
{
    SecurityRefresh sr(16, 1);
    EXPECT_THROW(sr.remap(16), PanicError);
}

TEST(WearLeveler, KindNames)
{
    EXPECT_STREQ(wearLevelerKindName(WearLevelerKind::StartGap),
                 "start-gap");
    EXPECT_STREQ(wearLevelerKindName(WearLevelerKind::SecurityRefresh),
                 "security-refresh");
    EXPECT_STREQ(wearLevelerKindName(WearLevelerKind::None), "none");
}

TEST(WearLeveler, NoLevelingIsIdentity)
{
    NoLeveling n(8);
    EXPECT_EQ(n.numPhysicalBlocks(), 8u);
    for (std::uint64_t la = 0; la < 8; ++la)
        EXPECT_EQ(n.remap(la), la);
    EXPECT_EQ(n.noteWrite(nullptr), 0u);
}

/** Integration: the tracker levels a hot block under every scheme. */
TEST(WearLeveler, TrackerLevelsHotBlockUnderBothSchemes)
{
    EnduranceModel model;
    for (WearLevelerKind kind : {WearLevelerKind::StartGap,
                                 WearLevelerKind::SecurityRefresh}) {
        WearTrackerConfig c;
        c.numBanks = 1;
        c.blocksPerBank = 64;
        c.leveler = kind;
        c.gapWritePeriod = 2;
        c.detailedBlocks = true;
        WearTracker t(c, model);
        for (int i = 0; i < 64 * 65 * 4; ++i)
            t.recordWrite(BankId(0), DeviceAddr(7), 150 * kNanosecond, false);
        EXPECT_LT(t.maxBlockWear(BankId(0)) / t.meanBlockWear(BankId(0)), 12.0)
            << wearLevelerKindName(kind);
    }

    // And without leveling the same pattern concentrates completely.
    WearTrackerConfig c;
    c.numBanks = 1;
    c.blocksPerBank = 64;
    c.leveler = WearLevelerKind::None;
    c.detailedBlocks = true;
    WearTracker t(c, model);
    for (int i = 0; i < 64 * 65 * 4; ++i)
        t.recordWrite(BankId(0), DeviceAddr(7), 150 * kNanosecond, false);
    EXPECT_GT(t.maxBlockWear(BankId(0)) / t.meanBlockWear(BankId(0)), 50.0);
}
