/** @file Tests for the LLC with the Eager Mellow Writes machinery. */

#include <gtest/gtest.h>

#include "cache/llc.hh"
#include "mellow/policy.hh"
#include "nvm/controller.hh"
#include "sim/event_queue.hh"

using namespace mellowsim;
using namespace mellowsim::policies;

namespace
{

MemControllerConfig
memConfig(const WritePolicyConfig &policy)
{
    MemControllerConfig c;
    c.geometry.numBanks = 4;
    c.geometry.numRanks = 2;
    c.geometry.capacityBytes = 1ull << 20;
    c.policy = policy;
    return c;
}

LlcConfig
llcConfig(bool eager)
{
    LlcConfig c;
    c.cache.name = "LLC";
    c.cache.sizeBytes = 16 * 4 * kBlockSize; // 16 sets x 4 ways
    c.cache.assoc = 4;
    c.cache.hitLatency = Tick(17.5 * kNanosecond);
    c.eagerEnabled = eager;
    c.scanInterval = 4 * kNanosecond;
    return c;
}

struct Fixture
{
    EventQueue eq;
    MemoryController ctrl;
    Llc llc;
    Fixture(const WritePolicyConfig &policy, bool eager)
        : ctrl(eq, memConfig(policy)), llc(eq, llcConfig(eager), ctrl, 7)
    {
    }
};

} // namespace

TEST(Llc, DemandAccessCountsHitsAndMisses)
{
    Fixture f(norm(), false);
    EXPECT_FALSE(f.llc.access(LogicalAddr(0x40), false).hit);
    f.llc.fillFromMemory(LogicalAddr(0x40));
    EXPECT_TRUE(f.llc.access(LogicalAddr(0x40), false).hit);
    EXPECT_EQ(f.llc.stats().demandReads.value(), 2u);
    EXPECT_EQ(f.llc.stats().hits.value(), 1u);
    EXPECT_EQ(f.llc.stats().misses.value(), 1u);
}

TEST(Llc, ProfilerSeesDemandTraffic)
{
    Fixture f(norm(), false);
    f.llc.access(LogicalAddr(0x40), false); // miss
    f.llc.fillFromMemory(LogicalAddr(0x40));
    f.llc.access(LogicalAddr(0x40), false); // hit at MRU
    EXPECT_EQ(f.llc.profiler().missCounter(), 1u);
    EXPECT_EQ(f.llc.profiler().hitCounters()[0], 1u);
}

TEST(Llc, DirtyEvictionWritesBackToMemory)
{
    Fixture f(norm(), false);
    // Fill one set (4 ways) with dirty lines, then evict.
    // Set index = (addr>>6) & 15; use set 0: block addr multiples of
    // 16 blocks.
    for (std::uint64_t i = 0; i < 4; ++i)
        f.llc.writebackFromUpper(LogicalAddr(i * 16 * kBlockSize));
    EXPECT_EQ(f.llc.stats().writebacksToMem.value(), 0u);
    f.llc.writebackFromUpper(LogicalAddr(4 * 16 * kBlockSize));
    EXPECT_EQ(f.llc.stats().writebacksToMem.value(), 1u);
    EXPECT_EQ(f.ctrl.stats().acceptedWritebacks.value(), 1u);
}

TEST(Llc, CleanEvictionIsSilent)
{
    Fixture f(norm(), false);
    for (std::uint64_t i = 0; i < 5; ++i)
        f.llc.fillFromMemory(LogicalAddr(i * 16 * kBlockSize));
    EXPECT_EQ(f.llc.stats().cleanEvictions.value(), 1u);
    EXPECT_EQ(f.ctrl.stats().acceptedWritebacks.value(), 0u);
}

TEST(Llc, WritebackFromUpperAllocatesOnMiss)
{
    Fixture f(norm(), false);
    f.llc.writebackFromUpper(LogicalAddr(0x40));
    EXPECT_TRUE(f.llc.array().probe(LogicalAddr(0x40)));
    EXPECT_EQ(f.llc.array().countDirtyLines(), 1u);
    // A second write back to the same line hits.
    f.llc.writebackFromUpper(LogicalAddr(0x40));
    EXPECT_EQ(f.llc.stats().hits.value(), 1u);
}

TEST(Llc, EagerScanSendsUselessDirtyLine)
{
    Fixture f(beMellow().withSC(), true);
    // Make every position useless: one period of pure misses.
    for (int i = 0; i < 100; ++i)
        f.llc.access(LogicalAddr(static_cast<Addr>(i + 1000) * kBlockSize),
                     false);
    f.eq.run(f.eq.curTick() + 510 * kMicrosecond);
    EXPECT_EQ(f.llc.profiler().uselessFrom(), 0u);

    // Install a dirty line and let the scanner find it.
    f.llc.writebackFromUpper(LogicalAddr(0x40));
    f.eq.run(f.eq.curTick() + 200 * kMicrosecond);
    EXPECT_GE(f.llc.stats().eagerSent.value(), 1u);
    EXPECT_EQ(f.ctrl.stats().acceptedEager.value(),
              f.llc.stats().eagerSent.value());
    // The line stays resident but is now clean.
    EXPECT_TRUE(f.llc.array().probe(LogicalAddr(0x40)));
    EXPECT_EQ(f.llc.array().countDirtyLines(), 0u);
}

TEST(Llc, EagerScanRespectsUselessBoundary)
{
    Fixture f(beMellow().withSC(), true);
    // Build a period where MRU position is useful: hits at pos 0.
    f.llc.writebackFromUpper(LogicalAddr(0x40)); // dirty line, MRU of its set
    for (int i = 0; i < 1000; ++i)
        f.llc.access(LogicalAddr(0x40), false); // keeps hitting at position 0
    f.eq.run(f.eq.curTick() + 510 * kMicrosecond);
    ASSERT_GE(f.llc.profiler().uselessFrom(), 1u);
    // The dirty line sits at MRU (position 0) of its set: not useless,
    // so the scanner must never send it.
    f.eq.run(f.eq.curTick() + 200 * kMicrosecond);
    EXPECT_EQ(f.llc.stats().eagerSent.value(), 0u);
}

TEST(Llc, NoEagerMachineryWhenDisabled)
{
    Fixture f(norm(), false);
    f.llc.writebackFromUpper(LogicalAddr(0x40));
    for (int i = 0; i < 100; ++i)
        f.llc.access(LogicalAddr(static_cast<Addr>(i + 1000) * kBlockSize),
                     false);
    f.eq.run(f.eq.curTick() + kMillisecond);
    EXPECT_EQ(f.llc.stats().eagerSent.value(), 0u);
    EXPECT_EQ(f.llc.stats().eagerScans.value(), 0u);
}

TEST(Llc, WastedEagerWriteDetected)
{
    Fixture f(beMellow().withSC(), true);
    for (int i = 0; i < 100; ++i)
        f.llc.access(LogicalAddr(static_cast<Addr>(i + 1000) * kBlockSize),
                     false);
    f.eq.run(f.eq.curTick() + 510 * kMicrosecond);
    f.llc.writebackFromUpper(LogicalAddr(0x40));
    f.eq.run(f.eq.curTick() + 100 * kMicrosecond);
    ASSERT_GE(f.llc.stats().eagerSent.value(), 1u);
    // Re-dirty the eagerly cleaned line: the eager write was wasted.
    f.llc.writebackFromUpper(LogicalAddr(0x40));
    EXPECT_EQ(f.llc.stats().eagerWasted.value(), 1u);
}

TEST(Llc, PrimeWarmsWithoutStatsOrTraffic)
{
    Fixture f(norm(), false);
    f.llc.prime(LogicalAddr(0x40), true);
    f.llc.prime(LogicalAddr(0x80), false);
    EXPECT_TRUE(f.llc.array().probe(LogicalAddr(0x40)));
    EXPECT_TRUE(f.llc.array().probe(LogicalAddr(0x80)));
    EXPECT_EQ(f.llc.array().countDirtyLines(), 1u);
    EXPECT_EQ(f.llc.stats().demandReads.value(), 0u);
    EXPECT_EQ(f.llc.stats().demandWrites.value(), 0u);
    EXPECT_EQ(f.ctrl.stats().acceptedWritebacks.value(), 0u);
}

TEST(Llc, SamplePeriodsAdvanceOverTime)
{
    Fixture f(norm(), false);
    f.eq.run(f.eq.curTick() + Tick(2.6 * kMillisecond));
    EXPECT_EQ(f.llc.profiler().periods(), 5u);
}

// --- Decay dead-block predictor selector (paper's future work) ------

TEST(LlcDbp, RecentlyTouchedDirtyLineIsNotSent)
{
    EventQueue eq;
    MemoryController ctrl(eq, memConfig(beMellow().withSC()));
    LlcConfig cfg = llcConfig(true);
    cfg.selector = EagerSelector::DecayDeadBlock;
    cfg.deadAfterPeriods = 2;
    Llc llc(eq, cfg, ctrl, 7);

    llc.writebackFromUpper(LogicalAddr(0x40)); // dirty, stamped period 0
    // Within the same period the line is never a candidate.
    eq.run(eq.curTick() + 400 * kMicrosecond);
    EXPECT_EQ(llc.stats().eagerSent.value(), 0u);
}

TEST(LlcDbp, UntouchedDirtyLineIsSentAfterDecay)
{
    EventQueue eq;
    MemoryController ctrl(eq, memConfig(beMellow().withSC()));
    LlcConfig cfg = llcConfig(true);
    cfg.selector = EagerSelector::DecayDeadBlock;
    cfg.deadAfterPeriods = 2;
    Llc llc(eq, cfg, ctrl, 7);

    llc.writebackFromUpper(LogicalAddr(0x40));
    // After two full periods of silence the line is predicted dead.
    eq.run(eq.curTick() + Tick(2.5 * kMillisecond));
    EXPECT_GE(llc.stats().eagerSent.value(), 1u);
    EXPECT_TRUE(llc.array().probe(LogicalAddr(0x40)));
    EXPECT_EQ(llc.array().countDirtyLines(), 0u);
}

TEST(LlcDbp, TouchingResetsTheDecayClock)
{
    EventQueue eq;
    MemoryController ctrl(eq, memConfig(beMellow().withSC()));
    LlcConfig cfg = llcConfig(true);
    cfg.selector = EagerSelector::DecayDeadBlock;
    cfg.deadAfterPeriods = 2;
    Llc llc(eq, cfg, ctrl, 7);

    llc.writebackFromUpper(LogicalAddr(0x40));
    // Keep touching the line each period: never predicted dead.
    for (int period = 0; period < 6; ++period) {
        eq.run(eq.curTick() + 450 * kMicrosecond);
        llc.access(LogicalAddr(0x40), /*isWrite=*/true);
    }
    EXPECT_EQ(llc.stats().eagerSent.value(), 0u);
}

TEST(LlcDbp, IgnoresTheUselessPositionVerdict)
{
    // Even when the profiler says nothing is useless, the decay
    // selector still harvests dead dirty lines.
    EventQueue eq;
    MemoryController ctrl(eq, memConfig(beMellow().withSC()));
    LlcConfig cfg = llcConfig(true);
    cfg.selector = EagerSelector::DecayDeadBlock;
    cfg.deadAfterPeriods = 1;
    Llc llc(eq, cfg, ctrl, 7);

    llc.writebackFromUpper(LogicalAddr(0x40));
    // Uniform hits keep every stack position useful.
    for (unsigned pos = 0; pos < 4; ++pos) {
        for (int i = 0; i < 100; ++i)
            llc.access(LogicalAddr(0x1000 + pos * 16 * kBlockSize), false);
    }
    eq.run(eq.curTick() + Tick(1.6 * kMillisecond));
    EXPECT_GE(llc.stats().eagerSent.value(), 1u);
}
