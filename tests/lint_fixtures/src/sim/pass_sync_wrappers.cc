// mellow_lint fixture: the sanctioned spellings — capability-annotated
// sync.hh wrappers — must stay clean under the same src/-scoped rules
// that reject the raw primitives next door. Without this control a
// blanket-matching regex could pass the WILL_FAIL sibling vacuously.
#include "sim/sync.hh"

namespace
{

mellowsim::sync::Mutex g_tableMutex;

} // namespace

void
touchTable()
{
    mellowsim::sync::LockGuard guard(g_tableMutex);
}

void
epochRendezvous(mellowsim::sync::Barrier &barrier)
{
    barrier.arriveAndWait();
}
