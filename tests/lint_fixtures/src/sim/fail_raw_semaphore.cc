// mellow_lint fixture: every raw counting/rendezvous primitive below
// must trip raw-sync-primitive (the registered ctest is WILL_FAIL).
// Epoch rendezvous goes through sync::Barrier; ad-hoc semaphores and
// latches have no capability annotations and no analyzer vocabulary.
#include <barrier>
#include <latch>
#include <semaphore>

std::counting_semaphore<4> g_slots(4);
std::binary_semaphore g_ready(0);
std::latch g_startLine(2);
std::barrier<> g_epochEdge(2);

void
acquireSlot()
{
    g_slots.acquire();
    g_ready.release();
    g_startLine.arrive_and_wait();
    g_epochEdge.arrive_and_wait();
}
