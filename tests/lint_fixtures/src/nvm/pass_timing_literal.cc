// Fixture: the sanctioned ways to obtain a Tick must stay clean under
// the timing-literal rule — named unit-carrying conversions, values
// threaded from the config binding, annotated constants, and
// arithmetic on existing Ticks.

#include "sim/strong_types.hh"
#include "sim/types.hh"

namespace fixture
{

struct GoodTimings
{
    // Device timings arrive through the named conversions fed by the
    // config layer, never as inline literals.
    Tick fromConfig = ticksFromNanoseconds(150.0);
    Tick fromClock = clockPeriodTicks(Megahertz(400.0));

    // mlint: allow(timing-literal): fixture: simulator-infrastructure
    // cadence, not a device datasheet timing
    Tick annotated = 500 * kMicrosecond;
};

inline Tick
derived(Tick base)
{
    // Arithmetic on Ticks that already exist is fine.
    return base + base / 2;
}

} // namespace fixture
