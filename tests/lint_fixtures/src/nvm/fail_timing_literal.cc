// Fixture: every spelling of a hard-coded timing the timing-literal
// rule must reject in simulator sources outside the sanctioned homes
// (src/config/, src/nvm/timing.hh, src/sim/types.hh,
// src/sim/strong_types.hh). Registered WILL_FAIL in ctest.

#include "sim/types.hh"

namespace fixture
{

struct BadTimings
{
    Tick scaled = 150 * kNanosecond;
    Tick reversed = kMicrosecond * 500;
    Tick fractional = Tick(22.5 * kNanosecond);
    Tick bare = Tick(1000);
    Tick wall = 10 * kSecond;
};

} // namespace fixture
