/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace mellowsim;

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.numPending(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(5, [] {}), PanicError);
}

TEST(EventQueue, ScheduleAtCurrentTickAllowed)
{
    EventQueue eq;
    bool ran = false;
    eq.schedule(10, [&] { eq.schedule(10, [&] { ran = true; }); });
    eq.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, DescheduleCancelsEvent)
{
    EventQueue eq;
    bool ran = false;
    EventId id = eq.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(eq.scheduled(id));
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_FALSE(eq.scheduled(id));
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, DescheduleTwiceReturnsFalse)
{
    EventQueue eq;
    EventId id = eq.schedule(10, [] {});
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_FALSE(eq.deschedule(id));
}

TEST(EventQueue, DescheduleAfterFireReturnsFalse)
{
    EventQueue eq;
    EventId id = eq.schedule(10, [] {});
    eq.run();
    EXPECT_FALSE(eq.deschedule(id));
}

TEST(EventQueue, RunStopsBeforeStopAt)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    std::uint64_t executed = eq.run(20);
    EXPECT_EQ(executed, 1u);
    EXPECT_EQ(fired, 1);
    // Events exactly at stopAt are not executed.
    EXPECT_EQ(eq.curTick(), 20u);
    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunOnEmptyQueueAdvancesToStopAt)
{
    EventQueue eq;
    eq.run(100);
    EXPECT_EQ(eq.curTick(), 100u);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100)
            eq.scheduleIn(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.curTick(), 99u);
}

TEST(EventQueue, NumPendingTracksCancellations)
{
    EventQueue eq;
    EventId a = eq.schedule(5, [] {});
    eq.schedule(6, [] {});
    EXPECT_EQ(eq.numPending(), 2u);
    eq.deschedule(a);
    EXPECT_EQ(eq.numPending(), 1u);
    eq.run();
    EXPECT_EQ(eq.numPending(), 0u);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue eq;
    Tick last = 0;
    bool monotone = true;
    for (int i = 0; i < 10000; ++i) {
        Tick when = static_cast<Tick>((i * 7919) % 1000);
        eq.schedule(when, [&, when] {
            monotone = monotone && when >= last;
            last = when;
        });
    }
    eq.run();
    EXPECT_TRUE(monotone);
}

TEST(EventQueue, ScheduleInUsesCurrentTick)
{
    EventQueue eq;
    Tick observed = 0;
    eq.schedule(40, [&] {
        eq.scheduleIn(5, [&] { observed = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(observed, 45u);
}
