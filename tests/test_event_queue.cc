/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"

using namespace mellowsim;

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.numPending(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_THROW(eq.schedule(5, [] {}), PanicError);
}

TEST(EventQueue, ScheduleAtCurrentTickAllowed)
{
    EventQueue eq;
    bool ran = false;
    eq.schedule(10, [&] { eq.schedule(10, [&] { ran = true; }); });
    eq.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, DescheduleCancelsEvent)
{
    EventQueue eq;
    bool ran = false;
    EventId id = eq.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(eq.scheduled(id));
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_FALSE(eq.scheduled(id));
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, DescheduleTwiceReturnsFalse)
{
    EventQueue eq;
    EventId id = eq.schedule(10, [] {});
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_FALSE(eq.deschedule(id));
}

TEST(EventQueue, DescheduleAfterFireReturnsFalse)
{
    EventQueue eq;
    EventId id = eq.schedule(10, [] {});
    eq.run();
    EXPECT_FALSE(eq.deschedule(id));
}

TEST(EventQueue, RunStopsBeforeStopAt)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    std::uint64_t executed = eq.run(20);
    EXPECT_EQ(executed, 1u);
    EXPECT_EQ(fired, 1);
    // Events exactly at stopAt are not executed.
    EXPECT_EQ(eq.curTick(), 20u);
    eq.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunOnEmptyQueueAdvancesToStopAt)
{
    EventQueue eq;
    eq.run(100);
    EXPECT_EQ(eq.curTick(), 100u);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100)
            eq.scheduleIn(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 100);
    EXPECT_EQ(eq.curTick(), 99u);
}

TEST(EventQueue, NumPendingTracksCancellations)
{
    EventQueue eq;
    EventId a = eq.schedule(5, [] {});
    eq.schedule(6, [] {});
    EXPECT_EQ(eq.numPending(), 2u);
    eq.deschedule(a);
    EXPECT_EQ(eq.numPending(), 1u);
    eq.run();
    EXPECT_EQ(eq.numPending(), 0u);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue eq;
    Tick last = 0;
    bool monotone = true;
    for (int i = 0; i < 10000; ++i) {
        Tick when = static_cast<Tick>((i * 7919) % 1000);
        eq.schedule(when, [&, when] {
            monotone = monotone && when >= last;
            last = when;
        });
    }
    eq.run();
    EXPECT_TRUE(monotone);
}

TEST(EventQueue, ScheduleInUsesCurrentTick)
{
    EventQueue eq;
    Tick observed = 0;
    eq.schedule(40, [&] {
        eq.scheduleIn(5, [&] { observed = eq.curTick(); });
    });
    eq.run();
    EXPECT_EQ(observed, 45u);
}

TEST(EventQueue, StaleHandleAfterSlotReuseIsInert)
{
    EventQueue eq;
    // Cancel an event, then schedule another: the pool hands the
    // freed slot back, but the stale handle must neither report
    // scheduled nor cancel the new occupant.
    bool ranNew = false;
    EventHandle stale = eq.schedule(10, [] {});
    EXPECT_TRUE(eq.deschedule(stale));
    EventHandle fresh = eq.schedule(20, [&] { ranNew = true; });
    EXPECT_FALSE(eq.scheduled(stale));
    EXPECT_TRUE(eq.scheduled(fresh));
    EXPECT_FALSE(eq.deschedule(stale));
    EXPECT_TRUE(eq.scheduled(fresh));
    eq.run();
    EXPECT_TRUE(ranNew);
}

TEST(EventQueue, HandleFromFiredSlotIsInert)
{
    EventQueue eq;
    EventHandle fired = eq.schedule(10, [] {});
    eq.run();
    bool ranNew = false;
    EventHandle fresh = eq.schedule(20, [&] { ranNew = true; });
    EXPECT_FALSE(eq.scheduled(fired));
    EXPECT_FALSE(eq.deschedule(fired));
    EXPECT_TRUE(eq.scheduled(fresh));
    eq.run();
    EXPECT_TRUE(ranNew);
}

TEST(EventQueue, DefaultHandleIsInvalid)
{
    EventQueue eq;
    EventHandle h;
    EXPECT_FALSE(h.valid());
    EXPECT_EQ(h, InvalidEventHandle);
    EXPECT_FALSE(eq.scheduled(h));
    EXPECT_FALSE(eq.deschedule(h));
    EventHandle bound = eq.schedule(1, [] {});
    EXPECT_TRUE(bound.valid());
    EXPECT_NE(bound, InvalidEventHandle);
}

TEST(EventQueue, SlotReuseUnderChurnKeepsHandlesDistinct)
{
    EventQueue eq;
    // Burn through the same few slots thousands of times; every old
    // handle must stay dead and every live one must fire exactly
    // once.
    int fired = 0;
    std::vector<EventHandle> dead;
    for (int round = 0; round < 2000; ++round) {
        EventHandle cancelled = eq.schedule(10 + round, [] {});
        EventHandle kept = eq.schedule(10 + round, [&] { ++fired; });
        EXPECT_TRUE(eq.deschedule(cancelled));
        dead.push_back(cancelled);
    }
    for (const EventHandle &h : dead)
        EXPECT_FALSE(eq.scheduled(h));
    eq.run();
    EXPECT_EQ(fired, 2000);
    for (const EventHandle &h : dead)
        EXPECT_FALSE(eq.deschedule(h));
}

TEST(EventQueue, CompactionPreservesSurvivorOrder)
{
    EventQueue eq;
    // Cancel far more than half the backlog to force heap
    // compaction, then check the survivors still fire in (when,
    // schedule-order) sequence.
    std::vector<int> order;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 4096; ++i) {
        Tick when = static_cast<Tick>(1 + (i * 2654435761u) % 977);
        handles.push_back(eq.schedule(when, [&order, i] {
            order.push_back(i);
        }));
    }
    std::vector<std::pair<Tick, int>> expect;
    for (int i = 0; i < 4096; ++i) {
        if (i % 8 != 0) {
            EXPECT_TRUE(eq.deschedule(handles[i]));
        } else {
            expect.emplace_back(
                static_cast<Tick>(1 + (i * 2654435761u) % 977), i);
        }
    }
    std::stable_sort(expect.begin(), expect.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    eq.run();
    ASSERT_EQ(order.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(order[i], expect[i].second);
}

TEST(EventQueue, StressAgainstMultimapReference)
{
    // Randomized schedule/cancel rounds checked against a
    // std::multimap reference model: multimap keeps equal keys in
    // insertion order, exactly the kernel's same-tick FIFO contract.
    EventQueue eq;
    std::multimap<Tick, int> ref;
    std::vector<int> firedOrder;
    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    int token = 0;
    for (int round = 0; round < 40; ++round) {
        std::vector<std::pair<EventHandle, std::multimap<Tick, int>::iterator>>
            live;
        unsigned batch = 50 + next() % 200;
        for (unsigned i = 0; i < batch; ++i) {
            Tick when = eq.curTick() + 1 + next() % 50;
            int id = token++;
            EventHandle h = eq.schedule(when, [&firedOrder, id] {
                firedOrder.push_back(id);
            });
            live.emplace_back(h, ref.emplace(when, id));
        }
        // Cancel a random ~third of this round's batch.
        for (auto &[handle, it] : live) {
            if (next() % 3 == 0) {
                EXPECT_TRUE(eq.deschedule(handle));
                ref.erase(it);
            }
        }
        // Drain up to (not including) a random stop tick.
        Tick stop = eq.curTick() + 1 + next() % 40;
        eq.run(stop);
        std::vector<int> expect;
        while (!ref.empty() && ref.begin()->first < stop) {
            expect.push_back(ref.begin()->second);
            ref.erase(ref.begin());
        }
        ASSERT_EQ(firedOrder, expect) << "round " << round;
        firedOrder.clear();
    }
    eq.run();
    std::vector<int> expect;
    for (const auto &[when, id] : ref)
        expect.push_back(id);
    EXPECT_EQ(firedOrder, expect);
    EXPECT_EQ(eq.numPending(), 0u);
}
