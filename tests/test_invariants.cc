/**
 * @file
 * Tests of the runtime invariant-checking layer (src/check/).
 *
 * Every checker gets (a) a passing scenario captured from a healthy
 * live simulation and (b) an injected violation — a hand-built
 * snapshot encoding a corruption such as a double-completed request —
 * that the checker must detect and describe with actionable context.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/check_config.hh"
#include "check/checkers.hh"
#include "check/install.hh"
#include "check/registry.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "system/system.hh"

using namespace mellowsim;

namespace
{

/**
 * Run a small simulation and hand back the live System. lbm at one
 * million instructions is the shortest run that exercises demand
 * writebacks, eager writes and cancellations together.
 */
std::unique_ptr<System>
runSmallSystem(const WritePolicyConfig &policy)
{
    SystemConfig cfg;
    cfg.workloadName = "lbm";
    cfg.policy = policy;
    cfg.instructions = 1'000'000;
    cfg.warmupInstructions = 250'000;
    auto sys = std::make_unique<System>(cfg);
    sys->run();
    return sys;
}

/** Evaluate-only helper: collect violations from one evaluation. */
template <typename Fn>
std::vector<Violation>
collect(const std::string &checker, Fn &&evaluate)
{
    std::vector<Violation> out;
    ViolationSink sink(checker, 0, out);
    evaluate(sink);
    return out;
}

/** A checker that always reports one violation (for registry tests). */
class AlwaysFail : public InvariantChecker
{
  public:
    std::string name() const override { return "always-fail"; }

    void
    check(Tick, ViolationSink &sink) override
    {
        sink.add("intentionally injected violation");
    }
};

class QuietScope
{
  public:
    QuietScope() : _was(Logger::quiet()) { Logger::setQuiet(true); }
    ~QuietScope() { Logger::setQuiet(_was); }

  private:
    bool _was;
};

} // namespace

// --- EventQueueChecker ---------------------------------------------

TEST(EventQueueChecker, PassesOnHealthyQueue)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.schedule(200, [] {});
    eq.step();

    auto v = collect("event-queue", [&](ViolationSink &sink) {
        EventQueueChecker::evaluate(EventQueueChecker::capture(eq), 0,
                                    sink);
    });
    EXPECT_TRUE(v.empty());
}

TEST(EventQueueChecker, DetectsTimeRunningBackwards)
{
    EventQueueChecker::Snapshot s;
    s.curTick = 50;
    s.minPendingTick = MaxTick;
    auto v = collect("event-queue", [&](ViolationSink &sink) {
        EventQueueChecker::evaluate(s, /*lastAuditTick=*/100, sink);
    });
    ASSERT_EQ(v.size(), 1u);
    EXPECT_NE(v[0].message.find("time ran backwards"),
              std::string::npos);
}

TEST(EventQueueChecker, DetectsPendingEventInThePast)
{
    EventQueueChecker::Snapshot s;
    s.curTick = 500;
    s.minPendingTick = 400;
    s.rawHeapSize = 1;
    s.numPending = 1;
    auto v = collect("event-queue", [&](ViolationSink &sink) {
        EventQueueChecker::evaluate(s, 0, sink);
    });
    ASSERT_EQ(v.size(), 1u);
    EXPECT_NE(v[0].message.find("pending event in the past"),
              std::string::npos);
    // Actionable context: both ticks appear in the message.
    EXPECT_NE(v[0].message.find("400"), std::string::npos);
    EXPECT_NE(v[0].message.find("500"), std::string::npos);
}

// --- RequestConservationChecker ------------------------------------

TEST(RequestConservationChecker, PassesOnLiveSystem)
{
    auto sys = runSmallSystem(policies::beMellow().withSC());
    auto snap = RequestConservationChecker::capture(sys->controller());
    EXPECT_GT(snap.demandReads, 0u);
    EXPECT_GT(snap.acceptedWritebacks, 0u);

    auto v = collect("request-conservation", [&](ViolationSink &sink) {
        RequestConservationChecker::evaluate(snap, sink);
    });
    EXPECT_TRUE(v.empty());
}

TEST(RequestConservationChecker, DetectsDoubleCompletedWrite)
{
    // A healthy book (95 completed + 3 queued + 2 in flight from 97
    // issued attempts), then one write completes a second time.
    RequestConservationChecker::Snapshot s;
    s.acceptedWritebacks = 100;
    s.completedDemandWrites = 95 + 1; // the double completion
    s.queuedDemandWrites = 3;
    s.inFlightDemandWrites = 2;
    s.issuedWriteAttempts = 97;
    auto v = collect("request-conservation", [&](ViolationSink &sink) {
        RequestConservationChecker::evaluate(s, sink);
    });
    ASSERT_EQ(v.size(), 2u); // per-type and attempt books both break
    EXPECT_NE(v[0].message.find("demand write conservation broken"),
              std::string::npos);
    EXPECT_NE(v[0].message.find("double-completed"), std::string::npos);
    EXPECT_NE(v[0].message.find("100"), std::string::npos);
    EXPECT_NE(v[0].message.find("101"), std::string::npos);
}

TEST(RequestConservationChecker, DetectsLostRead)
{
    RequestConservationChecker::Snapshot s;
    s.demandReads = 50;
    s.forwardedReads = 10;
    s.issuedReads = 30;
    s.queuedReads = 9; // one read vanished
    auto v = collect("request-conservation", [&](ViolationSink &sink) {
        RequestConservationChecker::evaluate(s, sink);
    });
    ASSERT_EQ(v.size(), 1u);
    EXPECT_NE(v[0].message.find("demand read conservation broken"),
              std::string::npos);
    EXPECT_NE(v[0].message.find("lost"), std::string::npos);
}

TEST(RequestConservationChecker, DetectsUnpairedPause)
{
    RequestConservationChecker::Snapshot s;
    s.pausedWrites = 5;
    s.resumedWrites = 3;
    s.banksPausedNow = 1; // should be 2
    auto v = collect("request-conservation", [&](ViolationSink &sink) {
        RequestConservationChecker::evaluate(s, sink);
    });
    ASSERT_EQ(v.size(), 1u);
    EXPECT_NE(v[0].message.find("pause/resume pairing broken"),
              std::string::npos);
}

// --- BankStateChecker ----------------------------------------------

TEST(BankStateChecker, PassesOnLiveSystem)
{
    auto sys = runSmallSystem(policies::norm());
    auto snap = BankStateChecker::capture(sys->controller());
    EXPECT_FALSE(snap.banks.empty());

    auto v = collect("bank-state", [&](ViolationSink &sink) {
        BankStateChecker::evaluate(snap, sys->eventQueue().curTick(),
                                   sink);
    });
    EXPECT_TRUE(v.empty());
}

TEST(BankStateChecker, DetectsWritingWhilePaused)
{
    BankStateChecker::Snapshot s;
    BankStateChecker::BankSnapshot b;
    b.writing = true;
    b.paused = true;
    b.busyUntil = 1000;
    b.remainingPulse = 10;
    b.writePulse = 100;
    s.banks.push_back(b);
    auto v = collect("bank-state", [&](ViolationSink &sink) {
        BankStateChecker::evaluate(s, 500, sink);
    });
    ASSERT_EQ(v.size(), 1u);
    EXPECT_NE(v[0].message.find("simultaneously writing and paused"),
              std::string::npos);
}

TEST(BankStateChecker, DetectsLostWriteCompletion)
{
    BankStateChecker::Snapshot s;
    BankStateChecker::BankSnapshot b;
    b.writing = true;
    b.busyUntil = 1000; // pulse ended...
    s.banks.push_back(b);
    auto v = collect("bank-state", [&](ViolationSink &sink) {
        BankStateChecker::evaluate(s, /*now=*/2000, sink); // ...long ago
    });
    ASSERT_EQ(v.size(), 1u);
    EXPECT_NE(v[0].message.find("write completion lost"),
              std::string::npos);
}

TEST(BankStateChecker, DetectsOverlappingBusyAccounting)
{
    BankStateChecker::Snapshot s;
    BankStateChecker::BankSnapshot b;
    b.busyUntil = 100;
    b.trackerBusyUntil = 100;
    b.trackerBusyTicks = 150; // busier than the horizon allows
    s.banks.push_back(b);
    auto v = collect("bank-state", [&](ViolationSink &sink) {
        BankStateChecker::evaluate(s, 100, sink);
    });
    ASSERT_EQ(v.size(), 1u);
    EXPECT_NE(v[0].message.find("busy windows must have overlapped"),
              std::string::npos);
}

// --- WearConservationChecker ---------------------------------------

TEST(WearConservationChecker, PassesOnLiveSystem)
{
    auto sys = runSmallSystem(policies::beMellow().withSC());
    auto snap = WearConservationChecker::capture(sys->controller());
    EXPECT_GT(snap.completedWrites, 0u);

    auto v = collect("wear-conservation", [&](ViolationSink &sink) {
        WearConservationChecker::evaluate(snap, sink);
    });
    EXPECT_TRUE(v.empty());
}

TEST(WearConservationChecker, DetectsMissedWearRecord)
{
    WearConservationChecker::Snapshot s;
    s.trackerNormalWrites = 40;
    s.trackerSlowWrites = 9; // one slow write never reached the tracker
    s.completedWrites = 50;
    s.issuedWriteAttempts = 50;
    auto v = collect("wear-conservation", [&](ViolationSink &sink) {
        WearConservationChecker::evaluate(s, sink);
    });
    ASSERT_EQ(v.size(), 1u);
    EXPECT_NE(v[0].message.find("wear tracker write count"),
              std::string::npos);
}

TEST(WearConservationChecker, DetectsNegativeWearAndAttemptLeak)
{
    WearConservationChecker::Snapshot s;
    s.minBankWearUnits = -0.25;
    s.issuedWriteAttempts = 10;
    s.completedWrites = 4;
    s.cancelledWrites = 3;
    s.inFlightWrites = 2; // 9 accounted, one attempt leaked
    s.trackerNormalWrites = 4;
    s.trackerCancelledWrites = 3;
    auto v = collect("wear-conservation", [&](ViolationSink &sink) {
        WearConservationChecker::evaluate(s, sink);
    });
    ASSERT_EQ(v.size(), 2u);
    EXPECT_NE(v[0].message.find("write attempts leak"),
              std::string::npos);
    EXPECT_NE(v[1].message.find("negative bank wear"),
              std::string::npos);
}

// --- EnergyCrossChecker --------------------------------------------

TEST(EnergyCrossChecker, PassesOnLiveSystem)
{
    auto sys = runSmallSystem(policies::beMellow().withSC());
    auto snap = EnergyCrossChecker::capture(sys->controller());
    EXPECT_GT(snap.completedWrites, 0u);

    auto v = collect("energy-cross-check", [&](ViolationSink &sink) {
        EnergyCrossChecker::evaluate(snap, sink);
    });
    EXPECT_TRUE(v.empty());
}

TEST(EnergyCrossChecker, DetectsUnchargedWrite)
{
    EnergyCrossChecker::Snapshot s;
    s.energyNormalWrites = 7;
    s.energySlowWrites = 2;
    s.completedWrites = 10; // one write was never charged
    auto v = collect("energy-cross-check", [&](ViolationSink &sink) {
        EnergyCrossChecker::evaluate(s, sink);
    });
    ASSERT_EQ(v.size(), 1u);
    EXPECT_NE(v[0].message.find("energy model charged 9"),
              std::string::npos);
}

TEST(EnergyCrossChecker, DetectsRowBufferSkew)
{
    EnergyCrossChecker::Snapshot s;
    s.issuedReads = 10;
    s.rowHitReads = 6;
    s.rowMissReads = 4;
    s.energyBufferReads = 4;
    s.energyRowHitReads = 5; // energy model missed one row hit
    auto v = collect("energy-cross-check", [&](ViolationSink &sink) {
        EnergyCrossChecker::evaluate(s, sink);
    });
    ASSERT_EQ(v.size(), 2u); // read total and hit split both off
    EXPECT_NE(v[1].message.find("row-buffer accounting skew"),
              std::string::npos);
}

// --- WearQuotaChecker ----------------------------------------------

TEST(WearQuotaChecker, PassesOnLiveSystem)
{
    auto sys = runSmallSystem(policies::beMellow().withSC().withWQ());
    const WearQuota *quota = sys->controller().wearQuota();
    ASSERT_NE(quota, nullptr);

    auto snap = WearQuotaChecker::capture(
        *quota, sys->controller().numBanks());
    auto v = collect("wear-quota", [&](ViolationSink &sink) {
        WearQuotaChecker::evaluate(snap, sink);
    });
    EXPECT_TRUE(v.empty());
}

TEST(WearQuotaChecker, DetectsCorruptBudgetAndWear)
{
    WearQuotaChecker::Snapshot s;
    s.wearBoundBank = 0.0; // budget lost
    s.numPeriods = 4;
    WearQuotaChecker::BankSnapshot b;
    b.wear = -1.0; // negative wear
    b.slowOnlyPeriods = 9; // more than periods elapsed
    s.banks.push_back(b);
    auto v = collect("wear-quota", [&](ViolationSink &sink) {
        WearQuotaChecker::evaluate(s, sink);
    });
    // Budget, negative wear, period count, and the negative wear also
    // undercuts the latched ExceedQuota.
    ASSERT_EQ(v.size(), 4u);
}

TEST(WearQuotaChecker, DetectsStaleExceedQuota)
{
    WearQuotaChecker::Snapshot s;
    s.wearBoundBank = 1.0;
    s.numPeriods = 3;
    WearQuotaChecker::BankSnapshot b;
    b.wear = 2.0;
    b.exceed = 1.5; // implies >= 4.5 wear units; only 2 recorded
    s.banks.push_back(b);
    auto v = collect("wear-quota", [&](ViolationSink &sink) {
        WearQuotaChecker::evaluate(s, sink);
    });
    ASSERT_EQ(v.size(), 1u);
    EXPECT_NE(v[0].message.find("stale or corrupt"),
              std::string::npos);
}

// --- FaultChecker --------------------------------------------------

TEST(FaultChecker, PassesOnConsistentSnapshot)
{
    FaultChecker::Snapshot s;
    s.repairEntriesPerLine = 2;
    s.spareLinesPerBank = 4;
    s.maxRepairsOnLine = 2;
    s.repairsUsed = 5;
    s.retiredLines = 3;
    s.remapEntries = 3;
    s.deadLines = 1;
    s.permanentFaults = 9; // 5 repairs + 3 retirements + 1 dead
    s.maxSparesUsed = 3;
    s.firstFaultTick = 100;
    s.firstUncorrectableTick = 900;
    s.retriesRequested = 7;
    s.ctrlRetriedWrites = 7;
    auto v = collect("fault", [&](ViolationSink &sink) {
        FaultChecker::evaluate(s, sink);
    });
    EXPECT_TRUE(v.empty());
}

TEST(FaultChecker, DetectsWriteReachingRetiredLine)
{
    FaultChecker::Snapshot s;
    s.writesToRetiredLines = 2;
    auto v = collect("fault", [&](ViolationSink &sink) {
        FaultChecker::evaluate(s, sink);
    });
    ASSERT_EQ(v.size(), 1u);
    EXPECT_NE(v[0].message.find("retired"), std::string::npos);
}

TEST(FaultChecker, DetectsCorruptRemapTable)
{
    FaultChecker::Snapshot s;
    s.retiredLines = 2;
    s.remapEntries = 2;
    s.permanentFaults = 2;
    s.firstFaultTick = 50;
    s.remapValid = false;
    auto v = collect("fault", [&](ViolationSink &sink) {
        FaultChecker::evaluate(s, sink);
    });
    ASSERT_EQ(v.size(), 1u);
}

TEST(FaultChecker, DetectsBudgetAndAccountingViolations)
{
    FaultChecker::Snapshot s;
    s.repairEntriesPerLine = 1;
    s.maxRepairsOnLine = 2;  // over the per-line ECP budget
    s.spareLinesPerBank = 2;
    s.maxSparesUsed = 3;     // over the spare pool
    s.repairsUsed = 2;
    s.retiredLines = 1;
    s.remapEntries = 1;
    s.deadLines = 0;
    s.permanentFaults = 4;   // != 2 + 1 + 0
    s.firstFaultTick = 10;
    auto v = collect("fault", [&](ViolationSink &sink) {
        FaultChecker::evaluate(s, sink);
    });
    EXPECT_EQ(v.size(), 3u);
}

TEST(FaultChecker, DetectsInconsistentFirstFaultTimestamps)
{
    FaultChecker::Snapshot s;
    // Faults recorded but no first-fault tick; a dead line stamped
    // before the first fault.
    s.repairsUsed = 1;
    s.permanentFaults = 2;
    s.deadLines = 1;
    s.firstFaultTick = 0;
    s.firstUncorrectableTick = 5;
    auto v = collect("fault", [&](ViolationSink &sink) {
        FaultChecker::evaluate(s, sink);
    });
    EXPECT_FALSE(v.empty());
}

TEST(FaultChecker, DetectsRetryCounterMismatch)
{
    FaultChecker::Snapshot s;
    s.retriesRequested = 3;
    s.ctrlRetriedWrites = 2;
    auto v = collect("fault", [&](ViolationSink &sink) {
        FaultChecker::evaluate(s, sink);
    });
    ASSERT_EQ(v.size(), 1u);
}

TEST(FaultChecker, InstalledOnlyWhenFaultInjectionIsOn)
{
    SystemConfig cfg;
    cfg.workloadName = "lbm";
    cfg.policy = policies::beMellow().withSC().withWQ();
    cfg.instructions = 200'000;
    cfg.warmupInstructions = 50'000;
    cfg.memory.fault.enabled = true;
    System sys(cfg);
    sys.run();
    InvariantRegistry reg;
    installStandardCheckers(reg, sys.eventQueue(), sys.memory());
    // Event queue + 4 per-channel checkers + quota + fault.
    EXPECT_EQ(reg.numCheckers(), 7u);
    EXPECT_EQ(reg.runAudit(sys.eventQueue().curTick()), 0u);
}

// --- InvariantRegistry ---------------------------------------------

TEST(InvariantRegistry, CleanAuditReportsNothing)
{
    EventQueue eq;
    CheckConfig cfg;
    cfg.strict = true;
    InvariantRegistry reg(cfg);
    reg.add(std::make_unique<EventQueueChecker>(eq));
    EXPECT_EQ(reg.runAudit(eq.curTick()), 0u);
    EXPECT_TRUE(reg.violations().empty());
    EXPECT_EQ(reg.audits(), 1u);
}

TEST(InvariantRegistry, NonStrictCountsInjectedViolation)
{
    QuietScope quiet;
    CheckConfig cfg;
    cfg.strict = false;
    InvariantRegistry reg(cfg);
    reg.add(std::make_unique<AlwaysFail>());
    EXPECT_EQ(reg.runAudit(1234), 1u);
    ASSERT_EQ(reg.violations().size(), 1u);
    const Violation &v = reg.violations()[0];
    EXPECT_EQ(v.checker, "always-fail");
    EXPECT_EQ(v.tick, 1234u);
    EXPECT_NE(v.format().find("intentionally injected"),
              std::string::npos);
}

TEST(InvariantRegistry, StrictModePanicsOnInjectedViolation)
{
    QuietScope quiet;
    CheckConfig cfg;
    cfg.strict = true;
    InvariantRegistry reg(cfg);
    reg.add(std::make_unique<AlwaysFail>());
    EXPECT_THROW(reg.runAudit(0), PanicError);
    // The violation was still recorded before escalation.
    EXPECT_EQ(reg.violations().size(), 1u);
}

TEST(InvariantRegistry, PeriodicAuditsFollowTheConfiguredInterval)
{
    QuietScope quiet;
    EventQueue eq;
    CheckConfig cfg;
    cfg.strict = false;
    cfg.interval = 100 * kMicrosecond;
    InvariantRegistry reg(cfg);
    reg.add(std::make_unique<EventQueueChecker>(eq));
    reg.schedulePeriodic(eq);
    eq.run(kMillisecond + 1);
    EXPECT_EQ(reg.audits(), 10u);
    EXPECT_TRUE(reg.violations().empty());
}

TEST(InvariantRegistry, InstallCoversEverySubsystem)
{
    auto sys = runSmallSystem(policies::beMellow().withSC().withWQ());
    InvariantRegistry reg;
    installStandardCheckers(reg, sys->eventQueue(), sys->memory());
    // Event queue + 4 per-channel checkers + the quota checker.
    EXPECT_EQ(reg.numCheckers(), 6u);
    EXPECT_EQ(reg.runAudit(sys->eventQueue().curTick()), 0u);
}

// --- System wiring -------------------------------------------------

TEST(SystemChecks, RegistryMatchesBuildMode)
{
    SystemConfig cfg;
    cfg.workloadName = "stream";
    cfg.policy = policies::beMellow().withSC().withWQ();
    cfg.instructions = 200'000;
    cfg.warmupInstructions = 50'000;
    cfg.checks.interval = 50 * kMicrosecond;
    System sys(cfg);
    sys.run();
#if MELLOWSIM_CHECKS_ENABLED
    ASSERT_NE(sys.invariantChecks(), nullptr);
    // Periodic audits ran and the final audit brought the count up.
    EXPECT_GT(sys.invariantChecks()->audits(), 1u);
    EXPECT_TRUE(sys.invariantChecks()->violations().empty());
#else
    EXPECT_EQ(sys.invariantChecks(), nullptr);
#endif
}

TEST(SystemChecks, RuntimeDisableIsHonoured)
{
    SystemConfig cfg;
    cfg.workloadName = "stream";
    cfg.policy = policies::norm();
    cfg.instructions = 200'000;
    cfg.warmupInstructions = 50'000;
    cfg.checks.enabled = false;
    System sys(cfg);
    sys.run();
    EXPECT_EQ(sys.invariantChecks(), nullptr);
}
