/** @file Tests for the bank-partitioned request queues. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "nvm/queues.hh"
#include "sim/logging.hh"

using namespace mellowsim;

namespace
{

MemRequest
makeReq(unsigned bank, Addr addr, ReqType type = ReqType::Write,
        Tick arrival = 0)
{
    MemRequest r;
    r.type = type;
    r.addr = LogicalAddr(addr);
    r.loc.bank = BankId(bank);
    r.arrival = arrival;
    return r;
}

} // namespace

TEST(RequestQueue, StartsEmpty)
{
    RequestQueue q(4, 8);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.full());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.capacity(), 8u);
    EXPECT_EQ(q.countForBank(BankId(0)), 0u);
}

TEST(RequestQueue, PushPopFifoPerBank)
{
    RequestQueue q(4, 8);
    q.push(makeReq(1, 0x40, ReqType::Write, 10));
    q.push(makeReq(1, 0x80, ReqType::Write, 20));
    q.push(makeReq(2, 0xC0, ReqType::Write, 30));
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.countForBank(BankId(1)), 2u);
    EXPECT_EQ(q.countForBank(BankId(2)), 1u);

    EXPECT_EQ(q.front(BankId(1)).addr.value(), 0x40u);
    MemRequest r = q.pop(BankId(1));
    EXPECT_EQ(r.addr.value(), 0x40u);
    EXPECT_EQ(q.front(BankId(1)).addr.value(), 0x80u);
    EXPECT_EQ(q.size(), 2u);
}

TEST(RequestQueue, PushFrontJumpsTheLine)
{
    RequestQueue q(2, 8);
    q.push(makeReq(0, 0x40));
    q.pushFront(makeReq(0, 0x999C0));
    EXPECT_EQ(q.front(BankId(0)).addr.value(), 0x999C0u);
}

TEST(RequestQueue, FullIsAdvisory)
{
    RequestQueue q(1, 2);
    q.push(makeReq(0, 0x00));
    EXPECT_FALSE(q.full());
    q.push(makeReq(0, 0x40));
    EXPECT_TRUE(q.full());
    // Overflow allowed; the controller's drain logic handles it.
    q.push(makeReq(0, 0x80));
    EXPECT_EQ(q.size(), 3u);
    EXPECT_TRUE(q.full());
}

TEST(RequestQueue, BlockIndexCountsPendingWritesPerBlock)
{
    RequestQueue q(2, 8);
    EXPECT_EQ(q.countForBlock(LogicalAddr(0x40)), 0u);
    q.push(makeReq(0, 0x40));
    q.push(makeReq(1, 0x40 + 16)); // same block, different offset
    EXPECT_EQ(q.countForBlock(LogicalAddr(0x40)), 2u);
    q.pop(BankId(0));
    EXPECT_EQ(q.countForBlock(LogicalAddr(0x40)), 1u);
    q.pop(BankId(1));
    EXPECT_EQ(q.countForBlock(LogicalAddr(0x40)), 0u);
}

TEST(RequestQueue, OldestArrivalAcrossBanks)
{
    RequestQueue q(4, 8);
    EXPECT_EQ(q.oldestArrival(), MaxTick);
    q.push(makeReq(2, 0x80, ReqType::Write, 50));
    q.push(makeReq(0, 0x00, ReqType::Write, 30));
    q.push(makeReq(0, 0x40, ReqType::Write, 10)); // younger in FIFO
    EXPECT_EQ(q.oldestArrival(), 30u);
}

TEST(RequestQueue, PopEmptyBankPanics)
{
    RequestQueue q(2, 4);
    EXPECT_THROW(q.pop(BankId(0)), PanicError);
    EXPECT_THROW(q.front(BankId(1)), PanicError);
}

TEST(RequestQueue, BankRangeChecked)
{
    RequestQueue q(2, 4);
    EXPECT_THROW(q.push(makeReq(2, 0x0)), PanicError);
    EXPECT_THROW(q.countForBank(BankId(5)), PanicError);
}

TEST(RequestQueue, RejectsDegenerateConstruction)
{
    EXPECT_THROW(RequestQueue(0, 4), FatalError);
    EXPECT_THROW(RequestQueue(4, 0), FatalError);
}

TEST(RequestQueue, RandomizedAgainstNaiveReference)
{
    // Drive the queue with random push/pushFront/pop traffic and
    // check every aggregate view (size, per-bank counts, per-block
    // counts, oldestArrival) against a deque-of-deques reference
    // after every single operation.
    constexpr unsigned kBanks = 6;
    RequestQueue q(kBanks, 16);
    std::vector<std::deque<MemRequest>> ref(kBanks);
    std::uint64_t rng = 0x853c49e6748fea9bull;
    auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    auto check = [&] {
        std::size_t total = 0;
        Tick oldest = MaxTick;
        std::map<std::uint64_t, unsigned> blocks;
        for (unsigned b = 0; b < kBanks; ++b) {
            total += ref[b].size();
            ASSERT_EQ(q.countForBank(BankId(b)), ref[b].size());
            if (!ref[b].empty()) {
                ASSERT_EQ(q.front(BankId(b)).addr.value(),
                          ref[b].front().addr.value());
                oldest = std::min(oldest, ref[b].front().arrival);
            }
            for (const MemRequest &r : ref[b])
                ++blocks[r.addr.value() / kBlockSize];
        }
        ASSERT_EQ(q.size(), total);
        ASSERT_EQ(q.empty(), total == 0);
        ASSERT_EQ(q.oldestArrival(), oldest);
        for (const auto &[block, count] : blocks) {
            ASSERT_EQ(q.countForBlock(LogicalAddr(block * kBlockSize)),
                      count);
        }
    };
    for (int op = 0; op < 3000; ++op) {
        unsigned bank = next() % kBanks;
        unsigned action = next() % 4;
        if (action == 3 && !ref[bank].empty()) {
            MemRequest got = q.pop(BankId(bank));
            EXPECT_EQ(got.addr.value(), ref[bank].front().addr.value());
            EXPECT_EQ(got.arrival, ref[bank].front().arrival);
            ref[bank].pop_front();
        } else {
            // Few distinct blocks so countForBlock sees collisions.
            Addr addr = (next() % 24) * kBlockSize;
            Tick arrival = next() % 500;
            MemRequest r = makeReq(bank, addr, ReqType::Write, arrival);
            if (action == 2) {
                q.pushFront(r);
                ref[bank].push_front(r);
            } else {
                q.push(r);
                ref[bank].push_back(r);
            }
        }
        check();
        if (testing::Test::HasFatalFailure())
            FAIL() << "mismatch at op " << op;
    }
    // Drain completely, still checking each step.
    for (unsigned b = 0; b < kBanks; ++b) {
        while (!ref[b].empty()) {
            MemRequest got = q.pop(BankId(b));
            EXPECT_EQ(got.addr.value(), ref[b].front().addr.value());
            ref[b].pop_front();
            check();
        }
    }
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.oldestArrival(), MaxTick);
}

TEST(RequestQueue, NonEmptyBanksMaskTracksOccupancy)
{
    RequestQueue q(4, 8);
    EXPECT_FALSE(q.nonEmptyBanks().any());
    q.push(makeReq(2, 0x40));
    q.push(makeReq(0, 0x80));
    EXPECT_TRUE(q.nonEmptyBanks().test(BankId(0)));
    EXPECT_FALSE(q.nonEmptyBanks().test(BankId(1)));
    EXPECT_TRUE(q.nonEmptyBanks().test(BankId(2)));
    q.pop(BankId(2));
    EXPECT_FALSE(q.nonEmptyBanks().test(BankId(2)));
    q.pop(BankId(0));
    EXPECT_FALSE(q.nonEmptyBanks().any());
}

TEST(RequestQueue, StressManyPushPops)
{
    RequestQueue q(8, 32);
    for (int round = 0; round < 100; ++round) {
        for (unsigned b = 0; b < 8; ++b) {
            q.push(makeReq(b, (round * 8 + b) * kBlockSize));
        }
    }
    EXPECT_EQ(q.size(), 800u);
    for (unsigned b = 0; b < 8; ++b) {
        Addr prev = 0;
        bool first = true;
        while (q.countForBank(BankId(b)) > 0) {
            MemRequest r = q.pop(BankId(b));
            if (!first) {
                EXPECT_GT(r.addr.value(), prev);
            }
            prev = r.addr.value();
            first = false;
        }
    }
    EXPECT_TRUE(q.empty());
}
