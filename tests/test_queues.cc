/** @file Tests for the bank-partitioned request queues. */

#include <gtest/gtest.h>

#include "nvm/queues.hh"
#include "sim/logging.hh"

using namespace mellowsim;

namespace
{

MemRequest
makeReq(unsigned bank, Addr addr, ReqType type = ReqType::Write,
        Tick arrival = 0)
{
    MemRequest r;
    r.type = type;
    r.addr = LogicalAddr(addr);
    r.loc.bank = BankId(bank);
    r.arrival = arrival;
    return r;
}

} // namespace

TEST(RequestQueue, StartsEmpty)
{
    RequestQueue q(4, 8);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.full());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.capacity(), 8u);
    EXPECT_EQ(q.countForBank(BankId(0)), 0u);
}

TEST(RequestQueue, PushPopFifoPerBank)
{
    RequestQueue q(4, 8);
    q.push(makeReq(1, 0x40, ReqType::Write, 10));
    q.push(makeReq(1, 0x80, ReqType::Write, 20));
    q.push(makeReq(2, 0xC0, ReqType::Write, 30));
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.countForBank(BankId(1)), 2u);
    EXPECT_EQ(q.countForBank(BankId(2)), 1u);

    EXPECT_EQ(q.front(BankId(1)).addr.value(), 0x40u);
    MemRequest r = q.pop(BankId(1));
    EXPECT_EQ(r.addr.value(), 0x40u);
    EXPECT_EQ(q.front(BankId(1)).addr.value(), 0x80u);
    EXPECT_EQ(q.size(), 2u);
}

TEST(RequestQueue, PushFrontJumpsTheLine)
{
    RequestQueue q(2, 8);
    q.push(makeReq(0, 0x40));
    q.pushFront(makeReq(0, 0x999C0));
    EXPECT_EQ(q.front(BankId(0)).addr.value(), 0x999C0u);
}

TEST(RequestQueue, FullIsAdvisory)
{
    RequestQueue q(1, 2);
    q.push(makeReq(0, 0x00));
    EXPECT_FALSE(q.full());
    q.push(makeReq(0, 0x40));
    EXPECT_TRUE(q.full());
    // Overflow allowed; the controller's drain logic handles it.
    q.push(makeReq(0, 0x80));
    EXPECT_EQ(q.size(), 3u);
    EXPECT_TRUE(q.full());
}

TEST(RequestQueue, BlockIndexCountsPendingWritesPerBlock)
{
    RequestQueue q(2, 8);
    EXPECT_EQ(q.countForBlock(LogicalAddr(0x40)), 0u);
    q.push(makeReq(0, 0x40));
    q.push(makeReq(1, 0x40 + 16)); // same block, different offset
    EXPECT_EQ(q.countForBlock(LogicalAddr(0x40)), 2u);
    q.pop(BankId(0));
    EXPECT_EQ(q.countForBlock(LogicalAddr(0x40)), 1u);
    q.pop(BankId(1));
    EXPECT_EQ(q.countForBlock(LogicalAddr(0x40)), 0u);
}

TEST(RequestQueue, OldestArrivalAcrossBanks)
{
    RequestQueue q(4, 8);
    EXPECT_EQ(q.oldestArrival(), MaxTick);
    q.push(makeReq(2, 0x80, ReqType::Write, 50));
    q.push(makeReq(0, 0x00, ReqType::Write, 30));
    q.push(makeReq(0, 0x40, ReqType::Write, 10)); // younger in FIFO
    EXPECT_EQ(q.oldestArrival(), 30u);
}

TEST(RequestQueue, PopEmptyBankPanics)
{
    RequestQueue q(2, 4);
    EXPECT_THROW(q.pop(BankId(0)), PanicError);
    EXPECT_THROW(q.front(BankId(1)), PanicError);
}

TEST(RequestQueue, BankRangeChecked)
{
    RequestQueue q(2, 4);
    EXPECT_THROW(q.push(makeReq(2, 0x0)), PanicError);
    EXPECT_THROW(q.countForBank(BankId(5)), PanicError);
}

TEST(RequestQueue, RejectsDegenerateConstruction)
{
    EXPECT_THROW(RequestQueue(0, 4), FatalError);
    EXPECT_THROW(RequestQueue(4, 0), FatalError);
}

TEST(RequestQueue, StressManyPushPops)
{
    RequestQueue q(8, 32);
    for (int round = 0; round < 100; ++round) {
        for (unsigned b = 0; b < 8; ++b) {
            q.push(makeReq(b, (round * 8 + b) * kBlockSize));
        }
    }
    EXPECT_EQ(q.size(), 800u);
    for (unsigned b = 0; b < 8; ++b) {
        Addr prev = 0;
        bool first = true;
        while (q.countForBank(BankId(b)) > 0) {
            MemRequest r = q.pop(BankId(b));
            if (!first) {
                EXPECT_GT(r.addr.value(), prev);
            }
            prev = r.addr.value();
            first = false;
        }
    }
    EXPECT_TRUE(q.empty());
}
