/** @file Tests for trace-file workloads. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "sim/logging.hh"
#include "workload/trace_workload.hh"
#include "workload/workload.hh"

using namespace mellowsim;

namespace
{

/** RAII temp file. */
class TempFile
{
  public:
    explicit TempFile(const std::string &contents = "")
    {
        char name[] = "/tmp/mellowsim_trace_XXXXXX";
        int fd = mkstemp(name);
        if (fd >= 0)
            close(fd);
        _path = name;
        if (!contents.empty()) {
            std::ofstream out(_path);
            out << contents;
        }
    }
    ~TempFile() { std::remove(_path.c_str()); }
    const std::string &path() const { return _path; }

  private:
    std::string _path;
};

} // namespace

TEST(TraceWorkload, ParsesAllKinds)
{
    TempFile f("# header comment\n"
               "10 R 0x1000\n"
               "0 W 2000  # trailing comment\n"
               "\n"
               "5 D 0x40\n"
               "0 X 0x40\n");
    TraceWorkload w(f.path());
    EXPECT_EQ(w.traceLength(), 4u);

    Op a = w.next();
    EXPECT_EQ(a.gap, 10u);
    EXPECT_FALSE(a.isWrite);
    EXPECT_FALSE(a.dependsOnPrev);
    EXPECT_EQ(a.addr, 0x1000u);

    Op b = w.next();
    EXPECT_TRUE(b.isWrite);
    EXPECT_EQ(b.addr, 0x2000u); // hex without prefix

    Op c = w.next();
    EXPECT_FALSE(c.isWrite);
    EXPECT_TRUE(c.dependsOnPrev);

    Op d = w.next();
    EXPECT_TRUE(d.isWrite);
    EXPECT_TRUE(d.dependsOnPrev);
}

TEST(TraceWorkload, ReplaysCyclically)
{
    TempFile f("1 R 0x40\n2 W 0x80\n");
    TraceWorkload w(f.path());
    EXPECT_EQ(w.cycles(), 0u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(w.next().addr, 0x40u);
        EXPECT_EQ(w.next().addr, 0x80u);
    }
    EXPECT_EQ(w.cycles(), 5u);
}

TEST(TraceWorkload, MissingFileIsFatal)
{
    EXPECT_THROW(TraceWorkload("/nonexistent/trace.txt"), FatalError);
}

TEST(TraceWorkload, EmptyTraceIsFatal)
{
    TempFile f("# nothing but comments\n\n");
    EXPECT_THROW(TraceWorkload{f.path()}, FatalError);
}

TEST(TraceWorkload, MalformedLinesAreFatal)
{
    {
        TempFile f("1 Q 0x40\n");
        EXPECT_THROW(TraceWorkload{f.path()}, FatalError);
    }
    {
        TempFile f("notanumber R 0x40\n");
        EXPECT_THROW(TraceWorkload{f.path()}, FatalError);
    }
    {
        TempFile f("1 R zzz\n");
        EXPECT_THROW(TraceWorkload{f.path()}, FatalError);
    }
    {
        TempFile f("1 R\n");
        EXPECT_THROW(TraceWorkload{f.path()}, FatalError);
    }
}

TEST(TraceWorkload, RoundTripsASyntheticWorkload)
{
    WorkloadPtr source = makeWorkload("gups", 21);
    TempFile f;
    writeTrace(f.path(), *source, 500);

    // Replaying the recorded prefix matches a fresh generator.
    WorkloadPtr fresh = makeWorkload("gups", 21);
    TraceWorkload replay(f.path());
    ASSERT_EQ(replay.traceLength(), 500u);
    for (int i = 0; i < 500; ++i) {
        Op a = fresh->next();
        Op b = replay.next();
        EXPECT_EQ(a.addr, b.addr);
        EXPECT_EQ(a.gap, b.gap);
        EXPECT_EQ(a.isWrite, b.isWrite);
        EXPECT_EQ(a.dependsOnPrev, b.dependsOnPrev);
    }
}

TEST(TraceWorkload, InMemoryConstruction)
{
    std::vector<Op> ops(3);
    ops[0].addr = 0x40;
    ops[1].addr = 0x80;
    ops[2].addr = 0xC0;
    TraceWorkload w(std::move(ops), "inline");
    EXPECT_EQ(w.info().name, "inline");
    EXPECT_EQ(w.next().addr, 0x40u);
    EXPECT_THROW(TraceWorkload(std::vector<Op>{}, "empty"), FatalError);
}

TEST(TraceWorkload, WriteTraceValidation)
{
    WorkloadPtr source = makeWorkload("stream", 1);
    EXPECT_THROW(writeTrace("/nonexistent/dir/x.txt", *source, 10),
                 FatalError);
    TempFile f;
    EXPECT_THROW(writeTrace(f.path(), *source, 0), FatalError);
}
