/**
 * @file
 * Property tests for the wear-leveler zoo additions (SoftWear,
 * WoLFRaM) and the unified remap path they plug into.
 *
 * The contract every leveler must hold is the same one
 * test_leveler_property.cc sweeps for Start-Gap and Security Refresh:
 * at every instant of a long interleaved stream the logical-to-
 * physical map is injective into the leveler's physical range. The
 * zoo adds two twists worth their own sweeps:
 *
 *  - SoftWear relocates whole pages from *approximate* sampled
 *    counters, and each relocation queues a bulk migration the owner
 *    drains as real writes — the permutation must hold mid-drain and
 *    the migration cost must be exactly two pages per swap.
 *  - WoLFRaM's programmable decoder serves leveling swaps and fault
 *    retirement through ONE table, so the bijection must survive
 *    arbitrary interleavings of the two — including spare exhaustion,
 *    which must degrade (nullopt) rather than corrupt the mapping.
 *
 * The full-chain tests then compose the sanctioned conversions
 * (LineIndex -> LeveledAddr -> DeviceAddr) with a live FaultModel, in
 * both wirings the controller uses: stacked (leveler + fault remap
 * table) and unified (WoLFRaM as FaultRemapDelegate, stacked table
 * provably empty).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "fault/fault_model.hh"
#include "sim/rng.hh"
#include "wear/soft_wear.hh"
#include "wear/start_gap.hh"
#include "wear/wolfram.hh"

using namespace mellowsim;

namespace
{

/** Assert a leveler's remap is injective into [0, numPhysicalBlocks). */
void
expectPermutation(const WearLeveler &lev, std::uint64_t step)
{
    std::vector<bool> hit(lev.numPhysicalBlocks(), false);
    for (std::uint64_t logical = 0; logical < lev.numBlocks();
         ++logical) {
        std::uint64_t phys = lev.remap(logical);
        ASSERT_LT(phys, lev.numPhysicalBlocks())
            << lev.name() << " left its range at step " << step;
        ASSERT_FALSE(hit[phys])
            << "two logical blocks collided on physical " << phys
            << " at step " << step;
        hit[phys] = true;
    }
}

/** Wear a device line to retirement (4 x 0.6 wear: repair, retire). */
void
retireLine(FaultModel &fm, BankId bank, DeviceAddr line, Tick base)
{
    for (int i = 0; i < 4; ++i)
        fm.verifyWrite(bank, line, 0.6, PulseFactor(1.0), 0, base + i);
}

} // namespace

// --- SoftWear --------------------------------------------------------

TEST(SoftWear, StaysPermutationAndChargesTwoPagesPerRelocation)
{
    constexpr std::uint64_t kBlocks = 256;
    constexpr std::uint64_t kPageBlocks = 16;
    // Sample every write and relocate after 4 so a hot page moves fast.
    SoftWear sw(kBlocks, kPageBlocks, /*counterSamplePeriod=*/1,
                /*relocationThreshold=*/4);
    ASSERT_EQ(sw.numPages(), kBlocks / kPageBlocks);

    Rng rng(0x50F7);
    std::uint64_t migrationWrites = 0;
    expectPermutation(sw, 0);
    for (std::uint64_t step = 1; step <= 3000; ++step) {
        // Skewed stream: half the writes hammer page 0's blocks, the
        // rest spread out — the shape SoftWear exists to level.
        std::uint64_t logical = (step % 2 == 0)
                                    ? rng.nextBounded(kPageBlocks)
                                    : rng.nextBounded(kBlocks);
        std::uint64_t extra[2] = {0, 0};
        EXPECT_EQ(sw.noteWrite(extra, logical), 0u)
            << "SoftWear moves pages via the migration queue, not the "
               "two-entry buffer";
        while (sw.hasPendingMigration()) {
            std::uint64_t phys = sw.takeMigrationWrite();
            ASSERT_LT(phys, kBlocks);
            ++migrationWrites;
        }
        expectPermutation(sw, step);
    }
    // The hot page must actually have been rotated away, and every
    // completed swap copies both pages involved.
    EXPECT_GT(sw.relocations(), 0u);
    EXPECT_EQ(migrationWrites, sw.relocations() * 2 * kPageBlocks);
    EXPECT_GT(sw.sampledWrites(), 0u);
}

TEST(SoftWear, SampledCountersApproximateButBounded)
{
    constexpr std::uint64_t kBlocks = 128;
    constexpr std::uint64_t kPageBlocks = 16;
    constexpr std::uint64_t kPeriod = 8;
    // Threshold high enough that nothing relocates: counters only grow.
    SoftWear sw(kBlocks, kPageBlocks, kPeriod,
                /*relocationThreshold=*/1000000);

    constexpr std::uint64_t kWrites = 4096;
    for (std::uint64_t i = 0; i < kWrites; ++i)
        (void)sw.noteWrite(nullptr, i % kBlocks);

    // Exactly every kPeriod-th write was sampled, and the sampled
    // total is what the per-page counters hold between them.
    EXPECT_EQ(sw.sampledWrites(), kWrites / kPeriod);
    std::uint64_t counted = 0;
    for (std::uint64_t p = 0; p < sw.numPages(); ++p)
        counted += sw.pageWriteCount(p);
    EXPECT_EQ(counted, sw.sampledWrites());
    EXPECT_EQ(sw.relocations(), 0u);
}

TEST(LevelerZoo, StartGapComposedWithSoftWearStaysInjective)
{
    // Mirror of the StartGap o SecurityRefresh composition sweep:
    // SoftWear's page permutation feeds Start-Gap's rotation, and the
    // composed map must stay injective at every interleaving —
    // including mid-migration, when SoftWear has already flipped its
    // table but the owner is still draining the copy writes.
    constexpr std::uint64_t kBlocks = 64;
    SoftWear sw(kBlocks, /*pageBlocks=*/8, /*counterSamplePeriod=*/1,
                /*relocationThreshold=*/3);
    StartGap sg(kBlocks, /*gapWritePeriod=*/3);
    Rng rng(0xC0FFEE);

    auto expectComposedBijection = [&](std::uint64_t step) {
        std::vector<bool> hit(sg.numPhysicalBlocks(), false);
        for (std::uint64_t logical = 0; logical < kBlocks; ++logical) {
            std::uint64_t mid = sw.remap(logical);
            ASSERT_LT(mid, kBlocks)
                << "SoftWear left its range at step " << step;
            std::uint64_t phys = sg.remap(mid);
            ASSERT_LT(phys, sg.numPhysicalBlocks())
                << "StartGap left its range at step " << step;
            ASSERT_FALSE(hit[phys])
                << "two logical blocks collided on physical " << phys
                << " at step " << step;
            hit[phys] = true;
        }
    };

    expectComposedBijection(0);
    for (std::uint64_t step = 1; step <= 4000; ++step) {
        std::uint64_t logical = rng.nextBounded(kBlocks);
        // Drive both layers the way the controller does: the demand
        // write lands at sw.remap(logical) inside Start-Gap's domain,
        // and every migration copy is one more write through SG.
        std::uint64_t mid = sw.remap(logical);
        (void)sg.remap(mid);
        std::uint64_t extra[2] = {0, 0};
        (void)sw.noteWrite(extra, logical);
        (void)sg.noteWrite(extra, mid);
        while (sw.hasPendingMigration()) {
            std::uint64_t copy = sw.takeMigrationWrite();
            (void)sg.noteWrite(extra, copy);
            expectComposedBijection(step);
        }
        expectComposedBijection(step);
    }
    // Sanity: both layers actually churned.
    EXPECT_GT(sw.relocations(), 0u);
    EXPECT_GT(sg.gapMoves(), kBlocks);
}

// --- WoLFRaM ---------------------------------------------------------

TEST(Wolfram, PadStaysBijectiveUnderInterleavedSwapsAndRetirements)
{
    constexpr std::uint64_t kBlocks = 256;
    constexpr std::uint64_t kSpares = 16;
    WolframPad pad(kBlocks, kSpares, /*swapPeriod=*/2, /*seed=*/0xFEED);
    ASSERT_TRUE(pad.ownsFaultRemap());
    ASSERT_EQ(pad.numPhysicalBlocks(), kBlocks + kSpares);

    Rng rng(0xBEEF);
    std::uint64_t retired = 0;
    for (std::uint64_t step = 1; step <= 2000; ++step) {
        std::uint64_t logical = rng.nextBounded(kBlocks);
        std::uint64_t extra[2] = {0, 0};
        unsigned moves = pad.noteWrite(extra, logical);
        for (unsigned i = 0; i < moves; ++i)
            ASSERT_LT(extra[i], pad.numPhysicalBlocks());

        // Every ~100th step, retire the current physical home of a
        // random logical line — the same table the swaps rotate.
        if (step % 100 == 0 && retired < kSpares) {
            std::uint64_t victim = pad.remap(rng.nextBounded(kBlocks));
            auto spare = pad.retirePhysical(victim);
            ASSERT_TRUE(spare.has_value())
                << "spares exhausted early at step " << step;
            ASSERT_LT(*spare, pad.numPhysicalBlocks());
            ASSERT_TRUE(pad.blockRetired(victim));
            ++retired;
        }

        ASSERT_TRUE(pad.remapValid()) << "PAD broke at step " << step;
        expectPermutation(pad, step);
        // No logical line may ever map onto a retired slot.
        for (std::uint64_t l = 0; l < kBlocks; ++l)
            ASSERT_FALSE(pad.blockRetired(pad.remap(l)))
                << "logical " << l << " mapped onto a retired slot at "
                << "step " << step;
    }
    EXPECT_GT(pad.swaps(), 0u);
    EXPECT_EQ(pad.retiredCount(), retired);
    EXPECT_EQ(pad.sparesUsed(), retired);
}

TEST(Wolfram, SpareExhaustionDegradesGracefully)
{
    constexpr std::uint64_t kBlocks = 32;
    constexpr std::uint64_t kSpares = 2;
    WolframPad pad(kBlocks, kSpares, /*swapPeriod=*/4, /*seed=*/1);

    // Burn both spares.
    for (std::uint64_t i = 0; i < kSpares; ++i) {
        auto spare = pad.retirePhysical(pad.remap(i));
        ASSERT_TRUE(spare.has_value());
    }
    EXPECT_EQ(pad.retiredCount(), kSpares);

    // The next retirement must report exhaustion — not assert, not
    // corrupt the table. The victim stays mapped (it soldiers on as
    // an uncorrectable line, which is the caller's job to record).
    std::uint64_t victim = pad.remap(10);
    EXPECT_FALSE(pad.retirePhysical(victim).has_value());
    EXPECT_EQ(pad.retiredCount(), kSpares);
    EXPECT_FALSE(pad.blockRetired(victim));
    EXPECT_TRUE(pad.remapValid());
    expectPermutation(pad, 0);

    // Leveling keeps working on the shrunken healthy pool.
    for (std::uint64_t step = 0; step < 64; ++step) {
        (void)pad.noteWrite(nullptr, step % kBlocks);
        ASSERT_TRUE(pad.remapValid());
    }
    EXPECT_GT(pad.swaps(), 0u);
}

// --- Full chain: LineIndex -> LeveledAddr -> DeviceAddr --------------

TEST(LevelerZoo, StackedChainStaysInjectiveUnderActiveRetirement)
{
    // The non-unified wiring: SoftWear levels, the FaultModel stacks
    // its retirement indirection on top. Retirements and page
    // relocations interleave; the composed chain
    // level() -> FaultModel::remap() must stay injective throughout
    // and retired leveled blocks must land in the spare region.
    constexpr std::uint64_t kLines = 128;
    constexpr std::uint64_t kSpares = 8;
    const BankId bank(0);

    SoftWear sw(kLines, /*pageBlocks=*/16, /*counterSamplePeriod=*/1,
                /*relocationThreshold=*/4);

    FaultConfig f;
    f.enabled = true;
    f.numBanks = 1;
    f.blocksPerBank = sw.numPhysicalBlocks();
    f.spareLinesPerBank = kSpares;
    f.repairEntriesPerLine = 1;
    f.enduranceSigma = 0.0;
    f.enduranceScale = 1.0;
    f.transientFailProb = 0.0;
    FaultModel fm(f);

    Rng rng(0x57AC);
    std::uint64_t retirementsDriven = 0;
    for (std::uint64_t step = 1; step <= 1500; ++step) {
        std::uint64_t logical = rng.nextBounded(kLines);
        (void)sw.noteWrite(nullptr, logical);
        while (sw.hasPendingMigration())
            (void)sw.takeMigrationWrite();

        if (step % 150 == 0 && retirementsDriven < kSpares) {
            // Retire whatever device line a random logical currently
            // resolves to — retirement in the face of live leveling.
            LeveledAddr lv = sw.level(LineIndex(rng.nextBounded(kLines)));
            DeviceAddr dev = fm.remap(bank, lv);
            retireLine(fm, bank, dev, Tick(step));
            ++retirementsDriven;
        }

        // Full-chain sweep: every logical line resolves to a distinct
        // healthy device line.
        std::unordered_set<std::uint64_t> devices;
        for (std::uint64_t l = 0; l < kLines; ++l) {
            LeveledAddr lv = sw.level(LineIndex(l));
            DeviceAddr dev = fm.remap(bank, lv);
            ASSERT_LT(dev.value(), kLines + kSpares);
            ASSERT_TRUE(devices.insert(dev.value()).second)
                << "chain collision on device line " << dev.value()
                << " at step " << step;
            ASSERT_FALSE(fm.lineRetired(bank, dev))
                << "chain resolved to retired device line "
                << dev.value() << " at step " << step;
        }
        ASSERT_TRUE(fm.remapTableValid());
    }
    EXPECT_EQ(fm.stats().retiredLines, retirementsDriven);
    EXPECT_EQ(fm.remapEntries(), retirementsDriven);
    EXPECT_EQ(fm.delegateRetiredLines(), 0u);
    EXPECT_GT(sw.relocations(), 0u);
    // Retired leveled blocks re-resolve into the spare region.
    EXPECT_GT(fm.sparesUsed(bank), 0u);
}

TEST(LevelerZoo, UnifiedChainKeepsStackedTableEmptyUnderRetirement)
{
    // The unified wiring: WoLFRaM's PAD is registered as the bank's
    // FaultRemapDelegate, so level() output IS the device line and
    // FaultModel::escalate reroutes retirement through the PAD. The
    // stacked remap table must stay provably empty, retirements must
    // be attributed to the delegate, and the chain must stay injective
    // all the way to spare exhaustion and graceful capacity decay.
    constexpr std::uint64_t kLines = 64;
    constexpr std::uint64_t kSpares = 8;
    const BankId bank(0);

    WolframPad pad(kLines, kSpares, /*swapPeriod=*/16, /*seed=*/0xFEED);

    FaultConfig f;
    f.enabled = true;
    f.numBanks = 1;
    // The controller sizes the fault layer to the PAD's logical space
    // when the leveler owns the remap; spare slots then line up with
    // the PAD's own spare region [kLines, kLines + kSpares).
    f.blocksPerBank = pad.numBlocks();
    f.spareLinesPerBank = kSpares;
    f.repairEntriesPerLine = 1;
    f.enduranceSigma = 0.0;
    f.enduranceScale = 1.0;
    f.transientFailProb = 0.0;
    FaultModel fm(f);
    fm.setRemapDelegate(bank, pad.faultRemapDelegate());

    Rng rng(0xF00D);
    double lastCapacity = 1.0;
    bool sawRetired = false;
    bool sawUncorrectable = false;
    for (std::uint64_t step = 1; step <= 3000; ++step) {
        std::uint64_t logical = rng.nextBounded(kLines);
        // Issue path: level() output is final for a unified leveler.
        DeviceAddr dev = deviceLineOf(pad.level(LineIndex(logical)));
        WriteVerdict verdict =
            fm.verifyWrite(bank, dev, 0.6, PulseFactor(1.0), 0,
                           Tick(step));
        sawRetired |= verdict == WriteVerdict::Retired;
        sawUncorrectable |= verdict == WriteVerdict::Uncorrectable;

        // Leveling swaps are maintenance writes the fault model sees.
        std::uint64_t extra[2] = {0, 0};
        unsigned moves = pad.noteWrite(extra, logical);
        for (unsigned i = 0; i < moves; ++i)
            fm.noteMaintenanceWrite(bank, DeviceAddr(extra[i]), 0.6,
                                    Tick(step));

        // One indirection: the stacked table never grows, and every
        // retirement is the delegate's.
        ASSERT_EQ(fm.remapEntries(), 0u);
        ASSERT_EQ(fm.delegateRetiredLines(), fm.stats().retiredLines);
        ASSERT_EQ(fm.delegateRetiredLines(), pad.retiredCount());
        ASSERT_TRUE(fm.remapTableValid());

        // Chain injectivity, skipping retired slots.
        std::unordered_set<std::uint64_t> devices;
        for (std::uint64_t l = 0; l < kLines; ++l) {
            DeviceAddr d = deviceLineOf(pad.level(LineIndex(l)));
            ASSERT_LT(d.value(), pad.numPhysicalBlocks());
            ASSERT_TRUE(devices.insert(d.value()).second)
                << "unified chain collision at step " << step;
            ASSERT_FALSE(pad.blockRetired(d.value()));
        }

        // Graceful degradation: capacity only ever shrinks.
        double capacity = fm.effectiveCapacityFraction();
        ASSERT_LE(capacity, lastCapacity);
        lastCapacity = capacity;
    }
    // The stream was hot enough to burn through every spare and into
    // uncorrectable territory — without any assert along the way.
    EXPECT_TRUE(sawRetired);
    EXPECT_TRUE(sawUncorrectable);
    EXPECT_EQ(pad.retiredCount(), kSpares);
    EXPECT_GT(fm.stats().deadLines, 0u);
    EXPECT_LT(fm.effectiveCapacityFraction(), 1.0);
    EXPECT_GT(fm.stats().firstUncorrectableTick, Tick(0));
    EXPECT_EQ(fm.writesToRetiredLines(), 0u);
}
