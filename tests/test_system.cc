/** @file End-to-end system tests: paper-level invariants. */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/logging.hh"
#include "system/report.hh"
#include "system/runner.hh"
#include "system/system.hh"

using namespace mellowsim;
using namespace mellowsim::policies;

namespace
{

SystemConfig
quickConfig(const std::string &workload, const WritePolicyConfig &policy,
            std::uint64_t instrs = 2'000'000)
{
    SystemConfig cfg;
    cfg.workloadName = workload;
    cfg.policy = policy;
    cfg.instructions = instrs;
    cfg.warmupInstructions = 1'000'000;
    return cfg;
}

} // namespace

TEST(System, ReportIsSane)
{
    SimReport r = runSystem(quickConfig("stream", norm()));
    EXPECT_EQ(r.workload, "stream");
    EXPECT_EQ(r.policy, "Norm");
    EXPECT_GE(r.instructions, 2'000'000u);
    EXPECT_GT(r.simTicks, 0u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LE(r.ipc, 8.0);
    EXPECT_GT(r.lifetimeYears, 0.0);
    EXPECT_GT(r.avgBankUtilization, 0.0);
    EXPECT_LE(r.avgBankUtilization, 1.0);
    EXPECT_GE(r.drainTimeFraction, 0.0);
    EXPECT_LE(r.drainTimeFraction, 1.0);
    EXPECT_GT(r.memReads, 0u);
    EXPECT_GT(r.issuedNormalWrites, 0u);
    EXPECT_GT(r.totalEnergyPj.value(), 0.0);
}

TEST(System, DeterministicAcrossRuns)
{
    SimReport a = runSystem(quickConfig("milc", beMellow().withSC(),
                                        1'000'000));
    SimReport b = runSystem(quickConfig("milc", beMellow().withSC(),
                                        1'000'000));
    EXPECT_EQ(a.simTicks, b.simTicks);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_DOUBLE_EQ(a.lifetimeYears, b.lifetimeYears);
    EXPECT_EQ(a.memReads, b.memReads);
    EXPECT_EQ(a.totalBankWrites(), b.totalBankWrites());
    EXPECT_EQ(a.eagerSent, b.eagerSent);
}

TEST(System, SlowWritesExtendLifetimeAndCostPerformance)
{
    SimReport n = runSystem(quickConfig("stream", norm()));
    SimReport s = runSystem(quickConfig("stream", slow()));
    EXPECT_GT(s.lifetimeYears, 2.0 * n.lifetimeYears);
    EXPECT_LT(s.ipc, n.ipc * 1.001);
}

TEST(System, BeMellowBeatsNormLifetimeWithoutHurtingIpc)
{
    // Wear comparisons need a window long enough that the dirty lines
    // still resident in the LLC at the end are noise relative to the
    // write backs that actually flowed to memory.
    SimReport n = runSystem(quickConfig("stream", norm(), 6'000'000));
    SimReport m =
        runSystem(quickConfig("stream", beMellow().withSC(),
                              6'000'000));
    EXPECT_GT(m.lifetimeYears, 1.3 * n.lifetimeYears);
    // stream is one of the paper's three write-latency-sensitive
    // workloads (Fig. 19) where mellow writes cost some IPC.
    EXPECT_GT(m.ipc, 0.8 * n.ipc);
    EXPECT_GT(m.eagerSent, 0u);
    EXPECT_GT(m.issuedEagerSlow, 0u);
}

TEST(System, ESlowHasLongestLifetime)
{
    SimReport s = runSystem(quickConfig("lbm", eSlow().withSC(),
                                        1'000'000));
    SimReport n = runSystem(quickConfig("lbm", norm(), 1'000'000));
    SimReport m = runSystem(quickConfig("lbm", beMellow().withSC(),
                                        1'000'000));
    EXPECT_GE(s.lifetimeYears, m.lifetimeYears * 0.999);
    EXPECT_GT(m.lifetimeYears, n.lifetimeYears);
    // Globally slow writes hurt the write-heavy lbm badly (paper:
    // 0.46x IPC).
    EXPECT_LT(s.ipc, 0.8 * n.ipc);
}

TEST(System, MpkiTracksTableIV)
{
    // The generators are calibrated against Table IV; the measured
    // MPKI on the real hierarchy must land in the right ballpark.
    // The cache-friendly workloads (hmmer, zeusmp) need their hot
    // region fully warmed or cold misses inflate the measurement.
    for (const std::string &name : workloadNames()) {
        SystemConfig cfg = quickConfig(name, norm(), 2'000'000);
        cfg.warmupInstructions = 5'000'000;
        SimReport r = runSystem(cfg);
        double target = paperMpki(name);
        EXPECT_GT(r.mpki, target * 0.6) << name;
        EXPECT_LT(r.mpki, target * 1.5) << name;
    }
}

TEST(System, EagerWritesConvertDemandWritebacks)
{
    SimReport n = runSystem(quickConfig("stream", norm()));
    SimReport m = runSystem(quickConfig("stream", beMellow().withSC()));
    // Eager write backs replace a large share of demand write backs
    // (Figure 14: nearly half of the writes become eager).
    EXPECT_LT(m.writebacksToMem, n.writebacksToMem);
    EXPECT_GT(m.eagerSent,
              (m.writebacksToMem + m.eagerSent) / 4);
}

TEST(System, WearQuotaRaisesLifetimeTowardTarget)
{
    // lbm under Norm dies young; +WQ must push lifetime up by forcing
    // slow writes.
    SimReport n = runSystem(quickConfig("lbm", norm(), 3'000'000));
    SimReport q = runSystem(quickConfig("lbm", norm().withWQ(),
                                        3'000'000));
    EXPECT_GT(q.lifetimeYears, n.lifetimeYears);
    EXPECT_GT(q.issuedSlowWrites, 0u);
    EXPECT_GT(q.quotaPeriods, 0u);
    EXPECT_GT(q.quotaSlowOnlyPeriods, 0u);
}

TEST(System, CancellationBoostsReadLatencyUnderSlowWrites)
{
    SimReport plain = runSystem(quickConfig("milc", slow(),
                                            1'000'000));
    SimReport sc = runSystem(quickConfig("milc", slow().withSC(),
                                         1'000'000));
    EXPECT_GT(sc.cancelledWrites, 0u);
    EXPECT_LT(sc.avgReadLatencyNs, plain.avgReadLatencyNs);
}

TEST(System, EnergyScalesWithSlowWriteShare)
{
    // gups evicts its dirty lines promptly, so write backs flow even
    // in a short window.
    SimReport n = runSystem(quickConfig("gups", norm(), 2'000'000));
    SimReport s = runSystem(quickConfig("gups", slow(), 2'000'000));
    ASSERT_GT(n.totalBankWrites(), 0u);
    ASSERT_GT(s.totalBankWrites(), 0u);
    // Same work, pricier writes: more write energy per write.
    double n_per_write =
        n.writeEnergyPj.value() / static_cast<double>(n.totalBankWrites());
    double s_per_write =
        s.writeEnergyPj.value() / static_cast<double>(s.totalBankWrites());
    EXPECT_NEAR(s_per_write / n_per_write, 1.66, 0.05); // CellC ratio
}

TEST(System, RunTwicePanics)
{
    System sys(quickConfig("gups", norm(), 200'000));
    sys.run();
    EXPECT_THROW(sys.run(), PanicError);
}

TEST(System, UnknownWorkloadIsFatal)
{
    SystemConfig cfg = quickConfig("doom", norm());
    EXPECT_THROW(System{cfg}, FatalError);
}

TEST(System, RunnerGridAndLookups)
{
    auto reports = runGrid({"gups", "milc"}, {norm(), slow()},
                           [](SystemConfig &cfg) {
                               cfg.instructions = 300'000;
                               cfg.warmupInstructions = 100'000;
                           });
    ASSERT_EQ(reports.size(), 4u);
    const SimReport &r = findReport(reports, "milc", "Slow");
    EXPECT_EQ(r.workload, "milc");
    EXPECT_EQ(r.policy, "Slow");
    EXPECT_THROW(findReport(reports, "milc", "Fast"), FatalError);

    // IPC is always finite and positive, even in tiny windows where
    // no write back has reached memory yet.
    double ratio = geoMeanNormalized(
        reports, {"gups", "milc"}, "Slow", "Norm",
        [](const SimReport &x) { return x.ipc; });
    EXPECT_GT(ratio, 0.2);
    EXPECT_LE(ratio, 1.001);
}

TEST(System, CsvAndTableRender)
{
    auto reports = runGrid({"gups"}, {norm()}, [](SystemConfig &cfg) {
        cfg.instructions = 200'000;
        cfg.warmupInstructions = 100'000;
    });
    std::string csv = reportsToCsv(reports);
    EXPECT_NE(csv.find("workload,policy"), std::string::npos);
    EXPECT_NE(csv.find("gups,Norm"), std::string::npos);

    std::string table =
        reportsToTable(reports, {"workload", "policy", "ipc"});
    EXPECT_NE(table.find("gups"), std::string::npos);
    EXPECT_THROW(reportsToTable(reports, {"nope"}), FatalError);
}

TEST(System, FewerBanksShrinkMellowBenefit)
{
    // Figure 18: with 4 banks the lifetime gap between Norm and
    // BE-Mellow+SC narrows vs 16 banks.
    auto with_banks = [](unsigned banks, const WritePolicyConfig &p) {
        SystemConfig cfg = quickConfig("GemsFDTD", p, 6'000'000);
        cfg.memory.geometry.numBanks = banks;
        cfg.memory.geometry.numRanks = banks / 4;
        return runSystem(cfg);
    };
    SimReport n16 = with_banks(16, norm());
    SimReport m16 = with_banks(16, beMellow().withSC());
    SimReport n4 = with_banks(4, norm());
    SimReport m4 = with_banks(4, beMellow().withSC());
    double gain16 = m16.lifetimeYears / n16.lifetimeYears;
    double gain4 = m4.lifetimeYears / n4.lifetimeYears;
    EXPECT_GT(gain16, gain4);
}

TEST(System, ExpoFactorSweepIsMonotoneForSlow)
{
    // Figure 17: lifetime of Slow policies grows with Expo_Factor.
    double prev = 0.0;
    for (double expo : {1.0, 2.0, 3.0}) {
        SystemConfig cfg = quickConfig("milc", slow(), 600'000);
        cfg.memory.endurance.expoFactor = expo;
        SimReport r = runSystem(cfg);
        EXPECT_GT(r.lifetimeYears, prev);
        prev = r.lifetimeYears;
    }
}
