/**
 * @file
 * Tests for the strong address-space / unit types and the typed
 * timing boundary (slowWritePulse with a validated PulseFactor).
 *
 * The negative half of the type contract — what must NOT compile —
 * lives in tests/compile_fail/; this file pins the positive runtime
 * semantics.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "nvm/timing.hh"
#include "sim/strong_types.hh"

using namespace mellowsim;

TEST(StrongTypes, OrdinalValueRoundTrip)
{
    EXPECT_EQ(LogicalAddr(0x1234).value(), 0x1234u);
    EXPECT_EQ(BankId(7).value(), 7u);
    EXPECT_EQ(LineIndex(42).value(), 42u);
    EXPECT_EQ(DeviceAddr(42).value(), 42u);
    EXPECT_EQ(LeveledAddr(42).value(), 42u);
    EXPECT_EQ(ChannelId(1).value(), 1u);
}

TEST(StrongTypes, OrdinalDefaultsToZero)
{
    EXPECT_EQ(LogicalAddr{}.value(), 0u);
    EXPECT_EQ(BankId{}.value(), 0u);
}

TEST(StrongTypes, OrdinalComparesWithinItsSpace)
{
    EXPECT_EQ(LogicalAddr(64), LogicalAddr(64));
    EXPECT_NE(LogicalAddr(64), LogicalAddr(65));
    EXPECT_LT(LogicalAddr(64), LogicalAddr(128));
    EXPECT_GE(BankId(3), BankId(3));
}

TEST(StrongTypes, OrdinalOffsetAndDistanceStayInSpace)
{
    LogicalAddr a(0x100);
    EXPECT_EQ(a + 64, LogicalAddr(0x140));
    EXPECT_EQ(a - 64, LogicalAddr(0xC0));
    EXPECT_EQ(LogicalAddr(0x140) - a, 64u);
    LineIndex line(10);
    ++line;
    EXPECT_EQ(line, LineIndex(11));
}

TEST(StrongTypes, OrdinalsWorkAsUnorderedKeys)
{
    std::unordered_set<LogicalAddr> blocks;
    blocks.insert(LogicalAddr(0x40));
    blocks.insert(LogicalAddr(0x40)); // duplicate
    blocks.insert(LogicalAddr(0x80));
    EXPECT_EQ(blocks.size(), 2u);

    std::unordered_map<DeviceAddr, int> table;
    table[DeviceAddr(5)] = 1;
    table[DeviceAddr(5)] += 1;
    EXPECT_EQ(table.size(), 1u);
    EXPECT_EQ(table[DeviceAddr(5)], 2);
}

TEST(StrongTypes, BlockHelpersStayLogical)
{
    EXPECT_EQ(blockAlign(LogicalAddr(0x1234)),
              LogicalAddr(0x1234 & ~Addr(kBlockSize - 1)));
    EXPECT_EQ(blockAlign(LogicalAddr(0x40)), LogicalAddr(0x40));
    EXPECT_EQ(blockNumber(LogicalAddr(0x1234)), 0x1234u >> kBlockShift);
    EXPECT_EQ(blockNumber(LogicalAddr(63)), 0u);
    EXPECT_EQ(blockNumber(LogicalAddr(64)), 1u);
}

TEST(StrongTypes, QuantityArithmetic)
{
    Picojoules a(1.5), b(0.5);
    EXPECT_DOUBLE_EQ((a + b).value(), 2.0);
    EXPECT_DOUBLE_EQ((a - b).value(), 1.0);
    EXPECT_DOUBLE_EQ((a * 2.0).value(), 3.0);
    EXPECT_DOUBLE_EQ((2.0 * a).value(), 3.0);
    EXPECT_DOUBLE_EQ((a / 3.0).value(), 0.5);
    // Ratio of like quantities is dimensionless.
    EXPECT_DOUBLE_EQ(a / b, 3.0);
    a += b;
    EXPECT_DOUBLE_EQ(a.value(), 2.0);
    a -= Picojoules(1.0);
    EXPECT_DOUBLE_EQ(a.value(), 1.0);
    EXPECT_LT(b, Picojoules(1.0));
}

TEST(StrongTypes, PulseFactorClampsToBaseline)
{
    EXPECT_DOUBLE_EQ(PulseFactor(3.0).value(), 3.0);
    EXPECT_DOUBLE_EQ(PulseFactor(1.0).value(), 1.0);
    // Sub-baseline factors are unrepresentable: clamped on entry.
    EXPECT_DOUBLE_EQ(PulseFactor(0.5).value(), 1.0);
    EXPECT_DOUBLE_EQ(PulseFactor(0.0).value(), 1.0);
    EXPECT_DOUBLE_EQ(PulseFactor(-2.0).value(), 1.0);
    EXPECT_DOUBLE_EQ(PulseFactor{}.value(), 1.0);
    EXPECT_EQ(PulseFactor(0.25), PulseFactor(1.0));
}

// --- slowWritePulse boundary behaviour ------------------------------

TEST(Timing, SlowWritePulseScalesExactFactors)
{
    NvmTimingParams t;
    EXPECT_EQ(t.slowWritePulse(PulseFactor(1.0)), t.tWP);
    EXPECT_EQ(t.slowWritePulse(PulseFactor(2.0)), 2 * t.tWP);
    EXPECT_EQ(t.slowWritePulse(PulseFactor(3.0)), 3 * t.tWP);
    EXPECT_EQ(t.slowWritePulse(PulseFactor(1.5)),
              t.tWP + t.tWP / 2);
}

TEST(Timing, SlowWritePulseRoundsToNearestTick)
{
    // A tiny tWP makes the rounding boundary explicit: 3 * 1.5 = 4.5
    // rounds to 5 (nearest, half away from zero); truncation would
    // have said 4 and systematically under-charged slow pulses.
    NvmTimingParams t;
    t.tWP = 3;
    EXPECT_EQ(t.slowWritePulse(PulseFactor(1.5)), 5u);
    EXPECT_EQ(t.slowWritePulse(PulseFactor(1.1)), 3u);  // 3.3 -> 3
    EXPECT_EQ(t.slowWritePulse(PulseFactor(1.34)), 4u); // 4.02 -> 4
    t.tWP = 7;
    EXPECT_EQ(t.slowWritePulse(PulseFactor(1.5)), 11u); // 10.5 -> 11
}

TEST(Timing, SlowWritePulseNeverShorterThanBaseline)
{
    // PulseFactor's clamp guarantees the device never sees a pulse
    // shorter than tWP, even from a nonsense sub-baseline request.
    NvmTimingParams t;
    EXPECT_EQ(t.slowWritePulse(PulseFactor(0.5)), t.tWP);
    EXPECT_EQ(t.slowWritePulse(PulseFactor(0.999999)), t.tWP);
    for (double f : {1.0, 1.25, 1.5, 2.0, 2.5, 3.0, 4.0}) {
        EXPECT_GE(t.slowWritePulse(PulseFactor(f)), t.tWP) << f;
    }
}

TEST(Timing, SlowWritePulseSaturatesAtMaxTick)
{
    // llround on a double past LLONG_MAX is undefined behaviour; the
    // guard saturates at MaxTick instead (a pulse the simulation
    // clock cannot count is "forever" either way).
    NvmTimingParams t;
    t.tWP = MaxTick / 2;
    EXPECT_EQ(t.slowWritePulse(PulseFactor(8.0)), MaxTick);
    t.tWP = MaxTick;
    EXPECT_EQ(t.slowWritePulse(PulseFactor(1.0)), MaxTick);

    // Just inside the representable range must NOT saturate (powers
    // of two are exact in double, so the product is exact too).
    t.tWP = Tick(1) << 60;
    EXPECT_EQ(t.slowWritePulse(PulseFactor(2.0)), Tick(1) << 61);

    // Ordinary datasheet values are unaffected by the guard.
    t = NvmTimingParams{};
    EXPECT_EQ(t.slowWritePulse(PulseFactor(8.0)), 8 * t.tWP);
}
