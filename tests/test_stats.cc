/** @file Unit tests for the statistics primitives. */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace mellowsim;
using namespace mellowsim::stats;

TEST(Counter, IncrementsAndAdds)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c++;
    c += 10;
    EXPECT_EQ(c.value(), 12u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, MeanMinMax)
{
    Average a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(1.0);
    a.sample(2.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 9.0);
}

TEST(Counter, MergeFoldsShardTallies)
{
    Counter a;
    Counter b;
    a += 5;
    b += 7;
    a.merge(b);
    EXPECT_EQ(a.value(), 12u);
    EXPECT_EQ(b.value(), 7u);
    a.merge(Counter{});
    EXPECT_EQ(a.value(), 12u);
}

TEST(Average, MergeEqualsConcatenatedStreams)
{
    Average a;
    a.sample(1.0);
    a.sample(3.0);
    Average b;
    b.sample(8.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 8.0);
}

TEST(Average, MergeEmptyIsIdentity)
{
    Average a;
    a.sample(2.0);
    a.merge(Average{});
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 2.0);

    // And merging into an empty one adopts the other's min/max.
    Average empty;
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.min(), 2.0);
    EXPECT_DOUBLE_EQ(empty.max(), 2.0);
}

TEST(Average, ResetClearsEverything)
{
    Average a;
    a.sample(5.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.min(), 0.0);
    EXPECT_EQ(a.max(), 0.0);
}

TEST(BusyTracker, DisjointIntervalsAccumulate)
{
    BusyTracker t;
    t.markBusyUntil(0, 10);
    t.markBusyUntil(20, 30);
    EXPECT_EQ(t.busyTicks(), 20u);
}

TEST(BusyTracker, OverlapMergesNotDoubleCounts)
{
    BusyTracker t;
    t.markBusyUntil(0, 10);
    t.markBusyUntil(5, 15); // extends by 5
    EXPECT_EQ(t.busyTicks(), 15u);
    t.markBusyUntil(6, 12); // fully contained
    EXPECT_EQ(t.busyTicks(), 15u);
}

TEST(BusyTracker, EmptyIntervalIgnored)
{
    BusyTracker t;
    t.markBusyUntil(10, 10);
    t.markBusyUntil(10, 5);
    EXPECT_EQ(t.busyTicks(), 0u);
}

TEST(BusyTracker, TruncateGivesBackFutureTime)
{
    BusyTracker t;
    t.markBusyUntil(0, 100);
    t.truncateAt(40);
    EXPECT_EQ(t.busyTicks(), 40u);
    EXPECT_EQ(t.busyUntil(), 40u);
}

TEST(BusyTracker, UtilizationFraction)
{
    BusyTracker t;
    t.markBusyUntil(0, 25);
    EXPECT_DOUBLE_EQ(t.utilization(100), 0.25);
    EXPECT_DOUBLE_EQ(t.utilization(0), 0.0);
}

TEST(BusyTracker, UtilizationClampedToOne)
{
    BusyTracker t;
    t.markBusyUntil(0, 100);
    // Busy beyond the measured horizon cannot exceed 100%.
    EXPECT_DOUBLE_EQ(t.utilization(50), 1.0);
}

TEST(Histogram, BucketsSamples)
{
    Histogram h(10.0, 5);
    h.sample(0.5);  // bucket 0
    h.sample(3.0);  // bucket 1
    h.sample(9.9);  // bucket 4
    h.sample(15.0); // clamped to bucket 4
    h.sample(-1.0); // clamped to bucket 0
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[4], 2u);
}

TEST(Histogram, MergeAddsBucketwise)
{
    Histogram a(10.0, 5);
    Histogram b(10.0, 5);
    a.sample(0.5);
    b.sample(0.5);
    b.sample(9.9);
    a.merge(b);
    EXPECT_EQ(a.total(), 3u);
    EXPECT_EQ(a.buckets()[0], 2u);
    EXPECT_EQ(a.buckets()[4], 1u);
}

TEST(Histogram, MergeRejectsShapeMismatch)
{
    Histogram a(10.0, 5);
    Histogram fewer_buckets(10.0, 4);
    Histogram different_range(20.0, 5);
    EXPECT_THROW(a.merge(fewer_buckets), PanicError);
    EXPECT_THROW(a.merge(different_range), PanicError);
}

TEST(GeoMean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geoMean({4.0, 9.0}), 6.0);
    EXPECT_DOUBLE_EQ(geoMean({2.0, 2.0, 2.0}), 2.0);
    EXPECT_EQ(geoMean({}), 0.0);
}

TEST(GeoMean, RejectsNonPositive)
{
    EXPECT_THROW(geoMean({1.0, 0.0}), PanicError);
    EXPECT_THROW(geoMean({1.0, -2.0}), PanicError);
}

// --- Concurrent shard-merge property -------------------------------

#include <algorithm>
#include <cstddef>
#include <set>
#include <vector>

#include "sim/rng.hh"
#include "sim/sync.hh"

namespace
{

struct ShardTallies
{
    Counter events;
    Average values{};
    Histogram spread{1000.0, 16};
};

} // namespace

/**
 * Merging per-shard tallies folded by worker threads over randomized
 * contiguous splits must be bit-identical to a serial fold over the
 * whole sample stream. Samples are integer-valued, so double sums are
 * exact and "bit-identical" is meaningful, not a tolerance check.
 */
TEST(StatsMergeProperty, RandomShardSplitsMatchSerialFold)
{
    constexpr std::size_t kSamples = 10000;

    for (std::uint64_t seed : {3ull, 99ull, 123456789ull}) {
        Rng rng(seed);
        std::vector<double> samples;
        samples.reserve(kSamples);
        for (std::size_t i = 0; i < kSamples; ++i)
            samples.push_back(static_cast<double>(rng.nextBounded(1000)));

        // Serial oracle over the whole stream.
        ShardTallies serial;
        for (double v : samples) {
            ++serial.events;
            serial.values.sample(v);
            serial.spread.sample(v);
        }

        // Random contiguous split into 1..8 shards.
        std::size_t shards = rng.nextBounded(8) + 1;
        std::set<std::size_t> cuts{0, kSamples};
        while (cuts.size() < shards + 1)
            cuts.insert(rng.nextBounded(kSamples));
        std::vector<std::size_t> bounds(cuts.begin(), cuts.end());

        std::vector<ShardTallies> partial(bounds.size() - 1);
        {
            sync::ThreadGroup workers;
            for (std::size_t s = 0; s + 1 < bounds.size(); ++s) {
                workers.spawn([&, s] {
                    for (std::size_t i = bounds[s]; i < bounds[s + 1];
                         ++i) {
                        ++partial[s].events;
                        partial[s].values.sample(samples[i]);
                        partial[s].spread.sample(samples[i]);
                    }
                });
            }
            workers.joinAll();
        }

        // Fold in shard order on the coordinating thread.
        ShardTallies merged;
        for (const ShardTallies &p : partial) {
            merged.events.merge(p.events);
            merged.values.merge(p.values);
            merged.spread.merge(p.spread);
        }

        EXPECT_EQ(merged.events.value(), serial.events.value());
        EXPECT_EQ(merged.values.count(), serial.values.count());
        EXPECT_EQ(merged.values.sum(), serial.values.sum());
        EXPECT_EQ(merged.values.min(), serial.values.min());
        EXPECT_EQ(merged.values.max(), serial.values.max());
        EXPECT_EQ(merged.values.mean(), serial.values.mean());
        EXPECT_EQ(merged.spread.total(), serial.spread.total());
        EXPECT_EQ(merged.spread.buckets(), serial.spread.buckets());
    }
}
