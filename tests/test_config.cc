/**
 * @file
 * Tests for the NVMain-style config parser and the device binding.
 *
 * Two oracles anchor the device-config subsystem:
 *
 *  - Round-trip: parse -> bind -> emit -> parse -> bind is
 *    field-identical for every shipped device config, so the
 *    emitted canonical text is a faithful serialisation and a config
 *    can be archived, diffed and reloaded without drift.
 *
 *  - Fidelity: configs/reram_paper.config binds to exactly the
 *    compiled-in defaults, so running any bench with
 *    `--device reram_paper` reproduces the paper figures
 *    byte-for-byte (fig11 is the CI gate).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "config/config_file.hh"
#include "config/device_config.hh"
#include "sim/types.hh"

using namespace mellowsim;

// --- Parser semantics ------------------------------------------------

TEST(ConfigFile, CommentLeadersAreStripped)
{
    ConfigFile cfg = ConfigFile::parseString(
        "; leading comment\n"
        "CLK 400 ; NVMain-style trailing comment\n"
        "tRCD 120 // C++-style trailing comment\n"
        "# hash comment line\n"
        "tWP 150\n");
    EXPECT_TRUE(cfg.has("CLK"));
    EXPECT_DOUBLE_EQ(cfg.megahertz("CLK").value(), 400.0);
    EXPECT_EQ(cfg.nanoseconds("tRCD"), 120 * kNanosecond);
    EXPECT_EQ(cfg.nanoseconds("tWP"), 150 * kNanosecond);
    EXPECT_EQ(cfg.entries().size(), 3u);
}

TEST(ConfigFile, LaterAssignmentWinsKeepingFirstSeenPosition)
{
    ConfigFile cfg = ConfigFile::parseString(
        "CLK 200\n"
        "tRCD 120\n"
        "CLK 400\n");
    EXPECT_DOUBLE_EQ(cfg.megahertz("CLK").value(), 400.0);
    // The override updated the value in place: CLK still emits before
    // tRCD, so emit() is stable under specialisation.
    EXPECT_EQ(cfg.emit(), "CLK 400\ntRCD 120\n");
}

TEST(ConfigFile, UnitNamedAccessorsConvert)
{
    ConfigFile cfg = ConfigFile::parseString(
        "tCAS 2.5\n"
        "Energy 197.6\n"
        "Queue 32\n"
        "Expo 2.5\n"
        "Scramble true\n"
        "Cell CellC\n"
        "Row 16384\n"
        "Bus 64\n");
    // 2.5 ns is 2500 ticks: the accessor, not the call site, owns the
    // ns -> Tick scale factor.
    EXPECT_EQ(cfg.nanoseconds("tCAS"), Tick(2500));
    EXPECT_DOUBLE_EQ(cfg.picojoules("Energy").value(), 197.6);
    EXPECT_EQ(cfg.count("Queue"), 32u);
    EXPECT_DOUBLE_EQ(cfg.ratio("Expo"), 2.5);
    EXPECT_TRUE(cfg.flag("Scramble"));
    EXPECT_EQ(cfg.word("Cell"), "CellC");
    EXPECT_EQ(cfg.bytes("Row"), 16384u);
    EXPECT_EQ(cfg.bits("Bus"), 64u);
}

TEST(ConfigFile, DefaultedAccessorsFallBackWhenAbsent)
{
    ConfigFile cfg = ConfigFile::parseString("CLK 400\n");
    EXPECT_EQ(cfg.countOr("Missing", 7), 7u);
    EXPECT_DOUBLE_EQ(cfg.ratioOr("Missing", 0.9), 0.9);
    EXPECT_FALSE(cfg.flagOr("Missing", false));
    EXPECT_EQ(cfg.wordOr("Missing", "CellC"), "CellC");
    EXPECT_EQ(cfg.nanosecondsOr("Missing", Tick(123)), Tick(123));
    EXPECT_DOUBLE_EQ(
        cfg.picojoulesOr("Missing", Picojoules(1.5)).value(), 1.5);
}

// --- Shipped device zoo ----------------------------------------------

TEST(DeviceConfig, ZooShipsAtLeastThreeDevices)
{
    const auto names = deviceConfigNames();
    ASSERT_GE(names.size(), 3u);
    // The paper point must always be present: it is the fidelity
    // anchor every figure bench defaults to.
    EXPECT_NE(std::find(names.begin(), names.end(),
                        std::string("reram_paper")),
              names.end());
}

TEST(DeviceConfig, RoundTripIsFieldIdenticalForEveryShippedConfig)
{
    for (const std::string &name : deviceConfigNames()) {
        const DeviceConfig bound = loadDeviceConfig(name);
        EXPECT_EQ(bound.name, name);

        const std::string text = emitDeviceConfig(bound);
        const ConfigFile reparsed =
            ConfigFile::parseString(text, name + " (emitted)");
        const DeviceConfig rebound = bindDeviceConfig(reparsed, name);

        EXPECT_TRUE(deviceConfigsEqual(bound, rebound)) << name;
        // The canonical text is a fixed point: emitting the rebound
        // device reproduces it byte-for-byte.
        EXPECT_EQ(emitDeviceConfig(rebound), text) << name;
    }
}

TEST(DeviceConfig, PaperConfigBindsToCompiledInDefaults)
{
    // The fidelity oracle: the shipped paper datasheet is the
    // compiled-in configuration, field for field, so --device
    // reram_paper cannot change any figure.
    const DeviceConfig paper = loadDeviceConfig("reram_paper");
    EXPECT_TRUE(deviceConfigsEqual(paper, DeviceConfig{}));
}

TEST(DeviceConfig, DevicesAreDistinctTechnologyPoints)
{
    // The zoo is only useful if the devices actually differ.
    const auto names = deviceConfigNames();
    for (std::size_t i = 0; i < names.size(); ++i)
        for (std::size_t j = i + 1; j < names.size(); ++j)
            EXPECT_FALSE(deviceConfigsEqual(loadDeviceConfig(names[i]),
                                            loadDeviceConfig(names[j])))
                << names[i] << " vs " << names[j];
}
