/** @file Tests for the synthetic workload generators (Table IV). */

#include <gtest/gtest.h>

#include <set>

#include "sim/logging.hh"
#include "workload/generators.hh"
#include "workload/workload.hh"

using namespace mellowsim;

TEST(Workloads, ElevenNamedWorkloads)
{
    const auto &names = workloadNames();
    ASSERT_EQ(names.size(), 11u);
    EXPECT_EQ(names.front(), "leslie3d");
    EXPECT_EQ(names.back(), "gups");
}

TEST(Workloads, FactoryBuildsEveryName)
{
    for (const std::string &name : workloadNames()) {
        WorkloadPtr w = makeWorkload(name, 1);
        ASSERT_NE(w, nullptr);
        EXPECT_EQ(w->info().name, name);
        EXPECT_GT(w->info().paperMpki, 0.0);
        EXPECT_DOUBLE_EQ(w->info().paperMpki, paperMpki(name));
    }
}

TEST(Workloads, UnknownNameIsFatal)
{
    EXPECT_THROW(makeWorkload("quake3"), FatalError);
    EXPECT_THROW(paperMpki("quake3"), FatalError);
}

TEST(Workloads, DeterministicForSameSeed)
{
    WorkloadPtr a = makeWorkload("milc", 42);
    WorkloadPtr b = makeWorkload("milc", 42);
    for (int i = 0; i < 1000; ++i) {
        Op x = a->next();
        Op y = b->next();
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.gap, y.gap);
        EXPECT_EQ(x.isWrite, y.isWrite);
    }
}

TEST(Workloads, SeedsChangeTheStream)
{
    WorkloadPtr a = makeWorkload("milc", 1);
    WorkloadPtr b = makeWorkload("milc", 2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a->next().addr == b->next().addr;
    EXPECT_LT(same, 100);
}

TEST(Workloads, GupsIsPureReadModifyWrite)
{
    WorkloadPtr w = makeWorkload("gups", 7);
    for (int i = 0; i < 500; ++i) {
        Op load = w->next();
        EXPECT_FALSE(load.isWrite);
        Op store = w->next();
        EXPECT_TRUE(store.isWrite);
        EXPECT_TRUE(store.dependsOnPrev);
        EXPECT_EQ(store.addr, load.addr);
        EXPECT_EQ(store.gap, 0u);
    }
}

TEST(Workloads, McfLoadsAreDependent)
{
    WorkloadPtr w = makeWorkload("mcf", 7);
    int dependent = 0, loads = 0;
    for (int i = 0; i < 2000; ++i) {
        Op op = w->next();
        if (!op.isWrite) {
            ++loads;
            dependent += op.dependsOnPrev;
        }
    }
    // All cold loads chase pointers; only (rare) hot loads don't.
    EXPECT_GT(static_cast<double>(dependent) / loads, 0.95);
}

TEST(Workloads, StreamWriteFractionIsOneThird)
{
    WorkloadPtr w = makeWorkload("stream", 7);
    int writes = 0;
    constexpr int kOps = 30000;
    for (int i = 0; i < kOps; ++i)
        writes += w->next().isWrite;
    EXPECT_NEAR(writes / static_cast<double>(kOps), 1.0 / 3.0, 0.02);
}

TEST(Workloads, LbmIsWriteHeavy)
{
    WorkloadPtr w = makeWorkload("lbm", 7);
    int writes = 0;
    constexpr int kOps = 30000;
    for (int i = 0; i < kOps; ++i)
        writes += w->next().isWrite;
    EXPECT_NEAR(writes / static_cast<double>(kOps), 0.5, 0.02);
}

TEST(Workloads, MeanGapMatchesCalibration)
{
    // MPKI = 1000 * coldFraction / (meanGap + 1 + rmw): check the gap
    // statistics deliver the calibrated mean.
    for (const char *name : {"stream", "mcf", "lbm"}) {
        WorkloadPtr w = makeWorkload(name, 3);
        double sum_instr = 0.0;
        constexpr int kOps = 100000;
        for (int i = 0; i < kOps; ++i) {
            Op op = w->next();
            sum_instr += op.gap + 1;
        }
        double mpki_closed_form = 1000.0 * kOps / sum_instr;
        EXPECT_NEAR(mpki_closed_form, paperMpki(name),
                    paperMpki(name) * 0.05)
            << name;
    }
}

TEST(Workloads, AddressesAreBlockAligned)
{
    for (const std::string &name : workloadNames()) {
        WorkloadPtr w = makeWorkload(name, 5);
        for (int i = 0; i < 200; ++i)
            EXPECT_EQ(w->next().addr % kBlockSize, 0u) << name;
    }
}

TEST(Workloads, HotColdSplitRespectsFractions)
{
    WorkloadParams p;
    p.name = "custom";
    p.coldFraction = 0.25;
    p.hotBytes = 64 * 1024;
    p.footprintBytes = 16ull * 1024 * 1024;
    p.meanGap = 10;
    WorkloadPtr w = makeSynthetic(p, 11);
    int cold = 0;
    constexpr int kOps = 40000;
    for (int i = 0; i < kOps; ++i)
        cold += w->next().addr >= (1ull << 30);
    EXPECT_NEAR(cold / static_cast<double>(kOps), 0.25, 0.02);
}

TEST(Workloads, SyntheticValidatesParams)
{
    WorkloadParams p;
    p.coldFraction = 1.5;
    EXPECT_THROW(makeSynthetic(p, 1), FatalError);
    p = WorkloadParams{};
    p.writeFraction = -0.1;
    EXPECT_THROW(makeSynthetic(p, 1), FatalError);
    p = WorkloadParams{};
    p.meanGap = -1.0;
    EXPECT_THROW(makeSynthetic(p, 1), FatalError);
}

TEST(Workloads, SequentialStreamsLandOnDistinctBanks)
{
    // Under the default row-granularity interleave (16 KB chunks over
    // 16 banks), stream's three arrays must start on different banks
    // (the stagger in PatternCursor guarantees it) so the paper's
    // bank-level asymmetry exists.
    WorkloadPtr w = makeWorkload("stream", 13);
    std::set<std::uint64_t> banks;
    for (int i = 0; i < 300; ++i)
        banks.insert((w->next().addr / (16 * 1024)) % 16);
    EXPECT_GE(banks.size(), 3u);
}
