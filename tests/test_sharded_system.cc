/**
 * @file
 * Property tests of the sharded System (system/sharded.hh): the real
 * model — front-end + per-channel ChannelShard tasks — run under the
 * serial epoch oracle (shards = 1) must be byte-identical, report
 * fingerprint for report fingerprint, to every threaded run, across
 * random seeds, shard counts and fault injection on/off.
 *
 * The sharded model is deliberately NOT compared against the
 * monolithic System: the cross-shard hop adds one lookahead of
 * request latency (see system/sharded.hh), so monolithic and sharded
 * runs are different machines. The contract under test is
 * determinism *within* the sharded model.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "mellow/policy.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "system/report.hh"
#include "system/runner.hh"
#include "system/sharded.hh"
#include "system/system.hh"

using namespace mellowsim;

namespace
{

/**
 * A 16-channel machine small enough for a unit test: 1 GB total
 * (64 MB per channel), tiny caches so write-backs actually reach
 * memory, and a short detailed run.
 */
SystemConfig
smallShardedConfig(std::uint64_t seed, bool faults)
{
    SystemConfig cfg;
    cfg.workloadName = "gups"; // random traffic touches every channel
    cfg.policy = policies::fromName("BE-Mellow+SC+WQ");
    cfg.instructions = 60'000;
    cfg.warmupInstructions = 10'000;
    cfg.seed = seed;
    cfg.numChannels = 16;
    cfg.memory.geometry.capacityBytes = 1ull << 30;
    cfg.hierarchy.l1.sizeBytes = 4 * 1024;
    cfg.hierarchy.l2.sizeBytes = 8 * 1024;
    cfg.hierarchy.llc.cache.sizeBytes = 16 * 1024;
    if (faults) {
        FaultConfig &f = cfg.memory.fault;
        f.enabled = true;
        f.enduranceScale = 5e-7;
        f.enduranceSigma = 1.0;
        f.transientFailProb = 0.02;
        f.maxRetries = 3;
        f.repairEntriesPerLine = 1;
        f.spareLinesPerBank = 8;
    }
    return cfg;
}

std::string
shardedFingerprint(SystemConfig cfg, unsigned shards)
{
    cfg.shards = shards;
    return reportFingerprint(runSystem(cfg));
}

} // namespace

TEST(ShardedSystem, SerialOracleProducesPlausibleTraffic)
{
    SystemConfig cfg = smallShardedConfig(1, false);
    cfg.shards = 1;
    SimReport r = runSystem(cfg);
    EXPECT_EQ(r.status, ReportStatus::Ok);
    // The core retires whole ops, so it may overshoot the limit by
    // the final op's gap — same as the monolithic path.
    EXPECT_GE(r.instructions, cfg.instructions);
    EXPECT_GT(r.simTicks, 0u);
    EXPECT_GT(r.ipc, 0.0);
    // Random traffic with tiny caches must reach memory on both the
    // read and the write-back path.
    EXPECT_GT(r.memReads, 0u);
    EXPECT_GT(r.writebacksToMem, 0u);
    EXPECT_GT(r.totalBankWrites(), 0u);
    EXPECT_GT(r.avgReadLatencyNs, 0.0);
    EXPECT_GT(r.totalEnergyPj.value(), 0.0);
}

TEST(ShardedSystem, ThreadedEpochsMatchSerialOracle)
{
    // Random seeds x {2, 4, 8} workers x faults on/off — every
    // combination must fingerprint identically to the serial oracle.
    Rng seeds(0xA11CE5ull);
    for (int round = 0; round < 2; ++round) {
        std::uint64_t seed = seeds.nextBounded(1u << 20) + 1;
        for (bool faults : {false, true}) {
            SystemConfig cfg = smallShardedConfig(seed, faults);
            std::string oracle = shardedFingerprint(cfg, 1);
            for (unsigned shards : {2u, 4u, 8u}) {
                EXPECT_EQ(shardedFingerprint(cfg, shards), oracle)
                    << "seed " << seed << " shards " << shards
                    << " faults " << faults;
            }
        }
    }
}

TEST(ShardedSystem, SerialOracleReproducesItself)
{
    SystemConfig cfg = smallShardedConfig(99, true);
    EXPECT_EQ(shardedFingerprint(cfg, 1), shardedFingerprint(cfg, 1));
}

TEST(ShardedSystem, DifferentSeedsDiverge)
{
    // The fingerprint is not vacuous: different seeds must produce
    // different runs (gups traffic is seed-driven).
    SystemConfig a = smallShardedConfig(1, false);
    SystemConfig b = smallShardedConfig(2, false);
    b.seed = 2;
    EXPECT_NE(shardedFingerprint(a, 1), shardedFingerprint(b, 1));
}

TEST(ShardedSystem, LookaheadDerivesFromDeviceTimingFloor)
{
    NvmTimingParams timing;
    Lookahead la = channelLookahead(timing);
    // The derivation: min(tBURST, tRCD + tCAS), and the result is a
    // usable conservative window (>= one controller clock).
    EXPECT_EQ(la.window(),
              std::min<Tick>(timing.tBurst, timing.tRCD + timing.tCAS));
    EXPECT_GE(la.window(), timing.tCK);
}

TEST(ShardedSystem, RunnerFlagSelectsShardCount)
{
    // --shards plumbs through the shared runner arg helpers.
    setShardOverride(4);
    SystemConfig cfg;
    applyShardSelection(cfg);
    EXPECT_EQ(cfg.shards, 4u);
    clearShardOverride();
}
