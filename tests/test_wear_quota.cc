/** @file Tests for the Wear Quota scheme (Section IV-C). */

#include <gtest/gtest.h>

#include "mellow/wear_quota.hh"
#include "sim/logging.hh"

using namespace mellowsim;

namespace
{

WearQuotaConfig
config(double years = 8.0, std::uint64_t blocks = 1000)
{
    WearQuotaConfig c;
    c.samplePeriod = 500 * kMicrosecond;
    c.targetLifetimeYears = years;
    c.ratioQuota = 0.9;
    c.blocksPerBank = blocks;
    return c;
}

} // namespace

TEST(WearQuota, BoundMatchesClosedForm)
{
    WearQuota q(config(), 4);
    // WearBound_bank = blocks * ratio * T_sample / T_lifetime
    double t_sample = 500e-6;
    double t_life = 8.0 * kSecondsPerYear;
    double expect = 1000.0 * 0.9 * t_sample / t_life;
    EXPECT_NEAR(q.wearBoundBank(), expect, expect * 1e-12);
}

TEST(WearQuota, NoWearNeverExceeds)
{
    WearQuota q(config(), 2);
    for (int i = 0; i < 10; ++i) {
        q.onPeriodBoundary();
        EXPECT_FALSE(q.slowOnly(BankId(0)));
        EXPECT_FALSE(q.slowOnly(BankId(1)));
        EXPECT_LE(q.exceedQuota(BankId(0)), 0.0);
    }
    EXPECT_EQ(q.numPeriods(), 10u);
}

TEST(WearQuota, HeavyWearTripsSlowOnly)
{
    WearQuota q(config(), 2);
    q.recordWear(BankId(0), q.wearBoundBank() * 5.0);
    q.onPeriodBoundary();
    EXPECT_TRUE(q.slowOnly(BankId(0)));
    EXPECT_FALSE(q.slowOnly(BankId(1))); // quota is per-bank
    EXPECT_GT(q.exceedQuota(BankId(0)), 0.0);
}

TEST(WearQuota, DebtAmortizesOverQuietPeriods)
{
    WearQuota q(config(), 1);
    // Overshoot by 3 periods' worth of budget in period 1...
    q.recordWear(BankId(0), q.wearBoundBank() * 4.0);
    q.onPeriodBoundary();
    EXPECT_TRUE(q.slowOnly(BankId(0)));
    // ...then stay quiet: after 3 more boundaries the debt clears.
    q.onPeriodBoundary();
    EXPECT_TRUE(q.slowOnly(BankId(0)));
    q.onPeriodBoundary();
    EXPECT_TRUE(q.slowOnly(BankId(0)));
    q.onPeriodBoundary();
    EXPECT_FALSE(q.slowOnly(BankId(0)));
}

TEST(WearQuota, ExactBudgetDoesNotTrip)
{
    WearQuota q(config(), 1);
    q.recordWear(BankId(0), q.wearBoundBank());
    q.onPeriodBoundary();
    // ExceedQuota must be strictly positive to force slow writes.
    EXPECT_FALSE(q.slowOnly(BankId(0)));
}

TEST(WearQuota, SlowOnlyPeriodCounting)
{
    WearQuota q(config(), 1);
    q.recordWear(BankId(0), q.wearBoundBank() * 2.5);
    q.onPeriodBoundary(); // slow
    q.onPeriodBoundary(); // still slow (debt 0.5 budget)
    q.onPeriodBoundary(); // clear
    EXPECT_EQ(q.slowOnlyPeriods(BankId(0)), 2u);
}

TEST(WearQuota, SteadyOverloadStaysSlowForever)
{
    WearQuota q(config(), 1);
    for (int i = 0; i < 20; ++i) {
        q.recordWear(BankId(0), q.wearBoundBank() * 2.0);
        q.onPeriodBoundary();
        EXPECT_TRUE(q.slowOnly(BankId(0))) << "period " << i;
    }
}

TEST(WearQuota, LongerTargetLifetimeMeansSmallerBudget)
{
    WearQuota q8(config(8.0), 1);
    WearQuota q16(config(16.0), 1);
    EXPECT_NEAR(q8.wearBoundBank() / q16.wearBoundBank(), 2.0, 1e-9);
}

TEST(WearQuota, BankIndexValidation)
{
    WearQuota q(config(), 2);
    EXPECT_THROW(q.recordWear(BankId(2), 1.0), PanicError);
    EXPECT_THROW(q.slowOnly(BankId(5)), PanicError);
    EXPECT_THROW(q.exceedQuota(BankId(5)), PanicError);
    EXPECT_THROW(q.bankWear(BankId(5)), PanicError);
    EXPECT_THROW(q.slowOnlyPeriods(BankId(5)), PanicError);
}

TEST(WearQuota, RejectsBadConfig)
{
    EXPECT_THROW(WearQuota(config(), 0), FatalError);
    WearQuotaConfig c = config();
    c.samplePeriod = 0;
    EXPECT_THROW(WearQuota(c, 1), FatalError);
    c = config();
    c.targetLifetimeYears = 0.0;
    EXPECT_THROW(WearQuota(c, 1), FatalError);
    c = config();
    c.ratioQuota = 1.2;
    EXPECT_THROW(WearQuota(c, 1), FatalError);
}

/**
 * Property: under any wear pattern, the long-run average wear rate of
 * a bank that respects slowOnly() (modelled here as writing exactly
 * the budget when free and nothing when slow-only) never exceeds the
 * per-period budget.
 */
TEST(WearQuota, LongRunRateBoundedByBudget)
{
    WearQuota q(config(), 1);
    double total = 0.0;
    for (int i = 0; i < 1000; ++i) {
        double wear = q.slowOnly(BankId(0)) ? 0.0 : q.wearBoundBank() * 1.7;
        q.recordWear(BankId(0), wear);
        total += wear;
        q.onPeriodBoundary();
    }
    double avg_per_period = total / 1000.0;
    // Allow one period of slack for the trailing overshoot.
    EXPECT_LE(avg_per_period,
              q.wearBoundBank() * (1.0 + 2.0 / 1000.0) * 1.001);
}

TEST(WearQuota, ColdStartIsSlowOnlyUntilFirstBoundary)
{
    WearQuota q(config(), 2);
    EXPECT_TRUE(q.slowOnly(BankId(0)));
    EXPECT_TRUE(q.slowOnly(BankId(1)));
    q.onPeriodBoundary(); // no wear recorded: headroom proven
    EXPECT_FALSE(q.slowOnly(BankId(0)));
}

TEST(WearQuota, ColdStartCanBeDisabled)
{
    WearQuotaConfig c = config();
    c.coldStartSlow = false;
    WearQuota q(c, 1);
    EXPECT_FALSE(q.slowOnly(BankId(0)));
}
