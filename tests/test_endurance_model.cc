/** @file Tests for the Equation 2 endurance model (Figure 1). */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/logging.hh"
#include "wear/endurance_model.hh"

using namespace mellowsim;

TEST(EnduranceModel, BaselineEnduranceAtBaselineLatency)
{
    EnduranceModel m;
    EXPECT_DOUBLE_EQ(m.enduranceAt(150 * kNanosecond), 5.0e6);
    EXPECT_DOUBLE_EQ(m.enduranceAtFactor(PulseFactor(1.0)), 5.0e6);
}

TEST(EnduranceModel, QuadraticDefaultMatchesTableII)
{
    // Table II: 1.5x -> 1.125e7, 2x -> 2e7, 3x -> 4.5e7 writes.
    EnduranceModel m;
    EXPECT_NEAR(m.enduranceAtFactor(PulseFactor(1.5)), 1.125e7, 1.0);
    EXPECT_NEAR(m.enduranceAtFactor(PulseFactor(2.0)), 2.0e7, 1.0);
    EXPECT_NEAR(m.enduranceAtFactor(PulseFactor(3.0)), 4.5e7, 1.0);
    EXPECT_NEAR(m.enduranceAt(450 * kNanosecond), 4.5e7, 1.0);
}

TEST(EnduranceModel, LinearAndCubicExponents)
{
    EnduranceParams p;
    p.expoFactor = 1.0;
    EXPECT_NEAR(EnduranceModel(p).enduranceAtFactor(PulseFactor(3.0)),
                1.5e7, 1.0);
    p.expoFactor = 3.0;
    EXPECT_NEAR(EnduranceModel(p).enduranceAtFactor(PulseFactor(3.0)),
                1.35e8, 1.0);
}

TEST(EnduranceModel, WearIsReciprocalOfEndurance)
{
    EnduranceModel m;
    for (double n : {1.0, 1.5, 2.0, 2.5, 3.0}) {
        EXPECT_DOUBLE_EQ(m.wearPerWriteFactor(PulseFactor(n)),
                         1.0 / m.enduranceAtFactor(PulseFactor(n)));
    }
}

/** Property: endurance is monotone non-decreasing in latency. */
TEST(EnduranceModel, MonotoneInLatency)
{
    for (double expo : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0}) {
        EnduranceParams p;
        p.expoFactor = expo;
        EnduranceModel m(p);
        double prev = 0.0;
        for (double n = 1.0; n <= 4.0; n += 0.01) {
            double e = m.enduranceAtFactor(PulseFactor(n));
            EXPECT_GE(e, prev);
            prev = e;
        }
    }
}

/** Property: slowing by a*b multiplies endurance gains. */
TEST(EnduranceModel, ScalingComposes)
{
    EnduranceModel m;
    double e_ab = m.enduranceAtFactor(PulseFactor(2.0 * 1.5));
    double gain_a = m.enduranceAtFactor(PulseFactor(2.0)) /
                    m.enduranceAtFactor(PulseFactor(1.0));
    double gain_b = m.enduranceAtFactor(PulseFactor(1.5)) /
                    m.enduranceAtFactor(PulseFactor(1.0));
    EXPECT_NEAR(e_ab, 5.0e6 * gain_a * gain_b / 1.0, 1e-3 * e_ab);
}

TEST(EnduranceModel, RejectsBadParameters)
{
    EnduranceParams p;
    p.baseWriteLatency = 0;
    EXPECT_THROW(EnduranceModel{p}, FatalError);

    p = EnduranceParams{};
    p.baseEndurance = 0.0;
    EXPECT_THROW(EnduranceModel{p}, FatalError);

    p = EnduranceParams{};
    p.expoFactor = -1.0;
    EXPECT_THROW(EnduranceModel{p}, FatalError);
}

TEST(EnduranceModel, NonPositiveFactorsAreUnrepresentable)
{
    // The PulseFactor type clamps to the baseline at construction, so
    // the factor path can no longer be called with a sub-baseline
    // ratio at all; the raw-latency path still rejects zero loudly.
    EnduranceModel m;
    EXPECT_DOUBLE_EQ(m.enduranceAtFactor(PulseFactor(0.0)), 5.0e6);
    EXPECT_DOUBLE_EQ(m.enduranceAtFactor(PulseFactor(-2.0)), 5.0e6);
    EXPECT_THROW(m.enduranceAt(0), FatalError);
}

/** Parameterised sweep over the Figure 1 Expo_Factor family. */
class EnduranceSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(EnduranceSweep, FigureOneCurveShape)
{
    EnduranceParams p;
    p.expoFactor = GetParam();
    EnduranceModel m(p);
    // Endurance(N) / Endurance(1) == N^expo for all N.
    for (double n : {1.0, 1.5, 2.0, 2.5, 3.0}) {
        double ratio = m.enduranceAtFactor(PulseFactor(n)) /
                       m.enduranceAtFactor(PulseFactor(1.0));
        EXPECT_NEAR(ratio, std::pow(n, p.expoFactor), 1e-9 * ratio);
    }
}

INSTANTIATE_TEST_SUITE_P(ExpoFactors, EnduranceSweep,
                         ::testing::Values(1.0, 1.5, 2.0, 2.5, 3.0));
