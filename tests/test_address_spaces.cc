/**
 * @file
 * Round-trip / bijectivity property tests across the three address
 * spaces (see src/sim/strong_types.hh and DESIGN.md):
 *
 *   logical bytes --decode--> (BankId, LineIndex)
 *                 --FaultModel::remap--> DeviceAddr
 *                 --WearLeveler::translate--> LeveledAddr
 *
 * Each conversion step must stay injective over its whole domain —
 * including retired lines (which remap onto spares) and the spare
 * region itself — or two addresses would silently alias one physical
 * line and wear, fault and capacity accounting would all drift.
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fault/fault_model.hh"
#include "nvm/address_map.hh"
#include "sim/rng.hh"
#include "wear/security_refresh.hh"
#include "wear/start_gap.hh"

using namespace mellowsim;

namespace
{

constexpr std::uint64_t kLines = 4096;
constexpr std::uint64_t kSpares = 8;

/** Deterministic fault layer over kLines data + kSpares spare lines. */
FaultConfig
faultConfig()
{
    FaultConfig f;
    f.enabled = true;
    f.numBanks = 2;
    f.blocksPerBank = kLines;
    f.spareLinesPerBank = kSpares;
    f.repairEntriesPerLine = 1;
    f.enduranceSigma = 0.0; // exact: every line endures 1.0 wear unit
    f.enduranceScale = 1.0;
    f.transientFailProb = 0.0;
    return f;
}

/** Wear a device line to retirement (4 x 0.6 wear: repair, retire). */
void
retireLine(FaultModel &fm, BankId bank, DeviceAddr line, Tick base)
{
    for (int i = 0; i < 4; ++i)
        fm.verifyWrite(bank, line, 0.6, PulseFactor(1.0), 0, base + i);
}

} // namespace

TEST(AddressSpaces, DecodeIsInjectiveOverRandomBlocks)
{
    MemGeometry g;
    g.capacityBytes = 1ull << 24; // 256 K blocks
    g.numBanks = 16;
    g.numRanks = 4;
    AddressMap map{g};

    // 4k distinct random logical blocks; decode must never collide in
    // (bank, line) and each output must round-trip to its input set
    // slot exactly once.
    Rng rng(1234);
    std::unordered_set<std::uint64_t> blocks;
    while (blocks.size() < kLines)
        blocks.insert(rng.nextBounded(g.capacityBytes / kBlockSize));

    std::set<std::pair<unsigned, std::uint64_t>> decoded;
    for (std::uint64_t block : blocks) {
        DecodedAddr d = map.decode(LogicalAddr(block * kBlockSize));
        EXPECT_LT(d.bank.value(), g.numBanks);
        EXPECT_LT(d.blockInBank.value(), g.blocksPerBank());
        EXPECT_TRUE(
            decoded.insert({d.bank.value(), d.blockInBank.value()})
                .second)
            << "decode collision at block " << block;
    }
    EXPECT_EQ(decoded.size(), kLines);
}

TEST(AddressSpaces, FaultRemapStaysInjectiveWithRetiredLines)
{
    FaultModel fm(faultConfig());
    const BankId bank(0);

    // Retire a scatter of data lines, and chain one retirement
    // through the spare region (spare wears out too, moves on to the
    // next spare) so the sweep below crosses every case: healthy,
    // retired-once, retired-chained, and live spares.
    Rng rng(99);
    std::vector<std::uint64_t> victims;
    while (victims.size() < 5) {
        std::uint64_t v = rng.nextBounded(kLines);
        bool fresh = true;
        for (std::uint64_t seen : victims)
            fresh = fresh && seen != v;
        if (fresh)
            victims.push_back(v);
    }
    Tick now = 1000;
    for (std::uint64_t v : victims) {
        retireLine(fm, bank, DeviceAddr(v), now);
        now += 100;
    }
    // Chain: wear out the spare the first victim landed on.
    DeviceAddr first_spare = fm.remap(bank, LeveledAddr(victims[0]));
    ASSERT_GE(first_spare.value(), kLines) << "expected a spare line";
    retireLine(fm, bank, first_spare, now);
    ASSERT_EQ(fm.stats().retiredLines, 6u);

    // Sweep EVERY logical line of the bank — including the retired
    // ones: the map logical -> device must stay injective, land only
    // on non-retired device lines, and be the identity exactly for
    // untouched lines.
    std::unordered_set<DeviceAddr> targets;
    for (std::uint64_t l = 0; l < kLines; ++l) {
        DeviceAddr d = fm.remap(bank, LeveledAddr(l));
        EXPECT_TRUE(targets.insert(d).second)
            << "two logical lines share device line " << d.value();
        EXPECT_LT(d.value(), kLines + kSpares);
        EXPECT_FALSE(fm.lineRetired(bank, d))
            << "logical line " << l << " maps to retired device line";
        bool is_victim = false;
        for (std::uint64_t v : victims)
            is_victim = is_victim || v == l;
        if (!is_victim)
            EXPECT_EQ(d.value(), l) << "healthy line moved";
    }
    EXPECT_EQ(targets.size(), kLines);

    // Remap is stable under composition: feeding a remapped device
    // line back through the table goes nowhere new (chains are
    // followed eagerly, so issue-time resolution is idempotent).
    for (std::uint64_t v : victims) {
        DeviceAddr d = fm.remap(bank, LeveledAddr(v));
        EXPECT_EQ(fm.remap(bank, LeveledAddr(d.value())), d);
    }

    // The other bank is untouched: pure identity.
    for (std::uint64_t l = 0; l < kLines; l += 97)
        EXPECT_EQ(fm.remap(BankId(1), LeveledAddr(l)).value(), l);

    EXPECT_TRUE(fm.remapTableValid());
}

TEST(AddressSpaces, StartGapTranslateIsBijectiveAsGapRotates)
{
    // Device-line space includes the spare region: the leveler covers
    // kLines + kSpares lines, plus its own gap block.
    StartGap sg(kLines + kSpares, /*gapWritePeriod=*/16);
    Rng rng(7);
    for (int round = 0; round < 64; ++round) {
        // Advance the gap an uneven number of steps.
        unsigned steps = 1 + static_cast<unsigned>(rng.nextBounded(40));
        for (unsigned s = 0; s < steps; ++s)
            sg.noteWrite();

        std::unordered_set<LeveledAddr> mapped;
        for (std::uint64_t d = 0; d < sg.numBlocks(); ++d) {
            LeveledAddr p = sg.translate(DeviceAddr(d));
            EXPECT_LT(p.value(), sg.numPhysicalBlocks());
            EXPECT_TRUE(mapped.insert(p).second)
                << "round " << round << ": collision at device " << d;
        }
        EXPECT_EQ(mapped.size(), sg.numBlocks());
    }
}

TEST(AddressSpaces, SecurityRefreshTranslateIsBijectiveAcrossSwaps)
{
    // Security Refresh needs a power-of-two region; device lines
    // without spares model a spare-less bank.
    SecurityRefresh sr(kLines, /*refreshInterval=*/8);
    Rng rng(13);
    for (int round = 0; round < 64; ++round) {
        unsigned steps = 1 + static_cast<unsigned>(rng.nextBounded(24));
        for (unsigned s = 0; s < steps; ++s)
            sr.noteWrite();

        std::unordered_set<LeveledAddr> mapped;
        for (std::uint64_t d = 0; d < sr.numBlocks(); ++d) {
            LeveledAddr p = sr.translate(DeviceAddr(d));
            EXPECT_LT(p.value(), sr.numPhysicalBlocks());
            EXPECT_TRUE(mapped.insert(p).second)
                << "round " << round << ": collision at device " << d;
        }
        EXPECT_EQ(mapped.size(), sr.numBlocks());
    }
}

TEST(AddressSpaces, FullChainComposesInjectively)
{
    // Logical line -> (fault remap) -> device -> (leveler) -> leveled,
    // with retirements active and the gap mid-rotation: the composed
    // map over all 4k lines must still be injective.
    FaultModel fm(faultConfig());
    const BankId bank(0);
    for (std::uint64_t v : {11ull, 222ull, 3333ull})
        retireLine(fm, bank, DeviceAddr(v), 5000 + v);

    StartGap sg(kLines + kSpares, 16);
    for (int s = 0; s < 1000; ++s)
        sg.noteWrite();

    std::unordered_set<LeveledAddr> physical;
    for (std::uint64_t l = 0; l < kLines; ++l) {
        DeviceAddr d = fm.remap(bank, LeveledAddr(l));
        LeveledAddr p = sg.translate(d);
        EXPECT_TRUE(physical.insert(p).second)
            << "composed collision at logical line " << l;
    }
    EXPECT_EQ(physical.size(), kLines);
}
