/** @file Tests for the workload address-pattern cursors. */

#include <gtest/gtest.h>

#include <set>

#include "sim/logging.hh"
#include "workload/patterns.hh"

using namespace mellowsim;

TEST(Patterns, SequentialSingleStreamWalksAndWraps)
{
    Rng rng(1);
    PatternCursor c(AccessPattern::Sequential, 0, 4 * kBlockSize, rng);
    EXPECT_EQ(c.next(), 0u * kBlockSize);
    EXPECT_EQ(c.next(), 1u * kBlockSize);
    EXPECT_EQ(c.next(), 2u * kBlockSize);
    EXPECT_EQ(c.next(), 3u * kBlockSize);
    EXPECT_EQ(c.next(), 0u * kBlockSize); // wrap
}

TEST(Patterns, SequentialMultiStreamInterleaves)
{
    Rng rng(1);
    PatternCursor c(AccessPattern::Sequential, 0, 8 * kBlockSize, rng,
                    2);
    // Stream cursors start at 0 and (4 + 263) % 8 = 3 (the second
    // stream carries the anti-alignment stagger) and alternate.
    EXPECT_EQ(c.next(), 0u * kBlockSize);
    EXPECT_EQ(c.next(), 3u * kBlockSize);
    EXPECT_EQ(c.next(), 1u * kBlockSize);
    EXPECT_EQ(c.next(), 4u * kBlockSize);
}

TEST(Patterns, SequentialRespectsBase)
{
    Rng rng(1);
    Addr base = 1ull << 30;
    PatternCursor c(AccessPattern::Sequential, base, 4 * kBlockSize,
                    rng);
    EXPECT_EQ(c.next(), base);
    EXPECT_EQ(c.next(), base + kBlockSize);
}

TEST(Patterns, StridedAdvancesByStride)
{
    Rng rng(1);
    PatternCursor c(AccessPattern::Strided, 0, 16 * kBlockSize, rng, 1,
                    4 * kBlockSize);
    EXPECT_EQ(c.next(), 0u);
    EXPECT_EQ(c.next(), 4u * kBlockSize);
    EXPECT_EQ(c.next(), 8u * kBlockSize);
    EXPECT_EQ(c.next(), 12u * kBlockSize);
    EXPECT_EQ(c.next(), 0u); // wrapped modulo region
}

TEST(Patterns, RandomStaysInRegionAndSpreads)
{
    Rng rng(5);
    Addr base = 1ull << 20;
    std::uint64_t blocks = 128;
    PatternCursor c(AccessPattern::Random, base, blocks * kBlockSize,
                    rng);
    std::set<Addr> seen;
    for (int i = 0; i < 2000; ++i) {
        Addr a = c.next();
        ASSERT_GE(a, base);
        ASSERT_LT(a, base + blocks * kBlockSize);
        ASSERT_EQ(a % kBlockSize, 0u);
        seen.insert(a);
    }
    // Uniform random over 128 blocks: expect near-full coverage.
    EXPECT_GT(seen.size(), 120u);
}

TEST(Patterns, PointerChaseCoversRegion)
{
    Rng rng(5);
    PatternCursor c(AccessPattern::PointerChase, 0, 64 * kBlockSize,
                    rng);
    std::set<Addr> seen;
    for (int i = 0; i < 1000; ++i) {
        Addr a = c.next();
        ASSERT_LT(a, 64u * kBlockSize);
        seen.insert(a);
    }
    EXPECT_GT(seen.size(), 55u);
}

TEST(Patterns, DeterministicUnderSameRngSeed)
{
    Rng r1(9), r2(9);
    PatternCursor a(AccessPattern::Random, 0, 1 << 20, r1);
    PatternCursor b(AccessPattern::Random, 0, 1 << 20, r2);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Patterns, RejectsTinyRegion)
{
    Rng rng(1);
    EXPECT_THROW(
        PatternCursor(AccessPattern::Random, 0, kBlockSize - 1, rng),
        FatalError);
    EXPECT_THROW(
        PatternCursor(AccessPattern::Sequential, 0, kBlockSize, rng, 0),
        FatalError);
}

TEST(Patterns, PatternNames)
{
    EXPECT_STREQ(patternName(AccessPattern::Sequential), "sequential");
    EXPECT_STREQ(patternName(AccessPattern::PointerChase),
                 "pointer-chase");
}
