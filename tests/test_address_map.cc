/** @file Tests for physical address decomposition. */

#include <gtest/gtest.h>

#include <set>

#include "nvm/address_map.hh"
#include "sim/logging.hh"

using namespace mellowsim;

TEST(AddressMap, RowChunksInterleaveAcrossBanks)
{
    MemGeometry g; // 16 KB interleave, 16 banks
    g.pageScramble = false;
    AddressMap map{g};
    for (unsigned i = 0; i < 64; ++i) {
        DecodedAddr d =
            map.decode(LogicalAddr(static_cast<Addr>(i) * g.interleaveBytes));
        EXPECT_EQ(d.bank.value(), i % 16);
    }
}

TEST(AddressMap, BlocksWithinAChunkShareABank)
{
    MemGeometry g;
    g.pageScramble = false;
    AddressMap map{g};
    DecodedAddr first = map.decode(LogicalAddr(0));
    for (Addr a = 0; a < g.interleaveBytes; a += kBlockSize) {
        DecodedAddr d = map.decode(LogicalAddr(a));
        EXPECT_EQ(d.bank, first.bank);
        // Consecutive blocks are consecutive within the bank.
        EXPECT_EQ(d.blockInBank.value(), a >> kBlockShift);
    }
}

TEST(AddressMap, SubBlockOffsetsShareBlock)
{
    AddressMap map{MemGeometry{}};
    DecodedAddr a = map.decode(LogicalAddr(0x1000));
    DecodedAddr b = map.decode(LogicalAddr(0x1000 + 63));
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(a.blockInBank, b.blockInBank);
    EXPECT_EQ(a.rowTag, b.rowTag);
}

TEST(AddressMap, BlockInterleaveOptionRestoresFineGrain)
{
    MemGeometry g;
    g.interleaveBytes = kBlockSize;
    g.pageScramble = false;
    AddressMap map{g};
    for (unsigned i = 0; i < 64; ++i) {
        DecodedAddr d =
            map.decode(LogicalAddr(static_cast<Addr>(i) * kBlockSize));
        EXPECT_EQ(d.bank.value(), i % 16);
    }
}

TEST(AddressMap, RankGroupsBanksEvenly)
{
    MemGeometry g;
    g.numBanks = 16;
    g.numRanks = 4;
    AddressMap map{g};
    for (unsigned i = 0; i < 16; ++i) {
        DecodedAddr d =
            map.decode(LogicalAddr(static_cast<Addr>(i) * g.interleaveBytes));
        EXPECT_EQ(d.rank, d.bank.value() / 4);
    }
}

TEST(AddressMap, RowTagChangesEveryRowBufferSegment)
{
    MemGeometry g;
    g.pageScramble = false;
    AddressMap map{g};
    std::uint64_t blocks_per_buffer = g.rowBufferBytes / kBlockSize;
    // Walk one 16 KB chunk of bank 0: 256 blocks = 16 segments.
    for (std::uint64_t i = 0; i < 256; ++i) {
        DecodedAddr d = map.decode(LogicalAddr(i * kBlockSize));
        EXPECT_EQ(d.bank.value(), 0u);
        EXPECT_EQ(d.rowTag, i / blocks_per_buffer);
    }
}

TEST(AddressMap, CapacityWrapsNotOverflows)
{
    MemGeometry g;
    AddressMap map{g};
    DecodedAddr d = map.decode(LogicalAddr(g.capacityBytes + 128));
    DecodedAddr e = map.decode(LogicalAddr(128));
    EXPECT_EQ(d.bank, e.bank);
    EXPECT_EQ(d.blockInBank, e.blockInBank);
}

TEST(AddressMap, BlocksPerBank)
{
    MemGeometry g;
    EXPECT_EQ(g.blocksPerBank(),
              4ull * 1024 * 1024 * 1024 / 64 / 16);
    EXPECT_EQ(g.banksPerRank(), 4u);
}

TEST(AddressMap, BlockInBankStaysInRange)
{
    MemGeometry g;
    g.capacityBytes = 1ull << 22;
    g.numBanks = 4;
    g.numRanks = 2;
    AddressMap map{g};
    for (Addr a = 0; a < g.capacityBytes; a += 4096 + kBlockSize) {
        DecodedAddr d = map.decode(LogicalAddr(a));
        EXPECT_LT(d.blockInBank.value(), g.blocksPerBank());
        EXPECT_LT(d.bank.value(), g.numBanks);
    }
}

TEST(AddressMap, DistinctBlocksDecodeDistinctly)
{
    MemGeometry g;
    g.capacityBytes = 1ull << 21; // 32768 blocks
    g.numBanks = 8;
    g.numRanks = 2;
    g.interleaveBytes = 4096;
    AddressMap map{g};
    std::set<std::pair<unsigned, std::uint64_t>> seen;
    for (Addr a = 0; a < g.capacityBytes; a += kBlockSize) {
        DecodedAddr d = map.decode(LogicalAddr(a));
        EXPECT_TRUE(
            seen.insert({d.bank.value(), d.blockInBank.value()}).second);
    }
    EXPECT_EQ(seen.size(), g.capacityBytes / kBlockSize);
}

TEST(AddressMap, RejectsBadGeometry)
{
    MemGeometry g;
    g.numBanks = 0;
    EXPECT_THROW(AddressMap{g}, FatalError);

    g = MemGeometry{};
    g.numRanks = 3; // does not divide 16
    EXPECT_THROW(AddressMap{g}, FatalError);

    g = MemGeometry{};
    g.rowBufferBytes = 32; // smaller than a block
    EXPECT_THROW(AddressMap{g}, FatalError);

    g = MemGeometry{};
    g.interleaveBytes = 32; // smaller than a block
    EXPECT_THROW(AddressMap{g}, FatalError);
}

/** Parameterised: bank sweep used by Figure 18 (4/8/16 banks). */
class AddressMapBankSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(AddressMapBankSweep, InterleaveCoversAllBanks)
{
    MemGeometry g;
    g.numBanks = GetParam();
    g.numRanks = GetParam() / 4;
    g.pageScramble = false;
    AddressMap map{g};
    std::set<unsigned> banks;
    for (unsigned i = 0; i < g.numBanks * 3; ++i) {
        banks.insert(
            map.decode(LogicalAddr(static_cast<Addr>(i) * g.interleaveBytes))
                .bank.value());
    }
    EXPECT_EQ(banks.size(), g.numBanks);
}

INSTANTIATE_TEST_SUITE_P(Geometries, AddressMapBankSweep,
                         ::testing::Values(4u, 8u, 16u));

// --- Page scrambling (OS-like physical page permutation) ------------

TEST(AddressMap, TranslateIsABijectionOverPages)
{
    MemGeometry g;
    g.capacityBytes = 1ull << 22; // 1024 pages (even bit count)
    g.numBanks = 4;
    g.numRanks = 2;
    AddressMap map{g};
    std::set<Addr> seen;
    for (std::uint64_t p = 0; p < 1024; ++p) {
        LogicalAddr t = map.translate(LogicalAddr(p * 4096));
        EXPECT_EQ(t.value() % 4096, 0u);
        EXPECT_LT(t.value(), g.capacityBytes);
        EXPECT_TRUE(seen.insert(t.value()).second) << "page " << p;
    }
}

TEST(AddressMap, TranslateIsABijectionOddBitCount)
{
    MemGeometry g;
    g.capacityBytes = 1ull << 21; // 512 pages (odd bit count)
    g.numBanks = 4;
    g.numRanks = 2;
    AddressMap map{g};
    std::set<Addr> seen;
    for (std::uint64_t p = 0; p < 512; ++p)
        EXPECT_TRUE(
            seen.insert(map.translate(LogicalAddr(p * 4096)).value())
                .second);
    EXPECT_EQ(seen.size(), 512u);
}

TEST(AddressMap, TranslatePreservesPageOffsets)
{
    AddressMap map{MemGeometry{}};
    LogicalAddr base = map.translate(LogicalAddr(123 * 4096));
    for (Addr off = 0; off < 4096; off += 64) {
        EXPECT_EQ(map.translate(LogicalAddr(123 * 4096 + off)).value(),
                  base.value() + off);
    }
}

TEST(AddressMap, ScrambleActuallyPermutes)
{
    MemGeometry g;
    g.capacityBytes = 1ull << 24;
    AddressMap map{g};
    int moved = 0;
    for (std::uint64_t p = 0; p < 256; ++p)
        moved += map.translate(LogicalAddr(p * 4096)).value() != p * 4096;
    EXPECT_GT(moved, 250);
}

TEST(AddressMap, ScrambleBreaksConstantStrideBankAlignment)
{
    // The motivating pathology: addresses exactly one LLC capacity
    // (2 MB) apart must NOT systematically share a bank.
    MemGeometry g; // 4 GB, 16 banks, scramble on by default
    AddressMap map{g};
    int same_bank = 0;
    constexpr int kPairs = 4096;
    for (int i = 0; i < kPairs; ++i) {
        Addr a = static_cast<Addr>(i) * (1ull << 21);
        Addr b = a + (1ull << 21);
        same_bank +=
            map.decode(LogicalAddr(a)).bank == map.decode(LogicalAddr(b)).bank;
    }
    // Uniform expectation is 1/16; allow generous slack but exclude
    // the pathological 100% the identity mapping produces.
    EXPECT_LT(same_bank, kPairs / 4);
}

TEST(AddressMap, ScrambleRequiresPowerOfTwoPages)
{
    MemGeometry g;
    g.capacityBytes = 3ull * 1024 * 1024; // 768 pages
    EXPECT_THROW(AddressMap{g}, FatalError);
}

TEST(AddressMap, ScrambleDeterministicAcrossInstances)
{
    AddressMap a{MemGeometry{}};
    AddressMap b{MemGeometry{}};
    for (std::uint64_t p = 0; p < 64; ++p)
        EXPECT_EQ(a.translate(LogicalAddr(p * 4096)),
                  b.translate(LogicalAddr(p * 4096)));
}
