/** @file Tests for the set-associative LRU cache array. */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "sim/logging.hh"

using namespace mellowsim;

namespace
{

CacheConfig
tiny(unsigned assoc = 4, std::uint64_t sets = 2)
{
    CacheConfig c;
    c.name = "tiny";
    c.assoc = assoc;
    c.sizeBytes = sets * assoc * kBlockSize;
    c.hitLatency = 3;
    return c;
}

/** Address landing in set @p set with tag id @p tag (2-set cache). */
LogicalAddr
addrFor(std::uint64_t set, std::uint64_t tag, std::uint64_t num_sets = 2)
{
    return LogicalAddr((tag * num_sets + set) * kBlockSize);
}

} // namespace

TEST(Cache, MissOnEmpty)
{
    SetAssocCache c(tiny());
    EXPECT_FALSE(c.access(LogicalAddr(0x40), false).hit);
    EXPECT_FALSE(c.probe(LogicalAddr(0x40)));
}

TEST(Cache, InsertThenHit)
{
    SetAssocCache c(tiny());
    c.insert(LogicalAddr(0x40), false);
    EXPECT_TRUE(c.probe(LogicalAddr(0x40)));
    CacheAccessResult r = c.access(LogicalAddr(0x40), false);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.lruPos, 0u);
}

TEST(Cache, SubBlockOffsetsHitSameLine)
{
    SetAssocCache c(tiny());
    c.insert(LogicalAddr(0x40), false);
    EXPECT_TRUE(c.access(LogicalAddr(0x7F), false).hit);
    EXPECT_TRUE(c.access(LogicalAddr(0x41), false).hit);
}

TEST(Cache, LruStackPositionsReported)
{
    SetAssocCache c(tiny(4, 2));
    // Fill set 0 with tags 0..3; after inserts, tag 3 is MRU.
    for (std::uint64_t t = 0; t < 4; ++t)
        c.insert(addrFor(0, t), false);
    EXPECT_EQ(c.access(addrFor(0, 3), false).lruPos, 0u);
    // tag 0 was inserted first: now LRU... but the access above moved
    // tag 3 to MRU (it already was). Check tag 0 at position 3.
    EXPECT_EQ(c.access(addrFor(0, 0), false).lruPos, 3u);
    // That access promoted tag 0 to MRU.
    EXPECT_EQ(c.access(addrFor(0, 0), false).lruPos, 0u);
}

TEST(Cache, EvictsTrueLruVictim)
{
    SetAssocCache c(tiny(2, 2));
    c.insert(addrFor(0, 1), false);
    c.insert(addrFor(0, 2), false);
    c.access(addrFor(0, 1), false); // promote tag 1
    CacheVictim v = c.insert(addrFor(0, 3), false);
    EXPECT_TRUE(v.valid);
    EXPECT_EQ(v.blockAddr, addrFor(0, 2));
    EXPECT_TRUE(c.probe(addrFor(0, 1)));
    EXPECT_FALSE(c.probe(addrFor(0, 2)));
}

TEST(Cache, VictimCarriesDirtyBit)
{
    SetAssocCache c(tiny(1, 2));
    c.insert(addrFor(0, 1), false);
    c.access(addrFor(0, 1), true); // dirty it
    CacheVictim v = c.insert(addrFor(0, 2), false);
    EXPECT_TRUE(v.valid);
    EXPECT_TRUE(v.dirty);
}

TEST(Cache, InvalidVictimWhenSetNotFull)
{
    SetAssocCache c(tiny());
    CacheVictim v = c.insert(LogicalAddr(0x40), false);
    EXPECT_FALSE(v.valid);
}

TEST(Cache, DoubleInsertPanics)
{
    SetAssocCache c(tiny());
    c.insert(LogicalAddr(0x40), false);
    EXPECT_THROW(c.insert(LogicalAddr(0x40), true), PanicError);
}

TEST(Cache, WriteSetsDirty)
{
    SetAssocCache c(tiny());
    c.insert(LogicalAddr(0x40), false);
    EXPECT_EQ(c.countDirtyLines(), 0u);
    c.access(LogicalAddr(0x40), true);
    EXPECT_EQ(c.countDirtyLines(), 1u);
}

TEST(Cache, NoLruUpdateOptionKeepsStack)
{
    SetAssocCache c(tiny(2, 2));
    c.insert(addrFor(0, 1), false);
    c.insert(addrFor(0, 2), false); // tag2 MRU, tag1 LRU
    c.access(addrFor(0, 1), true, /*updateLru=*/false);
    // tag 1 stays at LRU and is the next victim.
    CacheVictim v = c.insert(addrFor(0, 3), false);
    EXPECT_EQ(v.blockAddr, addrFor(0, 1));
    EXPECT_TRUE(v.dirty);
}

TEST(Cache, CleanLineForEagerWrite)
{
    SetAssocCache c(tiny());
    c.insert(LogicalAddr(0x40), true);
    EXPECT_TRUE(c.cleanLineForEagerWrite(LogicalAddr(0x40)));
    EXPECT_EQ(c.countDirtyLines(), 0u);
    EXPECT_TRUE(c.probe(LogicalAddr(0x40))); // NOT evicted
    // Already clean: returns false.
    EXPECT_FALSE(c.cleanLineForEagerWrite(LogicalAddr(0x40)));
    // Absent line: returns false.
    EXPECT_FALSE(c.cleanLineForEagerWrite(LogicalAddr(0x1000040)));
}

TEST(Cache, RedirtyingEagerCleanedLineFlagsWaste)
{
    SetAssocCache c(tiny());
    c.insert(LogicalAddr(0x40), true);
    c.cleanLineForEagerWrite(LogicalAddr(0x40));
    c.access(LogicalAddr(0x40), false);
    EXPECT_FALSE(c.lastWriteWastedEager()); // reads never waste
    c.access(LogicalAddr(0x40), true);
    EXPECT_TRUE(c.lastWriteWastedEager());
    // Only flagged once per eager clean.
    c.access(LogicalAddr(0x40), true);
    EXPECT_FALSE(c.lastWriteWastedEager());
}

TEST(Cache, SetAccessorExposesRecencyOrder)
{
    SetAssocCache c(tiny(4, 2));
    for (std::uint64_t t = 1; t <= 4; ++t)
        c.insert(addrFor(0, t), t % 2 == 0);
    const auto &set = c.set(0); // set index 0
    EXPECT_EQ(set.size(), 4u);
    EXPECT_EQ(set[0].blockAddr, addrFor(0, 4)); // MRU: last insert
    EXPECT_EQ(set[3].blockAddr, addrFor(0, 1)); // LRU: first insert
    EXPECT_THROW(c.set(2), PanicError);
}

TEST(Cache, RejectsBadGeometry)
{
    CacheConfig c;
    c.assoc = 0;
    EXPECT_THROW(SetAssocCache{c}, FatalError);

    c = CacheConfig{};
    c.sizeBytes = 1000; // not a multiple of assoc * 64
    EXPECT_THROW(SetAssocCache{c}, FatalError);

    c = CacheConfig{};
    c.sizeBytes = 3 * 16 * kBlockSize; // 3 sets: not a power of two
    EXPECT_THROW(SetAssocCache{c}, FatalError);
}

/**
 * Property (stack property, Mattson et al.): a larger cache's LRU
 * content is a superset of a smaller one's under the same trace.
 */
TEST(Cache, LruStackInclusionProperty)
{
    SetAssocCache small(tiny(2, 1));
    SetAssocCache large(tiny(4, 1));
    std::uint64_t tags[] = {1, 2, 3, 1, 4, 2, 5, 1, 3, 2, 6, 4, 1};
    for (std::uint64_t t : tags) {
        LogicalAddr a = addrFor(0, t, 1);
        if (!small.access(a, false).hit)
            small.insert(a, false);
        if (!large.access(a, false).hit)
            large.insert(a, false);
    }
    // Every line in the small cache must be in the large cache.
    for (std::uint64_t t = 1; t <= 6; ++t) {
        LogicalAddr a = addrFor(0, t, 1);
        if (small.probe(a)) {
            EXPECT_TRUE(large.probe(a)) << "tag " << t;
        }
    }
}
