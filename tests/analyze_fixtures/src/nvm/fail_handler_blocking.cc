// analyze-expect: handler-blocking
// A scheduled callback reaches a helper that takes a mutex and then
// blocks on an epoch rendezvous. A handler that blocks mid-epoch
// stalls its whole shard — or deadlocks the epoch barrier outright —
// so both sites must be rejected.
#include "sim/event_queue.hh"
#include "sim/sync.hh"

namespace
{

sync::Mutex g_drainMutex;

void
drainSideTable()
{
    sync::LockGuard guard(g_drainMutex);
}

} // namespace

void waitForEpoch();

void
scheduleDrain(EventQueue &eventq)
{
    eventq.scheduleIn(50, [] {
        drainSideTable();
        waitForEpoch();
    });
}
