// analyze-expect: none
// Positive control: the typed index stays inside the typed domain,
// the handed-off request is never touched again, and the module only
// speaks to its manifested dependencies.
#include "nvm/queues.hh"

#include "sim/event_queue.hh"

void
forwardWrite(RequestQueue &queue, MemRequest req)
{
    queue.push(std::move(req));
}

void
scheduleRetry(EventQueue &eventq, RequestQueue &queue, MemRequest req)
{
    queue.pushFront(std::move(req));
}
