// analyze-expect: none
// The escape below carries the shared mlint annotation (standalone
// form: it covers the whole next statement), so the analyzer must
// stay silent.
#include "nvm/queues.hh"

unsigned long
debugLineOf(const MemRequest &req)
{
    // mlint: allow(value-escape): fixture exercising the shared
    // suppression parser.
    return req.line.value();
}
