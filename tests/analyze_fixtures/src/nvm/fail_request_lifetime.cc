// analyze-expect: request-lifetime
// The request is read after ownership moved into the queue.
#include "nvm/queues.hh"

void recordStashedLine(LineIndex line);

void
stashWrite(RequestQueue &queue, MemRequest req)
{
    queue.push(std::move(req));
    recordStashedLine(req.line);
}
