// Minimal request/queue shapes for the mellow-analyze fixtures
// (analyzed textually, never compiled).
#pragma once

#include "sim/strong_types.hh"

struct MemRequest
{
    LogicalAddr addr;
    LineIndex line;
    BankId bank;
};

class RequestQueue
{
  public:
    void push(MemRequest req);
    void pushFront(MemRequest req);
};
