// analyze-expect: nondet-handler
// A helper reachable from a scheduled callback draws entropy from
// std::random_device, which diverges between replays.
#include "sim/event_queue.hh"

#include <random>

namespace {

unsigned
sampleEntropy()
{
    std::random_device rd;
    return rd();
}

} // namespace

void
schedulePoll(EventQueue &eventq)
{
    eventq.scheduleIn(100, [] { (void)sampleEntropy(); });
}
