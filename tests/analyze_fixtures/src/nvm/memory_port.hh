// Fixture seam header: the blessed cache -> memory-system port
// (mirrors src/nvm/memory_port.hh; analyzed textually, never
// compiled). Consumers may use the MemoryPort vocabulary only;
// ChannelInternals is exposed here for the controller's own wiring
// and is declared internal in the fixture confinement.toml.
#pragma once

#include "nvm/queues.hh"

class MemoryPort
{
  public:
    virtual ~MemoryPort() = default;
    virtual bool writeback(MemRequest req) = 0;
    virtual bool eagerQueueHasSpace() const = 0;
};

class ChannelInternals
{
  public:
    RequestQueue &writeQueue();
    void drainNow();
};
