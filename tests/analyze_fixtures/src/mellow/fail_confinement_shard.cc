// analyze-expect: confinement-shard
// The policy layer writes bank state directly instead of asking the
// owning shard (module nvm) to do it; under the sharded kernel this
// is a cross-thread write to shard-owned state. No include or symbol
// crosses the layer manifest — only the confinement rule sees it.

class Bank;

void
throttleBank(Bank &bank, unsigned long now)
{
    bank.pauseWrite(now);
}
