// analyze-expect: value-escape
// A strong bank index leaks its raw representation outside every
// whitelisted conversion site and without an mlint annotation.
#include "sim/strong_types.hh"

unsigned long
leakBankIndex()
{
    BankId bank(7);
    return bank.value();
}
