// Minimal ShardPort facade for the mellow-analyze fixtures: only the
// shapes the port-protocol rule keys on (SendTime/Lookahead
// declarations and send call sites) matter. This header is the
// fixture tree's declared mint file (protocol.toml [port_protocol]),
// mirroring src/sim/strong_types.hh in the real tree.
#pragma once

#include <cstdint>

#include "sim/event_queue.hh"

class Lookahead
{
  public:
    explicit Lookahead(Tick window);
    Tick window() const;
};

class SendTime
{
  public:
    Tick tick() const;
};

SendTime operator+(Tick now, Lookahead la);

struct PortSender
{
    bool trySend(SendTime stamp, std::uint64_t payload);
    void send(SendTime stamp, std::uint64_t payload);
};
