// analyze-expect: port-protocol
// Raw time values pushed straight into port sends plus an explicit
// SendTime construction outside the mint: every one talks around the
// `now + Lookahead` discipline that keeps cross-shard messages inside
// the lookahead window. The properly minted send at the bottom must
// stay silent.
#include "sim/event_queue.hh"
#include "sim/shard_port.hh"

void
forwardEviction(PortSender &port, EventQueue &queue)
{
    Tick deadline = 500;
    port.send(deadline, 11);
    port.trySend(42, 7);
    port.send(queue.curTick(), 3);
    (void)SendTime{};
}

void
forwardWithLookahead(PortSender &port, Tick now)
{
    Lookahead horizon(4);
    SendTime stamp = now + horizon;
    port.send(stamp, 5);
}
