// analyze-expect: lock-order
// Two paths acquire the same pair of mutexes in opposite orders: the
// classic AB/BA inversion. Neither path deadlocks by itself, so only
// the whole-program lock-acquisition graph can reject it.
#include "sim/sync.hh"

namespace
{

sync::Mutex g_tableMutex;
sync::Mutex g_statsMutex;

} // namespace

void
flushTable()
{
    sync::LockGuard table(g_tableMutex);
    sync::LockGuard stats(g_statsMutex);
}

void
snapshotStats()
{
    sync::LockGuard stats(g_statsMutex);
    sync::LockGuard table(g_tableMutex);
}
