// analyze-expect: atomic-order
// Raw atomic spellings outside the sync.hh wrapper home, plus a
// RelaxedCounter read steering control flow. Relaxed loads carry no
// happens-before edge, so the branch below can diverge between runs
// even when the counter's final value is deterministic.
#include <atomic>
#include <cstdint>

#include "sim/sync.hh"

namespace
{

std::atomic<std::uint64_t> g_spins{0};

sync::RelaxedCounter g_throttleHits;

} // namespace

std::uint64_t
spinSample()
{
    return g_spins.load(std::memory_order_acquire);
}

bool
shouldThrottle()
{
    if (g_throttleHits.value() > 64)
        return true;
    return false;
}
