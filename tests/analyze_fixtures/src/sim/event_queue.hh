// Minimal EventQueue facade for the mellow-analyze fixtures. These
// files are analyzed textually, never compiled; only the shapes the
// analyzer keys on (class definitions, schedule call sites) matter.
#pragma once

#include <cstdint>
#include <functional>

using Tick = std::uint64_t;

class EventQueue
{
  public:
    void scheduleIn(Tick delay, std::function<void()> action);
    void schedule(Tick when, std::function<void()> action);
};
