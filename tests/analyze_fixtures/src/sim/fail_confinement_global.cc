// analyze-expect: confinement-global
// Mutable static-storage state with no synchronization story: raced
// by parallel sweep workers and invisible to the determinism audit.
// The atomic, sync-typed and const declarations below must stay
// silent (negative coverage for the exemption list).
#include <atomic>
#include <cstdint>

#include "sim/sync.hh"

namespace
{

std::uint64_t g_eventsDispatched = 0;

// mlint: allow(atomic-order): raw-atomic exemplar for the exemption list
std::atomic<std::uint64_t> g_allocSamples{0};

mellowsim::sync::RelaxedCounter g_retries;

const char *const kBannerText = "mellowsim";

} // namespace

std::uint64_t
bumpDispatchCount()
{
    static bool warnedOnce = false;
    warnedOnce = true;
    ++g_eventsDispatched;
    g_allocSamples.fetch_add(1);
    g_retries.increment();
    return g_eventsDispatched;
}
