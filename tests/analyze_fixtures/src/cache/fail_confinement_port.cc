// analyze-expect: confinement-port
// The include is blessed (the layer manifest's restricted edge lets
// cache see nvm/memory_port.hh), but the cache bypasses the port
// vocabulary and grabs the channel's queue internals directly —
// exactly the hole only the confinement-port rule can see.
#include "nvm/memory_port.hh"

void
drainBehindThePortsBack(ChannelInternals &internals)
{
    internals.drainNow();
}
