// analyze-expect: layering
// The cache layer reaches into the memory system's queue internals;
// the manifest only blesses cache -> nvm/memory_port.hh.
#include "nvm/queues.hh"

unsigned
peekQueueDepth(const RequestQueue &queue)
{
    (void)queue;
    return 0;
}
