// A raw integer must not implicitly become a logical address.
#include "sim/strong_types.hh"

mellowsim::LogicalAddr addr = 0x1000;
