// Adding two addresses is meaningless; only offsetting by a raw
// delta (addr + 64) stays inside a space.
#include "sim/strong_types.hh"

auto sum = mellowsim::LogicalAddr(64) + mellowsim::LogicalAddr(64);
