// A logical address must not implicitly decay to its representation.
#include "sim/strong_types.hh"

mellowsim::Addr raw = mellowsim::LogicalAddr(0x1000);
