// Calling a MELLOW_REQUIRES(_mutex) function without holding the lock
// must be rejected by Clang's thread-safety analysis (-Wthread-safety
// as an error, as in the thread-safety preset). Only registered when
// the test compiler is Clang; elsewhere the annotations are no-ops.
#include "sim/sync.hh"

using namespace mellowsim;

class Shard
{
  public:
    void
    pump()
    {
        drainLocked(); // _mutex not held here
    }

  private:
    void drainLocked() MELLOW_REQUIRES(_mutex) { ++_drained; }

    sync::Mutex _mutex;
    unsigned long _drained MELLOW_GUARDED_BY(_mutex) = 0;
};

int
main()
{
    Shard s;
    s.pump();
    return 0;
}
