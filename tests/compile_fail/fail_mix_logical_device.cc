// Logical and device lines are different spaces: comparing them is a
// category error, not a question with a boolean answer.
#include "sim/strong_types.hh"

bool same = mellowsim::LogicalAddr(64) == mellowsim::DeviceAddr(64);
