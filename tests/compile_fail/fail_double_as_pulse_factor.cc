// The slow-write multiplier is not a bare double: construction is the
// clamp point (>= 1.0), so it must be spelled out.
#include "sim/strong_types.hh"

mellowsim::PulseFactor f = 3.0;
