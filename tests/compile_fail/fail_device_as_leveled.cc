// A device line is not a wear-leveled block; the only way across is
// WearLeveler::translate().
#include "sim/strong_types.hh"

mellowsim::LeveledAddr block = mellowsim::DeviceAddr(7);
