// A pre-remap line index is not a device line; the only way across is
// FaultModel::remap() / deviceLineOf().
#include "sim/strong_types.hh"

mellowsim::DeviceAddr line = mellowsim::LineIndex(3);
