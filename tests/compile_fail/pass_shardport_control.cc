// Positive control for the ShardPort compile-fail snippets: the
// sanctioned protocol — mint via `now + Lookahead`, move the
// endpoints, send, drain — must compile AND run. Without this, a
// broken include path would make every WILL_FAIL sibling pass
// vacuously.
#include <cstdint>
#include <utility>

#include "sim/shard_port.hh"
#include "sim/strong_types.hh"

using namespace mellowsim;

int
main()
{
    ShardPort<std::uint64_t> port(8);
    ShardPort<std::uint64_t>::Sender sender = port.sender();
    ShardPort<std::uint64_t>::Receiver receiver = port.receiver();

    // Moving an endpoint (the legal transfer) must keep working.
    ShardPort<std::uint64_t>::Sender owner = std::move(sender);

    Lookahead la(10);
    owner.send(Tick(0) + la, 41);
    owner.send((Tick(2) + la) + 3, 42);

    std::uint64_t sum = 0;
    std::size_t popped = receiver.drainUntil(
        100, [&](Tick, std::uint64_t payload) { sum += payload; });

    return (popped == 2 && sum == 83 && owner.lastSent() == 15) ? 0 : 1;
}
