// Bank ids are not bare integers: a bank parameter cannot be fed a
// literal (swapped bank/line arguments used to compile).
#include "sim/strong_types.hh"

void touchBank(mellowsim::BankId bank);
void caller() { touchBank(3); }
