// Timing::slowWritePulse takes a validated PulseFactor, never a raw
// double (which used to allow sub-baseline pulses through).
#include "nvm/timing.hh"

mellowsim::Tick t = mellowsim::NvmTimingParams{}.slowWritePulse(3.0);
