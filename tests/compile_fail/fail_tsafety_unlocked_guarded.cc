// Writing a MELLOW_GUARDED_BY field without holding its mutex must be
// rejected by Clang's thread-safety analysis (-Wthread-safety as an
// error, as in the thread-safety preset). Under compilers without the
// capability attributes the annotations are no-ops, so this snippet
// is only registered when the test compiler is Clang.
#include "sim/sync.hh"

using namespace mellowsim;

class Tally
{
  public:
    void
    bump()
    {
        ++_count; // no LockGuard: unguarded write to _count
    }

  private:
    sync::Mutex _mutex;
    unsigned long _count MELLOW_GUARDED_BY(_mutex) = 0;
};

int
main()
{
    Tally t;
    t.bump();
    return 0;
}
