// ShardPort endpoints are move-only: copying a Sender would put two
// producers on one SPSC ring, so the copy must not compile.
#include <cstdint>

#include "sim/shard_port.hh"

using namespace mellowsim;

int
main()
{
    ShardPort<std::uint64_t> port(8);
    ShardPort<std::uint64_t>::Sender original = port.sender();
    ShardPort<std::uint64_t>::Sender duplicate = original;
    (void)duplicate;
    return 0;
}
