// Energy must not implicitly decay to a unitless double.
#include "sim/strong_types.hh"

double raw = mellowsim::Picojoules(197.6);
