// Positive control: the sanctioned operations must keep compiling. If
// this file fails, the compile-fail suite is testing a broken include
// path or flag set, not the type system.
#include "nvm/timing.hh"
#include "sim/strong_types.hh"

using namespace mellowsim;

static_assert(blockNumber(blockAlign(LogicalAddr(0x1234))) ==
              0x1234 >> kBlockShift);
static_assert(LogicalAddr(64) + 64 == LogicalAddr(128));
static_assert(LogicalAddr(128) - LogicalAddr(64) == 64);
static_assert(BankId(3) != BankId(4));
static_assert((Picojoules(1.5) + Picojoules(0.5)).value() == 2.0);
static_assert(Picojoules(4.0) / Picojoules(2.0) == 2.0);
static_assert((Picojoules(2.0) * 3.0).value() == 6.0);
static_assert(PulseFactor(0.5).value() == 1.0); // clamped
static_assert(PulseFactor(3.0).value() == 3.0);

int
main()
{
    NvmTimingParams timing;
    return timing.slowWritePulse(PulseFactor(3.0)) == 3 * timing.tWP
               ? 0
               : 1;
}
