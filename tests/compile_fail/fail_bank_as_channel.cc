// A bank id is not a channel id even though both are unsigned.
#include "sim/strong_types.hh"

mellowsim::ChannelId ch = mellowsim::BankId(0);
