// A SendTime must be minted via `now + Lookahead`; its constructor is
// private, so conjuring one from a raw tick must not compile.
#include "sim/strong_types.hh"

using namespace mellowsim;

int
main()
{
    SendTime when(100);
    return static_cast<int>(when.tick());
}
