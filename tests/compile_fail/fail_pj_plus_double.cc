// Energy plus a bare double has no unit; scaling (pj * 2.0) does.
#include "sim/strong_types.hh"

auto e = mellowsim::Picojoules(1.0) + 2.0;
