// Positive control for the thread-safety snippets: the same guarded
// field and REQUIRES function as the fail_tsafety_* fixtures, but
// with the lock correctly held via LockGuard — this must compile
// cleanly under -Wthread-safety -Wthread-safety-beta -Werror, proving
// the failing snippets fail for the right reason and not because the
// wrappers themselves trip the analysis.
#include "sim/sync.hh"

using namespace mellowsim;

class Tally
{
  public:
    void
    bump()
    {
        sync::LockGuard guard(_mutex);
        ++_count;
        drainLocked();
    }

  private:
    void drainLocked() MELLOW_REQUIRES(_mutex) { ++_count; }

    sync::Mutex _mutex;
    unsigned long _count MELLOW_GUARDED_BY(_mutex) = 0;
};

int
main()
{
    Tally t;
    t.bump();
    return 0;
}
