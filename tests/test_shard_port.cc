/**
 * @file
 * Unit and property tests for the cross-shard seam: SendTime minting,
 * ShardPort ring semantics, ChannelShard epochs, and the determinism
 * property the conservative-lookahead protocol promises — a threaded
 * ShardGroup run is byte-identical to the serial oracle.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <algorithm>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/shard.hh"
#include "sim/shard_port.hh"
#include "sim/strong_types.hh"
#include "system/report.hh"

using namespace mellowsim;

namespace
{

/** Quiet the panic banner for the EXPECT_THROW tests. */
class ShardPortTest : public ::testing::Test
{
  protected:
    void SetUp() override { Logger::setQuiet(true); }
    void TearDown() override { Logger::setQuiet(false); }
};

} // namespace

// --- SendTime / Lookahead ------------------------------------------

TEST(SendTimeMint, NowPlusLookaheadIsTheOnlyMint)
{
    SendTime when = Tick(100) + Lookahead(10);
    EXPECT_EQ(when.tick(), 110u);

    // Further delay stays a SendTime and only moves forward.
    SendTime later = when + 25;
    EXPECT_EQ(later.tick(), 135u);
    EXPECT_LT(when, later);
}

TEST(SendTimeMint, LookaheadClampsToAtLeastOneTick)
{
    EXPECT_EQ(Lookahead(0).window(), 1u);
    EXPECT_EQ(Lookahead(1).window(), 1u);
    EXPECT_EQ(Lookahead(64).window(), 64u);
    // So even a degenerate mint strictly advances time.
    EXPECT_GT((Tick(7) + Lookahead(0)).tick(), 7u);
}

// --- ShardPort ring semantics --------------------------------------

TEST_F(ShardPortTest, CapacityMustBePowerOfTwo)
{
    EXPECT_THROW(ShardPort<std::uint64_t>(3), PanicError);
    EXPECT_THROW(ShardPort<std::uint64_t>(0), PanicError);
    EXPECT_NO_THROW(ShardPort<std::uint64_t>(8));
}

TEST_F(ShardPortTest, EndpointsAreHandedOutOnce)
{
    ShardPort<std::uint64_t> port(8);
    auto sender = port.sender();
    auto receiver = port.receiver();
    (void)sender;
    (void)receiver;
    EXPECT_THROW((void)port.sender(), PanicError);
    EXPECT_THROW((void)port.receiver(), PanicError);
}

TEST_F(ShardPortTest, DrainPopsExactlyTheDeliverablePrefix)
{
    ShardPort<std::uint64_t> port(8);
    auto sender = port.sender();
    auto receiver = port.receiver();

    Lookahead la(10);
    sender.send(Tick(0) + la, 100);   // when = 10
    sender.send(Tick(5) + la, 101);   // when = 15
    sender.send((Tick(5) + la) + 10, 102); // when = 25
    EXPECT_EQ(receiver.pending(), 3u);

    std::vector<std::pair<Tick, std::uint64_t>> got;
    auto record = [&](Tick when, std::uint64_t payload) {
        got.emplace_back(when, payload);
    };

    // Horizon 20: only the first two messages are deliverable; the
    // message at 25 (and anything behind it) stays queued.
    EXPECT_EQ(receiver.drainUntil(20, record), 2u);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], (std::pair<Tick, std::uint64_t>{10, 100}));
    EXPECT_EQ(got[1], (std::pair<Tick, std::uint64_t>{15, 101}));
    EXPECT_EQ(receiver.pending(), 1u);

    // A horizon exactly at a message's tick excludes it (when < end).
    EXPECT_EQ(receiver.drainUntil(25, record), 0u);
    EXPECT_EQ(receiver.drainUntil(26, record), 1u);
    EXPECT_EQ(got.back(),
              (std::pair<Tick, std::uint64_t>{25, 102}));
    EXPECT_EQ(receiver.pending(), 0u);
}

TEST_F(ShardPortTest, TrySendReportsAFullRingAndSendPanics)
{
    ShardPort<std::uint64_t> port(4);
    auto sender = port.sender();
    auto receiver = port.receiver();

    Lookahead la(1);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_TRUE(sender.trySend(Tick(i) + la, i));
    EXPECT_FALSE(sender.trySend(Tick(10) + la, 99));
    EXPECT_THROW(sender.send(Tick(10) + la, 99), PanicError);

    // Draining frees slots for reuse.
    EXPECT_EQ(receiver.drainUntil(100, [](Tick, std::uint64_t) {}), 4u);
    EXPECT_TRUE(sender.trySend(Tick(10) + la, 99));
}

TEST_F(ShardPortTest, TimestampsMustBeNondecreasing)
{
    ShardPort<std::uint64_t> port(8);
    auto sender = port.sender();
    auto receiver = port.receiver();
    (void)receiver;

    sender.send(Tick(50) + Lookahead(10), 1);
    EXPECT_EQ(sender.lastSent(), 60u);
    // Equal timestamps are fine; going backwards is a protocol bug.
    EXPECT_TRUE(sender.trySend(Tick(50) + Lookahead(10), 2));
    EXPECT_THROW(sender.send(Tick(10) + Lookahead(10), 3), PanicError);
}

// --- ChannelShard / ShardGroup -------------------------------------

TEST(ChannelShard, EpochDeliveryRespectsLookahead)
{
    ShardGroup group{Lookahead(10)};
    ChannelShard &a = group.addShard();
    ChannelShard &b = group.addShard();
    group.connect(a, b);

    std::vector<std::pair<Tick, ShardPayload>> delivered;
    b.setHandler([&](ChannelShard &, Tick when, ShardPayload payload) {
        delivered.emplace_back(when, payload);
    });

    a.send(0, 7);            // minted at curTick 0 -> when = 10
    a.sendDelayed(0, 8, 5);  // when = 15
    group.run(30, 1);

    ASSERT_EQ(delivered.size(), 2u);
    EXPECT_EQ(delivered[0], (std::pair<Tick, ShardPayload>{10, 7}));
    EXPECT_EQ(delivered[1], (std::pair<Tick, ShardPayload>{15, 8}));
    EXPECT_EQ(a.stats().messagesSent.value(), 2u);
    EXPECT_EQ(b.stats().messagesReceived.value(), 2u);
    EXPECT_EQ(b.stats().deliveries.value(), 2u);
    EXPECT_EQ(b.stats().deliveryTick.sum(), 25.0);
}

TEST(ShardStats, MergeFoldsAllTallies)
{
    ShardStats a, b;
    ++a.messagesSent;
    a.deliveryTick.sample(10.0);
    ++b.messagesSent;
    ++b.messagesReceived;
    b.deliveryTick.sample(30.0);

    a.merge(b);
    EXPECT_EQ(a.messagesSent.value(), 2u);
    EXPECT_EQ(a.messagesReceived.value(), 1u);
    EXPECT_EQ(a.deliveryTick.count(), 2u);
    EXPECT_DOUBLE_EQ(a.deliveryTick.mean(), 20.0);
}

namespace
{

struct GroupResult
{
    std::uint64_t checksum = 0;
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t deliveries = 0;
    double tickSum = 0.0;
    std::uint64_t tickCount = 0;

    bool
    operator==(const GroupResult &o) const = default;
};

/**
 * The randomized two-shard protocol: each shard is pre-seeded with
 * random hop-count messages (sorted extra delays keep the sender
 * monotonic), and every delivery of a nonzero payload forwards
 * payload - 1 back across the channel. Deterministic by construction,
 * so the result must not depend on @p jobs.
 */
GroupResult
runPingPong(std::uint64_t seed, unsigned jobs)
{
    constexpr Tick kLookahead = 16;
    constexpr Tick kHorizon = 2000;
    constexpr int kSeeds = 48;

    ShardGroup group{Lookahead(kLookahead)};
    ChannelShard &a = group.addShard();
    ChannelShard &b = group.addShard();
    group.connect(a, b);
    group.connect(b, a);

    auto bounce = [](ChannelShard &shard, Tick, ShardPayload payload) {
        if (payload > 0)
            shard.send(0, payload - 1);
    };
    a.setHandler(bounce);
    b.setHandler(bounce);

    // Pre-seed at curTick 0. Extras stay below the lookahead window
    // so every pre-seed lands before the first handler-minted reply,
    // and sorting keeps each sender's timestamps nondecreasing.
    Rng rng(seed);
    for (ChannelShard *shard : {&a, &b}) {
        std::vector<Tick> extras;
        for (int i = 0; i < kSeeds; ++i)
            extras.push_back(rng.nextBounded(kLookahead));
        std::sort(extras.begin(), extras.end());
        for (Tick extra : extras)
            shard->sendDelayed(0, rng.nextBounded(12) + 1, extra);
    }

    group.run(kHorizon, jobs);

    ShardStats merged = group.mergedStats();
    GroupResult result;
    result.checksum = group.mergedChecksum();
    result.sent = merged.messagesSent.value();
    result.received = merged.messagesReceived.value();
    result.deliveries = merged.deliveries.value();
    result.tickSum = merged.deliveryTick.sum();
    result.tickCount = merged.deliveryTick.count();
    return result;
}

} // namespace

TEST(ShardGroupProperty, ThreadedRunMatchesSerialOracle)
{
    for (std::uint64_t seed : {1ull, 42ull, 0xDEADBEEFull, 777ull}) {
        GroupResult oracle = runPingPong(seed, 1);
        GroupResult threaded = runPingPong(seed, 4);

        // The protocol actually exercised the channels.
        EXPECT_GT(oracle.deliveries, 0u) << "seed " << seed;
        EXPECT_EQ(oracle.received, oracle.deliveries) << "seed " << seed;

        // Fingerprint and every tally bit-identical to the oracle.
        EXPECT_EQ(threaded, oracle) << "seed " << seed;

        // And re-running either mode reproduces itself exactly.
        EXPECT_EQ(runPingPong(seed, 4), threaded) << "seed " << seed;
    }
}

namespace
{

/**
 * The four-shard forwarding ring that used to gate
 * tools/determinism_check --threads before the real sharded System
 * took over that role; kept here as the ShardPort/ShardGroup-level
 * unit test of the same protocol promise.
 */
GroupResult
runForwardingRing(std::uint64_t seed, unsigned jobs)
{
    constexpr Tick kLookahead = 16;
    constexpr unsigned kShards = 4;

    ShardGroup group{Lookahead(kLookahead)};
    std::vector<ChannelShard *> shards;
    for (unsigned i = 0; i < kShards; ++i)
        shards.push_back(&group.addShard());
    for (unsigned i = 0; i < kShards; ++i)
        group.connect(*shards[i], *shards[(i + 1) % kShards]);

    for (ChannelShard *shard : shards) {
        shard->setHandler(
            [](ChannelShard &self, Tick, ShardPayload payload) {
                if (payload > 0)
                    self.send(0, payload - 1);
            });
        // Pre-seed at curTick 0 with a splitmix-style per-shard
        // stream; extras ascend so each sender stays monotonic and
        // stay below the lookahead so pre-seeds precede every
        // handler-minted reply.
        std::uint64_t state = seed * 0x9E3779B97F4A7C15ull +
                              shard->id() + 1;
        for (Tick extra = 0; extra < kLookahead; ++extra) {
            state ^= state >> 27;
            state *= 0x94D049BB133111EBull;
            shard->sendDelayed(0, state % 12 + 1, extra);
        }
    }

    group.run(2000, jobs);

    ShardStats merged = group.mergedStats();
    GroupResult result;
    result.checksum = group.mergedChecksum();
    result.sent = merged.messagesSent.value();
    result.received = merged.messagesReceived.value();
    result.deliveries = merged.deliveries.value();
    result.tickSum = merged.deliveryTick.sum();
    result.tickCount = merged.deliveryTick.count();
    return result;
}

} // namespace

TEST(ShardGroupProperty, FourShardRingMatchesSerialOracle)
{
    for (std::uint64_t seed : {1ull, 7ull, 0xC0FFEEull}) {
        GroupResult oracle = runForwardingRing(seed, 1);
        GroupResult threaded = runForwardingRing(seed, 4);
        EXPECT_GT(oracle.deliveries, 0u) << "seed " << seed;
        EXPECT_EQ(threaded, oracle) << "seed " << seed;
    }
}

// --- SimReport::merge ----------------------------------------------

TEST(SimReportMerge, TalliesSumAndWorstCaseFieldsCombine)
{
    SimReport a;
    a.workload = "synthetic";
    a.policy = "mellow";
    a.instructions = 1000;
    a.simTicks = 500;
    a.memReads = 10;
    a.issuedSlowWrites = 3;
    a.readEnergyPj = Picojoules(100.0);
    a.firstFaultTick = 0;
    a.effectiveCapacityFraction = 0.9;

    SimReport b;
    b.workload = "synthetic";
    b.policy = "mellow";
    b.status = ReportStatus::CapacityExhausted;
    b.instructions = 500;
    b.simTicks = 800;
    b.memReads = 5;
    b.issuedSlowWrites = 4;
    b.readEnergyPj = Picojoules(50.0);
    b.firstFaultTick = 123;
    b.firstUncorrectableTick = 200;
    b.effectiveCapacityFraction = 0.5;
    b.capacityFloorReached = true;

    a.merge(b);
    EXPECT_EQ(a.status, ReportStatus::CapacityExhausted);
    EXPECT_EQ(a.instructions, 1500u);
    EXPECT_EQ(a.simTicks, 800u);       // furthest shard
    EXPECT_EQ(a.memReads, 15u);
    EXPECT_EQ(a.issuedSlowWrites, 7u);
    EXPECT_DOUBLE_EQ(a.readEnergyPj.value(), 150.0);
    EXPECT_EQ(a.firstFaultTick, 123u); // earliest nonzero
    EXPECT_EQ(a.firstUncorrectableTick, 200u);
    EXPECT_DOUBLE_EQ(a.effectiveCapacityFraction, 0.5);
    EXPECT_TRUE(a.capacityFloorReached);
}

TEST(SimReportMerge, EarliestNonzeroFirstFaultWins)
{
    SimReport a;
    a.firstFaultTick = 50;
    SimReport b;
    b.firstFaultTick = 20;
    a.merge(b);
    EXPECT_EQ(a.firstFaultTick, 20u);

    SimReport c;
    c.firstFaultTick = 0; // never faulted: must not override
    a.merge(c);
    EXPECT_EQ(a.firstFaultTick, 20u);
}

TEST(SimReportMerge, MismatchedLabelsPanic)
{
    Logger::setQuiet(true);
    SimReport a;
    a.workload = "gups";
    SimReport b;
    b.workload = "stream";
    EXPECT_THROW(a.merge(b), PanicError);
    Logger::setQuiet(false);
}
