/**
 * @file
 * Leveler-zoo scenario: SoftWear versus WoLFRaM when lines die.
 *
 * Both backends spread wear, but they meet faults very differently:
 * SoftWear levels at page granularity from approximate sampled
 * counters and leaves retirement to the fault model's stacked remap
 * table, while WoLFRaM's programmable address decoder serves leveling
 * swaps AND retirement through one indirection (the FaultRemapDelegate
 * seam). This demo runs the same dirty-eviction stress under heavy
 * lognormal endurance variation (sigma 1.0 — a thick weak-line tail)
 * through both, plus Start-Gap as the paper's reference point, and
 * compares when each scheme hits its first uncorrectable error and
 * how much capacity is left at the end.
 *
 * With the capacity floor armed, a run that wears out stops
 * gracefully with status "capacity-exhausted" — partial IPC and all —
 * instead of asserting; that is the graceful end-of-life contract.
 *
 * Usage: leveler_zoo [instructions] [endurance_scale]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "fault/fault_model.hh"
#include "mellow/policy.hh"
#include "sim/types.hh"
#include "system/report.hh"
#include "system/runner.hh"
#include "system/system.hh"
#include "wear/wear_leveler.hh"
#include "workload/generators.hh"

using namespace mellowsim;

namespace
{

/** Dirty-eviction stress: a 3 MB random footprint against the 2 MB LLC. */
WorkloadParams
stressParams()
{
    WorkloadParams p;
    p.name = "zoo-stress";
    p.footprintBytes = 3ull * 1024 * 1024;
    p.hotBytes = 256 * 1024;
    p.coldFraction = 1.0;
    p.pattern = AccessPattern::Random;
    p.writeFraction = 0.6;
    p.meanGap = 10.0;
    return p;
}

const char *
tickStr(Tick t, char *buf, std::size_t n)
{
    if (t == 0)
        std::snprintf(buf, n, "%10s", "never");
    else
        std::snprintf(buf, n, "%8.1fus",
                      static_cast<double>(t) / kMicrosecond);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    applyDeviceArgs(argc, argv);
    std::uint64_t instrs =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3'000'000ull;
    double scale = argc > 2 ? std::atof(argv[2]) : 2e-7;
    if (instrs == 0 || scale <= 0.0) {
        std::fprintf(stderr,
                     "usage: %s [instructions] [endurance_scale]\n",
                     argv[0]);
        return 1;
    }

    std::printf("Wear-leveler zoo under heavy endurance variation\n"
                "(median line endurance %.2g wear units, lognormal "
                "sigma 1.0)\n\n",
                scale);

    const std::vector<WearLevelerKind> kinds = {
        WearLevelerKind::StartGap,
        WearLevelerKind::SoftWear,
        WearLevelerKind::WoLFRaM,
    };

    std::printf("%-16s %-18s %10s %8s %6s %9s\n", "leveler", "status",
                "first_ue", "retired", "dead", "capacity");
    for (WearLevelerKind kind : kinds) {
        SystemConfig cfg;
        applyDeviceSelection(cfg);
        cfg.policy = policies::beMellow().withSC();
        cfg.instructions = instrs;
        cfg.warmupInstructions = instrs / 6;
        cfg.memory.geometry.capacityBytes = 64ull * 1024 * 1024;
        cfg.memory.wearLeveler = kind;
        // Short maintenance periods so every scheme actually churns
        // within the window.
        cfg.memory.gapWritePeriod = 32;
        cfg.memory.softWearSamplePeriod = 2;
        cfg.memory.softWearRelocThreshold = 8;
        cfg.memory.fault.enabled = true;
        cfg.memory.fault.enduranceSigma = 1.0;
        cfg.memory.fault.enduranceScale = scale;
        cfg.memory.fault.repairEntriesPerLine = 1;
        cfg.memory.fault.spareLinesPerBank = 8;
        // Graceful end-of-life instead of degrading forever: stop at
        // 0.1% dead lines.
        cfg.memory.fault.capacityFloorFraction = 0.999;

        System sys(cfg, makeSynthetic(stressParams(), cfg.seed));
        SimReport r = sys.run();

        char b[32];
        std::printf("%-16s %-18s %s %8llu %6llu %8.4f%%\n",
                    wearLevelerKindName(kind), reportStatusName(r.status),
                    tickStr(r.firstUncorrectableTick, b, 32),
                    static_cast<unsigned long long>(r.retiredLines),
                    static_cast<unsigned long long>(r.deadLines),
                    100.0 * r.effectiveCapacityFraction);
    }

    std::printf(
        "\nWoLFRaM's unified decoder keeps diffusing hot lines away "
        "from the weak-line tail while it retires, so it reaches the "
        "first uncorrectable error later than page-granular SoftWear "
        "on the same stream; a run that does wear out ends with "
        "status capacity-exhausted and a well-formed report rather "
        "than an assert.\n");
    return 0;
}
