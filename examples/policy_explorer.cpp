/**
 * @file
 * Policy explorer: evaluate any Table III policy names on any
 * workloads and print a comparison table or CSV.
 *
 * Usage:
 *   policy_explorer [--csv] [--workloads w1,w2,...]
 *                   [--policies p1,p2,...] [--instrs N]
 *
 * Policy names use the paper's spelling, e.g. Norm, Slow, B-Mellow,
 * BE-Mellow, E-Norm, E-Slow with +NC/+SC/+WQ suffixes:
 *   policy_explorer --workloads stream,gups \
 *                   --policies Norm,BE-Mellow+SC+WQ
 */

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "mellow/policy.hh"
#include "system/report.hh"
#include "system/runner.hh"
#include "system/system.hh"

using namespace mellowsim;

namespace
{

std::vector<std::string>
splitCsv(const std::string &arg)
{
    std::vector<std::string> out;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    applyDeviceArgs(argc, argv);
    bool csv = false;
    std::vector<std::string> workloads = workloadNames();
    std::vector<std::string> policy_names = {"Norm", "B-Mellow+SC",
                                             "BE-Mellow+SC",
                                             "BE-Mellow+SC+WQ"};
    std::uint64_t instrs = 0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--csv") {
            csv = true;
        } else if (arg == "--workloads" && i + 1 < argc) {
            workloads = splitCsv(argv[++i]);
        } else if (arg == "--policies" && i + 1 < argc) {
            policy_names = splitCsv(argv[++i]);
        } else if (arg == "--instrs" && i + 1 < argc) {
            instrs = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--csv] [--workloads w,...] "
                         "[--policies p,...] [--instrs N]\n",
                         argv[0]);
            return 1;
        }
    }

    std::vector<WritePolicyConfig> pols;
    for (const std::string &name : policy_names)
        pols.push_back(policies::fromName(name));

    auto reports = runGrid(workloads, pols, [&](SystemConfig &cfg) {
        if (instrs)
            cfg.instructions = instrs;
    });

    if (csv) {
        std::printf("%s", reportsToCsv(reports).c_str());
        return 0;
    }

    std::printf("%s\n",
                reportsToTable(reports,
                               {"workload", "policy", "ipc", "lifetime",
                                "utilization", "drain", "mpki"})
                    .c_str());
    for (const std::string &p : policy_names) {
        if (p == "Norm")
            continue;
        std::printf(
            "%-18s vs Norm: %.3fx IPC, %.2fx lifetime (geomean)\n",
            p.c_str(),
            geoMeanNormalized(reports, workloads, p, "Norm",
                              [](const SimReport &r) { return r.ipc; }),
            geoMeanNormalized(reports, workloads, p, "Norm",
                              [](const SimReport &r) {
                                  return r.lifetimeYears;
                              }));
    }
    return 0;
}
