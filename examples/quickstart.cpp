/**
 * @file
 * Quickstart: simulate one workload under the baseline policy and
 * under the paper's best Mellow Writes policy, and compare.
 *
 * Usage: quickstart [workload] [instructions]
 *   workload      one of the Table IV names (default: stream)
 *   instructions  detailed-simulation length (default: 10000000)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "mellow/policy.hh"
#include "system/report.hh"
#include "system/runner.hh"
#include "system/system.hh"

using namespace mellowsim;

int
main(int argc, char **argv)
{
    applyDeviceArgs(argc, argv);
    std::string workload = argc > 1 ? argv[1] : "stream";
    std::uint64_t instrs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10'000'000ull;

    std::printf("mellowsim quickstart: workload=%s instructions=%llu\n\n",
                workload.c_str(),
                static_cast<unsigned long long>(instrs));

    std::vector<SimReport> reports;
    for (const WritePolicyConfig &policy :
         {policies::norm(), policies::beMellow().withSC(),
          policies::beMellow().withSC().withWQ()}) {
        SystemConfig cfg = makeConfig(workload, policy);
        cfg.instructions = instrs;
        reports.push_back(runSystem(cfg));
    }

    std::printf("%s\n",
                reportsToTable(reports, {"workload", "policy", "ipc",
                                         "lifetime", "utilization",
                                         "drain", "mpki"})
                    .c_str());

    const SimReport &norm = reports[0];
    const SimReport &mellow = reports[1];
    std::printf("BE-Mellow+SC vs Norm: %.2fx IPC, %.2fx lifetime\n",
                mellow.ipc / norm.ipc,
                mellow.lifetimeYears / norm.lifetimeYears);
    std::printf("(the paper reports ~1.06x IPC and ~2.58x lifetime as "
                "the 11-workload geometric mean)\n");
    return 0;
}
