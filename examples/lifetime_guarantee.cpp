/**
 * @file
 * Lifetime guarantee scenario: a deployment must survive a target
 * number of years under its worst (most write-intensive) workloads.
 *
 * Runs the write-heavy workloads under the baseline, under the best
 * Mellow Writes policy, and under Mellow Writes + Wear Quota tuned to
 * the requested target, showing that only the quota delivers a floor.
 *
 * Usage: lifetime_guarantee [target_years] [instructions]
 */

#include <cstdio>
#include <cstdlib>

#include "mellow/policy.hh"
#include "system/report.hh"
#include "system/runner.hh"
#include "system/system.hh"

using namespace mellowsim;

int
main(int argc, char **argv)
{
    applyDeviceArgs(argc, argv);
    double target = argc > 1 ? std::atof(argv[1]) : 8.0;
    std::uint64_t instrs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16'000'000ull;
    if (target <= 0.0) {
        std::fprintf(stderr, "target years must be positive\n");
        return 1;
    }

    std::printf("Guaranteeing a %.1f-year lifetime on write-heavy "
                "workloads\n\n",
                target);

    const std::vector<std::string> heavy = {"lbm", "gups", "stream",
                                            "milc", "libquantum"};
    std::vector<WritePolicyConfig> pols = {
        policies::norm(),
        policies::beMellow().withSC(),
        policies::beMellow().withSC().withWQ(),
    };

    auto reports = runGrid(heavy, pols, [&](SystemConfig &cfg) {
        cfg.instructions = instrs;
        cfg.memory.quota.targetLifetimeYears = target;
    });

    std::printf("%s\n",
                reportsToTable(reports, {"workload", "policy", "ipc",
                                         "lifetime", "drain"})
                    .c_str());

    int norm_ok = 0, mellow_ok = 0, quota_ok = 0;
    for (const std::string &w : heavy) {
        norm_ok += findReport(reports, w, "Norm").lifetimeYears >=
                   target * 0.95;
        mellow_ok +=
            findReport(reports, w, "BE-Mellow+SC").lifetimeYears >=
            target * 0.95;
        quota_ok +=
            findReport(reports, w, "BE-Mellow+SC+WQ").lifetimeYears >=
            target * 0.95;
    }
    std::printf("workloads within 5%% of the %.1f-year target:\n"
                "  Norm            %d/%zu\n"
                "  BE-Mellow+SC    %d/%zu\n"
                "  BE-Mellow+SC+WQ %d/%zu  <- Wear Quota trades IPC "
                "for the floor\n",
                target, norm_ok, heavy.size(), mellow_ok, heavy.size(),
                quota_ok, heavy.size());
    std::printf("\n(the quota converges to the target as the horizon "
                "grows; short runs sit slightly below it)\n");
    return 0;
}
