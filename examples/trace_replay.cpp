/**
 * @file
 * Trace workflow: record a trace, replay it through the simulator.
 *
 * With your own memory traces (gem5, Pin, production sampling), write
 * them in the mellowsim text format and point this tool at the file.
 * Run without arguments to see the full round trip on a synthetic
 * recording.
 *
 * Usage:
 *   trace_replay                     # record + replay a demo trace
 *   trace_replay <trace-file> [policy] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "mellow/policy.hh"
#include "system/report.hh"
#include "system/runner.hh"
#include "system/system.hh"
#include "workload/trace_workload.hh"

using namespace mellowsim;

namespace
{

SimReport
replay(const std::string &path, const WritePolicyConfig &policy,
       std::uint64_t instrs)
{
    SystemConfig cfg;
    applyDeviceSelection(cfg);
    cfg.policy = policy;
    cfg.instructions = instrs;
    System sys(cfg, makeTraceWorkload(path));
    return sys.run();
}

} // namespace

int
main(int argc, char **argv)
{
    applyDeviceArgs(argc, argv);
    if (argc > 1) {
        std::string path = argv[1];
        WritePolicyConfig policy =
            argc > 2 ? policies::fromName(argv[2])
                     : policies::beMellow().withSC();
        std::uint64_t instrs = argc > 3
                                   ? std::strtoull(argv[3], nullptr, 10)
                                   : 10'000'000ull;
        SimReport r = replay(path, policy, instrs);
        std::printf("%s\n",
                    reportsToTable({r}, {"workload", "policy", "ipc",
                                         "lifetime", "utilization",
                                         "mpki"})
                        .c_str());
        return 0;
    }

    // Demo: record 200k operations of milc, then replay the trace
    // under two policies.
    const std::string path = "/tmp/mellowsim_demo.trace";
    std::printf("Recording 200000 milc operations to %s ...\n",
                path.c_str());
    WorkloadPtr source = makeWorkload("milc", 7);
    writeTrace(path, *source, 200'000);

    std::vector<SimReport> reports;
    for (const WritePolicyConfig &policy :
         {policies::norm(), policies::beMellow().withSC()}) {
        reports.push_back(replay(path, policy, 8'000'000));
    }
    std::printf("\n%s\n",
                reportsToTable(reports, {"workload", "policy", "ipc",
                                         "lifetime", "utilization",
                                         "mpki"})
                    .c_str());
    std::printf("(the replayed trace cycles; lifetimes follow the "
                "paper's cyclic-execution model)\n");
    return 0;
}
