/**
 * @file
 * Using the library with your own workload: build a SyntheticWorkload
 * from explicit parameters (or implement the Workload interface
 * outright) and hand it to a System.
 *
 * The example models a log-structured storage engine: a large
 * sequential append stream (write-heavy, never re-read soon), a hot
 * index that fits in the cache hierarchy, and periodic random
 * compaction reads — then asks whether Mellow Writes helps it.
 *
 * Usage: custom_workload [instructions]
 */

#include <cstdio>
#include <cstdlib>

#include "mellow/policy.hh"
#include "system/report.hh"
#include "system/runner.hh"
#include "system/system.hh"
#include "workload/generators.hh"

using namespace mellowsim;

namespace
{

/**
 * A composite workload built from two SyntheticWorkload phases:
 * mostly log appends, interleaved with bursts of compaction reads.
 */
class LogStructuredWorkload : public Workload
{
  public:
    explicit LogStructuredWorkload(std::uint64_t seed)
    {
        WorkloadParams append;
        append.name = "log-append";
        append.pattern = AccessPattern::Sequential;
        append.numStreams = 1;
        append.footprintBytes = 256ull * 1024 * 1024;
        append.writeFraction = 0.85; // appends are stores
        append.coldFraction = 0.8;   // hot index absorbs the rest
        append.hotBytes = 512 * 1024;
        append.meanGap = 60.0;
        _append = makeSynthetic(append, seed);

        WorkloadParams compact;
        compact.name = "compaction";
        compact.pattern = AccessPattern::Random;
        compact.footprintBytes = 256ull * 1024 * 1024;
        compact.writeFraction = 0.1;
        compact.meanGap = 40.0;
        _compact = makeSynthetic(compact, seed ^ 0xBEEF);

        _info.name = "log-structured";
    }

    Op
    next() override
    {
        // 1 compaction burst of 64 ops every 1024 appends.
        if (_phase < 1024) {
            ++_phase;
            return _append->next();
        }
        if (_phase < 1024 + 64) {
            ++_phase;
            return _compact->next();
        }
        _phase = 0;
        return _append->next();
    }

    const WorkloadInfo &info() const override { return _info; }

  private:
    WorkloadPtr _append;
    WorkloadPtr _compact;
    WorkloadInfo _info;
    unsigned _phase = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    applyDeviceArgs(argc, argv);
    std::uint64_t instrs =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 12'000'000ull;

    std::printf("Custom workload: log-structured storage engine\n\n");

    std::vector<SimReport> reports;
    for (const WritePolicyConfig &policy :
         {policies::norm(), policies::beMellow().withSC(),
          policies::beMellow().withSC().withWQ()}) {
        SystemConfig cfg;
        applyDeviceSelection(cfg);
        cfg.policy = policy;
        cfg.instructions = instrs;
        // A caller-provided workload replaces the named ones.
        System sys(cfg,
                   std::make_unique<LogStructuredWorkload>(cfg.seed));
        reports.push_back(sys.run());
    }

    std::printf("%s\n",
                reportsToTable(reports, {"workload", "policy", "ipc",
                                         "lifetime", "utilization",
                                         "mpki"})
                    .c_str());

    const SimReport &n = reports[0];
    const SimReport &m = reports[1];
    std::printf("Mellow Writes on this engine: %.2fx IPC, %.2fx "
                "lifetime vs Norm\n",
                m.ipc / n.ipc, m.lifetimeYears / n.lifetimeYears);
    std::printf("(append streams are ideal eager candidates: written "
                "once, never re-dirtied)\n");
    return 0;
}
