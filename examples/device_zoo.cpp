/**
 * @file
 * Device zoo: the same workload and policy on every shipped device
 * config, side by side.
 *
 * Each row is one full simulation bound from one configs/<name>.config
 * file (see DESIGN.md section 14): the paper's memory-grade ReRAM
 * point, the ISSCC-2012 cross-point macro, a second-generation MLC
 * part, and a PCM-like technology point. The interesting column is
 * the lifetime spread — Mellow Writes buys the most on low-endurance
 * quadratic-trade-off devices and the least on PCM's near-linear
 * trade-off.
 *
 * Usage: device_zoo [instructions]
 *   (also: --device/--list-devices, MELLOWSIM_INSTRS, like any bench)
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "config/device_config.hh"
#include "mellow/policy.hh"
#include "system/report.hh"
#include "system/runner.hh"
#include "system/system.hh"

using namespace mellowsim;

int
main(int argc, char **argv)
{
    applyDeviceArgs(argc, argv);
    std::uint64_t instrs =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4'000'000ull;
    if (instrs == 0) {
        std::fprintf(stderr, "usage: %s [instructions]\n", argv[0]);
        return 1;
    }

    // An explicit --device narrows the zoo to that one entry;
    // otherwise every shipped config runs.
    std::vector<std::string> devices;
    if (!activeDeviceName().empty())
        devices.push_back(activeDeviceName());
    else
        devices = deviceConfigNames();
    if (devices.empty()) {
        std::fprintf(stderr, "no device configs found in %s\n",
                     deviceConfigDir().c_str());
        return 1;
    }

    const WritePolicyConfig policy = policies::beMellow().withSC();
    std::printf("Device zoo: workload=stream policy=%s instrs=%llu\n\n",
                policy.name.c_str(),
                static_cast<unsigned long long>(instrs));
    std::printf("%-18s %8s %10s %12s %10s\n", "device", "ipc",
                "lifetime_y", "energy_uJ", "avg_rd_ns");

    for (const std::string &device : devices) {
        setDeviceOverride(device);
        SystemConfig cfg = makeConfig("stream", policy);
        if (instrs < cfg.instructions)
            cfg.instructions = instrs;
        if (cfg.warmupInstructions > instrs / 4)
            cfg.warmupInstructions = instrs / 4;
        SimReport r = runSystem(cfg);
        std::printf("%-18s %8.3f %10.2f %12.1f %10.1f\n",
                    device.c_str(), r.ipc, r.lifetimeYears,
                    r.totalEnergyPj.value() * 1e-6, r.avgReadLatencyNs);
    }

    std::printf("\nSame stream, same policy: the devices differ only "
                "through their .config files — endurance and the "
                "latency/endurance exponent drive the lifetime "
                "column, the cell energy and row-buffer width drive "
                "the energy column.\n");
    return 0;
}
