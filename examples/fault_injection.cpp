/**
 * @file
 * Fault-injection scenario: what does "lifetime" mean when lines can
 * actually die?
 *
 * The analytic lifetime metric extrapolates mean wear; this demo
 * instead enables the fault model — lognormal per-line endurance
 * variation, write-verify with bounded retries, ECP-style repairs,
 * then retirement onto spare lines — and measures the time to the
 * first *uncorrectable* error under an all-fast baseline versus slow
 * and Mellow Writes policies. Slow writes wear cells by 1/9th
 * (Equation 2 with expoFactor 2, slowFactor 3), so they burn through
 * the weak-line tail much later: first faults, retirements and
 * capacity loss all shift right.
 *
 * Usage: fault_injection [instructions] [endurance_scale]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fault/fault_model.hh"
#include "mellow/policy.hh"
#include "sim/types.hh"
#include "system/report.hh"
#include "system/runner.hh"
#include "system/system.hh"
#include "workload/generators.hh"

using namespace mellowsim;

namespace
{

/** Dirty-eviction stress: a 3 MB random footprint against the 2 MB LLC. */
WorkloadParams
stressParams()
{
    WorkloadParams p;
    p.name = "fault-stress";
    p.footprintBytes = 3ull * 1024 * 1024;
    p.hotBytes = 256 * 1024;
    p.coldFraction = 1.0;
    p.pattern = AccessPattern::Random;
    p.writeFraction = 0.6;
    p.meanGap = 10.0;
    return p;
}

const char *
tickStr(Tick t, char *buf, std::size_t n)
{
    if (t == 0)
        std::snprintf(buf, n, "%10s", "never");
    else
        std::snprintf(buf, n, "%8.1fus",
                      static_cast<double>(t) / kMicrosecond);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    applyDeviceArgs(argc, argv);
    std::uint64_t instrs =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3'000'000ull;
    double scale = argc > 2 ? std::atof(argv[2]) : 2e-7;
    if (instrs == 0 || scale <= 0.0) {
        std::fprintf(stderr,
                     "usage: %s [instructions] [endurance_scale]\n",
                     argv[0]);
        return 1;
    }

    std::printf("Fault injection: time to first uncorrectable error\n"
                "(median line endurance %.2g wear units; a normal "
                "write costs 2e-7)\n\n",
                scale);

    const std::vector<WritePolicyConfig> pols = {
        policies::norm(),
        policies::slow(),
        policies::beMellow().withSC(),
    };

    std::printf("%-16s %10s %10s %8s %6s %6s %9s\n", "policy",
                "first_flt", "first_ue", "retired", "dead", "repair",
                "capacity");
    for (const WritePolicyConfig &p : pols) {
        SystemConfig cfg;
        applyDeviceSelection(cfg);
        cfg.policy = p;
        cfg.instructions = instrs;
        cfg.warmupInstructions = instrs / 6;
        cfg.memory.geometry.capacityBytes = 64ull * 1024 * 1024;
        cfg.memory.fault.enabled = true;
        cfg.memory.fault.enduranceScale = scale;
        cfg.memory.fault.repairEntriesPerLine = 1;
        cfg.memory.fault.spareLinesPerBank = 4;

        System sys(cfg, makeSynthetic(stressParams(), cfg.seed));
        SimReport r = sys.run();

        char b1[32], b2[32];
        std::printf("%-16s %s %s %8llu %6llu %6llu %8.4f%%\n",
                    r.policy.c_str(), tickStr(r.firstFaultTick, b1, 32),
                    tickStr(r.firstUncorrectableTick, b2, 32),
                    static_cast<unsigned long long>(r.retiredLines),
                    static_cast<unsigned long long>(r.deadLines),
                    static_cast<unsigned long long>(r.faultRepairsUsed),
                    100.0 * r.effectiveCapacityFraction);

        // Capacity-degradation timeline for the baseline: each entry
        // is one retirement or death event.
        if (&p == &pols.front()) {
            const FaultModel *fm = sys.controller().faultModel();
            const auto &trace = fm->capacityTrace();
            std::printf("  `- %zu capacity events; last 3:\n",
                        trace.size());
            std::size_t from =
                trace.size() > 3 ? trace.size() - 3 : 0;
            for (std::size_t i = from; i < trace.size(); ++i) {
                char b[32];
                std::printf("     %s  retired=%llu dead=%llu\n",
                            tickStr(trace[i].tick, b, 32),
                            static_cast<unsigned long long>(
                                trace[i].retiredLines),
                            static_cast<unsigned long long>(
                                trace[i].deadLines));
            }
        }
    }

    std::printf("\nSlow and Mellow policies reach the first "
                "uncorrectable error later (or never within the "
                "window): selective slow writes stretch the weak-line "
                "tail, not just the mean lifetime.\n");
    return 0;
}
