/**
 * @file
 * Cell-fault injection and graceful-degradation model.
 *
 * The analytic wear accounting (src/wear) extrapolates lifetime from
 * Equation 2 but never makes a cell actually fail. This subsystem
 * closes that loop so the Mellow Writes mechanisms can be stress-tested
 * against hardware that degrades:
 *
 *  - Endurance variation. Every memory line draws a private endurance
 *    budget from a lognormal distribution centred on the nominal
 *    endurance (sigma configurable, WoLFRaM-style process variation).
 *    The draw is a pure hash of (seed, line), so it is reproducible
 *    and independent of access order.
 *  - Transient write failures. A completed write pulse fails
 *    verification with a configurable probability that shrinks with
 *    pulse time (slower writes switch more reliably — the same
 *    latency/reliability trade-off Equation 2 models for endurance).
 *    The controller retries a failed write with a progressively
 *    slower pulse, bounded by maxRetries, before escalating.
 *  - Permanent stuck-at faults. When a line's accumulated wear (in
 *    the same wear units as WearTracker) exceeds its drawn endurance,
 *    a cell sticks. An ECP-style per-line repair budget absorbs the
 *    first repairEntriesPerLine faults; after that the line is
 *    retired and remapped to a bank-local spare through an
 *    indirection table. When a bank's spares are exhausted the next
 *    retirement is an uncorrectable error: the simulation keeps
 *    running (graceful capacity degradation) and the tick of the
 *    first such error — time-to-first-uncorrectable-error — becomes a
 *    measured lifetime metric to hold against the analytic one.
 *
 * All randomness is counter-based: each draw seeds a fresh sim/rng
 * generator from a hash of (seed, line, draw index), so identical
 * configurations replay identically regardless of event interleaving
 * — the property the determinism audit (tools/determinism_check)
 * enforces with faults enabled.
 */

#ifndef MELLOWSIM_FAULT_FAULT_MODEL_HH
#define MELLOWSIM_FAULT_FAULT_MODEL_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/indexed.hh"
#include "sim/strong_types.hh"
#include "sim/types.hh"

namespace mellowsim
{

/** Knobs of the fault-injection layer (all off by default). */
struct FaultConfig
{
    /** Master switch; the controller skips everything when false. */
    bool enabled = false;

    /** Base seed for every per-line hash draw. */
    std::uint64_t seed = 0xFA171C0DEull;

    /**
     * Sigma of the lognormal endurance-variation factor. 0 makes
     * every line exactly nominal; 0.3 is a moderate process spread;
     * 1.0 produces the heavy weak-line tail used by the stress tests.
     */
    double enduranceSigma = 0.3;

    /**
     * Median line endurance in wear units (fractions of one nominal
     * cell life, as accumulated by WearTracker). 1.0 means a line
     * endures its full Equation-2 life; tests and demos use tiny
     * values (e.g. 5e-7) so failures occur within short simulations.
     */
    double enduranceScale = 1.0;

    /**
     * Probability that a normal-speed write pulse fails verification.
     * The effective probability divides by the pulse slow-down
     * factor, so slow (and retried) writes fail less often.
     */
    double transientFailProb = 0.0;

    /** Write-verify retries per request before escalating. */
    unsigned maxRetries = 3;

    /**
     * Pulse multiplier applied per retry: retry k of a request uses
     * pulse * retrySlowFactor^k (the paper's latency/endurance
     * trade-off reused as a reliability knob).
     */
    double retrySlowFactor = 2.0;

    /** ECP-style repair entries per line (stuck-at faults absorbed). */
    unsigned repairEntriesPerLine = 2;

    /** Spare lines per bank available for retirement remapping. */
    std::uint64_t spareLinesPerBank = 64;

    /**
     * End-of-life floor: when the system-wide effective capacity
     * fraction drops to (or below) this value the runner stops the
     * simulation and reports ReportStatus::CapacityExhausted instead
     * of simulating a memory that has effectively died. 0 disables
     * the floor (the seed behaviour: degrade forever).
     */
    double capacityFloorFraction = 0.0;

    // Filled in by the controller from its geometry.
    unsigned numBanks = 16;
    std::uint64_t blocksPerBank = 4ull * 1024 * 1024;
};

/** Aggregate fault statistics (all monotone counters). */
struct FaultStats
{
    std::uint64_t linesTouched = 0;      ///< lines with recorded wear
    std::uint64_t transientFailures = 0; ///< failed verifications
    std::uint64_t retriesRequested = 0;  ///< verdicts asking a retry
    std::uint64_t permanentFaults = 0;   ///< endurance-exceeded events
    std::uint64_t repairsUsed = 0;       ///< ECP entries consumed
    std::uint64_t retiredLines = 0;      ///< lines remapped to spares
    std::uint64_t deadLines = 0;         ///< uncorrectable lines
    std::uint64_t writesToDeadLines = 0; ///< degraded-mode writes
    Tick firstFaultTick = 0;             ///< 0 = never
    Tick firstUncorrectableTick = 0;     ///< 0 = never
};

/** One point of the effective-capacity-over-time trace. */
struct CapacitySample
{
    Tick tick = 0;
    std::uint64_t retiredLines = 0;
    std::uint64_t deadLines = 0;
};

/** Verdict of the write-verify step at pulse completion. */
enum class WriteVerdict
{
    Ok,            ///< verified; data is stable
    Retry,         ///< transient failure; reissue with a slower pulse
    Retired,       ///< line retired; data landed in its fresh spare
    Uncorrectable, ///< no spare left; data lost, line soldiers on
};

/**
 * The no-fault half of the sanctioned LineIndex -> DeviceAddr
 * boundary: with fault remapping disabled (or no FaultModel present)
 * every logical line is its own device line. The other half is
 * FaultModel::remap.
 */
[[nodiscard]] constexpr DeviceAddr
deviceLineOf(LineIndex line)
{
    return DeviceAddr(line.value());
}

/**
 * Leveled-space variant of the same boundary, for configurations
 * where the leveled block needs no further indirection: fault
 * remapping disabled, or a leveler that owns the fault remap itself
 * (WoLFRaM's unified decoder — see FaultRemapDelegate).
 */
[[nodiscard]] constexpr DeviceAddr
deviceLineOf(LeveledAddr block)
{
    return DeviceAddr(block.value());
}

/**
 * A wear leveler that owns the retirement indirection (WoLFRaM's
 * programmable address decoder). When a bank registers a delegate,
 * FaultModel::escalate routes retirement through it instead of the
 * stacked _remap table: leveling and fault remapping share one
 * mechanism, which is the point of the unified remap path.
 *
 * Raw std::uint64_t block numbers cross this seam on purpose: the
 * delegate lives in the leveler's physical-block space, where both
 * LeveledAddr (its own outputs) and DeviceAddr (the fault model's
 * view) coincide by construction.
 */
class FaultRemapDelegate
{
  public:
    virtual ~FaultRemapDelegate() = default;

    /**
     * Retire a physical block: reroute its logical occupant to a
     * spare slot and never map anything onto the block again.
     *
     * @return The spare block that took over, or std::nullopt when
     *         spare capacity is exhausted (the caller then records an
     *         uncorrectable error and degrades capacity).
     */
    virtual std::optional<std::uint64_t>
    retirePhysical(std::uint64_t physicalBlock) = 0;

    /** True iff the unified mapping is still a bijection. */
    [[nodiscard]] virtual bool remapValid() const = 0;

    /** Blocks this delegate has retired so far. */
    [[nodiscard]] virtual std::uint64_t retiredCount() const = 0;
};

/** See file comment. */
class FaultModel
{
  public:
    explicit FaultModel(const FaultConfig &config);

    /**
     * Resolve a wear-leveled block to its current device line through
     * the retirement indirection table (identity for healthy lines;
     * follows retirement chains when a spare itself retired). The
     * controller applies this to every request at issue time, so
     * retired lines are never written. This is the sanctioned
     * LeveledAddr -> DeviceAddr conversion (see strong_types.hh).
     * Banks whose leveler owns the fault remap (FaultRemapDelegate)
     * bypass it: their level() output is already the device line.
     */
    [[nodiscard]] DeviceAddr remap(BankId bank, LeveledAddr block) const;

    /**
     * Register the unified-remap delegate for one bank (nullptr to
     * clear). Retirement on that bank then goes through
     * FaultRemapDelegate::retirePhysical; the stacked _remap table
     * stays empty for it.
     */
    void setRemapDelegate(BankId bank, FaultRemapDelegate *delegate);

    /**
     * Note a write issued to the (post-remap) device @p line. A
     * write reaching a retired line is a controller bug; it is
     * counted so the invariant checker can flag it.
     */
    void noteWriteIssued(BankId bank, DeviceAddr line);

    /**
     * Write-verify step, called when a pulse completes on the
     * (post-remap) device @p line.
     *
     * @param wearUnits    Wear the pulse inflicted (EnduranceModel).
     * @param pulseFactor  Pulse time relative to the normal tWP.
     * @param retriesSoFar Retries this request has already used.
     * @param now          Completion tick (for first-fault metrics).
     */
    WriteVerdict verifyWrite(BankId bank, DeviceAddr line,
                             double wearUnits, PulseFactor pulseFactor,
                             unsigned retriesSoFar, Tick now);

    /**
     * Account a maintenance write (leveler gap move, refresh swap, or
     * SoftWear/WoLFRaM migration) on the (post-remap) device @p line.
     * Maintenance traffic wears cells and can exhaust a line's
     * endurance budget — the escalation path (repair, retire, dead)
     * runs exactly as for demand writes — but there is no request to
     * retry, so the transient-verification stage is skipped and the
     * verdict is not propagated.
     */
    void noteMaintenanceWrite(BankId bank, DeviceAddr line,
                              double wearUnits, Tick now);

    // --- Introspection ---------------------------------------------
    [[nodiscard]] const FaultStats &stats() const { return _stats; }
    [[nodiscard]] const FaultConfig &config() const { return _config; }

    /** The endurance budget drawn for a line (draws it if needed). */
    [[nodiscard]] double lineEndurance(BankId bank, DeviceAddr line);

    /** True if the line has been retired (remapped away). */
    [[nodiscard]] bool lineRetired(BankId bank, DeviceAddr line) const;

    /** Spares consumed by one bank so far. */
    [[nodiscard]] std::uint64_t sparesUsed(BankId bank) const;

    /** Write-verify retries requested on one bank. */
    [[nodiscard]] std::uint64_t retriesForBank(BankId bank) const;

    /**
     * Fraction of lines still storing data reliably: 1 minus the
     * dead (uncorrectable) share. Retired-and-remapped lines do not
     * reduce it — that is the point of the spare pool.
     */
    [[nodiscard]] double effectiveCapacityFraction() const;

    /** Retirement/death events in occurrence order. */
    [[nodiscard]] const std::vector<CapacitySample> &capacityTrace() const
    {
        return _capacityTrace;
    }

    // --- Audit support (src/check/) --------------------------------
    /** Entries in the retirement indirection table. */
    [[nodiscard]] std::uint64_t remapEntries() const
    {
        return _remap.size();
    }

    /** Retirements routed through unified-remap delegates. */
    [[nodiscard]] std::uint64_t delegateRetiredLines() const
    {
        return _delegateRetiredLines;
    }

    /**
     * True iff the indirection table is a bijection onto distinct
     * in-range spare lines, every source line is marked retired, and
     * every registered unified-remap delegate reports its own mapping
     * bijective.
     */
    [[nodiscard]] bool remapTableValid() const;

    /** Largest repair count consumed by any single line. */
    [[nodiscard]] std::uint64_t maxRepairsOnLine() const
    {
        return _maxRepairsOnLine;
    }

    /** Writes observed on retired lines (must stay zero). */
    [[nodiscard]] std::uint64_t writesToRetiredLines() const
    {
        return _writesToRetiredLines;
    }

    /** Largest per-bank spare consumption. */
    [[nodiscard]] std::uint64_t maxSparesUsed() const;

  private:
    struct LineState
    {
        double wear = 0.0;
        double endurance = 0.0;  ///< drawn budget in wear units
        std::uint64_t writes = 0;
        unsigned repairsUsed = 0;
        bool retired = false;
        bool dead = false;
    };

    [[nodiscard]] std::uint64_t lineKey(BankId bank,
                                        DeviceAddr line) const;

    /** State of a line, drawing its endurance on first touch. */
    LineState &touch(BankId bank, DeviceAddr line);

    /** Uniform in [0, 1) from a pure (line, draw) hash. */
    [[nodiscard]] double hashUniform(std::uint64_t key,
                                     std::uint64_t draw,
                                     std::uint64_t salt) const;

    /** One lognormal endurance draw for (line, draw index). */
    [[nodiscard]] double drawEndurance(std::uint64_t key,
                                       std::uint64_t draw) const;

    /** Escalation path: repair, retire+remap, or uncorrectable. */
    WriteVerdict escalate(BankId bank, DeviceAddr line,
                          LineState &state, Tick now);

    FaultConfig _config;
    FaultStats _stats;

    std::unordered_map<std::uint64_t, LineState> _lines;
    /** Retirement indirection: line key -> replacement line index. */
    std::unordered_map<std::uint64_t, std::uint64_t> _remap;
    /** Unified-remap delegates, one slot per bank (may be null). */
    IndexedVector<BankId, FaultRemapDelegate *> _delegates;
    IndexedVector<BankId, std::uint64_t> _sparesUsed;
    IndexedVector<BankId, std::uint64_t> _bankRetries;
    std::vector<CapacitySample> _capacityTrace;
    std::uint64_t _maxRepairsOnLine = 0;
    std::uint64_t _writesToRetiredLines = 0;
    std::uint64_t _delegateRetiredLines = 0;
};

} // namespace mellowsim

#endif // MELLOWSIM_FAULT_FAULT_MODEL_HH
