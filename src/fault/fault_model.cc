#include "fault/fault_model.hh"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace mellowsim
{

namespace
{

/** Draw-index salts keeping the per-line hash streams disjoint. */
constexpr std::uint64_t kEnduranceSalt = 0xE14D;
constexpr std::uint64_t kTransientSalt = 0x7247;

constexpr double kTwoPi = 6.283185307179586476925286766559;

} // namespace

FaultModel::FaultModel(const FaultConfig &config)
    : _config(config), _delegates(config.numBanks, nullptr),
      _sparesUsed(config.numBanks, 0), _bankRetries(config.numBanks, 0)
{
    fatal_if(config.numBanks == 0, "fault model needs >= 1 bank");
    fatal_if(config.blocksPerBank == 0,
             "fault model needs >= 1 block per bank");
    fatal_if(config.enduranceSigma < 0.0,
             "endurance sigma must be >= 0 (got %f)",
             config.enduranceSigma);
    fatal_if(config.enduranceScale <= 0.0,
             "endurance scale must be positive (got %f)",
             config.enduranceScale);
    fatal_if(config.transientFailProb < 0.0 ||
                 config.transientFailProb >= 1.0,
             "transient failure probability must be in [0, 1) (got %f)",
             config.transientFailProb);
    fatal_if(config.retrySlowFactor < 1.0,
             "retry slow factor must be >= 1.0 (got %f)",
             config.retrySlowFactor);
}

std::uint64_t
FaultModel::lineKey(BankId bank, DeviceAddr line) const
{
    // Lines per bank including the spare pool; keys never collide
    // across banks.
    std::uint64_t stride =
        _config.blocksPerBank + _config.spareLinesPerBank;
    panic_if(line.value() >= stride,
             "line %llu out of range (stride %llu)",
             static_cast<unsigned long long>(line.value()),
             static_cast<unsigned long long>(stride));
    return static_cast<std::uint64_t>(bank.value()) * stride +
           line.value();
}

double
FaultModel::hashUniform(std::uint64_t key, std::uint64_t draw,
                        std::uint64_t salt) const
{
    // A fresh xorshift128+ seeded from the hash: splitmix64 inside
    // the Rng constructor provides the avalanche; one draw is enough.
    Rng rng(_config.seed ^ (key * 0x9E3779B97F4A7C15ull) ^
            (draw * 0xC2B2AE3D27D4EB4Full) ^
            (salt * 0x165667B19E3779F9ull));
    return rng.nextDouble();
}

double
FaultModel::drawEndurance(std::uint64_t key, std::uint64_t draw) const
{
    if (_config.enduranceSigma == 0.0)
        return _config.enduranceScale;
    // Box-Muller on two hash uniforms -> standard normal -> lognormal
    // factor with median 1.
    double u1 = hashUniform(key, draw, kEnduranceSalt);
    double u2 = hashUniform(key, draw + 1, kEnduranceSalt);
    u1 = std::max(u1, 1e-12); // log(0) guard
    double n = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(kTwoPi * u2);
    return _config.enduranceScale *
           std::exp(_config.enduranceSigma * n);
}

FaultModel::LineState &
FaultModel::touch(BankId bank, DeviceAddr line)
{
    std::uint64_t key = lineKey(bank, line);
    auto [it, inserted] = _lines.try_emplace(key);
    if (inserted) {
        it->second.endurance = drawEndurance(key, 0);
        ++_stats.linesTouched;
    }
    return it->second;
}

DeviceAddr
FaultModel::remap(BankId bank, LeveledAddr block) const
{
    // Follow the retirement chain; each hop was remapped to a freshly
    // allocated spare, so the chain is acyclic by construction.
    std::uint64_t stride =
        _config.blocksPerBank + _config.spareLinesPerBank;
    std::uint64_t cur = block.value();
    std::uint64_t key =
        static_cast<std::uint64_t>(bank.value()) * stride + cur;
    for (auto it = _remap.find(key); it != _remap.end();
         it = _remap.find(key)) {
        cur = it->second;
        key = static_cast<std::uint64_t>(bank.value()) * stride + cur;
    }
    return DeviceAddr(cur);
}

void
FaultModel::setRemapDelegate(BankId bank, FaultRemapDelegate *delegate)
{
    _delegates[bank] = delegate;
}

void
FaultModel::noteWriteIssued(BankId bank, DeviceAddr line)
{
    auto it = _lines.find(lineKey(bank, line));
    if (it != _lines.end() && it->second.retired)
        ++_writesToRetiredLines;
}

WriteVerdict
FaultModel::escalate(BankId bank, DeviceAddr line,
                     LineState &state, Tick now)
{
    // Retired lines must never see traffic (the controller remaps at
    // issue); reaching here would double-retire and corrupt the
    // indirection table, so fail fast instead.
    // mlint: allow(value-escape): panic-message formatting.
    panic_if(state.retired,
             "escalating a fault on already-retired line %llu of "
             "bank %u",
             static_cast<unsigned long long>(line.value()),
             bank.value());
    ++_stats.permanentFaults;
    if (_stats.firstFaultTick == 0)
        _stats.firstFaultTick = now;

    if (state.repairsUsed < _config.repairEntriesPerLine) {
        // ECP: route the stuck cell to a replacement cell. The line
        // continues with the replacement's own endurance draw added
        // on top of the exhausted budget.
        ++state.repairsUsed;
        ++_stats.repairsUsed;
        _maxRepairsOnLine =
            std::max<std::uint64_t>(_maxRepairsOnLine,
                                    state.repairsUsed);
        state.endurance +=
            drawEndurance(lineKey(bank, line), state.repairsUsed + 1);
        return WriteVerdict::Ok;
    }

    if (FaultRemapDelegate *delegate = _delegates[bank];
        delegate != nullptr) {
        // Unified remap path: the leveler's programmable decoder owns
        // the indirection; it reroutes the block's logical occupant
        // to one of its own spare slots (or reports exhaustion, which
        // falls through to the uncorrectable branch below).
        // mlint: allow(value-escape): the delegate seam is raw block
        // numbers by contract (see FaultRemapDelegate).
        if (auto spare = delegate->retirePhysical(line.value())) {
            state.retired = true;
            ++_stats.retiredLines;
            ++_delegateRetiredLines;
            ++_sparesUsed[bank];
            // Fresh endurance draw for the spare.
            touch(bank, DeviceAddr(*spare));
            _capacityTrace.push_back(
                {now, _stats.retiredLines, _stats.deadLines});
            return WriteVerdict::Retired;
        }
    } else if (_sparesUsed[bank] < _config.spareLinesPerBank) {
        // Retire the line; all future traffic is redirected to a
        // fresh bank-local spare through the indirection table.
        state.retired = true;
        ++_stats.retiredLines;
        std::uint64_t spare =
            _config.blocksPerBank + _sparesUsed[bank]++;
        _remap[lineKey(bank, line)] = spare;
        // Fresh endurance draw for the spare.
        touch(bank, DeviceAddr(spare));
        _capacityTrace.push_back(
            {now, _stats.retiredLines, _stats.deadLines});
        return WriteVerdict::Retired;
    }

    // Out of spares: the line can no longer store data reliably but
    // stays in service so the simulation degrades instead of dying.
    state.dead = true;
    ++_stats.deadLines;
    if (_stats.firstUncorrectableTick == 0)
        _stats.firstUncorrectableTick = now;
    _capacityTrace.push_back(
        {now, _stats.retiredLines, _stats.deadLines});
    return WriteVerdict::Uncorrectable;
}

WriteVerdict
FaultModel::verifyWrite(BankId bankId, DeviceAddr deviceLine,
                        double wearUnits, PulseFactor pulseFactor,
                        unsigned retriesSoFar, Tick now)
{
    const BankId bank = bankId;
    const DeviceAddr line = deviceLine;
    LineState &state = touch(bank, line);
    if (state.dead) {
        // Already uncorrectable; count degraded-mode traffic but stop
        // escalating (the data loss was recorded once).
        ++_stats.writesToDeadLines;
        ++state.writes;
        state.wear += wearUnits;
        return WriteVerdict::Ok;
    }

    state.wear += wearUnits;
    ++state.writes;

    if (_config.transientFailProb > 0.0) {
        // PulseFactor is >= 1 by construction, so dividing by it only
        // ever shrinks the failure probability.
        double p = _config.transientFailProb / pulseFactor;
        if (hashUniform(lineKey(bank, line), state.writes,
                        kTransientSalt) < p) {
            ++_stats.transientFailures;
            if (retriesSoFar < _config.maxRetries) {
                ++_stats.retriesRequested;
                ++_bankRetries[bank];
                return WriteVerdict::Retry;
            }
            // Retries exhausted: the cell would not switch even with
            // the slowest pulse — treat it as permanently stuck.
            return escalate(bank, line, state, now);
        }
    }

    if (state.wear >= state.endurance)
        return escalate(bank, line, state, now);
    return WriteVerdict::Ok;
}

void
FaultModel::noteMaintenanceWrite(BankId bank, DeviceAddr line,
                                 double wearUnits, Tick now)
{
    LineState &state = touch(bank, line);
    ++state.writes;
    state.wear += wearUnits;
    if (state.dead) {
        // Already uncorrectable; count degraded-mode traffic but stop
        // escalating (the data loss was recorded once).
        ++_stats.writesToDeadLines;
        return;
    }
    // No verification/retry stage: a migration copy that lands on a
    // worn-out cell escalates straight to repair/retire/dead, and the
    // verdict has no requester to flow back to.
    if (state.wear >= state.endurance)
        (void)escalate(bank, line, state, now);
}

double
FaultModel::lineEndurance(BankId bank, DeviceAddr line)
{
    return touch(bank, line).endurance;
}

bool
FaultModel::lineRetired(BankId bank, DeviceAddr line) const
{
    auto it = _lines.find(lineKey(bank, line));
    return it != _lines.end() && it->second.retired;
}

std::uint64_t
FaultModel::sparesUsed(BankId bank) const
{
    return _sparesUsed[bank];
}

std::uint64_t
FaultModel::retriesForBank(BankId bank) const
{
    return _bankRetries[bank];
}

double
FaultModel::effectiveCapacityFraction() const
{
    double total = static_cast<double>(_config.numBanks) *
                   static_cast<double>(_config.blocksPerBank);
    return 1.0 - static_cast<double>(_stats.deadLines) / total;
}

bool
FaultModel::remapTableValid() const
{
    std::uint64_t stride =
        _config.blocksPerBank + _config.spareLinesPerBank;
    std::unordered_set<std::uint64_t> targets;
    // mlint: allow(nondet-handler): order-independent validity check
    // over the remap table; every path through it returns the same
    // verdict regardless of iteration order.
    for (const auto &[key, spare] : _remap) {
        unsigned bank = static_cast<unsigned>(key / stride);
        // Targets must be distinct spare slots of the same bank.
        if (spare < _config.blocksPerBank ||
            spare >= _config.blocksPerBank + _config.spareLinesPerBank)
            return false;
        std::uint64_t target_key =
            static_cast<std::uint64_t>(bank) * stride + spare;
        if (!targets.insert(target_key).second)
            return false;
        // Every source must actually be retired.
        auto it = _lines.find(key);
        if (it == _lines.end() || !it->second.retired)
            return false;
    }
    // Unified-remap banks keep the stacked table empty; their own
    // decoder must stay bijective instead.
    for (const FaultRemapDelegate *delegate : _delegates) {
        if (delegate != nullptr && !delegate->remapValid())
            return false;
    }
    return true;
}

std::uint64_t
FaultModel::maxSparesUsed() const
{
    std::uint64_t m = 0;
    for (std::uint64_t used : _sparesUsed)
        m = std::max(m, used);
    return m;
}

} // namespace mellowsim
