/**
 * @file
 * Address-pattern building blocks for the synthetic workloads.
 *
 * A PatternCursor produces a sequence of block-aligned addresses
 * within a region according to one of four archetypes:
 *  - Sequential: multiple interleaved streaming cursors (stream, lbm,
 *    libquantum, bwaves, GemsFDTD, leslie3d);
 *  - Strided: constant-stride sweeps (milc-style lattice walks);
 *  - Random: uniform random blocks (GUPS);
 *  - PointerChase: randomized dependent chain (mcf).
 */

#ifndef MELLOWSIM_WORKLOAD_PATTERNS_HH
#define MELLOWSIM_WORKLOAD_PATTERNS_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace mellowsim
{

/** The four address archetypes. */
enum class AccessPattern
{
    Sequential,
    Strided,
    Random,
    PointerChase,
};

/** Printable pattern name. */
const char *patternName(AccessPattern pattern);

/**
 * Stateful address generator over a region [base, base + size).
 * All produced addresses are block (64 B) aligned.
 */
class PatternCursor
{
  public:
    /**
     * @param pattern     Archetype.
     * @param base        Region base address (block aligned).
     * @param sizeBytes   Region size; must hold >= 1 block.
     * @param rng         Shared generator (owned by the workload).
     * @param numStreams  Interleaved cursors (Sequential/Strided).
     * @param strideBytes Stride for the Strided pattern.
     */
    PatternCursor(AccessPattern pattern, Addr base,
                  std::uint64_t sizeBytes, Rng &rng,
                  unsigned numStreams = 1,
                  std::uint64_t strideBytes = kBlockSize);

    /** Next block-aligned address. */
    Addr next();

    AccessPattern pattern() const { return _pattern; }

  private:
    AccessPattern _pattern;
    Addr _base;
    std::uint64_t _blocks;
    Rng &_rng;
    std::uint64_t _strideBlocks;

    /** Sequential/Strided: per-stream block offsets. */
    std::vector<std::uint64_t> _cursors;
    unsigned _nextStream = 0;

    /** PointerChase: current position of the chain. */
    std::uint64_t _chasePos = 0;
};

} // namespace mellowsim

#endif // MELLOWSIM_WORKLOAD_PATTERNS_HH
