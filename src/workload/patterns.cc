#include "workload/patterns.hh"

#include "sim/logging.hh"

namespace mellowsim
{

const char *
patternName(AccessPattern pattern)
{
    switch (pattern) {
      case AccessPattern::Sequential: return "sequential";
      case AccessPattern::Strided: return "strided";
      case AccessPattern::Random: return "random";
      case AccessPattern::PointerChase: return "pointer-chase";
    }
    return "?";
}

PatternCursor::PatternCursor(AccessPattern pattern, Addr base,
                             std::uint64_t sizeBytes, Rng &rng,
                             unsigned numStreams,
                             std::uint64_t strideBytes)
    : _pattern(pattern), _base(base & ~Addr(kBlockSize - 1)),
      _blocks(sizeBytes / kBlockSize), _rng(rng),
      _strideBlocks(strideBytes / kBlockSize)
{
    fatal_if(_blocks == 0, "pattern region smaller than one block");
    fatal_if(numStreams == 0, "pattern needs >= 1 stream");
    if (_strideBlocks == 0)
        _strideBlocks = 1;
    if (pattern == AccessPattern::Sequential ||
        pattern == AccessPattern::Strided) {
        _cursors.resize(numStreams);
        for (unsigned i = 0; i < numStreams; ++i) {
            // Spread streams across the region, with a small prime
            // stagger so same-phase streams do not all land on the
            // same bank under coarse (row-granularity) interleaving —
            // separately malloc'd arrays are never that aligned.
            _cursors[i] =
                (_blocks / numStreams * i + 263ull * i) % _blocks;
        }
    }
}

Addr
PatternCursor::next()
{
    std::uint64_t block = 0;
    switch (_pattern) {
      case AccessPattern::Sequential: {
        auto &cur = _cursors[_nextStream];
        _nextStream = (_nextStream + 1) % _cursors.size();
        block = cur;
        cur = cur + 1 == _blocks ? 0 : cur + 1;
        break;
      }
      case AccessPattern::Strided: {
        auto &cur = _cursors[_nextStream];
        _nextStream = (_nextStream + 1) % _cursors.size();
        block = cur;
        cur += _strideBlocks;
        if (cur >= _blocks)
            cur %= _blocks;
        break;
      }
      case AccessPattern::Random:
        block = _rng.nextBounded(_blocks);
        break;
      case AccessPattern::PointerChase:
        // Each hop lands on a fresh pseudo-random node; the *workload*
        // marks these dependent, serialising the chain.
        _chasePos = _rng.nextBounded(_blocks);
        block = _chasePos;
        break;
    }
    return _base + block * kBlockSize;
}

} // namespace mellowsim
