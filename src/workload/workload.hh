/**
 * @file
 * Workload abstraction: a stream of memory operations with compute
 * gaps, consumed by the trace-driven core.
 *
 * The paper evaluates nine memory-intensive SPEC CPU2006 benchmarks
 * plus stream and GUPS (Table IV). SPEC binaries and traces cannot be
 * shipped, so src/workload provides synthetic generators that
 * reproduce each benchmark's memory behaviour as seen by the memory
 * system: LLC miss rate (MPKI), read/write mix, spatial pattern,
 * dependence structure (memory-level parallelism), and footprint.
 * DESIGN.md's "Substitutions" section discusses why this preserves
 * the paper's evaluation.
 */

#ifndef MELLOWSIM_WORKLOAD_WORKLOAD_HH
#define MELLOWSIM_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace mellowsim
{

/** One trace record: @p gap compute instructions, then a memory op. */
struct Op
{
    /** Compute (non-memory) instructions before this access. */
    std::uint32_t gap = 0;
    /** Store (true) or load (false). */
    bool isWrite = false;
    /**
     * This access depends on the previous memory access (pointer
     * chasing); the core serialises it behind that access.
     */
    bool dependsOnPrev = false;
    /** Block-aligned physical address. */
    Addr addr = 0;
};

/** Static facts about a workload, for reports and tables. */
struct WorkloadInfo
{
    std::string name;
    /** The paper's measured MPKI with a 2 MB LLC (Table IV). */
    double paperMpki = 0.0;
};

/** Infinite generator of memory operations. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Produce the next operation. */
    virtual Op next() = 0;

    virtual const WorkloadInfo &info() const = 0;
};

using WorkloadPtr = std::unique_ptr<Workload>;

/** Names of the 11 evaluated workloads, in the paper's Table IV order. */
const std::vector<std::string> &workloadNames();

/**
 * Build a named workload ("leslie3d", ..., "stream", "gups").
 * @param seed Seed for the generator's private RNG.
 * Throws FatalError for unknown names.
 */
WorkloadPtr makeWorkload(const std::string &name, std::uint64_t seed = 1);

/** Table IV MPKI for a named workload. */
double paperMpki(const std::string &name);

} // namespace mellowsim

#endif // MELLOWSIM_WORKLOAD_WORKLOAD_HH
