#include "workload/trace_workload.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace mellowsim
{

namespace
{

/** Strip leading whitespace and trailing comment/whitespace. */
std::string
cleanLine(const std::string &raw)
{
    std::string line = raw;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos)
        line.erase(hash);
    std::size_t begin = line.find_first_not_of(" \t\r\n");
    if (begin == std::string::npos)
        return "";
    std::size_t end = line.find_last_not_of(" \t\r\n");
    return line.substr(begin, end - begin + 1);
}

} // namespace

TraceWorkload::TraceWorkload(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot open trace file '%s'", path.c_str());

    std::string raw;
    std::uint64_t line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        std::string line = cleanLine(raw);
        if (line.empty())
            continue;

        std::istringstream fields(line);
        std::uint64_t gap = 0;
        std::string kind;
        std::string addr_text;
        if (!(fields >> gap >> kind >> addr_text)) {
            fatal("trace '%s' line %llu: expected '<gap> <R|W|D> "
                  "<addr>', got '%s'",
                  path.c_str(),
                  static_cast<unsigned long long>(line_no),
                  line.c_str());
        }
        fatal_if(gap > 0xFFFFFFFFull,
                 "trace '%s' line %llu: gap too large", path.c_str(),
                 static_cast<unsigned long long>(line_no));

        Op op;
        op.gap = static_cast<std::uint32_t>(gap);
        if (kind == "R" || kind == "r") {
            op.isWrite = false;
        } else if (kind == "W" || kind == "w") {
            op.isWrite = true;
        } else if (kind == "D" || kind == "d") {
            op.isWrite = false;
            op.dependsOnPrev = true;
        } else if (kind == "X" || kind == "x") {
            // Dependent store: the write half of a read-modify-write.
            op.isWrite = true;
            op.dependsOnPrev = true;
        } else {
            fatal("trace '%s' line %llu: unknown op kind '%s'",
                  path.c_str(),
                  static_cast<unsigned long long>(line_no),
                  kind.c_str());
        }

        char *end = nullptr;
        op.addr = std::strtoull(addr_text.c_str(), &end, 16);
        fatal_if(end == addr_text.c_str() || *end != '\0',
                 "trace '%s' line %llu: bad address '%s'", path.c_str(),
                 static_cast<unsigned long long>(line_no),
                 addr_text.c_str());

        _ops.push_back(op);
    }
    fatal_if(_ops.empty(), "trace file '%s' contains no operations",
             path.c_str());
    _info.name = path;
}

TraceWorkload::TraceWorkload(std::vector<Op> ops, std::string name)
    : _ops(std::move(ops))
{
    fatal_if(_ops.empty(), "trace workload needs >= 1 operation");
    _info.name = std::move(name);
}

Op
TraceWorkload::next()
{
    Op op = _ops[_pos];
    if (++_pos == _ops.size()) {
        _pos = 0;
        ++_cycles;
    }
    return op;
}

void
writeTrace(const std::string &path, Workload &workload,
           std::uint64_t numOps)
{
    fatal_if(numOps == 0, "cannot record an empty trace");
    std::ofstream out(path);
    fatal_if(!out, "cannot write trace file '%s'", path.c_str());

    out << "# mellowsim trace: " << workload.info().name << "\n";
    out << "# <gap> <R|W|D> <hex-address>\n";
    for (std::uint64_t i = 0; i < numOps; ++i) {
        Op op = workload.next();
        char kind = op.isWrite ? (op.dependsOnPrev ? 'X' : 'W')
                               : (op.dependsOnPrev ? 'D' : 'R');
        out << op.gap << ' ' << kind << ' ' << std::hex << "0x"
            << op.addr << std::dec << '\n';
    }
    fatal_if(!out.good(), "error while writing trace file '%s'",
             path.c_str());
}

WorkloadPtr
makeTraceWorkload(const std::string &path)
{
    return std::make_unique<TraceWorkload>(path);
}

} // namespace mellowsim
