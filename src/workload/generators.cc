#include "workload/generators.hh"

#include "sim/logging.hh"

namespace mellowsim
{

namespace
{
/** Cold region base: clear of the hot region at address 0. */
constexpr Addr kColdBase = 1ull << 30;
} // namespace

SyntheticWorkload::SyntheticWorkload(const WorkloadParams &params,
                                     std::uint64_t seed)
    : _params(params), _info{params.name, params.paperMpki},
      _rng(seed ^ 0xC0FFEE0Dull),
      _cold(params.pattern, kColdBase, params.footprintBytes, _rng,
            params.numStreams, params.strideBytes),
      _hot(AccessPattern::Random, 0, params.hotBytes, _rng)
{
    fatal_if(params.coldFraction < 0.0 || params.coldFraction > 1.0,
             "coldFraction must be in [0, 1]");
    fatal_if(params.writeFraction < 0.0 || params.writeFraction > 1.0,
             "writeFraction must be in [0, 1]");
    fatal_if(params.rmwFraction < 0.0 || params.rmwFraction > 1.0,
             "rmwFraction must be in [0, 1]");
    fatal_if(params.meanGap < 0.0, "meanGap must be non-negative");
}

Op
SyntheticWorkload::next()
{
    Op op;

    // Complete a pending read-modify-write with its store half; it
    // reuses the just-loaded block, so it hits in the L1.
    if (_rmwPending) {
        _rmwPending = false;
        op.gap = 0;
        op.isWrite = true;
        op.dependsOnPrev = true;
        op.addr = _rmwAddr;
        return op;
    }

    op.gap = static_cast<std::uint32_t>(
        _rng.nextGeometric(_params.meanGap));

    bool cold = _rng.nextBool(_params.coldFraction);
    op.addr = cold ? _cold.next() : _hot.next();

    if (_rng.nextBool(_params.rmwFraction)) {
        // Load now; the matching store is emitted on the next call.
        op.isWrite = false;
        _rmwPending = true;
        _rmwAddr = op.addr;
    } else {
        op.isWrite = _rng.nextBool(_params.writeFraction);
    }

    op.dependsOnPrev = cold && _params.dependentLoads && !op.isWrite;
    return op;
}

WorkloadPtr
makeSynthetic(const WorkloadParams &params, std::uint64_t seed)
{
    return std::make_unique<SyntheticWorkload>(params, seed);
}

} // namespace mellowsim
