/**
 * @file
 * The parameterised synthetic workload engine.
 *
 * One generator class covers all eleven benchmarks: each benchmark is
 * a WorkloadParams record (spec_workloads.cc) selecting an address
 * archetype, a hot/cold region split that sets the LLC miss rate, a
 * store fraction, read-modify-write behaviour, dependence structure
 * and a compute-gap distribution.
 */

#ifndef MELLOWSIM_WORKLOAD_GENERATORS_HH
#define MELLOWSIM_WORKLOAD_GENERATORS_HH

#include <cstdint>
#include <memory>
#include <string>

#include "sim/rng.hh"
#include "workload/patterns.hh"
#include "workload/workload.hh"

namespace mellowsim
{

/** Full description of a synthetic benchmark. */
struct WorkloadParams
{
    std::string name = "custom";
    /** Table IV MPKI this generator is calibrated against. */
    double paperMpki = 0.0;

    /** Cold (memory-resident) region size; every access misses LLC. */
    std::uint64_t footprintBytes = 256ull * 1024 * 1024;
    /** Hot (cache-resident) region size. */
    std::uint64_t hotBytes = 512ull * 1024;
    /** Probability an access targets the cold region. */
    double coldFraction = 1.0;

    AccessPattern pattern = AccessPattern::Sequential;
    unsigned numStreams = 1;
    std::uint64_t strideBytes = kBlockSize;

    /** Probability a memory op is a store. */
    double writeFraction = 0.0;
    /**
     * Probability an access is a load immediately followed by a store
     * to the same block (GUPS-style read-modify-write).
     */
    double rmwFraction = 0.0;
    /** Cold loads depend on the previous access (pointer chasing). */
    bool dependentLoads = false;

    /** Mean compute instructions between memory ops (geometric). */
    double meanGap = 100.0;
};

/**
 * The generic generator.
 *
 * Address layout: the cold region starts at 1 GB to stay clear of the
 * hot region at 0; both are block-aligned by construction.
 */
class SyntheticWorkload : public Workload
{
  public:
    SyntheticWorkload(const WorkloadParams &params, std::uint64_t seed);

    Op next() override;

    const WorkloadInfo &info() const override { return _info; }

    const WorkloadParams &params() const { return _params; }

  private:
    WorkloadParams _params;
    WorkloadInfo _info;
    Rng _rng;
    PatternCursor _cold;
    PatternCursor _hot;

    /** Pending store half of a read-modify-write pair. */
    bool _rmwPending = false;
    Addr _rmwAddr = 0;
};

/** Convenience factory. */
WorkloadPtr makeSynthetic(const WorkloadParams &params,
                          std::uint64_t seed = 1);

} // namespace mellowsim

#endif // MELLOWSIM_WORKLOAD_GENERATORS_HH
