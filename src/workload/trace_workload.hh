/**
 * @file
 * Trace-file workloads.
 *
 * The paper drives its evaluation from SPEC CPU2006 execution traces,
 * which cannot be shipped; the synthetic generators replace them. For
 * users who *do* have traces (from gem5, Pin, DynamoRIO, or a
 * production system), TraceWorkload replays a simple text format, one
 * operation per line:
 *
 *     <gap> <kind> <hex-address>
 *
 * where <gap> is the number of compute instructions preceding the
 * access, <kind> is R (load), W (store), D (load dependent on the
 * previous access) or X (dependent store, the write half of a
 * read-modify-write), and <hex-address> is the byte address (0x prefix
 * optional). '#' starts a comment; blank lines are ignored. The trace
 * replays cyclically, matching the paper's "cyclically execute the
 * same execution pattern" lifetime model.
 *
 * writeTrace() records any Workload into this format, so synthetic
 * workloads can be exported, edited and replayed.
 */

#ifndef MELLOWSIM_WORKLOAD_TRACE_WORKLOAD_HH
#define MELLOWSIM_WORKLOAD_TRACE_WORKLOAD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace mellowsim
{

/** Replays a recorded trace cyclically. */
class TraceWorkload : public Workload
{
  public:
    /**
     * Load a trace from @p path.
     * Throws FatalError for unreadable files, malformed lines, or
     * empty traces.
     */
    explicit TraceWorkload(const std::string &path);

    /** Build from in-memory operations (testing / programmatic use). */
    explicit TraceWorkload(std::vector<Op> ops, std::string name);

    Op next() override;

    const WorkloadInfo &info() const override { return _info; }

    /** Operations per replay cycle. */
    std::size_t traceLength() const { return _ops.size(); }

    /** Completed full replays. */
    std::uint64_t cycles() const { return _cycles; }

  private:
    std::vector<Op> _ops;
    std::size_t _pos = 0;
    std::uint64_t _cycles = 0;
    WorkloadInfo _info;
};

/**
 * Record @p numOps operations of @p workload into @p path.
 * Throws FatalError if the file cannot be written.
 */
void writeTrace(const std::string &path, Workload &workload,
                std::uint64_t numOps);

/** Convenience factory. */
WorkloadPtr makeTraceWorkload(const std::string &path);

} // namespace mellowsim

#endif // MELLOWSIM_WORKLOAD_TRACE_WORKLOAD_HH
