/**
 * @file
 * The eleven evaluated workloads (Table IV), as synthetic generator
 * parameter records.
 *
 * Calibration: with cold accesses always missing the LLC and hot
 * accesses always hitting, the generator's LLC miss rate follows
 *
 *     MPKI = 1000 * coldFraction / (meanGap + 1 + rmwFraction)
 *
 * so meanGap is solved from each benchmark's Table IV MPKI. The
 * archetype, stream counts, store fractions and footprints encode the
 * qualitative behaviour the paper relies on: stream saturates the
 * channel with 1/3 stores, GUPS is random read-modify-write, mcf is a
 * dependent pointer chase with little MLP, lbm is a write-heavy
 * streaming stencil, hmmer is cache-resident with bursty stores, and
 * so on. tests/test_workloads.cc asserts the measured MPKI of every
 * generator lands near its Table IV target on the real hierarchy.
 */

#include "workload/workload.hh"

#include <array>

#include "sim/logging.hh"
#include "workload/generators.hh"

namespace mellowsim
{

namespace
{

/** Solve meanGap from the calibration formula above. */
double
gapFor(double mpki, double coldFraction, double rmwFraction)
{
    return 1000.0 * coldFraction / mpki - 1.0 - rmwFraction;
}

WorkloadParams
leslie3d()
{
    WorkloadParams p;
    p.name = "leslie3d";
    p.paperMpki = 5.95;
    p.pattern = AccessPattern::Sequential;
    p.numStreams = 4;
    p.writeFraction = 0.35;
    p.footprintBytes = 192ull * 1024 * 1024;
    p.meanGap = gapFor(p.paperMpki, 1.0, 0.0);
    return p;
}

WorkloadParams
gemsFDTD()
{
    WorkloadParams p;
    p.name = "GemsFDTD";
    p.paperMpki = 15.34;
    p.pattern = AccessPattern::Sequential;
    p.numStreams = 6;
    p.writeFraction = 0.33;
    p.footprintBytes = 384ull * 1024 * 1024;
    p.meanGap = gapFor(p.paperMpki, 1.0, 0.0);
    return p;
}

WorkloadParams
libquantum()
{
    WorkloadParams p;
    p.name = "libquantum";
    p.paperMpki = 30.12;
    p.pattern = AccessPattern::Sequential;
    p.numStreams = 1;
    p.writeFraction = 0.25;
    p.footprintBytes = 64ull * 1024 * 1024;
    p.meanGap = gapFor(p.paperMpki, 1.0, 0.0);
    return p;
}

WorkloadParams
hmmer()
{
    WorkloadParams p;
    p.name = "hmmer";
    p.paperMpki = 1.34;
    p.pattern = AccessPattern::Sequential;
    p.numStreams = 2;
    p.coldFraction = 0.12;
    p.hotBytes = 512 * 1024;
    p.writeFraction = 0.45;
    p.footprintBytes = 64ull * 1024 * 1024;
    p.meanGap = gapFor(p.paperMpki, p.coldFraction, 0.0);
    return p;
}

WorkloadParams
zeusmp()
{
    WorkloadParams p;
    p.name = "zeusmp";
    p.paperMpki = 4.53;
    p.pattern = AccessPattern::Sequential;
    p.numStreams = 4;
    p.coldFraction = 0.5;
    p.hotBytes = 768 * 1024;
    p.writeFraction = 0.30;
    p.footprintBytes = 128ull * 1024 * 1024;
    p.meanGap = gapFor(p.paperMpki, p.coldFraction, 0.0);
    return p;
}

WorkloadParams
bwaves()
{
    WorkloadParams p;
    p.name = "bwaves";
    p.paperMpki = 5.58;
    p.pattern = AccessPattern::Sequential;
    p.numStreams = 3;
    p.writeFraction = 0.30;
    p.footprintBytes = 256ull * 1024 * 1024;
    p.meanGap = gapFor(p.paperMpki, 1.0, 0.0);
    return p;
}

WorkloadParams
milc()
{
    WorkloadParams p;
    p.name = "milc";
    p.paperMpki = 19.49;
    p.pattern = AccessPattern::Random;
    p.writeFraction = 0.30;
    p.footprintBytes = 256ull * 1024 * 1024;
    p.meanGap = gapFor(p.paperMpki, 1.0, 0.0);
    return p;
}

WorkloadParams
mcf()
{
    WorkloadParams p;
    p.name = "mcf";
    p.paperMpki = 56.34;
    p.pattern = AccessPattern::PointerChase;
    p.dependentLoads = true;
    p.writeFraction = 0.15;
    p.footprintBytes = 512ull * 1024 * 1024;
    p.meanGap = gapFor(p.paperMpki, 1.0, 0.0);
    return p;
}

WorkloadParams
lbm()
{
    WorkloadParams p;
    p.name = "lbm";
    p.paperMpki = 31.72;
    p.pattern = AccessPattern::Sequential;
    p.numStreams = 10;
    p.writeFraction = 0.50;
    p.footprintBytes = 384ull * 1024 * 1024;
    p.meanGap = gapFor(p.paperMpki, 1.0, 0.0);
    return p;
}

WorkloadParams
stream()
{
    WorkloadParams p;
    p.name = "stream";
    p.paperMpki = 12.28;
    p.pattern = AccessPattern::Sequential;
    p.numStreams = 3;
    p.writeFraction = 1.0 / 3.0;
    p.footprintBytes = 48ull * 1024 * 1024;
    p.meanGap = gapFor(p.paperMpki, 1.0, 0.0);
    return p;
}

WorkloadParams
gups()
{
    WorkloadParams p;
    p.name = "gups";
    p.paperMpki = 8.91;
    p.pattern = AccessPattern::Random;
    p.rmwFraction = 1.0;
    p.footprintBytes = 256ull * 1024 * 1024;
    p.meanGap = gapFor(p.paperMpki, 1.0, 1.0);
    return p;
}

const std::array<WorkloadParams (*)(), 11> kFactories = {
    leslie3d, gemsFDTD, libquantum, hmmer, zeusmp, bwaves,
    milc,     mcf,      lbm,        stream, gups,
};

} // namespace

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (auto factory : kFactories)
            v.push_back(factory().name);
        return v;
    }();
    return names;
}

WorkloadPtr
makeWorkload(const std::string &name, std::uint64_t seed)
{
    for (auto factory : kFactories) {
        WorkloadParams p = factory();
        if (p.name == name)
            return makeSynthetic(p, seed);
    }
    fatal("unknown workload '%s'", name.c_str());
}

double
paperMpki(const std::string &name)
{
    for (auto factory : kFactories) {
        WorkloadParams p = factory();
        if (p.name == name)
            return p.paperMpki;
    }
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace mellowsim
