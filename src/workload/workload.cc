// Intentionally small: the Workload interface is header-only; the
// registry of named workloads lives in spec_workloads.cc. This file
// anchors the vtable of the abstract base class.

#include "workload/workload.hh"

namespace mellowsim
{
} // namespace mellowsim
