/**
 * @file
 * The concrete invariant checkers.
 *
 * Each checker audits one cross-module contract:
 *
 *  - EventQueueChecker: simulated time is monotone and no pending
 *    event sits in the past.
 *  - RequestConservationChecker: every request admitted to the read /
 *    write / eager queues is eventually completed or cancelled exactly
 *    once — no loss, no double-completion — and pause/resume pair up.
 *  - BankStateChecker: bank write state machines are legal (never
 *    writing and paused at once, paused remainders are sane, busy-time
 *    accounting never exceeds the busy window, no lost completion
 *    events).
 *  - WearConservationChecker: per-bank wear tallies equal
 *    controller-issued writes minus cancellations, and wear units are
 *    non-negative.
 *  - EnergyCrossChecker: the energy model saw exactly the operations
 *    the controller issued.
 *  - WearQuotaChecker: Wear Quota budgets and latched ExceedQuota
 *    values stay consistent with the recorded wear.
 *  - FaultChecker: fault-injection bookkeeping is sound — retired
 *    lines are never issued writes, per-line repair budgets are never
 *    overdrawn, the retirement remap table is a bijection onto
 *    in-range spares, spare pools never overflow, and every permanent
 *    fault is accounted for as a repair, a retirement, or a dead line.
 *
 * Every checker follows the capture/evaluate split described in
 * invariant.hh: capture() reads the live components, evaluate() is a
 * pure function of the snapshot. Tests hand-build snapshots to inject
 * violations (see tests/test_invariants.cc).
 */

#ifndef MELLOWSIM_CHECK_CHECKERS_HH
#define MELLOWSIM_CHECK_CHECKERS_HH

#include <cstdint>
#include <vector>

#include "check/invariant.hh"
#include "nvm/controller.hh"
#include "sim/event_queue.hh"

namespace mellowsim
{

/** Audits the event queue's time invariants. */
class EventQueueChecker : public InvariantChecker
{
  public:
    struct Snapshot
    {
        Tick curTick = 0;
        Tick minPendingTick = MaxTick;
        std::size_t rawHeapSize = 0;
        std::size_t numPending = 0;
    };

    static Snapshot capture(const EventQueue &eventq);

    /** @p lastAuditTick is the curTick seen by the previous audit. */
    static void evaluate(const Snapshot &s, Tick lastAuditTick,
                         ViolationSink &sink);

    explicit EventQueueChecker(const EventQueue &eventq)
        : _eventq(eventq)
    {
    }

    [[nodiscard]] std::string name() const override { return "event-queue"; }
    void check(Tick now, ViolationSink &sink) override;

  private:
    const EventQueue &_eventq;
    Tick _lastAuditTick = 0;
};

/** Audits request conservation across one controller's queues. */
class RequestConservationChecker : public InvariantChecker
{
  public:
    struct Snapshot
    {
        // Reads.
        std::uint64_t demandReads = 0;
        std::uint64_t forwardedReads = 0;
        std::uint64_t issuedReads = 0;
        std::uint64_t queuedReads = 0;
        // Demand write backs.
        std::uint64_t acceptedWritebacks = 0;
        std::uint64_t completedDemandWrites = 0;
        std::uint64_t queuedDemandWrites = 0;
        std::uint64_t inFlightDemandWrites = 0; ///< incl. paused
        // Eager write backs.
        std::uint64_t acceptedEager = 0;
        std::uint64_t completedEagerWrites = 0;
        std::uint64_t queuedEagerWrites = 0;
        std::uint64_t inFlightEagerWrites = 0; ///< incl. paused
        // Write attempts.
        std::uint64_t issuedWriteAttempts = 0;
        std::uint64_t cancelledWrites = 0;
        std::uint64_t retriedWrites = 0; ///< verify failures reissued
        // Pause/resume pairing.
        std::uint64_t pausedWrites = 0;
        std::uint64_t resumedWrites = 0;
        std::uint64_t banksPausedNow = 0;
    };

    static Snapshot capture(const MemoryController &ctrl);
    static void evaluate(const Snapshot &s, ViolationSink &sink);

    RequestConservationChecker(const MemoryController &ctrl,
                               ChannelId channel)
        : _ctrl(ctrl), _channel(channel)
    {
    }

    [[nodiscard]] std::string name() const override;
    void check(Tick now, ViolationSink &sink) override;

  private:
    const MemoryController &_ctrl;
    ChannelId _channel;
};

/** Audits per-bank device state machines. */
class BankStateChecker : public InvariantChecker
{
  public:
    struct BankSnapshot
    {
        bool writing = false;
        bool paused = false;
        Tick busyUntil = 0;
        Tick trackerBusyUntil = 0;
        Tick trackerBusyTicks = 0;
        Tick remainingPulse = 0;
        Tick writePulse = 0;
    };

    struct Snapshot
    {
        std::vector<BankSnapshot> banks;
    };

    static Snapshot capture(const MemoryController &ctrl);
    static void evaluate(const Snapshot &s, Tick now,
                         ViolationSink &sink);

    BankStateChecker(const MemoryController &ctrl, ChannelId channel)
        : _ctrl(ctrl), _channel(channel)
    {
    }

    [[nodiscard]] std::string name() const override;
    void check(Tick now, ViolationSink &sink) override;

  private:
    const MemoryController &_ctrl;
    ChannelId _channel;
};

/** Audits wear-accounting conservation against controller counters. */
class WearConservationChecker : public InvariantChecker
{
  public:
    struct Snapshot
    {
        // Summed over banks from the wear tracker.
        std::uint64_t trackerNormalWrites = 0;
        std::uint64_t trackerSlowWrites = 0;
        std::uint64_t trackerCancelledWrites = 0;
        std::uint64_t trackerMaintenanceWrites = 0;
        double minBankWearUnits = 0.0;
        double totalWearUnits = 0.0;
        double maxBankWearUnits = 0.0;
        // Controller-side counters.
        std::uint64_t completedWrites = 0; ///< demand + eager
        std::uint64_t cancelledWrites = 0;
        std::uint64_t retriedWrites = 0;
        std::uint64_t maintenanceWrites = 0; ///< leveler copies
        std::uint64_t issuedWriteAttempts = 0;
        std::uint64_t inFlightWrites = 0; ///< incl. paused
    };

    static Snapshot capture(const MemoryController &ctrl);
    static void evaluate(const Snapshot &s, ViolationSink &sink);

    WearConservationChecker(const MemoryController &ctrl,
                            ChannelId channel)
        : _ctrl(ctrl), _channel(channel)
    {
    }

    [[nodiscard]] std::string name() const override;
    void check(Tick now, ViolationSink &sink) override;

  private:
    const MemoryController &_ctrl;
    ChannelId _channel;
};

/** Cross-checks the energy model against controller statistics. */
class EnergyCrossChecker : public InvariantChecker
{
  public:
    struct Snapshot
    {
        // Energy-model tallies.
        std::uint64_t energyNormalWrites = 0;
        std::uint64_t energySlowWrites = 0;
        std::uint64_t energyCancelledWrites = 0;
        std::uint64_t energyBufferReads = 0;
        std::uint64_t energyRowHitReads = 0;
        double readPj = 0.0;
        double writePj = 0.0;
        // Controller-side counters.
        std::uint64_t completedWrites = 0; ///< demand + eager
        std::uint64_t cancelledWrites = 0;
        std::uint64_t retriedWrites = 0;
        std::uint64_t maintenanceWrites = 0; ///< leveler copies
        std::uint64_t issuedReads = 0;
        std::uint64_t rowHitReads = 0;
        std::uint64_t rowMissReads = 0;
    };

    static Snapshot capture(const MemoryController &ctrl);
    static void evaluate(const Snapshot &s, ViolationSink &sink);

    EnergyCrossChecker(const MemoryController &ctrl, ChannelId channel)
        : _ctrl(ctrl), _channel(channel)
    {
    }

    [[nodiscard]] std::string name() const override;
    void check(Tick now, ViolationSink &sink) override;

  private:
    const MemoryController &_ctrl;
    ChannelId _channel;
};

/** Audits Wear Quota bookkeeping (only meaningful with +WQ). */
class WearQuotaChecker : public InvariantChecker
{
  public:
    struct BankSnapshot
    {
        double wear = 0.0;
        double exceed = 0.0;
        std::uint64_t slowOnlyPeriods = 0;
    };

    struct Snapshot
    {
        double wearBoundBank = 0.0;
        std::uint64_t numPeriods = 0;
        std::vector<BankSnapshot> banks;
    };

    static Snapshot capture(const WearQuota &quota, unsigned numBanks);
    static void evaluate(const Snapshot &s, ViolationSink &sink);

    WearQuotaChecker(const MemoryController &ctrl, ChannelId channel)
        : _ctrl(ctrl), _channel(channel)
    {
    }

    [[nodiscard]] std::string name() const override;
    void check(Tick now, ViolationSink &sink) override;

  private:
    const MemoryController &_ctrl;
    ChannelId _channel;
};

/** Audits fault-injection bookkeeping (see file comment). */
class FaultChecker : public InvariantChecker
{
  public:
    struct Snapshot
    {
        // Fault-model tallies.
        std::uint64_t writesToRetiredLines = 0;
        std::uint64_t maxRepairsOnLine = 0;
        std::uint64_t remapEntries = 0;
        /** Retirements routed through a unified-remap delegate
         *  (WoLFRaM): they consume no table entry, so the bijection
         *  check is remapEntries + delegateRetiredLines ==
         *  retiredLines. */
        std::uint64_t delegateRetiredLines = 0;
        bool remapValid = true;
        std::uint64_t retiredLines = 0;
        std::uint64_t deadLines = 0;
        std::uint64_t repairsUsed = 0;
        std::uint64_t permanentFaults = 0;
        std::uint64_t maxSparesUsed = 0;
        std::uint64_t retriesRequested = 0;
        Tick firstFaultTick = 0;
        Tick firstUncorrectableTick = 0;
        // Configured limits.
        std::uint64_t repairEntriesPerLine = 0;
        std::uint64_t spareLinesPerBank = 0;
        // Controller-side counter.
        std::uint64_t ctrlRetriedWrites = 0;
    };

    static Snapshot capture(const MemoryController &ctrl);
    static void evaluate(const Snapshot &s, ViolationSink &sink);

    FaultChecker(const MemoryController &ctrl, ChannelId channel)
        : _ctrl(ctrl), _channel(channel)
    {
    }

    [[nodiscard]] std::string name() const override;
    void check(Tick now, ViolationSink &sink) override;

  private:
    const MemoryController &_ctrl;
    ChannelId _channel;
};

} // namespace mellowsim

#endif // MELLOWSIM_CHECK_CHECKERS_HH
