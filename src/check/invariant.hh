/**
 * @file
 * The invariant-checker interface.
 *
 * A checker audits one cross-module contract of the simulator (request
 * conservation, bank state legality, wear bookkeeping, ...). Checkers
 * are passive: they read component state through const references and
 * report anything inconsistent into a ViolationSink. The
 * InvariantRegistry (registry.hh) owns the checkers and decides when
 * to audit and how to escalate.
 *
 * Concrete checkers follow a capture/evaluate split: a Snapshot struct
 * gathers the counters under audit, and a static evaluate() derives
 * violations from the snapshot alone. Tests inject violations by
 * hand-building snapshots (e.g. a double-completed request), so the
 * detection logic is testable without corrupting a live simulation.
 */

#ifndef MELLOWSIM_CHECK_INVARIANT_HH
#define MELLOWSIM_CHECK_INVARIANT_HH

#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace mellowsim
{

/** One detected invariant violation, with full reporting context. */
struct Violation
{
    std::string checker; ///< name of the checker that found it
    Tick tick = 0;       ///< simulation time of the audit
    std::string message; ///< what is inconsistent, with the numbers

    /** Render as a single human-readable line. */
    std::string
    format() const
    {
        return "[" + checker + "] tick " + std::to_string(tick) + ": " +
               message;
    }
};

/**
 * Collects violations on behalf of one checker during one audit pass,
 * stamping each with the checker's name and the audit tick.
 */
class ViolationSink
{
  public:
    ViolationSink(std::string checker, Tick now,
                  std::vector<Violation> &out)
        : _checker(std::move(checker)), _now(now), _out(out)
    {
    }

    /** Report a violation. */
    void
    add(std::string message)
    {
        _out.push_back(Violation{_checker, _now, std::move(message)});
    }

    /** Violations recorded by any checker in this pass so far. */
    [[nodiscard]] std::size_t total() const { return _out.size(); }

  private:
    std::string _checker;
    Tick _now;
    std::vector<Violation> &_out;
};

/** Interface of one auditable invariant. */
class InvariantChecker
{
  public:
    virtual ~InvariantChecker() = default;

    /** Stable name used in violation reports, e.g. "bank-state". */
    [[nodiscard]] virtual std::string name() const = 0;

    /**
     * Audit the invariant at simulation time @p now, reporting every
     * inconsistency into @p sink. Must not mutate simulation state.
     */
    virtual void check(Tick now, ViolationSink &sink) = 0;
};

} // namespace mellowsim

#endif // MELLOWSIM_CHECK_INVARIANT_HH
