#include "check/install.hh"

#include <memory>

#include "check/checkers.hh"

namespace mellowsim
{

void
installStandardCheckers(InvariantRegistry &registry,
                        const EventQueue &eventq,
                        const MemorySystem &memory)
{
    registry.add(std::make_unique<EventQueueChecker>(eventq));
    for (unsigned c = 0; c < memory.numChannels(); ++c) {
        const MemoryController &ctrl = memory.channel(c);
        registry.add(
            std::make_unique<RequestConservationChecker>(ctrl, c));
        registry.add(std::make_unique<BankStateChecker>(ctrl, c));
        registry.add(
            std::make_unique<WearConservationChecker>(ctrl, c));
        registry.add(std::make_unique<EnergyCrossChecker>(ctrl, c));
        if (ctrl.wearQuota() != nullptr)
            registry.add(std::make_unique<WearQuotaChecker>(ctrl, c));
        if (ctrl.faultModel() != nullptr)
            registry.add(std::make_unique<FaultChecker>(ctrl, c));
    }
}

} // namespace mellowsim
