#include "check/install.hh"

#include <memory>

#include "check/checkers.hh"

namespace mellowsim
{

void
installStandardCheckers(InvariantRegistry &registry,
                        const EventQueue &eventq,
                        const MemorySystem &memory)
{
    registry.add(std::make_unique<EventQueueChecker>(eventq));
    for (unsigned c = 0; c < memory.numChannels(); ++c) {
        const ChannelId ch(c);
        const MemoryController &ctrl = memory.channel(ch);
        registry.add(
            std::make_unique<RequestConservationChecker>(ctrl, ch));
        registry.add(std::make_unique<BankStateChecker>(ctrl, ch));
        registry.add(
            std::make_unique<WearConservationChecker>(ctrl, ch));
        registry.add(std::make_unique<EnergyCrossChecker>(ctrl, ch));
        if (ctrl.wearQuota() != nullptr)
            registry.add(std::make_unique<WearQuotaChecker>(ctrl, ch));
        if (ctrl.faultModel() != nullptr)
            registry.add(std::make_unique<FaultChecker>(ctrl, ch));
    }
}

} // namespace mellowsim
