#include "check/registry.hh"

#include "sim/logging.hh"

namespace mellowsim
{

InvariantRegistry::InvariantRegistry(const CheckConfig &config)
    : _config(config)
{
}

void
InvariantRegistry::add(std::unique_ptr<InvariantChecker> checker)
{
    fatal_if(checker == nullptr, "registering a null invariant checker");
    _checkers.push_back(std::move(checker));
}

std::size_t
InvariantRegistry::runAudit(Tick now)
{
    std::size_t before = _violations.size();
    for (auto &checker : _checkers) {
        ViolationSink sink(checker->name(), now, _violations);
        checker->check(now, sink);
    }
    ++_audits;

    std::size_t found = _violations.size() - before;
    if (found == 0)
        return 0;

    for (std::size_t i = before; i < _violations.size(); ++i)
        warn("invariant violation %s", _violations[i].format().c_str());
    if (_config.strict) {
        panic("invariant audit failed: %zu violation(s) at tick %llu; "
              "first: %s",
              found, static_cast<unsigned long long>(now),
              _violations[before].format().c_str());
    }
    return found;
}

void
InvariantRegistry::schedulePeriodic(EventQueue &eventq)
{
    if (_config.interval == 0)
        return;
    eventq.scheduleIn(_config.interval, [this, &eventq] {
        runAudit(eventq.curTick());
        schedulePeriodic(eventq);
    });
}

} // namespace mellowsim
