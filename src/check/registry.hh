/**
 * @file
 * Owns the set of invariant checkers for one simulation and drives
 * them: periodically (via the event queue) and at end of simulation.
 *
 * Escalation policy: every violation is reported through warn() with
 * its full context; in strict mode an audit pass that found anything
 * then panics, so a misbehaving simulation stops at the first audit
 * after the corruption instead of producing silently wrong numbers.
 */

#ifndef MELLOWSIM_CHECK_REGISTRY_HH
#define MELLOWSIM_CHECK_REGISTRY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "check/check_config.hh"
#include "check/invariant.hh"
#include "sim/event_queue.hh"

namespace mellowsim
{

/** See file comment. */
class InvariantRegistry
{
  public:
    explicit InvariantRegistry(const CheckConfig &config = {});

    /** Register a checker; the registry takes ownership. */
    void add(std::unique_ptr<InvariantChecker> checker);

    /**
     * Run every checker once at time @p now.
     *
     * Violations are appended to violations() and reported via
     * warn(); in strict mode the pass then panics (after reporting
     * all of them).
     *
     * @return Violations found by this pass.
     */
    std::size_t runAudit(Tick now);

    /**
     * Schedule recurring audits on @p eventq every config().interval
     * ticks (no-op when the interval is zero). The registry must
     * outlive the event queue's run.
     */
    void schedulePeriodic(EventQueue &eventq);

    /** End-of-simulation audit; same escalation as runAudit(). */
    void finalAudit(Tick now) { runAudit(now); }

    [[nodiscard]] const CheckConfig &config() const { return _config; }
    [[nodiscard]] std::size_t numCheckers() const { return _checkers.size(); }

    /** All violations found so far, in detection order. */
    [[nodiscard]] const std::vector<Violation> &violations() const
    {
        return _violations;
    }

    /** Completed audit passes. */
    [[nodiscard]] std::uint64_t audits() const { return _audits; }

  private:
    CheckConfig _config;
    std::vector<std::unique_ptr<InvariantChecker>> _checkers;
    std::vector<Violation> _violations;
    std::uint64_t _audits = 0;
};

} // namespace mellowsim

#endif // MELLOWSIM_CHECK_REGISTRY_HH
