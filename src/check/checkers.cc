#include "check/checkers.hh"

#include <cmath>

#include "sim/logging.hh"

namespace mellowsim
{

namespace
{

/**
 * Tolerance for floating-point wear/energy comparisons: the tallies
 * are long sums of small doubles, so exact equality is not expected.
 */
constexpr double kRelEps = 1e-9;

bool
approxLessOrEqual(double a, double b)
{
    double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
    return a <= b + kRelEps * scale;
}

/** Demand + eager writes completed by the controller. */
std::uint64_t
completedWrites(const MemControllerStats &s)
{
    return s.completedDemandWrites.value() +
           s.completedEagerWrites.value();
}

/** Per-bank in-flight (issued or paused) write attempts by type. */
void
countInFlightWrites(const MemoryController &ctrl, std::uint64_t *demand,
                    std::uint64_t *eager, std::uint64_t *paused)
{
    *demand = *eager = *paused = 0;
    for (unsigned b = 0; b < ctrl.numBanks(); ++b) {
        const Bank &bank = ctrl.bank(BankId(b));
        if (bank.hasPausedWrite())
            ++*paused;
        if (!bank.writeInFlight() && !bank.hasPausedWrite())
            continue;
        if (bank.currentWriteType() == ReqType::EagerWrite)
            ++*eager;
        else
            ++*demand;
    }
}

} // namespace

// --- EventQueueChecker ---------------------------------------------

EventQueueChecker::Snapshot
EventQueueChecker::capture(const EventQueue &eventq)
{
    Snapshot s;
    s.curTick = eventq.curTick();
    s.minPendingTick = eventq.minPendingTick();
    s.rawHeapSize = eventq.rawHeapSize();
    s.numPending = eventq.numPending();
    return s;
}

void
EventQueueChecker::evaluate(const Snapshot &s, Tick lastAuditTick,
                            ViolationSink &sink)
{
    if (s.curTick < lastAuditTick) {
        sink.add(logFormat("time ran backwards: curTick %llu < last "
                           "audited tick %llu",
                           static_cast<unsigned long long>(s.curTick),
                           static_cast<unsigned long long>(
                               lastAuditTick)));
    }
    if (s.minPendingTick < s.curTick) {
        sink.add(logFormat(
            "pending event in the past: earliest heap entry at tick "
            "%llu but curTick is %llu",
            static_cast<unsigned long long>(s.minPendingTick),
            static_cast<unsigned long long>(s.curTick)));
    }
    if (s.rawHeapSize < s.numPending) {
        sink.add(logFormat(
            "event bookkeeping skew: %zu live events but only %zu "
            "heap entries",
            s.numPending, s.rawHeapSize));
    }
}

void
EventQueueChecker::check(Tick now, ViolationSink &sink)
{
    evaluate(capture(_eventq), _lastAuditTick, sink);
    _lastAuditTick = now;
}

// --- RequestConservationChecker ------------------------------------

RequestConservationChecker::Snapshot
RequestConservationChecker::capture(const MemoryController &ctrl)
{
    const MemControllerStats &st = ctrl.stats();
    Snapshot s;
    s.demandReads = st.demandReads.value();
    s.forwardedReads = st.forwardedReads.value();
    s.issuedReads = st.issuedReads.value();
    s.queuedReads = ctrl.readQueueDepth();

    s.acceptedWritebacks = st.acceptedWritebacks.value();
    s.completedDemandWrites = st.completedDemandWrites.value();
    s.queuedDemandWrites = ctrl.writeQueueDepth();

    s.acceptedEager = st.acceptedEager.value();
    s.completedEagerWrites = st.completedEagerWrites.value();
    s.queuedEagerWrites = ctrl.eagerQueueDepth();

    s.issuedWriteAttempts = st.totalWriteIssues();
    s.cancelledWrites = st.cancelledWrites.value();
    s.retriedWrites = st.retriedWrites.value();
    s.pausedWrites = st.pausedWrites.value();
    s.resumedWrites = st.resumedWrites.value();

    countInFlightWrites(ctrl, &s.inFlightDemandWrites,
                        &s.inFlightEagerWrites, &s.banksPausedNow);
    return s;
}

void
RequestConservationChecker::evaluate(const Snapshot &s,
                                     ViolationSink &sink)
{
    auto conservation = [&sink](const char *what, std::uint64_t admitted,
                                std::uint64_t accounted) {
        if (admitted == accounted)
            return;
        const char *direction = accounted < admitted
                                    ? "lost"
                                    : "double-completed (or spuriously "
                                      "created)";
        sink.add(logFormat(
            "%s conservation broken: %llu admitted but %llu accounted "
            "for — %llu request(s) %s",
            what, static_cast<unsigned long long>(admitted),
            static_cast<unsigned long long>(accounted),
            static_cast<unsigned long long>(
                admitted > accounted ? admitted - accounted
                                     : accounted - admitted),
            direction));
    };

    conservation("demand read", s.demandReads,
                 s.forwardedReads + s.issuedReads + s.queuedReads);
    conservation("demand write", s.acceptedWritebacks,
                 s.completedDemandWrites + s.queuedDemandWrites +
                     s.inFlightDemandWrites);
    conservation("eager write", s.acceptedEager,
                 s.completedEagerWrites + s.queuedEagerWrites +
                     s.inFlightEagerWrites);
    // A retried attempt finished its pulse but failed verification,
    // so it is neither completed nor cancelled nor in flight — it sits
    // back in its queue awaiting reissue.
    conservation("write attempt", s.issuedWriteAttempts,
                 s.completedDemandWrites + s.completedEagerWrites +
                     s.cancelledWrites + s.retriedWrites +
                     s.inFlightDemandWrites + s.inFlightEagerWrites);

    if (s.resumedWrites > s.pausedWrites) {
        sink.add(logFormat("more resumes (%llu) than pauses (%llu)",
                           static_cast<unsigned long long>(
                               s.resumedWrites),
                           static_cast<unsigned long long>(
                               s.pausedWrites)));
    } else if (s.pausedWrites - s.resumedWrites != s.banksPausedNow) {
        sink.add(logFormat(
            "pause/resume pairing broken: %llu pauses - %llu resumes "
            "leaves %llu outstanding, but %llu bank(s) hold a paused "
            "write",
            static_cast<unsigned long long>(s.pausedWrites),
            static_cast<unsigned long long>(s.resumedWrites),
            static_cast<unsigned long long>(s.pausedWrites -
                                            s.resumedWrites),
            static_cast<unsigned long long>(s.banksPausedNow)));
    }
}

std::string
RequestConservationChecker::name() const
{
    // mlint: allow(value-escape): checker-name formatting.
    return logFormat("request-conservation/ch%u", _channel.value());
}

void
RequestConservationChecker::check(Tick, ViolationSink &sink)
{
    evaluate(capture(_ctrl), sink);
}

// --- BankStateChecker ----------------------------------------------

BankStateChecker::Snapshot
BankStateChecker::capture(const MemoryController &ctrl)
{
    Snapshot s;
    s.banks.reserve(ctrl.numBanks());
    for (unsigned b = 0; b < ctrl.numBanks(); ++b) {
        const Bank &bank = ctrl.bank(BankId(b));
        BankSnapshot bs;
        bs.writing = bank.writeInFlight();
        bs.paused = bank.hasPausedWrite();
        bs.busyUntil = bank.busyUntil();
        bs.trackerBusyUntil = bank.busyTracker().busyUntil();
        bs.trackerBusyTicks = bank.busyTracker().busyTicks();
        bs.remainingPulse = bank.remainingPulse();
        bs.writePulse = bank.writePulse();
        s.banks.push_back(bs);
    }
    return s;
}

void
BankStateChecker::evaluate(const Snapshot &s, Tick now,
                           ViolationSink &sink)
{
    for (std::size_t b = 0; b < s.banks.size(); ++b) {
        const BankSnapshot &bs = s.banks[b];
        if (bs.writing && bs.paused) {
            sink.add(logFormat(
                "bank %zu is simultaneously writing and paused", b));
        }
        if (bs.writing && bs.busyUntil < now) {
            sink.add(logFormat(
                "bank %zu write completion lost: pulse ended at tick "
                "%llu, now %llu, but the write is still in flight",
                b, static_cast<unsigned long long>(bs.busyUntil),
                static_cast<unsigned long long>(now)));
        }
        if (bs.paused &&
            (bs.remainingPulse == 0 ||
             bs.remainingPulse > bs.writePulse)) {
            sink.add(logFormat(
                "bank %zu paused write remainder is illegal: %llu of "
                "a %llu-tick pulse remains",
                b,
                static_cast<unsigned long long>(bs.remainingPulse),
                static_cast<unsigned long long>(bs.writePulse)));
        }
        if (bs.trackerBusyUntil > bs.busyUntil) {
            sink.add(logFormat(
                "bank %zu busy accounting overlaps: tracked busy "
                "until %llu but the device frees at %llu",
                b,
                static_cast<unsigned long long>(bs.trackerBusyUntil),
                static_cast<unsigned long long>(bs.busyUntil)));
        }
        if (bs.trackerBusyTicks > bs.trackerBusyUntil) {
            sink.add(logFormat(
                "bank %zu busy time (%llu) exceeds the busy horizon "
                "(%llu): busy windows must have overlapped",
                b,
                static_cast<unsigned long long>(bs.trackerBusyTicks),
                static_cast<unsigned long long>(bs.trackerBusyUntil)));
        }
    }
}

std::string
BankStateChecker::name() const
{
    // mlint: allow(value-escape): checker-name formatting.
    return logFormat("bank-state/ch%u", _channel.value());
}

void
BankStateChecker::check(Tick now, ViolationSink &sink)
{
    evaluate(capture(_ctrl), now, sink);
}

// --- WearConservationChecker ---------------------------------------

WearConservationChecker::Snapshot
WearConservationChecker::capture(const MemoryController &ctrl)
{
    const WearTracker &wear = ctrl.wearTracker();
    Snapshot s;
    for (unsigned b = 0; b < ctrl.numBanks(); ++b) {
        const BankWearStats &bw = wear.bankStats(BankId(b));
        s.trackerNormalWrites += bw.normalWrites;
        s.trackerSlowWrites += bw.slowWrites;
        s.trackerCancelledWrites += bw.cancelledWrites;
        s.trackerMaintenanceWrites += bw.maintenanceWrites;
        s.minBankWearUnits = b == 0 ? bw.wearUnits
                                    : std::min(s.minBankWearUnits,
                                               bw.wearUnits);
        s.maxBankWearUnits = std::max(s.maxBankWearUnits, bw.wearUnits);
        s.totalWearUnits += bw.wearUnits;
    }

    const MemControllerStats &st = ctrl.stats();
    s.completedWrites = completedWrites(st);
    s.cancelledWrites = st.cancelledWrites.value();
    s.retriedWrites = st.retriedWrites.value();
    s.maintenanceWrites = st.maintenanceWrites.value();
    s.issuedWriteAttempts = st.totalWriteIssues();

    std::uint64_t demand = 0, eager = 0, paused = 0;
    countInFlightWrites(ctrl, &demand, &eager, &paused);
    s.inFlightWrites = demand + eager;
    return s;
}

void
WearConservationChecker::evaluate(const Snapshot &s,
                                  ViolationSink &sink)
{
    // Retried attempts wore the cell even though their request did
    // not complete, so they count on the tracker side.
    std::uint64_t tracker_writes =
        s.trackerNormalWrites + s.trackerSlowWrites;
    std::uint64_t finished_pulses = s.completedWrites + s.retriedWrites;
    if (tracker_writes != finished_pulses) {
        sink.add(logFormat(
            "wear tracker write count (%llu normal + %llu slow) "
            "disagrees with the %llu pulses the controller finished "
            "(%llu completed + %llu retried)",
            static_cast<unsigned long long>(s.trackerNormalWrites),
            static_cast<unsigned long long>(s.trackerSlowWrites),
            static_cast<unsigned long long>(finished_pulses),
            static_cast<unsigned long long>(s.completedWrites),
            static_cast<unsigned long long>(s.retriedWrites)));
    }
    if (s.trackerCancelledWrites != s.cancelledWrites) {
        sink.add(logFormat(
            "wear tracker saw %llu cancelled writes but the "
            "controller cancelled %llu",
            static_cast<unsigned long long>(s.trackerCancelledWrites),
            static_cast<unsigned long long>(s.cancelledWrites)));
    }
    // Leveler maintenance copies are charged as real device traffic;
    // the tracker must see exactly the copies the controller issued.
    if (s.trackerMaintenanceWrites != s.maintenanceWrites) {
        sink.add(logFormat(
            "wear tracker saw %llu maintenance writes but the "
            "controller charged %llu",
            static_cast<unsigned long long>(
                s.trackerMaintenanceWrites),
            static_cast<unsigned long long>(s.maintenanceWrites)));
    }
    std::uint64_t accounted = s.completedWrites + s.cancelledWrites +
                              s.retriedWrites + s.inFlightWrites;
    if (s.issuedWriteAttempts != accounted) {
        sink.add(logFormat(
            "write attempts leak: %llu issued but %llu accounted for "
            "(%llu completed + %llu cancelled + %llu retried + %llu "
            "in flight)",
            static_cast<unsigned long long>(s.issuedWriteAttempts),
            static_cast<unsigned long long>(accounted),
            static_cast<unsigned long long>(s.completedWrites),
            static_cast<unsigned long long>(s.cancelledWrites),
            static_cast<unsigned long long>(s.retriedWrites),
            static_cast<unsigned long long>(s.inFlightWrites)));
    }
    if (s.minBankWearUnits < 0.0) {
        sink.add(logFormat("negative bank wear: %g wear units",
                           s.minBankWearUnits));
    }
    if (!approxLessOrEqual(s.maxBankWearUnits, s.totalWearUnits)) {
        sink.add(logFormat(
            "most-worn bank (%g units) exceeds the total over all "
            "banks (%g units)",
            s.maxBankWearUnits, s.totalWearUnits));
    }
}

std::string
WearConservationChecker::name() const
{
    // mlint: allow(value-escape): checker-name formatting.
    return logFormat("wear-conservation/ch%u", _channel.value());
}

void
WearConservationChecker::check(Tick, ViolationSink &sink)
{
    evaluate(capture(_ctrl), sink);
}

// --- EnergyCrossChecker --------------------------------------------

EnergyCrossChecker::Snapshot
EnergyCrossChecker::capture(const MemoryController &ctrl)
{
    const EnergyStats &e = ctrl.energyModel().stats();
    const MemControllerStats &st = ctrl.stats();
    Snapshot s;
    s.energyNormalWrites = e.normalWrites;
    s.energySlowWrites = e.slowWrites;
    s.energyCancelledWrites = e.cancelledWrites;
    s.energyBufferReads = e.bufferReads;
    s.energyRowHitReads = e.rowHitReads;
    // mlint: allow(value-escape): snapshot magnitudes feed the
    // relative-tolerance comparison below, which is unit-free.
    s.readPj = e.readPj.value();
    // mlint: allow(value-escape): see above.
    s.writePj = e.writePj.value();
    s.completedWrites = completedWrites(st);
    s.cancelledWrites = st.cancelledWrites.value();
    s.retriedWrites = st.retriedWrites.value();
    s.maintenanceWrites = st.maintenanceWrites.value();
    s.issuedReads = st.issuedReads.value();
    s.rowHitReads = st.rowHitReads.value();
    s.rowMissReads = st.rowMissReads.value();
    return s;
}

void
EnergyCrossChecker::evaluate(const Snapshot &s, ViolationSink &sink)
{
    // Retried attempts drew write energy even though their request
    // did not complete; leveler maintenance copies are charged as
    // normal-speed writes with no request at all.
    std::uint64_t energy_writes =
        s.energyNormalWrites + s.energySlowWrites;
    std::uint64_t finished_pulses =
        s.completedWrites + s.retriedWrites + s.maintenanceWrites;
    if (energy_writes != finished_pulses) {
        sink.add(logFormat(
            "energy model charged %llu completed writes but the "
            "controller finished %llu pulses (%llu completed + %llu "
            "retried + %llu maintenance)",
            static_cast<unsigned long long>(energy_writes),
            static_cast<unsigned long long>(finished_pulses),
            static_cast<unsigned long long>(s.completedWrites),
            static_cast<unsigned long long>(s.retriedWrites),
            static_cast<unsigned long long>(s.maintenanceWrites)));
    }
    if (s.energyCancelledWrites != s.cancelledWrites) {
        sink.add(logFormat(
            "energy model charged %llu cancelled writes but the "
            "controller cancelled %llu",
            static_cast<unsigned long long>(s.energyCancelledWrites),
            static_cast<unsigned long long>(s.cancelledWrites)));
    }
    std::uint64_t energy_reads =
        s.energyBufferReads + s.energyRowHitReads;
    if (energy_reads != s.issuedReads) {
        sink.add(logFormat(
            "energy model charged %llu reads but the controller "
            "issued %llu",
            static_cast<unsigned long long>(energy_reads),
            static_cast<unsigned long long>(s.issuedReads)));
    }
    if (s.energyRowHitReads != s.rowHitReads ||
        s.rowHitReads + s.rowMissReads != s.issuedReads) {
        sink.add(logFormat(
            "row-buffer accounting skew: stats %llu hits + %llu "
            "misses of %llu issued; energy model saw %llu hits",
            static_cast<unsigned long long>(s.rowHitReads),
            static_cast<unsigned long long>(s.rowMissReads),
            static_cast<unsigned long long>(s.issuedReads),
            static_cast<unsigned long long>(s.energyRowHitReads)));
    }
    if (s.readPj < 0.0 || s.writePj < 0.0) {
        sink.add(logFormat(
            "negative energy totals: read %g pJ, write %g pJ",
            s.readPj, s.writePj));
    }
}

std::string
EnergyCrossChecker::name() const
{
    // mlint: allow(value-escape): checker-name formatting.
    return logFormat("energy-cross-check/ch%u", _channel.value());
}

void
EnergyCrossChecker::check(Tick, ViolationSink &sink)
{
    evaluate(capture(_ctrl), sink);
}

// --- WearQuotaChecker ----------------------------------------------

WearQuotaChecker::Snapshot
WearQuotaChecker::capture(const WearQuota &quota, unsigned numBanks)
{
    Snapshot s;
    s.wearBoundBank = quota.wearBoundBank();
    s.numPeriods = quota.numPeriods();
    s.banks.reserve(numBanks);
    for (unsigned b = 0; b < numBanks; ++b) {
        BankSnapshot bs;
        bs.wear = quota.bankWear(BankId(b));
        bs.exceed = quota.exceedQuota(BankId(b));
        bs.slowOnlyPeriods = quota.slowOnlyPeriods(BankId(b));
        s.banks.push_back(bs);
    }
    return s;
}

void
WearQuotaChecker::evaluate(const Snapshot &s, ViolationSink &sink)
{
    if (s.wearBoundBank <= 0.0) {
        sink.add(logFormat(
            "per-period wear budget must be positive, got %g",
            s.wearBoundBank));
    }
    for (std::size_t b = 0; b < s.banks.size(); ++b) {
        const BankSnapshot &bs = s.banks[b];
        if (bs.wear < 0.0) {
            sink.add(logFormat("bank %zu recorded negative wear (%g)",
                               b, bs.wear));
        }
        if (bs.slowOnlyPeriods > s.numPeriods) {
            sink.add(logFormat(
                "bank %zu was slow-only for %llu of %llu periods",
                b,
                static_cast<unsigned long long>(bs.slowOnlyPeriods),
                static_cast<unsigned long long>(s.numPeriods)));
        }
        // The latched ExceedQuota was wear - bound * numPeriods at
        // the last boundary; wear only grows within a period, so the
        // current wear must still cover it.
        double implied = bs.exceed + s.wearBoundBank *
                                         static_cast<double>(
                                             s.numPeriods);
        if (!approxLessOrEqual(implied, bs.wear)) {
            sink.add(logFormat(
                "bank %zu ExceedQuota (%g) is stale or corrupt: with "
                "budget %g over %llu periods it implies at least %g "
                "wear units, but only %g were recorded",
                b, bs.exceed, s.wearBoundBank,
                static_cast<unsigned long long>(s.numPeriods), implied,
                bs.wear));
        }
    }
}

std::string
WearQuotaChecker::name() const
{
    // mlint: allow(value-escape): checker-name formatting.
    return logFormat("wear-quota/ch%u", _channel.value());
}

void
WearQuotaChecker::check(Tick, ViolationSink &sink)
{
    const WearQuota *quota = _ctrl.wearQuota();
    if (quota == nullptr)
        return;
    evaluate(capture(*quota, _ctrl.numBanks()), sink);
}

// --- FaultChecker --------------------------------------------------

FaultChecker::Snapshot
FaultChecker::capture(const MemoryController &ctrl)
{
    const FaultModel *fm = ctrl.faultModel();
    panic_if(fm == nullptr,
             "fault checker installed without a fault model");
    const FaultStats &fs = fm->stats();
    Snapshot s;
    s.writesToRetiredLines = fm->writesToRetiredLines();
    s.maxRepairsOnLine = fm->maxRepairsOnLine();
    s.remapEntries = fm->remapEntries();
    s.delegateRetiredLines = fm->delegateRetiredLines();
    s.remapValid = fm->remapTableValid();
    s.retiredLines = fs.retiredLines;
    s.deadLines = fs.deadLines;
    s.repairsUsed = fs.repairsUsed;
    s.permanentFaults = fs.permanentFaults;
    s.maxSparesUsed = fm->maxSparesUsed();
    s.retriesRequested = fs.retriesRequested;
    s.firstFaultTick = fs.firstFaultTick;
    s.firstUncorrectableTick = fs.firstUncorrectableTick;
    s.repairEntriesPerLine = fm->config().repairEntriesPerLine;
    s.spareLinesPerBank = fm->config().spareLinesPerBank;
    s.ctrlRetriedWrites = ctrl.stats().retriedWrites.value();
    return s;
}

void
FaultChecker::evaluate(const Snapshot &s, ViolationSink &sink)
{
    if (s.writesToRetiredLines != 0) {
        sink.add(logFormat(
            "%llu write(s) issued to retired lines — the retirement "
            "indirection table was bypassed",
            static_cast<unsigned long long>(s.writesToRetiredLines)));
    }
    if (s.maxRepairsOnLine > s.repairEntriesPerLine) {
        sink.add(logFormat(
            "repair budget overdrawn: a line consumed %llu ECP "
            "entries of %llu budgeted",
            static_cast<unsigned long long>(s.maxRepairsOnLine),
            static_cast<unsigned long long>(s.repairEntriesPerLine)));
    }
    if (!s.remapValid) {
        sink.add("retirement remap table is not a bijection onto "
                 "in-range spare lines of retired sources");
    }
    // A retirement consumes either a remap-table entry or (under a
    // unified-remap leveler) a delegate rerouting — exactly one.
    if (s.remapEntries + s.delegateRetiredLines != s.retiredLines) {
        sink.add(logFormat(
            "remap table has %llu entries + %llu delegate "
            "retirements but %llu lines are retired",
            static_cast<unsigned long long>(s.remapEntries),
            static_cast<unsigned long long>(s.delegateRetiredLines),
            static_cast<unsigned long long>(s.retiredLines)));
    }
    if (s.maxSparesUsed > s.spareLinesPerBank) {
        sink.add(logFormat(
            "spare pool overdrawn: a bank consumed %llu spares of "
            "%llu available",
            static_cast<unsigned long long>(s.maxSparesUsed),
            static_cast<unsigned long long>(s.spareLinesPerBank)));
    }
    if (s.permanentFaults !=
        s.repairsUsed + s.retiredLines + s.deadLines) {
        sink.add(logFormat(
            "fault escalation leak: %llu permanent faults but %llu "
            "repairs + %llu retirements + %llu dead lines",
            static_cast<unsigned long long>(s.permanentFaults),
            static_cast<unsigned long long>(s.repairsUsed),
            static_cast<unsigned long long>(s.retiredLines),
            static_cast<unsigned long long>(s.deadLines)));
    }
    if ((s.permanentFaults != 0) != (s.firstFaultTick != 0)) {
        sink.add(logFormat(
            "first-fault tick bookkeeping skew: %llu permanent "
            "faults but first-fault tick is %llu",
            static_cast<unsigned long long>(s.permanentFaults),
            static_cast<unsigned long long>(s.firstFaultTick)));
    }
    if ((s.deadLines != 0) != (s.firstUncorrectableTick != 0)) {
        sink.add(logFormat(
            "first-uncorrectable tick bookkeeping skew: %llu dead "
            "lines but first-uncorrectable tick is %llu",
            static_cast<unsigned long long>(s.deadLines),
            static_cast<unsigned long long>(
                s.firstUncorrectableTick)));
    }
    if (s.firstFaultTick != 0 && s.firstUncorrectableTick != 0 &&
        s.firstUncorrectableTick < s.firstFaultTick) {
        sink.add(logFormat(
            "first uncorrectable error (tick %llu) precedes the "
            "first fault (tick %llu)",
            static_cast<unsigned long long>(s.firstUncorrectableTick),
            static_cast<unsigned long long>(s.firstFaultTick)));
    }
    if (s.ctrlRetriedWrites != s.retriesRequested) {
        sink.add(logFormat(
            "retry accounting skew: the fault model requested %llu "
            "retries but the controller reissued %llu",
            static_cast<unsigned long long>(s.retriesRequested),
            static_cast<unsigned long long>(s.ctrlRetriedWrites)));
    }
}

std::string
FaultChecker::name() const
{
    // mlint: allow(value-escape): checker-name formatting.
    return logFormat("fault/ch%u", _channel.value());
}

void
FaultChecker::check(Tick, ViolationSink &sink)
{
    if (_ctrl.faultModel() == nullptr)
        return;
    evaluate(capture(_ctrl), sink);
}

} // namespace mellowsim
