/**
 * @file
 * Configuration of the runtime invariant-checking layer.
 *
 * The checkers themselves (src/check/checkers.hh) are ordinary,
 * always-compiled classes so unit tests can exercise them in every
 * build mode. What the MELLOWSIM_CHECKS build option gates is the
 * *wiring*: with MELLOWSIM_CHECKS_ENABLED == 0 the System never
 * instantiates a registry, schedules no audit events and the hooks
 * compile to nothing, so a release build pays zero overhead.
 */

#ifndef MELLOWSIM_CHECK_CHECK_CONFIG_HH
#define MELLOWSIM_CHECK_CHECK_CONFIG_HH

#include "sim/types.hh"

/**
 * Compile-time master switch, set to 1 by the MELLOWSIM_CHECKS CMake
 * option (see the asan-ubsan and strict presets).
 */
#ifndef MELLOWSIM_CHECKS_ENABLED
#define MELLOWSIM_CHECKS_ENABLED 0
#endif

namespace mellowsim
{

/** Runtime knobs of the invariant-checking layer. */
struct CheckConfig
{
    /**
     * Master runtime switch. Only consulted when the library was
     * built with MELLOWSIM_CHECKS=ON; a checks-enabled build may
     * still turn auditing off per simulation.
     */
    bool enabled = true;

    /**
     * Strict mode: an audit that finds violations reports every one
     * of them via warn() and then panics (PanicError), aborting the
     * simulation. With strict off, violations are reported and
     * counted but the run continues.
     */
    bool strict = true;

    /**
     * Interval between periodic audits in ticks. Zero disables the
     * periodic sweep, leaving only the end-of-simulation audit.
     */
    // mlint: allow(timing-literal): audit cadence is simulator
    // infrastructure, not a device timing
    Tick interval = 100 * kMicrosecond;
};

} // namespace mellowsim

#endif // MELLOWSIM_CHECK_CHECK_CONFIG_HH
