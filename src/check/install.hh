/**
 * @file
 * Wires the standard checker set over a live simulated machine.
 */

#ifndef MELLOWSIM_CHECK_INSTALL_HH
#define MELLOWSIM_CHECK_INSTALL_HH

#include "check/registry.hh"
#include "nvm/memory_system.hh"
#include "sim/event_queue.hh"

namespace mellowsim
{

/**
 * Install the full checker complement for @p memory into @p registry:
 * one event-queue checker plus, per channel, request-conservation,
 * bank-state, wear-conservation and energy cross-checkers, and — when
 * the channel runs a Wear Quota — a quota checker.
 *
 * The referenced components must outlive the registry.
 */
void installStandardCheckers(InvariantRegistry &registry,
                             const EventQueue &eventq,
                             const MemorySystem &memory);

} // namespace mellowsim

#endif // MELLOWSIM_CHECK_INSTALL_HH
