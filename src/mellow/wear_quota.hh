/**
 * @file
 * Wear Quota lifetime guarantee (Section IV-C).
 *
 * Execution is divided into sample periods of T_sample (500 us). Each
 * bank has a per-period wear budget:
 *
 *     WearBound_blk  = Endur_blk * T_sample / T_lifetime
 *     WearBound_bank = BlkNum_bank * WearBound_blk * Ratio_quota
 *
 * At each period boundary the controller computes
 *
 *     ExceedQuota = sum(Wear_bank) - WearBound_bank * N_prev_periods
 *
 * and, if positive, the bank may only issue slow writes during the
 * coming period.
 *
 * Wear here is counted in the same "wear units" (fractions of one
 * block's life) as WearTracker, which makes the bound independent of
 * the device endurance constant: WearBound_blk in units is simply
 * T_sample / T_lifetime.
 */

#ifndef MELLOWSIM_MELLOW_WEAR_QUOTA_HH
#define MELLOWSIM_MELLOW_WEAR_QUOTA_HH

#include <cstdint>

#include "sim/indexed.hh"
#include "sim/strong_types.hh"
#include "sim/types.hh"

namespace mellowsim
{

/** Wear Quota configuration (Table II defaults). */
struct WearQuotaConfig
{
    // mlint: allow(timing-literal): paper Table II constant, not a
    // device datasheet timing
    Tick samplePeriod = 500 * kMicrosecond;
    double targetLifetimeYears = 8.0;
    double ratioQuota = 0.9;
    std::uint64_t blocksPerBank = 4ull * 1024 * 1024;
    /**
     * Banks start slow-only until the first period boundary shows
     * wear headroom. The quota's guarantee is a long-run average;
     * hardware would persist the registers across restarts, so a
     * fresh simulation starting unthrottled would grant every run a
     * free over-budget period — significant at simulation horizons,
     * invisible at the paper's 2-billion-instruction scale.
     */
    bool coldStartSlow = true;
};

/**
 * Per-bank wear-quota bookkeeping. The memory controller feeds wear in
 * via recordWear() and calls onPeriodBoundary() every T_sample; the
 * slowOnly() flag then gates the Figure 9 decision.
 */
class WearQuota
{
  public:
    WearQuota(const WearQuotaConfig &config, unsigned numBanks);

    /** Per-bank wear budget for a single period, in wear units. */
    [[nodiscard]] double wearBoundBank() const { return _wearBoundBank; }

    /** Account wear units placed on a bank. */
    void recordWear(BankId bank, double wearUnits);

    /**
     * Close the current period: recompute each bank's ExceedQuota and
     * latch the slow-only flags for the coming period.
     */
    void onPeriodBoundary();

    /** True if the bank may only issue slow writes this period. */
    [[nodiscard]] bool slowOnly(BankId bank) const;

    /** ExceedQuota of a bank as of the last period boundary. */
    [[nodiscard]] double exceedQuota(BankId bank) const;

    /** Total wear units recorded for a bank so far. */
    [[nodiscard]] double bankWear(BankId bank) const;

    /** Completed sample periods. */
    [[nodiscard]] std::uint64_t numPeriods() const { return _numPeriods; }

    /** Periods during which a given bank was slow-only. */
    [[nodiscard]] std::uint64_t slowOnlyPeriods(BankId bank) const;

    [[nodiscard]] const WearQuotaConfig &config() const
    {
        return _config;
    }

  private:
    struct BankState
    {
        double wear = 0.0;
        double exceed = 0.0;
        bool slowOnly = false;
        std::uint64_t slowOnlyPeriods = 0;
    };

    WearQuotaConfig _config;
    double _wearBoundBank;
    std::uint64_t _numPeriods = 0;
    IndexedVector<BankId, BankState> _banks;
};

} // namespace mellowsim

#endif // MELLOWSIM_MELLOW_WEAR_QUOTA_HH
