/**
 * @file
 * The write-policy matrix of Table III.
 *
 * A WritePolicyConfig captures one cell of the paper's policy space:
 * base scheme (Norm / Slow / B-Mellow / BE-Mellow / E-Norm / E-Slow)
 * combined with the additional choices +NC (normal writes
 * cancellable), +SC (slow writes cancellable) and +WQ (Wear Quota).
 *
 * Named factory functions build each policy the paper evaluates, and
 * fromName() parses the paper's textual names ("BE-Mellow+SC+WQ").
 */

#ifndef MELLOWSIM_MELLOW_POLICY_HH
#define MELLOWSIM_MELLOW_POLICY_HH

#include <string>
#include <vector>

namespace mellowsim
{

/** One write policy (a row of Table III plus its modifiers). */
struct WritePolicyConfig
{
    /** Display name, e.g. "BE-Mellow+SC+WQ". */
    std::string name = "Norm";

    /** Device latency multiplier used for slow writes (3.0 default). */
    double slowFactor = 3.0;

    /** Every demand write is slow (the Slow / E-Slow schemes). */
    bool globalSlow = false;

    /** Bank-Aware Mellow Writes (Section IV-A). */
    bool bankAware = false;

    /** Eager write backs from the LLC (Section IV-B / E-* schemes). */
    bool eager = false;

    /**
     * Eager write backs are issued as slow writes. True for all
     * Mellow/E-Slow schemes; false only for E-Norm, where the eager
     * writeback (a la Lee et al.) is a plain normal write.
     */
    bool eagerSlow = true;

    /** +NC: normal writes may be cancelled by an incoming read. */
    bool cancelNormal = false;

    /** +SC: slow writes may be cancelled by an incoming read. */
    bool cancelSlow = false;

    /**
     * +WP: write pausing (Qureshi et al., HPCA 2010 — the companion
     * technique to cancellation the paper cites in Section VII).
     * An in-flight write is paused at a read's arrival and resumed
     * afterwards: the read proceeds immediately, but unlike
     * cancellation no pulse time is thrown away, so neither extra
     * wear nor extra attempts accrue. Applies to both speeds; takes
     * precedence over cancellation where both are set.
     */
    bool pauseWrites = false;

    /** +WQ: Wear Quota lifetime guarantee (Section IV-C). */
    bool wearQuota = false;

    /**
     * +ML: multiple slow latencies (the paper's stated future work,
     * Section VI-I). When non-empty, a slow write chooses the largest
     * of these latency factors whose pulse fits the bank's predicted
     * quiet time (time since the last read arrival); Wear-Quota-forced
     * and globally slow writes keep the full slowFactor.
     */
    std::vector<double> adaptiveSlowFactors;

    /** True if any mellow mechanism (bank-aware or eager-slow) is on. */
    [[nodiscard]] bool
    anyMellow() const
    {
        return bankAware || (eager && eagerSlow && !globalSlow);
    }

    // --- Chainable modifiers -------------------------------------
    [[nodiscard]] WritePolicyConfig withNC() const;
    [[nodiscard]] WritePolicyConfig withSC() const;
    [[nodiscard]] WritePolicyConfig withWQ() const;
    /**
     * Replace the slow-latency factor. Validates loudly (fatal on
     * factors below 1.0) rather than clamping: a config typo should
     * abort a run, not silently become a PulseFactor of 1.0. The
     * controller converts the validated value to a PulseFactor at its
     * timing boundary.
     */
    [[nodiscard]] WritePolicyConfig withSlowFactor(double factor) const;
    /** Enable +ML with the given latency ladder (default 1.5/2/3). */
    [[nodiscard]] WritePolicyConfig withML(
        std::vector<double> factors = {1.5, 2.0, 3.0}) const;
    /** Enable +WP write pausing. */
    [[nodiscard]] WritePolicyConfig withWP() const;
};

/** Namespace-style factory for the Table III base policies. */
namespace policies
{

/** Norm: normal writes only. */
WritePolicyConfig norm();

/** Slow: every write slow. */
WritePolicyConfig slow();

/** B-Mellow: Bank-Aware Mellow Writes. */
WritePolicyConfig bMellow();

/** BE-Mellow: Bank-Aware + Eager Mellow Writes. */
WritePolicyConfig beMellow();

/** E-Norm: normal writes with (normal-speed) eager write backs. */
WritePolicyConfig eNorm();

/** E-Slow: slow writes with eager write backs. */
WritePolicyConfig eSlow();

/**
 * Parse a paper-style policy name, e.g. "Norm", "E-Norm+NC",
 * "BE-Mellow+SC+WQ". Throws FatalError on unknown names.
 */
WritePolicyConfig fromName(const std::string &name);

/**
 * The policy set evaluated in Figures 10-16 of the paper, in display
 * order: Norm, E-Norm+NC, Slow, E-Slow+SC, B-Mellow+SC, BE-Mellow+SC,
 * Norm+WQ, B-Mellow+SC+WQ, BE-Mellow+SC+WQ.
 */
std::vector<WritePolicyConfig> paperPolicySet();

} // namespace policies
} // namespace mellowsim

#endif // MELLOWSIM_MELLOW_POLICY_HH
