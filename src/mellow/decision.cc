#include "mellow/decision.hh"

namespace mellowsim
{

WriteDecision
decideWrite(const WritePolicyConfig &policy, const BankQueueView &bank)
{
    const bool reads_block = bank.readsForBank > 0 && !bank.drainMode;

    if (bank.writesForBank > 0) {
        if (reads_block)
            return WriteDecision::None;
        if (policy.globalSlow)
            return WriteDecision::SlowWrite;
        if (policy.wearQuota && bank.quotaExceeded)
            return WriteDecision::SlowWrite;
        if (policy.bankAware && bank.writesForBank == 1 &&
            bank.readsForBank == 0) {
            return WriteDecision::SlowWrite;
        }
        return WriteDecision::NormalWrite;
    }

    if (policy.eager && bank.eagerForBank > 0) {
        // Eager writes are the lowest priority: any same-bank demand
        // traffic (read or write) suppresses them, drains never
        // involve them.
        if (bank.readsForBank > 0)
            return WriteDecision::None;
        return policy.eagerSlow ? WriteDecision::EagerSlow
                                : WriteDecision::EagerNormal;
    }

    return WriteDecision::None;
}

bool
cancellable(const WritePolicyConfig &policy, WriteDecision decision)
{
    switch (decision) {
      case WriteDecision::NormalWrite:
      case WriteDecision::EagerNormal:
        return policy.cancelNormal;
      case WriteDecision::SlowWrite:
      case WriteDecision::EagerSlow:
        return policy.cancelSlow;
      case WriteDecision::None:
        return false;
    }
    return false;
}

bool
isSlowDecision(WriteDecision decision)
{
    return decision == WriteDecision::SlowWrite ||
           decision == WriteDecision::EagerSlow;
}

} // namespace mellowsim
