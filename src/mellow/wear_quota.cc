#include "mellow/wear_quota.hh"

#include "sim/logging.hh"

namespace mellowsim
{

WearQuota::WearQuota(const WearQuotaConfig &config, unsigned numBanks)
    : _config(config), _banks(numBanks)
{
    fatal_if(numBanks == 0, "Wear Quota needs >= 1 bank");
    fatal_if(config.samplePeriod == 0,
             "Wear Quota sample period must be positive");
    fatal_if(config.targetLifetimeYears <= 0.0,
             "Wear Quota target lifetime must be positive");
    fatal_if(config.ratioQuota <= 0.0 || config.ratioQuota > 1.0,
             "Ratio_quota must be in (0, 1] (got %f)", config.ratioQuota);

    // WearBound_blk in wear units = T_sample / T_lifetime.
    double lifetime_ticks =
        config.targetLifetimeYears * kSecondsPerYear *
        static_cast<double>(kSecond);
    double bound_blk =
        static_cast<double>(config.samplePeriod) / lifetime_ticks;
    _wearBoundBank = static_cast<double>(config.blocksPerBank) *
                     bound_blk * config.ratioQuota;

    if (config.coldStartSlow) {
        for (auto &b : _banks)
            b.slowOnly = true;
    }
}

void
WearQuota::recordWear(BankId bank, double wearUnits)
{
    _banks[bank].wear += wearUnits;
}

void
WearQuota::onPeriodBoundary()
{
    ++_numPeriods;
    for (auto &b : _banks) {
        b.exceed = b.wear -
                   _wearBoundBank * static_cast<double>(_numPeriods);
        b.slowOnly = b.exceed > 0.0;
        if (b.slowOnly)
            ++b.slowOnlyPeriods;
    }
}

bool
WearQuota::slowOnly(BankId bank) const
{
    return _banks[bank].slowOnly;
}

double
WearQuota::exceedQuota(BankId bank) const
{
    return _banks[bank].exceed;
}

double
WearQuota::bankWear(BankId bank) const
{
    return _banks[bank].wear;
}

std::uint64_t
WearQuota::slowOnlyPeriods(BankId bank) const
{
    return _banks[bank].slowOnlyPeriods;
}

} // namespace mellowsim
