#include "mellow/wear_quota.hh"

#include "sim/logging.hh"

namespace mellowsim
{

WearQuota::WearQuota(const WearQuotaConfig &config, unsigned numBanks)
    : _config(config), _banks(numBanks)
{
    fatal_if(numBanks == 0, "Wear Quota needs >= 1 bank");
    fatal_if(config.samplePeriod == 0,
             "Wear Quota sample period must be positive");
    fatal_if(config.targetLifetimeYears <= 0.0,
             "Wear Quota target lifetime must be positive");
    fatal_if(config.ratioQuota <= 0.0 || config.ratioQuota > 1.0,
             "Ratio_quota must be in (0, 1] (got %f)", config.ratioQuota);

    // WearBound_blk in wear units = T_sample / T_lifetime.
    double lifetime_ticks =
        config.targetLifetimeYears * kSecondsPerYear *
        static_cast<double>(kSecond);
    double bound_blk =
        static_cast<double>(config.samplePeriod) / lifetime_ticks;
    _wearBoundBank = static_cast<double>(config.blocksPerBank) *
                     bound_blk * config.ratioQuota;

    if (config.coldStartSlow) {
        for (auto &b : _banks)
            b.slowOnly = true;
    }
}

void
WearQuota::recordWear(BankId bank, double wearUnits)
{
    panic_if(bank.value() >= _banks.size(), "bank %u out of range",
             bank.value());
    _banks[bank.value()].wear += wearUnits;
}

void
WearQuota::onPeriodBoundary()
{
    ++_numPeriods;
    for (auto &b : _banks) {
        b.exceed = b.wear -
                   _wearBoundBank * static_cast<double>(_numPeriods);
        b.slowOnly = b.exceed > 0.0;
        if (b.slowOnly)
            ++b.slowOnlyPeriods;
    }
}

bool
WearQuota::slowOnly(BankId bank) const
{
    panic_if(bank.value() >= _banks.size(), "bank %u out of range",
             bank.value());
    return _banks[bank.value()].slowOnly;
}

double
WearQuota::exceedQuota(BankId bank) const
{
    panic_if(bank.value() >= _banks.size(), "bank %u out of range",
             bank.value());
    return _banks[bank.value()].exceed;
}

double
WearQuota::bankWear(BankId bank) const
{
    panic_if(bank.value() >= _banks.size(), "bank %u out of range",
             bank.value());
    return _banks[bank.value()].wear;
}

std::uint64_t
WearQuota::slowOnlyPeriods(BankId bank) const
{
    panic_if(bank.value() >= _banks.size(), "bank %u out of range",
             bank.value());
    return _banks[bank.value()].slowOnlyPeriods;
}

} // namespace mellowsim
