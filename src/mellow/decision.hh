/**
 * @file
 * The write-speed decision logic of Figure 9.
 *
 * Kept as a pure function over an explicit snapshot of per-bank queue
 * state so that the full decision table is unit-testable without a
 * memory controller. The controller calls decideWrite() every time it
 * is about to issue a write to a bank.
 */

#ifndef MELLOWSIM_MELLOW_DECISION_HH
#define MELLOWSIM_MELLOW_DECISION_HH

#include "mellow/policy.hh"

namespace mellowsim
{

/** Snapshot of what the controller knows about one bank. */
struct BankQueueView
{
    /** Demand reads queued for this bank. */
    unsigned readsForBank = 0;
    /** Demand writes queued for this bank (including the candidate). */
    unsigned writesForBank = 0;
    /** Eager mellow writes queued for this bank. */
    unsigned eagerForBank = 0;
    /** The controller is in write-drain mode. */
    bool drainMode = false;
    /** The bank's Wear Quota is exceeded (only meaningful with +WQ). */
    bool quotaExceeded = false;
};

/** What the controller should issue to this bank. */
enum class WriteDecision
{
    None,        ///< do not issue a write (e.g. reads waiting)
    NormalWrite, ///< issue the head demand write at normal speed
    SlowWrite,   ///< issue the head demand write at slow speed
    EagerSlow,   ///< issue the head eager write (slow unless E-Norm)
    EagerNormal, ///< eager write at normal speed (E-Norm only)
};

/**
 * Decide what write, if any, to issue to a bank (Figure 9).
 *
 * Rules, in priority order:
 *  1. Reads have absolute priority: if reads are queued for the bank
 *     and the controller is not draining, no write is issued.
 *  2. A queued demand write is issued:
 *       - slow, if the policy is globally slow;
 *       - slow, if +WQ and the bank exceeded its quota;
 *       - slow, if Bank-Aware and it is the only request for the bank
 *         (exactly one write, no reads);
 *       - normal otherwise.
 *  3. With no demand write queued for the bank, an eager write is
 *     issued (slow for mellow/E-Slow schemes, normal for E-Norm) only
 *     if there are also no reads for the bank; the eager queue never
 *     participates in drains.
 */
[[nodiscard]] WriteDecision decideWrite(const WritePolicyConfig &policy,
                                        const BankQueueView &bank);

/** True if a write issued at the given decision may be cancelled. */
[[nodiscard]] bool cancellable(const WritePolicyConfig &policy,
                               WriteDecision decision);

/** True if the decision issues at slow device speed. */
[[nodiscard]] bool isSlowDecision(WriteDecision decision);

} // namespace mellowsim

#endif // MELLOWSIM_MELLOW_DECISION_HH
