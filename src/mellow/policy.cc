#include "mellow/policy.hh"

#include <algorithm>
#include <cstdio>

#include "sim/logging.hh"

namespace mellowsim
{

WritePolicyConfig
WritePolicyConfig::withNC() const
{
    WritePolicyConfig p = *this;
    p.cancelNormal = true;
    p.name += "+NC";
    return p;
}

WritePolicyConfig
WritePolicyConfig::withSC() const
{
    WritePolicyConfig p = *this;
    p.cancelSlow = true;
    p.name += "+SC";
    return p;
}

WritePolicyConfig
WritePolicyConfig::withWQ() const
{
    WritePolicyConfig p = *this;
    p.wearQuota = true;
    p.name += "+WQ";
    return p;
}

WritePolicyConfig
WritePolicyConfig::withSlowFactor(double factor) const
{
    fatal_if(factor < 1.0, "slow factor must be >= 1.0 (got %f)", factor);
    WritePolicyConfig p = *this;
    p.slowFactor = factor;
    return p;
}

WritePolicyConfig
WritePolicyConfig::withWP() const
{
    WritePolicyConfig p = *this;
    p.pauseWrites = true;
    p.name += "+WP";
    return p;
}

WritePolicyConfig
WritePolicyConfig::withML(std::vector<double> factors) const
{
    fatal_if(factors.empty(), "+ML needs at least one latency factor");
    for (double f : factors)
        fatal_if(f < 1.0, "+ML factors must be >= 1.0 (got %f)", f);
    std::sort(factors.begin(), factors.end());
    WritePolicyConfig p = *this;
    p.adaptiveSlowFactors = std::move(factors);
    p.name += "+ML";
    return p;
}

namespace policies
{

WritePolicyConfig
norm()
{
    WritePolicyConfig p;
    p.name = "Norm";
    return p;
}

WritePolicyConfig
slow()
{
    WritePolicyConfig p;
    p.name = "Slow";
    p.globalSlow = true;
    return p;
}

WritePolicyConfig
bMellow()
{
    WritePolicyConfig p;
    p.name = "B-Mellow";
    p.bankAware = true;
    return p;
}

WritePolicyConfig
beMellow()
{
    WritePolicyConfig p;
    p.name = "BE-Mellow";
    p.bankAware = true;
    p.eager = true;
    p.eagerSlow = true;
    return p;
}

WritePolicyConfig
eNorm()
{
    WritePolicyConfig p;
    p.name = "E-Norm";
    p.eager = true;
    p.eagerSlow = false;
    return p;
}

WritePolicyConfig
eSlow()
{
    WritePolicyConfig p;
    p.name = "E-Slow";
    p.globalSlow = true;
    p.eager = true;
    p.eagerSlow = true;
    return p;
}

WritePolicyConfig
fromName(const std::string &name)
{
    // Split base name from '+' modifiers.
    std::string base = name;
    std::vector<std::string> mods;
    std::size_t pos;
    while ((pos = base.rfind('+')) != std::string::npos) {
        mods.push_back(base.substr(pos + 1));
        base = base.substr(0, pos);
    }

    WritePolicyConfig p;
    if (base == "Norm") {
        p = norm();
    } else if (base == "Slow") {
        p = slow();
    } else if (base == "B-Mellow") {
        p = bMellow();
    } else if (base == "BE-Mellow") {
        p = beMellow();
    } else if (base == "E-Norm") {
        p = eNorm();
    } else if (base == "E-Slow") {
        p = eSlow();
    } else {
        fatal("unknown base write policy '%s'", base.c_str());
    }

    // Modifiers were collected right-to-left; apply left-to-right so
    // the reconstructed display name matches the input.
    for (auto it = mods.rbegin(); it != mods.rend(); ++it) {
        if (*it == "NC") {
            p = p.withNC();
        } else if (*it == "SC") {
            p = p.withSC();
        } else if (*it == "WQ") {
            p = p.withWQ();
        } else if (*it == "ML") {
            p = p.withML();
        } else if (*it == "WP") {
            p = p.withWP();
        } else {
            fatal("unknown write policy modifier '+%s'", it->c_str());
        }
    }
    return p;
}

std::vector<WritePolicyConfig>
paperPolicySet()
{
    return {
        norm(),
        eNorm().withNC(),
        slow(),
        eSlow().withSC(),
        bMellow().withSC(),
        beMellow().withSC(),
        norm().withWQ(),
        bMellow().withSC().withWQ(),
        beMellow().withSC().withWQ(),
    };
}

} // namespace policies
} // namespace mellowsim
