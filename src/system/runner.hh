/**
 * @file
 * Experiment sweep helpers shared by the bench harness and examples:
 * building configurations for (workload x policy x geometry) grids,
 * normalising metrics against a baseline policy, and geometric means.
 */

#ifndef MELLOWSIM_SYSTEM_RUNNER_HH
#define MELLOWSIM_SYSTEM_RUNNER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "mellow/policy.hh"
#include "system/report.hh"
#include "system/system.hh"

namespace mellowsim
{

/**
 * Default configuration for a (workload, policy) pair, honouring the
 * MELLOWSIM_INSTRS and MELLOWSIM_WARMUP environment variables so the
 * whole bench suite can be scaled up or down without recompiling.
 *
 * When a device is selected — setDeviceOverride() first, else the
 * MELLOWSIM_DEVICE environment variable — the memory controller
 * configuration and channel count are bound from that device file
 * (configs/<name>.config, see src/config/device_config.hh) instead of
 * the compiled-in defaults. The defaults are byte-identical to
 * configs/reram_paper.config, so leaving the device unset and
 * selecting reram_paper are the same machine.
 */
SystemConfig makeConfig(const std::string &workload,
                        const WritePolicyConfig &policy);

/**
 * Select the device config bound by every subsequent makeConfig():
 * a bare name from configs/ ("reram_isscc2012") or a path to a
 * .config file. Takes precedence over MELLOWSIM_DEVICE; "" clears the
 * override. Call before starting a sweep, not concurrently with one.
 */
void setDeviceOverride(const std::string &nameOrPath);

/**
 * The device selection makeConfig() is currently honouring (override,
 * else MELLOWSIM_DEVICE), or "" when the compiled-in defaults (the
 * reram_paper point) are in effect.
 */
std::string activeDeviceName();

/**
 * Bind the active device selection (if any) into an already-built
 * configuration: cfg.memory and cfg.numChannels are replaced from the
 * device file; everything else is untouched. No-op when no device is
 * selected. makeConfig() calls this automatically — use it directly
 * when constructing a SystemConfig by hand (apply before any manual
 * cfg.memory tweaks, which should win over the datasheet).
 */
void applyDeviceSelection(SystemConfig &cfg);

/**
 * Consume the shared device flags from a command line, compacting
 * argv so positional arguments keep their place:
 *
 *   --device <name|path> | --device=<name|path>   setDeviceOverride()
 *   --list-devices                                print configs/, exit
 *
 * Unrecognised arguments are left for the caller.
 */
void applyDeviceArgs(int &argc, char **argv);

/**
 * Select the shard count bound by every subsequent makeConfig():
 * SystemConfig::shards is set to @p shards (0 = monolithic, N >= 1 =
 * sharded on N workers; see system/sharded.hh). Takes precedence over
 * the MELLOWSIM_SHARDS environment variable; clearShardOverride()
 * restores env/default behaviour. Call before starting a sweep, not
 * concurrently with one.
 */
void setShardOverride(unsigned shards);
void clearShardOverride();

/**
 * The shard count makeConfig() is currently honouring (override, else
 * MELLOWSIM_SHARDS, else 0 = the monolithic path).
 */
unsigned activeShards();

/**
 * Bind the active shard selection into an already-built configuration
 * (no-op when neither the override nor MELLOWSIM_SHARDS is set).
 * makeConfig() calls this automatically.
 */
void applyShardSelection(SystemConfig &cfg);

/**
 * Consume the shared shard flag from a command line, compacting argv
 * so positional arguments keep their place:
 *
 *   --shards <n> | --shards=<n>    setShardOverride(n)
 *
 * Unrecognised arguments are left for the caller.
 */
void applyShardArgs(int &argc, char **argv);

/** Run one (workload, policy) pair with the default configuration. */
SimReport runOne(const std::string &workload,
                 const WritePolicyConfig &policy);

/**
 * Run a full (workloads x policies) grid, invoking @p tweak (if set)
 * on each configuration before running. Results are ordered policy-
 * major to match the paper's figure legends.
 *
 * Runs execute in parallel across MELLOWSIM_JOBS worker threads
 * (default: hardware concurrency); every simulation is an isolated
 * System, so results are bit-identical to a serial sweep.
 */
std::vector<SimReport>
runGrid(const std::vector<std::string> &workloads,
        const std::vector<WritePolicyConfig> &policies,
        const std::function<void(SystemConfig &)> &tweak = nullptr);

/**
 * Run an arbitrary list of prepared configurations in parallel across
 * MELLOWSIM_JOBS worker threads (default: hardware concurrency).
 *
 * A worker-thread exception is rethrown after the sweep drains, and
 * when several configurations fail the one with the lowest sweep
 * index wins — the same error a serial sweep would report, regardless
 * of thread arrival order.
 */
std::vector<SimReport> runConfigs(std::vector<SystemConfig> configs);

/** As above with an explicit worker count (ignores MELLOWSIM_JOBS);
 * used by tools/determinism_check --threads. */
std::vector<SimReport> runConfigs(std::vector<SystemConfig> configs,
                                  unsigned jobs);

/** Look up the report for (workload, policy) in a result set. */
const SimReport &findReport(const std::vector<SimReport> &reports,
                            const std::string &workload,
                            const std::string &policy);

/**
 * metric(workload, policy) / metric(workload, baseline) for every
 * workload, in workload order.
 */
std::vector<double>
normalizedMetric(const std::vector<SimReport> &reports,
                 const std::vector<std::string> &workloads,
                 const std::string &policy, const std::string &baseline,
                 const std::function<double(const SimReport &)> &metric);

/** Geometric mean of a metric ratio vs baseline across workloads. */
double geoMeanNormalized(
    const std::vector<SimReport> &reports,
    const std::vector<std::string> &workloads, const std::string &policy,
    const std::string &baseline,
    const std::function<double(const SimReport &)> &metric);

} // namespace mellowsim

#endif // MELLOWSIM_SYSTEM_RUNNER_HH
