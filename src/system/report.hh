/**
 * @file
 * Per-run metrics and table/CSV rendering.
 *
 * A SimReport carries every quantity the paper's figures plot; the
 * bench binaries assemble reports into the same rows/series as the
 * corresponding figure or table.
 */

#ifndef MELLOWSIM_SYSTEM_REPORT_HH
#define MELLOWSIM_SYSTEM_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/strong_types.hh"
#include "sim/types.hh"

namespace mellowsim
{

/** How a simulation run ended. */
enum class ReportStatus
{
    /** The workload ran to completion. */
    Ok,
    /**
     * Fault injection drove effective capacity down to the configured
     * floor before the workload finished: the run stopped gracefully
     * at end-of-life with the metrics measured up to that point.
     */
    CapacityExhausted,
};

/** Printable name of a report status ("ok", "capacity-exhausted"). */
[[nodiscard]] const char *reportStatusName(ReportStatus status);

/** Everything measured in one simulation run. */
struct SimReport
{
    std::string workload;
    std::string policy;

    /** How the run ended (see ReportStatus). */
    ReportStatus status = ReportStatus::Ok;

    std::uint64_t instructions = 0;
    Tick simTicks = 0;

    // Headline metrics.
    double ipc = 0.0;
    double lifetimeYears = 0.0;
    double avgBankUtilization = 0.0;
    double drainTimeFraction = 0.0;
    double mpki = 0.0;

    // LLC-side request breakdown (Figure 14).
    std::uint64_t llcDemandReads = 0;
    std::uint64_t llcDemandWrites = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t writebacksToMem = 0;
    std::uint64_t eagerSent = 0;
    std::uint64_t eagerWasted = 0;

    // Controller-side issue breakdown (Figure 15).
    std::uint64_t memReads = 0;
    std::uint64_t forwardedReads = 0;
    std::uint64_t issuedNormalWrites = 0;
    std::uint64_t issuedSlowWrites = 0;
    std::uint64_t issuedEagerNormal = 0;
    std::uint64_t issuedEagerSlow = 0;
    std::uint64_t cancelledWrites = 0;
    std::uint64_t pausedWrites = 0;
    std::uint64_t drainEntries = 0;
    double avgReadLatencyNs = 0.0;

    // Energy (Figure 16).
    Picojoules readEnergyPj;
    Picojoules writeEnergyPj;
    Picojoules totalEnergyPj;

    // Wear Quota activity.
    std::uint64_t quotaPeriods = 0;
    std::uint64_t quotaSlowOnlyPeriods = 0;

    // Fault injection (all zero when the fault layer is off).
    std::uint64_t writeRetries = 0;          ///< verify-failure reissues
    std::uint64_t transientWriteFailures = 0;
    std::uint64_t permanentFaults = 0;
    std::uint64_t faultRepairsUsed = 0;      ///< ECP entries consumed
    std::uint64_t retiredLines = 0;
    std::uint64_t deadLines = 0;             ///< uncorrectable lines
    Tick firstFaultTick = 0;                 ///< 0 = never
    Tick firstUncorrectableTick = 0;         ///< 0 = never
    /** Fraction of lines still reliable (1.0 with faults off). */
    double effectiveCapacityFraction = 1.0;
    /** True iff the run ended at the configured capacity floor. */
    bool capacityFloorReached = false;

    /**
     * All issued write attempts (demand + eager). Issue counters are
     * per attempt, so cancelled attempts and their retries are
     * already included.
     */
    [[nodiscard]] std::uint64_t
    totalBankWrites() const
    {
        return issuedNormalWrites + issuedSlowWrites +
               issuedEagerNormal + issuedEagerSlow;
    }

    /** All requests issued to banks (Figure 15's y-axis). */
    [[nodiscard]] std::uint64_t
    totalBankRequests() const
    {
        return memReads + totalBankWrites();
    }

    /**
     * Fold another shard's report into this one (post-join only; the
     * sharded-kernel counterpart of the stats::* merge() ops).
     * Additive tallies and energies sum; simTicks takes the furthest
     * shard; capacity takes the worst shard; first-fault ticks take
     * the earliest nonzero observation. Derived rates (ipc, mpki,
     * averages, lifetime) are NOT recomputed here — they depend on
     * model knowledge the report does not carry, so the caller
     * recomputes them from the merged tallies. Workload/policy labels
     * must match (panics otherwise): merging unrelated runs is a bug,
     * not an aggregation.
     */
    void merge(const SimReport &other);
};

/**
 * Exhaustive textual fingerprint of a report: every field, one
 * "name value" line each, doubles at full (%.17g) precision. Two
 * reports fingerprint identically iff every measured quantity is
 * byte-identical — the currency of the determinism audits
 * (tools/determinism_check, the sharded serial-vs-threaded gates, the
 * CI perf-smoke divergence check).
 */
std::string reportFingerprint(const SimReport &r);

/** Render a fixed-precision CSV row set; first row is the header. */
std::string reportsToCsv(const std::vector<SimReport> &reports);

/**
 * Render reports as an aligned text table with a chosen subset of
 * columns. Supported column names: workload, policy, status, ipc,
 * lifetime, utilization, drain, mpki, energy, reads, writes, retries,
 * faults, retired, dead, first_fault_ns, first_ue_ns, capacity.
 */
std::string reportsToTable(const std::vector<SimReport> &reports,
                           const std::vector<std::string> &columns);

} // namespace mellowsim

#endif // MELLOWSIM_SYSTEM_REPORT_HH
