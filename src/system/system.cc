#include "system/system.hh"

#include <cmath>

#include "check/install.hh"
#include "check/registry.hh"
#include "sim/logging.hh"
#include "system/sharded.hh"

namespace mellowsim
{

System::System(const SystemConfig &config)
    : System(config, makeWorkload(config.workloadName, config.seed))
{
}

System::System(const SystemConfig &config, WorkloadPtr workload)
    : _config(config), _workload(std::move(workload))
{
    fatal_if(_workload == nullptr, "system needs a workload");
    build();
}

System::~System() = default;

void
System::build()
{
    // Propagate the write policy into the controller and the eager
    // machinery into the LLC.
    _config.memory.policy = _config.policy;
    _config.hierarchy.llc.eagerEnabled = _config.policy.eager;
    // Mix the run seed into the fault draws so different-seed runs see
    // different weak lines (while same-seed runs replay exactly).
    _config.memory.fault.seed ^= _config.seed * 0x2545F4914F6CDD1Dull;

    MemorySystemConfig mem_cfg;
    mem_cfg.numChannels = _config.numChannels;
    mem_cfg.channel = _config.memory;
    _memory = std::make_unique<MemorySystem>(_eventq, mem_cfg);
    _hierarchy = std::make_unique<Hierarchy>(
        _eventq, _config.hierarchy, *_memory, _config.seed);
    _core = std::make_unique<TraceCore>(_eventq, _config.core,
                                        *_workload, *_hierarchy);

#if MELLOWSIM_CHECKS_ENABLED
    if (_config.checks.enabled) {
        _checks = std::make_unique<InvariantRegistry>(_config.checks);
        installStandardCheckers(*_checks, _eventq, *_memory);
        _checks->schedulePeriodic(_eventq);
    }
#endif
}

SimReport
System::run()
{
    panic_if(_ran, "System::run() called twice");
    _ran = true;

    // Functional warm-up from the front of the workload stream.
    std::uint64_t warm_instrs = 0;
    while (warm_instrs < _config.warmupInstructions) {
        Op op = _workload->next();
        warm_instrs += op.gap + 1;
        _hierarchy->prime(LogicalAddr(op.addr), op.isWrite);
    }

    _core->start(_config.instructions);
    // End-of-life: once fault injection has killed enough lines to
    // reach the configured capacity floor, stop the run gracefully
    // and report what was measured — never assert or abort on a
    // memory that wore out. Polled every 1024 events to keep the
    // check off the hot path.
    bool capacity_exhausted = false;
    std::uint64_t steps = 0;
    while (!_core->done()) {
        if (!_eventq.step())
            break;
        if ((++steps & 0x3FF) == 0 && _memory->capacityFloorReached()) {
            capacity_exhausted = true;
            break;
        }
        if (_eventq.curTick() > _config.maxSimTicks) {
            fatal("simulation exceeded the %f s safety wall",
                  ticksToSeconds(_config.maxSimTicks));
        }
    }
    panic_if(!_core->done() && !capacity_exhausted,
             "event queue drained before the core finished");
    _memory->finalize();
    if (_checks != nullptr)
        _checks->finalAudit(_eventq.curTick());

    // Assemble the report.
    SimReport r;
    r.workload = _workload->info().name;
    r.policy = _config.policy.name;
    r.status = capacity_exhausted ? ReportStatus::CapacityExhausted
                                  : ReportStatus::Ok;
    r.capacityFloorReached = capacity_exhausted;
    r.instructions = _core->stats().instructions;
    if (capacity_exhausted) {
        // The core never finished; measure IPC over the instructions
        // it retired up to the wall clock of the last event.
        // stats().instructions is only finalised at completion, so
        // read the live dispatch count instead.
        r.instructions = _core->instructionsDispatched();
        r.simTicks = _eventq.curTick();
        if (r.simTicks > 0) {
            double cycles =
                static_cast<double>(r.simTicks) /
                static_cast<double>(_config.core.clockPeriod);
            r.ipc = static_cast<double>(r.instructions) / cycles;
        }
    } else {
        r.simTicks = _core->finishTick();
        r.ipc = _core->ipc();
    }

    r.lifetimeYears = std::min(_memory->lifetimeYears(r.simTicks),
                               _config.maxReportedLifetimeYears);
    r.avgBankUtilization = _memory->avgBankUtilization();
    r.drainTimeFraction = _memory->drainTimeFraction();

    const HierarchyStats &h = _hierarchy->stats();
    r.mpki = r.instructions
                 ? 1000.0 * static_cast<double>(h.llcMisses.value()) /
                       static_cast<double>(r.instructions)
                 : 0.0;

    const LlcStats &llc = _hierarchy->llc().stats();
    r.llcDemandReads = llc.demandReads.value();
    r.llcDemandWrites = llc.demandWrites.value();
    r.llcMisses = llc.misses.value();
    r.writebacksToMem = llc.writebacksToMem.value();
    r.eagerSent = llc.eagerSent.value();
    r.eagerWasted = llc.eagerWasted.value();

    double lat_weighted = 0.0;
    std::uint64_t lat_samples = 0;
    for (unsigned c = 0; c < _memory->numChannels(); ++c) {
        const MemoryController &ctrl = _memory->channel(ChannelId(c));
        const MemControllerStats &m = ctrl.stats();
        r.memReads += m.issuedReads.value();
        r.forwardedReads += m.forwardedReads.value();
        r.issuedNormalWrites += m.issuedNormalWrites.value();
        r.issuedSlowWrites += m.issuedSlowWrites.value();
        r.issuedEagerNormal += m.issuedEagerNormal.value();
        r.issuedEagerSlow += m.issuedEagerSlow.value();
        r.cancelledWrites += m.cancelledWrites.value();
        r.pausedWrites += m.pausedWrites.value();
        r.drainEntries += m.drainEntries.value();
        lat_weighted += m.readLatency.sum();
        lat_samples += m.readLatency.count();

        const EnergyStats &e = ctrl.energyModel().stats();
        r.readEnergyPj += e.readPj;
        r.writeEnergyPj += e.writePj;
        r.totalEnergyPj += e.totalPj();

        if (const WearQuota *q = ctrl.wearQuota()) {
            r.quotaPeriods = std::max(r.quotaPeriods, q->numPeriods());
            for (unsigned b = 0;
                 b < ctrl.config().geometry.numBanks; ++b) {
                r.quotaSlowOnlyPeriods =
                    std::max(r.quotaSlowOnlyPeriods,
                             q->slowOnlyPeriods(BankId(b)));
            }
        }

        r.writeRetries += m.retriedWrites.value();
        if (const FaultModel *fm = ctrl.faultModel()) {
            const FaultStats &fs = fm->stats();
            r.transientWriteFailures += fs.transientFailures;
            r.permanentFaults += fs.permanentFaults;
            r.faultRepairsUsed += fs.repairsUsed;
            r.retiredLines += fs.retiredLines;
            r.deadLines += fs.deadLines;
            // Earliest event over channels (0 means never happened).
            auto earliest = [](Tick acc, Tick t) {
                return t != 0 && (acc == 0 || t < acc) ? t : acc;
            };
            r.firstFaultTick =
                earliest(r.firstFaultTick, fs.firstFaultTick);
            r.firstUncorrectableTick = earliest(
                r.firstUncorrectableTick, fs.firstUncorrectableTick);
            r.effectiveCapacityFraction =
                std::min(r.effectiveCapacityFraction,
                         fm->effectiveCapacityFraction());
        }
    }
    if (lat_samples > 0) {
        r.avgReadLatencyNs = lat_weighted /
                             static_cast<double>(lat_samples) /
                             kNanosecond;
    }
    return r;
}

SimReport
runSystem(const SystemConfig &config)
{
    if (config.shards >= 1)
        return runShardedSystem(config);
    System sys(config);
    return sys.run();
}

} // namespace mellowsim
