#include "system/sharded.hh"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "nvm/controller.hh"
#include "nvm/interleave.hh"
#include "nvm/memory_system.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/shard.hh"
#include "sim/shard_port.hh"
#include "sim/stats.hh"
#include "workload/workload.hh"

namespace mellowsim
{

namespace
{

// --- Cross-shard message vocabulary ---------------------------------
//
// MemRequest itself cannot cross the seam (it owns a std::function);
// the port protocol is a POD re-encoding of the MemoryPort interface.

enum class ShardReqKind : std::uint8_t
{
    Read,
    Writeback,
    Eager,
};

/** Front -> channel: one memory request, channel-local address. */
struct ShardRequestMsg
{
    ShardReqKind kind = ShardReqKind::Read;
    LogicalAddr addr{0};
    /** Front-side completion key; meaningful for Read only. */
    std::uint64_t reqId = 0;
};

enum class ShardRespKind : std::uint8_t
{
    ReadDone,
    EagerCredit,
};

/** Channel -> front: read data delivered, or an eager credit back. */
struct ShardResponseMsg
{
    ShardRespKind kind = ShardRespKind::ReadDone;
    std::uint64_t reqId = 0;
};

using RequestPort = ShardPort<ShardRequestMsg>;
using ResponsePort = ShardPort<ShardResponseMsg>;

/**
 * Request rings hold at most one epoch of sends (every message minted
 * in epoch e is drained in epoch e+1), but one epoch can carry a
 * burst of write-backs on top of MSHR-bounded reads; 4096 slots is
 * comfortably past any reachable burst and still only 64 KiB.
 */
constexpr std::size_t kRequestRingSlots = 4096;

/**
 * One channel's memory controller on its own event queue.
 *
 * Everything here is shard-owned: the epoch driver confines the task
 * to one thread and the only shared edges are the two ports.
 */
class ChannelTask : public ShardTask
{
  public:
    ChannelTask(const MemControllerConfig &config, Lookahead lookahead,
                double capacityFloor, RequestPort::Receiver input,
                ResponsePort::Sender output)
        : _lookahead(lookahead), _capacityFloor(capacityFloor),
          _input(std::move(input)), _output(std::move(output)),
          _controller(_queue, config)
    {
        _controller.setEagerCompleteCallback([this] {
            sendResponse(ShardRespKind::EagerCredit, 0);
        });
    }

    void
    runEpoch(Tick end) override
    {
        _input.drainUntil(end, [this](Tick when, ShardRequestMsg msg) {
            auto apply = [this, msg] { applyRequest(msg); };
            static_assert(EventQueue::fitsInline<decltype(apply)>(),
                          "request-apply callback must use the inline "
                          "slot");
            _queue.schedule(when, std::move(apply));
        });
        _events += _queue.run(end);
    }

    [[nodiscard]] bool
    quiescent() const override
    {
        return _input.pending() == 0 && _controller.idle();
    }

    [[nodiscard]] bool
    abortRequested() const override
    {
        if (_capacityFloor <= 0.0)
            return false;
        const FaultModel *fm = _controller.faultModel();
        return fm != nullptr &&
               fm->effectiveCapacityFraction() <= _capacityFloor;
    }

    [[nodiscard]] MemoryController &controller() { return _controller; }
    [[nodiscard]] const MemoryController &
    controller() const
    {
        return _controller;
    }
    [[nodiscard]] EventQueue &queue() { return _queue; }
    [[nodiscard]] std::uint64_t events() const { return _events; }

  private:
    void
    applyRequest(const ShardRequestMsg &msg)
    {
        switch (msg.kind) {
        case ShardReqKind::Read:
            _controller.read(msg.addr, [this, id = msg.reqId] {
                sendResponse(ShardRespKind::ReadDone, id);
            });
            break;
        case ShardReqKind::Writeback:
            _controller.writeback(msg.addr);
            break;
        case ShardReqKind::Eager: {
            bool accepted = _controller.eagerWrite(msg.addr);
            // The router's credits over-approximate eager-queue
            // occupancy, so channel-side admission can never fail.
            panic_if(!accepted,
                     "eager write rejected despite credit protocol");
            break;
        }
        }
    }

    void
    sendResponse(ShardRespKind kind, std::uint64_t reqId)
    {
        ShardResponseMsg msg;
        msg.kind = kind;
        msg.reqId = reqId;
        _output.send(_queue.curTick() + _lookahead, msg);
    }

    Lookahead _lookahead;
    double _capacityFloor;
    RequestPort::Receiver _input;
    ResponsePort::Sender _output;
    EventQueue _queue;
    MemoryController _controller;
    std::uint64_t _events = 0;
};

/**
 * The front-end task: workload + core + cache hierarchy, with a
 * MemoryPort implementation that routes requests to channel shards.
 */
class FrontTask : public ShardTask, public MemoryPort
{
  public:
    FrontTask(const SystemConfig &config, Workload &workload,
              Lookahead lookahead, const ChannelInterleave &interleave)
        : _lookahead(lookahead), _interleave(interleave),
          _credits(interleave.numChannels(),
                   config.memory.eagerQueueSize)
    {
        _requests.reserve(interleave.numChannels());
        _responses.reserve(interleave.numChannels());
        _hierarchy = std::make_unique<Hierarchy>(
            _queue, config.hierarchy, *this, config.seed);
        _core = std::make_unique<TraceCore>(_queue, config.core,
                                            workload, *_hierarchy);
    }

    /** Wire channel @p c's ports; call once per channel, in order. */
    void
    connectChannel(RequestPort::Sender request,
                   ResponsePort::Receiver response)
    {
        _requests.push_back(std::move(request));
        _responses.push_back(std::move(response));
    }

    // --- MemoryPort (the router) ----------------------------------
    void
    read(LogicalAddr addr, ReadCallback onComplete) override
    {
        const std::uint64_t id = _nextReqId++;
        _pendingReads.emplace(id, std::move(onComplete));
        ShardRequestMsg msg;
        msg.kind = ShardReqKind::Read;
        msg.addr = _interleave.localAddr(addr);
        msg.reqId = id;
        sendRequest(_interleave.channelOf(addr), msg);
    }

    void
    writeback(LogicalAddr addr) override
    {
        ShardRequestMsg msg;
        msg.kind = ShardReqKind::Writeback;
        msg.addr = _interleave.localAddr(addr);
        sendRequest(_interleave.channelOf(addr), msg);
    }

    bool
    eagerWrite(LogicalAddr addr) override
    {
        const ChannelId channel = _interleave.channelOf(addr);
        // mlint: allow(value-escape): channel id indexes the router's
        // per-channel credit table.
        unsigned &credits = _credits[channel.value()];
        if (credits == 0) {
            ++_rejectedEager;
            return false;
        }
        --credits;
        ShardRequestMsg msg;
        msg.kind = ShardReqKind::Eager;
        msg.addr = _interleave.localAddr(addr);
        sendRequest(channel, msg);
        return true;
    }

    [[nodiscard]] bool
    eagerQueueHasSpace() const override
    {
        for (unsigned c : _credits) {
            if (c > 0)
                return true;
        }
        return false;
    }

    // --- ShardTask --------------------------------------------------
    void
    runEpoch(Tick end) override
    {
        for (std::size_t c = 0; c < _responses.size(); ++c) {
            // The receiver's position IS the channel identity; eager
            // credits carry no channel of their own.
            _responses[c].drainUntil(
                end, [this, c](Tick when, ShardResponseMsg msg) {
                    onResponse(c, when, msg);
                });
        }
        if (_coreDone)
            return;
        // Mirror the monolithic run loop: stop stepping the moment
        // the core retires its last instruction; events behind the
        // finish tick are abandoned, exactly as System::run abandons
        // its remaining queue.
        while (!_core->done() && _queue.minPendingTick() < end) {
            _queue.step();
            ++_events;
        }
        if (_core->done())
            _coreDone = true;
    }

    [[nodiscard]] bool
    quiescent() const override
    {
        // In-flight eager credits are deliberately ignored: once the
        // core is done and every read has come back, a credit still
        // in a ring can only enable work that will never be asked
        // for. Pending ReadDone messages keep _pendingReads nonempty
        // until drained, so they do hold the run open.
        return _coreDone && _pendingReads.empty();
    }

    [[nodiscard]] TraceCore &core() { return *_core; }
    [[nodiscard]] const TraceCore &core() const { return *_core; }
    [[nodiscard]] Hierarchy &hierarchy() { return *_hierarchy; }
    [[nodiscard]] const Hierarchy &
    hierarchy() const
    {
        return *_hierarchy;
    }
    [[nodiscard]] EventQueue &queue() { return _queue; }
    [[nodiscard]] std::uint64_t events() const { return _events; }
    [[nodiscard]] std::uint64_t rejectedEager() const
    {
        return _rejectedEager;
    }

  private:
    void
    sendRequest(ChannelId channel, const ShardRequestMsg &msg)
    {
        // mlint: allow(value-escape): channel id indexes the router's
        // per-channel request senders.
        _requests[channel.value()].send(_queue.curTick() + _lookahead,
                                        msg);
    }

    void
    onResponse(std::size_t channel, Tick when,
               const ShardResponseMsg &msg)
    {
        switch (msg.kind) {
        case ShardRespKind::ReadDone: {
            auto it = _pendingReads.find(msg.reqId);
            panic_if(it == _pendingReads.end(),
                     "ReadDone for unknown request %llu",
                     static_cast<unsigned long long>(msg.reqId));
            ReadCallback cb = std::move(it->second);
            _pendingReads.erase(it);
            if (_coreDone)
                return; // bookkeeping only; the model is finished
            auto deliver = [cb = std::move(cb)] { cb(); };
            static_assert(EventQueue::fitsInline<decltype(deliver)>(),
                          "read-return callback must use the inline "
                          "slot");
            _queue.schedule(when, std::move(deliver));
            break;
        }
        case ShardRespKind::EagerCredit:
            // Credits are applied at drain time (the epoch boundary)
            // rather than at `when`: the LLC only consults them on
            // its periodic scan, and the boundary is identical in
            // serial and threaded runs, so determinism holds either
            // way.
            ++_credits[channel];
            break;
        }
    }

    Lookahead _lookahead;
    const ChannelInterleave &_interleave;
    EventQueue _queue;
    std::unique_ptr<Hierarchy> _hierarchy;
    std::unique_ptr<TraceCore> _core;

    std::vector<RequestPort::Sender> _requests;
    std::vector<ResponsePort::Receiver> _responses;
    /** Outstanding eager-write credits per channel. */
    std::vector<unsigned> _credits;
    /** Eager writes refused at the router for lack of credit. */
    std::uint64_t _rejectedEager = 0;

    std::uint64_t _nextReqId = 1;
    std::unordered_map<std::uint64_t, ReadCallback> _pendingReads;

    bool _coreDone = false;
    std::uint64_t _events = 0;
};

/** Controller-side tallies of one channel as a partial SimReport. */
SimReport
channelPartialReport(const MemoryController &ctrl,
                     const std::string &workload,
                     const std::string &policy)
{
    SimReport p;
    p.workload = workload;
    p.policy = policy;

    const MemControllerStats &m = ctrl.stats();
    p.memReads = m.issuedReads.value();
    p.forwardedReads = m.forwardedReads.value();
    p.issuedNormalWrites = m.issuedNormalWrites.value();
    p.issuedSlowWrites = m.issuedSlowWrites.value();
    p.issuedEagerNormal = m.issuedEagerNormal.value();
    p.issuedEagerSlow = m.issuedEagerSlow.value();
    p.cancelledWrites = m.cancelledWrites.value();
    p.pausedWrites = m.pausedWrites.value();
    p.drainEntries = m.drainEntries.value();
    p.writeRetries = m.retriedWrites.value();

    const EnergyStats &e = ctrl.energyModel().stats();
    p.readEnergyPj += e.readPj;
    p.writeEnergyPj += e.writePj;
    p.totalEnergyPj += e.totalPj();

    if (const FaultModel *fm = ctrl.faultModel()) {
        const FaultStats &fs = fm->stats();
        p.transientWriteFailures = fs.transientFailures;
        p.permanentFaults = fs.permanentFaults;
        p.faultRepairsUsed = fs.repairsUsed;
        p.retiredLines = fs.retiredLines;
        p.deadLines = fs.deadLines;
        p.firstFaultTick = fs.firstFaultTick;
        p.firstUncorrectableTick = fs.firstUncorrectableTick;
        p.effectiveCapacityFraction = fm->effectiveCapacityFraction();
    }
    return p;
}

} // namespace

SimReport
runShardedSystem(const SystemConfig &config, ShardRunInfo *info)
{
    fatal_if(config.shards == 0,
             "runShardedSystem needs shards >= 1 (0 selects the "
             "monolithic path)");

    // The same config normalization System::build performs.
    SystemConfig cfg = config;
    cfg.memory.policy = cfg.policy;
    cfg.hierarchy.llc.eagerEnabled = cfg.policy.eager;
    cfg.memory.fault.seed ^= cfg.seed * 0x2545F4914F6CDD1Dull;

    const Lookahead la = channelLookahead(cfg.memory.timing);
    const ChannelInterleave interleave(cfg.memory.geometry,
                                       cfg.numChannels);

    WorkloadPtr workload = makeWorkload(cfg.workloadName, cfg.seed);
    fatal_if(workload == nullptr, "system needs a workload");

    FrontTask front(cfg, *workload, la, interleave);

    std::vector<std::unique_ptr<RequestPort>> requestPorts;
    std::vector<std::unique_ptr<ResponsePort>> responsePorts;
    std::vector<std::unique_ptr<ChannelTask>> channels;
    for (unsigned c = 0; c < cfg.numChannels; ++c) {
        requestPorts.push_back(
            std::make_unique<RequestPort>(kRequestRingSlots));
        responsePorts.push_back(std::make_unique<ResponsePort>());
        channels.push_back(std::make_unique<ChannelTask>(
            perChannelConfig(cfg.memory, cfg.numChannels, c), la,
            cfg.memory.fault.capacityFloorFraction,
            requestPorts.back()->receiver(),
            responsePorts.back()->sender()));
        front.connectChannel(requestPorts.back()->sender(),
                             responsePorts.back()->receiver());
    }

    // Functional warm-up from the front of the workload stream,
    // exactly as the monolithic path does it.
    std::uint64_t warm_instrs = 0;
    while (warm_instrs < cfg.warmupInstructions) {
        Op op = workload->next();
        warm_instrs += op.gap + 1;
        front.hierarchy().prime(LogicalAddr(op.addr), op.isWrite);
    }

    front.core().start(cfg.instructions);

    // Task order is structural — front first, channels by index — and
    // identical for every shard/thread count; the serial oracle steps
    // exactly this sequence per epoch.
    std::vector<ShardTask *> tasks;
    tasks.reserve(1 + channels.size());
    tasks.push_back(&front);
    for (auto &channel : channels)
        tasks.push_back(channel.get());

    EpochOutcome outcome = runShardEpochs(tasks, la, cfg.shards,
                                          /*until=*/0, cfg.maxSimTicks);
    if (outcome.hitWall) {
        fatal("simulation exceeded the %f s safety wall",
              ticksToSeconds(cfg.maxSimTicks));
    }
    const bool capacity_exhausted = outcome.aborted;
    panic_if(!capacity_exhausted && !front.core().done(),
             "shard group quiesced before the core finished");

    for (auto &channel : channels)
        channel->controller().finalize();

    if (info != nullptr) {
        info->events = front.events();
        for (const auto &channel : channels)
            info->events += channel->events();
        info->epochs = outcome.epochs;
    }

    // --- Report assembly (DESIGN.md §15 merge order) ----------------
    // Front-side fields first, then every channel's partial report
    // folded in via SimReport::merge, then the derived rates that
    // merge cannot compute.
    SimReport r;
    r.workload = workload->info().name;
    r.policy = cfg.policy.name;
    r.status = capacity_exhausted ? ReportStatus::CapacityExhausted
                                  : ReportStatus::Ok;
    r.capacityFloorReached = capacity_exhausted;
    r.instructions = front.core().stats().instructions;
    if (capacity_exhausted) {
        r.instructions = front.core().instructionsDispatched();
        r.simTicks = outcome.endTick;
        if (r.simTicks > 0) {
            double cycles = static_cast<double>(r.simTicks) /
                            static_cast<double>(cfg.core.clockPeriod);
            r.ipc = static_cast<double>(r.instructions) / cycles;
        }
    } else {
        r.simTicks = front.core().finishTick();
        r.ipc = front.core().ipc();
    }

    const HierarchyStats &h = front.hierarchy().stats();
    r.mpki = r.instructions
                 ? 1000.0 * static_cast<double>(h.llcMisses.value()) /
                       static_cast<double>(r.instructions)
                 : 0.0;

    const LlcStats &llc = front.hierarchy().llc().stats();
    r.llcDemandReads = llc.demandReads.value();
    r.llcDemandWrites = llc.demandWrites.value();
    r.llcMisses = llc.misses.value();
    r.writebacksToMem = llc.writebacksToMem.value();
    r.eagerSent = llc.eagerSent.value();
    r.eagerWasted = llc.eagerWasted.value();

    stats::Average read_latency;
    double lifetime = cfg.maxReportedLifetimeYears;
    double util_sum = 0.0;
    double drain_sum = 0.0;
    for (auto &channel : channels) {
        const MemoryController &ctrl = channel->controller();
        r.merge(channelPartialReport(ctrl, r.workload, r.policy));
        read_latency.merge(ctrl.stats().readLatency);
        lifetime = std::min(
            lifetime, ctrl.wearTracker().lifetimeYears(r.simTicks));
        util_sum += ctrl.avgBankUtilization();
        drain_sum += ctrl.drainTimeFraction();

        // Quota activity aggregates as a maximum (the monolithic
        // assembly's rule), which merge's additive fold cannot
        // express — handled here instead.
        if (const WearQuota *q = ctrl.wearQuota()) {
            r.quotaPeriods = std::max(r.quotaPeriods, q->numPeriods());
            for (unsigned b = 0; b < ctrl.config().geometry.numBanks;
                 ++b) {
                r.quotaSlowOnlyPeriods =
                    std::max(r.quotaSlowOnlyPeriods,
                             q->slowOnlyPeriods(BankId(b)));
            }
        }
    }
    r.lifetimeYears = lifetime;
    r.avgBankUtilization =
        util_sum / static_cast<double>(channels.size());
    r.drainTimeFraction =
        drain_sum / static_cast<double>(channels.size());
    if (read_latency.count() > 0) {
        r.avgReadLatencyNs =
            read_latency.sum() /
            static_cast<double>(read_latency.count()) / kNanosecond;
    }
    return r;
}

} // namespace mellowsim
