/**
 * @file
 * Sharded parallel simulation of ONE memory system (DESIGN.md §15).
 *
 * The monolithic System runs workload, caches and every channel
 * controller in a single EventQueue. ShardedSystem partitions the same
 * model across ShardTasks driven by the conservative-lookahead epoch
 * driver (sim/shard.hh):
 *
 *   - a front-end task owning workload + core + cache hierarchy, whose
 *     MemoryPort is a router that turns LLC misses / write-backs /
 *     eager writes into POD messages on per-channel ShardPorts;
 *   - one channel task per memory channel, owning that channel's
 *     MemoryController (banks, wear, quota, fault state) and its own
 *     slab-pooled EventQueue.
 *
 * Lookahead is derived from the device timing floor (see
 * channelLookahead), so every request reaches its channel exactly one
 * epoch after it was sent and responses flow back the same way. The
 * cross-shard hop adds one lookahead of request latency (two for a
 * read round trip) relative to the monolithic model — a deliberate,
 * documented modeling delta. The determinism contract is *within* the
 * sharded model: `shards = 1` steps the tasks serially in index order
 * and must produce byte-identical fingerprints and SimReports to any
 * threaded run (tools/determinism_check --threads audits this).
 *
 * Eager write admission crosses the seam as a credit protocol: the
 * router holds `eagerQueueSize` credits per channel, spends one per
 * eager send, and the channel returns a credit message each time an
 * eager write completes. Credits over-approximate occupancy (a credit
 * in flight still counts as queued), so the channel-side eager queue
 * can never overflow — the channel task panics if it ever would.
 */

#ifndef MELLOWSIM_SYSTEM_SHARDED_HH
#define MELLOWSIM_SYSTEM_SHARDED_HH

#include <algorithm>
#include <cstdint>

#include "nvm/timing.hh"
#include "sim/strong_types.hh"
#include "system/report.hh"
#include "system/system.hh"

namespace mellowsim
{

/**
 * The conservative-synchronization window of the sharded system,
 * derived from the device's timing floor: the fastest cross-shard
 * consequence of a request is bounded below by the data-bus burst and
 * the array access, so min(tBURST, tRCD + tCAS) is a sound window.
 * mellow-configcheck's `lookahead` rule verifies the derivation stays
 * at or above one controller clock (tCK) for every shipped device.
 */
[[nodiscard]] inline Lookahead
channelLookahead(const NvmTimingParams &timing)
{
    return Lookahead(
        std::min<Tick>(timing.tBurst, timing.tRCD + timing.tCAS));
}

/**
 * Host-side observability of one sharded run, for the perf harness
 * (bench/micro_kernel's events-per-host-second and parallel-speedup
 * metrics). Deliberately not part of SimReport: host throughput is
 * not model output and must not perturb the fingerprint contract.
 */
struct ShardRunInfo
{
    /** Events fired across every shard's EventQueue. */
    std::uint64_t events = 0;
    /** Lookahead epochs the driver crossed. */
    std::uint64_t epochs = 0;
};

/**
 * Run @p config sharded: front-end + one task per channel, on
 * `config.shards` worker threads (1 = the serial oracle). Returns the
 * same SimReport shape as System::run(), assembled by folding
 * per-shard partial reports through SimReport::merge. When @p info is
 * non-null it receives the host-side run counters.
 */
SimReport runShardedSystem(const SystemConfig &config,
                           ShardRunInfo *info = nullptr);

} // namespace mellowsim

#endif // MELLOWSIM_SYSTEM_SHARDED_HH
