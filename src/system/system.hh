/**
 * @file
 * Full-system assembly: workload -> core -> cache hierarchy ->
 * resistive memory controller, per Tables I and II.
 *
 * This is the library's primary entry point:
 *
 *     SystemConfig cfg;
 *     cfg.workloadName = "stream";
 *     cfg.policy = policies::beMellow().withSC().withWQ();
 *     System sys(cfg);
 *     SimReport r = sys.run();
 */

#ifndef MELLOWSIM_SYSTEM_SYSTEM_HH
#define MELLOWSIM_SYSTEM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <string>

#include "cache/hierarchy.hh"
#include "check/check_config.hh"
#include "cpu/core.hh"
#include "mellow/policy.hh"
#include "nvm/memory_system.hh"
#include "sim/event_queue.hh"
#include "system/report.hh"
#include "workload/workload.hh"

namespace mellowsim
{

class InvariantRegistry;

/** Complete configuration of one simulation. */
struct SystemConfig
{
    /** One of workloadNames(), or empty when `workload` is supplied. */
    std::string workloadName = "stream";

    /** Write policy under test (Table III). */
    WritePolicyConfig policy;

    /** Detailed-simulation length in instructions. */
    std::uint64_t instructions = 20'000'000;

    /**
     * Warm-up instructions: the cache arrays are primed functionally
     * (no timing, no memory traffic, no statistics) from the front of
     * the workload stream before detailed simulation begins —
     * mirroring the paper's warm-up + detailed-simulation split.
     */
    std::uint64_t warmupInstructions = 5'000'000;

    std::uint64_t seed = 1;

    CoreConfig core;
    HierarchyConfig hierarchy;
    MemControllerConfig memory;
    /** Memory channels; 1 matches the paper's evaluation. */
    unsigned numChannels = 1;

    /**
     * Shard-parallel execution (system/sharded.hh). 0 — the default —
     * runs the classic monolithic System on one EventQueue. N >= 1
     * partitions the model into a front-end task plus one task per
     * channel and drives them with the conservative-lookahead epoch
     * driver on N worker threads; 1 is the serial oracle, which must
     * be byte-identical to every threaded run. The sharded model adds
     * one lookahead of cross-shard request latency, so its reports are
     * compared sharded-vs-sharded, never sharded-vs-monolithic.
     * Invariant checking (`checks`) only exists on the monolithic
     * path.
     */
    unsigned shards = 0;

    /** Hard wall on simulated time (safety against pathology). */
    // mlint: allow(timing-literal): simulation safety wall, not a
    // device timing
    Tick maxSimTicks = 10 * kSecond;

    /**
     * Runtime invariant auditing (src/check/). Only consulted when
     * the library was built with MELLOWSIM_CHECKS=ON; otherwise the
     * checking layer compiles to nothing.
     */
    CheckConfig checks;

    /**
     * Reported lifetimes are capped here (a workload that wrote
     * almost nothing has a mathematically infinite lifetime, which
     * would poison normalisations and geometric means downstream).
     */
    double maxReportedLifetimeYears = 1000.0;
};

/**
 * Owns every component of one simulated machine and runs it to
 * completion.
 */
class System
{
  public:
    /** Build a system over a named synthetic workload. */
    explicit System(const SystemConfig &config);

    /** Build a system over a caller-provided workload. */
    System(const SystemConfig &config, WorkloadPtr workload);

    ~System();
    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Run to the configured instruction count and report. */
    SimReport run();

    // Component access for examples/tests that want to inspect state.
    [[nodiscard]] EventQueue &eventQueue() { return _eventq; }
    [[nodiscard]] MemorySystem &memory() { return *_memory; }
    /** Channel 0's controller (the only one in the paper's setup). */
    [[nodiscard]] MemoryController &controller()
    {
        return _memory->channel(ChannelId(0));
    }
    [[nodiscard]] Hierarchy &hierarchy() { return *_hierarchy; }
    [[nodiscard]] TraceCore &core() { return *_core; }
    [[nodiscard]] Workload &workload() { return *_workload; }
    [[nodiscard]] const SystemConfig &config() const { return _config; }

    /**
     * The invariant-checker registry, or nullptr when checking is
     * compiled out (MELLOWSIM_CHECKS=OFF) or disabled in the config.
     */
    [[nodiscard]] const InvariantRegistry *invariantChecks() const
    {
        return _checks.get();
    }

  private:
    void build();

    SystemConfig _config;
    EventQueue _eventq;
    WorkloadPtr _workload;
    std::unique_ptr<MemorySystem> _memory;
    std::unique_ptr<Hierarchy> _hierarchy;
    std::unique_ptr<TraceCore> _core;
    std::unique_ptr<InvariantRegistry> _checks;
    bool _ran = false;
};

/** Convenience: configure + run in one call. */
SimReport runSystem(const SystemConfig &config);

} // namespace mellowsim

#endif // MELLOWSIM_SYSTEM_SYSTEM_HH
