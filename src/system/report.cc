#include "system/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/logging.hh"

namespace mellowsim
{

void
SimReport::merge(const SimReport &other)
{
    panic_if(workload != other.workload || policy != other.policy,
             "merging reports from different runs: %s/%s vs %s/%s",
             workload.c_str(), policy.c_str(), other.workload.c_str(),
             other.policy.c_str());

    // A merged run ended badly if any shard did.
    if (other.status == ReportStatus::CapacityExhausted)
        status = ReportStatus::CapacityExhausted;

    instructions += other.instructions;
    simTicks = std::max(simTicks, other.simTicks);

    llcDemandReads += other.llcDemandReads;
    llcDemandWrites += other.llcDemandWrites;
    llcMisses += other.llcMisses;
    writebacksToMem += other.writebacksToMem;
    eagerSent += other.eagerSent;
    eagerWasted += other.eagerWasted;

    memReads += other.memReads;
    forwardedReads += other.forwardedReads;
    issuedNormalWrites += other.issuedNormalWrites;
    issuedSlowWrites += other.issuedSlowWrites;
    issuedEagerNormal += other.issuedEagerNormal;
    issuedEagerSlow += other.issuedEagerSlow;
    cancelledWrites += other.cancelledWrites;
    pausedWrites += other.pausedWrites;
    drainEntries += other.drainEntries;

    readEnergyPj += other.readEnergyPj;
    writeEnergyPj += other.writeEnergyPj;
    totalEnergyPj += other.totalEnergyPj;

    quotaPeriods += other.quotaPeriods;
    quotaSlowOnlyPeriods += other.quotaSlowOnlyPeriods;

    writeRetries += other.writeRetries;
    transientWriteFailures += other.transientWriteFailures;
    permanentFaults += other.permanentFaults;
    faultRepairsUsed += other.faultRepairsUsed;
    retiredLines += other.retiredLines;
    deadLines += other.deadLines;

    // "Earliest nonzero": zero means the shard never saw one.
    if (firstFaultTick == 0 ||
        (other.firstFaultTick != 0 &&
         other.firstFaultTick < firstFaultTick)) {
        firstFaultTick = other.firstFaultTick;
    }
    if (firstUncorrectableTick == 0 ||
        (other.firstUncorrectableTick != 0 &&
         other.firstUncorrectableTick < firstUncorrectableTick)) {
        firstUncorrectableTick = other.firstUncorrectableTick;
    }

    effectiveCapacityFraction =
        std::min(effectiveCapacityFraction,
                 other.effectiveCapacityFraction);
    capacityFloorReached =
        capacityFloorReached || other.capacityFloorReached;
}

namespace
{

/** Append one "name value" fingerprint line; doubles use full
 * precision. */
void
fingerprintLine(std::ostringstream &out, const char *name, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out << name << ' ' << buf << '\n';
}

void
fingerprintLine(std::ostringstream &out, const char *name,
                std::uint64_t v)
{
    out << name << ' ' << v << '\n';
}

} // namespace

std::string
reportFingerprint(const SimReport &r)
{
    std::ostringstream out;
    out << "workload " << r.workload << '\n';
    out << "policy " << r.policy << '\n';
    out << "status " << reportStatusName(r.status) << '\n';
    fingerprintLine(out, "capacityFloorReached",
                    static_cast<std::uint64_t>(r.capacityFloorReached));
    fingerprintLine(out, "instructions", r.instructions);
    fingerprintLine(out, "simTicks",
                    static_cast<std::uint64_t>(r.simTicks));
    fingerprintLine(out, "ipc", r.ipc);
    fingerprintLine(out, "lifetimeYears", r.lifetimeYears);
    fingerprintLine(out, "avgBankUtilization", r.avgBankUtilization);
    fingerprintLine(out, "drainTimeFraction", r.drainTimeFraction);
    fingerprintLine(out, "mpki", r.mpki);
    fingerprintLine(out, "llcDemandReads", r.llcDemandReads);
    fingerprintLine(out, "llcDemandWrites", r.llcDemandWrites);
    fingerprintLine(out, "llcMisses", r.llcMisses);
    fingerprintLine(out, "writebacksToMem", r.writebacksToMem);
    fingerprintLine(out, "eagerSent", r.eagerSent);
    fingerprintLine(out, "eagerWasted", r.eagerWasted);
    fingerprintLine(out, "memReads", r.memReads);
    fingerprintLine(out, "forwardedReads", r.forwardedReads);
    fingerprintLine(out, "issuedNormalWrites", r.issuedNormalWrites);
    fingerprintLine(out, "issuedSlowWrites", r.issuedSlowWrites);
    fingerprintLine(out, "issuedEagerNormal", r.issuedEagerNormal);
    fingerprintLine(out, "issuedEagerSlow", r.issuedEagerSlow);
    fingerprintLine(out, "cancelledWrites", r.cancelledWrites);
    fingerprintLine(out, "pausedWrites", r.pausedWrites);
    fingerprintLine(out, "drainEntries", r.drainEntries);
    fingerprintLine(out, "avgReadLatencyNs", r.avgReadLatencyNs);
    fingerprintLine(out, "readEnergyPj", r.readEnergyPj.value());
    fingerprintLine(out, "writeEnergyPj", r.writeEnergyPj.value());
    fingerprintLine(out, "totalEnergyPj", r.totalEnergyPj.value());
    fingerprintLine(out, "quotaPeriods", r.quotaPeriods);
    fingerprintLine(out, "quotaSlowOnlyPeriods", r.quotaSlowOnlyPeriods);
    fingerprintLine(out, "writeRetries", r.writeRetries);
    fingerprintLine(out, "transientWriteFailures",
                    r.transientWriteFailures);
    fingerprintLine(out, "permanentFaults", r.permanentFaults);
    fingerprintLine(out, "faultRepairsUsed", r.faultRepairsUsed);
    fingerprintLine(out, "retiredLines", r.retiredLines);
    fingerprintLine(out, "deadLines", r.deadLines);
    fingerprintLine(out, "firstFaultTick",
                    static_cast<std::uint64_t>(r.firstFaultTick));
    fingerprintLine(out, "firstUncorrectableTick",
                    static_cast<std::uint64_t>(r.firstUncorrectableTick));
    fingerprintLine(out, "effectiveCapacityFraction",
                    r.effectiveCapacityFraction);
    return out.str();
}

namespace
{

std::string
fmt(const char *format, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, v);
    return buf;
}

std::string
columnValue(const SimReport &r, const std::string &col)
{
    if (col == "workload")
        return r.workload;
    if (col == "policy")
        return r.policy;
    if (col == "status")
        return reportStatusName(r.status);
    if (col == "ipc")
        return fmt("%.3f", r.ipc);
    if (col == "lifetime")
        return std::isinf(r.lifetimeYears) ? "inf"
                                           : fmt("%.2f", r.lifetimeYears);
    if (col == "utilization")
        return fmt("%.3f", r.avgBankUtilization);
    if (col == "drain")
        return fmt("%.4f", r.drainTimeFraction);
    if (col == "mpki")
        return fmt("%.2f", r.mpki);
    if (col == "energy")
        return fmt("%.3e", r.totalEnergyPj.value());
    if (col == "reads")
        return std::to_string(r.memReads);
    if (col == "writes")
        return std::to_string(r.totalBankWrites());
    if (col == "retries")
        return std::to_string(r.writeRetries);
    if (col == "faults")
        return std::to_string(r.permanentFaults);
    if (col == "retired")
        return std::to_string(r.retiredLines);
    if (col == "dead")
        return std::to_string(r.deadLines);
    if (col == "first_fault_ns") {
        return r.firstFaultTick == 0
                   ? "never"
                   : fmt("%.1f", ticksToNs(r.firstFaultTick));
    }
    if (col == "first_ue_ns") {
        return r.firstUncorrectableTick == 0
                   ? "never"
                   : fmt("%.1f", ticksToNs(r.firstUncorrectableTick));
    }
    if (col == "capacity")
        return fmt("%.6f", r.effectiveCapacityFraction);
    fatal("unknown report column '%s'", col.c_str());
}

} // namespace

const char *
reportStatusName(ReportStatus status)
{
    switch (status) {
      case ReportStatus::Ok:
        return "ok";
      case ReportStatus::CapacityExhausted:
        return "capacity-exhausted";
    }
    panic("unreachable report status");
}

std::string
reportsToCsv(const std::vector<SimReport> &reports)
{
    std::ostringstream out;
    out << "workload,policy,status,instructions,sim_ns,ipc,"
           "lifetime_years,"
           "bank_utilization,drain_fraction,mpki,"
           "llc_demand_reads,llc_demand_writes,llc_misses,"
           "writebacks_to_mem,eager_sent,eager_wasted,"
           "mem_reads,forwarded_reads,normal_writes,slow_writes,"
           "eager_normal,eager_slow,cancelled_writes,paused_writes,"
           "drain_entries,"
           "avg_read_latency_ns,read_energy_pj,write_energy_pj,"
           "total_energy_pj,quota_periods,quota_slow_only,"
           "write_retries,transient_failures,permanent_faults,"
           "fault_repairs,retired_lines,dead_lines,first_fault_ns,"
           "first_ue_ns,effective_capacity\n";
    for (const SimReport &r : reports) {
        out << r.workload << ',' << r.policy << ','
            << reportStatusName(r.status) << ',' << r.instructions
            << ',' << fmt("%.1f", ticksToNs(r.simTicks)) << ','
            << fmt("%.4f", r.ipc) << ','
            << (std::isinf(r.lifetimeYears)
                    ? std::string("inf")
                    : fmt("%.3f", r.lifetimeYears))
            << ',' << fmt("%.4f", r.avgBankUtilization) << ','
            << fmt("%.5f", r.drainTimeFraction) << ','
            << fmt("%.3f", r.mpki) << ',' << r.llcDemandReads << ','
            << r.llcDemandWrites << ',' << r.llcMisses << ','
            << r.writebacksToMem << ',' << r.eagerSent << ','
            << r.eagerWasted << ',' << r.memReads << ','
            << r.forwardedReads << ',' << r.issuedNormalWrites << ','
            << r.issuedSlowWrites << ',' << r.issuedEagerNormal << ','
            << r.issuedEagerSlow << ',' << r.cancelledWrites << ','
            << r.pausedWrites << ',' << r.drainEntries << ','
            << fmt("%.2f", r.avgReadLatencyNs) << ','
            << fmt("%.3e", r.readEnergyPj.value()) << ','
            << fmt("%.3e", r.writeEnergyPj.value()) << ','
            << fmt("%.3e", r.totalEnergyPj.value()) << ','
            << r.quotaPeriods
            << ',' << r.quotaSlowOnlyPeriods << ','
            << r.writeRetries << ',' << r.transientWriteFailures
            << ',' << r.permanentFaults << ',' << r.faultRepairsUsed
            << ',' << r.retiredLines << ',' << r.deadLines << ','
            << fmt("%.1f", ticksToNs(r.firstFaultTick)) << ','
            << fmt("%.1f", ticksToNs(r.firstUncorrectableTick)) << ','
            << fmt("%.6f", r.effectiveCapacityFraction) << '\n';
    }
    return out.str();
}

std::string
reportsToTable(const std::vector<SimReport> &reports,
               const std::vector<std::string> &columns)
{
    // Collect all cells, then size the columns.
    std::vector<std::vector<std::string>> rows;
    rows.push_back(columns);
    for (const SimReport &r : reports) {
        std::vector<std::string> row;
        for (const std::string &col : columns)
            row.push_back(columnValue(r, col));
        rows.push_back(std::move(row));
    }

    std::vector<std::size_t> widths(columns.size(), 0);
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream out;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        for (std::size_t c = 0; c < rows[i].size(); ++c) {
            out << rows[i][c];
            if (c + 1 < rows[i].size()) {
                out << std::string(widths[c] - rows[i][c].size() + 2,
                                   ' ');
            }
        }
        out << '\n';
        if (i == 0) {
            std::size_t total = 0;
            for (std::size_t c = 0; c < widths.size(); ++c)
                total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
            out << std::string(total, '-') << '\n';
        }
    }
    return out.str();
}

} // namespace mellowsim
