#include "system/runner.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "config/device_config.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/sync.hh"

namespace mellowsim
{

namespace
{

std::uint64_t
envInstrs(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    fatal_if(end == v || *end != '\0',
             "%s must be a positive integer (got '%s')", name, v);
    fatal_if(parsed == 0, "%s must be positive", name);
    return parsed;
}

/**
 * Deterministic first-error collection across sweep workers.
 *
 * Workers record (sweep index, exception) and keep draining the queue;
 * rethrow() surfaces the error with the LOWEST sweep index, so the
 * reported failure is the one a serial sweep would have hit first —
 * independent of which worker thread happened to fault first.
 */
class ErrorCollector
{
  public:
    void
    record(std::size_t index, std::exception_ptr error)
    {
        sync::LockGuard guard(_mutex);
        if (index < _firstIndex) {
            _firstIndex = index;
            _firstError = error;
        }
    }

    /** Rethrow the lowest-index recorded error, if any. Call only
     * after every worker has been joined. */
    void
    rethrow()
    {
        sync::LockGuard guard(_mutex);
        if (_firstError)
            std::rethrow_exception(_firstError);
    }

  private:
    sync::Mutex _mutex;
    std::size_t _firstIndex MELLOW_GUARDED_BY(_mutex) =
        std::numeric_limits<std::size_t>::max();
    std::exception_ptr _firstError MELLOW_GUARDED_BY(_mutex);
};

/** Process-wide device selection; set before sweeps, read by
 * makeConfig on the main thread only. */
std::string &
deviceOverrideSlot()
{
    // mlint: allow(confinement-global): written only by
    // setDeviceOverride during argv/env processing, strictly before
    // any ThreadGroup worker exists; read on the main thread by
    // makeConfig. No concurrent access is possible.
    static std::string slot;
    return slot;
}

/** Process-wide shard selection; -1 = unset (fall back to the
 * MELLOWSIM_SHARDS environment variable). Same confinement story as
 * deviceOverrideSlot. */
int &
shardOverrideSlot()
{
    // mlint: allow(confinement-global): written only by
    // setShardOverride during argv/env processing, strictly before
    // any ThreadGroup worker exists; read on the main thread by
    // makeConfig. No concurrent access is possible.
    static int slot = -1;
    return slot;
}

unsigned
parseShardCount(const char *text, const char *what)
{
    char *end = nullptr;
    unsigned long parsed = std::strtoul(text, &end, 10);
    fatal_if(end == text || *end != '\0',
             "%s must be a non-negative integer (got '%s')", what, text);
    return static_cast<unsigned>(parsed);
}

} // namespace

void
setDeviceOverride(const std::string &nameOrPath)
{
    deviceOverrideSlot() = nameOrPath;
}

std::string
activeDeviceName()
{
    if (!deviceOverrideSlot().empty())
        return deviceOverrideSlot();
    const char *env = std::getenv("MELLOWSIM_DEVICE");
    return (env != nullptr) ? std::string(env) : std::string();
}

void
applyDeviceArgs(int &argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--list-devices") == 0) {
            for (const std::string &name : deviceConfigNames())
                std::printf("%s\n", name.c_str());
            std::exit(0);
        } else if (std::strcmp(argv[i], "--device") == 0) {
            fatal_if(i + 1 >= argc, "--device requires a value");
            setDeviceOverride(argv[++i]);
        } else if (std::strncmp(argv[i], "--device=", 9) == 0) {
            setDeviceOverride(argv[i] + 9);
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
}

void
setShardOverride(unsigned shards)
{
    shardOverrideSlot() = static_cast<int>(shards);
}

void
clearShardOverride()
{
    shardOverrideSlot() = -1;
}

unsigned
activeShards()
{
    if (shardOverrideSlot() >= 0)
        return static_cast<unsigned>(shardOverrideSlot());
    const char *env = std::getenv("MELLOWSIM_SHARDS");
    if (env == nullptr || *env == '\0')
        return 0;
    return parseShardCount(env, "MELLOWSIM_SHARDS");
}

void
applyShardSelection(SystemConfig &cfg)
{
    cfg.shards = activeShards();
}

void
applyShardArgs(int &argc, char **argv)
{
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--shards") == 0) {
            fatal_if(i + 1 >= argc, "--shards requires a value");
            setShardOverride(parseShardCount(argv[++i], "--shards"));
        } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
            setShardOverride(parseShardCount(argv[i] + 9, "--shards"));
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
}

SystemConfig
makeConfig(const std::string &workload, const WritePolicyConfig &policy)
{
    SystemConfig cfg;
    cfg.workloadName = workload;
    cfg.policy = policy;
    cfg.instructions = envInstrs("MELLOWSIM_INSTRS", cfg.instructions);
    cfg.warmupInstructions =
        envInstrs("MELLOWSIM_WARMUP", cfg.warmupInstructions);
    applyDeviceSelection(cfg);
    applyShardSelection(cfg);
    return cfg;
}

void
applyDeviceSelection(SystemConfig &cfg)
{
    const std::string device = activeDeviceName();
    if (device.empty())
        return;
    DeviceConfig dev = loadDeviceConfig(device);
    cfg.memory = dev.controller;
    cfg.numChannels = dev.numChannels;
}

SimReport
runOne(const std::string &workload, const WritePolicyConfig &policy)
{
    return runSystem(makeConfig(workload, policy));
}

std::vector<SimReport>
runConfigs(std::vector<SystemConfig> configs, unsigned jobs)
{
    std::vector<SimReport> reports(configs.size());

    if (jobs <= 1 || configs.size() <= 1) {
        for (std::size_t i = 0; i < configs.size(); ++i)
            reports[i] = runSystem(configs[i]);
        return reports;
    }

    // Each System is fully isolated, so a simple work-stealing index
    // preserves bit-identical results in deterministic slots. Workers
    // keep draining after an error so the collector can pick the
    // lowest-index failure rather than the first to arrive.
    sync::TicketCounter next;
    ErrorCollector errors;
    auto worker = [&] {
        for (;;) {
            std::size_t i = next.take();
            if (i >= configs.size())
                return;
            try {
                reports[i] = runSystem(configs[i]);
            } catch (...) {
                errors.record(i, std::current_exception());
            }
        }
    };
    unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(jobs, configs.size()));
    {
        sync::ThreadGroup threads(n);
        for (unsigned t = 0; t < n; ++t)
            threads.spawn(worker);
        // ThreadGroup's destructor joins, so an exception from
        // spawn() cannot leak already-running workers.
    }
    errors.rethrow();
    return reports;
}

std::vector<SimReport>
runConfigs(std::vector<SystemConfig> configs)
{
    unsigned jobs = static_cast<unsigned>(envInstrs(
        "MELLOWSIM_JOBS", sync::hardwareConcurrency()));
    return runConfigs(std::move(configs), jobs);
}

std::vector<SimReport>
runGrid(const std::vector<std::string> &workloads,
        const std::vector<WritePolicyConfig> &policies,
        const std::function<void(SystemConfig &)> &tweak)
{
    std::vector<SystemConfig> configs;
    configs.reserve(workloads.size() * policies.size());
    for (const WritePolicyConfig &policy : policies) {
        for (const std::string &workload : workloads) {
            SystemConfig cfg = makeConfig(workload, policy);
            if (tweak)
                tweak(cfg);
            configs.push_back(std::move(cfg));
        }
    }
    return runConfigs(std::move(configs));
}

const SimReport &
findReport(const std::vector<SimReport> &reports,
           const std::string &workload, const std::string &policy)
{
    for (const SimReport &r : reports) {
        if (r.workload == workload && r.policy == policy)
            return r;
    }
    fatal("no report for workload '%s' policy '%s'", workload.c_str(),
          policy.c_str());
}

std::vector<double>
normalizedMetric(const std::vector<SimReport> &reports,
                 const std::vector<std::string> &workloads,
                 const std::string &policy, const std::string &baseline,
                 const std::function<double(const SimReport &)> &metric)
{
    std::vector<double> out;
    out.reserve(workloads.size());
    for (const std::string &w : workloads) {
        double value = metric(findReport(reports, w, policy));
        double base = metric(findReport(reports, w, baseline));
        fatal_if(base == 0.0,
                 "baseline metric is zero for workload '%s'", w.c_str());
        out.push_back(value / base);
    }
    return out;
}

double
geoMeanNormalized(
    const std::vector<SimReport> &reports,
    const std::vector<std::string> &workloads, const std::string &policy,
    const std::string &baseline,
    const std::function<double(const SimReport &)> &metric)
{
    return stats::geoMean(normalizedMetric(reports, workloads, policy,
                                           baseline, metric));
}

} // namespace mellowsim
