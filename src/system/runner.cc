#include "system/runner.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace mellowsim
{

namespace
{

std::uint64_t
envInstrs(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (v == nullptr || *v == '\0')
        return fallback;
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(v, &end, 10);
    fatal_if(end == v || *end != '\0',
             "%s must be a positive integer (got '%s')", name, v);
    fatal_if(parsed == 0, "%s must be positive", name);
    return parsed;
}

} // namespace

SystemConfig
makeConfig(const std::string &workload, const WritePolicyConfig &policy)
{
    SystemConfig cfg;
    cfg.workloadName = workload;
    cfg.policy = policy;
    cfg.instructions = envInstrs("MELLOWSIM_INSTRS", cfg.instructions);
    cfg.warmupInstructions =
        envInstrs("MELLOWSIM_WARMUP", cfg.warmupInstructions);
    return cfg;
}

SimReport
runOne(const std::string &workload, const WritePolicyConfig &policy)
{
    return runSystem(makeConfig(workload, policy));
}

std::vector<SimReport>
runConfigs(std::vector<SystemConfig> configs)
{
    unsigned jobs = static_cast<unsigned>(
        envInstrs("MELLOWSIM_JOBS",
                  std::max(1u, std::thread::hardware_concurrency())));
    std::vector<SimReport> reports(configs.size());

    if (jobs <= 1 || configs.size() <= 1) {
        for (std::size_t i = 0; i < configs.size(); ++i)
            reports[i] = runSystem(configs[i]);
        return reports;
    }

    // Each System is fully isolated, so a simple work-stealing index
    // preserves bit-identical results in deterministic slots.
    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    auto worker = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= configs.size())
                return;
            try {
                reports[i] = runSystem(configs[i]);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                return;
            }
        }
    };
    std::vector<std::thread> threads;
    unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(jobs, configs.size()));
    threads.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        threads.emplace_back(worker);
    for (auto &t : threads)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
    return reports;
}

std::vector<SimReport>
runGrid(const std::vector<std::string> &workloads,
        const std::vector<WritePolicyConfig> &policies,
        const std::function<void(SystemConfig &)> &tweak)
{
    std::vector<SystemConfig> configs;
    configs.reserve(workloads.size() * policies.size());
    for (const WritePolicyConfig &policy : policies) {
        for (const std::string &workload : workloads) {
            SystemConfig cfg = makeConfig(workload, policy);
            if (tweak)
                tweak(cfg);
            configs.push_back(std::move(cfg));
        }
    }
    return runConfigs(std::move(configs));
}

const SimReport &
findReport(const std::vector<SimReport> &reports,
           const std::string &workload, const std::string &policy)
{
    for (const SimReport &r : reports) {
        if (r.workload == workload && r.policy == policy)
            return r;
    }
    fatal("no report for workload '%s' policy '%s'", workload.c_str(),
          policy.c_str());
}

std::vector<double>
normalizedMetric(const std::vector<SimReport> &reports,
                 const std::vector<std::string> &workloads,
                 const std::string &policy, const std::string &baseline,
                 const std::function<double(const SimReport &)> &metric)
{
    std::vector<double> out;
    out.reserve(workloads.size());
    for (const std::string &w : workloads) {
        double value = metric(findReport(reports, w, policy));
        double base = metric(findReport(reports, w, baseline));
        fatal_if(base == 0.0,
                 "baseline metric is zero for workload '%s'", w.c_str());
        out.push_back(value / base);
    }
    return out;
}

double
geoMeanNormalized(
    const std::vector<SimReport> &reports,
    const std::vector<std::string> &workloads, const std::string &policy,
    const std::string &baseline,
    const std::function<double(const SimReport &)> &metric)
{
    return stats::geoMean(normalizedMetric(reports, workloads, policy,
                                           baseline, metric));
}

} // namespace mellowsim
