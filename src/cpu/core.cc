#include "cpu/core.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mellowsim
{

TraceCore::TraceCore(EventQueue &eventq, const CoreConfig &config,
                     Workload &workload, Hierarchy &hierarchy)
    : _eventq(eventq), _config(config), _workload(workload),
      _hierarchy(hierarchy)
{
    fatal_if(config.clockPeriod == 0, "core clock period must be > 0");
    fatal_if(config.issueWidth == 0, "core issue width must be >= 1");
    fatal_if(config.robSize == 0, "core ROB size must be >= 1");
    fatal_if(config.maxOutstanding == 0, "core needs >= 1 MSHR");
    _hierarchy.setRetryCallback([this] {
        if (_waitingRetry) {
            _waitingRetry = false;
            process();
        }
    });
}

void
TraceCore::start(std::uint64_t instrLimit)
{
    panic_if(_started, "core started twice");
    fatal_if(instrLimit == 0, "instruction limit must be positive");
    _started = true;
    _instrLimit = instrLimit;
    _eventq.scheduleIn(0, [this] { process(); });
}

double
TraceCore::ipc() const
{
    panic_if(!_done, "ipc() before the run finished");
    if (_finishTick == 0)
        return 0.0;
    double cycles = static_cast<double>(_finishTick) /
                    static_cast<double>(_config.clockPeriod);
    return static_cast<double>(_stats.instructions) / cycles;
}

void
TraceCore::advanceDispatch(std::uint64_t instructions)
{
    _subTicks += instructions * _config.clockPeriod;
    _dispatchTick += _subTicks / _config.issueWidth;
    _subTicks %= _config.issueWidth;
}

void
TraceCore::pruneRetired()
{
    while (!_window.empty()) {
        const LoadEntry &front = _window.front();
        if (front.complete == MaxTick || front.complete > _dispatchTick)
            break;
        _window.pop_front();
    }
}

void
TraceCore::onLoadComplete(std::uint64_t id)
{
    auto it = _pendingLoads.find(id);
    panic_if(it == _pendingLoads.end(), "completion for unknown load");
    it->second->complete = _eventq.curTick();
    _pendingLoads.erase(it);
    if (id == _lastLoadId) {
        _lastLoadPending = false;
        _lastLoadComplete = _eventq.curTick();
    }
    resume();
}

void
TraceCore::onStoreComplete()
{
    panic_if(_pendingStores == 0, "store completion underflow");
    --_pendingStores;
    resume();
}

void
TraceCore::resume()
{
    if (_waitingCompletion) {
        _waitingCompletion = false;
        process();
    }
}

void
TraceCore::process()
{
    while (!_done) {
        if (!_currentOpValid) {
            _currentOp = _workload.next();
            _currentOpValid = true;
            _gapAccounted = false;
        }
        if (!_gapAccounted) {
            advanceDispatch(_currentOp.gap + 1);
            _seq += _currentOp.gap + 1;
            _gapAccounted = true;
        }

        // Reorder-buffer limit: the oldest unfinished load must be
        // within robSize instructions of the dispatch point.
        pruneRetired();
        while (!_window.empty() &&
               _seq - _window.front().seq >= _config.robSize) {
            const LoadEntry &front = _window.front();
            if (front.complete == MaxTick) {
                ++_stats.robStalls;
                _waitingCompletion = true;
                return;
            }
            _dispatchTick = std::max(_dispatchTick, front.complete);
            _window.pop_front();
        }

        // Dependence: a chasing *load* cannot even compute its address
        // before the previous load returns, so it stalls dispatch.
        // A dependent store (the RMW write half) does not: the OoO
        // core runs ahead while the store waits in the store buffer,
        // and the cache model's MSHR merge applies the dirtying to
        // the same fill, so no dispatch stall is modelled.
        if (_currentOp.dependsOnPrev && !_currentOp.isWrite) {
            if (_lastLoadPending) {
                ++_stats.depStalls;
                _waitingCompletion = true;
                return;
            }
            _dispatchTick = std::max(_dispatchTick, _lastLoadComplete);
        }

        // Miss-level parallelism limit.
        if (_pendingLoads.size() + _pendingStores >=
            _config.maxOutstanding) {
            ++_stats.mshrStalls;
            _waitingCompletion = true;
            return;
        }

        // Never issue into the hierarchy ahead of simulated time.
        Tick now = _eventq.curTick();
        if (_dispatchTick > now) {
            _eventq.schedule(_dispatchTick, [this] { process(); });
            return;
        }

        // Issue the memory operation.
        ++_stats.memOps;
        if (_currentOp.isWrite) {
            ++_stats.stores;
            // A workload op enters the logical address space here.
            AccessTicket t = _hierarchy.access(
                LogicalAddr(_currentOp.addr), true,
                [this] { onStoreComplete(); });
            if (t.outcome == AccessOutcome::Blocked) {
                _waitingRetry = true;
                return; // retry the same op when poked
            }
            if (t.outcome == AccessOutcome::Miss)
                ++_pendingStores;
            // Hits retire through the store buffer: no tracking.
        } else {
            ++_stats.loads;
            std::uint64_t id = _nextLoadId++;
            AccessTicket t = _hierarchy.access(
                LogicalAddr(_currentOp.addr), false,
                [this, id] { onLoadComplete(id); });
            if (t.outcome == AccessOutcome::Blocked) {
                --_nextLoadId;
                _waitingRetry = true;
                return;
            }
            LoadEntry entry;
            entry.id = id;
            entry.seq = _seq;
            entry.complete = t.outcome == AccessOutcome::Hit
                                 ? now + t.latency
                                 : MaxTick;
            _window.push_back(entry);
            _lastLoadId = id;
            if (t.outcome == AccessOutcome::Hit) {
                _lastLoadPending = false;
                _lastLoadComplete = entry.complete;
            } else {
                _lastLoadPending = true;
                _pendingLoads.emplace(id, &_window.back());
            }
        }
        _currentOpValid = false;

        if (_seq >= _instrLimit) {
            _done = true;
            _finishTick = std::max(_dispatchTick, now);
            _stats.instructions = _seq;
        }
    }
}

} // namespace mellowsim
