/**
 * @file
 * Trace-driven out-of-order core model (Table I).
 *
 * The core consumes the workload's operation stream and models the
 * three constraints through which memory timing shapes IPC on an OoO
 * machine:
 *
 *  1. issue bandwidth: instructions dispatch at `issueWidth` per
 *     cycle (compute gaps advance the dispatch clock accordingly);
 *  2. the reorder buffer: dispatch stalls when the oldest
 *     unfinished load is `robSize` instructions behind;
 *  3. memory-level parallelism: at most `maxOutstanding` misses may
 *     be in flight (L1 MSHRs), and dependent accesses (pointer
 *     chases, the store half of an RMW) serialise behind their
 *     producer.
 *
 * Stores retire through a store buffer: they never stall dispatch for
 * completion, but their misses occupy MSHRs.
 *
 * This is the standard trace-driven front-end used by memory-system
 * simulators (USIMM, DRAMSim2); see DESIGN.md "Substitutions" for why
 * it suffices for the paper's experiments.
 */

#ifndef MELLOWSIM_CPU_CORE_HH
#define MELLOWSIM_CPU_CORE_HH

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "cache/hierarchy.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"
#include "workload/workload.hh"

namespace mellowsim
{

/** Core configuration (Table I defaults). */
struct CoreConfig
{
    /** 2 GHz. */
    // mlint: allow(timing-literal): CPU core clock (Table I), not an
    // NVM device timing
    Tick clockPeriod = 500 * kPicosecond;
    unsigned issueWidth = 8;
    unsigned robSize = 192;
    /** Outstanding misses (L1D MSHRs). */
    unsigned maxOutstanding = 8;
};

/** Core statistics. */
struct CoreStats
{
    std::uint64_t instructions = 0;
    std::uint64_t memOps = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t robStalls = 0;
    std::uint64_t mshrStalls = 0;
    std::uint64_t depStalls = 0;
};

/** See file comment. */
class TraceCore
{
  public:
    TraceCore(EventQueue &eventq, const CoreConfig &config,
              Workload &workload, Hierarchy &hierarchy);

    /** Begin execution; the core retires @p instrLimit instructions. */
    void start(std::uint64_t instrLimit);

    [[nodiscard]] bool done() const { return _done; }

    /** Tick at which the last instruction dispatched. */
    [[nodiscard]] Tick finishTick() const { return _finishTick; }

    /** Instructions per (core) cycle over the whole run. */
    [[nodiscard]] double ipc() const;

    /**
     * Instructions dispatched so far, valid mid-run — the runner uses
     * it to report partial progress when a simulation stops early at
     * the end-of-life capacity floor (stats().instructions is only
     * finalised when the core completes its limit).
     */
    [[nodiscard]] std::uint64_t instructionsDispatched() const
    {
        return _seq;
    }

    [[nodiscard]] const CoreStats &stats() const { return _stats; }
    [[nodiscard]] const CoreConfig &config() const { return _config; }

  private:
    struct LoadEntry
    {
        std::uint64_t id;
        std::uint64_t seq;      ///< instruction number
        Tick complete;          ///< MaxTick while pending
    };

    /** Main processing loop; runs until blocked or done. */
    void process();

    /** Resume after a completion while blocked. */
    void resume();

    /** Advance the dispatch clock by @p instructions instructions. */
    void advanceDispatch(std::uint64_t instructions);

    /** Drop retired loads from the window head. */
    void pruneRetired();

    void onLoadComplete(std::uint64_t id);
    void onStoreComplete();

    EventQueue &_eventq;
    CoreConfig _config;
    Workload &_workload;
    Hierarchy &_hierarchy;

    std::uint64_t _instrLimit = 0;
    bool _started = false;
    bool _done = false;
    Tick _finishTick = 0;

    /** Dispatch clock and sub-tick accumulator (tick*instr units). */
    Tick _dispatchTick = 0;
    Tick _subTicks = 0;

    std::uint64_t _seq = 0;
    std::uint64_t _nextLoadId = 1;

    std::deque<LoadEntry> _window;
    std::unordered_map<std::uint64_t, LoadEntry *> _pendingLoads;
    unsigned _pendingStores = 0;

    Tick _lastLoadComplete = 0;
    bool _lastLoadPending = false;
    std::uint64_t _lastLoadId = 0;

    /** The op being dispatched (fetched but not yet issued). */
    Op _currentOp;
    bool _currentOpValid = false;
    bool _gapAccounted = false;

    /** Blocked waiting for some completion callback. */
    bool _waitingCompletion = false;
    /** Blocked waiting for the hierarchy's MSHR retry. */
    bool _waitingRetry = false;

    CoreStats _stats;
};

} // namespace mellowsim

#endif // MELLOWSIM_CPU_CORE_HH
