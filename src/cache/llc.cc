#include "cache/llc.hh"

#include "sim/logging.hh"

namespace mellowsim
{

Llc::Llc(EventQueue &eventq, const LlcConfig &config,
         MemoryPort &controller, std::uint64_t seed)
    : _eventq(eventq), _config(config), _controller(controller),
      _array(config.cache),
      _profiler([&config] {
          EagerProfilerConfig p = config.profiler;
          p.assoc = config.cache.assoc;
          return p;
      }()),
      _rng(seed ^ 0x11CC11CCull), _cumHits(config.cache.assoc, 0)
{
    _eventq.scheduleIn(_profiler.config().samplePeriod,
                       [this] { onSamplePeriod(); });
    if (_config.eagerEnabled) {
        fatal_if(_config.scanInterval == 0,
                 "eager scan interval must be positive");
        _eventq.scheduleIn(_config.scanInterval, [this] { onScan(); });
    }
}

void
Llc::onSamplePeriod()
{
    _profiler.onSamplePeriod();
    ++_period;
    _eventq.scheduleIn(_profiler.config().samplePeriod,
                       [this] { onSamplePeriod(); });
}

CacheAccessResult
Llc::access(LogicalAddr addr, bool isWrite)
{
    if (isWrite)
        ++_stats.demandWrites;
    else
        ++_stats.demandReads;

    CacheAccessResult res =
        _array.access(addr, isWrite, /*updateLru=*/true, _period);
    if (res.hit) {
        ++_stats.hits;
        _profiler.notifyHit(res.lruPos);
        ++_cumHits[res.lruPos];
        if (isWrite && _array.lastWriteWastedEager())
            ++_stats.eagerWasted;
    } else {
        ++_stats.misses;
        _profiler.notifyMiss();
    }
    return res;
}

void
Llc::handleVictim(const CacheVictim &victim)
{
    if (!victim.valid)
        return;
    if (victim.dirty) {
        ++_stats.writebacksToMem;
        _controller.writeback(victim.blockAddr);
    } else {
        ++_stats.cleanEvictions;
    }
}

void
Llc::writebackFromUpper(LogicalAddr addr)
{
    ++_stats.demandWrites;
    CacheAccessResult res = _array.access(addr, /*isWrite=*/true,
                                          /*updateLru=*/false, _period);
    if (res.hit) {
        ++_stats.hits;
        _profiler.notifyHit(res.lruPos);
        ++_cumHits[res.lruPos];
        if (_array.lastWriteWastedEager())
            ++_stats.eagerWasted;
        return;
    }
    ++_stats.misses;
    _profiler.notifyMiss();
    // Write-allocate the full-line write back.
    handleVictim(_array.insert(addr, /*dirty=*/true, _period));
}

void
Llc::fillFromMemory(LogicalAddr addr)
{
    // A concurrent upper-level write back may have raced the fill in.
    if (_array.probe(addr))
        return;
    handleVictim(_array.insert(addr, /*dirty=*/false, _period));
}

void
Llc::prime(LogicalAddr addr, bool dirty)
{
    CacheAccessResult res = _array.access(addr, dirty);
    if (!res.hit) {
        // Victim dropped deliberately: warm-up only.
        (void)_array.insert(addr, dirty);
    }
}

bool
Llc::eagerCandidate(const CacheLine &line, unsigned pos) const
{
    if (!line.valid || !line.dirty)
        return false;
    switch (_config.selector) {
      case EagerSelector::UselessLru:
        return _profiler.isUseless(pos);
      case EagerSelector::DecayDeadBlock:
        return _period >= line.touchStamp &&
               _period - line.touchStamp >= _config.deadAfterPeriods;
    }
    return false;
}

void
Llc::onScan()
{
    _eventq.scheduleIn(_config.scanInterval, [this] { onScan(); });
    if (!_controller.eagerQueueHasSpace())
        return;
    ++_stats.eagerScans;

    if (_config.selector == EagerSelector::UselessLru &&
        _profiler.uselessFrom() >= _array.assoc()) {
        return; // nothing is useless this period
    }

    std::uint64_t set_idx = _rng.nextBounded(_array.numSets());
    const auto &set = _array.set(set_idx);

    // Least likely to be used again: scan from the LRU end and take
    // the first candidate.
    for (unsigned pos = static_cast<unsigned>(set.size()); pos-- > 0;) {
        const CacheLine &line = set[pos];
        if (!eagerCandidate(line, pos))
            continue;
        if (_controller.eagerWrite(line.blockAddr)) {
            _array.cleanLineForEagerWrite(line.blockAddr);
            ++_stats.eagerSent;
        }
        return;
    }
}

} // namespace mellowsim
