#include "cache/cache.hh"

#include "sim/logging.hh"

namespace mellowsim
{

SetAssocCache::SetAssocCache(const CacheConfig &config) : _config(config)
{
    fatal_if(config.assoc == 0, "%s: associativity must be >= 1",
             config.name.c_str());
    fatal_if(config.sizeBytes % (config.assoc * kBlockSize) != 0,
             "%s: size must be a multiple of assoc * block size",
             config.name.c_str());
    _numSets = config.sizeBytes / (config.assoc * kBlockSize);
    fatal_if(!isPowerOfTwo(_numSets),
             "%s: number of sets (%llu) must be a power of two",
             config.name.c_str(),
             static_cast<unsigned long long>(_numSets));
    _sets.assign(_numSets, std::vector<CacheLine>(config.assoc));
}

std::uint64_t
SetAssocCache::setIndex(LogicalAddr addr) const
{
    return blockNumber(addr) & (_numSets - 1);
}

CacheAccessResult
SetAssocCache::access(LogicalAddr addr, bool isWrite, bool updateLru,
                      std::uint32_t stamp)
{
    LogicalAddr block = blockAlign(addr);
    auto &set = _sets[setIndex(addr)];
    _lastWriteWastedEager = false;

    for (unsigned pos = 0; pos < set.size(); ++pos) {
        CacheLine &line = set[pos];
        if (!line.valid || line.blockAddr != block)
            continue;
        line.touchStamp = stamp;
        if (isWrite) {
            if (line.eagerCleaned) {
                _lastWriteWastedEager = true;
                line.eagerCleaned = false;
            }
            line.dirty = true;
        }
        if (updateLru && pos != 0) {
            CacheLine moved = line;
            set.erase(set.begin() + pos);
            set.insert(set.begin(), moved);
        }
        return {true, pos};
    }
    return {false, 0};
}

bool
SetAssocCache::probe(LogicalAddr addr) const
{
    LogicalAddr block = blockAlign(addr);
    const auto &set = _sets[setIndex(addr)];
    for (const CacheLine &line : set) {
        if (line.valid && line.blockAddr == block)
            return true;
    }
    return false;
}

CacheVictim
SetAssocCache::insert(LogicalAddr addr, bool dirty, std::uint32_t stamp)
{
    LogicalAddr block = blockAlign(addr);
    auto &set = _sets[setIndex(addr)];
    panic_if(probe(addr), "%s: inserting a line already present",
             _config.name.c_str());

    CacheVictim victim;
    const CacheLine &lru = set.back();
    if (lru.valid) {
        victim.valid = true;
        victim.dirty = lru.dirty;
        victim.blockAddr = lru.blockAddr;
    }
    set.pop_back();

    CacheLine line;
    line.blockAddr = block;
    line.valid = true;
    line.dirty = dirty;
    line.touchStamp = stamp;
    set.insert(set.begin(), line);
    return victim;
}

bool
SetAssocCache::cleanLineForEagerWrite(LogicalAddr addr)
{
    LogicalAddr block = blockAlign(addr);
    auto &set = _sets[setIndex(addr)];
    for (CacheLine &line : set) {
        if (line.valid && line.blockAddr == block) {
            if (!line.dirty)
                return false;
            line.dirty = false;
            line.eagerCleaned = true;
            return true;
        }
    }
    return false;
}

const std::vector<CacheLine> &
SetAssocCache::set(std::uint64_t index) const
{
    panic_if(index >= _numSets, "set index out of range");
    return _sets[index];
}

std::uint64_t
SetAssocCache::countDirtyLines() const
{
    std::uint64_t count = 0;
    for (const auto &set : _sets) {
        for (const CacheLine &line : set) {
            if (line.valid && line.dirty)
                ++count;
        }
    }
    return count;
}

} // namespace mellowsim
