/**
 * @file
 * Set-associative write-back cache array with true-LRU stacks.
 *
 * The LRU stack position of every hit is exposed because the Eager
 * Mellow Writes profiler (Section IV-B1) counts hits per stack
 * position; position 0 is MRU, position (assoc-1) is LRU, matching
 * Figure 7 of the paper.
 */

#ifndef MELLOWSIM_CACHE_CACHE_HH
#define MELLOWSIM_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/strong_types.hh"
#include "sim/types.hh"

namespace mellowsim
{

/** Geometry and timing of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 2ull * 1024 * 1024;
    unsigned assoc = 16;
    /** Lookup/hit latency in ticks. */
    Tick hitLatency = 0;
};

/** One cache line. */
struct CacheLine
{
    LogicalAddr blockAddr{0}; ///< block-aligned address
    bool valid = false;
    bool dirty = false;
    /**
     * The line was cleaned by an eager mellow write back; a later
     * store re-dirtying it means that eager write was wasted.
     */
    bool eagerCleaned = false;
    /**
     * Owner-supplied recency stamp (the LLC stores its profiling
     * period number here); drives the decay-based dead-block
     * predictor used as an alternative eager-candidate selector.
     */
    std::uint32_t touchStamp = 0;
};

/** Result of a lookup. */
struct CacheAccessResult
{
    bool hit = false;
    /** LRU stack position of the hit (undefined on miss). */
    unsigned lruPos = 0;
};

/** Victim description returned by insert(). */
struct CacheVictim
{
    bool valid = false; ///< an occupied line was evicted
    bool dirty = false;
    LogicalAddr blockAddr{0};
};

/**
 * The cache array. Purely functional state (no timing); the
 * Hierarchy composes arrays into a timed three-level system.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheConfig &config);

    /**
     * Look up @p addr. On a hit the line moves to MRU and, if
     * @p isWrite, becomes dirty.
     *
     * @param updateLru  False for write backs arriving from an upper
     *                   level, which should not promote the line.
     * @param stamp      Recency stamp recorded on the line on a hit.
     */
    CacheAccessResult access(LogicalAddr addr, bool isWrite,
                             bool updateLru = true,
                             std::uint32_t stamp = 0);

    /** Non-destructive lookup (no LRU update, no dirtying). */
    [[nodiscard]] bool probe(LogicalAddr addr) const;

    /**
     * Allocate a line for @p addr at MRU (evicting LRU if the set is
     * full) and return the victim. @p addr must not be present.
     */
    CacheVictim insert(LogicalAddr addr, bool dirty,
                       std::uint32_t stamp = 0);

    /**
     * Mark the line holding @p addr clean and remember it was eagerly
     * cleaned. No-op if absent.
     * @retval true the line was present and dirty.
     */
    bool cleanLineForEagerWrite(LogicalAddr addr);

    /** Number of sets. */
    [[nodiscard]] std::uint64_t numSets() const { return _numSets; }
    [[nodiscard]] unsigned assoc() const { return _config.assoc; }
    [[nodiscard]] Tick hitLatency() const
    {
        return _config.hitLatency;
    }
    [[nodiscard]] const CacheConfig &config() const { return _config; }

    /**
     * Lines of one set ordered by recency: index 0 is MRU. Exposed
     * for the eager scanner's random-set walks.
     */
    [[nodiscard]] const std::vector<CacheLine> &
    set(std::uint64_t index) const;

    /** Count of valid dirty lines over the whole array (tests). */
    [[nodiscard]] std::uint64_t countDirtyLines() const;

    /** True iff a store re-dirtied an eagerly cleaned line. */
    [[nodiscard]] bool lastWriteWastedEager() const
    {
        return _lastWriteWastedEager;
    }

  private:
    [[nodiscard]] std::uint64_t setIndex(LogicalAddr addr) const;

    CacheConfig _config;
    std::uint64_t _numSets;
    /** _sets[s] ordered MRU..LRU. Invalid lines sit at the tail. */
    std::vector<std::vector<CacheLine>> _sets;
    bool _lastWriteWastedEager = false;
};

} // namespace mellowsim

#endif // MELLOWSIM_CACHE_CACHE_HH
