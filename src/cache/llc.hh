/**
 * @file
 * The last-level cache with the Eager Mellow Writes machinery.
 *
 * Wraps the LLC array with (1) the useless-LRU-position profiler and
 * its T_sample event, and (2) the eager scanner of Figure 8: whenever
 * the eager queue has room, periodically pick a random set, find the
 * least-recently-used dirty line in a useless stack position, send it
 * to the controller's eager queue and mark it clean *without evicting
 * it*. A later store to such a line re-dirties it and counts the
 * eager write as wasted (Figure 14's write increase).
 */

#ifndef MELLOWSIM_CACHE_LLC_HH
#define MELLOWSIM_CACHE_LLC_HH

#include <cstdint>
#include <vector>

#include "cache/cache.hh"
#include "cache/eager_profiler.hh"
#include "nvm/memory_port.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace mellowsim
{

/**
 * How the LLC picks eager write-back candidates.
 *
 * UselessLru is the paper's Section IV-B1 scheme. DecayDeadBlock is
 * the paper's suggested future improvement (Section VII, "Dead Block
 * Prediction"): a dirty line untouched for `deadAfterPeriods` whole
 * profiling periods is predicted dead and eagerly written back
 * regardless of its stack position (a decay predictor in the style
 * of Kaxiras et al.).
 */
enum class EagerSelector
{
    UselessLru,
    DecayDeadBlock,
};

/** LLC configuration (Table I defaults). */
struct LlcConfig
{
    // mlint: allow(timing-literal): CPU-side SRAM latency (Table I),
    // not an NVM device timing
    CacheConfig cache{"LLC", 2ull * 1024 * 1024, 16,
                      Tick(17.5 * kNanosecond)};
    EagerProfilerConfig profiler;
    /**
     * How often the idle LLC gets a chance to pick an eager
     * candidate. The paper allows one attempt per idle LLC cycle; a
     * few CPU cycles per attempt is a faithful, cheaper stand-in.
     */
    // mlint: allow(timing-literal): eager-scan cadence is a simulator
    // knob, not a device datasheet timing
    Tick scanInterval = 4 * kNanosecond;
    /** Eager write backs enabled (the E- and BE- policies). */
    bool eagerEnabled = false;
    /** Candidate selection scheme. */
    EagerSelector selector = EagerSelector::UselessLru;
    /** DecayDeadBlock: periods of silence before a line is dead. */
    unsigned deadAfterPeriods = 1;
};

/** LLC-side statistics (Figure 14's request breakdown). */
struct LlcStats
{
    stats::Counter demandReads;   ///< read requests reaching the LLC
    stats::Counter demandWrites;  ///< write backs from L2
    stats::Counter hits;
    stats::Counter misses;
    stats::Counter writebacksToMem; ///< dirty demand evictions
    stats::Counter cleanEvictions;  ///< clean demand evictions
    stats::Counter eagerSent;       ///< accepted into the eager queue
    stats::Counter eagerWasted;     ///< eagerly-cleaned line re-dirtied
    stats::Counter eagerScans;      ///< scan attempts
};

/** See file comment. */
class Llc
{
  public:
    Llc(EventQueue &eventq, const LlcConfig &config,
        MemoryPort &controller, std::uint64_t seed);

    /**
     * Demand access from the L2 side.
     * Updates LRU, profiler counters and dirty state; on a write to
     * an eagerly-cleaned line, counts the waste.
     */
    CacheAccessResult access(LogicalAddr addr, bool isWrite);

    /** Write back from L2 (no LRU promotion; allocates on miss). */
    void writebackFromUpper(LogicalAddr addr);

    /** Install a line fetched from memory (clean). */
    void fillFromMemory(LogicalAddr addr);

    /** Warm-up touch: no statistics, no profiler, no memory traffic. */
    void prime(LogicalAddr addr, bool dirty);

    [[nodiscard]] const LlcStats &stats() const { return _stats; }

    /**
     * Whole-run hit counts per LRU stack position (the profiler's own
     * counters reset every T_sample; these never reset). Drives the
     * Figure 7 reproduction.
     */
    [[nodiscard]] const std::vector<std::uint64_t> &
    cumulativeHitsByPos() const
    {
        return _cumHits;
    }

    [[nodiscard]] const EagerProfiler &profiler() const
    {
        return _profiler;
    }
    [[nodiscard]] const SetAssocCache &array() const { return _array; }
    [[nodiscard]] const LlcConfig &config() const { return _config; }

    /** Current profiling period number (the decay stamp domain). */
    [[nodiscard]] std::uint32_t currentPeriod() const
    {
        return _period;
    }

  private:
    void onSamplePeriod();
    void onScan();
    void handleVictim(const CacheVictim &victim);
    /** Eager candidacy test for one line under the active selector. */
    [[nodiscard]] bool eagerCandidate(const CacheLine &line,
                                      unsigned pos) const;

    EventQueue &_eventq;
    LlcConfig _config;
    MemoryPort &_controller;
    SetAssocCache _array;
    EagerProfiler _profiler;
    Rng _rng;
    LlcStats _stats;
    std::vector<std::uint64_t> _cumHits;
    std::uint32_t _period = 0;
};

} // namespace mellowsim

#endif // MELLOWSIM_CACHE_LLC_HH
