#include "cache/eager_profiler.hh"

#include "sim/logging.hh"

namespace mellowsim
{

EagerProfiler::EagerProfiler(const EagerProfilerConfig &config)
    : _config(config), _hits(config.assoc, 0),
      _uselessFrom(config.assoc)
{
    fatal_if(config.assoc == 0, "profiler needs associativity >= 1");
    fatal_if(config.thresholdRatio <= 0.0 || config.thresholdRatio > 1.0,
             "THRESHOLD_RATIO must be in (0, 1] (got %f)",
             config.thresholdRatio);
    fatal_if(config.samplePeriod == 0, "sample period must be positive");
}

void
EagerProfiler::notifyHit(unsigned lruPos)
{
    panic_if(lruPos >= _hits.size(), "LRU position %u out of range",
             lruPos);
    ++_hits[lruPos];
}

void
EagerProfiler::notifyMiss()
{
    ++_misses;
}

void
EagerProfiler::onSamplePeriod()
{
    ++_periods;
    std::uint64_t total = _misses;
    for (std::uint64_t h : _hits)
        total += h;

    if (total == 0) {
        // An idle period tells us nothing; keep the previous verdict.
        return;
    }

    // Find the smallest position p whose suffix hit sum stays below
    // THRESHOLD_RATIO of all requests.
    double threshold =
        _config.thresholdRatio * static_cast<double>(total);
    unsigned p = _config.assoc;
    std::uint64_t suffix = 0;
    while (p > 0) {
        std::uint64_t with_next = suffix + _hits[p - 1];
        if (static_cast<double>(with_next) >= threshold)
            break;
        suffix = with_next;
        --p;
    }
    _uselessFrom = p;

    for (auto &h : _hits)
        h = 0;
    _misses = 0;
}

} // namespace mellowsim
