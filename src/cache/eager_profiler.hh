/**
 * @file
 * The useless-LRU-position profiler of Section IV-B1 (Figure 7).
 *
 * One hit counter per LRU stack position (shared across all sets) and
 * one miss counter. Every T_sample the profiler finds the *eager LRU
 * position*: the smallest position p such that the hits in positions
 * p..(assoc-1) sum to less than THRESHOLD_RATIO of all requests in
 * the period. Positions >= p are "useless" until the next sample:
 * dirty lines found there may be eagerly written back.
 *
 * Storage cost matches the paper's overhead analysis: assoc + 1
 * counters of ceil(log2(T_sample / T_clk)) bits plus a cycle counter
 * (360 bits total for a 16-way LLC).
 */

#ifndef MELLOWSIM_CACHE_EAGER_PROFILER_HH
#define MELLOWSIM_CACHE_EAGER_PROFILER_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace mellowsim
{

/** Profiler configuration (Table I defaults). */
struct EagerProfilerConfig
{
    unsigned assoc = 16;
    /** THRESHOLD_RATIO: 1/32 in the paper. */
    double thresholdRatio = 1.0 / 32.0;
    /** T_sample: 500,000 ns in the paper. */
    // mlint: allow(timing-literal): paper Table II constant, not a
    // device datasheet timing
    Tick samplePeriod = 500 * kMicrosecond;
};

/** See file comment. */
class EagerProfiler
{
  public:
    explicit EagerProfiler(const EagerProfilerConfig &config);

    /** Record an LLC hit at LRU stack position @p lruPos. */
    void notifyHit(unsigned lruPos);

    /** Record an LLC miss. */
    void notifyMiss();

    /**
     * Close the sample period: recompute the eager LRU position from
     * the counters, then reset them. Called every T_sample by the
     * owning LLC.
     */
    void onSamplePeriod();

    /**
     * First useless LRU position; positions >= this are eager-write
     * candidates. Equals assoc (nothing useless) until the first
     * period with traffic completes.
     */
    [[nodiscard]] unsigned uselessFrom() const { return _uselessFrom; }

    /** True iff stack position @p lruPos is currently useless. */
    [[nodiscard]] bool isUseless(unsigned lruPos) const
    {
        return lruPos >= _uselessFrom;
    }

    /** Counters for introspection/benches (current period). */
    [[nodiscard]] const std::vector<std::uint64_t> &hitCounters() const
    {
        return _hits;
    }
    [[nodiscard]] std::uint64_t missCounter() const { return _misses; }
    [[nodiscard]] std::uint64_t periods() const { return _periods; }

    [[nodiscard]] const EagerProfilerConfig &config() const { return _config; }

  private:
    EagerProfilerConfig _config;
    std::vector<std::uint64_t> _hits;
    std::uint64_t _misses = 0;
    unsigned _uselessFrom;
    std::uint64_t _periods = 0;
};

} // namespace mellowsim

#endif // MELLOWSIM_CACHE_EAGER_PROFILER_HH
