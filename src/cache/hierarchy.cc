#include "cache/hierarchy.hh"

#include "sim/logging.hh"

namespace mellowsim
{

Hierarchy::Hierarchy(EventQueue &eventq, const HierarchyConfig &config,
                     MemoryPort &controller, std::uint64_t seed)
    : _eventq(eventq), _config(config), _controller(controller),
      _l1(config.l1), _l2(config.l2),
      _llc(eventq, config.llc, controller, seed)
{
    fatal_if(config.llcMshrs == 0, "hierarchy needs >= 1 MSHR");
}

void
Hierarchy::writeIntoLlc(LogicalAddr blockAddr)
{
    _llc.writebackFromUpper(blockAddr);
}

void
Hierarchy::writeIntoL2(LogicalAddr blockAddr)
{
    CacheAccessResult res =
        _l2.access(blockAddr, /*isWrite=*/true, /*updateLru=*/false);
    if (res.hit)
        return;
    CacheVictim victim = _l2.insert(blockAddr, /*dirty=*/true);
    if (victim.valid && victim.dirty)
        writeIntoLlc(victim.blockAddr);
}

void
Hierarchy::fillUpper(LogicalAddr blockAddr, bool dirtyInL1)
{
    if (!_l2.probe(blockAddr)) {
        CacheVictim victim = _l2.insert(blockAddr, /*dirty=*/false);
        if (victim.valid && victim.dirty)
            writeIntoLlc(victim.blockAddr);
    }
    if (!_l1.probe(blockAddr)) {
        CacheVictim victim = _l1.insert(blockAddr, dirtyInL1);
        if (victim.valid && victim.dirty)
            writeIntoL2(victim.blockAddr);
    } else if (dirtyInL1) {
        _l1.access(blockAddr, /*isWrite=*/true, /*updateLru=*/false);
    }
}

AccessTicket
Hierarchy::access(LogicalAddr addr, bool isWrite, Callback done)
{
    ++_stats.accesses;
    LogicalAddr block = blockAlign(addr);

    // L1.
    CacheAccessResult l1_res = _l1.access(block, isWrite);
    if (l1_res.hit) {
        ++_stats.l1Hits;
        return {AccessOutcome::Hit, _l1.hitLatency()};
    }

    // L2 (read for the fill; a store dirties the L1 copy only).
    CacheAccessResult l2_res = _l2.access(block, /*isWrite=*/false);
    if (l2_res.hit) {
        ++_stats.l2Hits;
        // Move the line up into L1.
        if (!_l1.probe(block)) {
            CacheVictim victim = _l1.insert(block, isWrite);
            if (victim.valid && victim.dirty)
                writeIntoL2(victim.blockAddr);
        }
        return {AccessOutcome::Hit,
                _l1.hitLatency() + _l2.hitLatency()};
    }

    // LLC.
    Tick lookup = _l1.hitLatency() + _l2.hitLatency() +
                  _llc.config().cache.hitLatency;
    CacheAccessResult llc_res = _llc.access(block, /*isWrite=*/false);
    if (llc_res.hit) {
        ++_stats.llcHits;
        fillUpper(block, isWrite);
        return {AccessOutcome::Hit, lookup};
    }

    // LLC miss: merge into an outstanding MSHR if possible.
    auto it = _mshrs.find(block);
    if (it != _mshrs.end()) {
        ++_stats.mshrMerges;
        it->second.push_back({isWrite, std::move(done)});
        return {AccessOutcome::Miss, 0};
    }
    if (_mshrs.size() >= _config.llcMshrs) {
        ++_stats.blocked;
        _blockedEpisode = true;
        return {AccessOutcome::Blocked, 0};
    }

    ++_stats.llcMisses;
    _mshrs.emplace(block,
                   std::vector<MshrWaiter>{{isWrite, std::move(done)}});

    // The memory read departs after the full lookup path.
    _eventq.scheduleIn(lookup, [this, block] {
        _controller.read(block, [this, block] { onFill(block); });
    });
    return {AccessOutcome::Miss, 0};
}

void
Hierarchy::prime(LogicalAddr addr, bool isWrite)
{
    LogicalAddr block = blockAlign(addr);
    // Victims dropped deliberately: warm-up only.
    if (!_l1.access(block, isWrite).hit)
        (void)_l1.insert(block, isWrite);
    if (!_l2.access(block, false).hit)
        (void)_l2.insert(block, false);
    _llc.prime(block, isWrite);
}

void
Hierarchy::onFill(LogicalAddr blockAddr)
{
    auto it = _mshrs.find(blockAddr);
    panic_if(it == _mshrs.end(), "fill for an unknown MSHR");
    std::vector<MshrWaiter> waiters = std::move(it->second);
    _mshrs.erase(it);

    bool any_store = false;
    for (const MshrWaiter &w : waiters)
        any_store = any_store || w.isWrite;

    _llc.fillFromMemory(blockAddr);
    fillUpper(blockAddr, any_store);

    for (MshrWaiter &w : waiters) {
        if (w.done)
            w.done();
    }

    if (_blockedEpisode) {
        _blockedEpisode = false;
        if (_retryCb)
            _retryCb();
    }
}

} // namespace mellowsim
