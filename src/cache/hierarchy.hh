/**
 * @file
 * The three-level data-cache hierarchy of Table I.
 *
 * L1D 32 KB / 4-way / 2 cycles, L2 256 KB / 8-way / 12 cycles, LLC
 * 2 MB / 16-way / 35 cycles, 64-byte lines, write-back write-allocate
 * everywhere, LLC misses limited by 32 MSHRs with same-block merging.
 *
 * Timing model: hits complete after the summed lookup latencies of
 * the levels visited; an LLC miss sends a read to the memory
 * controller after the full lookup path and completes when the
 * controller delivers data. The hierarchy is functional (tags, LRU,
 * dirty bits are exact); contention below the LLC is modelled by the
 * controller.
 */

#ifndef MELLOWSIM_CACHE_HIERARCHY_HH
#define MELLOWSIM_CACHE_HIERARCHY_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "cache/llc.hh"
#include "nvm/memory_port.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace mellowsim
{

/** Configuration of the full hierarchy (Table I defaults). */
struct HierarchyConfig
{
    // mlint: allow(timing-literal): CPU-side SRAM latency (Table I),
    // not an NVM device timing
    CacheConfig l1{"L1D", 32 * 1024, 4, 1 * kNanosecond};
    // mlint: allow(timing-literal): CPU-side SRAM latency (Table I),
    // not an NVM device timing
    CacheConfig l2{"L2", 256 * 1024, 8, 6 * kNanosecond};
    LlcConfig llc;
    /** Outstanding LLC misses (Table I: 32-MSHR LLC). */
    unsigned llcMshrs = 32;
};

/** How an access concluded at issue time. */
enum class AccessOutcome
{
    Hit,     ///< completes after `latency` ticks, no callback
    Miss,    ///< the completion callback will fire
    Blocked, ///< MSHRs full; retry after the retry callback fires
};

/** Issue-time result of Hierarchy::access(). */
struct AccessTicket
{
    AccessOutcome outcome = AccessOutcome::Hit;
    Tick latency = 0; ///< valid for Hit
};

/** Hierarchy statistics. */
struct HierarchyStats
{
    stats::Counter accesses;
    stats::Counter l1Hits;
    stats::Counter l2Hits;
    stats::Counter llcHits;
    stats::Counter llcMisses;  ///< demand misses sent to memory
    stats::Counter mshrMerges; ///< coalesced same-block misses
    stats::Counter blocked;    ///< rejected: MSHRs full
};

/** See file comment. */
class Hierarchy
{
  public:
    using Callback = std::function<void()>;

    Hierarchy(EventQueue &eventq, const HierarchyConfig &config,
              MemoryPort &controller, std::uint64_t seed);

    /**
     * Perform one demand access.
     *
     * @param addr     Byte address.
     * @param isWrite  Store?
     * @param done     Fired at completion for Miss outcomes.
     * @return Issue-time ticket (see AccessOutcome).
     */
    AccessTicket access(LogicalAddr addr, bool isWrite, Callback done);

    /**
     * Register the (single) consumer to poke when a Blocked access
     * may be retried. Fired at most once per blocking episode.
     */
    void setRetryCallback(Callback cb) { _retryCb = std::move(cb); }

    /**
     * Functionally touch a block (warm-up): installs/updates the line
     * in all levels with no timing, statistics, or memory traffic.
     * Victims are dropped silently.
     */
    void prime(LogicalAddr addr, bool isWrite);

    [[nodiscard]] const HierarchyStats &stats() const { return _stats; }
    [[nodiscard]] Llc &llc() { return _llc; }
    [[nodiscard]] const Llc &llc() const { return _llc; }

    /** Outstanding LLC misses (MSHR occupancy). */
    [[nodiscard]] std::size_t outstandingMisses() const
    {
        return _mshrs.size();
    }

  private:
    struct MshrWaiter
    {
        bool isWrite;
        Callback done;
    };

    void onFill(LogicalAddr blockAddr);
    void writeIntoL2(LogicalAddr blockAddr);
    void writeIntoLlc(LogicalAddr blockAddr);
    /** Install a block into L2 and L1 after an LLC hit or fill. */
    void fillUpper(LogicalAddr blockAddr, bool dirtyInL1);

    EventQueue &_eventq;
    HierarchyConfig _config;
    MemoryPort &_controller;
    SetAssocCache _l1;
    SetAssocCache _l2;
    Llc _llc;

    std::unordered_map<LogicalAddr, std::vector<MshrWaiter>> _mshrs;
    bool _blockedEpisode = false;
    Callback _retryCb;

    HierarchyStats _stats;
};

} // namespace mellowsim

#endif // MELLOWSIM_CACHE_HIERARCHY_HH
