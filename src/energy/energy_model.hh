/**
 * @file
 * Main-memory energy model (Tables V and VI of the paper).
 *
 * The paper feeds per-cell set/reset energies (cells A..E, 0.1 pJ to
 * 1.6 pJ) through nvsim to obtain per-operation energies. nvsim is not
 * available here, but Table VI is exactly linear in the cell energy:
 *
 *     E_write(cell)  = E_peripheral + 512 * E_cell
 *
 * with E_peripheral = 197.6 pJ for normal writes and 196.74 pJ for
 * slow writes (512 = bits in a 64-byte line; half the bits Set and
 * half Reset at equal energy, so the split is immaterial; the slow
 * peripheral is marginally cheaper because it runs at the reduced
 * write voltage). A slow (3x) write dissipates 0.767x the power of a
 * normal write, hence 2.3x the cell energy. This closed form
 * reproduces every entry of Table VI to the published precision; the
 * unit tests assert that.
 *
 * Reads: a row-buffer miss reads a full 1 KB row buffer (1503 pJ); a
 * row-buffer hit costs 100 pJ (Section VI-F).
 */

#ifndef MELLOWSIM_ENERGY_ENERGY_MODEL_HH
#define MELLOWSIM_ENERGY_ENERGY_MODEL_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "sim/strong_types.hh"
#include "sim/types.hh"

namespace mellowsim
{

/** The five ReRAM cell design points of Table V. */
enum class CellType { CellA, CellB, CellC, CellD, CellE };

/** Per-cell set/reset energy for a cell type (Table V). */
[[nodiscard]] Picojoules cellEnergyPj(CellType cell);

/** Printable name ("CellA", ...). */
[[nodiscard]] std::string cellTypeName(CellType cell);

/** All five cell types, for sweeps. */
constexpr std::array<CellType, 5> kAllCellTypes = {
    CellType::CellA, CellType::CellB, CellType::CellC, CellType::CellD,
    CellType::CellE};

/** Parameters of the energy model. */
struct EnergyParams
{
    CellType cell = CellType::CellC;   ///< paper's Figure 16 choice
    /**
     * Explicit per-cell set/reset energy. Unset means "use the Table
     * V energy of `cell`"; a device config modelling a technology
     * outside the paper's five ReRAM design points (e.g. the PCM-like
     * zoo entry, whose RESET energy is an order of magnitude higher)
     * sets this directly from its datasheet.
     */
    std::optional<Picojoules> cellEnergyOverridePj;
    Picojoules peripheralWritePj{197.6};  ///< normal-write peripheral
    Picojoules peripheralSlowWritePj{196.74}; ///< slow-write peripheral
    unsigned bitsPerWrite = 512;       ///< 64-byte line
    double slowCellEnergyFactor = 2.3; ///< 0.767x power * 3x time
    Picojoules bufferReadPj{1503.0};   ///< row-buffer-miss read
    Picojoules rowHitReadPj{100.0};    ///< row-buffer-hit read
};

/** Running totals. */
struct EnergyStats
{
    Picojoules readPj;
    Picojoules writePj;
    std::uint64_t bufferReads = 0;
    std::uint64_t rowHitReads = 0;
    std::uint64_t normalWrites = 0;
    std::uint64_t slowWrites = 0;
    std::uint64_t cancelledWrites = 0;

    [[nodiscard]] Picojoules totalPj() const { return readPj + writePj; }
};

/**
 * Computes per-operation energies and accumulates totals for a run.
 */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params = {});

    /** Energy of one write at normal or slow speed. */
    [[nodiscard]] Picojoules writeEnergyPj(bool slow) const;

    /** Energy of one read, by row-buffer outcome. */
    [[nodiscard]] Picojoules readEnergyPj(bool rowHit) const;

    /** Ratio slow/normal write energy (Table VI rightmost column). */
    [[nodiscard]] double slowNormalWriteRatio() const;

    /** Account one completed read. */
    void recordRead(bool rowHit);

    /** Account one completed write. */
    void recordWrite(bool slow);

    /**
     * Account a cancelled write attempt: energy proportional to the
     * fraction of the pulse that completed.
     */
    void recordCancelledWrite(bool slow, double progress);

    [[nodiscard]] const EnergyStats &stats() const { return _stats; }
    [[nodiscard]] const EnergyParams &params() const { return _params; }

  private:
    EnergyParams _params;
    EnergyStats _stats;
};

} // namespace mellowsim

#endif // MELLOWSIM_ENERGY_ENERGY_MODEL_HH
