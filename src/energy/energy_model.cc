#include "energy/energy_model.hh"

#include "sim/logging.hh"

namespace mellowsim
{

Picojoules
cellEnergyPj(CellType cell)
{
    switch (cell) {
      case CellType::CellA: return Picojoules(0.1);
      case CellType::CellB: return Picojoules(0.2);
      case CellType::CellC: return Picojoules(0.4);
      case CellType::CellD: return Picojoules(0.8);
      case CellType::CellE: return Picojoules(1.6);
    }
    panic("unknown cell type");
}

std::string
cellTypeName(CellType cell)
{
    switch (cell) {
      case CellType::CellA: return "CellA";
      case CellType::CellB: return "CellB";
      case CellType::CellC: return "CellC";
      case CellType::CellD: return "CellD";
      case CellType::CellE: return "CellE";
    }
    panic("unknown cell type");
}

EnergyModel::EnergyModel(const EnergyParams &params) : _params(params)
{
    fatal_if(_params.peripheralWritePj < Picojoules(0.0),
             "peripheral write energy must be non-negative");
    fatal_if(_params.bitsPerWrite == 0, "bits per write must be positive");
    fatal_if(_params.slowCellEnergyFactor <= 0.0,
             "slow cell energy factor must be positive");
}

Picojoules
EnergyModel::writeEnergyPj(bool slow) const
{
    Picojoules cell = _params.cellEnergyOverridePj
                          ? *_params.cellEnergyOverridePj
                          : cellEnergyPj(_params.cell);
    Picojoules peripheral = _params.peripheralWritePj;
    if (slow) {
        cell = cell * _params.slowCellEnergyFactor;
        peripheral = _params.peripheralSlowWritePj;
    }
    return peripheral +
           static_cast<double>(_params.bitsPerWrite) * cell;
}

Picojoules
EnergyModel::readEnergyPj(bool rowHit) const
{
    return rowHit ? _params.rowHitReadPj : _params.bufferReadPj;
}

double
EnergyModel::slowNormalWriteRatio() const
{
    // Picojoules / Picojoules is dimensionless by construction.
    return writeEnergyPj(true) / writeEnergyPj(false);
}

void
EnergyModel::recordRead(bool rowHit)
{
    _stats.readPj += readEnergyPj(rowHit);
    if (rowHit)
        ++_stats.rowHitReads;
    else
        ++_stats.bufferReads;
}

void
EnergyModel::recordWrite(bool slow)
{
    _stats.writePj += writeEnergyPj(slow);
    if (slow)
        ++_stats.slowWrites;
    else
        ++_stats.normalWrites;
}

void
EnergyModel::recordCancelledWrite(bool slow, double progress)
{
    panic_if(progress < 0.0 || progress > 1.0,
             "cancelled-write progress %f out of [0, 1]", progress);
    _stats.writePj += writeEnergyPj(slow) * progress;
    ++_stats.cancelledWrites;
}

} // namespace mellowsim
