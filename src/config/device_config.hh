/**
 * @file
 * Datasheet device configs: binding `KEY value` files into the
 * strong-typed simulator configuration, and the shipped device zoo.
 *
 * A device file (configs/<name>.config, NVMain-style format — see
 * config_file.hh) describes one memory technology point: interface
 * clocking, geometry, timing, the Equation-2 endurance parameters and
 * the Table-V/VI energy model, plus the per-channel controller
 * provisioning. bindDeviceConfig() turns a parsed file into a
 * DeviceConfig through unit-named conversions only; the inverse,
 * emitDeviceConfig(), serialises a DeviceConfig back to canonical
 * config text, and the two compose into the round-trip oracle pinned
 * by tests/test_config.cc.
 *
 * The full field table, units and the constraint system every shipped
 * config must satisfy (checked statically by
 * tools/analyze/configcheck.py) are documented in DESIGN.md §14.
 */

#ifndef MELLOWSIM_CONFIG_DEVICE_CONFIG_HH
#define MELLOWSIM_CONFIG_DEVICE_CONFIG_HH

#include <string>
#include <vector>

#include "config/config_file.hh"
#include "nvm/controller.hh"

namespace mellowsim
{

/** One device technology point, fully bound to typed parameters. */
struct DeviceConfig
{
    /** Registry name (file stem), e.g. "reram_paper". */
    std::string name = "reram_paper";

    /** Memory channels in the system. */
    unsigned numChannels = 1;

    /** Bus transfers per clock (1 = SDR, 2 = DDR). */
    unsigned dataRate = 1;

    /** Data bus width in bits (the JEDEC-style 64 by default). */
    unsigned busWidthBits = 64;

    /**
     * Per-channel controller configuration: geometry, timing,
     * endurance, energy and queue provisioning. Policy fields
     * (WritePolicyConfig, quota, fault injection) are NOT device
     * properties and keep their defaults — a device file describes
     * hardware, not the experiment run on it.
     */
    MemControllerConfig controller;
};

/**
 * The directory device files are resolved from: $MELLOWSIM_CONFIG_DIR
 * when set, otherwise the repository's configs/ directory baked in at
 * build time.
 */
[[nodiscard]] std::string deviceConfigDir();

/** Registry names of every *.config in deviceConfigDir(), sorted. */
[[nodiscard]] std::vector<std::string> deviceConfigNames();

/**
 * Load and bind a device: @p nameOrPath is a registry name
 * ("reram_paper") or an explicit path to a .config file.
 */
[[nodiscard]] DeviceConfig loadDeviceConfig(
    const std::string &nameOrPath);

/** Bind an already-parsed config file. */
[[nodiscard]] DeviceConfig bindDeviceConfig(const ConfigFile &cfg,
                                            const std::string &name);

/**
 * Canonical config text for a bound device: every schema key, one per
 * line, in DESIGN.md §14 field-table order. parse -> bind -> emit ->
 * parse -> bind is field-identical (the round-trip oracle).
 */
[[nodiscard]] std::string emitDeviceConfig(const DeviceConfig &device);

/** Field-by-field equality of two bound devices (test oracle). */
[[nodiscard]] bool deviceConfigsEqual(const DeviceConfig &a,
                                      const DeviceConfig &b);

} // namespace mellowsim

#endif // MELLOWSIM_CONFIG_DEVICE_CONFIG_HH
