/**
 * @file
 * NVMain-style `KEY value` device-config parser.
 *
 * The format is the one NVMain ships its datasheet configs in (the
 * ISSCC-2012 ReRAM macro config is the exemplar):
 *
 *     ; comment until end of line
 *     CLK 400          ; interface clock, MHz
 *     tRCD 120
 *     INCLUDE base.config
 *
 *  - `;` starts a comment (anywhere on a line); `#` and `//` are
 *    accepted as comment leaders too, so annotations shared with the
 *    C++ lint tooling parse unchanged.
 *  - `INCLUDE <path>` splices another file, resolved relative to the
 *    including file; include cycles and runaway depth are fatal.
 *  - Later assignments override earlier ones (including values pulled
 *    in via INCLUDE), which is how a derived device file specialises
 *    a base: the winning assignment keeps the key's original
 *    first-seen position, so emit() is stable under overrides.
 *
 * Values leave the parser ONLY through unit-named typed accessors
 * (nanoseconds() -> Tick, megahertz() -> Megahertz, picojoules() ->
 * Picojoules, ...): there is deliberately no `double get(key)` — the
 * unit a key is read in is visible at every call site, which is what
 * keeps a mis-scaled datasheet number a local, reviewable mistake
 * instead of a silently-wrong simulation (DESIGN.md §14).
 */

#ifndef MELLOWSIM_CONFIG_CONFIG_FILE_HH
#define MELLOWSIM_CONFIG_CONFIG_FILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/strong_types.hh"
#include "sim/types.hh"

namespace mellowsim
{

/** One key's final binding, with the provenance of the winning line. */
struct ConfigEntry
{
    std::string key;
    std::string value;  ///< raw text, comment and whitespace stripped
    std::string file;   ///< file of the winning assignment
    int line = 0;       ///< 1-based line of the winning assignment
};

/** See file comment. */
class ConfigFile
{
  public:
    /** Parse @p path (and its INCLUDEs); any error is fatal(). */
    [[nodiscard]] static ConfigFile parseFile(const std::string &path);

    /** Parse in-memory text (INCLUDE resolves relative to @p dir). */
    [[nodiscard]] static ConfigFile
    parseString(const std::string &text,
                const std::string &name = "<string>",
                const std::string &dir = ".");

    [[nodiscard]] bool has(const std::string &key) const;

    /** All bindings, in first-seen key order (emit order). */
    [[nodiscard]] const std::vector<ConfigEntry> &entries() const
    {
        return _entries;
    }

    // --- Unit-named typed accessors (the only value exits) ----------
    /** A dimensionless non-negative integer (queue sizes, ranks). */
    [[nodiscard]] std::uint64_t count(const std::string &key) const;

    /** A dimensionless real factor (ExpoFactor, efficiency). */
    [[nodiscard]] double ratio(const std::string &key) const;

    /** A boolean: true/false (also 1/0, on/off). */
    [[nodiscard]] bool flag(const std::string &key) const;

    /** A bare identifier (cell type names and the like). */
    [[nodiscard]] std::string word(const std::string &key) const;

    /** A duration given in nanoseconds, as simulator ticks. */
    [[nodiscard]] Tick nanoseconds(const std::string &key) const;

    /** A clock frequency given in megahertz. */
    [[nodiscard]] Megahertz megahertz(const std::string &key) const;

    /** An energy given in picojoules. */
    [[nodiscard]] Picojoules picojoules(const std::string &key) const;

    /** A size given in bytes. */
    [[nodiscard]] std::uint64_t bytes(const std::string &key) const;

    /** A width given in bits. */
    [[nodiscard]] unsigned bits(const std::string &key) const;

    // --- Defaulted variants (absent key -> fallback) ----------------
    [[nodiscard]] std::uint64_t countOr(const std::string &key,
                                        std::uint64_t fallback) const;
    [[nodiscard]] double ratioOr(const std::string &key,
                                 double fallback) const;
    [[nodiscard]] bool flagOr(const std::string &key,
                              bool fallback) const;
    [[nodiscard]] std::string wordOr(const std::string &key,
                                     const std::string &fallback) const;
    [[nodiscard]] Tick nanosecondsOr(const std::string &key,
                                     Tick fallback) const;
    [[nodiscard]] Picojoules picojoulesOr(const std::string &key,
                                          Picojoules fallback) const;

    /**
     * Canonical `KEY value` text: one binding per line, first-seen
     * key order, overrides already folded in. parse(emit()) is
     * field-identical to the source config (the round-trip oracle in
     * tests/test_config.cc pins this for every shipped device).
     */
    [[nodiscard]] std::string emit() const;

    /** The name parse was invoked with (diagnostics). */
    [[nodiscard]] const std::string &source() const { return _source; }

  private:
    [[nodiscard]] const ConfigEntry &require(
        const std::string &key) const;
    [[nodiscard]] double numeric(const std::string &key) const;

    void parseLines(const std::string &text, const std::string &name,
                    const std::string &dir, int depth);

    std::string _source;
    std::vector<ConfigEntry> _entries;
};

} // namespace mellowsim

#endif // MELLOWSIM_CONFIG_CONFIG_FILE_HH
