#include "config/config_file.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace mellowsim
{

namespace
{

/** INCLUDE nesting bound (a cycle would otherwise recurse forever). */
constexpr int kMaxIncludeDepth = 16;

std::string
stripComment(const std::string &line)
{
    // `;` anywhere; `#` only as the first non-blank character (so a
    // value can never contain one anyway); `//` anywhere.
    std::string out = line;
    if (auto pos = out.find(';'); pos != std::string::npos)
        out.erase(pos);
    if (auto pos = out.find("//"); pos != std::string::npos)
        out.erase(pos);
    std::size_t first = out.find_first_not_of(" \t\r");
    if (first != std::string::npos && out[first] == '#')
        out.clear();
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

std::string
dirOf(const std::string &path)
{
    std::size_t pos = path.find_last_of('/');
    return pos == std::string::npos ? std::string(".")
                                    : path.substr(0, pos);
}

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "config: cannot open '%s'", path.c_str());
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

bool
validKey(const std::string &key)
{
    if (key.empty())
        return false;
    if (std::isdigit(static_cast<unsigned char>(key[0])) != 0)
        return false;
    for (char c : key) {
        if (std::isalnum(static_cast<unsigned char>(c)) == 0 &&
            c != '_')
            return false;
    }
    return true;
}

} // namespace

ConfigFile
ConfigFile::parseFile(const std::string &path)
{
    ConfigFile cfg;
    cfg._source = path;
    cfg.parseLines(readWholeFile(path), path, dirOf(path), 0);
    return cfg;
}

ConfigFile
ConfigFile::parseString(const std::string &text, const std::string &name,
                        const std::string &dir)
{
    ConfigFile cfg;
    cfg._source = name;
    cfg.parseLines(text, name, dir, 0);
    return cfg;
}

void
ConfigFile::parseLines(const std::string &text, const std::string &name,
                       const std::string &dir, int depth)
{
    fatal_if(depth > kMaxIncludeDepth,
             "config %s: INCLUDE nesting exceeds %d (cycle?)",
             name.c_str(), kMaxIncludeDepth);

    std::istringstream in(text);
    std::string raw;
    int lineno = 0;
    while (std::getline(in, raw)) {
        ++lineno;
        std::string line = trim(stripComment(raw));
        if (line.empty())
            continue;

        std::size_t split = line.find_first_of(" \t");
        std::string key = line.substr(0, split);
        std::string value =
            split == std::string::npos ? "" : trim(line.substr(split));
        fatal_if(!validKey(key), "config %s:%d: bad key '%s'",
                 name.c_str(), lineno, key.c_str());
        fatal_if(value.empty(), "config %s:%d: key '%s' has no value",
                 name.c_str(), lineno, key.c_str());

        if (key == "INCLUDE") {
            std::string sub = value[0] == '/' ? value
                                              : dir + "/" + value;
            parseLines(readWholeFile(sub), sub, dirOf(sub), depth + 1);
            continue;
        }

        bool found = false;
        for (ConfigEntry &entry : _entries) {
            if (entry.key == key) {
                // Override: keep the first-seen position, record the
                // winning assignment's provenance.
                entry.value = value;
                entry.file = name;
                entry.line = lineno;
                found = true;
                break;
            }
        }
        if (!found)
            _entries.push_back({key, value, name, lineno});
    }
}

bool
ConfigFile::has(const std::string &key) const
{
    for (const ConfigEntry &entry : _entries) {
        if (entry.key == key)
            return true;
    }
    return false;
}

const ConfigEntry &
ConfigFile::require(const std::string &key) const
{
    for (const ConfigEntry &entry : _entries) {
        if (entry.key == key)
            return entry;
    }
    fatal("config %s: missing required key '%s'", _source.c_str(),
          key.c_str());
}

double
ConfigFile::numeric(const std::string &key) const
{
    const ConfigEntry &entry = require(key);
    errno = 0;
    char *end = nullptr;
    double parsed = std::strtod(entry.value.c_str(), &end);
    fatal_if(end == entry.value.c_str() || *end != '\0' || errno != 0,
             "config %s:%d: key '%s': '%s' is not a number",
             entry.file.c_str(), entry.line, key.c_str(),
             entry.value.c_str());
    return parsed;
}

std::uint64_t
ConfigFile::count(const std::string &key) const
{
    const ConfigEntry &entry = require(key);
    double parsed = numeric(key);
    fatal_if(parsed < 0 || parsed != static_cast<double>(
                               static_cast<std::uint64_t>(parsed)),
             "config %s:%d: key '%s': '%s' is not a non-negative "
             "integer",
             entry.file.c_str(), entry.line, key.c_str(),
             entry.value.c_str());
    return static_cast<std::uint64_t>(parsed);
}

double
ConfigFile::ratio(const std::string &key) const
{
    return numeric(key);
}

bool
ConfigFile::flag(const std::string &key) const
{
    const ConfigEntry &entry = require(key);
    const std::string &v = entry.value;
    if (v == "true" || v == "1" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "off")
        return false;
    fatal("config %s:%d: key '%s': '%s' is not a boolean",
          entry.file.c_str(), entry.line, key.c_str(), v.c_str());
}

std::string
ConfigFile::word(const std::string &key) const
{
    return require(key).value;
}

Tick
ConfigFile::nanoseconds(const std::string &key) const
{
    double ns = numeric(key);
    const ConfigEntry &entry = require(key);
    fatal_if(ns < 0, "config %s:%d: key '%s': negative duration",
             entry.file.c_str(), entry.line, key.c_str());
    return ticksFromNanoseconds(ns);
}

Megahertz
ConfigFile::megahertz(const std::string &key) const
{
    double mhz = numeric(key);
    const ConfigEntry &entry = require(key);
    fatal_if(mhz <= 0, "config %s:%d: key '%s': clock must be > 0 MHz",
             entry.file.c_str(), entry.line, key.c_str());
    return Megahertz(mhz);
}

Picojoules
ConfigFile::picojoules(const std::string &key) const
{
    double pj = numeric(key);
    const ConfigEntry &entry = require(key);
    fatal_if(pj < 0, "config %s:%d: key '%s': negative energy",
             entry.file.c_str(), entry.line, key.c_str());
    return Picojoules(pj);
}

std::uint64_t
ConfigFile::bytes(const std::string &key) const
{
    return count(key);
}

unsigned
ConfigFile::bits(const std::string &key) const
{
    std::uint64_t v = count(key);
    const ConfigEntry &entry = require(key);
    fatal_if(v == 0 || v > 4096,
             "config %s:%d: key '%s': implausible bit width %llu",
             entry.file.c_str(), entry.line, key.c_str(),
             static_cast<unsigned long long>(v));
    return static_cast<unsigned>(v);
}

std::uint64_t
ConfigFile::countOr(const std::string &key, std::uint64_t fallback) const
{
    return has(key) ? count(key) : fallback;
}

double
ConfigFile::ratioOr(const std::string &key, double fallback) const
{
    return has(key) ? ratio(key) : fallback;
}

bool
ConfigFile::flagOr(const std::string &key, bool fallback) const
{
    return has(key) ? flag(key) : fallback;
}

std::string
ConfigFile::wordOr(const std::string &key,
                   const std::string &fallback) const
{
    return has(key) ? word(key) : fallback;
}

Tick
ConfigFile::nanosecondsOr(const std::string &key, Tick fallback) const
{
    return has(key) ? nanoseconds(key) : fallback;
}

Picojoules
ConfigFile::picojoulesOr(const std::string &key,
                         Picojoules fallback) const
{
    return has(key) ? picojoules(key) : fallback;
}

std::string
ConfigFile::emit() const
{
    std::ostringstream out;
    for (const ConfigEntry &entry : _entries)
        out << entry.key << " " << entry.value << "\n";
    return out.str();
}

} // namespace mellowsim
