#include "config/device_config.hh"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "energy/energy_model.hh"
#include "sim/logging.hh"

namespace mellowsim
{

namespace
{

#ifndef MELLOWSIM_DEFAULT_CONFIG_DIR
#define MELLOWSIM_DEFAULT_CONFIG_DIR "configs"
#endif

/** Shortest round-trip decimal form of a double (config emit). */
std::string
fmtDouble(double v)
{
    char buf[64];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    panic_if(ec != std::errc(), "double formatting failed");
    return std::string(buf, end);
}

/** Ticks back to the nanoseconds a config file spells them in. */
double
nanosecondsOf(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kNanosecond);
}

CellType
cellTypeFromName(const std::string &name, const std::string &source)
{
    for (CellType cell : kAllCellTypes) {
        if (cellTypeName(cell) == name)
            return cell;
    }
    fatal("config %s: unknown cell type '%s' (expected CellA..CellE)",
          source.c_str(), name.c_str());
}

} // namespace

std::string
deviceConfigDir()
{
    const char *env = std::getenv("MELLOWSIM_CONFIG_DIR");
    if (env != nullptr && *env != '\0')
        return env;
    return MELLOWSIM_DEFAULT_CONFIG_DIR;
}

std::vector<std::string>
deviceConfigNames()
{
    namespace fs = std::filesystem;
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(deviceConfigDir(), ec)) {
        if (entry.path().extension() == ".config")
            names.push_back(entry.path().stem().string());
    }
    // Directory iteration order is filesystem-dependent; every
    // consumer (device_zoo, bench sweeps) needs a stable order.
    std::sort(names.begin(), names.end());
    return names;
}

DeviceConfig
loadDeviceConfig(const std::string &nameOrPath)
{
    namespace fs = std::filesystem;
    std::string path = nameOrPath;
    std::string name = nameOrPath;
    if (nameOrPath.find('/') == std::string::npos &&
        fs::path(nameOrPath).extension() != ".config") {
        path = deviceConfigDir() + "/" + nameOrPath + ".config";
    } else {
        name = fs::path(nameOrPath).stem().string();
    }
    return bindDeviceConfig(ConfigFile::parseFile(path), name);
}

DeviceConfig
bindDeviceConfig(const ConfigFile &cfg, const std::string &name)
{
    DeviceConfig dev;
    dev.name = name;
    MemControllerConfig &c = dev.controller;
    const std::string &src = cfg.source();

    // --- Interface ---------------------------------------------------
    c.timing.tCK = clockPeriodTicks(cfg.megahertz("CLK"));
    dev.dataRate = static_cast<unsigned>(cfg.countOr("RATE", 1));
    dev.busWidthBits = cfg.has("BusWidth") ? cfg.bits("BusWidth") : 64;

    // --- Timing ------------------------------------------------------
    c.timing.tRCD = cfg.nanoseconds("tRCD");
    c.timing.tCAS = cfg.nanoseconds("tCAS");
    c.timing.tWP = cfg.nanoseconds("tWP");
    c.timing.tFAW = cfg.nanoseconds("tFAW");
    c.timing.tBurst = cfg.nanoseconds("tBurst");

    // --- Geometry ----------------------------------------------------
    dev.numChannels = static_cast<unsigned>(cfg.count("CHANNELS"));
    const auto ranks = cfg.count("RANKS");
    const auto banksPerRank = cfg.count("BANKS");
    const auto rows = cfg.count("ROWS");
    fatal_if(dev.numChannels == 0 || ranks == 0 || banksPerRank == 0 ||
                 rows == 0,
             "config %s: CHANNELS/RANKS/BANKS/ROWS must be positive",
             src.c_str());
    c.geometry.numRanks = static_cast<unsigned>(ranks);
    c.geometry.numBanks = static_cast<unsigned>(banksPerRank * ranks);
    c.geometry.rowBytes = cfg.bytes("RowBytes");
    c.geometry.rowBufferBytes = cfg.bytes("RowBufferBytes");
    c.geometry.interleaveBytes =
        cfg.has("InterleaveBytes") ? cfg.bytes("InterleaveBytes")
                                   : c.geometry.rowBytes;
    c.geometry.capacityBytes = cfg.bytes("CapacityBytes");
    c.geometry.pageScramble = cfg.flagOr("PageScramble", true);
    c.geometry.pageBytes = cfg.has("PageBytes") ? cfg.bytes("PageBytes")
                                                : c.geometry.pageBytes;

    // The one geometry identity binding cannot defer to configcheck:
    // a ROWS that disagrees with the capacity arithmetic would build
    // a memory of a different size than the datasheet promises.
    fatal_if(static_cast<std::uint64_t>(dev.numChannels) *
                     c.geometry.numBanks * rows * c.geometry.rowBytes !=
                 c.geometry.capacityBytes,
             "config %s: CHANNELS*RANKS*BANKS*ROWS*RowBytes != "
             "CapacityBytes",
             src.c_str());

    // --- Endurance (Equation 2) --------------------------------------
    // The endurance baseline is the normal write pulse by definition:
    // Endurance(tWP) = E0.
    c.endurance.baseWriteLatency = c.timing.tWP;
    c.endurance.baseEndurance = cfg.ratio("BaseEndurance");
    c.endurance.expoFactor = cfg.ratio("ExpoFactor");

    // --- Energy (Tables V/VI) ----------------------------------------
    c.energy.cell =
        cellTypeFromName(cfg.wordOr("Cell", "CellC"), src);
    if (cfg.has("CellEnergyPj"))
        c.energy.cellEnergyOverridePj = cfg.picojoules("CellEnergyPj");
    c.energy.peripheralWritePj = cfg.picojoulesOr(
        "PeripheralWritePj", c.energy.peripheralWritePj);
    c.energy.peripheralSlowWritePj = cfg.picojoulesOr(
        "PeripheralSlowWritePj", c.energy.peripheralSlowWritePj);
    if (cfg.has("BitsPerWrite"))
        c.energy.bitsPerWrite = cfg.bits("BitsPerWrite");
    c.energy.slowCellEnergyFactor =
        cfg.ratioOr("SlowCellEnergyFactor", c.energy.slowCellEnergyFactor);
    c.energy.bufferReadPj =
        cfg.picojoulesOr("BufferReadPj", c.energy.bufferReadPj);
    c.energy.rowHitReadPj =
        cfg.picojoulesOr("RowHitReadPj", c.energy.rowHitReadPj);

    // --- Controller provisioning -------------------------------------
    c.readQueueSize = static_cast<unsigned>(
        cfg.countOr("ReadQueueSize", c.readQueueSize));
    c.writeQueueSize = static_cast<unsigned>(
        cfg.countOr("WriteQueueSize", c.writeQueueSize));
    c.eagerQueueSize = static_cast<unsigned>(
        cfg.countOr("EagerQueueSize", c.eagerQueueSize));
    c.drainLowThreshold = static_cast<unsigned>(
        cfg.countOr("DrainLowThreshold", c.drainLowThreshold));
    c.busLeadBursts = static_cast<unsigned>(
        cfg.countOr("BusLeadBursts", c.busLeadBursts));
    c.forwardLatency =
        cfg.nanosecondsOr("ForwardLatencyNs", c.forwardLatency);
    c.recentReadWindow =
        cfg.nanosecondsOr("RecentReadWindowNs", c.recentReadWindow);
    c.maxWriteCancellations = static_cast<unsigned>(
        cfg.countOr("MaxWriteCancellations", c.maxWriteCancellations));
    c.levelingEfficiency =
        cfg.ratioOr("LevelingEfficiency", c.levelingEfficiency);

    return dev;
}

std::string
emitDeviceConfig(const DeviceConfig &device)
{
    const MemControllerConfig &c = device.controller;
    const MemGeometry &g = c.geometry;
    std::uint64_t rows = g.capacityBytes / device.numChannels /
                         g.numBanks / g.rowBytes;

    std::ostringstream out;
    out << "; mellowsim device config: " << device.name
        << " (canonical emit)\n";

    out << "CLK "
        << fmtDouble(static_cast<double>(kMicrosecond) /
                     static_cast<double>(c.timing.tCK))
        << "\n";
    out << "RATE " << device.dataRate << "\n";
    out << "BusWidth " << device.busWidthBits << "\n";

    out << "tRCD " << fmtDouble(nanosecondsOf(c.timing.tRCD)) << "\n";
    out << "tCAS " << fmtDouble(nanosecondsOf(c.timing.tCAS)) << "\n";
    out << "tWP " << fmtDouble(nanosecondsOf(c.timing.tWP)) << "\n";
    out << "tFAW " << fmtDouble(nanosecondsOf(c.timing.tFAW)) << "\n";
    out << "tBurst " << fmtDouble(nanosecondsOf(c.timing.tBurst))
        << "\n";

    out << "CHANNELS " << device.numChannels << "\n";
    out << "RANKS " << g.numRanks << "\n";
    out << "BANKS " << g.banksPerRank() << "\n";
    out << "ROWS " << rows << "\n";
    out << "RowBytes " << g.rowBytes << "\n";
    out << "RowBufferBytes " << g.rowBufferBytes << "\n";
    out << "InterleaveBytes " << g.interleaveBytes << "\n";
    out << "CapacityBytes " << g.capacityBytes << "\n";
    out << "PageScramble " << (g.pageScramble ? "true" : "false")
        << "\n";
    out << "PageBytes " << g.pageBytes << "\n";

    out << "BaseEndurance " << fmtDouble(c.endurance.baseEndurance)
        << "\n";
    out << "ExpoFactor " << fmtDouble(c.endurance.expoFactor) << "\n";

    out << "Cell " << cellTypeName(c.energy.cell) << "\n";
    if (c.energy.cellEnergyOverridePj) {
        out << "CellEnergyPj "
            << fmtDouble(c.energy.cellEnergyOverridePj->value()) << "\n";
    }
    out << "PeripheralWritePj "
        << fmtDouble(c.energy.peripheralWritePj.value()) << "\n";
    out << "PeripheralSlowWritePj "
        << fmtDouble(c.energy.peripheralSlowWritePj.value()) << "\n";
    out << "BitsPerWrite " << c.energy.bitsPerWrite << "\n";
    out << "SlowCellEnergyFactor "
        << fmtDouble(c.energy.slowCellEnergyFactor) << "\n";
    out << "BufferReadPj " << fmtDouble(c.energy.bufferReadPj.value())
        << "\n";
    out << "RowHitReadPj " << fmtDouble(c.energy.rowHitReadPj.value())
        << "\n";

    out << "ReadQueueSize " << c.readQueueSize << "\n";
    out << "WriteQueueSize " << c.writeQueueSize << "\n";
    out << "EagerQueueSize " << c.eagerQueueSize << "\n";
    out << "DrainLowThreshold " << c.drainLowThreshold << "\n";
    out << "BusLeadBursts " << c.busLeadBursts << "\n";
    out << "ForwardLatencyNs " << fmtDouble(nanosecondsOf(c.forwardLatency))
        << "\n";
    out << "RecentReadWindowNs "
        << fmtDouble(nanosecondsOf(c.recentReadWindow)) << "\n";
    out << "MaxWriteCancellations " << c.maxWriteCancellations << "\n";
    out << "LevelingEfficiency " << fmtDouble(c.levelingEfficiency)
        << "\n";

    return out.str();
}

bool
deviceConfigsEqual(const DeviceConfig &a, const DeviceConfig &b)
{
    const MemControllerConfig &ca = a.controller;
    const MemControllerConfig &cb = b.controller;
    return a.numChannels == b.numChannels &&
           a.dataRate == b.dataRate &&
           a.busWidthBits == b.busWidthBits &&
           ca.timing.tCK == cb.timing.tCK &&
           ca.timing.tRCD == cb.timing.tRCD &&
           ca.timing.tCAS == cb.timing.tCAS &&
           ca.timing.tWP == cb.timing.tWP &&
           ca.timing.tFAW == cb.timing.tFAW &&
           ca.timing.tBurst == cb.timing.tBurst &&
           ca.geometry.numBanks == cb.geometry.numBanks &&
           ca.geometry.numRanks == cb.geometry.numRanks &&
           ca.geometry.capacityBytes == cb.geometry.capacityBytes &&
           ca.geometry.rowBufferBytes == cb.geometry.rowBufferBytes &&
           ca.geometry.rowBytes == cb.geometry.rowBytes &&
           ca.geometry.interleaveBytes == cb.geometry.interleaveBytes &&
           ca.geometry.pageScramble == cb.geometry.pageScramble &&
           ca.geometry.pageBytes == cb.geometry.pageBytes &&
           ca.endurance.baseWriteLatency ==
               cb.endurance.baseWriteLatency &&
           ca.endurance.baseEndurance == cb.endurance.baseEndurance &&
           ca.endurance.expoFactor == cb.endurance.expoFactor &&
           ca.energy.cell == cb.energy.cell &&
           ca.energy.cellEnergyOverridePj ==
               cb.energy.cellEnergyOverridePj &&
           ca.energy.peripheralWritePj == cb.energy.peripheralWritePj &&
           ca.energy.peripheralSlowWritePj ==
               cb.energy.peripheralSlowWritePj &&
           ca.energy.bitsPerWrite == cb.energy.bitsPerWrite &&
           ca.energy.slowCellEnergyFactor ==
               cb.energy.slowCellEnergyFactor &&
           ca.energy.bufferReadPj == cb.energy.bufferReadPj &&
           ca.energy.rowHitReadPj == cb.energy.rowHitReadPj &&
           ca.readQueueSize == cb.readQueueSize &&
           ca.writeQueueSize == cb.writeQueueSize &&
           ca.eagerQueueSize == cb.eagerQueueSize &&
           ca.drainLowThreshold == cb.drainLowThreshold &&
           ca.busLeadBursts == cb.busLeadBursts &&
           ca.forwardLatency == cb.forwardLatency &&
           ca.recentReadWindow == cb.recentReadWindow &&
           ca.maxWriteCancellations == cb.maxWriteCancellations &&
           ca.levelingEfficiency == cb.levelingEfficiency;
}

} // namespace mellowsim
