/**
 * @file
 * Per-bank wear accounting and lifetime extrapolation.
 *
 * Wear is accumulated in "wear units": one unit is the whole life of
 * one block, so a write issued at latency L adds
 * EnduranceModel::wearPerWrite(L) units to the written block.
 *
 * Lifetime follows the paper's definition — the system cyclically
 * re-executes the same pattern and dies when the first cell exhausts
 * its endurance. With Start-Gap rotating blocks across the bank,
 * steady-state wear is level up to an efficiency factor eta, so:
 *
 *     lifetime = simTime * numBlocks * eta / totalWearUnits(bank)
 *
 * minimised over banks. eta defaults to 0.9, matching the Ratio_quota
 * the paper uses to budget for Start-Gap's extra copies.
 *
 * A detailed per-block mode (used by the tests and available to
 * library users) additionally tracks every physical block through the
 * actual Start-Gap remapping, so the leveling assumption itself is
 * verifiable.
 */

#ifndef MELLOWSIM_WEAR_WEAR_TRACKER_HH
#define MELLOWSIM_WEAR_WEAR_TRACKER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/indexed.hh"
#include "sim/stats.hh"
#include "sim/strong_types.hh"
#include "sim/types.hh"
#include "wear/endurance_model.hh"
#include "wear/wear_leveler.hh"

namespace mellowsim
{

/** Aggregate wear statistics for one bank. */
struct BankWearStats
{
    double wearUnits = 0.0;          ///< total life-fractions consumed
    std::uint64_t normalWrites = 0;  ///< completed normal-speed writes
    std::uint64_t slowWrites = 0;    ///< completed slow writes
    std::uint64_t cancelledWrites = 0; ///< aborted attempts (partial wear)
    /** Extra writes from leveler maintenance (gap moves / swaps). */
    std::uint64_t gapMoveWrites = 0;
    /**
     * Maintenance writes charged by the controller's own leveler
     * (migration copies issued as real traffic), as opposed to
     * gapMoveWrites which counts the detailed-mode internal leveler's
     * copies. The wear-conservation checker ties this to the
     * controller's maintenanceWrites counter.
     */
    std::uint64_t maintenanceWrites = 0;
};

/** Configuration of the wear tracker. */
struct WearTrackerConfig
{
    unsigned numBanks = 16;
    /** Logical blocks per bank (4 GB / 16 banks / 64 B = 4 Mi). */
    std::uint64_t blocksPerBank = 4ull * 1024 * 1024;
    /** Wear-leveling scheme (detailed mode). */
    WearLevelerKind leveler = WearLevelerKind::StartGap;
    /** Maintenance period in writes (gap move / refresh step). */
    std::uint64_t gapWritePeriod = 100;
    /** Key seed for randomized levelers. */
    std::uint64_t levelerSeed = 0xBADC0DE5ull;
    /** Wear-leveling efficiency used in the lifetime extrapolation. */
    double levelingEfficiency = 0.9;
    /**
     * Track every physical block through Start-Gap. Costs
     * numBanks * blocksPerBank * 8 bytes; default off (aggregate
     * accounting is exact for the lifetime formula either way).
     */
    bool detailedBlocks = false;
};

/**
 * Tracks wear for every bank of the memory system and converts it into
 * the paper's lifetime metric.
 */
class WearTracker
{
  public:
    WearTracker(const WearTrackerConfig &config,
                const EnduranceModel &model);

    /**
     * Account a completed write.
     *
     * @param bank          Bank index.
     * @param line          Device line written (post fault remap).
     * @param writeLatency  Device pulse time actually used.
     * @param slow          True if this was a slow write (for counts).
     */
    void recordWrite(BankId bank, DeviceAddr line, Tick writeLatency,
                     bool slow);

    /**
     * Account a cancelled write attempt: the pulse ran for
     * @p elapsed out of @p writeLatency before being aborted, wearing
     * the cell by the completed fraction scaled by
     * @p cancelWearFraction (see DESIGN.md "Substitutions").
     */
    void recordCancelledWrite(BankId bank, DeviceAddr line,
                              Tick writeLatency, Tick elapsed,
                              bool slow, double cancelWearFraction);

    /**
     * Account a controller-issued maintenance write (wear-leveler
     * migration copy) of pulse time @p writeLatency to the device
     * @p line. Wears the cell like any write but is counted
     * separately from demand traffic — it must not advance the
     * detailed-mode internal leveler either (that leveler belongs to
     * a different, measurement-only indirection).
     */
    void recordMaintenanceWrite(BankId bank, DeviceAddr line,
                                Tick writeLatency);

    /** Aggregate stats of one bank. */
    [[nodiscard]] const BankWearStats &bankStats(BankId bank) const;

    /** Total wear units over all banks. */
    [[nodiscard]] double totalWearUnits() const;

    /** Wear units of the most-worn bank. */
    [[nodiscard]] double maxBankWearUnits() const;

    /**
     * Leveled lifetime extrapolation in seconds for the whole memory
     * (minimum over banks), given the simulated time @p simTime.
     * Returns +inf if nothing was written.
     */
    [[nodiscard]] double lifetimeSeconds(Tick simTime) const;

    /** Same, in years. */
    [[nodiscard]] double lifetimeYears(Tick simTime) const;

    /** Lifetime of a single bank, in seconds. */
    [[nodiscard]] double bankLifetimeSeconds(BankId bank,
                                             Tick simTime) const;

    /**
     * Detailed mode only: maximum per-physical-block wear units in a
     * bank, for verifying the leveling assumption.
     */
    [[nodiscard]] double maxBlockWear(BankId bank) const;

    /** Detailed mode only: mean per-physical-block wear units. */
    [[nodiscard]] double meanBlockWear(BankId bank) const;

    [[nodiscard]] const WearTrackerConfig &config() const
    {
        return _config;
    }
    [[nodiscard]] const EnduranceModel &model() const { return _model; }

    /** Wear-leveler state for a bank (detailed mode only). */
    [[nodiscard]] const WearLeveler &leveler(BankId bank) const;

  private:
    struct BankState
    {
        BankWearStats stats;
        std::unique_ptr<WearLeveler> leveler; // detailed mode
        /** Detailed mode: wear per physical (leveled) block. */
        IndexedVector<LeveledAddr, double> blockWear;
    };

    void addWear(BankId bank, DeviceAddr line, double units,
                 bool countAsWrite);

    WearTrackerConfig _config;
    const EnduranceModel &_model;
    IndexedVector<BankId, BankState> _banks;
};

} // namespace mellowsim

#endif // MELLOWSIM_WEAR_WEAR_TRACKER_HH
