/**
 * @file
 * SoftWear-style software-only page-granularity wear leveling
 * (Hakert et al. — software wear management for non-volatile main
 * memories; see PAPERS.md).
 *
 * Unlike Start-Gap (hardware registers, block granularity, constant
 * rotation) SoftWear models what an OS/runtime can do with nothing
 * but an indirection table and *approximate* write counts:
 *
 *  - The bank is divided into pages of `pageBlocks` blocks; a
 *    software page table permutes logical pages over physical pages.
 *  - Write counts are sampled: only every `counterSamplePeriod`-th
 *    demand write bumps the counter of the physical page it hit, so
 *    the bookkeeping cost is bounded and the counts carry bounded
 *    error — exactly the approximation the paper argues is enough.
 *  - When a physical page accumulates `relocationThreshold` sampled
 *    writes since it last moved, its logical occupant is swapped with
 *    the occupant of the least-written physical page. The swap
 *    copies both pages, so 2 * pageBlocks migration writes are queued
 *    and the controller charges them as real write traffic (bank
 *    occupancy, wear, endurance, energy).
 *
 * The mapping is a page permutation at every instant, so
 * logical -> physical stays bijective by construction; the property
 * tests sweep that invariant alongside Start-Gap composition.
 */

#ifndef MELLOWSIM_WEAR_SOFT_WEAR_HH
#define MELLOWSIM_WEAR_SOFT_WEAR_HH

#include <cstdint>
#include <vector>

#include "wear/wear_leveler.hh"

namespace mellowsim
{

/** See file comment. */
class SoftWear : public WearLeveler
{
  public:
    /**
     * @param numBlocks            Logical blocks managed.
     * @param pageBlocks           Blocks per software page (clamped
     *                             to numBlocks; must then divide it).
     * @param counterSamplePeriod  Every Nth demand write is sampled
     *                             into the page counters (>= 1).
     * @param relocationThreshold  Sampled writes on one page since
     *                             its last relocation that trigger a
     *                             swap with the coldest page (>= 1).
     */
    SoftWear(std::uint64_t numBlocks, std::uint64_t pageBlocks = 64,
             std::uint64_t counterSamplePeriod = 8,
             std::uint64_t relocationThreshold = 16);

    [[nodiscard]] std::uint64_t numBlocks() const override
    {
        return _numBlocks;
    }
    [[nodiscard]] std::uint64_t numPhysicalBlocks() const override
    {
        return _numBlocks;
    }

    [[nodiscard]] std::uint64_t
    remap(std::uint64_t logicalBlock) const override;

    unsigned noteWrite(std::uint64_t *extra = nullptr,
                       std::uint64_t logicalBlock = 0) override;

    [[nodiscard]] bool hasPendingMigration() const override
    {
        return _migrationsTaken < _migrations.size();
    }
    std::uint64_t takeMigrationWrite() override;

    [[nodiscard]] const char *name() const override
    {
        return "soft-wear";
    }

    // --- Introspection (tests, benches) ----------------------------
    [[nodiscard]] std::uint64_t numPages() const { return _numPages; }
    [[nodiscard]] std::uint64_t pageBlocks() const { return _pageBlocks; }
    /** Completed page swaps. */
    [[nodiscard]] std::uint64_t relocations() const
    {
        return _relocations;
    }
    /** Demand writes that hit the sampled counters. */
    [[nodiscard]] std::uint64_t sampledWrites() const
    {
        return _sampledWrites;
    }
    /** Sampled count of one physical page. */
    [[nodiscard]] std::uint64_t pageWriteCount(std::uint64_t physPage) const
    {
        return _count[physPage];
    }

  private:
    /** Swap the logical occupants of two physical pages. */
    void relocate(std::uint64_t hotPhys, std::uint64_t coldPhys);

    std::uint64_t _numBlocks;
    std::uint64_t _pageBlocks;
    std::uint64_t _numPages;
    std::uint64_t _samplePeriod;
    std::uint64_t _relocThreshold;

    /** Physical page of each logical page, and its inverse. */
    std::vector<std::uint64_t> _physOfLogical;
    std::vector<std::uint64_t> _logicalOfPhys;

    /** Sampled write counts per physical page (approximate). */
    std::vector<std::uint64_t> _count;
    /** Count at each physical page's last relocation. */
    std::vector<std::uint64_t> _countAtSwap;

    /** Pending migration writes (physical blocks), drained in order. */
    std::vector<std::uint64_t> _migrations;
    std::size_t _migrationsTaken = 0;

    std::uint64_t _writesSeen = 0;
    std::uint64_t _sampledWrites = 0;
    std::uint64_t _relocations = 0;
};

} // namespace mellowsim

#endif // MELLOWSIM_WEAR_SOFT_WEAR_HH
