/**
 * @file
 * Analytic write-latency / endurance trade-off model.
 *
 * Implements Equation 2 of the paper (derived from Strukov's analytic
 * model, Applied Physics A 2016):
 *
 *     Endurance(t_WP) = E0 * (t_WP / t0) ^ Expo_Factor
 *
 * with the paper's ReRAM baseline of t0 = 150 ns and E0 = 5e6 writes,
 * and Expo_Factor in [1.0, 3.0] (default 2.0, the quadratic trade-off
 * used in the paper's main results).
 */

#ifndef MELLOWSIM_WEAR_ENDURANCE_MODEL_HH
#define MELLOWSIM_WEAR_ENDURANCE_MODEL_HH

#include "sim/strong_types.hh"
#include "sim/types.hh"

namespace mellowsim
{

/** Parameters for the analytic endurance model (Section II). */
struct EnduranceParams
{
    /** Baseline (normal) write pulse time, t0. 150 ns for ReRAM. */
    // mlint: allow(timing-literal): compiled-in default tied to the
    // tWP config key by the device binding
    Tick baseWriteLatency = 150 * kNanosecond;
    /** Endurance at the baseline latency, in writes. 5e6 for ReRAM. */
    double baseEndurance = 5.0e6;
    /** Expo_Factor = U_F / U_S - 1, in [1.0, 3.0]; 2.0 by default. */
    double expoFactor = 2.0;
};

/**
 * Maps a write pulse latency to the cell endurance it implies.
 *
 * The model is monotone: slower writes never reduce endurance (for
 * expoFactor > 0); tests assert this property over dense sweeps.
 */
class EnduranceModel
{
  public:
    explicit EnduranceModel(const EnduranceParams &params = {});

    /** Endurance (total writes to failure) for a given pulse time. */
    [[nodiscard]] double enduranceAt(Tick writeLatency) const;

    /** Endurance for a latency slow-down factor N (N=1 is baseline). */
    [[nodiscard]] double enduranceAtFactor(PulseFactor n) const;

    /**
     * Wear units contributed by a single write at the given latency:
     * the fraction of the cell's life consumed, 1 / Endurance.
     */
    [[nodiscard]] double wearPerWrite(Tick writeLatency) const;

    /** Wear units for a latency factor N. */
    [[nodiscard]] double wearPerWriteFactor(PulseFactor n) const;

    [[nodiscard]] const EnduranceParams &params() const
    {
        return _params;
    }

  private:
    /** Shared power law over the (unclamped) latency ratio. */
    [[nodiscard]] double enduranceAtRatio(double n) const;

    EnduranceParams _params;
};

} // namespace mellowsim

#endif // MELLOWSIM_WEAR_ENDURANCE_MODEL_HH
