#include "wear/start_gap.hh"

#include "sim/logging.hh"

namespace mellowsim
{

StartGap::StartGap(std::uint64_t numBlocks, std::uint64_t gapWritePeriod)
    : _numBlocks(numBlocks), _gapWritePeriod(gapWritePeriod),
      _gap(numBlocks)
{
    fatal_if(numBlocks == 0, "Start-Gap needs at least one block");
    fatal_if(gapWritePeriod == 0,
             "Start-Gap gap write period must be positive");
}

std::uint64_t
StartGap::remap(std::uint64_t logicalBlock) const
{
    panic_if(logicalBlock >= _numBlocks,
             "logical block %llu out of range (N=%llu)",
             static_cast<unsigned long long>(logicalBlock),
             static_cast<unsigned long long>(_numBlocks));
    std::uint64_t pa = logicalBlock + _start;
    if (pa >= _numBlocks)
        pa -= _numBlocks;
    if (pa >= _gap)
        pa += 1;
    return pa;
}

unsigned
StartGap::noteWrite(std::uint64_t *extra, std::uint64_t /*logicalBlock*/)
{
    if (++_writesSinceMove < _gapWritePeriod)
        return 0;
    _writesSinceMove = 0;
    ++_gapMoves;
    if (_gap == 0) {
        // Wrap: the gap returns to the top and Start advances, which
        // rotates the whole mapping by one block. Under this mapping
        // convention the logical block that lived in physical block N
        // now maps to physical block 0, so one block is copied there.
        // (Qureshi et al. juggle the registers so that the wrap is
        // copy-free; the once-per-(N+1)-moves extra write here is
        // noise and keeps the mapping algebra simple.)
        _gap = _numBlocks;
        _start = _start + 1 == _numBlocks ? 0 : _start + 1;
        if (extra != nullptr)
            extra[0] = 0;
        return 1;
    }
    // Block at gap-1 is copied into the gap position; the gap moves
    // down to where that block lived.
    if (extra != nullptr)
        extra[0] = _gap;
    _gap -= 1;
    return 1;
}

} // namespace mellowsim
