/**
 * @file
 * Start-Gap wear leveling (Qureshi et al., MICRO 2009).
 *
 * The paper's system applies Start-Gap at bank granularity (Table II).
 * A bank of N logical blocks occupies N+1 physical blocks; the spare
 * one is the "gap". Two registers, Start and Gap, define the
 * logical-to-physical remapping:
 *
 *     pa = (la + start) mod N;   if (pa >= gap) pa += 1;
 *
 * Every `gapWritePeriod` demand writes the gap moves down by one
 * position (copying one block, which itself wears the destination);
 * once the gap wraps, Start advances. Over time this rotates every
 * logical block across every physical block, evening out wear.
 */

#ifndef MELLOWSIM_WEAR_START_GAP_HH
#define MELLOWSIM_WEAR_START_GAP_HH

#include <cstdint>

#include "sim/types.hh"
#include "wear/wear_leveler.hh"

namespace mellowsim
{

/**
 * Start-Gap remapper for one bank.
 *
 * Invariant (tested): for any register state the mapping from logical
 * block [0, N) to physical block [0, N] is injective and skips exactly
 * the gap position.
 */
class StartGap : public WearLeveler
{
  public:
    /**
     * @param numBlocks       Number of logical blocks, N (>= 1).
     * @param gapWritePeriod  Demand writes between gap movements
     *                        (psi in the Start-Gap paper; 100 there
     *                        and here by default).
     */
    explicit StartGap(std::uint64_t numBlocks,
                      std::uint64_t gapWritePeriod = 100);

    /** Number of logical blocks. */
    [[nodiscard]] std::uint64_t numBlocks() const override { return _numBlocks; }

    /** Number of physical blocks (logical + 1 gap). */
    [[nodiscard]] std::uint64_t numPhysicalBlocks() const override
    {
        return _numBlocks + 1;
    }

    /** Map a logical block index to its current physical block. */
    [[nodiscard]] std::uint64_t
    remap(std::uint64_t logicalBlock) const override;

    /**
     * Account one demand write; possibly moves the gap.
     *
     * @param[out] extra  If a gap movement happened, extra[0] receives
     *                    the physical block that took the copied data
     *                    (and therefore wore by one extra write).
     * @return 1 if a gap movement (extra write) occurred, else 0.
     */
    unsigned noteWrite(std::uint64_t *extra = nullptr,
                       std::uint64_t logicalBlock = 0) override;

    [[nodiscard]] const char *name() const override { return "start-gap"; }

    [[nodiscard]] std::uint64_t start() const { return _start; }
    [[nodiscard]] std::uint64_t gap() const { return _gap; }
    [[nodiscard]] std::uint64_t gapMoves() const { return _gapMoves; }

  private:
    std::uint64_t _numBlocks;
    std::uint64_t _gapWritePeriod;
    std::uint64_t _start = 0;
    /** Gap position in [0, N]; initially the spare block at index N. */
    std::uint64_t _gap;
    std::uint64_t _writesSinceMove = 0;
    std::uint64_t _gapMoves = 0;
};

} // namespace mellowsim

#endif // MELLOWSIM_WEAR_START_GAP_HH
