#include "wear/soft_wear.hh"

#include <algorithm>
#include <numeric>

#include "sim/logging.hh"

namespace mellowsim
{

SoftWear::SoftWear(std::uint64_t numBlocks, std::uint64_t pageBlocks,
                   std::uint64_t counterSamplePeriod,
                   std::uint64_t relocationThreshold)
    : _numBlocks(numBlocks),
      _pageBlocks(std::min(pageBlocks, numBlocks)),
      _samplePeriod(counterSamplePeriod),
      _relocThreshold(relocationThreshold)
{
    fatal_if(numBlocks == 0, "SoftWear needs at least one block");
    fatal_if(_pageBlocks == 0, "SoftWear page size must be positive");
    fatal_if(numBlocks % _pageBlocks != 0,
             "SoftWear page size %llu must divide the bank size %llu",
             static_cast<unsigned long long>(_pageBlocks),
             static_cast<unsigned long long>(numBlocks));
    fatal_if(counterSamplePeriod == 0,
             "SoftWear sample period must be positive");
    fatal_if(relocationThreshold == 0,
             "SoftWear relocation threshold must be positive");
    _numPages = numBlocks / _pageBlocks;
    _physOfLogical.resize(_numPages);
    _logicalOfPhys.resize(_numPages);
    std::iota(_physOfLogical.begin(), _physOfLogical.end(), 0);
    std::iota(_logicalOfPhys.begin(), _logicalOfPhys.end(), 0);
    _count.assign(_numPages, 0);
    _countAtSwap.assign(_numPages, 0);
}

std::uint64_t
SoftWear::remap(std::uint64_t logicalBlock) const
{
    panic_if(logicalBlock >= _numBlocks,
             "logical block %llu out of range (N=%llu)",
             static_cast<unsigned long long>(logicalBlock),
             static_cast<unsigned long long>(_numBlocks));
    std::uint64_t page = logicalBlock / _pageBlocks;
    std::uint64_t offset = logicalBlock % _pageBlocks;
    return _physOfLogical[page] * _pageBlocks + offset;
}

void
SoftWear::relocate(std::uint64_t hotPhys, std::uint64_t coldPhys)
{
    std::uint64_t hotLogical = _logicalOfPhys[hotPhys];
    std::uint64_t coldLogical = _logicalOfPhys[coldPhys];
    std::swap(_physOfLogical[hotLogical], _physOfLogical[coldLogical]);
    std::swap(_logicalOfPhys[hotPhys], _logicalOfPhys[coldPhys]);
    // Both pages are copied wholesale; every block of each page is
    // rewritten once, as real controller traffic.
    for (std::uint64_t b = 0; b < _pageBlocks; ++b)
        _migrations.push_back(hotPhys * _pageBlocks + b);
    for (std::uint64_t b = 0; b < _pageBlocks; ++b)
        _migrations.push_back(coldPhys * _pageBlocks + b);
    // Rearm both pages' thresholds at their current counts.
    _countAtSwap[hotPhys] = _count[hotPhys];
    _countAtSwap[coldPhys] = _count[coldPhys];
    ++_relocations;
}

unsigned
SoftWear::noteWrite(std::uint64_t *, std::uint64_t logicalBlock)
{
    if (++_writesSeen % _samplePeriod != 0)
        return 0;
    ++_sampledWrites;

    std::uint64_t phys = _physOfLogical[logicalBlock / _pageBlocks];
    ++_count[phys];
    if (_count[phys] - _countAtSwap[phys] < _relocThreshold)
        return 0;
    if (_numPages < 2)
        return 0;

    // Coldest physical page by sampled count; deterministic tie-break
    // on the lowest index.
    std::uint64_t coldest = phys == 0 ? 1 : 0;
    for (std::uint64_t p = 0; p < _numPages; ++p) {
        if (p != phys && _count[p] < _count[coldest])
            coldest = p;
    }
    if (_count[coldest] >= _count[phys]) {
        // Nothing colder to trade with; rearm so the page does not
        // retrigger on the very next sample.
        _countAtSwap[phys] = _count[phys];
        return 0;
    }
    relocate(phys, coldest);
    return 0;
}

std::uint64_t
SoftWear::takeMigrationWrite()
{
    panic_if(_migrationsTaken >= _migrations.size(),
             "takeMigrationWrite with no pending migration");
    std::uint64_t block = _migrations[_migrationsTaken++];
    if (_migrationsTaken == _migrations.size()) {
        _migrations.clear();
        _migrationsTaken = 0;
    }
    return block;
}

} // namespace mellowsim
