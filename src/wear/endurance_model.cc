#include "wear/endurance_model.hh"

#include <cmath>

#include "sim/logging.hh"

namespace mellowsim
{

EnduranceModel::EnduranceModel(const EnduranceParams &params)
    : _params(params)
{
    fatal_if(_params.baseWriteLatency == 0,
             "endurance model needs a non-zero baseline write latency");
    fatal_if(_params.baseEndurance <= 0.0,
             "endurance model needs a positive baseline endurance");
    fatal_if(_params.expoFactor < 0.0,
             "Expo_Factor must be non-negative (got %f)",
             _params.expoFactor);
}

double
EnduranceModel::enduranceAtRatio(double n) const
{
    fatal_if(n <= 0.0, "latency factor must be positive (got %f)", n);
    return _params.baseEndurance * std::pow(n, _params.expoFactor);
}

double
EnduranceModel::enduranceAtFactor(PulseFactor n) const
{
    // mlint: allow(value-escape): sanctioned hand-off of the (>= 1 by
    // construction) factor to the unclamped ratio path shared with
    // cancelled/test pulses.
    return enduranceAtRatio(n.value());
}

double
EnduranceModel::enduranceAt(Tick writeLatency) const
{
    // Cancelled or test-driven pulses may be shorter than the
    // baseline; the ratio path deliberately stays unclamped.
    double n = static_cast<double>(writeLatency) /
               static_cast<double>(_params.baseWriteLatency);
    return enduranceAtRatio(n);
}

double
EnduranceModel::wearPerWrite(Tick writeLatency) const
{
    return 1.0 / enduranceAt(writeLatency);
}

double
EnduranceModel::wearPerWriteFactor(PulseFactor n) const
{
    return 1.0 / enduranceAtFactor(n);
}

} // namespace mellowsim
