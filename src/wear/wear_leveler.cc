#include "wear/wear_leveler.hh"

#include <cstring>

#include "sim/logging.hh"
#include "wear/security_refresh.hh"
#include "wear/soft_wear.hh"
#include "wear/start_gap.hh"
#include "wear/wolfram.hh"

namespace mellowsim
{

const char *
wearLevelerKindName(WearLevelerKind kind)
{
    switch (kind) {
      case WearLevelerKind::StartGap:
        return "start-gap";
      case WearLevelerKind::SecurityRefresh:
        return "security-refresh";
      case WearLevelerKind::SoftWear:
        return "soft-wear";
      case WearLevelerKind::WoLFRaM:
        return "wolfram";
      case WearLevelerKind::None:
        return "none";
    }
    return "?";
}

bool
wearLevelerKindFromName(const char *name, WearLevelerKind *kind)
{
    for (WearLevelerKind k : {
             WearLevelerKind::StartGap,
             WearLevelerKind::SecurityRefresh,
             WearLevelerKind::SoftWear,
             WearLevelerKind::WoLFRaM,
             WearLevelerKind::None,
         }) {
        if (std::strcmp(name, wearLevelerKindName(k)) == 0) {
            *kind = k;
            return true;
        }
    }
    return false;
}

std::uint64_t
WearLeveler::takeMigrationWrite()
{
    panic("takeMigrationWrite on a leveler with no pending migration");
    return 0;
}

std::unique_ptr<WearLeveler>
makeWearLeveler(const WearLevelerParams &params)
{
    fatal_if(params.numBlocks == 0,
             "wear leveler needs at least one block");
    switch (params.kind) {
      case WearLevelerKind::StartGap:
        return std::make_unique<StartGap>(params.numBlocks,
                                          params.maintenancePeriod);
      case WearLevelerKind::SecurityRefresh:
        return std::make_unique<SecurityRefresh>(
            params.numBlocks, params.maintenancePeriod, params.seed);
      case WearLevelerKind::SoftWear:
        return std::make_unique<SoftWear>(
            params.numBlocks, params.pageBlocks,
            params.counterSamplePeriod, params.relocationThreshold);
      case WearLevelerKind::WoLFRaM:
        return std::make_unique<WolframPad>(
            params.numBlocks, params.spareBlocks,
            params.maintenancePeriod, params.seed);
      case WearLevelerKind::None:
        return std::make_unique<NoLeveling>(params.numBlocks);
    }
    panic("unknown wear leveler kind");
    return nullptr;
}

} // namespace mellowsim
