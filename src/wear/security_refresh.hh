/**
 * @file
 * Security-Refresh-style randomized wear leveling (Seong et al.,
 * ISCA 2010 — the paper's Section VII alternative to Start-Gap).
 *
 * A region of N = 2^n blocks is remapped by XOR with a key. Two keys
 * are live at any time: blocks already visited by the current refresh
 * round use the next key, the rest still use the current key. The
 * refresh pointer advances every `refreshInterval` demand writes;
 * because XOR remapping moves blocks in pairs {a, a XOR (k0^k1)}, a
 * refresh step swaps the two physical slots of a pair (two extra
 * writes) and the overall mapping stays bijective at every point —
 * the unit tests sweep that invariant. When the pointer completes a
 * round, the next key becomes current and a fresh random key is
 * drawn, so over many rounds every logical block visits
 * pseudo-random physical slots (and malicious hot-spotting cannot
 * track it).
 */

#ifndef MELLOWSIM_WEAR_SECURITY_REFRESH_HH
#define MELLOWSIM_WEAR_SECURITY_REFRESH_HH

#include <cstdint>

#include "sim/rng.hh"
#include "wear/wear_leveler.hh"

namespace mellowsim
{

/** See file comment. */
class SecurityRefresh : public WearLeveler
{
  public:
    /**
     * @param numBlocks        Region size; must be a power of two.
     * @param refreshInterval  Demand writes per refresh-pointer step.
     * @param seed             Key generator seed.
     */
    SecurityRefresh(std::uint64_t numBlocks,
                    std::uint64_t refreshInterval = 100,
                    std::uint64_t seed = 0xBADC0DE5ull);

    [[nodiscard]] std::uint64_t numBlocks() const override { return _numBlocks; }
    [[nodiscard]] std::uint64_t numPhysicalBlocks() const override
    {
        return _numBlocks;
    }

    [[nodiscard]] std::uint64_t
    remap(std::uint64_t logicalBlock) const override;

    unsigned noteWrite(std::uint64_t *extra = nullptr,
                       std::uint64_t logicalBlock = 0) override;

    [[nodiscard]] const char *name() const override { return "security-refresh"; }

    /** Completed refresh rounds (key rotations). */
    [[nodiscard]] std::uint64_t rounds() const { return _rounds; }

    /** Refresh-pointer position within the current round. */
    [[nodiscard]] std::uint64_t refreshPointer() const { return _rp; }

    [[nodiscard]] std::uint64_t currentKey() const { return _kCur; }
    [[nodiscard]] std::uint64_t nextKey() const { return _kNext; }

  private:
    /** True once the current round has re-keyed this block. */
    [[nodiscard]] bool refreshed(std::uint64_t logicalBlock) const;

    std::uint64_t _numBlocks;
    std::uint64_t _mask;
    std::uint64_t _refreshInterval;
    Rng _rng;
    std::uint64_t _kCur;
    std::uint64_t _kNext;
    std::uint64_t _rp = 0;
    std::uint64_t _writesSinceStep = 0;
    std::uint64_t _rounds = 0;
};

} // namespace mellowsim

#endif // MELLOWSIM_WEAR_SECURITY_REFRESH_HH
