/**
 * @file
 * WoLFRaM-style unified wear leveling + fault remapping (Yavits et
 * al. — wear leveling and fault tolerance for resistive memories;
 * see PAPERS.md).
 *
 * WoLFRaM's observation is that wear leveling and fault remapping
 * are the same mechanism: a programmable address decoder (PAD) that
 * maps every logical line to an arbitrary physical line. One
 * indirection then serves both purposes:
 *
 *  - Leveling: every `swapPeriod` demand writes, the just-written
 *    logical line trades physical slots with a (seeded-)random
 *    partner, so hot lines continuously diffuse across the bank.
 *    The swap rewrites both physical lines (two extra writes).
 *  - Fault remapping: when the fault model retires a physical line,
 *    the PAD reroutes its logical occupant to a fresh spare slot —
 *    the same table entry the leveler rotates, not a second stacked
 *    remap table. The FaultModel calls in through the
 *    FaultRemapDelegate seam and keeps its own table empty.
 *
 * The mapping is maintained as an explicit permutation
 * logical [0, N) -> physical [0, N + spares), with the inverse held
 * alongside, so bijectivity is checkable in O(N) (remapValid) and
 * every retirement/swap is O(1). That costs 16 bytes per line per
 * bank — the reason the WoLFRaM tests, audits and benches run on
 * deliberately small geometries.
 */

#ifndef MELLOWSIM_WEAR_WOLFRAM_HH
#define MELLOWSIM_WEAR_WOLFRAM_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/fault_model.hh"
#include "sim/rng.hh"
#include "wear/wear_leveler.hh"

namespace mellowsim
{

/** See file comment. */
class WolframPad : public WearLeveler, public FaultRemapDelegate
{
  public:
    /**
     * @param numBlocks    Logical blocks managed.
     * @param spareBlocks  Extra physical blocks appended to the PAD
     *                     for retirement (0 = die at first retire).
     * @param swapPeriod   Demand writes between leveling swaps.
     * @param seed         Partner-selection generator seed.
     */
    WolframPad(std::uint64_t numBlocks, std::uint64_t spareBlocks,
               std::uint64_t swapPeriod = 100,
               std::uint64_t seed = 0xBADC0DE5ull);

    // --- WearLeveler ------------------------------------------------
    [[nodiscard]] std::uint64_t numBlocks() const override
    {
        return _numBlocks;
    }
    [[nodiscard]] std::uint64_t numPhysicalBlocks() const override
    {
        return _numBlocks + _spareBlocks;
    }

    [[nodiscard]] std::uint64_t
    remap(std::uint64_t logicalBlock) const override;

    unsigned noteWrite(std::uint64_t *extra = nullptr,
                       std::uint64_t logicalBlock = 0) override;

    [[nodiscard]] bool ownsFaultRemap() const override { return true; }

    [[nodiscard]] FaultRemapDelegate *faultRemapDelegate() override
    {
        return this;
    }

    [[nodiscard]] const char *name() const override { return "wolfram"; }

    // --- FaultRemapDelegate -----------------------------------------
    std::optional<std::uint64_t>
    retirePhysical(std::uint64_t physicalBlock) override;

    [[nodiscard]] bool remapValid() const override;

    [[nodiscard]] std::uint64_t retiredCount() const override
    {
        return _retiredCount;
    }

    // --- Introspection (tests, benches) ----------------------------
    /** Leveling swaps performed. */
    [[nodiscard]] std::uint64_t swaps() const { return _swaps; }
    /** Spare slots consumed by retirement. */
    [[nodiscard]] std::uint64_t sparesUsed() const { return _sparesUsed; }
    [[nodiscard]] bool blockRetired(std::uint64_t physicalBlock) const
    {
        return _retired[physicalBlock];
    }

  private:
    /** Sentinel for a physical slot with no logical occupant. */
    static constexpr std::uint64_t kFree = ~std::uint64_t{0};

    std::uint64_t _numBlocks;
    std::uint64_t _spareBlocks;
    std::uint64_t _swapPeriod;
    Rng _rng;

    /** The PAD itself: logical -> physical, and its inverse. */
    std::vector<std::uint64_t> _logToPhys;
    std::vector<std::uint64_t> _physToLog;
    /** Physical slots taken out of service forever. */
    std::vector<bool> _retired;

    std::uint64_t _writesSinceSwap = 0;
    std::uint64_t _swaps = 0;
    std::uint64_t _sparesUsed = 0;
    std::uint64_t _retiredCount = 0;
};

} // namespace mellowsim

#endif // MELLOWSIM_WEAR_WOLFRAM_HH
