#include "wear/wear_tracker.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace mellowsim
{

namespace
{

std::unique_ptr<WearLeveler>
makeLeveler(const WearTrackerConfig &config, unsigned bank)
{
    WearLevelerParams params;
    params.kind = config.leveler;
    params.numBlocks = config.blocksPerBank;
    params.maintenancePeriod = config.gapWritePeriod;
    params.seed = config.levelerSeed + bank;
    // SoftWear/WoLFRaM knobs stay at their defaults here: the
    // detailed-mode leveler is a measurement instrument (no fault
    // model attached, so WoLFRaM runs with zero spares).
    return makeWearLeveler(params);
}

} // namespace

WearTracker::WearTracker(const WearTrackerConfig &config,
                         const EnduranceModel &model)
    : _config(config), _model(model), _banks(config.numBanks)
{
    fatal_if(config.numBanks == 0, "wear tracker needs >= 1 bank");
    fatal_if(config.blocksPerBank == 0,
             "wear tracker needs >= 1 block per bank");
    fatal_if(config.levelingEfficiency <= 0.0 ||
                 config.levelingEfficiency > 1.0,
             "leveling efficiency must be in (0, 1] (got %f)",
             config.levelingEfficiency);
    if (config.detailedBlocks) {
        // The raw loop index doubles as the per-bank leveler key seed.
        for (unsigned i = 0; i < config.numBanks; ++i) {
            BankState &b = _banks[BankId(i)];
            b.leveler = makeLeveler(config, i);
            b.blockWear.assign(b.leveler->numPhysicalBlocks(), 0.0);
        }
    }
}

void
WearTracker::addWear(BankId bank, DeviceAddr line, double units,
                     bool countAsWrite)
{
    BankState &b = _banks[bank];
    b.stats.wearUnits += units;
    if (!_config.detailedBlocks)
        return;

    // mlint: allow(value-escape): folding a device line onto its bank
    // is modular arithmetic the device-address space cannot express.
    DeviceAddr block(line.value() % _config.blocksPerBank);
    LeveledAddr phys = b.leveler->translate(block);
    b.blockWear[phys] += units;

    if (countAsWrite) {
        std::uint64_t extra[2] = {0, 0};
        // mlint: allow(value-escape): noteWrite's counter seam is raw
        // block numbers by contract (see WearLeveler::noteWrite).
        unsigned moves = b.leveler->noteWrite(extra, block.value());
        for (unsigned i = 0; i < moves; ++i) {
            // Maintenance copies are normal-speed writes to their
            // destination blocks (noteWrite reports physical blocks).
            double copy_units = _model.wearPerWriteFactor(PulseFactor(1.0));
            b.blockWear[LeveledAddr(extra[i])] += copy_units;
            b.stats.wearUnits += copy_units;
            ++b.stats.gapMoveWrites;
        }
        // Bulk relocations (SoftWear page swaps) arrive through the
        // migration queue instead of the two-entry buffer.
        while (b.leveler->hasPendingMigration()) {
            double copy_units = _model.wearPerWriteFactor(PulseFactor(1.0));
            b.blockWear[LeveledAddr(b.leveler->takeMigrationWrite())] +=
                copy_units;
            b.stats.wearUnits += copy_units;
            ++b.stats.gapMoveWrites;
        }
    }
}

void
WearTracker::recordWrite(BankId bank, DeviceAddr line,
                         Tick writeLatency, bool slow)
{
    addWear(bank, line, _model.wearPerWrite(writeLatency),
            /*countAsWrite=*/true);
    BankWearStats &s = _banks[bank].stats;
    if (slow)
        ++s.slowWrites;
    else
        ++s.normalWrites;
}

void
WearTracker::recordCancelledWrite(BankId bank, DeviceAddr line,
                                  Tick writeLatency, Tick elapsed,
                                  bool slow, double cancelWearFraction)
{
    panic_if(elapsed > writeLatency,
             "cancelled write ran longer than its own pulse");
    double progress = writeLatency
                          ? static_cast<double>(elapsed) /
                                static_cast<double>(writeLatency)
                          : 0.0;
    double units = _model.wearPerWrite(writeLatency) * progress *
                   cancelWearFraction;
    // A cancelled attempt does not advance Start-Gap (the retry will).
    addWear(bank, line, units, /*countAsWrite=*/false);
    ++_banks[bank].stats.cancelledWrites;
    (void)slow;
}

void
WearTracker::recordMaintenanceWrite(BankId bank, DeviceAddr line,
                                    Tick writeLatency)
{
    addWear(bank, line, _model.wearPerWrite(writeLatency),
            /*countAsWrite=*/false);
    ++_banks[bank].stats.maintenanceWrites;
}

const BankWearStats &
WearTracker::bankStats(BankId bank) const
{
    return _banks[bank].stats;
}

double
WearTracker::totalWearUnits() const
{
    double total = 0.0;
    for (const auto &b : _banks)
        total += b.stats.wearUnits;
    return total;
}

double
WearTracker::maxBankWearUnits() const
{
    double max_units = 0.0;
    for (const auto &b : _banks)
        max_units = std::max(max_units, b.stats.wearUnits);
    return max_units;
}

double
WearTracker::bankLifetimeSeconds(BankId bank, Tick simTime) const
{
    double wear = _banks[bank].stats.wearUnits;
    // No wear, or no simulated time to extrapolate from: the bank
    // lives forever as far as this run can tell (never 0/0 = NaN).
    if (wear <= 0.0 || simTime == 0)
        return std::numeric_limits<double>::infinity();
    double capacity = static_cast<double>(_config.blocksPerBank) *
                      _config.levelingEfficiency;
    return ticksToSeconds(simTime) * capacity / wear;
}

double
WearTracker::lifetimeSeconds(Tick simTime) const
{
    double min_life = std::numeric_limits<double>::infinity();
    for (unsigned i = 0; i < _banks.size(); ++i)
        min_life =
            std::min(min_life, bankLifetimeSeconds(BankId(i), simTime));
    return min_life;
}

double
WearTracker::lifetimeYears(Tick simTime) const
{
    return lifetimeSeconds(simTime) / kSecondsPerYear;
}

double
WearTracker::maxBlockWear(BankId bank) const
{
    panic_if(!_config.detailedBlocks,
             "maxBlockWear requires detailedBlocks mode");
    const auto &wear = _banks[bank].blockWear;
    return *std::max_element(wear.begin(), wear.end());
}

double
WearTracker::meanBlockWear(BankId bank) const
{
    panic_if(!_config.detailedBlocks,
             "meanBlockWear requires detailedBlocks mode");
    const auto &wear = _banks[bank].blockWear;
    double sum = 0.0;
    for (double w : wear)
        sum += w;
    return sum / static_cast<double>(wear.size());
}

const WearLeveler &
WearTracker::leveler(BankId bank) const
{
    panic_if(!_config.detailedBlocks,
             "leveler access requires detailedBlocks mode");
    return *_banks[bank].leveler;
}

} // namespace mellowsim
