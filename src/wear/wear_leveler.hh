/**
 * @file
 * Wear-leveler abstraction.
 *
 * The paper's system uses Start-Gap at bank granularity; the related
 * work discusses Security Refresh as the randomized alternative. Both
 * are implemented behind this interface so the detailed wear tracker
 * (and the abl_wear_leveling bench) can compare them — and quantify
 * the leveling-efficiency assumption (eta = 0.9) the lifetime
 * extrapolation makes.
 */

#ifndef MELLOWSIM_WEAR_WEAR_LEVELER_HH
#define MELLOWSIM_WEAR_WEAR_LEVELER_HH

#include <cstdint>

#include "sim/strong_types.hh"

namespace mellowsim
{

/** Which wear-leveling scheme a bank uses. */
enum class WearLevelerKind
{
    StartGap,        ///< the paper's choice (Table II)
    SecurityRefresh, ///< randomized alternative (related work)
    None,            ///< identity mapping (comparison baseline)
};

/** Printable name of a leveler kind. */
[[nodiscard]] const char *wearLevelerKindName(WearLevelerKind kind);

/** Logical-to-physical block remapper that rotates over time. */
class WearLeveler
{
  public:
    virtual ~WearLeveler() = default;

    /** Logical blocks managed. */
    [[nodiscard]] virtual std::uint64_t numBlocks() const = 0;

    /** Physical blocks used (>= numBlocks; Start-Gap has one spare). */
    [[nodiscard]] virtual std::uint64_t numPhysicalBlocks() const = 0;

    /**
     * Current physical home of a block, as a raw index permutation.
     * This is the mechanism; typed callers go through translate(),
     * the sanctioned DeviceAddr -> LeveledAddr boundary. The raw
     * form stays public for the leveler property tests, which compose
     * permutations (StartGap o SecurityRefresh) inside one space.
     */
    [[nodiscard]] virtual std::uint64_t
    remap(std::uint64_t logicalBlock) const = 0;

    /**
     * The one sanctioned conversion from the device-line space into
     * the wear-leveled physical-block space (see strong_types.hh).
     */
    [[nodiscard]] LeveledAddr
    translate(DeviceAddr line) const
    {
        return LeveledAddr(remap(line.value()));
    }

    /**
     * Account one demand write; the leveler may perform maintenance
     * (gap moves, refresh swaps) that writes extra physical blocks.
     *
     * @param extra  If non-null, must have room for two entries;
     *               receives the physical blocks written by
     *               maintenance.
     * @return Number of extra maintenance writes (0..2).
     */
    virtual unsigned noteWrite(std::uint64_t *extra = nullptr) = 0;

    /** Scheme name for reports. */
    [[nodiscard]] virtual const char *name() const = 0;
};

/** Identity mapping: no leveling (the comparison baseline). */
class NoLeveling : public WearLeveler
{
  public:
    explicit NoLeveling(std::uint64_t numBlocks) : _numBlocks(numBlocks)
    {
    }

    [[nodiscard]] std::uint64_t numBlocks() const override
    {
        return _numBlocks;
    }
    [[nodiscard]] std::uint64_t numPhysicalBlocks() const override
    {
        return _numBlocks;
    }
    [[nodiscard]] std::uint64_t
    remap(std::uint64_t logicalBlock) const override
    {
        return logicalBlock;
    }
    unsigned noteWrite(std::uint64_t *) override { return 0; }
    [[nodiscard]] const char *name() const override { return "none"; }

  private:
    std::uint64_t _numBlocks;
};

} // namespace mellowsim

#endif // MELLOWSIM_WEAR_WEAR_LEVELER_HH
