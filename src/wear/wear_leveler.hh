/**
 * @file
 * Wear-leveler abstraction.
 *
 * The paper's system uses Start-Gap at bank granularity; the related
 * work discusses Security Refresh as the randomized alternative. Both
 * are implemented behind this interface so the detailed wear tracker
 * (and the abl_wear_leveling bench) can compare them — and quantify
 * the leveling-efficiency assumption (eta = 0.9) the lifetime
 * extrapolation makes.
 */

#ifndef MELLOWSIM_WEAR_WEAR_LEVELER_HH
#define MELLOWSIM_WEAR_WEAR_LEVELER_HH

#include <cstdint>

namespace mellowsim
{

/** Which wear-leveling scheme a bank uses. */
enum class WearLevelerKind
{
    StartGap,        ///< the paper's choice (Table II)
    SecurityRefresh, ///< randomized alternative (related work)
    None,            ///< identity mapping (comparison baseline)
};

/** Printable name of a leveler kind. */
const char *wearLevelerKindName(WearLevelerKind kind);

/** Logical-to-physical block remapper that rotates over time. */
class WearLeveler
{
  public:
    virtual ~WearLeveler() = default;

    /** Logical blocks managed. */
    virtual std::uint64_t numBlocks() const = 0;

    /** Physical blocks used (>= numBlocks; Start-Gap has one spare). */
    virtual std::uint64_t numPhysicalBlocks() const = 0;

    /** Current physical home of a logical block. */
    virtual std::uint64_t remap(std::uint64_t logicalBlock) const = 0;

    /**
     * Account one demand write; the leveler may perform maintenance
     * (gap moves, refresh swaps) that writes extra physical blocks.
     *
     * @param extra  If non-null, must have room for two entries;
     *               receives the physical blocks written by
     *               maintenance.
     * @return Number of extra maintenance writes (0..2).
     */
    virtual unsigned noteWrite(std::uint64_t *extra = nullptr) = 0;

    /** Scheme name for reports. */
    virtual const char *name() const = 0;
};

/** Identity mapping: no leveling (the comparison baseline). */
class NoLeveling : public WearLeveler
{
  public:
    explicit NoLeveling(std::uint64_t numBlocks) : _numBlocks(numBlocks)
    {
    }

    std::uint64_t numBlocks() const override { return _numBlocks; }
    std::uint64_t numPhysicalBlocks() const override
    {
        return _numBlocks;
    }
    std::uint64_t
    remap(std::uint64_t logicalBlock) const override
    {
        return logicalBlock;
    }
    unsigned noteWrite(std::uint64_t *) override { return 0; }
    const char *name() const override { return "none"; }

  private:
    std::uint64_t _numBlocks;
};

} // namespace mellowsim

#endif // MELLOWSIM_WEAR_WEAR_LEVELER_HH
