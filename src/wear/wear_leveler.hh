/**
 * @file
 * Wear-leveler abstraction.
 *
 * The paper's system uses Start-Gap at bank granularity; the related
 * work discusses Security Refresh as the randomized alternative, and
 * two further schemes round out the zoo: SoftWear-style software
 * page-granularity leveling from approximate write counters, and
 * WoLFRaM's programmable address decoder that unifies leveling with
 * fault remapping. All are implemented behind this interface so the
 * controller's issue path, the detailed wear tracker and the
 * abl_wear_leveling / abl_leveler_zoo benches can compare them — and
 * quantify the leveling-efficiency assumption (eta = 0.9) the
 * lifetime extrapolation makes.
 */

#ifndef MELLOWSIM_WEAR_WEAR_LEVELER_HH
#define MELLOWSIM_WEAR_WEAR_LEVELER_HH

#include <cstdint>
#include <memory>

#include "sim/strong_types.hh"

namespace mellowsim
{

class FaultRemapDelegate; // fault/fault_model.hh

/** Which wear-leveling scheme a bank uses. */
enum class WearLevelerKind
{
    StartGap,        ///< the paper's choice (Table II)
    SecurityRefresh, ///< randomized alternative (related work)
    SoftWear,        ///< software page-level leveling (Hakert et al.)
    WoLFRaM,         ///< programmable-address-decoder (Yavits et al.)
    None,            ///< identity mapping (comparison baseline)
};

/** Printable name of a leveler kind. */
[[nodiscard]] const char *wearLevelerKindName(WearLevelerKind kind);

/**
 * Parse a leveler kind from its printable name ("start-gap", ...).
 * @param[out] kind  Receives the parsed kind on success.
 * @return True iff @p name named a known kind.
 */
[[nodiscard]] bool wearLevelerKindFromName(const char *name,
                                           WearLevelerKind *kind);

/**
 * The no-leveler half of the sanctioned LineIndex -> LeveledAddr
 * boundary: with wear leveling disabled every bank-local line is its
 * own leveled block. The other half is WearLeveler::level.
 */
[[nodiscard]] constexpr LeveledAddr
leveledLineOf(LineIndex line)
{
    return LeveledAddr(line.value());
}

/** Logical-to-physical block remapper that rotates over time. */
class WearLeveler
{
  public:
    virtual ~WearLeveler() = default;

    /** Logical blocks managed. */
    [[nodiscard]] virtual std::uint64_t numBlocks() const = 0;

    /** Physical blocks used (>= numBlocks; Start-Gap has one spare). */
    [[nodiscard]] virtual std::uint64_t numPhysicalBlocks() const = 0;

    /**
     * Current physical home of a block, as a raw index permutation.
     * This is the mechanism; typed callers go through level() /
     * translate(), the sanctioned conversion boundaries. The raw
     * form stays public for the leveler property tests, which compose
     * permutations (StartGap o SecurityRefresh) inside one space.
     */
    [[nodiscard]] virtual std::uint64_t
    remap(std::uint64_t logicalBlock) const = 0;

    /**
     * The issue-path half of the sanctioned conversion chain
     * LogicalAddr -> LeveledAddr -> DeviceAddr (see strong_types.hh):
     * a decoded bank-local line enters the wear-leveled block space.
     */
    [[nodiscard]] LeveledAddr
    level(LineIndex line) const
    {
        return LeveledAddr(remap(line.value()));
    }

    /**
     * The measurement-path conversion from the device-line space into
     * the wear-leveled physical-block space, used by the detailed
     * wear tracker when it folds final device lines through its own
     * leveler instance (see strong_types.hh).
     */
    [[nodiscard]] LeveledAddr
    translate(DeviceAddr line) const
    {
        return LeveledAddr(remap(line.value()));
    }

    /**
     * Account one demand write; the leveler may perform maintenance
     * (gap moves, refresh swaps) that writes extra physical blocks.
     *
     * @param extra  If non-null, must have room for two entries;
     *               receives the physical blocks written by
     *               maintenance.
     * @param logicalBlock  The logical block the demand write hit.
     *               Counter-driven levelers (SoftWear, WoLFRaM) use
     *               it; rotation-driven ones ignore it, which is why
     *               it trails the output parameter with a default.
     * @return Number of extra maintenance writes (0..2).
     */
    virtual unsigned noteWrite(std::uint64_t *extra = nullptr,
                               std::uint64_t logicalBlock = 0) = 0;

    /**
     * Bulk relocations (SoftWear page migrations, WoLFRaM swaps) are
     * too large for the two-entry noteWrite buffer; they queue here
     * and the owner drains them as real write traffic.
     */
    [[nodiscard]] virtual bool hasPendingMigration() const
    {
        return false;
    }

    /** Pop the next queued migration destination (physical block). */
    virtual std::uint64_t takeMigrationWrite();

    /**
     * True iff this leveler also owns the fault-retirement
     * indirection (WoLFRaM's unified programmable address decoder).
     * The controller then treats level() output as final and the
     * FaultModel delegates retirement instead of stacking its own
     * remap table on top.
     */
    [[nodiscard]] virtual bool ownsFaultRemap() const { return false; }

    /**
     * The FaultRemapDelegate view of a leveler with
     * ownsFaultRemap() == true; null for every other scheme. Lets
     * the controller register the delegate without a cast.
     */
    [[nodiscard]] virtual FaultRemapDelegate *faultRemapDelegate()
    {
        return nullptr;
    }

    /** Scheme name for reports. */
    [[nodiscard]] virtual const char *name() const = 0;
};

/** Identity mapping: no leveling (the comparison baseline). */
class NoLeveling : public WearLeveler
{
  public:
    explicit NoLeveling(std::uint64_t numBlocks) : _numBlocks(numBlocks)
    {
    }

    [[nodiscard]] std::uint64_t numBlocks() const override
    {
        return _numBlocks;
    }
    [[nodiscard]] std::uint64_t numPhysicalBlocks() const override
    {
        return _numBlocks;
    }
    [[nodiscard]] std::uint64_t
    remap(std::uint64_t logicalBlock) const override
    {
        return logicalBlock;
    }
    unsigned noteWrite(std::uint64_t * = nullptr,
                       std::uint64_t = 0) override
    {
        return 0;
    }
    [[nodiscard]] const char *name() const override { return "none"; }

  private:
    std::uint64_t _numBlocks;
};

/** Everything needed to build any leveler in the zoo. */
struct WearLevelerParams
{
    WearLevelerKind kind = WearLevelerKind::StartGap;
    /** Logical blocks managed (bank size in lines). */
    std::uint64_t numBlocks = 0;
    /** Maintenance period in writes (gap move / refresh / swap step). */
    std::uint64_t maintenancePeriod = 100;
    /** Key seed for randomized levelers (SecurityRefresh, WoLFRaM). */
    std::uint64_t seed = 0xBADC0DE5ull;
    // --- SoftWear ---------------------------------------------------
    /** Blocks per software-managed page. */
    std::uint64_t pageBlocks = 64;
    /** Only every Nth write bumps a page counter (approximation). */
    std::uint64_t counterSamplePeriod = 8;
    /** Sampled writes on one page since its last relocation that
     *  trigger rotating its content to the least-worn page. */
    std::uint64_t relocationThreshold = 16;
    // --- WoLFRaM ----------------------------------------------------
    /** Spare physical blocks folded into the unified decoder. */
    std::uint64_t spareBlocks = 0;
};

/** Build a leveler of the requested kind. */
[[nodiscard]] std::unique_ptr<WearLeveler>
makeWearLeveler(const WearLevelerParams &params);

} // namespace mellowsim

#endif // MELLOWSIM_WEAR_WEAR_LEVELER_HH
