#include "wear/security_refresh.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace mellowsim
{

SecurityRefresh::SecurityRefresh(std::uint64_t numBlocks,
                                 std::uint64_t refreshInterval,
                                 std::uint64_t seed)
    : _numBlocks(numBlocks), _mask(numBlocks - 1),
      _refreshInterval(refreshInterval), _rng(seed)
{
    fatal_if(numBlocks < 2 || !isPowerOfTwo(numBlocks),
             "Security Refresh needs a power-of-two region of >= 2 "
             "blocks (got %llu)",
             static_cast<unsigned long long>(numBlocks));
    fatal_if(refreshInterval == 0,
             "Security Refresh interval must be positive");
    _kCur = _rng.next() & _mask;
    // Ensure the two keys differ so every round moves data.
    do {
        _kNext = _rng.next() & _mask;
    } while (_kNext == _kCur);
}

bool
SecurityRefresh::refreshed(std::uint64_t logicalBlock) const
{
    // Blocks are re-keyed in pairs {a, a ^ d}; the pair is processed
    // when the refresh pointer passes the smaller member.
    std::uint64_t d = _kCur ^ _kNext;
    std::uint64_t pair_min = std::min(logicalBlock, logicalBlock ^ d);
    return pair_min < _rp;
}

std::uint64_t
SecurityRefresh::remap(std::uint64_t logicalBlock) const
{
    panic_if(logicalBlock >= _numBlocks,
             "logical block %llu out of range (N=%llu)",
             static_cast<unsigned long long>(logicalBlock),
             static_cast<unsigned long long>(_numBlocks));
    return logicalBlock ^ (refreshed(logicalBlock) ? _kNext : _kCur);
}

unsigned
SecurityRefresh::noteWrite(std::uint64_t *extra,
                           std::uint64_t /*logicalBlock*/)
{
    if (++_writesSinceStep < _refreshInterval)
        return 0;
    _writesSinceStep = 0;

    std::uint64_t d = _kCur ^ _kNext;
    std::uint64_t a = _rp;
    // Advance the pointer regardless; only the pair's smaller member
    // triggers the physical swap (the partner was handled with it).
    unsigned extra_writes = 0;
    if (a < (a ^ d)) {
        // Swap the pair's two physical slots: both get rewritten.
        if (extra != nullptr) {
            extra[0] = a ^ _kCur;  // slot being vacated/refilled
            extra[1] = a ^ _kNext; // the pair partner's slot
        }
        extra_writes = 2;
    }

    if (++_rp == _numBlocks) {
        // Round complete: rotate keys.
        _rp = 0;
        ++_rounds;
        _kCur = _kNext;
        do {
            _kNext = _rng.next() & _mask;
        } while (_kNext == _kCur);
    }
    return extra_writes;
}

} // namespace mellowsim
