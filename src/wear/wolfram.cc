#include "wear/wolfram.hh"

#include <numeric>

#include "sim/logging.hh"

namespace mellowsim
{

WolframPad::WolframPad(std::uint64_t numBlocks,
                       std::uint64_t spareBlocks,
                       std::uint64_t swapPeriod, std::uint64_t seed)
    : _numBlocks(numBlocks), _spareBlocks(spareBlocks),
      _swapPeriod(swapPeriod), _rng(seed)
{
    fatal_if(numBlocks == 0, "WoLFRaM needs at least one block");
    fatal_if(swapPeriod == 0, "WoLFRaM swap period must be positive");
    _logToPhys.resize(numBlocks);
    std::iota(_logToPhys.begin(), _logToPhys.end(), 0);
    _physToLog.assign(numBlocks + spareBlocks, kFree);
    std::iota(_physToLog.begin(), _physToLog.begin() + numBlocks, 0);
    _retired.assign(numBlocks + spareBlocks, false);
}

std::uint64_t
WolframPad::remap(std::uint64_t logicalBlock) const
{
    panic_if(logicalBlock >= _numBlocks,
             "logical block %llu out of range (N=%llu)",
             static_cast<unsigned long long>(logicalBlock),
             static_cast<unsigned long long>(_numBlocks));
    return _logToPhys[logicalBlock];
}

unsigned
WolframPad::noteWrite(std::uint64_t *extra, std::uint64_t logicalBlock)
{
    if (++_writesSinceSwap < _swapPeriod)
        return 0;
    _writesSinceSwap = 0;
    if (_numBlocks < 2)
        return 0;

    // Diffuse the just-written (hence hot) logical line to a random
    // physical slot by trading places with a random partner. The
    // generator is a per-bank member, so replay only depends on the
    // (deterministic) completion order of writes on this bank.
    std::uint64_t partner = _rng.next() % _numBlocks;
    if (partner == logicalBlock)
        partner = partner + 1 == _numBlocks ? 0 : partner + 1;

    std::uint64_t pa = _logToPhys[logicalBlock];
    std::uint64_t pb = _logToPhys[partner];
    _logToPhys[logicalBlock] = pb;
    _logToPhys[partner] = pa;
    _physToLog[pa] = partner;
    _physToLog[pb] = logicalBlock;
    ++_swaps;

    // Both physical lines are rewritten with the exchanged contents.
    if (extra != nullptr) {
        extra[0] = pa;
        extra[1] = pb;
    }
    return 2;
}

std::optional<std::uint64_t>
WolframPad::retirePhysical(std::uint64_t physicalBlock)
{
    panic_if(physicalBlock >= _physToLog.size(),
             "retiring physical block %llu out of range (P=%llu)",
             static_cast<unsigned long long>(physicalBlock),
             static_cast<unsigned long long>(_physToLog.size()));
    panic_if(_retired[physicalBlock],
             "double retirement of physical block %llu",
             static_cast<unsigned long long>(physicalBlock));
    if (_sparesUsed == _spareBlocks)
        return std::nullopt;

    // Fresh spares are consumed in slot order; a spare that itself
    // retires later is simply never reused, so a bump counter is a
    // valid allocator.
    std::uint64_t spare = _numBlocks + _sparesUsed++;
    std::uint64_t occupant = _physToLog[physicalBlock];
    panic_if(occupant == kFree,
             "retiring unoccupied physical block %llu",
             static_cast<unsigned long long>(physicalBlock));
    _logToPhys[occupant] = spare;
    _physToLog[spare] = occupant;
    _physToLog[physicalBlock] = kFree;
    _retired[physicalBlock] = true;
    ++_retiredCount;
    return spare;
}

bool
WolframPad::remapValid() const
{
    // The PAD must stay a bijection from logical lines onto live
    // (non-retired) physical slots, with the inverse in sync.
    std::vector<bool> seen(_physToLog.size(), false);
    for (std::uint64_t l = 0; l < _numBlocks; ++l) {
        std::uint64_t p = _logToPhys[l];
        if (p >= _physToLog.size() || _retired[p] || seen[p])
            return false;
        seen[p] = true;
        if (_physToLog[p] != l)
            return false;
    }
    for (std::uint64_t p = 0; p < _physToLog.size(); ++p) {
        if (!seen[p] && _physToLog[p] != kFree)
            return false;
        if (_retired[p] && _physToLog[p] != kFree)
            return false;
    }
    return true;
}

} // namespace mellowsim
