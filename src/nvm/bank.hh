/**
 * @file
 * Per-bank and per-rank device state.
 *
 * A Bank tracks when it frees up, which row-buffer segment (if any) is
 * open for reads, and — while a write pulse is in flight — everything
 * needed to cancel that write (Section III / Qureshi's write
 * cancellation). A Rank enforces the four-activate window (tFAW).
 */

#ifndef MELLOWSIM_NVM_BANK_HH
#define MELLOWSIM_NVM_BANK_HH

#include <array>
#include <cstdint>

#include "nvm/request.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace mellowsim
{

/** Sentinel for "no open row". */
constexpr std::uint64_t kNoOpenRow = ~std::uint64_t(0);

/** State of one resistive memory bank. */
class Bank
{
  public:
    /** The bank can start a new operation at this tick. */
    [[nodiscard]] Tick busyUntil() const { return _busyUntil; }

    [[nodiscard]] bool idleAt(Tick now) const { return _busyUntil <= now; }

    /** Row-buffer segment currently latched for reads. */
    [[nodiscard]] std::uint64_t openRowTag() const { return _openRowTag; }

    /** Begin a read: occupies the bank for the array access. */
    void startRead(Tick now, Tick access, std::uint64_t rowTag);

    /**
     * Begin a write.
     *
     * The bank is occupied from @p now (data transfer in progress)
     * until @p pulseStart + @p pulse; cancellation progress is
     * measured against the pulse phase only.
     *
     * @param now          Issue tick.
     * @param pulseStart   When the write pulse itself begins (after
     *                     the data burst crosses the bus); >= now.
     * @param pulse        Pulse duration (normal or slow tWP).
     * @param req          The request, retained for cancellation.
     * @param slow         Slow write?
     * @param cancellable  May an incoming read cancel it?
     * @param pausable     May an incoming read pause it (+WP)?
     */
    void startWrite(Tick now, Tick pulseStart, Tick pulse, MemRequest req,
                    bool slow, bool cancellable, bool pausable = false);

    /** True iff the in-flight write may be paused by a read. */
    [[nodiscard]] bool pausableWrite(Tick now) const
    {
        return writing(now) && _writePausable;
    }

    /**
     * Pause the in-flight write at @p now: the bank frees
     * immediately; the unfinished remainder of the pulse is retained
     * for resumeWrite(). No wear or attempt is lost.
     */
    void pauseWrite(Tick now);

    /** A paused write is parked at this bank awaiting resumption. */
    [[nodiscard]] bool hasPausedWrite() const { return _paused; }

    /**
     * Resume the paused write at @p now.
     * @return The tick at which the write will now complete.
     */
    Tick resumeWrite(Tick now);

    /**
     * Mark the in-flight write completed.
     * @return The completed request (for wear/energy accounting).
     */
    MemRequest finishWrite();

    /** True iff a write pulse is in flight at @p now. */
    [[nodiscard]] bool writing(Tick now) const { return _writing && _busyUntil > now; }

    /** True iff the in-flight write may be cancelled. */
    [[nodiscard]] bool cancellableWrite(Tick now) const
    {
        return writing(now) && _writeCancellable;
    }

    /**
     * Cancel the in-flight write at @p now.
     *
     * @param[out] elapsedPulse  How much of the pulse had completed.
     * @return The aborted request (to be re-queued by the caller).
     */
    MemRequest cancelWrite(Tick now, Tick *elapsedPulse);

    [[nodiscard]] bool writeSlow() const { return _writeSlow; }
    [[nodiscard]] Tick writePulse() const { return _writePulse; }

    // --- Audit accessors (src/check/) -----------------------------
    /** Raw write-in-flight flag, independent of the current tick. */
    [[nodiscard]] bool writeInFlight() const { return _writing; }

    /** Unfinished pulse time parked by pauseWrite(). */
    [[nodiscard]] Tick remainingPulse() const { return _remainingPulse; }

    /**
     * Type of the write the bank currently holds (in flight or
     * paused); only meaningful while writeInFlight() or
     * hasPausedWrite() is true.
     */
    [[nodiscard]] ReqType currentWriteType() const { return _currentWrite.type; }

    /** Invalidate the open row (a write-through touched it). */
    void closeRow() { _openRowTag = kNoOpenRow; }

    /**
     * Occupy the bank for a leveler maintenance copy (gap move,
     * refresh swap, page migration). Maintenance piggybacks after
     * whatever the bank is doing — it extends the busy horizon rather
     * than claiming an idle bank, so it never collides with an
     * in-flight pulse — and stales the open row. It carries no
     * request and cannot be cancelled or paused.
     */
    void occupyMaintenance(Tick now, Tick duration);

    /** Busy-time accounting for utilisation reporting. */
    stats::BusyTracker &busyTracker() { return _busy; }
    [[nodiscard]] const stats::BusyTracker &busyTracker() const { return _busy; }

  private:
    Tick _busyUntil = 0;
    std::uint64_t _openRowTag = kNoOpenRow;

    bool _writing = false;
    bool _writeCancellable = false;
    bool _writePausable = false;
    bool _writeSlow = false;
    bool _paused = false;
    Tick _writePulse = 0;
    Tick _pulseStart = 0;
    Tick _remainingPulse = 0;
    MemRequest _currentWrite;

    stats::BusyTracker _busy;
};

/** Per-rank four-activate-window (tFAW) tracker. */
class Rank
{
  public:
    /**
     * Earliest tick >= @p now at which a new activate may start,
     * honouring at most four activates per tFAW window.
     */
    [[nodiscard]] Tick nextActivateAllowed(Tick now, Tick tFAW) const;

    /** Record an activate starting at @p when. */
    void recordActivate(Tick when);

  private:
    /** Ring of the last four activate start times. */
    std::array<Tick, 4> _activates{};
    unsigned _head = 0;
    /** Activates recorded so far (the window binds after four). */
    unsigned _count = 0;
};

} // namespace mellowsim

#endif // MELLOWSIM_NVM_BANK_HH
