/**
 * @file
 * Multi-channel memory system.
 *
 * The paper evaluates one channel but sizes its hardware per channel
 * ("Eager Mellow Writes requires a 16-entry queue for each memory
 * channel", Section IV-E). MemorySystem instantiates one independent
 * MemoryController per channel — each with its own queues, banks,
 * data bus, wear tracker, energy model and (with +WQ) Wear Quota —
 * and stripes the address space across them at the interleave
 * granularity. Addresses are rewritten into each channel's local
 * space, so a channel controller is bit-identical to the
 * single-channel configuration of the same per-channel geometry.
 */

#ifndef MELLOWSIM_NVM_MEMORY_SYSTEM_HH
#define MELLOWSIM_NVM_MEMORY_SYSTEM_HH

#include <memory>
#include <vector>

#include "nvm/controller.hh"
#include "nvm/memory_port.hh"
#include "sim/event_queue.hh"

namespace mellowsim
{

/** Multi-channel configuration. */
struct MemorySystemConfig
{
    /** Channels; 1 matches the paper. */
    unsigned numChannels = 1;
    /**
     * Per-channel controller configuration. `geometry.capacityBytes`
     * is the *total* capacity; each channel manages capacity /
     * numChannels with `geometry.numBanks` banks of its own.
     */
    MemControllerConfig channel;
};

/** See file comment. */
class MemorySystem : public MemoryPort
{
  public:
    MemorySystem(EventQueue &eventq, const MemorySystemConfig &config);

    // --- MemoryPort --------------------------------------------------
    void read(Addr addr, ReadCallback onComplete) override;
    void writeback(Addr addr) override;
    bool eagerWrite(Addr addr) override;
    bool eagerQueueHasSpace() const override;

    // --- Aggregation --------------------------------------------------
    unsigned numChannels() const
    {
        return static_cast<unsigned>(_channels.size());
    }

    MemoryController &channel(unsigned idx);
    const MemoryController &channel(unsigned idx) const;

    /** Truncate busy/drain accounting on every channel. */
    void finalize();

    /** Minimum leveled lifetime over every bank of every channel. */
    double lifetimeYears(Tick simTime) const;

    /** Mean bank utilisation over all channels. */
    double avgBankUtilization() const;

    /** Mean drain-time fraction over all channels. */
    double drainTimeFraction() const;

    /** Which channel serves @p addr. */
    unsigned channelOf(Addr addr) const;

    /** The channel-local address @p addr maps to. */
    Addr localAddr(Addr addr) const;

    const MemorySystemConfig &config() const { return _config; }

  private:
    MemorySystemConfig _config;
    std::uint64_t _blocksPerChunk;
    std::uint64_t _totalCapacity;
    std::vector<std::unique_ptr<MemoryController>> _channels;
};

} // namespace mellowsim

#endif // MELLOWSIM_NVM_MEMORY_SYSTEM_HH
