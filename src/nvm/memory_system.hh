/**
 * @file
 * Multi-channel memory system.
 *
 * The paper evaluates one channel but sizes its hardware per channel
 * ("Eager Mellow Writes requires a 16-entry queue for each memory
 * channel", Section IV-E). MemorySystem instantiates one independent
 * MemoryController per channel — each with its own queues, banks,
 * data bus, wear tracker, energy model and (with +WQ) Wear Quota —
 * and stripes the address space across them at the interleave
 * granularity. Addresses are rewritten into each channel's local
 * space, so a channel controller is bit-identical to the
 * single-channel configuration of the same per-channel geometry.
 */

#ifndef MELLOWSIM_NVM_MEMORY_SYSTEM_HH
#define MELLOWSIM_NVM_MEMORY_SYSTEM_HH

#include <memory>
#include <vector>

#include "nvm/controller.hh"
#include "nvm/interleave.hh"
#include "nvm/memory_port.hh"
#include "sim/event_queue.hh"
#include "sim/indexed.hh"

namespace mellowsim
{

/** Multi-channel configuration. */
struct MemorySystemConfig
{
    /** Channels; 1 matches the paper. */
    unsigned numChannels = 1;
    /**
     * Per-channel controller configuration. `geometry.capacityBytes`
     * is the *total* capacity; each channel manages capacity /
     * numChannels with `geometry.numBanks` banks of its own.
     */
    MemControllerConfig channel;
};

/** See file comment. */
class MemorySystem : public MemoryPort
{
  public:
    MemorySystem(EventQueue &eventq, const MemorySystemConfig &config);

    // --- MemoryPort --------------------------------------------------
    void read(LogicalAddr addr, ReadCallback onComplete) override;
    void writeback(LogicalAddr addr) override;
    bool eagerWrite(LogicalAddr addr) override;
    [[nodiscard]] bool eagerQueueHasSpace() const override;

    // --- Aggregation --------------------------------------------------
    [[nodiscard]] unsigned numChannels() const
    {
        return static_cast<unsigned>(_channels.size());
    }

    [[nodiscard]] MemoryController &channel(ChannelId idx);
    [[nodiscard]] const MemoryController &channel(ChannelId idx) const;

    /** Truncate busy/drain accounting on every channel. */
    void finalize();

    /** Minimum leveled lifetime over every bank of every channel. */
    [[nodiscard]] double lifetimeYears(Tick simTime) const;

    /**
     * Minimum effective-capacity fraction over all channels (1.0 with
     * fault injection off). Monotonically non-increasing over a run:
     * dead lines never come back.
     */
    [[nodiscard]] double effectiveCapacityFraction() const;

    /**
     * True iff fault injection is on, a capacity floor is configured
     * (FaultConfig::capacityFloorFraction > 0) and some channel's
     * effective capacity has fallen to it — the end-of-life signal
     * the System run loop polls to stop gracefully instead of
     * simulating a memory that no longer functions.
     */
    [[nodiscard]] bool capacityFloorReached() const;

    /** Mean bank utilisation over all channels. */
    [[nodiscard]] double avgBankUtilization() const;

    /** Mean drain-time fraction over all channels. */
    [[nodiscard]] double drainTimeFraction() const;

    /** Which channel serves @p addr. */
    [[nodiscard]] ChannelId
    channelOf(LogicalAddr addr) const
    {
        return _interleave.channelOf(addr);
    }

    /** The channel-local address @p addr maps to. */
    [[nodiscard]] LogicalAddr
    localAddr(LogicalAddr addr) const
    {
        return _interleave.localAddr(addr);
    }

    [[nodiscard]] const MemorySystemConfig &config() const
    {
        return _config;
    }

  private:
    MemorySystemConfig _config;
    ChannelInterleave _interleave;
    IndexedVector<ChannelId, std::unique_ptr<MemoryController>> _channels;
};

/**
 * The per-channel controller configuration a multi-channel system
 * hands channel @p c: capacity split evenly, fault seed perturbed so
 * channels never share weak-line draws. MemorySystem and the sharded
 * ChannelTask both build their controllers through this, which is
 * what makes a sharded channel bit-identical to its monolithic twin.
 */
[[nodiscard]] MemControllerConfig
perChannelConfig(const MemControllerConfig &channel, unsigned numChannels,
                 unsigned c);

} // namespace mellowsim

#endif // MELLOWSIM_NVM_MEMORY_SYSTEM_HH
