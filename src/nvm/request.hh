/**
 * @file
 * Memory request record shared by the controller's three queues.
 */

#ifndef MELLOWSIM_NVM_REQUEST_HH
#define MELLOWSIM_NVM_REQUEST_HH

#include <cstdint>
#include <functional>

#include "nvm/address_map.hh"
#include "sim/types.hh"

namespace mellowsim
{

/** Category of memory access (Section IV-B2 adds the third one). */
enum class ReqType
{
    Read,       ///< demand read (LLC miss / store-miss fill)
    Write,      ///< demand write back (dirty LLC eviction)
    EagerWrite, ///< eager mellow write back from the LLC
};

/** Completion callback for reads: fired when data is on the bus. */
using ReadCallback = std::function<void()>;

/** One queued memory request. */
struct MemRequest
{
    ReqType type = ReqType::Read;
    /** Block-aligned logical byte address (channel-local). */
    LogicalAddr addr{0};
    /** Decoded location; loc.blockInBank stays in the logical space. */
    DecodedAddr loc;
    /**
     * Device line the request targets after fault-model retirement
     * remapping; set at issue time (identity when faults are off).
     */
    DeviceAddr line{0};
    Tick arrival = 0;
    /** Non-null for reads. */
    ReadCallback onComplete;
    /** Write attempts so far (grows with each cancellation). */
    unsigned attempts = 0;
    /** Write-verify retries consumed (fault injection only). */
    unsigned retries = 0;
};

} // namespace mellowsim

#endif // MELLOWSIM_NVM_REQUEST_HH
