/**
 * @file
 * NVMain-like resistive main-memory controller.
 *
 * Implements the Table II memory system: three request queues (read,
 * write, eager mellow) with read > write > eager priority, write-drain
 * mode with high/low thresholds, open-page row buffers for reads,
 * write-through writes, tFAW-limited activates, a shared data bus, and
 * write cancellation. Every write issue consults the Figure 9
 * decision logic (mellow/decision.hh), and completed writes feed the
 * wear tracker, the energy model, and — with +WQ — the Wear Quota.
 */

#ifndef MELLOWSIM_NVM_CONTROLLER_HH
#define MELLOWSIM_NVM_CONTROLLER_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "energy/energy_model.hh"
#include "fault/fault_model.hh"
#include "mellow/decision.hh"
#include "mellow/policy.hh"
#include "mellow/wear_quota.hh"
#include "nvm/address_map.hh"
#include "nvm/bank.hh"
#include "nvm/memory_port.hh"
#include "nvm/queues.hh"
#include "nvm/request.hh"
#include "nvm/timing.hh"
#include "sim/event_queue.hh"
#include "sim/indexed.hh"
#include "sim/stats.hh"
#include "wear/endurance_model.hh"
#include "wear/wear_tracker.hh"

namespace mellowsim
{

/** Controller configuration (Table II defaults). */
struct MemControllerConfig
{
    MemGeometry geometry;
    NvmTimingParams timing;
    WritePolicyConfig policy;

    unsigned readQueueSize = 32;
    unsigned writeQueueSize = 32;  ///< also the drain-high threshold
    unsigned eagerQueueSize = 16;
    unsigned drainLowThreshold = 16;

    /**
     * How many bus-bursts of data-bus backlog an issue may reserve
     * ahead of time (pipelining depth of the channel).
     */
    unsigned busLeadBursts = 8;

    /** Latency of a read forwarded from a queued write. */
    // mlint: allow(timing-literal): compiled-in default mirrored by
    // the ForwardLatencyNs config key
    Tick forwardLatency = Tick(22.5 * kNanosecond);

    /** Scale factor on the proportional wear of a cancelled pulse. */
    double cancelWearFraction = 1.0;

    /**
     * A write that has already been cancelled this many times issues
     * non-cancellable, bounding read-induced write starvation (and
     * the drain spiral it would otherwise cause under streaming
     * read/write interleavings).
     */
    unsigned maxWriteCancellations = 4;

    /**
     * A bank that received a demand read in the last this-many ticks
     * counts as read-active: eager writes skip it, and the Bank-Aware
     * single-write slow decision downgrades to a normal write (Wear
     * Quota and globally-slow policies are never downgraded). This
     * implements Figure 9's "no requests for the bank" intent at
     * fine timing granularity — a streaming read cursor drains its
     * bank's queue between arrivals, so the queue-occupancy test
     * alone would park slow writes right in front of incoming reads.
     * Zero disables the guard.
     */
    // mlint: allow(timing-literal): compiled-in default mirrored by
    // the RecentReadWindowNs config key
    Tick recentReadWindow = 300 * kNanosecond;

    EnduranceParams endurance;
    EnergyParams energy;
    WearQuotaConfig quota;
    /**
     * Fault injection (off by default). numBanks/blocksPerBank are
     * overwritten from the geometry when the model is instantiated.
     */
    FaultConfig fault;
    /** Leveling efficiency for the lifetime extrapolation. */
    double levelingEfficiency = 0.9;
    /** Track per-block wear through the leveler (tests/benches). */
    bool detailedWear = false;
    /**
     * Wear-leveling scheme. Without fault injection it only drives
     * the detailed tracker's measurement leveler; with fault
     * injection enabled the controller owns one live leveler per
     * bank on the issue path (LineIndex -> LeveledAddr -> DeviceAddr)
     * and charges its maintenance copies as real write traffic.
     */
    WearLevelerKind wearLeveler = WearLevelerKind::StartGap;
    /** Leveler maintenance period in writes (gap move/refresh step). */
    std::uint64_t gapWritePeriod = 100;
    /** Key seed for randomized levelers (per-bank offset applied). */
    std::uint64_t levelerSeed = 0xBADC0DE5ull;
    /** SoftWear: blocks per software-managed page. */
    std::uint64_t softWearPageBlocks = 64;
    /** SoftWear: every Nth write bumps a page counter. */
    std::uint64_t softWearSamplePeriod = 8;
    /** SoftWear: sampled writes since relocation that trigger one. */
    std::uint64_t softWearRelocThreshold = 16;
};

/** Aggregated controller statistics. */
struct MemControllerStats
{
    stats::Counter demandReads;     ///< accepted demand reads
    stats::Counter forwardedReads;  ///< served from a queued write
    stats::Counter issuedReads;     ///< issued to a bank
    stats::Counter rowHitReads;
    stats::Counter rowMissReads;

    stats::Counter acceptedWritebacks; ///< demand writes from the LLC
    stats::Counter acceptedEager;      ///< eager writes from the LLC
    stats::Counter rejectedEager;      ///< eager queue full

    stats::Counter issuedNormalWrites; ///< demand, normal speed
    stats::Counter issuedSlowWrites;   ///< demand, slow speed
    stats::Counter issuedEagerNormal;  ///< eager, normal speed (E-Norm)
    stats::Counter issuedEagerSlow;    ///< eager, slow speed
    stats::Counter cancelledWrites;    ///< aborted attempts
    stats::Counter pausedWrites;       ///< +WP pauses
    stats::Counter resumedWrites;      ///< +WP resumptions
    stats::Counter completedDemandWrites; ///< demand writes finished
    stats::Counter completedEagerWrites;  ///< eager writes finished
    /** Write-verify failures reissued with a slower pulse. */
    stats::Counter retriedWrites;
    /**
     * Wear-leveler maintenance writes (gap moves, refresh swaps,
     * SoftWear/WoLFRaM migration copies) charged as real traffic by
     * the controller-owned levelers. Not part of totalWriteIssues():
     * they carry no request, occupy the bank out of band, and the
     * wear/energy checkers tie them out separately.
     */
    stats::Counter maintenanceWrites;

    stats::Counter drainEntries;
    stats::Average readLatency;   ///< arrival to data delivered, ticks

    /**
     * Total write attempts issued to banks. Issue counters are
     * incremented per attempt, so cancelled attempts (and their
     * retries) are already included.
     */
    [[nodiscard]] std::uint64_t
    totalWriteIssues() const
    {
        return issuedNormalWrites.value() + issuedSlowWrites.value() +
               issuedEagerNormal.value() + issuedEagerSlow.value();
    }
};

/**
 * The memory controller. One instance per channel (the evaluated
 * system has a single channel).
 */
class MemoryController : public MemoryPort
{
  public:
    MemoryController(EventQueue &eventq, const MemControllerConfig &config);

    // --- LLC-facing interface -------------------------------------
    /** Enqueue a demand read; @p onComplete fires when data arrives. */
    void read(LogicalAddr addr, ReadCallback onComplete) override;

    /** Enqueue a demand write back (dirty eviction). */
    void writeback(LogicalAddr addr) override;

    /**
     * Enqueue an eager mellow write back.
     * @retval false the eager queue is full; the LLC keeps the line
     *               dirty and may try again later.
     */
    bool eagerWrite(LogicalAddr addr) override;

    /** True if the eager queue has room. */
    [[nodiscard]] bool eagerQueueHasSpace() const override;

    /** Outstanding demand reads (for MSHR-style admission checks). */
    [[nodiscard]] std::size_t pendingReads() const;

    /**
     * Fires once per accepted eager write when it completes (retries
     * and cancellations are not completions). The sharded front end
     * uses this as its credit-return signal: credits taken at send
     * time flow back exactly when eager-queue occupancy drops.
     */
    using EagerCompleteCallback = std::function<void()>;
    void
    setEagerCompleteCallback(EagerCompleteCallback cb)
    {
        _onEagerComplete = std::move(cb);
    }

    /**
     * True when the controller holds no model work: every queue is
     * empty, no read is queued or in flight, no write pulse is
     * running or paused. Periodic bookkeeping events (quota period,
     * deduplicated scheduler passes) are deliberately ignored — they
     * make no progress on an idle controller, so the sharded epoch
     * driver may stop while they are still pending.
     */
    [[nodiscard]] bool idle() const;

    // --- End-of-run ------------------------------------------------
    /** Truncate busy/drain accounting at the current tick. */
    void finalize();

    // --- Introspection ----------------------------------------------
    [[nodiscard]] const MemControllerStats &stats() const
    {
        return _stats;
    }
    [[nodiscard]] const WearTracker &wearTracker() const
    {
        return _wear;
    }
    [[nodiscard]] const EnergyModel &energyModel() const
    {
        return _energy;
    }
    [[nodiscard]] const WearQuota *wearQuota() const
    {
        return _quota.get();
    }
    [[nodiscard]] const FaultModel *faultModel() const
    {
        return _faults.get();
    }
    [[nodiscard]] const MemControllerConfig &config() const
    {
        return _config;
    }
    [[nodiscard]] const AddressMap &addressMap() const { return _map; }

    /** Fraction of [0, now] spent in write-drain mode. */
    [[nodiscard]] double drainTimeFraction() const;

    /** Mean bank utilisation over [0, now]. */
    [[nodiscard]] double avgBankUtilization() const;

    /** Utilisation of a single bank over [0, now]. */
    [[nodiscard]] double bankUtilization(BankId bank) const;

    [[nodiscard]] bool draining() const { return _draining; }

    // --- Audit accessors (src/check/) -----------------------------
    [[nodiscard]] unsigned numBanks() const
    {
        return _config.geometry.numBanks;
    }

    /** Device state of one bank, for auditing and tests. */
    [[nodiscard]] const Bank &bank(BankId idx) const;

    /**
     * The controller-owned issue-path leveler of one bank, or null
     * when fault injection is disabled (no leveling on that path).
     */
    [[nodiscard]] const WearLeveler *issueLeveler(BankId idx) const
    {
        return _levelers[idx].get();
    }

    [[nodiscard]] std::size_t readQueueDepth() const
    {
        return _readQ.size();
    }
    [[nodiscard]] std::size_t writeQueueDepth() const
    {
        return _writeQ.size();
    }
    [[nodiscard]] std::size_t eagerQueueDepth() const
    {
        return _eagerQ.size();
    }

  private:
    // --- Scheduling -------------------------------------------------
    /** Run one scheduling pass; issues everything issueable now. */
    void trySchedule();

    /** Request a (deduplicated) scheduling pass at tick @p when. */
    void requestSchedule(Tick when);

    /** Issue the oldest read for @p bank if possible. */
    bool tryIssueRead(BankId bank, Tick now, Tick *nextWake);

    /** Issue a write/eager write for @p bank per Figure 9. */
    bool tryIssueWrite(BankId bank, Tick now, Tick *nextWake);

    /** Cancel the bank's in-flight write and requeue it. */
    void cancelBankWrite(BankId bank, Tick now);

    /** Pause the bank's in-flight write (+WP). */
    void pauseBankWrite(BankId bank, Tick now);

    /**
     * +ML: pick the largest configured latency factor whose pulse
     * fits the bank's observed quiet time (see WritePolicyConfig).
     */
    [[nodiscard]] PulseFactor chooseAdaptiveFactor(BankId bank,
                                                   Tick now) const;

    /**
     * Device line a request targets: leveler rotation first (when the
     * controller owns levelers), then the retirement indirection —
     * unless the leveler owns the fault remap itself (WoLFRaM), in
     * which case its output is already final.
     */
    [[nodiscard]] DeviceAddr deviceLineFor(const MemRequest &req) const;

    /**
     * Advance the bank's leveler after a completed demand pulse to
     * logical block @p written and charge all resulting maintenance
     * writes (gap moves, swaps, queued migrations) as real traffic.
     */
    void runLevelerMaintenance(BankId bank, LineIndex written,
                               Tick now);

    /** Charge one maintenance write to leveled block @p block. */
    void chargeMaintenanceWrite(BankId bank, LeveledAddr block,
                                Tick now);

    /** Reserve the data bus; returns the burst start tick. */
    Tick reserveBus(Tick earliest);

    /** True if the bus backlog allows another reservation at @p now. */
    [[nodiscard]] bool busAvailable(Tick now, Tick *nextWake) const;

    void updateDrainState(Tick now);
    void onWriteComplete(BankId bank);
    void onQuotaPeriod();

    [[nodiscard]] bool quotaExceeded(BankId bank) const;
    [[nodiscard]] BankQueueView bankView(BankId bank) const;

    EventQueue &_eventq;
    MemControllerConfig _config;
    AddressMap _map;
    NvmTimingParams _timing;
    Tick _slowPulse;

    RequestQueue _readQ;
    RequestQueue _writeQ;
    RequestQueue _eagerQ;

    IndexedVector<BankId, Bank> _banks;
    std::vector<Rank> _ranks; ///< indexed by the raw rank number
    IndexedVector<BankId, EventHandle> _writeCompletion;
    /** Arrival tick of the last demand read per bank (0 = never). */
    IndexedVector<BankId, Tick> _lastReadArrival;
    /**
     * Banks holding a paused (+WP) write. Unioned with the queues'
     * non-empty masks so the scheduling pass still visits a bank
     * whose only pending work is a parked resume.
     */
    IndexMask<BankId> _pausedBanks;

    Tick _busNextFree = 0;

    bool _draining = false;
    Tick _drainStart = 0;
    Tick _drainTicks = 0;

    EnduranceModel _endurance;
    WearTracker _wear;
    EnergyModel _energy;
    std::unique_ptr<WearQuota> _quota;
    std::unique_ptr<FaultModel> _faults;
    /**
     * Controller-owned wear levelers, one per bank; populated only
     * when fault injection is enabled (the unified remap path). All
     * slots stay null otherwise and the issue path is the identity
     * LineIndex -> DeviceAddr of the seed behaviour.
     */
    IndexedVector<BankId, std::unique_ptr<WearLeveler>> _levelers;

    MemControllerStats _stats;

    /** Demand reads accepted but not yet delivered (queued, issued,
     * or forwarded with the delivery event still pending). */
    std::uint64_t _inFlightReads = 0;
    /** Credit-return seam for the sharded front end (may be empty). */
    EagerCompleteCallback _onEagerComplete;

    /** Dedup state for the scheduler event. */
    EventHandle _scheduleEvent = InvalidEventHandle;
    Tick _scheduleAt = MaxTick;
    bool _inSchedulePass = false;
};

} // namespace mellowsim

#endif // MELLOWSIM_NVM_CONTROLLER_HH
