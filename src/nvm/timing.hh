/**
 * @file
 * ReRAM device and channel timing parameters (Table II).
 *
 * Defaults model the paper's memory-grade ReRAM: 400 MHz channel,
 * 64-bit bus, tRCD 120 ns, tCAS 2.5 ns, normal write pulse 150 ns,
 * tFAW 50 ns, 1 KB row buffer with an open-page policy for reads;
 * writes are write-through and bypass the row buffer.
 */

#ifndef MELLOWSIM_NVM_TIMING_HH
#define MELLOWSIM_NVM_TIMING_HH

#include <cmath>
#include <limits>

#include "sim/strong_types.hh"
#include "sim/types.hh"

namespace mellowsim
{

/** Raw device/channel timing, all in ticks (picoseconds). */
struct NvmTimingParams
{
    /** Memory controller clock period (400 MHz). */
    Tick tCK = Tick(2.5 * kNanosecond);
    /** Row activate: row to column delay. */
    Tick tRCD = 120 * kNanosecond;
    /** Column access latency (row-buffer read). */
    Tick tCAS = Tick(2.5 * kNanosecond);
    /** Normal write pulse time, t_WP. */
    Tick tWP = 150 * kNanosecond;
    /** Four-activate window per rank. */
    Tick tFAW = 50 * kNanosecond;
    /** Data bus occupancy of one 64-byte transfer (8 beats, 64-bit). */
    Tick tBurst = 20 * kNanosecond;

    /**
     * Slow write pulse time for a latency factor N, rounded to the
     * nearest tick (PulseFactor guarantees N >= 1, so the result is
     * never shorter than tWP). An extreme factor whose pulse exceeds
     * the representable tick range saturates at MaxTick: llround on a
     * double past LLONG_MAX is undefined behaviour, and a pulse
     * longer than the simulation clock can count is "forever" anyway.
     */
    [[nodiscard]] Tick
    slowWritePulse(PulseFactor factor) const
    {
        const double scaled = static_cast<double>(tWP) * factor;
        if (scaled >= static_cast<double>(
                std::numeric_limits<long long>::max()))
            return MaxTick;
        return Tick(std::llround(scaled));
    }

    /** Total bank occupancy of a read (array access only). */
    [[nodiscard]] Tick
    readAccess(bool rowHit) const
    {
        return rowHit ? tCAS : tRCD + tCAS;
    }
};

} // namespace mellowsim

#endif // MELLOWSIM_NVM_TIMING_HH
