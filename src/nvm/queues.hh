/**
 * @file
 * The controller's request queues with per-bank bookkeeping.
 *
 * Each of the read, write and eager queues is a set of per-bank FIFOs
 * with a shared size. Per-bank counts are what the Figure 9 decision
 * logic consumes; a block-address index supports read forwarding from
 * pending writes.
 */

#ifndef MELLOWSIM_NVM_QUEUES_HH
#define MELLOWSIM_NVM_QUEUES_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "nvm/request.hh"
#include "sim/logging.hh"

namespace mellowsim
{

/**
 * A bank-partitioned FIFO request queue.
 *
 * Capacity is advisory: full() reports when the configured size is
 * reached, but push() always succeeds. The controller enforces the
 * policy consequences (drain mode for the write queue, admission
 * control by the LLC for the eager queue, MSHR limits for reads).
 */
class RequestQueue
{
  public:
    RequestQueue(unsigned numBanks, unsigned capacity);

    /** Total queued requests across banks. */
    std::size_t size() const { return _size; }

    bool empty() const { return _size == 0; }
    bool full() const { return _size >= _capacity; }
    unsigned capacity() const { return _capacity; }

    /** Queued requests for one bank. */
    unsigned countForBank(unsigned bank) const;

    /** Append a request to its bank FIFO. */
    void push(MemRequest req);

    /** Re-insert a request at the front of its bank FIFO (retry). */
    void pushFront(MemRequest req);

    /** Oldest request for a bank; bank FIFO must be non-empty. */
    const MemRequest &front(unsigned bank) const;

    /** Remove and return the oldest request for a bank. */
    MemRequest pop(unsigned bank);

    /** Number of queued requests whose block address matches. */
    unsigned countForBlock(Addr blockAddr) const;

    /** Oldest arrival tick across all banks (MaxTick if empty). */
    Tick oldestArrival() const;

  private:
    std::vector<std::deque<MemRequest>> _banks;
    std::unordered_map<Addr, unsigned> _blockIndex;
    std::size_t _size = 0;
    unsigned _capacity;

    void indexAdd(const MemRequest &req);
    void indexRemove(const MemRequest &req);
};

} // namespace mellowsim

#endif // MELLOWSIM_NVM_QUEUES_HH
