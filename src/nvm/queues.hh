/**
 * @file
 * The controller's request queues with per-bank bookkeeping.
 *
 * Each of the read, write and eager queues is a set of per-bank FIFOs
 * with a shared size. Per-bank counts are what the Figure 9 decision
 * logic consumes; a block-address index supports read forwarding from
 * pending writes.
 *
 * Data layout (see DESIGN.md "Performance architecture"): requests
 * are pooled in an IndexedVector arena behind typed ReqSlot indices
 * and recycled through a free list, so steady-state traffic allocates
 * nothing. The per-bank FIFOs are ring buffers of slot indices
 * (RingDeque), the block index is an open-addressing FlatCounter
 * keyed by block number, the non-empty-bank set is an incrementally
 * maintained IndexMask the controller's scheduling pass walks instead
 * of probing every bank, and oldestArrival() resolves from a lazily
 * repaired min-heap of per-bank front arrivals instead of scanning
 * all banks.
 */

#ifndef MELLOWSIM_NVM_QUEUES_HH
#define MELLOWSIM_NVM_QUEUES_HH

#include <cstdint>
#include <vector>

#include "nvm/request.hh"
#include "sim/flat_counter.hh"
#include "sim/index_mask.hh"
#include "sim/index_ring.hh"
#include "sim/indexed.hh"
#include "sim/logging.hh"

namespace mellowsim
{

namespace detail
{
struct ReqSlotTag
{
};
} // namespace detail

/** Typed index of a pooled request in a RequestQueue's arena. */
using ReqSlot = StrongOrdinal<detail::ReqSlotTag, std::uint32_t>;

/**
 * A bank-partitioned FIFO request queue.
 *
 * Capacity is advisory: full() reports when the configured size is
 * reached, but push() always succeeds. The controller enforces the
 * policy consequences (drain mode for the write queue, admission
 * control by the LLC for the eager queue, MSHR limits for reads).
 */
class RequestQueue
{
  public:
    RequestQueue(unsigned numBanks, unsigned capacity);

    /** Total queued requests across banks. */
    [[nodiscard]] std::size_t size() const { return _size; }

    [[nodiscard]] bool empty() const { return _size == 0; }
    [[nodiscard]] bool full() const { return _size >= _capacity; }
    [[nodiscard]] unsigned capacity() const { return _capacity; }

    /** Queued requests for one bank. */
    [[nodiscard]] unsigned countForBank(BankId bank) const;

    /** Append a request to its bank FIFO. */
    void push(MemRequest req);

    /** Re-insert a request at the front of its bank FIFO (retry). */
    void pushFront(MemRequest req);

    /** Oldest request for a bank; bank FIFO must be non-empty. */
    [[nodiscard]] const MemRequest &front(BankId bank) const;

    /** Remove and return the oldest request for a bank. */
    MemRequest pop(BankId bank);

    /** Number of queued requests in @p addr's 64-byte block. */
    [[nodiscard]] unsigned countForBlock(LogicalAddr addr) const;

    /** Oldest front-of-FIFO arrival across banks (MaxTick if empty). */
    [[nodiscard]] Tick oldestArrival() const;

    /**
     * Banks with at least one queued request, maintained
     * incrementally. The controller unions these masks to visit only
     * banks that can have issueable work.
     */
    [[nodiscard]] const IndexMask<BankId> &
    nonEmptyBanks() const
    {
        return _nonEmpty;
    }

  private:
    /** Lazily validated entry of the front-arrival min-heap. */
    struct ArrivalEntry
    {
        Tick arrival;
        BankId bank;
    };

    struct ArrivalAfter
    {
        [[nodiscard]] bool
        operator()(const ArrivalEntry &a, const ArrivalEntry &b) const
        {
            return a.arrival > b.arrival;
        }
    };

    /** Move @p req into a pooled slot (free list first). */
    ReqSlot allocSlot(MemRequest req);

    /** Record that @p bank's front arrival is now @p arrival. */
    void noteFrontArrival(BankId bank, Tick arrival);

    /** Rebuild the arrival heap from the per-bank front arrivals. */
    void rebuildArrivalHeap() const;

    IndexedVector<ReqSlot, MemRequest> _arena;
    std::vector<ReqSlot> _freeSlots;
    IndexedVector<BankId, RingDeque<ReqSlot>> _banks;
    FlatCounter<std::uint64_t> _blockIndex;
    IndexMask<BankId> _nonEmpty;
    /** Arrival of each bank's front request (MaxTick when empty). */
    IndexedVector<BankId, Tick> _frontArrival;
    /**
     * Min-heap over (arrival, bank); entries go stale when a bank's
     * front changes and are discarded lazily on query. mutable: the
     * lazy repair in oldestArrival() is a cache cleanup, not a
     * semantic mutation.
     */
    mutable std::vector<ArrivalEntry> _arrivalHeap;
    std::size_t _size = 0;
    unsigned _capacity;
};

} // namespace mellowsim

#endif // MELLOWSIM_NVM_QUEUES_HH
