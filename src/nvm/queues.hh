/**
 * @file
 * The controller's request queues with per-bank bookkeeping.
 *
 * Each of the read, write and eager queues is a set of per-bank FIFOs
 * with a shared size. Per-bank counts are what the Figure 9 decision
 * logic consumes; a block-address index supports read forwarding from
 * pending writes.
 */

#ifndef MELLOWSIM_NVM_QUEUES_HH
#define MELLOWSIM_NVM_QUEUES_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "nvm/request.hh"
#include "sim/indexed.hh"
#include "sim/logging.hh"

namespace mellowsim
{

/**
 * A bank-partitioned FIFO request queue.
 *
 * Capacity is advisory: full() reports when the configured size is
 * reached, but push() always succeeds. The controller enforces the
 * policy consequences (drain mode for the write queue, admission
 * control by the LLC for the eager queue, MSHR limits for reads).
 */
class RequestQueue
{
  public:
    RequestQueue(unsigned numBanks, unsigned capacity);

    /** Total queued requests across banks. */
    [[nodiscard]] std::size_t size() const { return _size; }

    [[nodiscard]] bool empty() const { return _size == 0; }
    [[nodiscard]] bool full() const { return _size >= _capacity; }
    [[nodiscard]] unsigned capacity() const { return _capacity; }

    /** Queued requests for one bank. */
    [[nodiscard]] unsigned countForBank(BankId bank) const;

    /** Append a request to its bank FIFO. */
    void push(MemRequest req);

    /** Re-insert a request at the front of its bank FIFO (retry). */
    void pushFront(MemRequest req);

    /** Oldest request for a bank; bank FIFO must be non-empty. */
    [[nodiscard]] const MemRequest &front(BankId bank) const;

    /** Remove and return the oldest request for a bank. */
    MemRequest pop(BankId bank);

    /** Number of queued requests in @p addr's 64-byte block. */
    [[nodiscard]] unsigned countForBlock(LogicalAddr addr) const;

    /** Oldest arrival tick across all banks (MaxTick if empty). */
    [[nodiscard]] Tick oldestArrival() const;

  private:
    IndexedVector<BankId, std::deque<MemRequest>> _banks;
    std::unordered_map<std::uint64_t, unsigned> _blockIndex;
    std::size_t _size = 0;
    unsigned _capacity;

    void indexAdd(const MemRequest &req);
    void indexRemove(const MemRequest &req);
};

} // namespace mellowsim

#endif // MELLOWSIM_NVM_QUEUES_HH
