#include "nvm/memory_system.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"

namespace mellowsim
{

MemorySystem::MemorySystem(EventQueue &eventq,
                           const MemorySystemConfig &config)
    : _config(config)
{
    fatal_if(config.numChannels == 0, "memory system needs >= 1 channel");
    const MemGeometry &g = config.channel.geometry;
    fatal_if(g.capacityBytes % config.numChannels != 0,
             "capacity must divide evenly across channels");
    _blocksPerChunk = g.interleaveBytes / kBlockSize;
    _totalCapacity = g.capacityBytes;

    for (unsigned c = 0; c < config.numChannels; ++c) {
        MemControllerConfig per_channel = config.channel;
        per_channel.geometry.capacityBytes =
            g.capacityBytes / config.numChannels;
        // Channels must not share weak-line draws.
        per_channel.fault.seed +=
            0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(c);
        _channels.push_back(
            std::make_unique<MemoryController>(eventq, per_channel));
    }
}

ChannelId
MemorySystem::channelOf(LogicalAddr addr) const
{
    // mlint: allow(value-escape): channel-interleave decode is modular
    // arithmetic on the raw byte address (the system-level analogue of
    // AddressMap::decode).
    std::uint64_t block = (addr.value() % _totalCapacity) >> kBlockShift;
    std::uint64_t chunk = block / _blocksPerChunk;
    return ChannelId(static_cast<unsigned>(chunk % _channels.size()));
}

LogicalAddr
MemorySystem::localAddr(LogicalAddr addr) const
{
    // mlint: allow(value-escape): channel-interleave decode (see
    // channelOf); rewrites the address into the channel-local space.
    std::uint64_t block = (addr.value() % _totalCapacity) >> kBlockShift;
    std::uint64_t chunk = block / _blocksPerChunk;
    std::uint64_t offset = block % _blocksPerChunk;
    std::uint64_t local_chunk = chunk / _channels.size();
    // mlint: allow(value-escape): see above.
    return LogicalAddr((local_chunk * _blocksPerChunk + offset) *
                           kBlockSize +
                       addr.value() % kBlockSize);
}

void
MemorySystem::read(LogicalAddr addr, ReadCallback onComplete)
{
    _channels[channelOf(addr)]->read(localAddr(addr),
                                     std::move(onComplete));
}

void
MemorySystem::writeback(LogicalAddr addr)
{
    _channels[channelOf(addr)]->writeback(localAddr(addr));
}

bool
MemorySystem::eagerWrite(LogicalAddr addr)
{
    return _channels[channelOf(addr)]->eagerWrite(localAddr(addr));
}

bool
MemorySystem::eagerQueueHasSpace() const
{
    for (const auto &c : _channels) {
        if (c->eagerQueueHasSpace())
            return true;
    }
    return false;
}

MemoryController &
MemorySystem::channel(ChannelId idx)
{
    return *_channels[idx];
}

const MemoryController &
MemorySystem::channel(ChannelId idx) const
{
    return *_channels[idx];
}

void
MemorySystem::finalize()
{
    for (auto &c : _channels)
        c->finalize();
}

double
MemorySystem::lifetimeYears(Tick simTime) const
{
    double min_years = std::numeric_limits<double>::infinity();
    for (const auto &c : _channels) {
        min_years = std::min(min_years,
                             c->wearTracker().lifetimeYears(simTime));
    }
    return min_years;
}

double
MemorySystem::effectiveCapacityFraction() const
{
    double min_frac = 1.0;
    for (const auto &c : _channels) {
        if (const FaultModel *fm = c->faultModel())
            min_frac =
                std::min(min_frac, fm->effectiveCapacityFraction());
    }
    return min_frac;
}

bool
MemorySystem::capacityFloorReached() const
{
    double floor = _config.channel.fault.capacityFloorFraction;
    if (floor <= 0.0)
        return false;
    for (const auto &c : _channels) {
        const FaultModel *fm = c->faultModel();
        if (fm != nullptr && fm->effectiveCapacityFraction() <= floor)
            return true;
    }
    return false;
}

double
MemorySystem::avgBankUtilization() const
{
    double sum = 0.0;
    for (const auto &c : _channels)
        sum += c->avgBankUtilization();
    return sum / static_cast<double>(_channels.size());
}

double
MemorySystem::drainTimeFraction() const
{
    double sum = 0.0;
    for (const auto &c : _channels)
        sum += c->drainTimeFraction();
    return sum / static_cast<double>(_channels.size());
}

} // namespace mellowsim
