#include "nvm/memory_system.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"

namespace mellowsim
{

MemControllerConfig
perChannelConfig(const MemControllerConfig &channel, unsigned numChannels,
                 unsigned c)
{
    MemControllerConfig per_channel = channel;
    per_channel.geometry.capacityBytes =
        channel.geometry.capacityBytes / numChannels;
    // Channels must not share weak-line draws.
    per_channel.fault.seed +=
        0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(c);
    return per_channel;
}

MemorySystem::MemorySystem(EventQueue &eventq,
                           const MemorySystemConfig &config)
    : _config(config),
      _interleave(config.channel.geometry, config.numChannels)
{
    for (unsigned c = 0; c < config.numChannels; ++c) {
        _channels.push_back(std::make_unique<MemoryController>(
            eventq,
            perChannelConfig(config.channel, config.numChannels, c)));
    }
}

void
MemorySystem::read(LogicalAddr addr, ReadCallback onComplete)
{
    _channels[channelOf(addr)]->read(localAddr(addr),
                                     std::move(onComplete));
}

void
MemorySystem::writeback(LogicalAddr addr)
{
    _channels[channelOf(addr)]->writeback(localAddr(addr));
}

bool
MemorySystem::eagerWrite(LogicalAddr addr)
{
    return _channels[channelOf(addr)]->eagerWrite(localAddr(addr));
}

bool
MemorySystem::eagerQueueHasSpace() const
{
    for (const auto &c : _channels) {
        if (c->eagerQueueHasSpace())
            return true;
    }
    return false;
}

MemoryController &
MemorySystem::channel(ChannelId idx)
{
    return *_channels[idx];
}

const MemoryController &
MemorySystem::channel(ChannelId idx) const
{
    return *_channels[idx];
}

void
MemorySystem::finalize()
{
    for (auto &c : _channels)
        c->finalize();
}

double
MemorySystem::lifetimeYears(Tick simTime) const
{
    double min_years = std::numeric_limits<double>::infinity();
    for (const auto &c : _channels) {
        min_years = std::min(min_years,
                             c->wearTracker().lifetimeYears(simTime));
    }
    return min_years;
}

double
MemorySystem::effectiveCapacityFraction() const
{
    double min_frac = 1.0;
    for (const auto &c : _channels) {
        if (const FaultModel *fm = c->faultModel())
            min_frac =
                std::min(min_frac, fm->effectiveCapacityFraction());
    }
    return min_frac;
}

bool
MemorySystem::capacityFloorReached() const
{
    double floor = _config.channel.fault.capacityFloorFraction;
    if (floor <= 0.0)
        return false;
    for (const auto &c : _channels) {
        const FaultModel *fm = c->faultModel();
        if (fm != nullptr && fm->effectiveCapacityFraction() <= floor)
            return true;
    }
    return false;
}

double
MemorySystem::avgBankUtilization() const
{
    double sum = 0.0;
    for (const auto &c : _channels)
        sum += c->avgBankUtilization();
    return sum / static_cast<double>(_channels.size());
}

double
MemorySystem::drainTimeFraction() const
{
    double sum = 0.0;
    for (const auto &c : _channels)
        sum += c->drainTimeFraction();
    return sum / static_cast<double>(_channels.size());
}

} // namespace mellowsim
