#include "nvm/controller.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace mellowsim
{

MemoryController::MemoryController(EventQueue &eventq,
                                   const MemControllerConfig &config)
    : _eventq(eventq), _config(config), _map(config.geometry),
      _timing(config.timing),
      _slowPulse(config.timing.slowWritePulse(
          PulseFactor(config.policy.slowFactor))),
      _readQ(config.geometry.numBanks, config.readQueueSize),
      _writeQ(config.geometry.numBanks, config.writeQueueSize),
      _eagerQ(config.geometry.numBanks, config.eagerQueueSize),
      _banks(config.geometry.numBanks), _ranks(config.geometry.numRanks),
      _writeCompletion(config.geometry.numBanks, InvalidEventHandle),
      _lastReadArrival(config.geometry.numBanks, 0),
      _pausedBanks(config.geometry.numBanks),
      _endurance(config.endurance),
      _wear(
          [&config] {
              WearTrackerConfig w;
              w.numBanks = config.geometry.numBanks;
              w.blocksPerBank = config.geometry.blocksPerBank();
              // With fault injection enabled the controller owns the
              // live issue-path leveler; the tracker must not stack a
              // second (measurement) rotation on top of it.
              w.leveler = config.fault.enabled ? WearLevelerKind::None
                                               : config.wearLeveler;
              w.gapWritePeriod = config.gapWritePeriod;
              w.levelerSeed = config.levelerSeed;
              w.levelingEfficiency = config.levelingEfficiency;
              w.detailedBlocks = config.detailedWear;
              return w;
          }(),
          _endurance),
      _energy(config.energy),
      _levelers(config.geometry.numBanks)
{
    fatal_if(config.drainLowThreshold >= config.writeQueueSize,
             "drain low threshold (%u) must be below the write queue "
             "size (%u)",
             config.drainLowThreshold, config.writeQueueSize);
    fatal_if(config.policy.slowFactor < 1.0,
             "slow factor must be >= 1.0 (got %f)",
             config.policy.slowFactor);
    if (_config.policy.wearQuota) {
        WearQuotaConfig q = _config.quota;
        q.blocksPerBank = _config.geometry.blocksPerBank();
        _quota = std::make_unique<WearQuota>(q,
                                             _config.geometry.numBanks);
        _eventq.scheduleIn(q.samplePeriod, [this] { onQuotaPeriod(); });
    }
    if (_config.fault.enabled) {
        // The unified remap path: one live leveler per bank on the
        // issue path, then the retirement indirection on its output.
        WearLevelerParams lp;
        lp.kind = _config.wearLeveler;
        lp.numBlocks = _config.geometry.blocksPerBank();
        lp.maintenancePeriod = _config.gapWritePeriod;
        lp.pageBlocks = _config.softWearPageBlocks;
        lp.counterSamplePeriod = _config.softWearSamplePeriod;
        lp.relocationThreshold = _config.softWearRelocThreshold;
        lp.spareBlocks = _config.fault.spareLinesPerBank;
        for (unsigned i = 0; i < _config.geometry.numBanks; ++i) {
            lp.seed = _config.levelerSeed + i;
            _levelers[BankId(i)] = makeWearLeveler(lp);
        }

        FaultConfig f = _config.fault;
        f.numBanks = _config.geometry.numBanks;
        // The fault model lives in the leveled block space. A
        // unified-remap leveler (WoLFRaM) already includes its spare
        // slots in numPhysicalBlocks, and the fault model must name
        // its spares [numBlocks, numBlocks + spares) to match the
        // PAD's slot layout; every other leveler needs the spare pool
        // appended after its own physical range (Start-Gap's leveled
        // space is [0, N + 1), so spares starting at N would collide
        // with the gap block).
        const WearLeveler &proto = *_levelers[BankId(0)];
        f.blocksPerBank = proto.ownsFaultRemap()
                              ? proto.numBlocks()
                              : proto.numPhysicalBlocks();
        _faults = std::make_unique<FaultModel>(f);
        for (unsigned i = 0; i < _config.geometry.numBanks; ++i) {
            if (FaultRemapDelegate *delegate =
                    _levelers[BankId(i)]->faultRemapDelegate()) {
                _faults->setRemapDelegate(BankId(i), delegate);
            }
        }
    }
}

void
MemoryController::onQuotaPeriod()
{
    _quota->onPeriodBoundary();
    _eventq.scheduleIn(_quota->config().samplePeriod,
                       [this] { onQuotaPeriod(); });
    // Quota flags changed; queued writes may now decide differently.
    requestSchedule(_eventq.curTick());
}

bool
MemoryController::quotaExceeded(BankId bank) const
{
    return _quota != nullptr && _quota->slowOnly(bank);
}

BankQueueView
MemoryController::bankView(BankId bank) const
{
    BankQueueView v;
    v.readsForBank = _readQ.countForBank(bank);
    v.writesForBank = _writeQ.countForBank(bank);
    v.eagerForBank = _eagerQ.countForBank(bank);
    v.drainMode = _draining;
    v.quotaExceeded = quotaExceeded(bank);
    return v;
}

void
MemoryController::read(LogicalAddr addr, ReadCallback onComplete)
{
    Tick now = _eventq.curTick();
    ++_stats.demandReads;
    ++_inFlightReads;

    // Read forwarding: a queued (or eager-queued) write to the same
    // block supplies the data from the controller's buffers without
    // touching the memory array.
    if (_writeQ.countForBlock(addr) > 0 ||
        _eagerQ.countForBlock(addr) > 0) {
        ++_stats.forwardedReads;
        _stats.readLatency.sample(
            static_cast<double>(_config.forwardLatency));
        auto deliver = [this, cb = std::move(onComplete)] {
            --_inFlightReads;
            cb();
        };
        static_assert(EventQueue::fitsInline<decltype(deliver)>(),
                      "forwarded-read callback must use the inline "
                      "slot, not the out-of-line pool");
        _eventq.scheduleIn(_config.forwardLatency, std::move(deliver));
        return;
    }

    MemRequest req;
    req.type = ReqType::Read;
    req.addr = addr;
    req.loc = _map.decode(addr);
    req.arrival = now;
    req.onComplete = std::move(onComplete);
    _lastReadArrival[req.loc.bank] = now;
    _readQ.push(std::move(req));
    requestSchedule(now);
}

void
MemoryController::writeback(LogicalAddr addr)
{
    Tick now = _eventq.curTick();
    ++_stats.acceptedWritebacks;
    MemRequest req;
    req.type = ReqType::Write;
    req.addr = addr;
    req.loc = _map.decode(addr);
    req.arrival = now;
    _writeQ.push(std::move(req));
    updateDrainState(now);
    requestSchedule(now);
}

bool
MemoryController::eagerWrite(LogicalAddr addr)
{
    Tick now = _eventq.curTick();
    if (_eagerQ.full()) {
        ++_stats.rejectedEager;
        return false;
    }
    ++_stats.acceptedEager;
    MemRequest req;
    req.type = ReqType::EagerWrite;
    req.addr = addr;
    req.loc = _map.decode(addr);
    req.arrival = now;
    _eagerQ.push(std::move(req));
    requestSchedule(now);
    return true;
}

bool
MemoryController::eagerQueueHasSpace() const
{
    return !_eagerQ.full();
}

std::size_t
MemoryController::pendingReads() const
{
    return _readQ.size();
}

bool
MemoryController::idle() const
{
    if (_readQ.size() != 0 || _writeQ.size() != 0 || _eagerQ.size() != 0)
        return false;
    if (_inFlightReads != 0 || _pausedBanks.any())
        return false;
    // A valid completion handle means a write pulse is running in the
    // bank (its request lives there, not in any queue).
    for (const EventHandle &h : _writeCompletion) {
        if (h != InvalidEventHandle)
            return false;
    }
    return true;
}

void
MemoryController::requestSchedule(Tick when)
{
    Tick now = _eventq.curTick();
    if (when < now)
        when = now;
    if (_scheduleEvent != InvalidEventHandle) {
        if (_scheduleAt <= when)
            return;
        _eventq.deschedule(_scheduleEvent);
    }
    _scheduleAt = when;
    auto pass = [this] { trySchedule(); };
    static_assert(EventQueue::fitsInline<decltype(pass)>(),
                  "scheduler-pass callback must use the inline slot");
    _scheduleEvent = _eventq.schedule(when, std::move(pass));
}

void
MemoryController::updateDrainState(Tick now)
{
    if (!_draining && _writeQ.size() >= _config.writeQueueSize) {
        _draining = true;
        _drainStart = now;
        ++_stats.drainEntries;
    } else if (_draining &&
               _writeQ.size() <= _config.drainLowThreshold) {
        _draining = false;
        _drainTicks += now - _drainStart;
    }
}

bool
MemoryController::busAvailable(Tick now, Tick *nextWake) const
{
    Tick lead = static_cast<Tick>(_config.busLeadBursts) * _timing.tBurst;
    if (_busNextFree <= now + lead)
        return true;
    *nextWake = std::min(*nextWake, _busNextFree - lead);
    return false;
}

Tick
MemoryController::reserveBus(Tick earliest)
{
    Tick start = std::max(earliest, _busNextFree);
    _busNextFree = start + _timing.tBurst;
    return start;
}

void
MemoryController::cancelBankWrite(BankId bank, Tick now)
{
    Bank &b = _banks[bank];
    bool slow = b.writeSlow();
    Tick pulse = b.writePulse();

    Tick elapsed = 0;
    MemRequest w = b.cancelWrite(now, &elapsed);
    if (elapsed > pulse)
        elapsed = pulse;
    double progress =
        pulse ? static_cast<double>(elapsed) / static_cast<double>(pulse)
              : 0.0;

    _wear.recordCancelledWrite(bank, w.line, pulse, elapsed, slow,
                               _config.cancelWearFraction);
    if (_quota != nullptr) {
        _quota->recordWear(bank, _endurance.wearPerWrite(pulse) *
                                     progress *
                                     _config.cancelWearFraction);
    }
    _energy.recordCancelledWrite(slow, progress);
    ++_stats.cancelledWrites;

    if (_writeCompletion[bank] != InvalidEventHandle) {
        _eventq.deschedule(_writeCompletion[bank]);
        _writeCompletion[bank] = InvalidEventHandle;
    }

    // The aborted write retries from the front of its queue.
    if (w.type == ReqType::Write) {
        _writeQ.pushFront(std::move(w));
        updateDrainState(now);
    } else {
        _eagerQ.pushFront(std::move(w));
    }
}

bool
MemoryController::tryIssueRead(BankId bank, Tick now, Tick *nextWake)
{
    if (_readQ.countForBank(bank) == 0)
        return false;
    // During a drain, banks with pending writes serve writes first.
    if (_draining && _writeQ.countForBank(bank) > 0)
        return false;

    Bank &b = _banks[bank];
    if (!_draining) {
        if (b.pausableWrite(now))
            pauseBankWrite(bank, now);
        else if (b.cancellableWrite(now))
            cancelBankWrite(bank, now);
    }

    if (!b.idleAt(now)) {
        *nextWake = std::min(*nextWake, b.busyUntil());
        return false;
    }

    const MemRequest &head = _readQ.front(bank);
    bool row_hit = b.openRowTag() == head.loc.rowTag;
    if (!row_hit) {
        Tick allowed =
            _ranks[head.loc.rank].nextActivateAllowed(now, _timing.tFAW);
        if (allowed > now) {
            *nextWake = std::min(*nextWake, allowed);
            return false;
        }
    }
    if (!busAvailable(now, nextWake))
        return false;

    MemRequest req = _readQ.pop(bank);
    Tick access = _timing.readAccess(row_hit);
    Tick access_done = now + access;
    Tick bus_start = reserveBus(access_done);
    Tick done = bus_start + _timing.tBurst;

    if (!row_hit)
        _ranks[req.loc.rank].recordActivate(now);
    b.startRead(now, access, req.loc.rowTag);

    ++_stats.issuedReads;
    if (row_hit)
        ++_stats.rowHitReads;
    else
        ++_stats.rowMissReads;
    _energy.recordRead(row_hit);
    _stats.readLatency.sample(static_cast<double>(done - req.arrival));

    auto deliver = [this, cb = std::move(req.onComplete)] {
        --_inFlightReads;
        if (cb)
            cb();
        requestSchedule(_eventq.curTick());
    };
    static_assert(EventQueue::fitsInline<decltype(deliver)>(),
                  "read-completion callback must use the inline slot");
    _eventq.schedule(done, std::move(deliver));
    // The bank frees before the data burst completes; wake then.
    requestSchedule(access_done);
    return true;
}

bool
MemoryController::tryIssueWrite(BankId bank, Tick now, Tick *nextWake)
{
    Bank &bank_state = _banks[bank];

    // A paused write owns the bank's write machinery: it resumes as
    // soon as the bank is clear of reads, before anything new issues.
    if (bank_state.hasPausedWrite()) {
        if (_readQ.countForBank(bank) > 0 && !_draining)
            return false; // read events will wake us
        if (!bank_state.idleAt(now)) {
            *nextWake = std::min(*nextWake, bank_state.busyUntil());
            return false;
        }
        Tick done = bank_state.resumeWrite(now);
        _pausedBanks.clear(bank);
        ++_stats.resumedWrites;
        auto fire = [this, bank] { onWriteComplete(bank); };
        static_assert(EventQueue::fitsInline<decltype(fire)>(),
                      "write-completion callback must use the inline "
                      "slot");
        _writeCompletion[bank] = _eventq.schedule(done, std::move(fire));
        return true;
    }

    WriteDecision dec = decideWrite(_config.policy, bankView(bank));
    if (dec == WriteDecision::None)
        return false;

    // Recent-read guard: keep slow/eager writes off banks a read
    // stream is actively visiting (see MemControllerConfig).
    Tick window = _config.recentReadWindow;
    Tick last_read = _lastReadArrival[bank];
    if (window != 0 && last_read != 0 && now < last_read + window) {
        bool eager_dec = dec == WriteDecision::EagerSlow ||
                         dec == WriteDecision::EagerNormal;
        if (eager_dec) {
            *nextWake = std::min(*nextWake, last_read + window);
            return false;
        }
        if (dec == WriteDecision::SlowWrite && !_config.policy.globalSlow
            && !(_config.policy.wearQuota && quotaExceeded(bank))) {
            dec = WriteDecision::NormalWrite;
        }
    }

    Bank &b = _banks[bank];
    if (!b.idleAt(now)) {
        *nextWake = std::min(*nextWake, b.busyUntil());
        return false;
    }
    if (!busAvailable(now, nextWake))
        return false;

    bool eager = dec == WriteDecision::EagerSlow ||
                 dec == WriteDecision::EagerNormal;
    bool slow = isSlowDecision(dec);
    MemRequest req = eager ? _eagerQ.pop(bank) : _writeQ.pop(bank);
    // Resolve the device line at issue time, so writes queued before
    // a retirement are also redirected through the indirection table
    // (retired lines are never written — audited). loc.blockInBank
    // itself stays in the logical space.
    req.line = deviceLineFor(req);
    if (_faults != nullptr)
        _faults->noteWriteIssued(req.loc.bank, req.line);
    bool may_cancel = cancellable(_config.policy, dec) &&
                      req.attempts < _config.maxWriteCancellations;
    bool may_pause = _config.policy.pauseWrites;
    // Writes forced slow by an exceeded Wear Quota are the throttle
    // that delivers the lifetime guarantee; letting reads cancel or
    // pause them would keep the wear rate unthrottled and defeat the
    // quota.
    if (_config.policy.wearQuota && quotaExceeded(bank)) {
        may_cancel = false;
        may_pause = false;
    }
    // Pausing preserves the pulse, so it supersedes cancellation.
    if (may_pause)
        may_cancel = false;
    ++req.attempts;

    Tick pulse = slow ? _slowPulse : _timing.tWP;
    if (slow && !_config.policy.adaptiveSlowFactors.empty() &&
        !_config.policy.globalSlow &&
        !(_config.policy.wearQuota && quotaExceeded(bank))) {
        pulse = _timing.slowWritePulse(chooseAdaptiveFactor(bank, now));
    }
    if (req.retries > 0) {
        // Write-verify retry: progressively slower pulses switch the
        // cell more reliably (the paper's latency trade-off reused as
        // a reliability knob). Counted as a slow write throughout.
        // Truncation (not rounding) is the device's historical retry
        // behaviour; keep it bit-stable across the type change.
        pulse = static_cast<Tick>(
            static_cast<double>(pulse) *
            std::pow(_config.fault.retrySlowFactor, req.retries));
        slow = true;
    }
    Tick bus_start = reserveBus(now);
    Tick pulse_start = bus_start + _timing.tBurst;

    if (slow)
        ++(eager ? _stats.issuedEagerSlow : _stats.issuedSlowWrites);
    else
        ++(eager ? _stats.issuedEagerNormal : _stats.issuedNormalWrites);

    b.startWrite(now, pulse_start, pulse, std::move(req), slow,
                 may_cancel, may_pause);

    auto fire = [this, bank] { onWriteComplete(bank); };
    static_assert(EventQueue::fitsInline<decltype(fire)>(),
                  "write-completion callback must use the inline slot");
    _writeCompletion[bank] =
        _eventq.schedule(pulse_start + pulse, std::move(fire));

    if (!eager)
        updateDrainState(now);
    return true;
}

void
MemoryController::pauseBankWrite(BankId bank, Tick now)
{
    Bank &b = _banks[bank];
    b.pauseWrite(now);
    _pausedBanks.set(bank);
    ++_stats.pausedWrites;
    if (_writeCompletion[bank] != InvalidEventHandle) {
        _eventq.deschedule(_writeCompletion[bank]);
        _writeCompletion[bank] = InvalidEventHandle;
    }
}

PulseFactor
MemoryController::chooseAdaptiveFactor(BankId bank, Tick now) const
{
    const auto &ladder = _config.policy.adaptiveSlowFactors;
    // Quiet time since the last read arrival predicts how long the
    // bank will stay undisturbed; a never-read bank is wide open.
    Tick last_read = _lastReadArrival[bank];
    Tick quiet = last_read == 0 ? MaxTick : now - last_read;
    for (auto it = ladder.rbegin(); it != ladder.rend(); ++it) {
        if (_timing.slowWritePulse(PulseFactor(*it)) <= quiet)
            return PulseFactor(*it);
    }
    return PulseFactor(ladder.front());
}

DeviceAddr
MemoryController::deviceLineFor(const MemRequest &req) const
{
    if (_faults != nullptr) {
        // The unified remap path: the bank's live leveler moves the
        // logical line into the leveled block space, then retirement
        // redirects. A leveler that owns the fault remap (WoLFRaM)
        // already resolved retirement inside level(), so its output
        // is final.
        const WearLeveler &lev = *_levelers[req.loc.bank];
        LeveledAddr leveled = lev.level(req.loc.blockInBank);
        if (lev.ownsFaultRemap())
            return deviceLineOf(leveled);
        return _faults->remap(req.loc.bank, leveled);
    }
    return deviceLineOf(req.loc.blockInBank);
}

void
MemoryController::runLevelerMaintenance(BankId bank, LineIndex written,
                                        Tick now)
{
    if (_levelers[bank] == nullptr)
        return;
    WearLeveler &lev = *_levelers[bank];
    std::uint64_t extra[2] = {0, 0};
    // mlint: allow(value-escape): noteWrite's counter seam is raw
    // block numbers by contract (see WearLeveler::noteWrite).
    unsigned moves = lev.noteWrite(extra, written.value());
    for (unsigned i = 0; i < moves; ++i)
        chargeMaintenanceWrite(bank, LeveledAddr(extra[i]), now);
    while (lev.hasPendingMigration())
        chargeMaintenanceWrite(bank, LeveledAddr(lev.takeMigrationWrite()),
                               now);
}

void
MemoryController::chargeMaintenanceWrite(BankId bank, LeveledAddr block,
                                         Tick now)
{
    const WearLeveler &lev = *_levelers[bank];
    // Maintenance targets are physical blocks in the leveled space;
    // only the (non-unified) retirement indirection still applies.
    DeviceAddr line = (lev.ownsFaultRemap() || _faults == nullptr)
                          ? deviceLineOf(block)
                          : _faults->remap(bank, block);
    Tick pulse = _timing.tWP;
    _wear.recordMaintenanceWrite(bank, line, pulse);
    if (_quota != nullptr)
        _quota->recordWear(bank, _endurance.wearPerWrite(pulse));
    _energy.recordWrite(/*slow=*/false);
    ++_stats.maintenanceWrites;
    _banks[bank].occupyMaintenance(now, pulse);
    if (_faults != nullptr)
        _faults->noteMaintenanceWrite(bank, line,
                                      _endurance.wearPerWrite(pulse), now);
}

void
MemoryController::onWriteComplete(BankId bank)
{
    Bank &b = _banks[bank];
    bool slow = b.writeSlow();
    Tick pulse = b.writePulse();
    MemRequest req = b.finishWrite();
    _writeCompletion[bank] = InvalidEventHandle;
    Tick now = _eventq.curTick();
    // Captured before the Retry branch moves the request away; the
    // leveler counts logical demand writes, retries included (every
    // attempt stressed the line, matching the tracker's accounting).
    LineIndex logical = req.loc.blockInBank;

    // Device-level accounting is per attempt: a pulse that later
    // fails verification still stressed and powered the cell (and
    // still counts against the Wear Quota).
    _wear.recordWrite(bank, req.line, pulse, slow);
    if (_quota != nullptr)
        _quota->recordWear(bank, _endurance.wearPerWrite(pulse));
    _energy.recordWrite(slow);

    WriteVerdict verdict = WriteVerdict::Ok;
    if (_faults != nullptr) {
        // Issued pulses are never shorter than tWP, so the ratio is
        // a legitimate PulseFactor by construction.
        PulseFactor factor(static_cast<double>(pulse) /
                           static_cast<double>(_timing.tWP));
        verdict = _faults->verifyWrite(bank, req.line,
                                       _endurance.wearPerWrite(pulse),
                                       factor, req.retries, now);
    }

    if (verdict == WriteVerdict::Retry) {
        // Failed verification: the request reissues from the front of
        // its queue with a slower pulse (bounded by maxRetries).
        ++_stats.retriedWrites;
        ++req.retries;
        if (req.type == ReqType::Write) {
            _writeQ.pushFront(std::move(req));
            updateDrainState(now);
        } else {
            _eagerQ.pushFront(std::move(req));
        }
    } else {
        // Ok, Retired (data landed in the fresh spare), and
        // Uncorrectable (data lost, loss recorded) all complete the
        // request — graceful degradation, never an abort.
        if (req.type == ReqType::EagerWrite) {
            ++_stats.completedEagerWrites;
            if (_onEagerComplete)
                _onEagerComplete();
        } else {
            ++_stats.completedDemandWrites;
        }
    }

    runLevelerMaintenance(bank, logical, now);

    requestSchedule(now);
}

void
MemoryController::trySchedule()
{
    _scheduleEvent = InvalidEventHandle;
    _scheduleAt = MaxTick;

    Tick now = _eventq.curTick();
    updateDrainState(now);

    // Both passes used to probe every bank; they now walk the
    // incrementally maintained non-empty masks in the same ascending
    // bank order. This cannot change any decision: a bank outside a
    // mask makes tryIssueRead/tryIssueWrite return false immediately
    // with no side effects and no *nextWake update. The masks are
    // copied because issuing mutates them (pops empty banks out), and
    // the write mask is built only after the read pass, which can
    // requeue cancelled writes.
    Tick next_wake = MaxTick;
    IndexMask<BankId> readable = _readQ.nonEmptyBanks();
    readable.forEach(
        [&](BankId bank) { tryIssueRead(bank, now, &next_wake); });

    IndexMask<BankId> writable = _writeQ.nonEmptyBanks();
    writable |= _eagerQ.nonEmptyBanks();
    writable |= _pausedBanks; // a parked resume needs no queue entry
    writable.forEach(
        [&](BankId bank) { tryIssueWrite(bank, now, &next_wake); });

    if (next_wake != MaxTick)
        requestSchedule(next_wake);
}

void
MemoryController::finalize()
{
    Tick now = _eventq.curTick();
    if (_draining) {
        _drainTicks += now - _drainStart;
        _drainStart = now;
    }
    for (auto &b : _banks)
        b.busyTracker().truncateAt(now);
}

double
MemoryController::drainTimeFraction() const
{
    Tick now = _eventq.curTick();
    if (now == 0)
        return 0.0;
    Tick total = _drainTicks;
    if (_draining && now > _drainStart)
        total += now - _drainStart;
    return static_cast<double>(total) / static_cast<double>(now);
}

const Bank &
MemoryController::bank(BankId idx) const
{
    return _banks[idx];
}

double
MemoryController::bankUtilization(BankId bank) const
{
    return _banks[bank].busyTracker().utilization(_eventq.curTick());
}

double
MemoryController::avgBankUtilization() const
{
    double sum = 0.0;
    for (unsigned i = 0; i < _banks.size(); ++i)
        sum += bankUtilization(BankId(i));
    return sum / static_cast<double>(_banks.size());
}

} // namespace mellowsim
