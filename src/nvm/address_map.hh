/**
 * @file
 * Physical address decomposition for the resistive main memory.
 *
 * The channel interleaves at row granularity (16 KB chunks round-robin
 * across banks, the open-page-friendly mapping): consecutive blocks
 * within a row live in the same bank and enjoy row-buffer hits, while
 * streams and their trailing write backs land on *different* banks.
 * That asymmetric bank usage is exactly what the paper's Bank-Aware
 * and Eager Mellow Writes feed on (Figures 3-5). The interleave
 * granularity is configurable down to one block for sensitivity
 * studies.
 */

#ifndef MELLOWSIM_NVM_ADDRESS_MAP_HH
#define MELLOWSIM_NVM_ADDRESS_MAP_HH

#include <cstdint>

#include "sim/strong_types.hh"
#include "sim/types.hh"

namespace mellowsim
{

/** Geometry of the memory system (Table II defaults). */
struct MemGeometry
{
    unsigned numBanks = 16;
    unsigned numRanks = 4;
    std::uint64_t capacityBytes = 4ull * 1024 * 1024 * 1024;
    std::uint64_t rowBufferBytes = 1024;
    std::uint64_t rowBytes = 16 * 1024;
    /** Contiguous bytes per bank before moving to the next bank. */
    std::uint64_t interleaveBytes = 16 * 1024;

    /**
     * Pseudo-randomly permute 4 KB pages across the capacity (a
     * deterministic stand-in for OS physical page allocation). This
     * decorrelates a streaming workload's LLC eviction trail from its
     * read cursor — without it, power-of-two alignment parks every
     * trailing write back on the very bank the stream is reading,
     * which no real (page-mapped) system exhibits. Page-internal
     * locality, and therefore row-buffer behaviour, is preserved.
     * Requires capacityBytes / pageBytes to be a power of two.
     */
    bool pageScramble = true;
    std::uint64_t pageBytes = 4096;

    [[nodiscard]] unsigned banksPerRank() const
    {
        return numBanks / numRanks;
    }
    [[nodiscard]] std::uint64_t blocksPerBank() const
    {
        return capacityBytes / kBlockSize / numBanks;
    }
};

/** Where one block-aligned address lives. */
struct DecodedAddr
{
    BankId bank{0};
    unsigned rank = 0;
    /** Line index within the bank (logical space, pre-fault-remap). */
    LineIndex blockInBank{0};
    /** Row-buffer segment tag within the bank (open-page tracking). */
    std::uint64_t rowTag = 0;
};

/** Decodes physical addresses under a given geometry. */
class AddressMap
{
  public:
    explicit AddressMap(const MemGeometry &geometry);

    [[nodiscard]] DecodedAddr decode(LogicalAddr addr) const;

    /**
     * The page-permuted logical address (identity when scrambling is
     * off). Exposed for tests: the permutation must be a bijection.
     */
    [[nodiscard]] LogicalAddr translate(LogicalAddr addr) const;

    [[nodiscard]] const MemGeometry &geometry() const
    {
        return _geometry;
    }

  private:
    MemGeometry _geometry;
    std::uint64_t _blocksPerRowBuffer;
    std::uint64_t _blocksPerChunk;
    std::uint64_t _numPages = 0;
    unsigned _pageBits = 0;
};

} // namespace mellowsim

#endif // MELLOWSIM_NVM_ADDRESS_MAP_HH
