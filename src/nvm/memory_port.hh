/**
 * @file
 * The LLC-facing memory interface.
 *
 * Both a single MemoryController (one channel, the paper's evaluated
 * configuration) and the multi-channel MemorySystem implement this
 * port, so the cache hierarchy is oblivious to channel count.
 */

#ifndef MELLOWSIM_NVM_MEMORY_PORT_HH
#define MELLOWSIM_NVM_MEMORY_PORT_HH

#include "nvm/request.hh"
#include "sim/strong_types.hh"
#include "sim/types.hh"

namespace mellowsim
{

/** See file comment. */
class MemoryPort
{
  public:
    virtual ~MemoryPort() = default;

    /** Enqueue a demand read; @p onComplete fires when data arrives. */
    virtual void read(LogicalAddr addr, ReadCallback onComplete) = 0;

    /** Enqueue a demand write back (dirty eviction). */
    virtual void writeback(LogicalAddr addr) = 0;

    /**
     * Enqueue an eager mellow write back.
     * @retval false the responsible channel's eager queue is full;
     *               the LLC keeps the line dirty.
     */
    virtual bool eagerWrite(LogicalAddr addr) = 0;

    /**
     * True if at least one channel's eager queue has room (the LLC's
     * cheap gate before scanning for a candidate; the eagerWrite()
     * itself still routes by address and may be rejected).
     */
    [[nodiscard]] virtual bool eagerQueueHasSpace() const = 0;
};

} // namespace mellowsim

#endif // MELLOWSIM_NVM_MEMORY_PORT_HH
