#include "nvm/bank.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace mellowsim
{

void
Bank::startRead(Tick now, Tick access, std::uint64_t rowTag)
{
    panic_if(!idleAt(now), "read issued to a busy bank");
    _busyUntil = now + access;
    _openRowTag = rowTag;
    _writing = false;
    _busy.markBusyUntil(now, _busyUntil);
}

void
Bank::startWrite(Tick now, Tick pulseStart, Tick pulse, MemRequest req,
                 bool slow, bool cancellable, bool pausable)
{
    panic_if(!idleAt(now), "write issued to a busy bank");
    panic_if(_paused, "write issued over a paused write");
    panic_if(pulseStart < now, "write pulse starts before its issue");
    _busyUntil = pulseStart + pulse;
    _writing = true;
    _writeCancellable = cancellable;
    _writePausable = pausable;
    _writeSlow = slow;
    _paused = false;
    _writePulse = pulse;
    _pulseStart = pulseStart;
    _remainingPulse = 0;
    _currentWrite = std::move(req);
    // Writes bypass (and stale-out) the row buffer segment they hit.
    if (_openRowTag == _currentWrite.loc.rowTag)
        _openRowTag = kNoOpenRow;
    _busy.markBusyUntil(now, _busyUntil);
}

MemRequest
Bank::finishWrite()
{
    panic_if(!_writing, "finishWrite with no write in flight");
    _writing = false;
    return std::move(_currentWrite);
}

void
Bank::pauseWrite(Tick now)
{
    panic_if(!pausableWrite(now), "pauseWrite on a non-pausable write");
    // Remaining pulse: whatever had not completed by now. If the
    // data burst itself has not finished, the whole pulse remains.
    _remainingPulse =
        now > _pulseStart ? _busyUntil - now : _writePulse;
    _busy.truncateAt(now);
    _busyUntil = now;
    _writing = false;
    _paused = true;
}

Tick
Bank::resumeWrite(Tick now)
{
    panic_if(!_paused, "resumeWrite with no paused write");
    panic_if(!idleAt(now), "resumeWrite on a busy bank");
    _paused = false;
    _writing = true;
    _busyUntil = now + _remainingPulse;
    // Progress accounting: treat the resumed remainder as the live
    // pulse window so a later pause sees the right remainder.
    _pulseStart = now - (_writePulse - _remainingPulse);
    _busy.markBusyUntil(now, _busyUntil);
    return _busyUntil;
}

void
Bank::occupyMaintenance(Tick now, Tick duration)
{
    panic_if(_paused, "maintenance write over a paused write");
    // Piggyback after the current busy horizon; the copy is issued by
    // the completion handler of a demand write, so the bank is
    // usually just freeing up.
    Tick start = std::max(now, _busyUntil);
    _busyUntil = start + duration;
    // The copy rewrites a line the row buffer may have latched.
    _openRowTag = kNoOpenRow;
    _busy.markBusyUntil(start, _busyUntil);
}

MemRequest
Bank::cancelWrite(Tick now, Tick *elapsedPulse)
{
    panic_if(!writing(now), "cancelWrite with no write in flight");
    panic_if(!_writeCancellable, "cancelWrite on a non-cancellable write");
    if (elapsedPulse != nullptr)
        *elapsedPulse = now > _pulseStart ? now - _pulseStart : 0;
    // Give back the unused busy time we had pre-charged.
    _busy.truncateAt(now);
    _busyUntil = now;
    _writing = false;
    return std::move(_currentWrite);
}

Tick
Rank::nextActivateAllowed(Tick now, Tick tFAW) const
{
    if (_count < _activates.size())
        return now;
    // The oldest of the last four activates gates the next one.
    Tick oldest = _activates[_head];
    return std::max(now, oldest + tFAW);
}

void
Rank::recordActivate(Tick when)
{
    _activates[_head] = when;
    _head = (_head + 1) % _activates.size();
    if (_count < _activates.size())
        ++_count;
}

} // namespace mellowsim
