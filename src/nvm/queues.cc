#include "nvm/queues.hh"

namespace mellowsim
{

RequestQueue::RequestQueue(unsigned numBanks, unsigned capacity)
    : _banks(numBanks), _capacity(capacity)
{
    fatal_if(numBanks == 0, "request queue needs >= 1 bank");
    fatal_if(capacity == 0, "request queue needs capacity >= 1");
}

unsigned
RequestQueue::countForBank(BankId bank) const
{
    return static_cast<unsigned>(_banks[bank].size());
}

void
RequestQueue::indexAdd(const MemRequest &req)
{
    ++_blockIndex[blockNumber(req.addr)];
}

void
RequestQueue::indexRemove(const MemRequest &req)
{
    auto it = _blockIndex.find(blockNumber(req.addr));
    panic_if(it == _blockIndex.end(), "request missing from block index");
    if (--it->second == 0)
        _blockIndex.erase(it);
}

void
RequestQueue::push(MemRequest req)
{
    indexAdd(req);
    _banks[req.loc.bank].push_back(std::move(req));
    ++_size;
}

void
RequestQueue::pushFront(MemRequest req)
{
    indexAdd(req);
    _banks[req.loc.bank].push_front(std::move(req));
    ++_size;
}

const MemRequest &
RequestQueue::front(BankId bank) const
{
    panic_if(_banks[bank].empty(), "front() on empty bank FIFO");
    return _banks[bank].front();
}

MemRequest
RequestQueue::pop(BankId bank)
{
    panic_if(_banks[bank].empty(), "pop() on empty bank FIFO");
    MemRequest req = std::move(_banks[bank].front());
    _banks[bank].pop_front();
    indexRemove(req);
    --_size;
    return req;
}

unsigned
RequestQueue::countForBlock(LogicalAddr addr) const
{
    auto it = _blockIndex.find(blockNumber(addr));
    return it == _blockIndex.end() ? 0 : it->second;
}

Tick
RequestQueue::oldestArrival() const
{
    Tick oldest = MaxTick;
    for (const auto &fifo : _banks) {
        if (!fifo.empty() && fifo.front().arrival < oldest)
            oldest = fifo.front().arrival;
    }
    return oldest;
}

} // namespace mellowsim
