#include "nvm/queues.hh"

#include <algorithm>

namespace mellowsim
{

RequestQueue::RequestQueue(unsigned numBanks, unsigned capacity)
    : _banks(numBanks), _blockIndex(64), _nonEmpty(numBanks),
      _frontArrival(numBanks, MaxTick), _capacity(capacity)
{
    fatal_if(numBanks == 0, "request queue needs >= 1 bank");
    fatal_if(capacity == 0, "request queue needs capacity >= 1");
    // One live entry per bank plus the full stale backlog the rebuild
    // threshold in noteFrontArrival() permits.
    _arrivalHeap.reserve(numBanks * 5 + 65);
}

unsigned
RequestQueue::countForBank(BankId bank) const
{
    return static_cast<unsigned>(_banks[bank].size());
}

ReqSlot
RequestQueue::allocSlot(MemRequest req)
{
    if (!_freeSlots.empty()) {
        ReqSlot slot = _freeSlots.back();
        _freeSlots.pop_back();
        _arena[slot] = std::move(req);
        return slot;
    }
    ReqSlot slot(static_cast<std::uint32_t>(_arena.size()));
    _arena.push_back(std::move(req));
    return slot;
}

void
RequestQueue::noteFrontArrival(BankId bank, Tick arrival)
{
    _frontArrival[bank] = arrival;
    if (arrival == MaxTick)
        return;
    _arrivalHeap.push_back(ArrivalEntry{arrival, bank});
    std::push_heap(_arrivalHeap.begin(), _arrivalHeap.end(),
                   ArrivalAfter{});
    // Bound the stale backlog; the rebuild restores one live entry
    // per non-empty bank.
    if (_arrivalHeap.size() > _banks.size() * 4 + 64)
        rebuildArrivalHeap();
}

void
RequestQueue::rebuildArrivalHeap() const
{
    _arrivalHeap.clear();
    for (std::uint32_t b = 0;
         b < static_cast<std::uint32_t>(_banks.size()); ++b) {
        BankId bank(b);
        if (_frontArrival[bank] != MaxTick)
            _arrivalHeap.push_back(
                ArrivalEntry{_frontArrival[bank], bank});
    }
    std::make_heap(_arrivalHeap.begin(), _arrivalHeap.end(),
                   ArrivalAfter{});
}

void
RequestQueue::push(MemRequest req)
{
    RingDeque<ReqSlot> &fifo = _banks[req.loc.bank];
    BankId bank = req.loc.bank;
    std::uint64_t block = blockNumber(req.addr);
    Tick arrival = req.arrival;
    fifo.push_back(allocSlot(std::move(req)));
    _blockIndex.increment(block);
    ++_size;
    if (fifo.size() == 1) {
        _nonEmpty.set(bank);
        noteFrontArrival(bank, arrival);
    }
}

void
RequestQueue::pushFront(MemRequest req)
{
    RingDeque<ReqSlot> &fifo = _banks[req.loc.bank];
    BankId bank = req.loc.bank;
    std::uint64_t block = blockNumber(req.addr);
    Tick arrival = req.arrival;
    fifo.push_front(allocSlot(std::move(req)));
    _blockIndex.increment(block);
    ++_size;
    _nonEmpty.set(bank);
    noteFrontArrival(bank, arrival);
}

const MemRequest &
RequestQueue::front(BankId bank) const
{
    panic_if(_banks[bank].empty(), "front() on empty bank FIFO");
    return _arena[_banks[bank].front()];
}

MemRequest
RequestQueue::pop(BankId bank)
{
    RingDeque<ReqSlot> &fifo = _banks[bank];
    panic_if(fifo.empty(), "pop() on empty bank FIFO");
    ReqSlot slot = fifo.pop_front();
    MemRequest req = std::move(_arena[slot]);
    // The moved-from slot holds only trivially-copyable residue plus
    // the callback; clear the callback so no captured state outlives
    // the request (a full MemRequest reset would cost a construct +
    // destroy per pop for nothing).
    _arena[slot].onComplete = nullptr;
    _freeSlots.push_back(slot);
    _blockIndex.decrement(blockNumber(req.addr));
    --_size;
    if (fifo.empty()) {
        _nonEmpty.clear(bank);
        _frontArrival[bank] = MaxTick;
    } else {
        noteFrontArrival(bank, _arena[fifo.front()].arrival);
    }
    return req;
}

unsigned
RequestQueue::countForBlock(LogicalAddr addr) const
{
    return _blockIndex.count(blockNumber(addr));
}

Tick
RequestQueue::oldestArrival() const
{
    while (!_arrivalHeap.empty()) {
        const ArrivalEntry &top = _arrivalHeap.front();
        if (_frontArrival[top.bank] == top.arrival)
            return top.arrival;
        std::pop_heap(_arrivalHeap.begin(), _arrivalHeap.end(),
                      ArrivalAfter{});
        _arrivalHeap.pop_back();
    }
    return MaxTick;
}

} // namespace mellowsim
