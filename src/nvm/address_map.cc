#include "nvm/address_map.hh"

#include "sim/logging.hh"

namespace mellowsim
{

namespace
{

/** splitmix64 finaliser used as the Feistel round function. */
std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
}

} // namespace

AddressMap::AddressMap(const MemGeometry &geometry) : _geometry(geometry)
{
    fatal_if(geometry.numBanks == 0, "geometry needs >= 1 bank");
    fatal_if(geometry.numRanks == 0, "geometry needs >= 1 rank");
    fatal_if(geometry.numBanks % geometry.numRanks != 0,
             "banks (%u) must divide evenly into ranks (%u)",
             geometry.numBanks, geometry.numRanks);
    fatal_if(geometry.rowBufferBytes < kBlockSize,
             "row buffer smaller than a block");
    fatal_if(geometry.interleaveBytes < kBlockSize,
             "interleave granularity smaller than a block");
    fatal_if(geometry.capacityBytes <
                 static_cast<std::uint64_t>(geometry.numBanks) *
                     geometry.interleaveBytes,
             "capacity smaller than one interleave chunk per bank");
    _blocksPerRowBuffer = geometry.rowBufferBytes / kBlockSize;
    _blocksPerChunk = geometry.interleaveBytes / kBlockSize;

    if (geometry.pageScramble) {
        fatal_if(geometry.pageBytes < kBlockSize,
                 "page size smaller than a block");
        fatal_if(geometry.capacityBytes % geometry.pageBytes != 0,
                 "capacity must be a multiple of the page size");
        _numPages = geometry.capacityBytes / geometry.pageBytes;
        fatal_if(!isPowerOfTwo(_numPages),
                 "page scrambling requires a power-of-two page count "
                 "(got %llu)",
                 static_cast<unsigned long long>(_numPages));
        _pageBits = floorLog2(_numPages);
    }
}

LogicalAddr
AddressMap::translate(LogicalAddr addr) const
{
    Addr raw = addr.value() % _geometry.capacityBytes;
    // Fewer than four pages: nothing meaningful to permute.
    if (!_geometry.pageScramble || _pageBits < 2)
        return LogicalAddr(raw);

    std::uint64_t page = raw / _geometry.pageBytes;
    std::uint64_t offset = raw % _geometry.pageBytes;

    // Unbalanced Feistel network over the page index: each round
    // XOR-masks one half with a hash of the other, which is a
    // bijection for any split; four rounds diffuse thoroughly.
    unsigned a = _pageBits / 2;      // high-half bits
    unsigned b = _pageBits - a;      // low-half bits
    for (unsigned round = 0; round < 4; ++round) {
        std::uint64_t mask_a = (std::uint64_t(1) << a) - 1;
        std::uint64_t mask_b = (std::uint64_t(1) << b) - 1;
        std::uint64_t hi = (page >> b) & mask_a;
        std::uint64_t lo = page & mask_b;
        hi ^= mix(lo + (std::uint64_t(round) << 32) +
                  0x5EEDF00Dull) &
              mask_a;
        // Swap halves (and their widths) for the next round.
        page = (lo << a) | hi;
        std::swap(a, b);
    }
    return LogicalAddr(page * _geometry.pageBytes + offset);
}

DecodedAddr
AddressMap::decode(LogicalAddr addr) const
{
    std::uint64_t block = translate(addr).value() >> kBlockShift;
    std::uint64_t chunk = block / _blocksPerChunk;
    std::uint64_t offset = block % _blocksPerChunk;

    DecodedAddr d;
    d.bank = BankId(static_cast<unsigned>(chunk % _geometry.numBanks));
    d.rank = d.bank.value() / _geometry.banksPerRank();
    d.blockInBank = LineIndex(
        chunk / _geometry.numBanks * _blocksPerChunk + offset);
    d.rowTag = d.blockInBank.value() / _blocksPerRowBuffer;
    return d;
}

} // namespace mellowsim
