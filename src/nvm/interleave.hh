/**
 * @file
 * Channel-interleave address decode, shared by every composition that
 * stripes one address space across channels.
 *
 * MemorySystem (the monolithic multi-channel path) and the sharded
 * front-end router (system/sharded.cc) must agree bit-for-bit on which
 * channel serves an address and what the channel-local rewrite is —
 * the serial-vs-sharded fingerprint audit depends on it — so the
 * arithmetic lives here exactly once.
 */

#ifndef MELLOWSIM_NVM_INTERLEAVE_HH
#define MELLOWSIM_NVM_INTERLEAVE_HH

#include <cstdint>

#include "nvm/address_map.hh"
#include "sim/logging.hh"
#include "sim/strong_types.hh"
#include "sim/types.hh"

namespace mellowsim
{

/**
 * Stripes block-aligned addresses across channels at the interleave
 * granularity and rewrites them into each channel's local space, so a
 * channel controller is bit-identical to a single-channel
 * configuration of the same per-channel geometry.
 */
class ChannelInterleave
{
  public:
    /** @p geometry carries the TOTAL capacity across all channels. */
    ChannelInterleave(const MemGeometry &geometry, unsigned numChannels)
        : _blocksPerChunk(geometry.interleaveBytes / kBlockSize),
          _totalCapacity(geometry.capacityBytes),
          _numChannels(numChannels)
    {
        fatal_if(numChannels == 0, "interleave needs >= 1 channel");
        fatal_if(geometry.capacityBytes % numChannels != 0,
                 "capacity must divide evenly across channels");
    }

    [[nodiscard]] unsigned numChannels() const { return _numChannels; }

    /** Which channel serves @p addr. */
    [[nodiscard]] ChannelId
    channelOf(LogicalAddr addr) const
    {
        // mlint: allow(value-escape): channel-interleave decode is
        // modular arithmetic on the raw byte address (the system-level
        // analogue of AddressMap::decode).
        std::uint64_t block =
            (addr.value() % _totalCapacity) >> kBlockShift;
        std::uint64_t chunk = block / _blocksPerChunk;
        return ChannelId(static_cast<unsigned>(chunk % _numChannels));
    }

    /** The channel-local address @p addr maps to. */
    [[nodiscard]] LogicalAddr
    localAddr(LogicalAddr addr) const
    {
        // mlint: allow(value-escape): channel-interleave decode (see
        // channelOf); rewrites the address into the channel-local
        // space.
        std::uint64_t block =
            (addr.value() % _totalCapacity) >> kBlockShift;
        std::uint64_t chunk = block / _blocksPerChunk;
        std::uint64_t offset = block % _blocksPerChunk;
        std::uint64_t local_chunk = chunk / _numChannels;
        // mlint: allow(value-escape): see above.
        return LogicalAddr((local_chunk * _blocksPerChunk + offset) *
                               kBlockSize +
                           addr.value() % kBlockSize);
    }

  private:
    std::uint64_t _blocksPerChunk;
    std::uint64_t _totalCapacity;
    unsigned _numChannels;
};

} // namespace mellowsim

#endif // MELLOWSIM_NVM_INTERLEAVE_HH
