/**
 * @file
 * Open-addressing multiset counter for integer keys.
 *
 * Replaces `std::unordered_map<Key, unsigned>` on hot lookup paths
 * (the request queues' block index): one flat power-of-two cell array,
 * linear probing, backward-shift deletion (no tombstones), and no
 * per-node allocation — the only allocation is the cell array itself,
 * which grows geometrically and is reused forever after.
 *
 * Determinism: the structure is never iterated, only probed by key,
 * so hash/probe order cannot leak into simulation results.
 */

#ifndef MELLOWSIM_SIM_FLAT_COUNTER_HH
#define MELLOWSIM_SIM_FLAT_COUNTER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"

namespace mellowsim
{

/**
 * Counts occurrences of integer keys. increment()/decrement()/count()
 * are O(1) expected; cells hold (key, count) pairs and a zero count
 * marks an empty cell.
 */
template <typename Key = std::uint64_t>
class FlatCounter
{
    static_assert(sizeof(Key) <= sizeof(std::uint64_t));

  public:
    explicit FlatCounter(std::size_t initialCells = 64)
    {
        std::size_t cells = 16;
        while (cells < initialCells)
            cells <<= 1;
        _cells.resize(cells);
    }

    /** Distinct keys currently present. */
    [[nodiscard]] std::size_t size() const { return _used; }

    [[nodiscard]] bool empty() const { return _used == 0; }

    /** Occurrences of @p key (0 when absent). */
    [[nodiscard]] unsigned
    count(Key key) const
    {
        std::size_t mask = _cells.size() - 1;
        for (std::size_t i = hash(key) & mask;; i = (i + 1) & mask) {
            const Cell &c = _cells[i];
            if (c.count == 0)
                return 0;
            if (c.key == key)
                return c.count;
        }
    }

    /** Add one occurrence of @p key. */
    void
    increment(Key key)
    {
        if ((_used + 1) * 4 > _cells.size() * 3)
            grow();
        std::size_t mask = _cells.size() - 1;
        for (std::size_t i = hash(key) & mask;; i = (i + 1) & mask) {
            Cell &c = _cells[i];
            if (c.count == 0) {
                c.key = key;
                c.count = 1;
                ++_used;
                return;
            }
            if (c.key == key) {
                ++c.count;
                return;
            }
        }
    }

    /** Remove one occurrence of @p key; panics when absent. */
    void
    decrement(Key key)
    {
        std::size_t mask = _cells.size() - 1;
        std::size_t i = hash(key) & mask;
        for (;; i = (i + 1) & mask) {
            Cell &c = _cells[i];
            panic_if(c.count == 0,
                     "FlatCounter::decrement: key not present");
            if (c.key == key) {
                if (--c.count > 0)
                    return;
                break;
            }
        }
        // Count hit zero: erase cell i by backward-shifting the
        // displaced tail of its probe cluster (no tombstones).
        --_used;
        std::size_t hole = i;
        for (std::size_t j = (hole + 1) & mask;; j = (j + 1) & mask) {
            Cell &c = _cells[j];
            if (c.count == 0)
                break;
            std::size_t home = hash(c.key) & mask;
            // Move c into the hole iff the hole lies on c's probe
            // path from its home cell (cyclic interval test).
            bool movable = hole <= j
                               ? (home <= hole || home > j)
                               : (home <= hole && home > j);
            if (movable) {
                _cells[hole] = c;
                c.count = 0;
                hole = j;
            }
        }
        _cells[hole].count = 0;
    }

  private:
    struct Cell
    {
        Key key{};
        std::uint32_t count = 0; ///< 0 marks an empty cell
    };

    /** SplitMix64 finalizer: well-mixed bits for linear probing. */
    [[nodiscard]] static std::size_t
    hash(Key key)
    {
        std::uint64_t h = static_cast<std::uint64_t>(key);
        h += 0x9e3779b97f4a7c15ull;
        h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
        h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
        return static_cast<std::size_t>(h ^ (h >> 31));
    }

    void
    grow()
    {
        std::vector<Cell> old = std::move(_cells);
        _cells.assign(old.size() * 2, Cell{});
        std::size_t mask = _cells.size() - 1;
        for (const Cell &c : old) {
            if (c.count == 0)
                continue;
            for (std::size_t i = hash(c.key) & mask;;
                 i = (i + 1) & mask) {
                if (_cells[i].count == 0) {
                    _cells[i] = c;
                    break;
                }
            }
        }
    }

    std::vector<Cell> _cells;
    std::size_t _used = 0;
};

} // namespace mellowsim

#endif // MELLOWSIM_SIM_FLAT_COUNTER_HH
